GO ?= go

.PHONY: all build vet lint test race check

all: check

build:
	$(GO) build ./...

vet: build
	$(GO) vet ./...

# lint builds the repo's own analyzer suite and runs it over the tree via
# the go vet -vettool protocol.
lint: build
	$(GO) build -o bin/rololint ./cmd/rololint
	$(GO) vet -vettool=bin/rololint ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the full gate: everything CI (and a pre-commit) should run.
check:
	./scripts/check.sh
