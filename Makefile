GO ?= go

.PHONY: all build vet test race check

all: check

build:
	$(GO) build ./...

vet: build
	$(GO) vet ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the full gate: everything CI (and a pre-commit) should run.
check:
	./scripts/check.sh
