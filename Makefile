GO ?= go

.PHONY: all build vet lint test race fuzz bench check nightly

all: check

build:
	$(GO) build ./...

vet: build
	$(GO) vet ./...

# lint builds the repo's own analyzer suite and runs it over the tree via
# the go vet -vettool protocol.
lint: build
	$(GO) build -o bin/rololint ./cmd/rololint
	$(GO) vet -vettool=bin/rololint ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fuzz runs each native fuzz target for a meaningful stretch; the check
# gate runs the same targets for a few seconds as a smoke test.
FUZZTIME ?= 60s
fuzz:
	$(GO) test -run '^$$' -fuzz 'FuzzParseMSR$$' -fuzztime $(FUZZTIME) ./internal/trace/
	$(GO) test -run '^$$' -fuzz 'FuzzParseSyntheticSpec$$' -fuzztime $(FUZZTIME) ./internal/trace/
	$(GO) test -run '^$$' -fuzz 'FuzzJournalRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/telemetry/journal/

# bench reruns the BenchmarkCore* hot-path suite and rewrites
# BENCH_core.json (best-of-BENCH_COUNT ns/op and allocs/op per benchmark),
# the committed perf-trajectory baseline that future PRs diff against.
bench: build
	./scripts/bench.sh

# check is the full gate: everything CI (and a pre-commit) should run.
# check.sh also accepts stage-group arguments (build lint test race-smoke
# fuzz) so CI reports each group as its own step.
check:
	./scripts/check.sh

# nightly regenerates every experiment with the RoloSan sanitizer on, in
# parallel across the machine's cores, at a larger scale than the CI
# smoke, writing one rotated, compressed telemetry journal per run
# through the async pipeline and then verifying every journal's manifest
# (segment checksums, counts, time ranges) with rolostat. The
# .github/workflows/nightly.yml schedule runs exactly this. The default
# scale was raised from 0.2 when the allocation-free core (DESIGN §11)
# made checked sweeps ~5.7× faster.
NIGHTLY_SCALE ?= 0.5
NIGHTLY_PAIRS ?= 20
NIGHTLY_JOBS ?= 0
NIGHTLY_JOURNAL_DIR ?= bin/nightly-journals
NIGHTLY_JOURNAL_SEGMENT ?= 4194304
NIGHTLY_FLEET_SHARDS ?= 512
nightly: build
	$(GO) build -o bin/roloexp ./cmd/roloexp
	$(GO) build -o bin/rolostat ./cmd/rolostat
	rm -rf $(NIGHTLY_JOURNAL_DIR)
	./bin/roloexp -run all -check -scale $(NIGHTLY_SCALE) -pairs $(NIGHTLY_PAIRS) -jobs $(NIGHTLY_JOBS) \
		-journal $(NIGHTLY_JOURNAL_DIR) -journal-segment $(NIGHTLY_JOURNAL_SEGMENT) -journal-compress
	@for d in $(NIGHTLY_JOURNAL_DIR)/*/; do \
		echo "== rolostat -verify $$d"; \
		./bin/rolostat -verify "$$d" >/dev/null || exit 1; \
	done
	@echo "nightly: all journal manifests verified"
	$(GO) build -o bin/rolofleet ./cmd/rolofleet
	@echo "== rolofleet -shards $(NIGHTLY_FLEET_SHARDS) -check (determinism across job counts)"
	./bin/rolofleet -shards $(NIGHTLY_FLEET_SHARDS) -check -jobs 0 2>/dev/null > bin/fleet-par.txt
	./bin/rolofleet -shards $(NIGHTLY_FLEET_SHARDS) -check -jobs 1 2>/dev/null > bin/fleet-ser.txt
	cmp bin/fleet-par.txt bin/fleet-ser.txt
	@rm -f bin/fleet-par.txt bin/fleet-ser.txt
	@echo "nightly: fleet report identical at -jobs 0 and -jobs 1"
