// Package rolo is a trace-driven simulator of the RoLo rotated-logging
// storage architecture (Yue et al., ICDCS 2010) and its comparison schemes.
//
// It models RAID10 arrays of mechanically- and power-accurate disks and
// five controllers: standard RAID10, GRAID (centralized logging on a
// dedicated log disk), and the three RoLo flavors — RoLo-P (performance),
// RoLo-R (reliability) and RoLo-E (energy). Workloads come either from
// real MSR Cambridge traces or from the calibrated synthetic profiles in
// this module.
//
// The typical entry point is Run:
//
//	cfg := rolo.DefaultConfig(rolo.SchemeRoLoP)
//	recs, _ := rolo.GenerateProfile("src2_2", cfg, 0.1)
//	rep, err := rolo.Run(cfg, recs)
//
// See the examples directory and cmd/roloexp for complete programs.
package rolo

import (
	"encoding/json"
	"errors"
	"fmt"

	"github.com/rolo-storage/rolo/internal/array"
	"github.com/rolo-storage/rolo/internal/baseline"
	"github.com/rolo-storage/rolo/internal/core"
	"github.com/rolo-storage/rolo/internal/disk"
	"github.com/rolo-storage/rolo/internal/invariant"
	"github.com/rolo-storage/rolo/internal/metrics"
	"github.com/rolo-storage/rolo/internal/raid"
	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/telemetry"
	"github.com/rolo-storage/rolo/internal/trace"
)

// Scheme identifies a storage controller scheme.
type Scheme int

// The five schemes evaluated in the paper.
const (
	SchemeRAID10 Scheme = iota + 1
	SchemeGRAID
	SchemeRoLoP
	SchemeRoLoR
	SchemeRoLoE
)

// Schemes lists all schemes in the paper's presentation order.
var Schemes = []Scheme{SchemeRAID10, SchemeGRAID, SchemeRoLoP, SchemeRoLoR, SchemeRoLoE}

// String returns the scheme name as used in the paper.
func (s Scheme) String() string {
	switch s {
	case SchemeRAID10:
		return "RAID10"
	case SchemeGRAID:
		return "GRAID"
	case SchemeRoLoP:
		return "RoLo-P"
	case SchemeRoLoR:
		return "RoLo-R"
	case SchemeRoLoE:
		return "RoLo-E"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// MarshalJSON encodes the scheme as its paper name.
func (s Scheme) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", s.String())), nil
}

// UnmarshalJSON decodes a scheme from its paper name.
func (s *Scheme) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	v, err := ParseScheme(name)
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// ParseScheme resolves a scheme name (case-sensitive, as printed by
// String).
func ParseScheme(name string) (Scheme, error) {
	for _, s := range Schemes {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("rolo: unknown scheme %q", name)
}

// Config describes one simulated array and scheme.
type Config struct {
	// Scheme selects the controller.
	Scheme Scheme
	// Pairs is the number of mirrored pairs; the array has 2·Pairs disks
	// (GRAID adds one dedicated log disk).
	Pairs int
	// StripeUnitBytes is the RAID10 striping granularity.
	StripeUnitBytes int64
	// Disk is the drive model; defaults to the IBM Ultrastar 36Z15.
	Disk disk.Config
	// FreeBytesPerDisk is the per-disk logging region (the paper's
	// default is 8 GB, half the drive).
	FreeBytesPerDisk int64
	// RAMCacheBlocks enables a controller-level RAM read cache of that
	// many blocks in front of the scheme (0 disables it, the default).
	// The paper assumes multi-level caches absorb most reads before they
	// reach the disks; this knob models that level explicitly.
	RAMCacheBlocks int
	// RAMCacheBlockBytes is the RAM cache granularity (default 4 KiB).
	RAMCacheBlockBytes int64
	// GRAID, RoLo and RoLoE hold per-scheme tuning knobs.
	GRAID baseline.GRAIDConfig
	RoLo  core.Config
	RoLoE core.EConfig
	// Telemetry optionally attaches an event journal sink and periodic
	// probes to the run. The zero value disables both, at zero cost.
	Telemetry telemetry.Config
	// Check enables RoloSan, the runtime invariant sanitizer: recover-
	// ability, log-space conservation, disk state-machine legality and
	// accounting monotonicity are validated during the run, and the first
	// violation stops the simulation and fails Run with a structured
	// diagnostic. Expect a modest constant-factor slowdown.
	Check bool
	// CheckSweepEvery overrides the sanitizer's full-sweep period in
	// events (0 keeps the default; only meaningful with Check set).
	CheckSweepEvery uint64
}

// DefaultConfig returns the paper's default configuration for the scheme:
// 20 mirrored pairs (40 disks), 64 KB stripe unit, Ultrastar 36Z15 drives,
// 8 GB free space per disk, 16 GB GRAID log disk.
func DefaultConfig(scheme Scheme) Config {
	return Config{
		Scheme:           scheme,
		Pairs:            20,
		StripeUnitBytes:  64 << 10,
		Disk:             disk.Ultrastar36Z15(),
		FreeBytesPerDisk: 8 << 30,
		GRAID:            baseline.DefaultGRAIDConfig(),
		RoLo:             core.DefaultConfig(),
		RoLoE:            core.DefaultEConfig(),
	}
}

// Geometry derives the RAID10 geometry: the data region is the disk
// capacity minus the logging region, rounded down to a stripe multiple.
func (c Config) Geometry() raid.Geometry {
	dataBytes := c.Disk.CapacityBytes - c.FreeBytesPerDisk
	if c.StripeUnitBytes > 0 {
		dataBytes -= dataBytes % c.StripeUnitBytes
	}
	return raid.Geometry{
		Pairs:            c.Pairs,
		StripeUnitBytes:  c.StripeUnitBytes,
		DataBytesPerDisk: dataBytes,
	}
}

// VolumeBytes returns the logical volume size exposed by this
// configuration; workloads must address within it.
func (c Config) VolumeBytes() int64 { return c.Geometry().VolumeBytes() }

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch c.Scheme {
	case SchemeRAID10, SchemeGRAID, SchemeRoLoP, SchemeRoLoR, SchemeRoLoE:
	default:
		return fmt.Errorf("rolo: invalid scheme %d", int(c.Scheme))
	}
	if c.Pairs <= 0 {
		return fmt.Errorf("rolo: non-positive pair count %d", c.Pairs)
	}
	if c.RAMCacheBlocks < 0 {
		return fmt.Errorf("rolo: negative RAM cache size %d", c.RAMCacheBlocks)
	}
	if c.FreeBytesPerDisk < 0 || c.FreeBytesPerDisk >= c.Disk.CapacityBytes {
		return fmt.Errorf("rolo: free space %d outside [0, disk capacity %d)",
			c.FreeBytesPerDisk, c.Disk.CapacityBytes)
	}
	if err := c.Disk.Validate(); err != nil {
		return err
	}
	if err := c.Telemetry.Validate(); err != nil {
		return err
	}
	return c.Geometry().Validate()
}

// LatencyBreakdown summarizes one request class (reads or writes).
type LatencyBreakdown struct {
	Count  int64
	MeanMs float64
	P95Ms  float64
	P99Ms  float64
	MaxMs  float64
}

// Report summarizes one simulation run.
type Report struct {
	Scheme   Scheme
	Requests int64

	// EnergyJ is cumulative array energy at the trace horizon — the
	// number used for all cross-scheme energy comparisons.
	EnergyJ float64
	// EnergyAtDrainJ is energy once all background work finished.
	EnergyAtDrainJ float64

	MeanResponseMs float64
	P95ResponseMs  float64
	P99ResponseMs  float64
	MaxResponseMs  float64

	// ReadLatency and WriteLatency break the response times down by
	// request class. Cache-absorbed reads count as reads.
	ReadLatency  LatencyBreakdown
	WriteLatency LatencyBreakdown

	// AllHist, ReadHist and WriteHist are the exact log-bucketed
	// response-time histograms behind the summary statistics above
	// (microsecond values, every response counted). They exist so a
	// fleet layer can merge per-shard latency distributions without
	// loss (internal/fleet); they are omitted from JSON reports. The
	// histograms are snapshots: safe to read and merge from, but not
	// observation targets.
	AllHist   telemetry.Histogram `json:"-"`
	ReadHist  telemetry.Histogram `json:"-"`
	WriteHist telemetry.Histogram `json:"-"`

	// SpinCycles is the array-wide count of disk spin-up events
	// (Table I's "number of disks spin up/down").
	SpinCycles int

	// Rotations counts logger rotations (RoLo-P/R/E).
	Rotations int
	// Destages counts centralized destages (GRAID, RoLo-E).
	Destages int
	// DirectWrites counts writes that bypassed logging.
	DirectWrites int64
	// ReadHitRate is the fraction of reads served without a spin-up
	// (RoLo-E only).
	ReadHitRate float64
	// RAMHitRate is the controller RAM cache hit rate (when enabled).
	RAMHitRate float64

	// DestagingIntervalRatio and DestagingEnergyRatio are the Figure 2
	// metrics (schemes with centralized destaging phases).
	DestagingIntervalRatio float64
	DestagingEnergyRatio   float64

	// StateSeconds aggregates time per power state over all disks.
	StateSeconds map[string]float64
	// DiskStateSeconds holds the same per-state accounting for each disk
	// individually, indexed by disk ID (data pairs first, then any
	// dedicated log disk).
	DiskStateSeconds []map[string]float64

	// ProbeSamples is the number of periodic probe samples taken (0 when
	// probes are disabled). The peaks below are sampled at probe times.
	ProbeSamples int
	// PeakLogOccupancy is the highest sampled log-space occupancy
	// fraction across the run (schemes with a logging region).
	PeakLogOccupancy float64
	// PeakDestageBacklogBytes is the highest sampled destage backlog.
	PeakDestageBacklogBytes int64
	// PeakSpinningDisks is the highest sampled count of spinning disks.
	PeakSpinningDisks int

	// Horizon is the trace duration; DrainedAt is when the last
	// background work completed.
	Horizon   sim.Time
	DrainedAt sim.Time

	// SanitizerEvents and SanitizerSweeps report RoloSan coverage when
	// Config.Check is set: events observed and full invariant sweeps run.
	SanitizerEvents uint64
	SanitizerSweeps uint64
}

// Run simulates the configuration against the trace records (which must be
// time-ordered and addressed within VolumeBytes).
//
// The telemetry sink is flushed on every exit path, including failed
// runs, so a journal always reflects the events emitted up to the
// failure; a flush error joins (never masks) the run's own error. Run
// does not close the sink — closing, like opening, belongs to whoever
// constructed it (async sinks in particular must be Closed to drain
// their writer goroutine; see internal/telemetry/journal).
func Run(cfg Config, recs []trace.Record) (rep Report, err error) {
	if err := cfg.Validate(); err != nil {
		return rep, err
	}
	if err := trace.Validate(recs, cfg.VolumeBytes()); err != nil {
		return rep, err
	}
	defer func() {
		if f, ok := cfg.Telemetry.Sink.(telemetry.Flusher); ok {
			if ferr := f.Flush(); ferr != nil {
				err = errors.Join(err, fmt.Errorf("rolo: flushing telemetry sink: %w", ferr))
			}
		}
	}()
	eng := sim.New()
	extras := 0
	if cfg.Scheme == SchemeGRAID {
		extras = 1
	}
	arr, err := array.New(eng, cfg.Geometry(), cfg.Disk, extras)
	if err != nil {
		return rep, err
	}

	var (
		ctrl  array.Controller
		resp  *metrics.ResponseStats
		after func(*Report) error
	)
	switch cfg.Scheme {
	case SchemeRAID10:
		c := baseline.NewRAID10(arr)
		ctrl, resp = c, c.Responses()
	case SchemeGRAID:
		c, err := baseline.NewGRAID(arr, cfg.GRAID)
		if err != nil {
			return rep, err
		}
		ctrl, resp = c, c.Responses()
		after = func(r *Report) error {
			r.Destages = c.Destages()
			r.DirectWrites = int64(c.LogOverflows())
			r.DestagingIntervalRatio = c.Phases().DestagingIntervalRatio()
			r.DestagingEnergyRatio = c.Phases().DestagingEnergyRatio()
			return nil
		}
	case SchemeRoLoP, SchemeRoLoR:
		flavor := core.FlavorP
		if cfg.Scheme == SchemeRoLoR {
			flavor = core.FlavorR
		}
		c, err := core.New(arr, flavor, cfg.RoLo)
		if err != nil {
			return rep, err
		}
		ctrl, resp = c, c.Responses()
		after = func(r *Report) error {
			r.Rotations = c.Rotations()
			r.DirectWrites = int64(c.DirectWrites())
			return c.CheckErr()
		}
	case SchemeRoLoE:
		c, err := core.NewE(arr, cfg.RoLoE)
		if err != nil {
			return rep, err
		}
		ctrl, resp = c, c.Responses()
		after = func(r *Report) error {
			r.Rotations = c.Rotations()
			r.Destages = c.Destages()
			r.DirectWrites = c.Overflows()
			r.ReadHitRate = c.ReadHitRate()
			r.DestagingIntervalRatio = c.Phases().DestagingIntervalRatio()
			r.DestagingEnergyRatio = c.Phases().DestagingEnergyRatio()
			return nil
		}
	default:
		// Validate has vetted the scheme already; keep the switch total
		// anyway so ctrl and resp are assigned on every path out.
		return rep, fmt.Errorf("rolo: unknown scheme %q", cfg.Scheme)
	}

	// RoloSan attaches to the raw scheme controller, before any cache
	// wrapper, so its snapshots see the real bookkeeping.
	var san *invariant.Sanitizer
	if cfg.Check {
		san = invariant.New(cfg.Scheme.String(), eng)
		if cfg.CheckSweepEvery > 0 {
			san.SetSweepEvery(cfg.CheckSweepEvery)
		}
		if src, ok := ctrl.(invariant.Source); ok {
			san.SetSource(src)
		}
		if at, ok := ctrl.(invariant.Attachable); ok {
			at.SetSanitizer(san.Audit())
		}
		san.WatchDisks(arr.AllDisks(), cfg.Scheme == SchemeRAID10)
		san.Install()
	}

	// The RAM cache wrapper has no logging space of its own, so gauges
	// come from the inner scheme controller.
	gauges, _ := ctrl.(telemetry.GaugeSource)

	var ram *array.CachedController
	if cfg.RAMCacheBlocks > 0 {
		blockBytes := cfg.RAMCacheBlockBytes
		if blockBytes == 0 {
			blockBytes = 4096
		}
		ram, err = array.WithRAMCache(ctrl, resp, eng, cfg.RAMCacheBlocks, blockBytes)
		if err != nil {
			return rep, err
		}
		ctrl = ram
	}

	tel := telemetry.NewRecorder(cfg.Telemetry.Sink)
	if in, ok := ctrl.(telemetry.Instrumented); ok {
		in.SetTelemetry(tel)
	}
	if tel.Enabled() { //lint:allow nilness:maybe Recorder methods are nil-receiver safe by design; a nil Recorder means telemetry is off
		for _, d := range arr.AllDisks() {
			d.AddStateChangeHook(func(d *disk.Disk, _, to disk.PowerState, now sim.Time) {
				switch to {
				case disk.SpinningUp:
					tel.SpinUp(now, d.ID())
				case disk.SpinningDown:
					tel.SpinDown(now, d.ID())
				}
			})
		}
	}
	var prober *telemetry.Prober
	if iv := cfg.Telemetry.ProbeInterval; iv > 0 && len(recs) > 0 {
		prober = telemetry.StartProber(eng, tel, arr.AllDisks(), gauges,
			iv, recs[len(recs)-1].At)
	}

	res, err := array.Replay(eng, arr, ctrl, recs)
	if err != nil {
		return rep, err
	}
	if san != nil {
		san.Final(eng.Now())
		rep.SanitizerEvents = san.Events()
		rep.SanitizerSweeps = san.Sweeps()
		if err := san.Err(); err != nil {
			return rep, fmt.Errorf("rolo: sanitizer: %w", err)
		}
	}
	if ram != nil {
		rep.RAMHitRate = ram.HitRate()
	}

	rep.Scheme = cfg.Scheme
	rep.Requests = resp.Count()
	rep.EnergyJ = res.EnergyAtHorizonJ
	rep.EnergyAtDrainJ = arr.TotalEnergyJ()
	rep.MeanResponseMs = resp.Mean()
	rep.P95ResponseMs = resp.Percentile(95)
	rep.P99ResponseMs = resp.Percentile(99)
	rep.MaxResponseMs = resp.Max().Milliseconds()
	rep.SpinCycles = arr.TotalSpinCycles()
	rep.Horizon = res.Horizon
	rep.DrainedAt = res.DrainedAt
	rep.ReadLatency = breakdown(resp.Reads())
	rep.WriteLatency = breakdown(resp.Writes())
	// Snapshot the latency histograms for cluster-level merging. The
	// copies share bucket arrays with the controller's accumulators,
	// which see no further observations once the run has drained.
	rep.AllHist = *resp.All().Histogram()
	rep.ReadHist = *resp.Reads().Histogram()
	rep.WriteHist = *resp.Writes().Histogram()
	rep.StateSeconds = make(map[string]float64)
	for st, dur := range array.StateDurations(arr.AllDisks()) {
		rep.StateSeconds[st.String()] = dur.Seconds()
	}
	for _, d := range arr.AllDisks() {
		per := make(map[string]float64)
		for st, dur := range d.Stats().StateDur {
			per[st.String()] = dur.Seconds()
		}
		rep.DiskStateSeconds = append(rep.DiskStateSeconds, per)
	}
	if prober != nil {
		rep.ProbeSamples = prober.Samples()
		rep.PeakLogOccupancy = prober.PeakOccupancy()
		rep.PeakDestageBacklogBytes = prober.PeakBacklog()
		rep.PeakSpinningDisks = prober.PeakSpinning()
	}
	if after != nil {
		if err := after(&rep); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

func breakdown(c *metrics.ClassStats) LatencyBreakdown {
	return LatencyBreakdown{
		Count:  c.Count(),
		MeanMs: c.Mean(),
		P95Ms:  c.Percentile(95),
		P99Ms:  c.Percentile(99),
		MaxMs:  c.Max().Milliseconds(),
	}
}

// GenerateProfile materializes a calibrated MSR profile against the
// configuration's volume, replaying the given fraction (0,1] of the full
// trace.
func GenerateProfile(name string, cfg Config, scale float64) ([]trace.Record, error) {
	p, err := trace.Lookup(name)
	if err != nil {
		return nil, err
	}
	return p.Generate(cfg.VolumeBytes(), scale)
}
