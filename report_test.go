package rolo

import (
	"testing"

	"github.com/rolo-storage/rolo/internal/sim"
)

// TestReportFieldsPerScheme checks that each scheme populates exactly the
// report fields its architecture defines — the public contract downstream
// dashboards rely on.
func TestReportFieldsPerScheme(t *testing.T) {
	cfg := smallConfig(SchemeRAID10)
	recs := writeHeavy(t, cfg, 120, 90*sim.Second, 0.93)
	reports := map[Scheme]Report{}
	for _, s := range Schemes {
		c := smallConfig(s)
		rep, err := Run(c, recs)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		reports[s] = rep
	}

	raid := reports[SchemeRAID10]
	if raid.SpinCycles != 0 || raid.Rotations != 0 || raid.Destages != 0 {
		t.Errorf("RAID10 report carries scheme-foreign fields: %+v", raid)
	}
	if raid.DestagingIntervalRatio != 0 {
		t.Errorf("RAID10 has a destaging ratio: %g", raid.DestagingIntervalRatio)
	}

	graid := reports[SchemeGRAID]
	if graid.Destages == 0 {
		t.Error("GRAID never destaged under a log-exceeding write volume")
	}
	if graid.DestagingIntervalRatio <= 0 || graid.DestagingIntervalRatio >= 1 {
		t.Errorf("GRAID destaging interval ratio = %g", graid.DestagingIntervalRatio)
	}
	if graid.Rotations != 0 {
		t.Errorf("GRAID rotated: %d", graid.Rotations)
	}

	for _, s := range []Scheme{SchemeRoLoP, SchemeRoLoR} {
		r := reports[s]
		if r.Rotations == 0 {
			t.Errorf("%v never rotated", s)
		}
		if r.Destages != 0 {
			t.Errorf("%v reports centralized destages: %d", s, r.Destages)
		}
	}

	e := reports[SchemeRoLoE]
	if e.Destages == 0 || e.Rotations == 0 {
		t.Errorf("RoLo-E destages/rotations = %d/%d", e.Destages, e.Rotations)
	}
	if e.ReadHitRate <= 0 || e.ReadHitRate > 1 {
		t.Errorf("RoLo-E hit rate = %g", e.ReadHitRate)
	}

	// Every logging scheme must beat the unmanaged RAID10 baseline even
	// at this miniature scale. (The full Figure 10a ordering — RoLo-E
	// below RoLo-P — needs realistic logger sizes and is asserted by
	// TestMainExperimentsShape in internal/experiments.)
	for _, s := range []Scheme{SchemeGRAID, SchemeRoLoP, SchemeRoLoR, SchemeRoLoE} {
		if reports[s].EnergyJ >= raid.EnergyJ {
			t.Errorf("%v energy %.0f not below RAID10 %.0f", s, reports[s].EnergyJ, raid.EnergyJ)
		}
	}
}

// TestRAMCacheReducesDiskLoad verifies the optional cache layer through
// the facade: with a large RAM cache, repeat reads stop reaching disks and
// the mean response drops.
func TestRAMCacheReducesDiskLoad(t *testing.T) {
	base := smallConfig(SchemeRAID10)
	// Read-heavy workload over a small hot set.
	recs := writeHeavy(t, base, 150, 60*sim.Second, 0.2)
	cold, err := Run(base, recs)
	if err != nil {
		t.Fatal(err)
	}
	warm := base
	warm.RAMCacheBlocks = 1 << 18 // 1 GiB of 4K blocks: everything fits
	hot, err := Run(warm, recs)
	if err != nil {
		t.Fatal(err)
	}
	if hot.RAMHitRate <= 0.3 {
		t.Fatalf("RAM hit rate = %.2f, expected a hot cache", hot.RAMHitRate)
	}
	if hot.MeanResponseMs >= cold.MeanResponseMs {
		t.Fatalf("cache did not help: %.2f ms vs %.2f ms", hot.MeanResponseMs, cold.MeanResponseMs)
	}
	if cold.RAMHitRate != 0 {
		t.Fatalf("cache disabled but hit rate = %g", cold.RAMHitRate)
	}
}
