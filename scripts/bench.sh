#!/bin/sh
# Perf-trajectory recorder: runs the BenchmarkCore* suite (engine
# schedule/fire/cancel/churn, interval add/remove/pop, histogram add,
# telemetry event encoding, pooled disk IO round trip, fleet report
# merge and end-to-end fleet) with -benchmem and writes the results to
# BENCH_core.json so successive PRs can diff ns/op and allocs/op against
# the committed baseline, then times a warm standalone `rololint ./...`
# run over the whole module and writes the best wall time to
# BENCH_lint.json (the 850 ms budget scripts/check.sh enforces). Run
# from the repository root (or via `make bench`).
#
#	BENCH_COUNT=5 ./scripts/bench.sh    # more repetitions (best-of is kept)
#	BENCH_OUT=/tmp/b.json ./scripts/bench.sh
#	BENCH_LINT_OUT=/tmp/l.json ./scripts/bench.sh
set -u

cd "$(dirname "$0")/.."

if ! command -v go >/dev/null 2>&1; then
	echo "bench.sh: go toolchain not found in PATH" >&2
	exit 1
fi

count="${BENCH_COUNT:-3}"
out="${BENCH_OUT:-BENCH_core.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "== go test -bench=Core -benchmem -count=$count" >&2
go test -run '^$' -bench 'Core' -benchmem -benchtime 1s -count "$count" \
	./internal/sim/ ./internal/intervals/ ./internal/metrics/ ./internal/telemetry/ \
	./internal/disk/ ./internal/fleet/ | tee "$raw" >&2 || exit 1

# Collapse the -count repetitions into the best (lowest ns/op) run per
# benchmark — the repetition least disturbed by scheduling noise — and
# emit one JSON object per benchmark.
awk -v goversion="$(go env GOVERSION)" '
/^pkg: /       { pkg = $2 }
/^Benchmark/ && / ns\/op/ && / allocs\/op/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	key = pkg "\t" name
	ns = $3 + 0
	if (!(key in best) || ns < best[key]) {
		best[key] = ns
		bytes[key] = $5 + 0
		allocs[key] = $7 + 0
		if (!(key in seen)) { order[++n] = key; seen[key] = 1 }
	}
}
END {
	printf "{\n  \"go\": \"%s\",\n  \"benchtime\": \"1s\",\n  \"count\": %s,\n  \"benchmarks\": [\n", goversion, count
	for (i = 1; i <= n; i++) {
		key = order[i]
		split(key, kv, "\t")
		printf "    {\"pkg\": \"%s\", \"name\": \"%s\", \"ns_per_op\": %.2f, \"b_per_op\": %d, \"allocs_per_op\": %d}%s\n", \
			kv[1], kv[2], best[key], bytes[key], allocs[key], (i < n ? "," : "")
	}
	printf "  ]\n}\n"
}' count="$count" "$raw" >"$out" || exit 1

echo "bench.sh: wrote $out" >&2

# Lint latency: best-of-N warm standalone runs of the full analyzer
# suite over ./... — the local iteration loop whose budget check.sh
# enforces. The first (untimed) run warms the go list/export cache.
lintout="${BENCH_LINT_OUT:-BENCH_lint.json}"
echo "== rololint ./... warm wall time (best of $count)" >&2
go build -o bin/rololint ./cmd/rololint || exit 1
./bin/rololint ./... >/dev/null || exit 1
best=""
i=0
while [ "$i" -lt "$count" ]; do
	t0=$(date +%s%N)
	./bin/rololint ./... >/dev/null || exit 1
	t1=$(date +%s%N)
	ms=$(((t1 - t0) / 1000000))
	echo "  run $((i + 1)): ${ms}ms" >&2
	if [ -z "$best" ] || [ "$ms" -lt "$best" ]; then
		best=$ms
	fi
	i=$((i + 1))
done
analyzers=$(./bin/rololint -flags | grep -o '"Name"' | wc -l)
printf '{\n  "go": "%s",\n  "count": %s,\n  "analyzers": %s,\n  "warm_wall_ms": %s,\n  "budget_ms": 850\n}\n' \
	"$(go env GOVERSION)" "$count" "$analyzers" "$best" >"$lintout" || exit 1
echo "bench.sh: wrote $lintout" >&2
