#!/bin/sh
# Full verification gate: build, vet, rololint, race-enabled tests, and a
# short fuzz smoke. Run from the repository root (or via `make check`).
# Every stage enumerates packages with `./...` patterns, which never
# descend into testdata: analyzer fixture packages (deliberate
# violations) are skipped here and — for explicit patterns and vet
# configs — by the drivers themselves (analysis.IsFixturePath).
set -u

cd "$(dirname "$0")/.."

if ! command -v go >/dev/null 2>&1; then
	echo "check.sh: go toolchain not found in PATH; install Go to run the gate" >&2
	exit 1
fi

# stage <name> <cmd...> runs one gate stage, naming the stage that failed
# and propagating its exit status.
stage() {
	name="$1"
	shift
	echo "== $name"
	"$@"
	status=$?
	if [ "$status" -ne 0 ]; then
		echo "check.sh: stage failed: $name (exit $status)" >&2
		exit "$status"
	fi
}

stage "go build ./..." go build ./...
stage "go vet ./..." go vet ./...
stage "build rololint" go build -o bin/rololint ./cmd/rololint
stage "go vet -vettool=bin/rololint ./..." go vet -vettool=bin/rololint ./...
stage "go test -race ./..." go test -race ./...

# Fuzz smoke: a few seconds per target catches parser regressions on the
# seed corpus plus whatever the engine reaches quickly; `make fuzz` runs
# the long version.
stage "fuzz smoke: FuzzParseMSR" \
	go test -run '^$' -fuzz 'FuzzParseMSR$' -fuzztime 3s ./internal/trace/
stage "fuzz smoke: FuzzParseSyntheticSpec" \
	go test -run '^$' -fuzz 'FuzzParseSyntheticSpec$' -fuzztime 3s ./internal/trace/

echo "OK"
