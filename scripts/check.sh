#!/bin/sh
# Full verification gate: build, vet, rololint, race-enabled tests, a
# race-enabled parallel experiment smoke, and a short fuzz smoke. Run from
# the repository root (or via `make check`).
#
# With no arguments every stage group runs in order. Arguments select
# groups, so CI can run them as separately-reported steps:
#
#	./scripts/check.sh build lint        # compile + analyzer gates only
#	./scripts/check.sh race-smoke        # the parallel runner under -race
#
# Groups: build, lint, test, race-smoke, bench-smoke, journal-smoke,
# fleet-smoke, fuzz.
#
# Every stage enumerates packages with `./...` patterns, which never
# descend into testdata: analyzer fixture packages (deliberate
# violations) are skipped here and — for explicit patterns and vet
# configs — by the drivers themselves (analysis.IsFixturePath).
set -u

cd "$(dirname "$0")/.."

if ! command -v go >/dev/null 2>&1; then
	echo "check.sh: go toolchain not found in PATH; install Go to run the gate" >&2
	exit 1
fi

groups="${*:-build lint test race-smoke bench-smoke journal-smoke fleet-smoke fuzz}"
for g in $groups; do
	case "$g" in
	build | lint | test | race-smoke | bench-smoke | journal-smoke | fleet-smoke | fuzz) ;;
	*)
		echo "check.sh: unknown stage group \"$g\" (have: build lint test race-smoke bench-smoke journal-smoke fleet-smoke fuzz)" >&2
		exit 2
		;;
	esac
done

want() {
	case " $groups " in
	*" $1 "*) return 0 ;;
	*) return 1 ;;
	esac
}

# stage <name> <cmd...> runs one gate stage, naming the stage that failed
# and propagating its exit status.
stage() {
	name="$1"
	shift
	echo "== $name"
	"$@"
	status=$?
	if [ "$status" -ne 0 ]; then
		echo "check.sh: stage failed: $name (exit $status)" >&2
		exit "$status"
	fi
}

if want build; then
	stage "go build ./..." go build ./...
	stage "go vet ./..." go vet ./...
fi

if want lint; then
	stage "build rololint" go build -o bin/rololint ./cmd/rololint
	stage "go vet -vettool=bin/rololint ./..." go vet -vettool=bin/rololint ./...
	# Both drivers must agree: the standalone loader and the vettool
	# protocol analyze the same packages with the same fact propagation,
	# so their finding sets on ./... must be identical once the vettool's
	# extra _test.go coverage is set aside. A divergence means one driver
	# is dropping facts (or loading packages the other does not see).
	stage "driver parity: standalone vs vettool finding sets" \
		sh -c 'std=$(./bin/rololint ./... 2>&1 | sed "s#^$(pwd)/##" | grep -E "^[^ ]+\.go:[0-9]+:[0-9]+: " | sort -u); \
			vet=$(go vet -vettool=bin/rololint ./... 2>&1 | grep -E "^[^ ]+\.go:[0-9]+:[0-9]+: " | grep -v "_test\.go:" | sort -u); \
			[ "$std" = "$vet" ] || { echo "driver parity broken:" >&2; echo "--- standalone only or both" >&2; echo "$std" >&2; echo "--- vettool (non-test)" >&2; echo "$vet" >&2; exit 1; }'
	# Parity must also hold for analyzer subsets: the valueflow family
	# shares one SSA/fact cache per package, so disabling one member must
	# not change what the others (or the rest of the suite) report, and
	# the two drivers must still agree finding-for-finding. One pass per
	# valueflow analyzer, with that analyzer disabled. lintallow is also
	# left out of these passes: disabling an analyzer makes its waivers
	# stale by construction, which is noise here, not a parity signal.
	all_analyzers="simdeterminism telemetryguard simtimeunits errpropagation resourcelifecycle phasepairing statetransition invariantguard guardedby lockcontract gocapture waitpairing lockorder chanmisuse goroleak nilness unitflow taintbounds lintallow"
	for off in nilness unitflow taintbounds; do
		flags=""
		for a in $all_analyzers; do
			[ "$a" = "$off" ] || [ "$a" = "lintallow" ] || flags="$flags -$a"
		done
		stage "driver parity with -$off disabled" \
			sh -c "std=\$(./bin/rololint $flags ./... 2>&1 | sed \"s#^\$(pwd)/##\" | grep -E '^[^ ]+\.go:[0-9]+:[0-9]+: ' | sort -u); \
				vet=\$(go vet -vettool=bin/rololint $flags ./... 2>&1 | grep -E '^[^ ]+\.go:[0-9]+:[0-9]+: ' | grep -v '_test\.go:' | sort -u); \
				[ \"\$std\" = \"\$vet\" ] || { echo 'driver parity broken with -$off disabled:' >&2; echo '--- standalone' >&2; echo \"\$std\" >&2; echo '--- vettool (non-test)' >&2; echo \"\$vet\" >&2; exit 1; }"
	done
	# -fix must be a fixed point on the gate-clean tree: it exits 0 and
	# rewrites nothing (compared by content hash over the tracked .go
	# files, so a locally dirty tree doesn't false-fail the stage). The
	# golden-file tests cover convergence on trees that do have findings.
	stage "rololint -fix (idempotent, no rewrites on a clean tree)" \
		sh -c 'snap() { git ls-files -z "*.go" | xargs -0 sha256sum | sha256sum; }; \
			before=$(snap) && ./bin/rololint -fix ./... && after=$(snap) && \
			{ [ "$before" = "$after" ] || { echo "rololint -fix rewrote files on a clean tree" >&2; exit 1; }; }'
	# Waiver audit: -allows exits 2 if any //lint:allow directive is
	# stale (suppresses nothing) or inert (no reason), so dead waivers
	# cannot linger once the finding they covered is gone.
	stage "rololint -allows (no stale or inert waivers)" \
		./bin/rololint -allows ./...
	# The SARIF report CI uploads as an artifact; also a shape gate, since
	# -sarif exercises the renderer over the real suite and tree.
	stage "rololint -sarif bin/rololint.sarif ./..." \
		./bin/rololint -sarif bin/rololint.sarif ./...
	# Latency budget: a warm standalone run over the whole module (the
	# local iteration loop) must stay under 850 ms with all 18 analyzers
	# plus the waiver audit enabled. The budget moves with the tree —
	# raised from 700 ms when the fleet layer added two packages — so it
	# catches lint regressions, not module growth. The earlier stages have
	# already warmed the build cache; scripts/bench.sh records the
	# measured trajectory in BENCH_lint.json.
	# Best of three runs, so one scheduler hiccup does not fail the gate.
	stage "rololint warm wall-time budget (<850ms)" \
		sh -c 'best=""; for i in 1 2 3; do \
				t0=$(date +%s%N); ./bin/rololint ./... >/dev/null || exit 1; t1=$(date +%s%N); \
				ms=$(( (t1 - t0) / 1000000 )); \
				if [ -z "$best" ] || [ "$ms" -lt "$best" ]; then best=$ms; fi; \
			done; \
			echo "warm standalone run: best ${best}ms of 3 (budget 850ms)"; \
			[ "$best" -lt 850 ] || { echo "rololint warm run exceeded the 850ms budget" >&2; exit 1; }'
fi

if want test; then
	stage "go test -race ./..." go test -race ./...
fi

# The parallel experiment runner under the race detector: every experiment
# at toy scale, four simulations in flight, sanitizer on. This exercises
# the pool, the result memo and the output streaming under real
# interleavings — the schedules `go test -race` alone would not produce.
if want race-smoke; then
	stage "build roloexp (-race)" go build -race -o bin/roloexp.race ./cmd/roloexp
	stage "roloexp -run all -jobs 4 -check (race smoke)" \
		sh -c './bin/roloexp.race -run all -jobs 4 -check -scale 0.01 -pairs 4 >/dev/null'
fi

# Bench smoke: run every BenchmarkCore* hot-path benchmark exactly once so
# the suite compiles and its 0-alloc setup code keeps working; `make bench`
# runs the timed version and records BENCH_core.json.
if want bench-smoke; then
	stage "bench smoke: go test -bench=Core -benchtime=1x" \
		go test -run '^$' -bench 'Core' -benchtime 1x \
		./internal/sim/ ./internal/intervals/ ./internal/metrics/ ./internal/telemetry/ \
		./internal/disk/ ./internal/fleet/
fi

# Journal smoke: a race-built rolosim writes a rotated, compressed journal
# through the async pipeline (ring handoff, writer goroutine, rotation,
# gzip archival, manifest) and rolostat verifies every segment checksum
# against the manifest. This drives the real binaries end to end under
# the race detector — the integration the unit tests can't cover.
if want journal-smoke; then
	stage "build rolosim (-race) + rolostat" \
		sh -c 'go build -race -o bin/rolosim.race ./cmd/rolosim && go build -o bin/rolostat ./cmd/rolostat'
	stage "rolosim -journal-segment -journal-compress (async journal smoke)" \
		sh -c 'rm -rf bin/journal-smoke && ./bin/rolosim.race -scheme RoLo-P -profile src2_2 -scale 0.01 -probe-interval 30s \
			-journal bin/journal-smoke -journal-segment 65536 -journal-compress >/dev/null'
	stage "rolostat -verify (manifest integrity)" \
		sh -c './bin/rolostat -verify bin/journal-smoke >/dev/null && rm -rf bin/journal-smoke'
fi

# Fleet smoke: a race-built rolofleet runs a sharded cluster with the
# sanitizer on, once serial and once on four jobs, and the two reports
# must hash identically — the end-to-end check of the deterministic
# streaming merge (DESIGN §16) under real goroutine interleavings.
if want fleet-smoke; then
	stage "build rolofleet (-race)" go build -race -o bin/rolofleet.race ./cmd/rolofleet
	stage "rolofleet -shards 32 -check: identical output at -jobs 1 and -jobs 4" \
		sh -c 'par=$(./bin/rolofleet.race -shards 32 -scale 0.01 -check -jobs 4 2>/dev/null | sha256sum) && \
			ser=$(./bin/rolofleet.race -shards 32 -scale 0.01 -check -jobs 1 2>/dev/null | sha256sum) && \
			{ [ "$par" = "$ser" ] || { echo "fleet report depends on -jobs: $par vs $ser" >&2; exit 1; }; }'
fi

# Fuzz smoke: a few seconds per target catches parser regressions on the
# seed corpus plus whatever the engine reaches quickly; `make fuzz` runs
# the long version.
if want fuzz; then
	stage "fuzz smoke: FuzzParseMSR" \
		go test -run '^$' -fuzz 'FuzzParseMSR$' -fuzztime 3s ./internal/trace/
	stage "fuzz smoke: FuzzParseSyntheticSpec" \
		go test -run '^$' -fuzz 'FuzzParseSyntheticSpec$' -fuzztime 3s ./internal/trace/
	stage "fuzz smoke: FuzzJournalRoundTrip" \
		go test -run '^$' -fuzz 'FuzzJournalRoundTrip$' -fuzztime 3s ./internal/telemetry/journal/
fi

echo "OK"
