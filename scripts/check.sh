#!/bin/sh
# Full verification gate: build, vet, rololint, and race-enabled tests.
# Run from the repository root (or via `make check`).
set -u

cd "$(dirname "$0")/.."

if ! command -v go >/dev/null 2>&1; then
	echo "check.sh: go toolchain not found in PATH; install Go to run the gate" >&2
	exit 1
fi

# stage <name> <cmd...> runs one gate stage, naming the stage that failed
# and propagating its exit status.
stage() {
	name="$1"
	shift
	echo "== $name"
	"$@"
	status=$?
	if [ "$status" -ne 0 ]; then
		echo "check.sh: stage failed: $name (exit $status)" >&2
		exit "$status"
	fi
}

stage "go build ./..." go build ./...
stage "go vet ./..." go vet ./...
stage "build rololint" go build -o bin/rololint ./cmd/rololint
stage "go vet -vettool=bin/rololint ./..." go vet -vettool=bin/rololint ./...
stage "go test -race ./..." go test -race ./...

echo "OK"
