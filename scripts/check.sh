#!/bin/sh
# Full verification gate: build, vet, and race-enabled tests.
# Run from the repository root (or via `make check`).
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

echo "OK"
