package rolo

import (
	"testing"

	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/trace"
)

// smallConfig returns a 4-pair array with small disks so logging cycles,
// rotations and destages all happen within short tests.
func smallConfig(s Scheme) Config {
	cfg := DefaultConfig(s)
	cfg.Pairs = 4
	cfg.Disk.CapacityBytes = 1 << 30 // 1 GiB drives
	cfg.FreeBytesPerDisk = 512 << 20 // half free, as in the paper
	cfg.GRAID.LogCapacityBytes = 512 << 20
	return cfg
}

// writeHeavy generates a workload that writes several times the logging
// capacity, forcing rotations/destages.
func writeHeavy(t *testing.T, cfg Config, iops float64, dur sim.Time, writeRatio float64) []trace.Record {
	t.Helper()
	syn := trace.Synthetic{
		Duration:             dur,
		IOPS:                 iops,
		WriteRatio:           writeRatio,
		AvgReqBytes:          64 << 10,
		FixedSize:            true,
		RandomFrac:           0.7,
		WriteWorkingSetBytes: cfg.VolumeBytes() / 2,
		ReadWorkingSetBytes:  256 << 20,
		ReadZipfS:            1.4,
		Seed:                 7,
	}
	recs, err := syn.Generate(cfg.VolumeBytes())
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestRunAllSchemesSmoke(t *testing.T) {
	for _, s := range Schemes {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			cfg := smallConfig(s)
			recs := writeHeavy(t, cfg, 100, 2*sim.Minute, 0.95)
			rep, err := Run(cfg, recs)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if rep.Requests != int64(len(recs)) {
				t.Errorf("Requests = %d, want %d (every request must complete)",
					rep.Requests, len(recs))
			}
			if rep.EnergyJ <= 0 {
				t.Errorf("EnergyJ = %g", rep.EnergyJ)
			}
			if rep.MeanResponseMs <= 0 {
				t.Errorf("MeanResponseMs = %g", rep.MeanResponseMs)
			}
			if rep.DrainedAt < rep.Horizon {
				t.Errorf("drained at %v before horizon %v", rep.DrainedAt, rep.Horizon)
			}
			t.Logf("%-7s energy=%.0fJ mean=%.2fms p99=%.1fms spins=%d rot=%d dest=%d hit=%.2f direct=%d",
				s, rep.EnergyJ, rep.MeanResponseMs, rep.P99ResponseMs,
				rep.SpinCycles, rep.Rotations, rep.Destages, rep.ReadHitRate, rep.DirectWrites)
		})
	}
}
