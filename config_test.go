package rolo

import (
	"testing"

	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/trace"
)

func TestParseScheme(t *testing.T) {
	for _, s := range Schemes {
		got, err := ParseScheme(s.String())
		if err != nil || got != s {
			t.Errorf("ParseScheme(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseScheme("raid10"); err == nil {
		t.Error("lowercase name accepted (names are exact)")
	}
	if _, err := ParseScheme(""); err == nil {
		t.Error("empty name accepted")
	}
}

func TestSchemeString(t *testing.T) {
	if Scheme(0).String() == "" || Scheme(99).String() == "" {
		t.Error("unknown schemes must still render")
	}
}

func TestConfigValidate(t *testing.T) {
	for _, s := range Schemes {
		if err := DefaultConfig(s).Validate(); err != nil {
			t.Errorf("default %v config rejected: %v", s, err)
		}
	}
	bad := []func(*Config){
		func(c *Config) { c.Scheme = 0 },
		func(c *Config) { c.Pairs = 0 },
		func(c *Config) { c.FreeBytesPerDisk = c.Disk.CapacityBytes },
		func(c *Config) { c.FreeBytesPerDisk = -1 },
		func(c *Config) { c.Disk.CapacityBytes = 0 },
		func(c *Config) { c.StripeUnitBytes = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig(SchemeRAID10)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestGeometryDerivation(t *testing.T) {
	cfg := DefaultConfig(SchemeRoLoP)
	g := cfg.Geometry()
	if g.DataBytesPerDisk%cfg.StripeUnitBytes != 0 {
		t.Error("data region not stripe-aligned")
	}
	if g.DataBytesPerDisk+cfg.FreeBytesPerDisk > cfg.Disk.CapacityBytes {
		t.Error("data + free exceeds disk")
	}
	if cfg.VolumeBytes() != int64(cfg.Pairs)*g.DataBytesPerDisk {
		t.Error("volume size mismatch")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	cfg := smallConfig(SchemeRAID10)
	if _, err := Run(cfg, nil); err == nil {
		t.Error("empty trace accepted")
	}
	badRecs := []trace.Record{{At: 0, Op: trace.Write, Offset: cfg.VolumeBytes(), Size: 4096}}
	if _, err := Run(cfg, badRecs); err == nil {
		t.Error("out-of-volume trace accepted")
	}
	badCfg := cfg
	badCfg.Pairs = -1
	good := []trace.Record{{At: 0, Op: trace.Write, Offset: 0, Size: 4096}}
	if _, err := Run(badCfg, good); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := smallConfig(SchemeRoLoP)
	recs := writeHeavy(t, cfg, 50, 30*sim.Second, 0.9)
	a, err := Run(cfg, recs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, recs)
	if err != nil {
		t.Fatal(err)
	}
	if a.EnergyJ != b.EnergyJ || a.MeanResponseMs != b.MeanResponseMs ||
		a.SpinCycles != b.SpinCycles || a.Rotations != b.Rotations {
		t.Fatalf("non-deterministic runs:\n%+v\n%+v", a, b)
	}
}

func TestGenerateProfileErrors(t *testing.T) {
	cfg := DefaultConfig(SchemeRAID10)
	if _, err := GenerateProfile("nope", cfg, 0.1); err == nil {
		t.Error("unknown profile accepted")
	}
	if _, err := GenerateProfile("src2_2", cfg, 0); err == nil {
		t.Error("zero scale accepted")
	}
}

func TestReportStateSecondsCoverHorizon(t *testing.T) {
	cfg := smallConfig(SchemeRoLoP)
	recs := writeHeavy(t, cfg, 50, 30*sim.Second, 1.0)
	rep, err := Run(cfg, recs)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, v := range rep.StateSeconds {
		total += v
	}
	// Aggregate state time = disks x drained duration.
	want := float64(2*cfg.Pairs) * rep.DrainedAt.Seconds()
	if total < want*0.999 || total > want*1.001 {
		t.Fatalf("state seconds %.1f, want ~%.1f", total, want)
	}
}

func TestMultiLoggerConfigThroughFacade(t *testing.T) {
	cfg := smallConfig(SchemeRoLoP)
	cfg.RoLo.OnDutyLoggers = 2
	recs := writeHeavy(t, cfg, 100, 30*sim.Second, 1.0)
	rep, err := Run(cfg, recs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != int64(len(recs)) {
		t.Fatalf("requests = %d, want %d", rep.Requests, len(recs))
	}
}
