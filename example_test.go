package rolo_test

import (
	"fmt"
	"log"

	"github.com/rolo-storage/rolo"
	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/trace"
)

// ExampleRun simulates RoLo-P against a small synthetic burst workload and
// prints deterministic counters.
func ExampleRun() {
	cfg := rolo.DefaultConfig(rolo.SchemeRoLoP)
	cfg.Pairs = 4
	cfg.Disk.CapacityBytes = 1 << 30
	cfg.FreeBytesPerDisk = 512 << 20

	workload := trace.Synthetic{
		Duration:    sim.Minute,
		IOPS:        50,
		WriteRatio:  1.0,
		AvgReqBytes: 64 << 10,
		FixedSize:   true,
		RandomFrac:  0.7,
		Seed:        1,
	}
	recs, err := workload.Generate(cfg.VolumeBytes())
	if err != nil {
		log.Fatal(err)
	}
	rep, err := rolo.Run(cfg, recs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheme=%v requests=%d rotations=%d spins=%d\n",
		rep.Scheme, rep.Requests, rep.Rotations, rep.SpinCycles)
	// Output:
	// scheme=RoLo-P requests=3018 rotations=0 spins=0
}

// ExampleParseScheme resolves scheme names as printed in the paper.
func ExampleParseScheme() {
	s, err := rolo.ParseScheme("RoLo-E")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(s, int(s) > 0)
	// Output:
	// RoLo-E true
}

// ExampleConfig_VolumeBytes shows how the logical volume follows from the
// disk capacity, free-space reservation and pair count.
func ExampleConfig_VolumeBytes() {
	cfg := rolo.DefaultConfig(rolo.SchemeRAID10)
	cfg.Pairs = 2
	cfg.Disk.CapacityBytes = 1 << 30
	cfg.FreeBytesPerDisk = 256 << 20
	fmt.Println(cfg.VolumeBytes() == 2*(1<<30-256<<20))
	// Output:
	// true
}
