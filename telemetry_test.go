package rolo

import (
	"bytes"
	"io"
	"math"
	"reflect"
	"testing"

	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/telemetry"
	"github.com/rolo-storage/rolo/internal/telemetry/journal"
)

// TestJournalDeterminism is the telemetry regression contract: two
// identical runs must produce byte-identical journals, journal event
// counts must agree with the Report counters, and attaching a sink must
// not perturb the simulation at all.
func TestJournalDeterminism(t *testing.T) {
	cfg := smallConfig(SchemeRoLoP)
	recs := writeHeavy(t, cfg, 100, 2*sim.Minute, 0.95)

	runOnce := func() (Report, []byte, *telemetry.CountingSink) {
		var buf bytes.Buffer
		var counts telemetry.CountingSink
		c := cfg
		c.Telemetry.Sink = telemetry.TeeSink{telemetry.NewJSONLSink(&buf), &counts}
		c.Telemetry.ProbeInterval = 10 * sim.Second
		rep, err := Run(c, recs)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return rep, buf.Bytes(), &counts
	}

	rep1, j1, counts := runOnce()
	_, j2, _ := runOnce()
	if !bytes.Equal(j1, j2) {
		t.Fatalf("identical runs produced different journals (%d vs %d bytes)", len(j1), len(j2))
	}
	if len(j1) == 0 {
		t.Fatal("journal is empty")
	}

	events, err := telemetry.ParseJournal(bytes.NewReader(j1))
	if err != nil {
		t.Fatalf("ParseJournal: %v", err)
	}
	var prev sim.Time
	for i, ev := range events {
		if ev.At < prev {
			t.Fatalf("event %d at %v precedes %v: journal not monotonic", i, ev.At, prev)
		}
		prev = ev.At
	}

	if got := counts.Count(telemetry.KindRotation); got != int64(rep1.Rotations) {
		t.Errorf("journal rotations = %d, report says %d", got, rep1.Rotations)
	}
	if got := counts.Count(telemetry.KindSpinUp); got != int64(rep1.SpinCycles) {
		t.Errorf("journal spin-ups = %d, report says %d spin cycles", got, rep1.SpinCycles)
	}
	if got := counts.Count(telemetry.KindRequestStart); got != rep1.Requests {
		t.Errorf("journal request starts = %d, report says %d requests", got, rep1.Requests)
	}
	if got := counts.Count(telemetry.KindRequestDone); got != rep1.Requests {
		t.Errorf("journal request dones = %d, report says %d requests", got, rep1.Requests)
	}
	if rep1.ProbeSamples == 0 {
		t.Error("ProbeSamples = 0 with probes enabled")
	}
	if got := counts.Count(telemetry.KindProbe); got != int64(rep1.ProbeSamples) {
		t.Errorf("journal probes = %d, report says %d samples", got, rep1.ProbeSamples)
	}

	// A run with no sink and no probes must report exactly the same
	// results (telemetry is observation, not behavior).
	plain, err := Run(cfg, recs)
	if err != nil {
		t.Fatalf("Run without telemetry: %v", err)
	}
	withSink := rep1
	withSink.ProbeSamples = 0
	withSink.PeakLogOccupancy = 0
	withSink.PeakDestageBacklogBytes = 0
	withSink.PeakSpinningDisks = 0
	if !reflect.DeepEqual(plain, withSink) {
		t.Errorf("telemetry perturbed the report:\nwith:    %+v\nwithout: %+v", withSink, plain)
	}
}

// TestRotatedJournalByteEquivalence is the async pipeline's acceptance
// gate: for a fixed seed, a run journaled through the async sink into
// rotated gzip-compressed segments must reproduce, after decompression
// and concatenation, exactly the bytes of the synchronous single-file
// journal — and under the blocking policy nothing may be dropped.
func TestRotatedJournalByteEquivalence(t *testing.T) {
	cfg := smallConfig(SchemeRoLoP)
	recs := writeHeavy(t, cfg, 100, 2*sim.Minute, 0.95)

	var single bytes.Buffer
	syncCfg := cfg
	syncCfg.Telemetry.Sink = telemetry.NewJSONLSink(&single)
	syncCfg.Telemetry.ProbeInterval = 10 * sim.Second
	if _, err := Run(syncCfg, recs); err != nil {
		t.Fatalf("synchronous run: %v", err)
	}
	if single.Len() == 0 {
		t.Fatal("synchronous journal is empty")
	}

	dir := t.TempDir()
	w, err := journal.NewRotatingWriter(journal.RotateConfig{
		Dir: dir, SegmentBytes: 8 << 10, Compress: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A small ring forces the simulation goroutine through the
	// backpressure path, not just the happy path.
	sink := journal.NewAsyncSink(w, journal.AsyncConfig{Buffer: 64, Policy: journal.PolicyBlock})
	asyncCfg := cfg
	asyncCfg.Telemetry.Sink = sink
	asyncCfg.Telemetry.ProbeInterval = 10 * sim.Second
	if _, err := Run(asyncCfg, recs); err != nil {
		t.Fatalf("async run: %v", err)
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("closing async sink: %v", err)
	}
	if st := sink.Stats(); st.Dropped != 0 {
		t.Fatalf("blocking policy dropped %d events", st.Dropped)
	}

	m, err := journal.Verify(dir)
	if err != nil {
		t.Fatalf("manifest verification: %v", err)
	}
	if len(m.Segments) < 3 {
		t.Fatalf("run produced only %d segments; rotation not exercised", len(m.Segments))
	}

	var rotated bytes.Buffer
	r, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var scratch []byte
	for {
		ev, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		scratch = telemetry.AppendEvent(scratch[:0], ev)
		rotated.Write(scratch)
	}
	if !bytes.Equal(single.Bytes(), rotated.Bytes()) {
		t.Fatalf("rotated journal diverges from single-file baseline (%d vs %d bytes)",
			rotated.Len(), single.Len())
	}
}

// TestPerDiskStateSeconds checks the per-disk state accounting sums back
// to the aggregate StateSeconds map for every scheme.
func TestPerDiskStateSeconds(t *testing.T) {
	for _, s := range []Scheme{SchemeRAID10, SchemeGRAID, SchemeRoLoP, SchemeRoLoE} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			cfg := smallConfig(s)
			recs := writeHeavy(t, cfg, 50, sim.Minute, 0.95)
			rep, err := Run(cfg, recs)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			wantDisks := 2 * cfg.Pairs
			if s == SchemeGRAID {
				wantDisks++ // dedicated log disk
			}
			if len(rep.DiskStateSeconds) != wantDisks {
				t.Fatalf("DiskStateSeconds has %d entries, want %d", len(rep.DiskStateSeconds), wantDisks)
			}
			sums := make(map[string]float64)
			for _, per := range rep.DiskStateSeconds {
				for st, sec := range per {
					sums[st] += sec
				}
			}
			if len(sums) != len(rep.StateSeconds) {
				t.Fatalf("per-disk states %v, aggregate states %v", sums, rep.StateSeconds)
			}
			for st, want := range rep.StateSeconds {
				if got := sums[st]; math.Abs(got-want) > 1e-6*math.Max(1, want) {
					t.Errorf("state %s: per-disk sum %.9f, aggregate %.9f", st, got, want)
				}
			}
		})
	}
}
