// Command rolofleet simulates a fleet of independent arrays — one per
// tenant shard — and prints one merged, deterministic cluster report.
// The report bytes depend only on the fleet spec, never on -jobs: shards
// run concurrently on a worker pool but their reports fold in shard
// order through a constant-memory streaming merge.
//
// Usage:
//
//	rolofleet -shards 512 -jobs 8
//	rolofleet -shards 100 -scheme RoLo-P,RoLo-E -workload 'iops=120 write=0.9 duration=30s size=32K random=0.7 seed=5'
//	rolofleet -fleet cluster.spec -json
//	rolofleet -shards 32 -jobs 4 -check
//
// A spec file (-fleet) holds one "key value" pair per line — shards,
// scheme, pairs, scale, free, stripe, seed-stride, iops-spread, worst,
// workload — and command-line flags override it. With -journal DIR every
// shard writes a rotated telemetry journal under DIR/shard-NNNNN/
// through the async pipeline's drop policy.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/rolo-storage/rolo/internal/fleet"
	"github.com/rolo-storage/rolo/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rolofleet:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		specFile   = flag.String("fleet", "", "fleet spec file (flags below override its keys)")
		shards     = flag.Int("shards", 0, "number of tenant shards (overrides spec)")
		schemes    = flag.String("scheme", "", "comma-separated schemes cycled across shards, or \"all\" (overrides spec)")
		workload   = flag.String("workload", "", "base tenant workload spec, e.g. 'iops=120 write=0.9 duration=30s size=32K random=0.7 seed=5'")
		pairs      = flag.Int("pairs", 0, "mirrored pairs per shard (overrides spec)")
		scale      = flag.Float64("scale", 0, "geometry+trace scale factor in (0,1] (overrides spec)")
		freeGiB    = flag.Float64("free", 0, "per-shard-disk free (logging) space in GiB before scaling (overrides spec)")
		stripeKB   = flag.Int64("stripe", 0, "stripe unit in KB (overrides spec)")
		seedStride = flag.Int64("seed-stride", 0, "per-shard seed spacing (overrides spec)")
		iopsSpread = flag.Float64("iops-spread", -1, "per-shard IOPS spread in [0,1) (overrides spec)")
		worstK     = flag.Int("worst", 0, "worst-shard digest size (overrides spec)")
		jobs       = flag.Int("jobs", 1, "concurrent shard simulations (0 = GOMAXPROCS)")
		check      = flag.Bool("check", false, "enable RoloSan invariant checking in every shard")
		asJSON     = flag.Bool("json", false, "emit the cluster report as JSON instead of text")
		journalTo  = flag.String("journal", "", "write one rotated telemetry journal per shard under this directory")
		jSegment   = flag.Int64("journal-segment", 0, "journal segment size in bytes (requires -journal; 0 = default)")
		jCompress  = flag.Bool("journal-compress", false, "gzip completed journal segments (requires -journal)")
		jRetain    = flag.Int("journal-retain", 0, "keep only the newest N segments per shard (0 = all; requires -journal)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q", flag.Args())
	}

	spec := fleet.DefaultSpec()
	if *specFile != "" {
		f, err := os.Open(*specFile)
		if err != nil {
			return err
		}
		defer f.Close() //lint:allow resourcelifecycle:dropped-error read-only spec file, close error carries no data
		spec, err = fleet.ParseSpec(f)
		if err != nil {
			return err
		}
	}
	if *shards > 0 {
		spec.Shards = *shards
	}
	if *schemes != "" {
		list, err := fleet.ParseSchemeList(*schemes)
		if err != nil {
			return err
		}
		spec.Schemes = list
	}
	if *workload != "" {
		base, err := trace.ParseSyntheticSpec(*workload)
		if err != nil {
			return err
		}
		spec.Base = base
	}
	if *pairs > 0 {
		spec.Pairs = *pairs
	}
	if *scale > 0 {
		spec.Scale = *scale
	}
	if *freeGiB > 0 {
		spec.FreeGiB = *freeGiB
	}
	if *stripeKB > 0 {
		spec.StripeKB = *stripeKB
	}
	if *seedStride != 0 {
		spec.Rule.SeedStride = *seedStride
	}
	if *iopsSpread >= 0 {
		spec.Rule.IOPSSpread = *iopsSpread
	}
	if *worstK > 0 {
		spec.WorstK = *worstK
	}
	spec.Check = *check
	if *journalTo == "" && (*jSegment != 0 || *jCompress || *jRetain != 0) {
		return fmt.Errorf("journal options require -journal <dir>")
	}
	if *journalTo != "" {
		spec.JournalDir = *journalTo
		spec.JournalSegmentBytes = *jSegment
		spec.JournalCompress = *jCompress
		spec.JournalRetain = *jRetain
	}
	if err := spec.Validate(); err != nil {
		return err
	}

	var pool fleet.Pool
	if *jobs != 1 {
		pool = fleet.NewPool(*jobs)
	}

	// Wall-clock timing is operator feedback on stderr only; the report
	// on stdout stays a pure function of the spec.
	start := time.Now() //lint:allow simdeterminism:wall-clock operator progress timing, never enters the report
	rep, err := fleet.Run(spec, pool)
	if err != nil {
		return err
	}
	elapsed := time.Since(start) //lint:allow simdeterminism:wall-clock operator progress timing, never enters the report
	fmt.Fprintf(os.Stderr, "rolofleet: %d shards in %.2fs (-jobs %d)\n",
		spec.Shards, elapsed.Seconds(), *jobs)

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	return rep.WriteText(os.Stdout)
}
