// Command roloexp regenerates the tables and figures of the RoLo paper's
// evaluation. With no arguments it lists the available experiments.
//
// Usage:
//
//	roloexp -run fig10 [-scale 0.1] [-pairs 20] [-jobs 4]
//	roloexp -run all
//	roloexp -list
//
// Independent simulations fan out across a worker pool of -jobs slots
// (default GOMAXPROCS); with -run all, whole experiments also run
// concurrently, each buffering its output so the bytes printed to stdout
// are identical for every job count. Per-experiment timing goes to
// stderr, keeping stdout deterministic.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/rolo-storage/rolo/internal/experiments"
	"github.com/rolo-storage/rolo/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "roloexp:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id         = flag.String("run", "", "experiment id to run, or \"all\"")
		list       = flag.Bool("list", false, "list available experiments")
		scale      = flag.Float64("scale", 0.1, "geometry+trace scale factor in (0,1]")
		pairs      = flag.Int("pairs", 20, "number of mirrored pairs (disks = 2*pairs)")
		jobs       = flag.Int("jobs", 0, "max simulations in flight (0 = GOMAXPROCS)")
		journalDir = flag.String("journal", "", "write one JSONL telemetry journal per run into this directory")
		jSegment   = flag.Int64("journal-segment", 0, "rotate each run's journal into segments of this many bytes, one subdirectory per run (0 = single file per run)")
		jCompress  = flag.Bool("journal-compress", false, "gzip completed journal segments (requires -journal-segment)")
		jRetain    = flag.Int("journal-retain", 0, "keep only the newest N segments per run (0 = all; requires -journal-segment)")
		probeIv    = flag.Duration("probe-interval", 0, "periodic telemetry probe spacing (e.g. 30s; 0 disables)")
		check      = flag.Bool("check", false, "enable RoloSan: validate simulation invariants in every run and fail on the first violation")
	)
	flag.Parse()

	if *list || *id == "" {
		fmt.Println("Available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-10s %s\n", e.ID, e.Title)
		}
		fmt.Println("\nRun one with: roloexp -run <id> [-scale 0.1] [-pairs 20] [-jobs 4]")
		return nil
	}

	opts := experiments.Options{
		Scale:               *scale,
		Pairs:               *pairs,
		JournalDir:          *journalDir,
		JournalSegmentBytes: *jSegment,
		JournalCompress:     *jCompress,
		JournalRetain:       *jRetain,
		ProbeInterval:       sim.Time((*probeIv) / time.Microsecond),
		Check:               *check,
		Jobs:                *jobs,
	}
	if err := opts.Validate(); err != nil {
		return err
	}
	if opts.JournalDir != "" {
		if err := os.MkdirAll(opts.JournalDir, 0o755); err != nil {
			return err
		}
	}
	opts = opts.Pool(0)

	start := time.Now() //lint:allow simdeterminism:wall-clock wall-clock runtime of the harness itself, not simulated time
	if *id == "all" {
		if err := experiments.RunAll(opts, os.Stdout, experiments.All()); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "[all experiments completed in %v, jobs=%d]\n",
			time.Since(start).Round(time.Millisecond), opts.Jobs) //lint:allow simdeterminism:wall-clock pairs with the wall-clock timer above
		return nil
	}

	e, err := experiments.Lookup(*id)
	if err != nil {
		return err
	}
	if err := e.Run(opts, os.Stdout); err != nil {
		return fmt.Errorf("%s: %w", e.ID, err)
	}
	fmt.Fprintf(os.Stderr, "[%s completed in %v]\n",
		e.ID, time.Since(start).Round(time.Millisecond)) //lint:allow simdeterminism:wall-clock pairs with the wall-clock timer above
	return nil
}
