// Command roloexp regenerates the tables and figures of the RoLo paper's
// evaluation. With no arguments it lists the available experiments.
//
// Usage:
//
//	roloexp -run fig10 [-scale 0.1] [-pairs 20]
//	roloexp -run all
//	roloexp -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/rolo-storage/rolo/internal/experiments"
	"github.com/rolo-storage/rolo/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "roloexp:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id         = flag.String("run", "", "experiment id to run, or \"all\"")
		list       = flag.Bool("list", false, "list available experiments")
		scale      = flag.Float64("scale", 0.1, "geometry+trace scale factor in (0,1]")
		pairs      = flag.Int("pairs", 20, "number of mirrored pairs (disks = 2*pairs)")
		journalDir = flag.String("journal", "", "write one JSONL telemetry journal per run into this directory")
		probeIv    = flag.Duration("probe-interval", 0, "periodic telemetry probe spacing (e.g. 30s; 0 disables)")
		check      = flag.Bool("check", false, "enable RoloSan: validate simulation invariants in every run and fail on the first violation")
	)
	flag.Parse()

	if *list || *id == "" {
		fmt.Println("Available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-10s %s\n", e.ID, e.Title)
		}
		fmt.Println("\nRun one with: roloexp -run <id> [-scale 0.1] [-pairs 20]")
		return nil
	}

	opts := experiments.Options{
		Scale:         *scale,
		Pairs:         *pairs,
		JournalDir:    *journalDir,
		ProbeInterval: sim.Time((*probeIv) / time.Microsecond),
		Check:         *check,
	}
	if err := opts.Validate(); err != nil {
		return err
	}
	if opts.JournalDir != "" {
		if err := os.MkdirAll(opts.JournalDir, 0o755); err != nil {
			return err
		}
	}

	var todo []experiments.Experiment
	if *id == "all" {
		todo = experiments.All()
	} else {
		e, err := experiments.Lookup(*id)
		if err != nil {
			return err
		}
		todo = []experiments.Experiment{e}
	}

	for i, e := range todo {
		if i > 0 {
			fmt.Println()
			fmt.Println("========================================================================")
			fmt.Println()
		}
		start := time.Now() //lint:allow simdeterminism wall-clock runtime of the harness itself, not simulated time
		if err := e.Run(opts, os.Stdout); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Printf("\n[%s completed in %v]\n", e.ID, time.Since(start).Round(time.Millisecond)) //lint:allow simdeterminism pairs with the wall-clock timer above
	}
	return nil
}
