// Command tracegen emits synthetic block traces in the MSR Cambridge CSV
// format, either from a calibrated profile of one of the paper's traces or
// from explicit generator parameters.
//
// Usage:
//
//	tracegen -profile src2_2 -scale 0.05 > src2_2.csv
//	tracegen -iops 100 -write-ratio 0.9 -duration 10m -size 64 > synth.csv
//	tracegen -spec "iops=200 write=0.9 duration=10m size=64K seed=3" > synth.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		profile    = flag.String("profile", "", "calibrated MSR profile (src2_2, proj_0, ...)")
		scale      = flag.Float64("scale", 0.05, "fraction of the profile window to emit")
		volumeGiB  = flag.Float64("volume", 208, "logical volume size in GiB")
		iops       = flag.Float64("iops", 100, "request rate (explicit mode)")
		writeRatio = flag.Float64("write-ratio", 1.0, "write fraction (explicit mode)")
		duration   = flag.Duration("duration", 10*time.Minute, "trace length (explicit mode)")
		sizeKB     = flag.Int64("size", 64, "average request size in KB (explicit mode)")
		randomFrac = flag.Float64("random", 0.7, "random-write fraction (explicit mode)")
		burst      = flag.Float64("burst", 0, "burstiness in [0,1) (explicit mode)")
		seed       = flag.Int64("seed", 1, "random seed (explicit mode)")
		hostname   = flag.String("hostname", "rolosim", "hostname column value")
		spec       = flag.String("spec", "", "compact workload spec (see trace.ParseSyntheticSpec); overrides explicit-mode flags")
		list       = flag.Bool("list", false, "list calibrated profiles")
	)
	flag.Parse()

	if *list {
		fmt.Fprintln(os.Stderr, "calibrated profiles:")
		for _, n := range trace.ProfileNames() {
			p := trace.Profiles[n]
			fmt.Fprintf(os.Stderr, "  %-8s write=%.1f%% burstIOPS=%.2f duty=%.3f avg=%.1fKB cap=%.2fGiB\n",
				n, 100*p.WriteRatio, p.IOPS, p.DutyCycle(), float64(p.AvgReqBytes)/1024, p.WriteCapGiB)
		}
		return nil
	}

	volume := int64(*volumeGiB * (1 << 30))
	var recs []trace.Record
	var err error
	if *profile != "" {
		p, lerr := trace.Lookup(*profile)
		if lerr != nil {
			return lerr
		}
		recs, err = p.Generate(volume, *scale)
	} else if *spec != "" {
		syn, serr := trace.ParseSyntheticSpec(*spec)
		if serr != nil {
			return serr
		}
		recs, err = syn.Generate(volume)
	} else {
		syn := trace.Synthetic{
			Duration:    sim.FromSeconds(duration.Seconds()),
			IOPS:        *iops,
			WriteRatio:  *writeRatio,
			AvgReqBytes: *sizeKB << 10,
			RandomFrac:  *randomFrac,
			Burstiness:  *burst,
			Seed:        *seed,
		}
		recs, err = syn.Generate(volume)
	}
	if err != nil {
		return err
	}
	st := trace.Characterize(recs)
	fmt.Fprintf(os.Stderr, "generated %d records: %.1f%% writes, %.2f IOPS avg, %.1f KB avg, %.2f GiB written\n",
		st.Requests, 100*st.WriteRatio, st.IOPS, st.AvgReqBytes/1024, float64(st.WriteBytes)/(1<<30))
	fmt.Fprintf(os.Stderr, "characteristics: duty %.3f, burst %.1f IOPS, peak %.0f IOPS, %.0f%% sequential, write WS %.2f GiB\n",
		st.DutyCycle, st.BurstIOPS, st.PeakIOPS, 100*st.SequentialFrac, float64(st.WriteWorkingSetBytes)/(1<<30))
	return trace.WriteMSR(os.Stdout, *hostname, 0, recs)
}
