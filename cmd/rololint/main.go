// Command rololint is the repository's static-analysis gate: a
// multichecker for the analyzers under internal/analysis that enforce
// simulation determinism, telemetry discipline, sim-time hygiene, error
// propagation, phase-log pairing, power-state-machine legality
// (statetransition), the sanitizer's audited-mutation-helper discipline
// (invariantguard), and the concurrency discipline of the parallel
// experiment runner: mutex-guarded field access (guardedby), goroutine
// capture hygiene (gocapture) and goroutine join pairing (waitpairing).
//
// It speaks the `go vet -vettool` protocol, so the canonical invocation —
// the one scripts/check.sh and CI run — is:
//
//	go build -o bin/rololint ./cmd/rololint
//	go vet -vettool=bin/rololint ./...
//
// which analyzes every package including _test.go files, with build-cache
// integration. For quick local iteration it can also load packages itself:
//
//	rololint ./...
//
// (standalone mode skips test files; the vettool form is the gate).
//
// Individual analyzers can be selected the same way as with go vet:
//
//	go vet -vettool=bin/rololint -simdeterminism ./...
//
// Findings are suppressed by a `//lint:allow <analyzer> <reason>` comment
// on the offending line or the line above; the reason is mandatory.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/rolo-storage/rolo/internal/analysis"
	"github.com/rolo-storage/rolo/internal/analysis/errpropagation"
	"github.com/rolo-storage/rolo/internal/analysis/invariantguard"
	"github.com/rolo-storage/rolo/internal/analysis/phasepairing"
	"github.com/rolo-storage/rolo/internal/analysis/raceguard"
	"github.com/rolo-storage/rolo/internal/analysis/simdeterminism"
	"github.com/rolo-storage/rolo/internal/analysis/simtimeunits"
	"github.com/rolo-storage/rolo/internal/analysis/statetransition"
	"github.com/rolo-storage/rolo/internal/analysis/telemetryguard"
)

// suite lists every analyzer in the gate, in reporting order.
var suite = []*analysis.Analyzer{
	simdeterminism.Analyzer,
	telemetryguard.Analyzer,
	simtimeunits.Analyzer,
	errpropagation.Analyzer,
	phasepairing.Analyzer,
	statetransition.Analyzer,
	invariantguard.Analyzer,
	raceguard.GuardedBy,
	raceguard.GoCapture,
	raceguard.WaitPairing,
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("rololint", flag.ExitOnError)
	versionFlag := fs.String("V", "", "print version and exit (-V=full for a build ID)")
	flagsFlag := fs.Bool("flags", false, "print analyzer flags in JSON (used by the go command)")
	enabled := make(map[string]*bool, len(suite))
	for _, a := range suite {
		enabled[a.Name] = fs.Bool(a.Name, false,
			"enable only the named analyzers ("+firstLine(a.Doc)+")")
	}
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: rololint [flags] [package pattern... | unit.cfg]\n\nanalyzers:\n")
		for _, a := range suite {
			fmt.Fprintf(fs.Output(), "  %-16s %s\n", a.Name, firstLine(a.Doc))
		}
		fmt.Fprintf(fs.Output(), "\nflags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *versionFlag != "" {
		return printVersion(*versionFlag)
	}
	if *flagsFlag {
		return printFlagsJSON()
	}

	// go vet semantics: naming any analyzer runs only the named ones;
	// naming none runs the full suite.
	var selected []*analysis.Analyzer
	for _, a := range suite {
		if *enabled[a.Name] {
			selected = append(selected, a)
		}
	}
	if len(selected) == 0 {
		selected = suite
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return analysis.RunUnitchecker(rest[0], selected, os.Stderr)
	}
	if len(rest) == 0 {
		fs.Usage()
		return 2
	}
	return analysis.RunStandalone(rest, selected, os.Stderr)
}

// printVersion implements -V. The go command requires the exact shape
// `<name> version devel ... buildID=<contentID>` (see
// cmd/go/internal/work.(*Builder).toolID) and uses the content ID to key
// its action cache, so the ID must change whenever the binary does: a
// hash of the executable itself serves.
func printVersion(mode string) int {
	progname := filepath.Base(os.Args[0])
	if mode != "full" {
		fmt.Printf("%s version devel\n", progname)
		return 0
	}
	h := sha256.New()
	exe, err := os.Executable()
	if err == nil {
		f, ferr := os.Open(exe)
		if ferr == nil {
			_, err = io.Copy(h, f)
			_ = f.Close() // read-only; the hash either succeeded or err is set
		} else {
			err = ferr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rololint: -V=full: %v\n", err)
		return 1
	}
	fmt.Printf("%s version devel buildID=%x\n", progname, h.Sum(nil))
	return 0
}

// printFlagsJSON implements -flags, the go command's query for the flags
// it may forward to a vettool.
func printFlagsJSON() int {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := make([]jsonFlag, 0, len(suite))
	for _, a := range suite {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: firstLine(a.Doc)})
	}
	out, err := json.Marshal(flags)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rololint: %v\n", err)
		return 1
	}
	fmt.Println(string(out))
	return 0
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
