// Command rololint is the repository's static-analysis gate: a
// multichecker for the eighteen analyzers under internal/analysis that
// enforce simulation determinism, telemetry discipline, sim-time hygiene,
// error propagation, resource Close obligations (resourcelifecycle),
// phase-log pairing, power-state-machine legality (statetransition), the
// sanitizer's audited-mutation-helper discipline (invariantguard), the
// concurrency discipline of the parallel experiment runner — mutex-guarded
// field access (guardedby), interprocedural lock contracts (lockcontract),
// goroutine capture hygiene (gocapture) and goroutine join pairing
// (waitpairing) — the liveness family: global lock-order cycles with
// deadlock witness paths (lockorder), blocking channel operations under
// mutexes and channels nothing closes (chanmisuse), and goroutines with no
// provable termination path (goroleak) — and the valueflow family, built
// on the SSA-lite value lattice: dereferences of provably or possibly nil
// values (nilness), arithmetic and assignment mixing time/byte/block/
// sector units (unitflow), and allocation sizes, indexes and append
// growth tainted by trace/CSV/flag/env input without a bound check
// (taintbounds). A nineteenth entry, the lintallow meta-check, audits the
// waivers themselves: a //lint:allow that suppresses nothing, lacks a
// reason, or names an unknown analyzer is a finding.
//
// The analyzers understand three declaration directives:
//
//	//rolosan:lockorder A < B   // declared acquisition order; violations
//	                            // are findings even before a cycle closes
//	//rolosan:daemon <reason>   // this goroutine intentionally runs for
//	                            // the process lifetime
//	//rolosan:unit <name>       // tags a type, package-level var, const
//	                            // or struct field with a unit dimension
//	                            // for unitflow ("time", "bytes", ...)
//
// placed on (or above) the relevant line, or in a function's doc comment
// for //rolosan:daemon.
//
// It speaks the `go vet -vettool` protocol, so the canonical invocation —
// the one scripts/check.sh and CI run — is:
//
//	go build -o bin/rololint ./cmd/rololint
//	go vet -vettool=bin/rololint ./...
//
// which analyzes every package including _test.go files, with build-cache
// integration; interprocedural facts (lock contracts, resource
// dispositions, resource-type annotations) ride the vetx files the go
// command caches and schedules dependency-first. For quick local
// iteration it can also load packages itself:
//
//	rololint ./...
//
// (standalone mode skips test files; the vettool form is the gate).
// Standalone mode additionally hosts the remediation and reporting modes:
//
//	rololint -fix ./...            # apply suggested fixes in place
//	rololint -fix -diff ./...      # dry run: print unified diffs instead
//	rololint -sarif report.sarif ./...  # write a SARIF 2.1.0 report
//	rololint -allows ./...         # audit every //lint:allow waiver
//
// -fix applies each finding's first suggested fix, leaves the files
// gofmt-clean, and is idempotent (an applied fix never reproduces its
// diagnostic); CI verifies that property. When two findings' fixes
// overlap, the earlier one is applied and the skipped fix is reported —
// rerunning -fix picks it up. -fix -diff applies nothing and prints the
// unified diff of what -fix would change. -sarif writes the report to
// the named file ("-" for stdout) for GitHub code-scanning upload.
// -allows prints every waiver with its rule, live/stale status, and
// reason, and exits 2 when any waiver is stale or inert — the audit
// stage scripts/check.sh runs; the lintallow meta-check reports the
// same conditions inside the normal gate.
//
// Individual analyzers can be selected the same way as with go vet:
//
//	go vet -vettool=bin/rololint -simdeterminism ./...
//
// Findings are suppressed by a `//lint:allow <analyzer>:<category>
// <reason>` comment on the offending line or the line above; the reason
// is mandatory, and the scoping means one directive cannot blanket-
// silence an analyzer's other checks on the same line.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/rolo-storage/rolo/internal/analysis"
	"github.com/rolo-storage/rolo/internal/analysis/errpropagation"
	"github.com/rolo-storage/rolo/internal/analysis/invariantguard"
	"github.com/rolo-storage/rolo/internal/analysis/liveness"
	"github.com/rolo-storage/rolo/internal/analysis/nilness"
	"github.com/rolo-storage/rolo/internal/analysis/phasepairing"
	"github.com/rolo-storage/rolo/internal/analysis/raceguard"
	"github.com/rolo-storage/rolo/internal/analysis/resourcelifecycle"
	"github.com/rolo-storage/rolo/internal/analysis/simdeterminism"
	"github.com/rolo-storage/rolo/internal/analysis/simtimeunits"
	"github.com/rolo-storage/rolo/internal/analysis/statetransition"
	"github.com/rolo-storage/rolo/internal/analysis/taintbounds"
	"github.com/rolo-storage/rolo/internal/analysis/telemetryguard"
	"github.com/rolo-storage/rolo/internal/analysis/unitflow"
)

// suite lists every analyzer in the gate, in reporting order.
var suite = []*analysis.Analyzer{
	simdeterminism.Analyzer,
	telemetryguard.Analyzer,
	simtimeunits.Analyzer,
	errpropagation.Analyzer,
	resourcelifecycle.Analyzer,
	phasepairing.Analyzer,
	statetransition.Analyzer,
	invariantguard.Analyzer,
	raceguard.GuardedBy,
	raceguard.LockContract,
	raceguard.GoCapture,
	raceguard.WaitPairing,
	liveness.LockOrder,
	liveness.ChanMisuse,
	liveness.GoroLeak,
	nilness.Analyzer,
	unitflow.Analyzer,
	taintbounds.Analyzer,
	analysis.LintAllow,
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("rololint", flag.ExitOnError)
	versionFlag := fs.String("V", "", "print version and exit (-V=full for a build ID)")
	flagsFlag := fs.Bool("flags", false, "print analyzer flags in JSON (used by the go command)")
	fixFlag := fs.Bool("fix", false, "apply suggested fixes in place (standalone mode only)")
	diffFlag := fs.Bool("diff", false, "with -fix: apply nothing, print unified diffs of what -fix would change")
	sarifFlag := fs.String("sarif", "", "write a SARIF 2.1.0 report to the named `file`, \"-\" for stdout (standalone mode only)")
	allowsFlag := fs.Bool("allows", false, "audit //lint:allow waivers: list each with rule, live/stale status, and reason (standalone mode only)")
	enabled := make(map[string]*bool, len(suite))
	for _, a := range suite {
		enabled[a.Name] = fs.Bool(a.Name, false,
			"enable only the named analyzers ("+firstLine(a.Doc)+")")
	}
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: rololint [flags] [package pattern... | unit.cfg]\n\nanalyzers:\n")
		for _, a := range suite {
			fmt.Fprintf(fs.Output(), "  %-16s %s\n", a.Name, firstLine(a.Doc))
		}
		fmt.Fprintf(fs.Output(), "\nflags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *versionFlag != "" {
		return printVersion(*versionFlag)
	}
	if *flagsFlag {
		return printFlagsJSON()
	}

	// go vet semantics: naming any analyzer runs only the named ones;
	// naming none runs the full suite.
	var selected []*analysis.Analyzer
	for _, a := range suite {
		if *enabled[a.Name] {
			selected = append(selected, a)
		}
	}
	if len(selected) == 0 {
		selected = suite
	}

	rest := fs.Args()
	if *diffFlag && !*fixFlag {
		fmt.Fprintln(os.Stderr, "rololint: -diff only modifies -fix; run `rololint -fix -diff ./...`")
		return 2
	}
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		if *fixFlag || *sarifFlag != "" || *allowsFlag {
			fmt.Fprintln(os.Stderr, "rololint: -fix, -sarif, and -allows are standalone-mode flags; run `rololint -fix ./...` directly")
			return 2
		}
		return analysis.RunUnitchecker(rest[0], selected, os.Stderr)
	}
	if len(rest) == 0 {
		fs.Usage()
		return 2
	}
	opts := analysis.StandaloneOptions{Fix: *fixFlag, Diff: *diffFlag, Allows: *allowsFlag}
	switch *sarifFlag {
	case "":
	case "-":
		opts.SARIF = os.Stdout
	default:
		f, err := os.Create(*sarifFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rololint: %v\n", err)
			return 1
		}
		opts.SARIF = f
		code := analysis.RunStandalone(rest, selected, os.Stderr, opts)
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "rololint: %v\n", err)
			return 1
		}
		return code
	}
	return analysis.RunStandalone(rest, selected, os.Stderr, opts)
}

// printVersion implements -V. The go command requires the exact shape
// `<name> version devel ... buildID=<contentID>` (see
// cmd/go/internal/work.(*Builder).toolID) and uses the content ID to key
// its action cache, so the ID must change whenever the binary does: a
// hash of the executable itself serves.
func printVersion(mode string) int {
	progname := filepath.Base(os.Args[0])
	if mode != "full" {
		fmt.Printf("%s version devel\n", progname)
		return 0
	}
	h := sha256.New()
	exe, err := os.Executable()
	if err == nil {
		f, ferr := os.Open(exe)
		if ferr == nil {
			_, err = io.Copy(h, f)
			_ = f.Close() // read-only; the hash either succeeded or err is set
		} else {
			err = ferr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rololint: -V=full: %v\n", err)
		return 1
	}
	fmt.Printf("%s version devel buildID=%x\n", progname, h.Sum(nil))
	return 0
}

// printFlagsJSON implements -flags, the go command's query for the flags
// it may forward to a vettool.
func printFlagsJSON() int {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := make([]jsonFlag, 0, len(suite))
	for _, a := range suite {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: firstLine(a.Doc)})
	}
	out, err := json.Marshal(flags)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rololint: %v\n", err)
		return 1
	}
	fmt.Println(string(out))
	return 0
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
