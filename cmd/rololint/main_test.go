package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/rolo-storage/rolo/internal/analysis"
)

// TestSuiteSARIFRuleTable renders a SARIF report over the real suite and
// asserts the rule table CI uploads names every analyzer in the gate —
// in particular the liveness family and the lintallow meta-check, whose
// absence from the artifact would mean the driver registration and the
// report generation have drifted apart.
func TestSuiteSARIFRuleTable(t *testing.T) {
	var buf bytes.Buffer
	if err := analysis.WriteSARIF(&buf, analysis.SortAnalyzers(suite), nil, "/src"); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	var doc struct {
		Runs []struct {
			Tool struct {
				Driver struct {
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(doc.Runs) != 1 {
		t.Fatalf("len(runs) = %d, want 1", len(doc.Runs))
	}
	got := make(map[string]bool)
	var ids []string
	for _, r := range doc.Runs[0].Tool.Driver.Rules {
		got[r.ID] = true
		ids = append(ids, r.ID)
	}
	if len(ids) != len(suite) {
		t.Errorf("rule table has %d entries, want %d (one per suite analyzer): %v", len(ids), len(suite), ids)
	}
	for _, a := range suite {
		if !got[a.Name] {
			t.Errorf("rule table is missing suite analyzer %q", a.Name)
		}
	}
	// The table is sorted, so the artifact diffs cleanly between runs.
	if !strings.HasPrefix(strings.Join(ids, ","), "chanmisuse,") {
		t.Errorf("rule table not sorted: starts with %v", ids[:1])
	}
	for _, name := range []string{"lockorder", "chanmisuse", "goroleak", "lintallow"} {
		if !got[name] {
			t.Errorf("rule table is missing %q", name)
		}
	}
}
