// Command mttdl computes Mean Time To Data Loss for the paper's five
// schemes, printing both the closed-form approximations (Equations 1-5)
// and the exact values from the absorbing Markov chains of Section IV.
//
// Usage:
//
//	mttdl                     # table over MTTR 1..7 days at lambda=1e-5/h
//	mttdl -lambda 2e-5 -mttr 3
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/rolo-storage/rolo/internal/reliability"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mttdl:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		lambda = flag.Float64("lambda", 1e-5, "disk failure rate per hour")
		mttr   = flag.Float64("mttr", 0, "single MTTR in days (0 = sweep 1..7)")
	)
	flag.Parse()
	if *lambda <= 0 {
		return fmt.Errorf("lambda must be positive")
	}

	days := []float64{1, 2, 3, 4, 5, 6, 7}
	if *mttr > 0 {
		days = []float64{*mttr}
	}

	type entry struct {
		name   string
		closed func(l, m float64) float64
		chain  func(l, m float64) reliability.Chain
	}
	entries := []entry{
		{"RoLo-R", reliability.MTTDLRoLoR, reliability.RoLoRChain},
		{"RAID10", reliability.MTTDLRaid10, reliability.Raid10Chain},
		{"RoLo-P", reliability.MTTDLRoLoP, reliability.RoLoPChain},
		{"GRAID", reliability.MTTDLGRAID, reliability.GRAIDChain},
		{"RoLo-E", reliability.MTTDLRoLoE, reliability.RoLoEChain},
	}

	fmt.Printf("MTTDL in years (lambda = %g/h); closed form / exact CTMC\n\n", *lambda)
	fmt.Printf("%-8s", "MTTR(d)")
	for _, e := range entries {
		fmt.Printf("  %-19s", e.name)
	}
	fmt.Println()
	for _, d := range days {
		mu := 1 / (d * 24)
		fmt.Printf("%-8g", d)
		for _, e := range entries {
			exact, err := e.chain(*lambda, mu).MTTDL()
			if err != nil {
				return fmt.Errorf("%s: %w", e.name, err)
			}
			fmt.Printf("  %8.0f / %8.0f", e.closed(*lambda, mu)/reliability.HoursPerYear,
				exact/reliability.HoursPerYear)
		}
		fmt.Println()
	}
	fmt.Println("\nNote: RoLo-E assumes sleeping disks do not fail (Figure 8); its MTTDL")
	fmt.Println("is only meaningful for all-write workloads (Section IV of the paper).")
	return nil
}
