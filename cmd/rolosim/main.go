// Command rolosim runs a single storage-scheme simulation and prints a
// report. The workload is either a calibrated MSR profile or a real MSR
// CSV trace file.
//
// Usage:
//
//	rolosim -scheme RoLo-P -profile src2_2 -scale 0.05
//	rolosim -scheme GRAID -trace /path/to/src2_2.csv
//	rolosim -scheme RoLo-E -profile proj_0 -pairs 10 -free 4
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"github.com/rolo-storage/rolo"
	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/telemetry"
	"github.com/rolo-storage/rolo/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rolosim:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	var (
		scheme    = flag.String("scheme", "RoLo-P", "scheme: RAID10, GRAID, RoLo-P, RoLo-R, RoLo-E")
		profile   = flag.String("profile", "src2_2", "calibrated MSR profile name")
		traceFile = flag.String("trace", "", "MSR CSV trace file (overrides -profile)")
		scale     = flag.Float64("scale", 0.05, "geometry+trace scale factor in (0,1]")
		pairs     = flag.Int("pairs", 20, "mirrored pairs (disks = 2*pairs)")
		freeGiB   = flag.Float64("free", 8, "per-disk free (logging) space in GiB before scaling")
		stripeKB  = flag.Int64("stripe", 64, "stripe unit in KB")
		journal   = flag.String("journal", "", "write a JSONL telemetry event journal to this file")
		probeIv   = flag.Duration("probe-interval", 0, "periodic telemetry probe spacing (e.g. 30s; 0 disables)")
		check     = flag.Bool("check", false, "enable RoloSan: validate simulation invariants during the run and fail on the first violation")
		asJSON    = flag.Bool("json", false, "emit the full report as JSON instead of text")
	)
	flag.Parse()

	s, err := rolo.ParseScheme(*scheme)
	if err != nil {
		return err
	}
	cfg := rolo.DefaultConfig(s)
	cfg.Pairs = *pairs
	cfg.StripeUnitBytes = *stripeKB << 10
	cfg.Disk.CapacityBytes = scaleB(18.4*(1<<30), *scale)
	cfg.FreeBytesPerDisk = scaleB(*freeGiB*(1<<30), *scale)
	cfg.GRAID.LogCapacityBytes = scaleB(16*(1<<30), *scale)

	var recs []trace.Record
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close() //lint:allow errpropagation read-only trace file, close error carries no data
		recs, err = trace.ParseMSR(f)
		if err != nil {
			return err
		}
		// Clamp out-of-volume records rather than failing: real traces
		// address their original volume.
		recs = clampToVolume(recs, cfg.VolumeBytes())
	} else {
		recs, err = rolo.GenerateProfile(*profile, cfg, *scale)
		if err != nil {
			return err
		}
	}

	if *journal != "" {
		f, ferr := os.Create(*journal)
		if ferr != nil {
			return ferr
		}
		// The journal is written through this file; a failed close means
		// a truncated journal, so it surfaces as the run's error.
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		cfg.Telemetry.Sink = telemetry.NewJSONLSink(f)
	}
	cfg.Telemetry.ProbeInterval = sim.Time((*probeIv) / time.Microsecond)
	cfg.Check = *check

	st := trace.Summarize(recs)
	if !*asJSON {
		fmt.Printf("workload: %d requests, %.1f%% writes, %.2f IOPS avg, %.1f KB avg, %.2f GiB written\n",
			st.Requests, 100*st.WriteRatio, st.IOPS, st.AvgReqBytes/1024, float64(st.WriteBytes)/(1<<30))
		fmt.Printf("array: %s, %d disks, %.2f GiB/disk (%.2f GiB logging), stripe %d KB\n\n",
			s, 2**pairs, float64(cfg.Disk.CapacityBytes)/(1<<30),
			float64(cfg.FreeBytesPerDisk)/(1<<30), *stripeKB)
	}

	rep, err := rolo.Run(cfg, recs)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Printf("energy:            %.0f J over %v (%.1f W average)\n",
		rep.EnergyJ, rep.Horizon, rep.EnergyJ/rep.Horizon.Seconds())
	fmt.Printf("mean response:     %.3f ms (p95 %.1f, p99 %.1f, max %.1f)\n",
		rep.MeanResponseMs, rep.P95ResponseMs, rep.P99ResponseMs, rep.MaxResponseMs)
	fmt.Printf("  reads:           %d reqs, mean %.3f ms, p99 %.1f ms\n",
		rep.ReadLatency.Count, rep.ReadLatency.MeanMs, rep.ReadLatency.P99Ms)
	fmt.Printf("  writes:          %d reqs, mean %.3f ms, p99 %.1f ms\n",
		rep.WriteLatency.Count, rep.WriteLatency.MeanMs, rep.WriteLatency.P99Ms)
	fmt.Printf("spin cycles:       %d\n", rep.SpinCycles)
	if rep.Rotations > 0 {
		fmt.Printf("logger rotations:  %d\n", rep.Rotations)
	}
	if rep.Destages > 0 {
		fmt.Printf("destages:          %d (interval ratio %.3f, energy ratio %.3f)\n",
			rep.Destages, rep.DestagingIntervalRatio, rep.DestagingEnergyRatio)
	}
	if rep.ReadHitRate > 0 {
		fmt.Printf("read hit rate:     %.2f%%\n", 100*rep.ReadHitRate)
	}
	if rep.DirectWrites > 0 {
		fmt.Printf("direct writes:     %d\n", rep.DirectWrites)
	}
	states := make([]string, 0, len(rep.StateSeconds))
	for k := range rep.StateSeconds {
		states = append(states, k)
	}
	sort.Strings(states)
	fmt.Printf("disk-state time:  ")
	for _, k := range states {
		fmt.Printf(" %s=%.0fs", k, rep.StateSeconds[k])
	}
	fmt.Println()
	if rep.ProbeSamples > 0 {
		fmt.Printf("probes:            %d samples, peak log occupancy %.1f%%, peak backlog %.2f MiB, peak spinning %d\n",
			rep.ProbeSamples, 100*rep.PeakLogOccupancy,
			float64(rep.PeakDestageBacklogBytes)/(1<<20), rep.PeakSpinningDisks)
	}
	if *check {
		fmt.Printf("sanitizer:         clean (%d events, %d sweeps)\n",
			rep.SanitizerEvents, rep.SanitizerSweeps)
	}
	return nil
}

func scaleB(b, scale float64) int64 {
	v := int64(b * scale)
	v -= v % (1 << 20)
	if v < 1<<20 {
		v = 1 << 20
	}
	return v
}

func clampToVolume(recs []trace.Record, volume int64) []trace.Record {
	out := recs[:0]
	for _, r := range recs {
		if r.Size <= 0 {
			continue
		}
		if r.End() > volume {
			r.Offset = r.Offset % (volume - r.Size)
			r.Offset -= r.Offset % 512
		}
		out = append(out, r)
	}
	return out
}
