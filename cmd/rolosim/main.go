// Command rolosim runs a single storage-scheme simulation and prints a
// report. The workload is either a calibrated MSR profile or a real MSR
// CSV trace file.
//
// Usage:
//
//	rolosim -scheme RoLo-P -profile src2_2 -scale 0.05
//	rolosim -scheme GRAID -trace /path/to/src2_2.csv
//	rolosim -scheme RoLo-E -profile proj_0 -pairs 10 -free 4
//
// With -journal alone the telemetry journal is a single JSONL file,
// written synchronously on the simulation goroutine. Adding
// -journal-segment turns -journal into a directory and switches to the
// async pipeline: events are handed to a writer goroutine that rotates
// size-bounded segments, optionally gzips completed ones
// (-journal-compress), caps how many are kept (-journal-retain), and
// records a manifest that rolostat -verify can check:
//
//	rolosim -scheme RoLo-P -journal rundir -journal-segment 4194304 -journal-compress
//	rolostat -verify rundir
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"github.com/rolo-storage/rolo"
	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/telemetry"
	"github.com/rolo-storage/rolo/internal/telemetry/journal"
	"github.com/rolo-storage/rolo/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rolosim:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	var (
		scheme    = flag.String("scheme", "RoLo-P", "scheme: RAID10, GRAID, RoLo-P, RoLo-R, RoLo-E")
		profile   = flag.String("profile", "src2_2", "calibrated MSR profile name")
		traceFile = flag.String("trace", "", "MSR CSV trace file (overrides -profile)")
		scale     = flag.Float64("scale", 0.05, "geometry+trace scale factor in (0,1]")
		pairs     = flag.Int("pairs", 20, "mirrored pairs (disks = 2*pairs)")
		freeGiB   = flag.Float64("free", 8, "per-disk free (logging) space in GiB before scaling")
		stripeKB  = flag.Int64("stripe", 64, "stripe unit in KB")
		journalTo = flag.String("journal", "", "write a JSONL telemetry event journal to this file (or directory with -journal-segment)")
		jSegment  = flag.Int64("journal-segment", 0, "rotate the journal into segments of this many bytes; -journal becomes a directory (0 = single file)")
		jCompress = flag.Bool("journal-compress", false, "gzip completed journal segments (requires -journal-segment)")
		jRetain   = flag.Int("journal-retain", 0, "keep only the newest N journal segments (0 = all; requires -journal-segment)")
		jDrop     = flag.Bool("journal-drop", false, "drop events instead of blocking when the journal writer falls behind (requires -journal-segment)")
		jBuffer   = flag.Int("journal-buffer", 0, "async journal ring capacity in events (0 = default; requires -journal-segment)")
		probeIv   = flag.Duration("probe-interval", 0, "periodic telemetry probe spacing (e.g. 30s; 0 disables)")
		check     = flag.Bool("check", false, "enable RoloSan: validate simulation invariants during the run and fail on the first violation")
		asJSON    = flag.Bool("json", false, "emit the full report as JSON instead of text")
	)
	flag.Parse()

	s, err := rolo.ParseScheme(*scheme)
	if err != nil {
		return err
	}
	cfg := rolo.DefaultConfig(s)
	cfg.Pairs = *pairs
	cfg.StripeUnitBytes = *stripeKB << 10
	cfg.Disk.CapacityBytes = scaleB(18.4*(1<<30), *scale)
	cfg.FreeBytesPerDisk = scaleB(*freeGiB*(1<<30), *scale)
	cfg.GRAID.LogCapacityBytes = scaleB(16*(1<<30), *scale)

	var recs []trace.Record
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close() //lint:allow resourcelifecycle:dropped-error read-only trace file, close error carries no data
		recs, err = trace.ParseMSR(f)
		if err != nil {
			return err
		}
		// Clamp out-of-volume records rather than failing: real traces
		// address their original volume.
		recs = clampToVolume(recs, cfg.VolumeBytes())
	} else {
		recs, err = rolo.GenerateProfile(*profile, cfg, *scale)
		if err != nil {
			return err
		}
	}

	if *jSegment == 0 {
		for _, mod := range []struct {
			set  bool
			name string
		}{
			{*jCompress, "-journal-compress"},
			{*jRetain != 0, "-journal-retain"},
			{*jDrop, "-journal-drop"},
			{*jBuffer != 0, "-journal-buffer"},
		} {
			if mod.set {
				return fmt.Errorf("%s requires -journal-segment", mod.name)
			}
		}
	}
	switch {
	case *journalTo != "" && *jSegment > 0:
		// Rotated mode: -journal names a directory; encoding and IO move
		// to the async pipeline's writer goroutine.
		if mkerr := os.MkdirAll(*journalTo, 0o755); mkerr != nil {
			return mkerr
		}
		w, werr := journal.NewRotatingWriter(journal.RotateConfig{
			Dir:          *journalTo,
			SegmentBytes: *jSegment,
			Compress:     *jCompress,
			Retain:       *jRetain,
		})
		if werr != nil {
			return werr
		}
		policy := journal.PolicyBlock
		if *jDrop {
			policy = journal.PolicyDrop
		}
		sink := journal.NewAsyncSink(w, journal.AsyncConfig{Buffer: *jBuffer, Policy: policy})
		// Closing drains the ring, seals the final segment and writes the
		// manifest; a close failure means a broken journal, so it
		// surfaces as the run's error.
		defer func() {
			if cerr := sink.Close(); cerr != nil && err == nil {
				err = cerr
			}
			if st := sink.Stats(); st.Dropped > 0 {
				fmt.Fprintf(os.Stderr, "rolosim: journal dropped %d of %d events under backpressure\n",
					st.Dropped, st.Dropped+st.Enqueued)
			}
		}()
		cfg.Telemetry.Sink = sink
	case *journalTo != "":
		f, ferr := os.Create(*journalTo)
		if ferr != nil {
			return ferr
		}
		// The journal is written through this file; a failed close means
		// a truncated journal, so it surfaces as the run's error.
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		cfg.Telemetry.Sink = telemetry.NewJSONLSink(f)
	case *jSegment > 0:
		return fmt.Errorf("-journal-segment requires -journal <dir>")
	}
	cfg.Telemetry.ProbeInterval = sim.Time((*probeIv) / time.Microsecond)
	cfg.Check = *check

	st := trace.Summarize(recs)
	if !*asJSON {
		fmt.Printf("workload: %d requests, %.1f%% writes, %.2f IOPS avg, %.1f KB avg, %.2f GiB written\n",
			st.Requests, 100*st.WriteRatio, st.IOPS, st.AvgReqBytes/1024, float64(st.WriteBytes)/(1<<30))
		fmt.Printf("array: %s, %d disks, %.2f GiB/disk (%.2f GiB logging), stripe %d KB\n\n",
			s, 2**pairs, float64(cfg.Disk.CapacityBytes)/(1<<30),
			float64(cfg.FreeBytesPerDisk)/(1<<30), *stripeKB)
	}

	rep, err := rolo.Run(cfg, recs)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Printf("energy:            %.0f J over %v (%.1f W average)\n",
		rep.EnergyJ, rep.Horizon, rep.EnergyJ/rep.Horizon.Seconds())
	fmt.Printf("mean response:     %.3f ms (p95 %.1f, p99 %.1f, max %.1f)\n",
		rep.MeanResponseMs, rep.P95ResponseMs, rep.P99ResponseMs, rep.MaxResponseMs)
	fmt.Printf("  reads:           %d reqs, mean %.3f ms, p99 %.1f ms\n",
		rep.ReadLatency.Count, rep.ReadLatency.MeanMs, rep.ReadLatency.P99Ms)
	fmt.Printf("  writes:          %d reqs, mean %.3f ms, p99 %.1f ms\n",
		rep.WriteLatency.Count, rep.WriteLatency.MeanMs, rep.WriteLatency.P99Ms)
	fmt.Printf("spin cycles:       %d\n", rep.SpinCycles)
	if rep.Rotations > 0 {
		fmt.Printf("logger rotations:  %d\n", rep.Rotations)
	}
	if rep.Destages > 0 {
		fmt.Printf("destages:          %d (interval ratio %.3f, energy ratio %.3f)\n",
			rep.Destages, rep.DestagingIntervalRatio, rep.DestagingEnergyRatio)
	}
	if rep.ReadHitRate > 0 {
		fmt.Printf("read hit rate:     %.2f%%\n", 100*rep.ReadHitRate)
	}
	if rep.DirectWrites > 0 {
		fmt.Printf("direct writes:     %d\n", rep.DirectWrites)
	}
	states := make([]string, 0, len(rep.StateSeconds))
	for k := range rep.StateSeconds {
		states = append(states, k)
	}
	sort.Strings(states)
	fmt.Printf("disk-state time:  ")
	for _, k := range states {
		fmt.Printf(" %s=%.0fs", k, rep.StateSeconds[k])
	}
	fmt.Println()
	if rep.ProbeSamples > 0 {
		fmt.Printf("probes:            %d samples, peak log occupancy %.1f%%, peak backlog %.2f MiB, peak spinning %d\n",
			rep.ProbeSamples, 100*rep.PeakLogOccupancy,
			float64(rep.PeakDestageBacklogBytes)/(1<<20), rep.PeakSpinningDisks)
	}
	if *check {
		fmt.Printf("sanitizer:         clean (%d events, %d sweeps)\n",
			rep.SanitizerEvents, rep.SanitizerSweeps)
	}
	return nil
}

func scaleB(b, scale float64) int64 {
	v := int64(b * scale)
	v -= v % (1 << 20)
	if v < 1<<20 {
		v = 1 << 20
	}
	return v
}

func clampToVolume(recs []trace.Record, volume int64) []trace.Record {
	out := recs[:0]
	for _, r := range recs {
		if r.Size <= 0 {
			continue
		}
		if r.End() > volume {
			r.Offset = r.Offset % (volume - r.Size)
			r.Offset -= r.Offset % 512
		}
		out = append(out, r)
	}
	return out
}
