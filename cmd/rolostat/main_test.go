package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/telemetry"
	"github.com/rolo-storage/rolo/internal/telemetry/journal"
)

// sampleRun is a small but representative journal: requests, a rotation,
// spin cycles, an overlapping destage window, and probes.
func sampleRun() []telemetry.Event {
	return []telemetry.Event{
		{At: 1_000_000, Kind: telemetry.KindRequestStart, Disk: -1, Pair: -1, Write: true, Bytes: 64 << 10},
		{At: 1_200_000, Kind: telemetry.KindRequestDone, Disk: -1, Pair: -1, Write: true, LatencyUs: 200_000},
		{At: 1_500_000, Kind: telemetry.KindRequestStart, Disk: -1, Pair: -1, Bytes: 4 << 10},
		{At: 1_550_000, Kind: telemetry.KindRequestDone, Disk: -1, Pair: -1, LatencyUs: 50_000},
		{At: 2_000_000, Kind: telemetry.KindProbe, Disk: -1, Pair: -1, States: "AISU", LogUsed: 10, LogCap: 100, Backlog: 1 << 20},
		{At: 3_000_000, Kind: telemetry.KindRotation, Disk: -1, Pair: 0},
		{At: 3_100_000, Kind: telemetry.KindSpinUp, Disk: 2, Pair: -1},
		{At: 3_200_000, Kind: telemetry.KindDestageStart, Disk: -1, Pair: 1},
		{At: 3_300_000, Kind: telemetry.KindDestageStart, Disk: -1, Pair: 2},
		{At: 3_900_000, Kind: telemetry.KindDestageDone, Disk: -1, Pair: 1},
		{At: 4_200_000, Kind: telemetry.KindDestageDone, Disk: -1, Pair: 2},
		{At: 4_500_000, Kind: telemetry.KindSpinDown, Disk: 2, Pair: -1},
		{At: 5_000_000, Kind: telemetry.KindRotation, Disk: -1, Pair: 1},
		{At: 5_500_000, Kind: telemetry.KindProbe, Disk: -1, Pair: -1, States: "AISU", LogUsed: 90, LogCap: 100, Backlog: 2 << 20},
	}
}

func summarizePath(t *testing.T, path string) string {
	t.Helper()
	r, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	f := newFold()
	for {
		ev, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := f.fold(ev); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := f.report(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// The summary of a rotated, compressed journal must be byte-identical to
// the summary of the same events in a single plain file.
func TestSummaryIdenticalAcrossLayouts(t *testing.T) {
	evs := sampleRun()

	single := filepath.Join(t.TempDir(), "run.jsonl")
	f, err := os.Create(single)
	if err != nil {
		t.Fatal(err)
	}
	sink := telemetry.NewJSONLSink(f)
	for _, ev := range evs {
		sink.Emit(ev)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	w, err := journal.NewRotatingWriter(journal.RotateConfig{Dir: dir, SegmentBytes: 128, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	var scratch []byte
	for _, ev := range evs {
		scratch = telemetry.AppendEvent(scratch[:0], ev)
		if err := w.WriteEvent(scratch, ev.At); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := journal.Verify(dir); err != nil {
		t.Fatal(err)
	}

	got, want := summarizePath(t, dir), summarizePath(t, single)
	if got != want {
		t.Fatalf("rotated summary diverges from single-file summary:\n--- single ---\n%s--- rotated ---\n%s", want, got)
	}
	for _, fragment := range []string{"journal: 14 events", "destages: 2", "phase timeline (3 phases):", "rotations: 2, mean interval"} {
		if !bytes.Contains([]byte(got), []byte(fragment)) {
			t.Fatalf("summary missing %q:\n%s", fragment, got)
		}
	}
}

func TestFoldRejectsNonMonotonicJournal(t *testing.T) {
	f := newFold()
	if err := f.fold(telemetry.Event{At: 100, Kind: telemetry.KindRequestStart, Disk: -1, Pair: -1}); err != nil {
		t.Fatal(err)
	}
	if err := f.fold(telemetry.Event{At: 50, Kind: telemetry.KindRequestDone, Disk: -1, Pair: -1}); err == nil {
		t.Fatal("out-of-order event accepted")
	}
}

func TestFoldConstantishMemory(t *testing.T) {
	// The fold must not retain per-event state: folding 100k events keeps
	// the same footprint as folding 100 (modulo the phase timeline, which
	// is bounded by destage windows, held at one here).
	f := newFold()
	for i := 0; i < 100_000; i++ {
		ev := telemetry.Event{At: sim.Time(i + 1), Kind: telemetry.KindRequestStart, Disk: -1, Pair: -1, Bytes: 4096}
		if err := f.fold(ev); err != nil {
			t.Fatal(err)
		}
	}
	if len(f.phases) > 1 || len(f.counts) != 1 || len(f.openDest) != 0 {
		t.Fatalf("fold retained per-event state: %d phases, %d kinds, %d open destages",
			len(f.phases), len(f.counts), len(f.openDest))
	}
	if f.events != 100_000 {
		t.Fatalf("events = %d", f.events)
	}
}
