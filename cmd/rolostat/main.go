// Command rolostat analyzes a JSONL telemetry journal produced by
// rolosim -journal (or roloexp -journal) and prints a run summary: event
// counts, request statistics, rotation and destage activity, per-disk
// spin cycles, and the reconstructed normal/destaging phase timeline.
//
// Usage:
//
//	rolostat run.jsonl
//	rolosim -scheme RoLo-P -journal run.jsonl && rolostat run.jsonl
package main

import (
	"fmt"
	"os"
	"sort"

	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rolostat:", err)
		os.Exit(1)
	}
}

func run() error {
	if len(os.Args) != 2 {
		return fmt.Errorf("usage: rolostat <journal.jsonl>")
	}
	f, err := os.Open(os.Args[1])
	if err != nil {
		return err
	}
	defer f.Close() //lint:allow errpropagation read-only journal, close error carries no data
	events, err := telemetry.ParseJournal(f)
	if err != nil {
		return err
	}
	if len(events) == 0 {
		return fmt.Errorf("%s: empty journal", os.Args[1])
	}
	return summarize(events, os.Stdout)
}

// phase is one contiguous span of the normal/destaging timeline.
type phase struct {
	start, end sim.Time
	destaging  bool
	open       bool // run ended before the span closed
}

func summarize(events []telemetry.Event, w *os.File) error {
	var (
		counts     = map[telemetry.Kind]int64{}
		prev       sim.Time
		reqBytes   int64
		reads      int64
		writes     int64
		latSum     float64
		latMax     int64
		latN       int64
		rotations  []sim.Time
		spinUps    = map[int]int{}
		spinDowns  = map[int]int{}
		destageDur sim.Time
		phases     []phase
		live       int // destages in flight
		peakOcc    float64
		peakBack   int64
		probes     int
		destages   int
		openDest   = map[int][]sim.Time{} // pair -> start stack
	)
	first, last := events[0].At, events[len(events)-1].At
	cur := phase{start: first}

	closePhase := func(at sim.Time, destaging bool) {
		if at > cur.start {
			cur.end = at
			phases = append(phases, cur)
		}
		cur = phase{start: at, destaging: destaging}
	}

	for i, ev := range events {
		if ev.At < prev {
			return fmt.Errorf("event %d: timestamp %v before %v (journal not monotonic)", i, ev.At, prev)
		}
		prev = ev.At
		counts[ev.Kind]++
		switch ev.Kind {
		case telemetry.KindRequestStart:
			reqBytes += ev.Bytes
			if ev.Write {
				writes++
			} else {
				reads++
			}
		case telemetry.KindRequestDone:
			latSum += float64(ev.LatencyUs)
			latN++
			if ev.LatencyUs > latMax {
				latMax = ev.LatencyUs
			}
		case telemetry.KindRotation:
			rotations = append(rotations, ev.At)
		case telemetry.KindSpinUp:
			spinUps[ev.Disk]++
		case telemetry.KindSpinDown:
			spinDowns[ev.Disk]++
		case telemetry.KindDestageStart:
			if live == 0 && !cur.destaging {
				closePhase(ev.At, true)
			}
			live++
			openDest[ev.Pair] = append(openDest[ev.Pair], ev.At)
		case telemetry.KindDestageDone:
			destages++
			if st := openDest[ev.Pair]; len(st) > 0 {
				destageDur += ev.At - st[len(st)-1]
				openDest[ev.Pair] = st[:len(st)-1]
			}
			if live > 0 {
				live--
			}
			if live == 0 && cur.destaging {
				closePhase(ev.At, false)
			}
		case telemetry.KindProbe:
			probes++
			if ev.LogCap > 0 {
				if occ := float64(ev.LogUsed) / float64(ev.LogCap); occ > peakOcc {
					peakOcc = occ
				}
			}
			if ev.Backlog > peakBack {
				peakBack = ev.Backlog
			}
		}
	}
	cur.end = last
	cur.open = live > 0
	if cur.end > cur.start || len(phases) == 0 {
		phases = append(phases, cur)
	}

	fmt.Fprintf(w, "journal: %d events over %v\n\n", len(events), last-first)

	fmt.Fprintln(w, "event counts:")
	for _, k := range telemetry.Kinds {
		if counts[k] > 0 {
			fmt.Fprintf(w, "  %-13s %d\n", k, counts[k])
		}
	}

	if n := reads + writes; n > 0 {
		fmt.Fprintf(w, "\nrequests: %d (%d reads, %d writes), %.2f MiB total\n",
			n, reads, writes, float64(reqBytes)/(1<<20))
	}
	if latN > 0 {
		fmt.Fprintf(w, "response: mean %.3f ms, max %.3f ms over %d completions\n",
			latSum/float64(latN)/1000, float64(latMax)/1000, latN)
	}

	if len(rotations) > 0 {
		fmt.Fprintf(w, "\nrotations: %d", len(rotations))
		if len(rotations) > 1 {
			var gap sim.Time
			for i := 1; i < len(rotations); i++ {
				gap += rotations[i] - rotations[i-1]
			}
			fmt.Fprintf(w, ", mean interval %v", gap/sim.Time(len(rotations)-1))
		}
		fmt.Fprintln(w)
	}

	if destages > 0 {
		fmt.Fprintf(w, "destages: %d, total busy time %v\n", destages, destageDur)
	}

	if len(spinUps) > 0 {
		disks := make([]int, 0, len(spinUps))
		for d := range spinUps {
			disks = append(disks, d)
		}
		sort.Ints(disks)
		fmt.Fprintf(w, "\nspin cycles per disk (%d disks cycled):\n", len(disks))
		for _, d := range disks {
			fmt.Fprintf(w, "  disk %2d: %d up / %d down\n", d, spinUps[d], spinDowns[d])
		}
	}

	if probes > 0 {
		fmt.Fprintf(w, "\nprobes: %d samples, peak log occupancy %.1f%%, peak backlog %.2f MiB\n",
			probes, 100*peakOcc, float64(peakBack)/(1<<20))
	}

	fmt.Fprintf(w, "\nphase timeline (%d phases):\n", len(phases))
	var normal, destaging sim.Time
	for _, p := range phases {
		name := "normal"
		if p.destaging {
			name = "destaging"
			destaging += p.end - p.start
		} else {
			normal += p.end - p.start
		}
		suffix := ""
		if p.open {
			suffix = " (run ended mid-phase)"
		}
		fmt.Fprintf(w, "  %12v .. %12v  %-9s %v%s\n", p.start, p.end, name, p.end-p.start, suffix)
	}
	if total := normal + destaging; total > 0 {
		fmt.Fprintf(w, "destaging fraction: %.2f%% of journal span\n",
			100*float64(destaging)/float64(total))
	}
	return nil
}
