// Command rolostat analyzes a JSONL telemetry journal produced by
// rolosim -journal (or roloexp -journal) and prints a run summary: event
// counts, request statistics, rotation and destage activity, per-disk
// spin cycles, and the reconstructed normal/destaging phase timeline.
//
// The argument may be a single journal file or a rotated journal
// directory (run-NNNNN.jsonl[.gz] segments plus manifest.json, as
// written by rolosim -journal-segment). Events are folded in a single
// streaming pass, so memory stays constant regardless of journal size.
//
// Usage:
//
//	rolostat run.jsonl
//	rolostat -verify rundir/
//	rolosim -scheme RoLo-P -journal run.jsonl && rolostat run.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/telemetry"
	"github.com/rolo-storage/rolo/internal/telemetry/journal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rolostat:", err)
		os.Exit(1)
	}
}

func run() error {
	verify := flag.Bool("verify", false, "verify the rotated journal against its manifest (directory input only)")
	flag.Usage = func() {
		fmt.Fprintln(flag.CommandLine.Output(), "usage: rolostat [-verify] <journal.jsonl | journal-dir>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		return fmt.Errorf("expected one journal path, got %d", flag.NArg())
	}
	path := flag.Arg(0)

	if *verify {
		info, err := os.Stat(path)
		if err != nil {
			return err
		}
		if !info.IsDir() {
			return fmt.Errorf("%s: -verify requires a rotated journal directory", path)
		}
		m, err := journal.Verify(path)
		if err != nil {
			return fmt.Errorf("manifest verification: %w", err)
		}
		fmt.Printf("manifest: %d segments, %d events, all checksums match\n", len(m.Segments), m.Events())
		if m.RemovedSegments > 0 {
			fmt.Printf("manifest: %d older segments removed by retention\n", m.RemovedSegments)
		}
		if w := m.Writer; w != nil {
			fmt.Printf("writer: %d enqueued, %d written, %d dropped, peak ring occupancy %d/%d\n",
				w.Enqueued, w.Written, w.Dropped, w.PeakOccupancy, w.Capacity)
			if w.Dropped > 0 {
				fmt.Fprintf(os.Stderr, "rolostat: warning: journal is incomplete (%d events dropped under backpressure)\n", w.Dropped)
			}
		}
		fmt.Println()
	}

	r, err := journal.Open(path)
	if err != nil {
		return err
	}
	defer r.Close() //lint:allow resourcelifecycle:dropped-error read-only journal, close error carries no data

	f := newFold()
	for {
		ev, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if err := f.fold(ev); err != nil {
			return err
		}
	}
	if f.events == 0 {
		return fmt.Errorf("%s: empty journal", path)
	}
	return f.report(os.Stdout)
}

// phase is one contiguous span of the normal/destaging timeline.
type phase struct {
	start, end sim.Time
	destaging  bool
	open       bool // run ended before the span closed
}

// fold accumulates the run summary one event at a time; everything it
// holds is either a fixed-size aggregate or bounded by the disk/pair
// population, never by journal length.
type fold struct {
	events      int64
	first, last sim.Time
	counts      map[telemetry.Kind]int64
	reqBytes    int64
	reads       int64
	writes      int64
	latSum      float64
	latMax      int64
	latN        int64
	rotations   int64
	rotGap      sim.Time // sum of inter-rotation gaps
	lastRot     sim.Time
	spinUps     map[int]int
	spinDowns   map[int]int
	destageDur  sim.Time
	phases      []phase
	cur         phase
	live        int // destages in flight
	peakOcc     float64
	peakBack    int64
	probes      int64
	destages    int64
	openDest    map[int][]sim.Time // pair -> start stack
}

func newFold() *fold {
	return &fold{
		counts:    map[telemetry.Kind]int64{},
		spinUps:   map[int]int{},
		spinDowns: map[int]int{},
		openDest:  map[int][]sim.Time{},
	}
}

func (f *fold) closePhase(at sim.Time, destaging bool) {
	if at > f.cur.start {
		f.cur.end = at
		f.phases = append(f.phases, f.cur)
	}
	f.cur = phase{start: at, destaging: destaging}
}

func (f *fold) fold(ev telemetry.Event) error {
	if f.events == 0 {
		f.first = ev.At
		f.cur = phase{start: ev.At}
	} else if ev.At < f.last {
		return fmt.Errorf("event %d: timestamp %v before %v (journal not monotonic)", f.events, ev.At, f.last)
	}
	f.last = ev.At
	f.events++
	f.counts[ev.Kind]++
	switch ev.Kind {
	case telemetry.KindRequestStart:
		f.reqBytes += ev.Bytes
		if ev.Write {
			f.writes++
		} else {
			f.reads++
		}
	case telemetry.KindRequestDone:
		f.latSum += float64(ev.LatencyUs)
		f.latN++
		if ev.LatencyUs > f.latMax {
			f.latMax = ev.LatencyUs
		}
	case telemetry.KindRotation:
		if f.rotations > 0 {
			f.rotGap += ev.At - f.lastRot
		}
		f.lastRot = ev.At
		f.rotations++
	case telemetry.KindSpinUp:
		f.spinUps[ev.Disk]++
	case telemetry.KindSpinDown:
		f.spinDowns[ev.Disk]++
	case telemetry.KindDestageStart:
		if f.live == 0 && !f.cur.destaging {
			f.closePhase(ev.At, true)
		}
		f.live++
		f.openDest[ev.Pair] = append(f.openDest[ev.Pair], ev.At)
	case telemetry.KindDestageDone:
		f.destages++
		if st := f.openDest[ev.Pair]; len(st) > 0 {
			f.destageDur += ev.At - st[len(st)-1]
			f.openDest[ev.Pair] = st[:len(st)-1]
		}
		if f.live > 0 {
			f.live--
		}
		if f.live == 0 && f.cur.destaging {
			f.closePhase(ev.At, false)
		}
	case telemetry.KindProbe:
		f.probes++
		if ev.LogCap > 0 {
			if occ := float64(ev.LogUsed) / float64(ev.LogCap); occ > f.peakOcc {
				f.peakOcc = occ
			}
		}
		if ev.Backlog > f.peakBack {
			f.peakBack = ev.Backlog
		}
	}
	return nil
}

func (f *fold) report(w io.Writer) error {
	f.cur.end = f.last
	f.cur.open = f.live > 0
	if f.cur.end > f.cur.start || len(f.phases) == 0 {
		f.phases = append(f.phases, f.cur)
	}

	fmt.Fprintf(w, "journal: %d events over %v\n\n", f.events, f.last-f.first)

	fmt.Fprintln(w, "event counts:")
	for _, k := range telemetry.Kinds {
		if f.counts[k] > 0 {
			fmt.Fprintf(w, "  %-13s %d\n", k, f.counts[k])
		}
	}

	if n := f.reads + f.writes; n > 0 {
		fmt.Fprintf(w, "\nrequests: %d (%d reads, %d writes), %.2f MiB total\n",
			n, f.reads, f.writes, float64(f.reqBytes)/(1<<20))
	}
	if f.latN > 0 {
		fmt.Fprintf(w, "response: mean %.3f ms, max %.3f ms over %d completions\n",
			f.latSum/float64(f.latN)/1000, float64(f.latMax)/1000, f.latN)
	}

	if f.rotations > 0 {
		fmt.Fprintf(w, "\nrotations: %d", f.rotations)
		if f.rotations > 1 {
			fmt.Fprintf(w, ", mean interval %v", f.rotGap/sim.Time(f.rotations-1))
		}
		fmt.Fprintln(w)
	}

	if f.destages > 0 {
		fmt.Fprintf(w, "destages: %d, total busy time %v\n", f.destages, f.destageDur)
	}

	if len(f.spinUps) > 0 {
		disks := make([]int, 0, len(f.spinUps))
		for d := range f.spinUps {
			disks = append(disks, d)
		}
		sort.Ints(disks)
		fmt.Fprintf(w, "\nspin cycles per disk (%d disks cycled):\n", len(disks))
		for _, d := range disks {
			fmt.Fprintf(w, "  disk %2d: %d up / %d down\n", d, f.spinUps[d], f.spinDowns[d])
		}
	}

	if f.probes > 0 {
		fmt.Fprintf(w, "\nprobes: %d samples, peak log occupancy %.1f%%, peak backlog %.2f MiB\n",
			f.probes, 100*f.peakOcc, float64(f.peakBack)/(1<<20))
	}

	fmt.Fprintf(w, "\nphase timeline (%d phases):\n", len(f.phases))
	var normal, destaging sim.Time
	for _, p := range f.phases {
		name := "normal"
		if p.destaging {
			name = "destaging"
			destaging += p.end - p.start
		} else {
			normal += p.end - p.start
		}
		suffix := ""
		if p.open {
			suffix = " (run ended mid-phase)"
		}
		fmt.Fprintf(w, "  %12v .. %12v  %-9s %v%s\n", p.start, p.end, name, p.end-p.start, suffix)
	}
	if total := normal + destaging; total > 0 {
		fmt.Fprintf(w, "destaging fraction: %.2f%% of journal span\n",
			100*float64(destaging)/float64(total))
	}
	return nil
}
