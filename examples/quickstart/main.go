// Quickstart: simulate RoLo-P on a write-heavy synthetic workload and
// print the headline numbers next to a plain RAID10 baseline.
package main

import (
	"fmt"
	"log"

	"github.com/rolo-storage/rolo"
	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/trace"
)

func main() {
	// A small array keeps the example snappy: 8 pairs of 2 GiB drives,
	// half of each drive reserved as rotating logging space.
	cfg := rolo.DefaultConfig(rolo.SchemeRoLoP)
	cfg.Pairs = 8
	cfg.Disk.CapacityBytes = 2 << 30
	cfg.FreeBytesPerDisk = 1 << 30

	// Ten minutes of bursty, write-dominated traffic.
	workload := trace.Synthetic{
		Duration:    10 * sim.Minute,
		IOPS:        120,
		WriteRatio:  0.95,
		AvgReqBytes: 64 << 10,
		RandomFrac:  0.7,
		Burstiness:  0.6,
		Seed:        1,
	}
	recs, err := workload.Generate(cfg.VolumeBytes())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d requests over %v\n\n", len(recs), workload.Duration)

	for _, scheme := range []rolo.Scheme{rolo.SchemeRAID10, rolo.SchemeRoLoP} {
		cfg.Scheme = scheme
		rep, err := rolo.Run(cfg, recs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7s energy %8.0f J   mean response %6.2f ms   spin cycles %d   rotations %d\n",
			scheme, rep.EnergyJ, rep.MeanResponseMs, rep.SpinCycles, rep.Rotations)
	}
	fmt.Println("\nRoLo-P logs second copies on one rotating mirror and lets the other")
	fmt.Println("mirrors sleep — most of RAID10's energy, gone, for a few percent latency.")
}
