// Energyaudit sizes the energy/performance trade-off of every scheme for
// a data-center operator: it replays a calibrated enterprise trace (source
// control by default — the paper's src2_2) against all five controllers at
// matched geometry and prints a procurement-style comparison.
//
// Usage: energyaudit [profile] [scale]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"github.com/rolo-storage/rolo"
	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/telemetry"
)

func main() {
	profile := "src2_2"
	scale := 0.02
	if len(os.Args) > 1 {
		profile = os.Args[1]
	}
	if len(os.Args) > 2 {
		v, err := strconv.ParseFloat(os.Args[2], 64)
		if err != nil {
			log.Fatalf("bad scale %q: %v", os.Args[2], err)
		}
		scale = v
	}

	base := rolo.DefaultConfig(rolo.SchemeRAID10)
	base.Pairs = 10
	base.Disk.CapacityBytes = mib(18.4 * 1024 * scale)
	base.FreeBytesPerDisk = mib(8 * 1024 * scale)
	base.GRAID.LogCapacityBytes = mib(16 * 1024 * scale)

	recs, err := rolo.GenerateProfile(profile, base, scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auditing %q: %d requests on a %d-disk array (scale %.2f)\n\n",
		profile, len(recs), 2*base.Pairs, scale)

	var raidEnergy, raidMean float64
	fmt.Printf("%-8s %12s %10s %12s %8s %6s %8s %s\n",
		"scheme", "energy (J)", "vs RAID10", "mean rt (ms)", "p99 (ms)", "spins",
		"log peak", "activity")
	for _, scheme := range rolo.Schemes {
		cfg := base
		cfg.Scheme = scheme
		// Telemetry rides along: event counts plus minute-grained probes
		// for the log-occupancy peak, at no cost to the results.
		var counts telemetry.CountingSink
		cfg.Telemetry.Sink = &counts
		cfg.Telemetry.ProbeInterval = sim.Minute
		rep, err := rolo.Run(cfg, recs)
		if err != nil {
			log.Fatal(err)
		}
		if scheme == rolo.SchemeRAID10 {
			raidEnergy, raidMean = rep.EnergyJ, rep.MeanResponseMs
		}
		activity := fmt.Sprintf("%d rot / %d dest",
			counts.Count(telemetry.KindRotation), counts.Count(telemetry.KindDestageDone))
		fmt.Printf("%-8s %12.0f %9.1f%% %12.2f %8.1f %6d %7.1f%% %s\n",
			scheme, rep.EnergyJ, 100*(1-rep.EnergyJ/raidEnergy),
			rep.MeanResponseMs, rep.P99ResponseMs, rep.SpinCycles,
			100*rep.PeakLogOccupancy, activity)
		_ = raidMean
	}
	fmt.Println("\nReading the table: RoLo-P/R keep read latency flat while erasing roughly")
	fmt.Println("half the array's energy; RoLo-E goes further but only suits write-dominant")
	fmt.Println("workloads (watch its spin count and p99 on read-heavy traces).")
}

func mib(v float64) int64 {
	b := int64(v) << 20
	if b < 1<<20 {
		b = 1 << 20
	}
	return b
}
