// Reliability reproduces the paper's Section IV argument end to end: it
// computes analytic MTTDL for every scheme, measures disk-spin frequency
// by simulation, and combines the two views the way Table I and Figure 9
// do — MTTDL alone favours RoLo-E, but spin counts reveal which schemes
// actually age their disks.
package main

import (
	"fmt"
	"log"

	"github.com/rolo-storage/rolo"
	"github.com/rolo-storage/rolo/internal/reliability"
)

func main() {
	fmt.Println("== Analytic MTTDL (four-disk model, lambda = 1e-5/h, MTTR = 3 days) ==")
	const lambda, mttrDays = 1e-5, 3.0
	mu := 1 / (mttrDays * 24)
	entries := []struct {
		name  string
		chain func(l, m float64) reliability.Chain
	}{
		{"RoLo-R", reliability.RoLoRChain},
		{"RAID10", reliability.Raid10Chain},
		{"RoLo-P", reliability.RoLoPChain},
		{"GRAID", reliability.GRAIDChain},
		{"RoLo-E", reliability.RoLoEChain},
	}
	for _, e := range entries {
		years, err := e.chain(lambda, mu).MTTDL()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-7s %8.0f years\n", e.name, years/reliability.HoursPerYear)
	}

	fmt.Println("\n== Disk-spin frequency by simulation (src2_2, scaled) ==")
	const scale = 0.02
	cfg := rolo.DefaultConfig(rolo.SchemeRAID10)
	cfg.Pairs = 10
	gib := func(v float64) int64 {
		b := int64(v * scale * float64(int64(1)<<30))
		b -= b % (1 << 20)
		return b
	}
	cfg.Disk.CapacityBytes = gib(18.4)
	cfg.FreeBytesPerDisk = gib(8)
	cfg.GRAID.LogCapacityBytes = gib(16)
	recs, err := rolo.GenerateProfile("src2_2", cfg, scale)
	if err != nil {
		log.Fatal(err)
	}
	spins := map[rolo.Scheme]int{}
	for _, s := range rolo.Schemes {
		c := cfg
		c.Scheme = s
		rep, err := rolo.Run(c, recs)
		if err != nil {
			log.Fatal(err)
		}
		spins[s] = rep.SpinCycles
		fmt.Printf("  %-7s %6d spin cycles\n", s, rep.SpinCycles)
	}

	fmt.Println("\n== Combined reading (the paper's Section IV conclusion) ==")
	fmt.Println("RoLo-R tops MTTDL and spins ~10x less than GRAID: the most reliable pick.")
	fmt.Printf("RoLo-E's MTTDL looks best on paper but its %d spin cycles (vs GRAID's %d)\n",
		spins[rolo.SchemeRoLoE], spins[rolo.SchemeGRAID])
	fmt.Println("raise the real failure rate — trust it only for write-dominant workloads.")
}
