// Tracereplay drives the simulator from an MSR Cambridge CSV file — the
// exact format of the public traces the paper evaluates — and contrasts
// RoLo-E against RAID10 for a checkpointing/backup-style deployment. When
// no file is given it writes a synthetic trace in MSR format to a temp
// file first and replays that, so the example is self-contained.
//
// Usage: tracereplay [trace.csv]
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/rolo-storage/rolo"
	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/trace"
)

func main() {
	cfg := rolo.DefaultConfig(rolo.SchemeRoLoE)
	cfg.Pairs = 6
	cfg.Disk.CapacityBytes = 1 << 30
	cfg.FreeBytesPerDisk = 512 << 20
	cfg.GRAID.LogCapacityBytes = 512 << 20

	path := ""
	if len(os.Args) > 1 {
		path = os.Args[1]
	} else {
		var err error
		path, err = writeDemoTrace(cfg.VolumeBytes())
		if err != nil {
			log.Fatal(err)
		}
		defer os.Remove(path)
		fmt.Printf("no trace given; wrote a demo checkpointing trace to %s\n\n", path)
	}

	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	recs, err := trace.ParseMSR(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	st := trace.Summarize(recs)
	fmt.Printf("parsed %d records: %.1f%% writes, %.1f KB avg request, %.2f GiB written\n\n",
		st.Requests, 100*st.WriteRatio, st.AvgReqBytes/1024, float64(st.WriteBytes)/(1<<30))

	for _, scheme := range []rolo.Scheme{rolo.SchemeRAID10, rolo.SchemeRoLoE} {
		cfg.Scheme = scheme
		rep, err := rolo.Run(cfg, recs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7s energy %9.0f J  mean %7.2f ms  p99 %8.1f ms  destages %d  hit rate %.0f%%\n",
			scheme, rep.EnergyJ, rep.MeanResponseMs, rep.P99ResponseMs,
			rep.Destages, 100*rep.ReadHitRate)
	}
	fmt.Println("\nCheckpoint streams are nearly all writes, so RoLo-E buffers them on one")
	fmt.Println("spinning pair and leaves ten disks asleep; the occasional verification")
	fmt.Println("read is served from the log cache.")
}

// writeDemoTrace emits a checkpoint-like workload: long sequential write
// bursts with sparse verification reads of recently written data.
func writeDemoTrace(volume int64) (string, error) {
	syn := trace.Synthetic{
		Duration:       20 * sim.Minute,
		IOPS:           60,
		WriteRatio:     0.98,
		AvgReqBytes:    64 << 10,
		FixedSize:      true,
		RandomFrac:     0.1, // mostly sequential checkpoint streams
		Burstiness:     0.7,
		RecentReadFrac: 0.95,
		Seed:           7,
	}
	recs, err := syn.Generate(volume)
	if err != nil {
		return "", err
	}
	f, err := os.CreateTemp("", "checkpoint-*.csv")
	if err != nil {
		return "", err
	}
	if err := trace.WriteMSR(f, "ckpt", 0, recs); err != nil {
		f.Close()
		return "", err
	}
	return f.Name(), f.Close()
}
