// Failuredrill walks through the paper's Section III-C recovery story on
// a live simulation: it kills the on-duty logger mid-workload and shows
// that logging never stops, then kills a primary and shows that only the
// essential disks wake, and finally rebuilds the replacement in the
// background while foreground traffic continues.
package main

import (
	"fmt"
	"log"

	"github.com/rolo-storage/rolo/internal/array"
	"github.com/rolo-storage/rolo/internal/core"
	"github.com/rolo-storage/rolo/internal/disk"
	"github.com/rolo-storage/rolo/internal/raid"
	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/trace"
)

func main() {
	eng := sim.New()
	geom := raid.Geometry{Pairs: 6, StripeUnitBytes: 64 << 10, DataBytesPerDisk: 512 << 20}
	arr, err := array.New(eng, geom, disk.Ultrastar36Z15().WithCapacity(768<<20), 0)
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := core.New(arr, core.FlavorP, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// A steady write workload runs throughout the drill.
	syn := trace.Uniform70Random64K(80, 3*sim.Minute, 5)
	syn.WriteWorkingSetBytes = geom.VolumeBytes() / 4
	recs, err := syn.Generate(geom.VolumeBytes())
	if err != nil {
		log.Fatal(err)
	}
	for i := range recs {
		rec := recs[i]
		if _, err := eng.Schedule(rec.At, func(sim.Time) {
			if err := ctrl.Submit(rec); err != nil {
				log.Fatalf("submit at %v: %v", rec.At, err)
			}
		}); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("== t=30s: the on-duty logger dies ==")
	eng.RunUntil(30 * sim.Second)
	duty := ctrl.OnDuty()
	plan, err := ctrl.FailMirror(duty)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failed %s; duty handed to M%d immediately — no write was refused\n",
		plan.Failed, plan.NewOnDuty)
	fmt.Printf("disks woken for recovery: %d (the new logger only)\n\n", len(plan.SpunUp))

	fmt.Println("== t=60s: a primary dies ==")
	eng.RunUntil(60 * sim.Second)
	victim := (ctrl.OnDuty() + 2) % geom.Pairs
	plan2, err := ctrl.FailPrimary(victim)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failed %s; woke its mirror plus %d logger(s) holding its recent writes\n",
		plan2.Failed, len(plan2.LogSourceLoggers))
	fmt.Printf("rebuild volume: %.0f MB (data region + live log extents)\n\n",
		float64(plan2.RebuildBytes)/(1<<20))

	fmt.Println("== t=70s: background rebuilds begin ==")
	eng.RunUntil(70 * sim.Second)
	rebuilt := 0
	if err := ctrl.Rebuild(duty, true, func(now sim.Time) {
		rebuilt++
		fmt.Printf("mirror M%d rebuilt at %v\n", duty, now)
	}); err != nil {
		log.Fatal(err)
	}
	if err := ctrl.Rebuild(victim, false, func(now sim.Time) {
		rebuilt++
		fmt.Printf("primary P%d rebuilt at %v\n", victim, now)
	}); err != nil {
		log.Fatal(err)
	}
	eng.Run()
	if err := ctrl.CheckErr(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndrill complete: %d rebuilds, %d requests served\n",
		rebuilt, ctrl.Responses().Count())
	fmt.Printf("responses: mean %.1f ms, p95 %.1f ms — the mean carries the\n",
		ctrl.Responses().Mean(), ctrl.Responses().Percentile(95))
	fmt.Println("spin-up stalls of requests that hit the failed pairs during the")
	fmt.Println("drill; the p95 shows everything else ran at normal latency because")
	fmt.Println("rebuild and destage I/O stay at background priority in idle slots.")
}
