package trace

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/rolo-storage/rolo/internal/sim"
)

// BlockAlign is the alignment of generated offsets and sizes.
const BlockAlign = 4096

// Synthetic describes a parameterized workload. All randomness is drawn
// from a generator seeded with Seed, so generation is deterministic.
type Synthetic struct {
	// Duration of the workload.
	Duration sim.Time
	// IOPS is the long-run average request arrival rate.
	IOPS float64
	// WriteRatio is the fraction of requests that are writes, in [0,1].
	WriteRatio float64
	// AvgReqBytes is the mean request size. Sizes are drawn from a
	// two-point distribution (2/3 at half the mean, 1/3 at twice the
	// mean) aligned to BlockAlign, preserving the mean.
	AvgReqBytes int64
	// FixedSize, when true, makes every request exactly AvgReqBytes.
	FixedSize bool
	// RandomFrac is the probability that a write starts a new random run
	// rather than continuing sequentially. The paper's Section II
	// micro-benchmarks use 0.7.
	RandomFrac float64
	// Burstiness in [0,1): 0 is a Poisson process; larger values
	// concentrate the same average rate into ON periods of an ON/OFF
	// modulated Poisson process (duty cycle 1-0.9·Burstiness).
	Burstiness float64
	// DutyCycle, when non-zero, sets the ON fraction of the ON/OFF
	// process directly (overriding Burstiness) and reinterprets IOPS as
	// the ON-period arrival rate. This models the MSR traces, whose
	// published IOPS are burst rates: the week-long window is mostly
	// idle. Must be in (0,1].
	DutyCycle float64
	// OnPeriod is the fixed ON-phase length for DutyCycle mode
	// (default 10 s).
	OnPeriod sim.Time
	// WriteWorkingSetBytes bounds the region random writes fall in
	// (0 means the whole volume). Overwrites within the set are what
	// makes destaging cheaper than raw write volume.
	WriteWorkingSetBytes int64
	// ReadWorkingSetBytes bounds the region reads fall in (0 = volume).
	ReadWorkingSetBytes int64
	// ReadWSDisjoint places the read working set after the write working
	// set (when the volume allows) instead of overlapping it, modeling
	// workloads whose reads touch cold data rather than recent writes.
	ReadWSDisjoint bool
	// ReadZipfS is the Zipf skew (>1) of read popularity; 0 disables
	// skew (uniform reads).
	ReadZipfS float64
	// ReadHotFrac is the probability a (non-recent) read comes from the
	// Zipf-popular set rather than uniformly from the working set. Zero
	// means 1 (all reads Zipf) when ReadZipfS is set. The mixture lets
	// hit rates land anywhere between the cold floor and the hot ceiling.
	ReadHotFrac float64
	// RecentReadFrac is the probability that a read targets one of the
	// most recently written extents (read-after-write temporal locality).
	// Such reads are absorbed by any scheme that logs or caches recent
	// writes.
	RecentReadFrac float64
	// Seed for the deterministic random source.
	Seed int64
}

// Validate reports configuration errors.
func (c Synthetic) Validate() error {
	switch {
	case c.Duration <= 0:
		return fmt.Errorf("trace: non-positive duration %v", c.Duration)
	case c.IOPS <= 0:
		return fmt.Errorf("trace: non-positive IOPS %g", c.IOPS)
	case c.WriteRatio < 0 || c.WriteRatio > 1:
		return fmt.Errorf("trace: write ratio %g outside [0,1]", c.WriteRatio)
	case c.AvgReqBytes < BlockAlign:
		return fmt.Errorf("trace: average request %d below block size %d", c.AvgReqBytes, BlockAlign)
	case c.RandomFrac < 0 || c.RandomFrac > 1:
		return fmt.Errorf("trace: random fraction %g outside [0,1]", c.RandomFrac)
	case c.Burstiness < 0 || c.Burstiness >= 1:
		return fmt.Errorf("trace: burstiness %g outside [0,1)", c.Burstiness)
	case c.DutyCycle < 0 || c.DutyCycle > 1:
		return fmt.Errorf("trace: duty cycle %g outside [0,1]", c.DutyCycle)
	case c.OnPeriod < 0:
		return fmt.Errorf("trace: negative ON period %v", c.OnPeriod)
	case c.ReadZipfS != 0 && c.ReadZipfS <= 1:
		return fmt.Errorf("trace: Zipf s must exceed 1, got %g", c.ReadZipfS)
	case c.RecentReadFrac < 0 || c.RecentReadFrac > 1:
		return fmt.Errorf("trace: recent-read fraction %g outside [0,1]", c.RecentReadFrac)
	case c.ReadHotFrac < 0 || c.ReadHotFrac > 1:
		return fmt.Errorf("trace: hot-read fraction %g outside [0,1]", c.ReadHotFrac)
	}
	return nil
}

func alignDown(v int64) int64 {
	v -= v % BlockAlign
	if v < BlockAlign {
		v = BlockAlign
	}
	return v
}

// Generate materializes the workload over a volume of volumeBytes bytes.
// Records are returned in arrival order.
func (c Synthetic) Generate(volumeBytes int64) ([]Record, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if volumeBytes < 2*BlockAlign {
		return nil, fmt.Errorf("trace: volume of %d bytes too small", volumeBytes)
	}
	rng := rand.New(rand.NewSource(c.Seed))

	writeWS := c.WriteWorkingSetBytes
	if writeWS <= 0 || writeWS > volumeBytes {
		writeWS = volumeBytes
	}
	readWS := c.ReadWorkingSetBytes
	if readWS <= 0 || readWS > volumeBytes {
		readWS = volumeBytes
	}
	var readBase int64
	if c.ReadWSDisjoint {
		readBase = writeWS
		if readBase+readWS > volumeBytes {
			readBase = volumeBytes - readWS
		}
		if readBase < 0 {
			readBase = 0
		}
		readBase -= readBase % BlockAlign
	}
	var zipf *rand.Zipf
	readBlocks := uint64(readWS / BlockAlign)
	if c.ReadZipfS > 1 && readBlocks > 1 {
		zipf = rand.NewZipf(rng, c.ReadZipfS, 1, readBlocks-1)
	}

	arrivals := c.arrivalTimes(rng)
	recs := make([]Record, 0, len(arrivals))
	seqNext := int64(-1)
	// Ring of recent write extents for read-after-write locality.
	const recentRing = 512
	recent := make([]Record, 0, recentRing)
	recentHead := 0
	for _, at := range arrivals {
		isWrite := rng.Float64() < c.WriteRatio
		size := c.drawSize(rng)
		var off int64
		if isWrite {
			if seqNext >= 0 && rng.Float64() >= c.RandomFrac && seqNext+size <= writeWS {
				off = seqNext
			} else {
				off = alignedUniform(rng, writeWS-size)
			}
			seqNext = off + size
			w := Record{At: at, Op: Write, Offset: off, Size: size}
			if len(recent) < recentRing {
				recent = append(recent, w)
			} else {
				recent[recentHead] = w
				recentHead = (recentHead + 1) % recentRing
			}
			recs = append(recs, w)
			continue
		}
		if len(recent) > 0 && rng.Float64() < c.RecentReadFrac {
			// Re-read a recently written extent.
			w := recent[rng.Intn(len(recent))]
			recs = append(recs, Record{At: at, Op: Read, Offset: w.Offset, Size: w.Size})
			continue
		}
		hotFrac := c.ReadHotFrac
		if hotFrac == 0 {
			hotFrac = 1
		}
		if zipf != nil && rng.Float64() < hotFrac {
			off = int64(zipf.Uint64()) * BlockAlign
		} else {
			off = alignedUniform(rng, readWS-size)
		}
		if off+size > readWS {
			off = alignDown(readWS - size)
		}
		recs = append(recs, Record{At: at, Op: Read, Offset: readBase + off, Size: size})
	}
	return recs, nil
}

// arrivalTimes produces the arrival process: Poisson, or ON/OFF-modulated
// Poisson when Burstiness or DutyCycle is set.
func (c Synthetic) arrivalTimes(rng *rand.Rand) []sim.Time {
	var out []sim.Time
	if c.Burstiness == 0 && (c.DutyCycle == 0 || c.DutyCycle == 1) {
		t := 0.0
		dur := c.Duration.Seconds()
		for {
			t += rng.ExpFloat64() / c.IOPS
			if t >= dur {
				break
			}
			out = append(out, sim.FromSeconds(t))
		}
		return out
	}
	// ON/OFF modulation. In Burstiness mode the duty cycle shrinks with
	// burstiness while the ON rate grows to preserve the average; in
	// DutyCycle mode IOPS already is the ON rate. Phase lengths are fixed
	// so the long-run rate converges quickly; arrivals within ON phases
	// are Poisson.
	var duty, onRate, onDur float64
	if c.DutyCycle > 0 {
		duty = c.DutyCycle
		onRate = c.IOPS
		onDur = 10.0
		if c.OnPeriod > 0 {
			onDur = c.OnPeriod.Seconds()
		}
	} else {
		duty = 1 - 0.9*c.Burstiness
		onRate = c.IOPS / duty
		onDur = 2.0
	}
	offDur := onDur * (1 - duty) / duty
	t := 0.0
	dur := c.Duration.Seconds()
	on := true
	phaseEnd := onDur
	for t < dur {
		if on {
			next := t + rng.ExpFloat64()/onRate
			if next >= phaseEnd {
				t = phaseEnd
				on = false
				phaseEnd = t + offDur
				continue
			}
			t = next
			if t < dur {
				out = append(out, sim.FromSeconds(t))
			}
		} else {
			t = phaseEnd
			on = true
			phaseEnd = t + onDur
		}
	}
	return out
}

func (c Synthetic) drawSize(rng *rand.Rand) int64 {
	if c.FixedSize {
		return alignDown(c.AvgReqBytes)
	}
	// Two-point distribution over block-aligned sizes a < b with the
	// mixing probability solved so the mean is preserved exactly.
	a := alignNearest(c.AvgReqBytes / 2)
	b := alignNearest(2 * c.AvgReqBytes)
	if a >= b {
		return alignNearest(c.AvgReqBytes)
	}
	p := float64(b-c.AvgReqBytes) / float64(b-a)
	if rng.Float64() < p {
		return a
	}
	return b
}

func alignNearest(v int64) int64 {
	blocks := (v + BlockAlign/2) / BlockAlign
	if blocks < 1 {
		blocks = 1
	}
	return blocks * BlockAlign
}

func alignedUniform(rng *rand.Rand, maxStart int64) int64 {
	if maxStart <= 0 {
		return 0
	}
	blocks := maxStart/BlockAlign + 1
	return rng.Int63n(blocks) * BlockAlign
}

// Uniform70Random64K returns the paper's Section II micro-benchmark
// workload: 100 % writes of 64 KB, 70 % random, at the given request rate.
func Uniform70Random64K(iops float64, duration sim.Time, seed int64) Synthetic {
	return Synthetic{
		Duration:    duration,
		IOPS:        iops,
		WriteRatio:  1.0,
		AvgReqBytes: 64 << 10,
		FixedSize:   true,
		RandomFrac:  0.7,
		Seed:        seed,
	}
}

// ExpectedWriteBytes estimates the total bytes the workload writes, which
// sizing logic uses to pick logging capacities.
func (c Synthetic) ExpectedWriteBytes() int64 {
	return int64(math.Round(c.Duration.Seconds() * c.IOPS * c.WriteRatio * float64(c.AvgReqBytes)))
}
