package trace

import (
	"fmt"
	"sort"

	"github.com/rolo-storage/rolo/internal/sim"
)

// Profile is a calibrated synthetic equivalent of one of the MSR Cambridge
// traces used in the paper. The published aggregate statistics (write
// ratio, IOPS, average request size, total write capacity — Tables III and
// VI of the paper) determine the generator parameters.
//
// The MSR traces span one week, yet each trace's write capacity is far
// below IOPS·week·size: the published IOPS is the arrival rate during
// active bursts, and most of the week is idle. We therefore replay a
// 7-day window with an ON/OFF arrival process whose ON rate is the
// published IOPS and whose duty cycle is derived from the write capacity —
// the long idle stretches are exactly what the paper's spin-down schemes
// exploit. Read locality is set to reproduce Table V: src2_2 has a tiny,
// hot read set (90.6 % hits in the on-duty log cache); proj_0 a broad,
// cool one (26.7 %).
type Profile struct {
	Name        string
	WriteRatio  float64
	IOPS        float64 // ON-period (burst) arrival rate, per Table III/VI
	AvgReqBytes int64
	WriteCapGiB float64 // total bytes written over the full window, in GiB
	TraceDays   float64 // collection window (7 days for all MSR traces)
	OnPeriod    sim.Time
	ReadWSBytes int64
	ReadZipfS   float64
	// RecentReadFrac is the fraction of reads that target recently
	// written extents (read-after-write locality); these are the reads a
	// logging scheme absorbs without touching sleeping disks.
	RecentReadFrac float64
	// ReadHotFrac mixes Zipf-popular reads with uniform cold reads; see
	// Synthetic.ReadHotFrac.
	ReadHotFrac float64
	// ReadWSDisjoint places reads outside the write working set: the
	// cold-read behaviour behind proj_0's low log-cache hit rate.
	ReadWSDisjoint bool
	Seed           int64
}

// Duration returns the full trace window.
func (p Profile) Duration() sim.Time {
	return sim.FromSeconds(p.TraceDays * 86400)
}

// DutyCycle returns the ON fraction implied by the calibration: the
// fraction of the window that must be active at the burst IOPS to write
// WriteCapGiB. Clamped to 1 for traces whose published numbers imply
// continuous activity.
func (p Profile) DutyCycle() float64 {
	perSec := p.IOPS * p.WriteRatio * float64(p.AvgReqBytes)
	if perSec <= 0 {
		return 1
	}
	duty := p.WriteCapGiB * (1 << 30) / (p.TraceDays * 86400 * perSec)
	if duty > 1 {
		return 1
	}
	return duty
}

// EffectiveIOPS is the long-run average arrival rate over the window.
func (p Profile) EffectiveIOPS() float64 { return p.IOPS * p.DutyCycle() }

// ExpectedWriteBytes returns the write volume a scale-fraction replay is
// expected to produce. For most profiles this is WriteCapGiB·scale; for
// profiles whose published rate cannot reach their published capacity in
// the window (hm_1), it is the rate-limited volume.
func (p Profile) ExpectedWriteBytes(scale float64) int64 {
	perSec := p.EffectiveIOPS() * p.WriteRatio * float64(p.AvgReqBytes)
	return int64(perSec * p.TraceDays * 86400 * scale)
}

// Synthetic converts the profile into generator parameters, scaling the
// window (and therefore total volume written) by scale in (0,1]. Scaling
// preserves burst rates, mix, duty cycle and locality — it simply replays
// a shorter window, which keeps week-long traces tractable.
func (p Profile) Synthetic(scale float64) (Synthetic, error) {
	if scale <= 0 || scale > 1 {
		return Synthetic{}, fmt.Errorf("trace: scale %g outside (0,1]", scale)
	}
	dur := sim.Time(float64(p.Duration()) * scale)
	if dur <= 0 {
		return Synthetic{}, fmt.Errorf("trace: profile %q has zero duration", p.Name)
	}
	writeWS := int64(p.WriteCapGiB * (1 << 30) * scale / 3) // ~3x overwrite
	readWS := int64(float64(p.ReadWSBytes) * scale)         // working sets shrink with the window
	if readWS < BlockAlign*2 {
		readWS = BlockAlign * 2
	}
	onPeriod := p.OnPeriod
	if onPeriod == 0 {
		onPeriod = 10 * sim.Second
	}
	return Synthetic{
		Duration:             dur,
		IOPS:                 p.IOPS,
		WriteRatio:           p.WriteRatio,
		AvgReqBytes:          p.AvgReqBytes,
		RandomFrac:           0.7,
		DutyCycle:            p.DutyCycle(),
		OnPeriod:             onPeriod,
		WriteWorkingSetBytes: writeWS,
		ReadWorkingSetBytes:  readWS,
		ReadZipfS:            p.ReadZipfS,
		RecentReadFrac:       p.RecentReadFrac,
		ReadHotFrac:          p.ReadHotFrac,
		ReadWSDisjoint:       p.ReadWSDisjoint,
		Seed:                 p.Seed,
	}, nil
}

// Generate materializes scale of the profile over the given volume.
func (p Profile) Generate(volumeBytes int64, scale float64) ([]Record, error) {
	syn, err := p.Synthetic(scale)
	if err != nil {
		return nil, err
	}
	recs, err := syn.Generate(volumeBytes)
	if err != nil {
		return nil, fmt.Errorf("profile %q: %w", p.Name, err)
	}
	return recs, nil
}

// The seven calibrated profiles. Write ratio, IOPS, mean request size and
// write capacity come straight from Tables III and VI of the paper; the
// implied duty cycles (src2_2 ~1.1 %, proj_0 ~14 %) reproduce the
// burstiness contrast of Table V.
var (
	Src2_2 = Profile{
		Name: "src2_2", WriteRatio: 0.9962, IOPS: 78.80, AvgReqBytes: 65167, // 63.64 KB
		WriteCapGiB: 33, TraceDays: 7,
		ReadWSBytes: 64 << 20, ReadZipfS: 2.0, RecentReadFrac: 0.90, Seed: 101,
	}
	Proj_0 = Profile{
		Name: "proj_0", WriteRatio: 0.9490, IOPS: 23.89, AvgReqBytes: 52654, // 51.42 KB
		WriteCapGiB: 99.3, TraceDays: 7,
		ReadWSBytes: 32 << 30, ReadZipfS: 1.3, ReadHotFrac: 0.32, RecentReadFrac: 0.02, ReadWSDisjoint: true, Seed: 102,
	}
	Mds_0 = Profile{
		Name: "mds_0", WriteRatio: 0.8811, IOPS: 2.00, AvgReqBytes: 9421, // 9.20 KB
		WriteCapGiB: 7.0, TraceDays: 7,
		ReadWSBytes: 2 << 30, ReadZipfS: 1.2, RecentReadFrac: 0.3, Seed: 103,
	}
	Wdev_0 = Profile{
		Name: "wdev_0", WriteRatio: 0.7992, IOPS: 1.89, AvgReqBytes: 9298, // 9.08 KB
		WriteCapGiB: 7.15, TraceDays: 7,
		ReadWSBytes: 2 << 30, ReadZipfS: 1.2, RecentReadFrac: 0.3, Seed: 104,
	}
	Web_1 = Profile{
		Name: "web_1", WriteRatio: 0.4589, IOPS: 0.27, AvgReqBytes: 29768, // 29.07 KB
		WriteCapGiB: 0.648, TraceDays: 7, // 664 MB
		ReadWSBytes: 1 << 30, ReadZipfS: 1.3, RecentReadFrac: 0.3, Seed: 105,
	}
	Rsrch_2 = Profile{
		Name: "rsrch_2", WriteRatio: 0.3431, IOPS: 0.35, AvgReqBytes: 4178, // 4.08 KB
		WriteCapGiB: 0.288, TraceDays: 7, // 295 MB
		ReadWSBytes: 1 << 30, ReadZipfS: 1.3, RecentReadFrac: 0.3, Seed: 106,
	}
	Hm_1 = Profile{
		Name: "hm_1", WriteRatio: 0.0466, IOPS: 1.02, AvgReqBytes: 15524, // 15.16 KB
		WriteCapGiB: 0.540, TraceDays: 7, // 553 MB
		ReadWSBytes: 1 << 30, ReadZipfS: 1.3, RecentReadFrac: 0.3, Seed: 107,
	}
)

// Profiles maps trace names to their calibrated profiles.
var Profiles = map[string]Profile{
	"src2_2":  Src2_2,
	"proj_0":  Proj_0,
	"mds_0":   Mds_0,
	"wdev_0":  Wdev_0,
	"web_1":   Web_1,
	"rsrch_2": Rsrch_2,
	"hm_1":    Hm_1,
}

// ProfileNames returns the profile names in a stable order.
func ProfileNames() []string {
	names := make([]string, 0, len(Profiles))
	for n := range Profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Lookup returns the named profile.
func Lookup(name string) (Profile, error) {
	p, ok := Profiles[name]
	if !ok {
		return Profile{}, fmt.Errorf("trace: unknown profile %q (have %v)", name, ProfileNames())
	}
	return p, nil
}
