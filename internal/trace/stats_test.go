package trace

import (
	"math"
	"testing"

	"github.com/rolo-storage/rolo/internal/sim"
)

func TestCharacterizeEmpty(t *testing.T) {
	es := Characterize(nil)
	if es.Requests != 0 || es.DutyCycle != 0 || es.SequentialFrac != 0 {
		t.Fatalf("empty characterization not zero: %+v", es)
	}
}

func TestCharacterizeSequentialRun(t *testing.T) {
	recs := make([]Record, 10)
	for i := range recs {
		recs[i] = Record{
			At:     sim.Time(i) * 100 * sim.Millisecond,
			Op:     Write,
			Offset: int64(i) * 4096,
			Size:   4096,
		}
	}
	es := Characterize(recs)
	if es.SequentialFrac != 1 {
		t.Fatalf("pure sequential run: frac = %g", es.SequentialFrac)
	}
	if es.WriteWorkingSetBytes != 10*4096 {
		t.Fatalf("write WS = %d", es.WriteWorkingSetBytes)
	}
	if es.ReadWorkingSetBytes != 0 {
		t.Fatalf("read WS = %d", es.ReadWorkingSetBytes)
	}
}

func TestCharacterizeOverwritesCollapse(t *testing.T) {
	// Writing the same block repeatedly keeps the working set at one block.
	recs := make([]Record, 20)
	for i := range recs {
		recs[i] = Record{At: sim.Time(i) * sim.Second, Op: Write, Offset: 0, Size: 8192}
	}
	es := Characterize(recs)
	if es.WriteWorkingSetBytes != 8192 {
		t.Fatalf("working set = %d, want 8192", es.WriteWorkingSetBytes)
	}
	if es.WriteBytes != 20*8192 {
		t.Fatalf("total written = %d", es.WriteBytes)
	}
}

func TestCharacterizeDutyCycle(t *testing.T) {
	// Arrivals in seconds 0 and 1, silence until second 9: duty 2/10.
	recs := []Record{
		{At: 0, Op: Write, Offset: 0, Size: 4096},
		{At: 1500 * sim.Millisecond, Op: Write, Offset: 4096, Size: 4096},
		{At: 9 * sim.Second, Op: Write, Offset: 8192, Size: 4096},
	}
	es := Characterize(recs)
	if math.Abs(es.DutyCycle-0.3) > 1e-9 {
		t.Fatalf("duty = %g, want 0.3 (3 active of 10 windows)", es.DutyCycle)
	}
	if es.BurstIOPS != 1 {
		t.Fatalf("burst IOPS = %g", es.BurstIOPS)
	}
}

func TestCharacterizeMatchesProfileCalibration(t *testing.T) {
	// The src2_2 profile must measure back as very bursty with the
	// published burst IOPS, and proj_0 as far steadier.
	gen := func(p Profile, scale float64) ExtendedStats {
		recs, err := p.Generate(64<<30, scale)
		if err != nil {
			t.Fatal(err)
		}
		return Characterize(recs)
	}
	src := gen(Src2_2, 0.02)
	proj := gen(Proj_0, 0.02)
	if src.DutyCycle > 0.05 {
		t.Errorf("src2_2 duty measured %g, want ~0.011", src.DutyCycle)
	}
	if proj.DutyCycle < 0.05 || proj.DutyCycle > 0.3 {
		t.Errorf("proj_0 duty measured %g, want ~0.14", proj.DutyCycle)
	}
	if math.Abs(src.BurstIOPS-Src2_2.IOPS)/Src2_2.IOPS > 0.25 {
		t.Errorf("src2_2 burst IOPS measured %.1f, want ~%.1f", src.BurstIOPS, Src2_2.IOPS)
	}
	if src.PeakIOPS < src.BurstIOPS {
		t.Error("peak below mean burst rate")
	}
	// The generator mixes 70% random / 30% sequential writes.
	if src.SequentialFrac < 0.1 || src.SequentialFrac > 0.5 {
		t.Errorf("src2_2 sequential fraction %g outside [0.1,0.5]", src.SequentialFrac)
	}
}

func TestUniqueBytes(t *testing.T) {
	cases := []struct {
		recs []Record
		want int64
	}{
		{nil, 0},
		{[]Record{{Offset: 0, Size: 100}}, 100},
		{[]Record{{Offset: 0, Size: 100}, {Offset: 50, Size: 100}}, 150},
		{[]Record{{Offset: 0, Size: 100}, {Offset: 200, Size: 50}}, 150},
		{[]Record{{Offset: 200, Size: 50}, {Offset: 0, Size: 300}}, 300},
	}
	for i, c := range cases {
		if got := uniqueBytes(c.recs); got != c.want {
			t.Errorf("case %d: uniqueBytes = %d, want %d", i, got, c.want)
		}
	}
}
