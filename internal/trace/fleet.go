package trace

// Fleet-scale workload derivation: a single base Synthetic spec expands
// into thousands of distinct per-tenant workloads through a ShardRule —
// deterministically, so a fleet run is reproducible from a one-line spec
// plus the rule parameters (see internal/fleet).

// ShardRule derives a per-shard tenant workload from a base Synthetic.
// The zero value is the identity rule except for seeding: every shard
// still gets a distinct seed (stride 1) so tenants never replay the same
// arrival sequence.
type ShardRule struct {
	// SeedStride spaces the per-shard seeds: shard i runs with
	// base.Seed + SeedStride·i. Zero means 1.
	SeedStride int64
	// IOPSSpread scales each shard's arrival rate by a deterministic
	// per-shard factor drawn uniformly from [1-IOPSSpread, 1+IOPSSpread],
	// modeling tenants of different intensity around the base rate.
	// Must be in [0, 1).
	IOPSSpread float64
}

// Derive returns the workload for shard index i (i >= 0): the base spec
// re-seeded by SeedStride and IOPS-scaled by the shard's spread factor.
// The derivation is a pure function of (base, rule, i) — the same inputs
// always produce the same tenant, on any host and at any concurrency.
func (r ShardRule) Derive(base Synthetic, shard int) Synthetic {
	c := base
	stride := r.SeedStride
	if stride == 0 {
		stride = 1
	}
	c.Seed = base.Seed + stride*int64(shard)
	if r.IOPSSpread > 0 {
		// A uniform factor in [1-spread, 1+spread] keyed by (base seed,
		// shard) through a splitmix64 hash: independent of the Go
		// runtime's rand internals, so the expansion can never drift
		// across toolchain versions.
		u := unitFloat(splitmix64(uint64(base.Seed)*0x9e3779b97f4a7c15 + uint64(shard) + 1))
		c.IOPS = base.IOPS * (1 + r.IOPSSpread*(2*u-1))
	}
	return c
}

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche mix.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unitFloat maps a 64-bit hash to [0,1) with 53-bit resolution.
func unitFloat(x uint64) float64 {
	return float64(x>>11) / (1 << 53)
}
