package trace

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/rolo-storage/rolo/internal/sim"
)

// ParseSyntheticSpec parses a compact one-line workload description into a
// Synthetic. The spec is a list of key=value fields separated by commas
// and/or whitespace:
//
//	iops=200 write=0.9 duration=10m size=64K random=0.7 seed=3
//
// Durations take Go duration syntax (10m, 1h30m); byte quantities take an
// optional K/M/G suffix (binary). The flag-like keys `fixed` and
// `disjoint` need no value. Keys:
//
//	duration  workload length              (Synthetic.Duration)
//	iops      average arrival rate         (Synthetic.IOPS)
//	write     write fraction in [0,1]      (Synthetic.WriteRatio)
//	size      mean request bytes           (Synthetic.AvgReqBytes)
//	fixed     all requests exactly `size`  (Synthetic.FixedSize)
//	random    random-write fraction        (Synthetic.RandomFrac)
//	burst     burstiness in [0,1)          (Synthetic.Burstiness)
//	duty      ON fraction in (0,1]         (Synthetic.DutyCycle)
//	on        ON-phase length              (Synthetic.OnPeriod)
//	wws       write working-set bytes      (Synthetic.WriteWorkingSetBytes)
//	rws       read working-set bytes       (Synthetic.ReadWorkingSetBytes)
//	disjoint  reads after the write set    (Synthetic.ReadWSDisjoint)
//	zipf      read popularity skew (>1)    (Synthetic.ReadZipfS)
//	hot       hot-read fraction            (Synthetic.ReadHotFrac)
//	recent    recent-read fraction         (Synthetic.RecentReadFrac)
//	seed      random seed                  (Synthetic.Seed)
//
// Unspecified fields default to the paper's Section II micro-benchmark
// shape: 100 IOPS of all-write 64 KiB requests, 70% random, for one
// minute. A successful parse always returns a configuration that passes
// Validate — the parser's contract is "parsed implies runnable".
func ParseSyntheticSpec(spec string) (Synthetic, error) {
	c := Synthetic{
		Duration:    60 * sim.Second,
		IOPS:        100,
		WriteRatio:  1,
		AvgReqBytes: 64 << 10,
		RandomFrac:  0.7,
		Seed:        1,
	}
	fields := strings.FieldsFunc(spec, func(r rune) bool {
		return r == ',' || r == ' ' || r == '\t' || r == '\n' || r == '\r'
	})
	seen := map[string]bool{}
	for _, f := range fields {
		key, val, hasVal := strings.Cut(f, "=")
		if seen[key] {
			return Synthetic{}, fmt.Errorf("trace: spec: duplicate key %q", key)
		}
		seen[key] = true
		var err error
		switch key {
		case "fixed", "disjoint":
			if hasVal {
				err = fmt.Errorf("flag key takes no value")
			} else if key == "fixed" {
				c.FixedSize = true
			} else {
				c.ReadWSDisjoint = true
			}
		case "duration":
			c.Duration, err = parseSpecDuration(val, hasVal)
		case "on":
			c.OnPeriod, err = parseSpecDuration(val, hasVal)
		case "iops":
			c.IOPS, err = parseSpecFloat(val, hasVal)
		case "write":
			c.WriteRatio, err = parseSpecFloat(val, hasVal)
		case "random":
			c.RandomFrac, err = parseSpecFloat(val, hasVal)
		case "burst":
			c.Burstiness, err = parseSpecFloat(val, hasVal)
		case "duty":
			c.DutyCycle, err = parseSpecFloat(val, hasVal)
		case "zipf":
			c.ReadZipfS, err = parseSpecFloat(val, hasVal)
		case "hot":
			c.ReadHotFrac, err = parseSpecFloat(val, hasVal)
		case "recent":
			c.RecentReadFrac, err = parseSpecFloat(val, hasVal)
		case "size":
			c.AvgReqBytes, err = parseSpecBytes(val, hasVal)
		case "wws":
			c.WriteWorkingSetBytes, err = parseSpecBytes(val, hasVal)
		case "rws":
			c.ReadWorkingSetBytes, err = parseSpecBytes(val, hasVal)
		case "seed":
			if !hasVal {
				err = fmt.Errorf("missing value")
			} else {
				c.Seed, err = strconv.ParseInt(val, 10, 64)
			}
		default:
			err = fmt.Errorf("unknown key")
		}
		if err != nil {
			return Synthetic{}, fmt.Errorf("trace: spec field %q: %v", f, err)
		}
	}
	if err := c.Validate(); err != nil {
		return Synthetic{}, err
	}
	return c, nil
}

// SpecString renders c in the ParseSyntheticSpec format, field order
// fixed, defaults included: ParseSyntheticSpec(c.SpecString()) == c for
// every c that Validate accepts.
func (c Synthetic) SpecString() string {
	var b strings.Builder
	f := func(key string, val string) {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(key)
		if val != "" {
			b.WriteByte('=')
			b.WriteString(val)
		}
	}
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	f("duration", fmt.Sprintf("%dus", int64(c.Duration)))
	f("iops", g(c.IOPS))
	f("write", g(c.WriteRatio))
	f("size", strconv.FormatInt(c.AvgReqBytes, 10))
	if c.FixedSize {
		f("fixed", "")
	}
	f("random", g(c.RandomFrac))
	f("burst", g(c.Burstiness))
	f("duty", g(c.DutyCycle))
	f("on", fmt.Sprintf("%dus", int64(c.OnPeriod)))
	f("wws", strconv.FormatInt(c.WriteWorkingSetBytes, 10))
	f("rws", strconv.FormatInt(c.ReadWorkingSetBytes, 10))
	if c.ReadWSDisjoint {
		f("disjoint", "")
	}
	f("zipf", g(c.ReadZipfS))
	f("hot", g(c.ReadHotFrac))
	f("recent", g(c.RecentReadFrac))
	f("seed", strconv.FormatInt(c.Seed, 10))
	return b.String()
}

// parseSpecDuration accepts Go duration syntax and truncates to the
// simulator's microsecond tick.
func parseSpecDuration(val string, hasVal bool) (sim.Time, error) {
	if !hasVal {
		return 0, fmt.Errorf("missing value")
	}
	d, err := time.ParseDuration(val)
	if err != nil {
		return 0, err
	}
	return sim.Time(d / time.Microsecond), nil
}

func parseSpecFloat(val string, hasVal bool) (float64, error) {
	if !hasVal {
		return 0, fmt.Errorf("missing value")
	}
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	return v, nil
}

// parseSpecBytes accepts a non-negative integer with an optional binary
// K/M/G suffix.
func parseSpecBytes(val string, hasVal bool) (int64, error) {
	if !hasVal {
		return 0, fmt.Errorf("missing value")
	}
	shift := 0
	switch {
	case strings.HasSuffix(val, "K"), strings.HasSuffix(val, "k"):
		shift, val = 10, val[:len(val)-1]
	case strings.HasSuffix(val, "M"), strings.HasSuffix(val, "m"):
		shift, val = 20, val[:len(val)-1]
	case strings.HasSuffix(val, "G"), strings.HasSuffix(val, "g"):
		shift, val = 30, val[:len(val)-1]
	}
	n, err := strconv.ParseInt(val, 10, 64)
	if err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, fmt.Errorf("negative byte count")
	}
	if shift > 0 && n > (1<<62)>>shift {
		return 0, fmt.Errorf("byte count overflows")
	}
	return n << shift, nil
}
