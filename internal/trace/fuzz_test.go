package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// FuzzParseMSR checks that the MSR CSV parser never panics and that
// accepted inputs survive a write/re-parse round trip: ParseMSR output is
// base-normalized (first record at time zero), so WriteMSR followed by
// ParseMSR must reproduce the records exactly.
func FuzzParseMSR(f *testing.F) {
	f.Add("128166372003061629,hm,1,Read,383496192,32768,571\n" +
		"128166372016382155,hm,1,Write,2216306688,4096,258\n")
	f.Add("0,h,0,write,0,4096,0\n")
	f.Add("10, h ,0, READ ,4096,8192,5\n")
	f.Add("")
	f.Add("not,a,valid,row\n")
	f.Add("9223372036854775807,h,0,Read,0,4096,0\n-9223372036854775808,h,0,Read,0,4096,0\n")
	f.Add("0,h,0,Read,0,-1,0\n")
	f.Add("0,h,0,scrub,0,4096,0\n")
	f.Fuzz(func(t *testing.T, data string) {
		recs, err := ParseMSR(strings.NewReader(data))
		if err != nil {
			return
		}
		// WriteMSR re-encodes timestamps as At*10 file-time ticks; skip the
		// round trip when that multiplication would overflow (possible
		// because ParseMSR divides a difference that may itself have
		// wrapped).
		for _, r := range recs {
			if r.At < math.MinInt64/20 || r.At > math.MaxInt64/20 {
				return
			}
		}
		var buf bytes.Buffer
		if err := WriteMSR(&buf, "fuzz", 0, recs); err != nil {
			t.Fatalf("WriteMSR on parsed records: %v", err)
		}
		back, err := ParseMSR(&buf)
		if err != nil {
			t.Fatalf("re-parse of WriteMSR output: %v\n%s", err, buf.String())
		}
		if len(back) != len(recs) {
			t.Fatalf("round trip: %d records, want %d", len(back), len(recs))
		}
		for i := range recs {
			if back[i] != recs[i] {
				t.Fatalf("round trip record %d: %+v, want %+v", i, back[i], recs[i])
			}
		}
	})
}

// FuzzParseSyntheticSpec checks the spec parser's contract: it never
// panics, every accepted spec passes Validate, and SpecString is a fixed
// point — re-parsing a rendered spec yields the identical rendering.
// (Renderings rather than structs are compared so a NaN smuggled through
// a float field cannot fail the equality by being unequal to itself.)
func FuzzParseSyntheticSpec(f *testing.F) {
	f.Add("")
	f.Add("iops=200 write=0.9 duration=10m size=64K random=0.7 seed=3")
	f.Add("iops=12.5,write=0.35,duration=1h30m,size=4096,fixed,burst=0.8")
	f.Add("duty=0.25 on=10s wws=2G rws=512M disjoint zipf=1.2 hot=0.8 recent=0.1")
	f.Add("duration=1us iops=0.001")
	f.Add("size=8388607K")
	f.Add("write=NaN")
	f.Add("seed=-1 seed=-1")
	f.Add("fixed=1")
	f.Fuzz(func(t *testing.T, spec string) {
		c, err := ParseSyntheticSpec(spec)
		if err != nil {
			return
		}
		if verr := c.Validate(); verr != nil {
			t.Fatalf("accepted spec %q fails Validate: %v", spec, verr)
		}
		s1 := c.SpecString()
		c2, err := ParseSyntheticSpec(s1)
		if err != nil {
			t.Fatalf("SpecString output %q rejected: %v", s1, err)
		}
		if s2 := c2.SpecString(); s2 != s1 {
			t.Fatalf("SpecString not a fixed point:\n  %q\n  %q", s1, s2)
		}
	})
}
