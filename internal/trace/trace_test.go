package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/rolo-storage/rolo/internal/sim"
)

const testVolume = int64(64) << 30

func TestSyntheticValidate(t *testing.T) {
	good := Uniform70Random64K(100, sim.Minute, 1)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Synthetic{
		{Duration: 0, IOPS: 1, AvgReqBytes: 4096},
		{Duration: sim.Second, IOPS: 0, AvgReqBytes: 4096},
		{Duration: sim.Second, IOPS: 1, AvgReqBytes: 100},
		{Duration: sim.Second, IOPS: 1, AvgReqBytes: 4096, WriteRatio: 1.5},
		{Duration: sim.Second, IOPS: 1, AvgReqBytes: 4096, RandomFrac: -0.1},
		{Duration: sim.Second, IOPS: 1, AvgReqBytes: 4096, Burstiness: 1},
		{Duration: sim.Second, IOPS: 1, AvgReqBytes: 4096, ReadZipfS: 0.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, c)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Uniform70Random64K(50, 10*sim.Second, 42)
	a, err := cfg.Generate(testVolume)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.Generate(testVolume)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGeneratePoissonRate(t *testing.T) {
	cfg := Uniform70Random64K(100, 10*sim.Minute, 7)
	recs, err := cfg.Generate(testVolume)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(len(recs)) / cfg.Duration.Seconds()
	if math.Abs(got-100)/100 > 0.05 {
		t.Fatalf("achieved IOPS = %.2f, want 100 ± 5%%", got)
	}
	if err := Validate(recs, testVolume); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateBurstyPreservesRate(t *testing.T) {
	for _, burst := range []float64{0.3, 0.6, 0.85} {
		cfg := Uniform70Random64K(80, 20*sim.Minute, 11)
		cfg.Burstiness = burst
		recs, err := cfg.Generate(testVolume)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(len(recs)) / cfg.Duration.Seconds()
		if math.Abs(got-80)/80 > 0.15 {
			t.Fatalf("burst=%g: achieved IOPS = %.2f, want 80 ± 15%%", burst, got)
		}
		if err := Validate(recs, testVolume); err != nil {
			t.Fatalf("burst=%g: %v", burst, err)
		}
	}
}

// Burstiness should concentrate arrivals: the variance of per-second
// arrival counts must grow with the burstiness parameter.
func TestBurstinessIncreasesVariance(t *testing.T) {
	variance := func(burst float64) float64 {
		cfg := Uniform70Random64K(50, 10*sim.Minute, 5)
		cfg.Burstiness = burst
		recs, err := cfg.Generate(testVolume)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, int(cfg.Duration/sim.Second)+1)
		for _, r := range recs {
			counts[int(r.At/sim.Second)]++
		}
		var mean float64
		for _, c := range counts {
			mean += float64(c)
		}
		mean /= float64(len(counts))
		var v float64
		for _, c := range counts {
			v += (float64(c) - mean) * (float64(c) - mean)
		}
		return v / float64(len(counts))
	}
	smooth, bursty := variance(0), variance(0.85)
	if bursty < 3*smooth {
		t.Fatalf("variance smooth=%.1f bursty=%.1f; bursty should be >= 3x smooth", smooth, bursty)
	}
}

func TestWriteRatio(t *testing.T) {
	cfg := Synthetic{
		Duration: 5 * sim.Minute, IOPS: 200, WriteRatio: 0.75,
		AvgReqBytes: 16 << 10, Seed: 9,
	}
	recs, err := cfg.Generate(testVolume)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(recs)
	if math.Abs(s.WriteRatio-0.75) > 0.03 {
		t.Fatalf("write ratio = %.3f, want 0.75 ± 0.03", s.WriteRatio)
	}
}

func TestAvgRequestSizePreserved(t *testing.T) {
	cfg := Synthetic{
		Duration: 5 * sim.Minute, IOPS: 200, WriteRatio: 1,
		AvgReqBytes: 64 << 10, Seed: 3,
	}
	recs, err := cfg.Generate(testVolume)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(recs)
	want := float64(64 << 10)
	if math.Abs(s.AvgReqBytes-want)/want > 0.08 {
		t.Fatalf("avg request = %.0f, want %.0f ± 8%%", s.AvgReqBytes, want)
	}
}

func TestSequentialRuns(t *testing.T) {
	cfg := Synthetic{
		Duration: sim.Minute, IOPS: 100, WriteRatio: 1,
		AvgReqBytes: 64 << 10, FixedSize: true, RandomFrac: 0.3, Seed: 13,
	}
	recs, err := cfg.Generate(testVolume)
	if err != nil {
		t.Fatal(err)
	}
	seq := 0
	for i := 1; i < len(recs); i++ {
		if recs[i].Offset == recs[i-1].End() {
			seq++
		}
	}
	frac := float64(seq) / float64(len(recs)-1)
	if math.Abs(frac-0.7) > 0.1 {
		t.Fatalf("sequential continuation fraction = %.2f, want ~0.7", frac)
	}
}

func TestZipfReadsAreSkewed(t *testing.T) {
	cfg := Synthetic{
		Duration: 2 * sim.Minute, IOPS: 500, WriteRatio: 0,
		AvgReqBytes: 4 << 10, FixedSize: true,
		ReadWorkingSetBytes: 1 << 30, ReadZipfS: 1.5, Seed: 21,
	}
	recs, err := cfg.Generate(testVolume)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int64]int{}
	for _, r := range recs {
		counts[r.Offset]++
	}
	// With Zipf s=1.5 the hottest block must take a sizable share.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max)/float64(len(recs)) < 0.1 {
		t.Fatalf("hottest block share = %.3f, expected >= 0.1 under Zipf(1.5)",
			float64(max)/float64(len(recs)))
	}
}

// Property: generated traces are always valid — time-ordered, in-bounds,
// block-aligned, positive sizes — for arbitrary parameter combinations.
func TestQuickGeneratedTracesValid(t *testing.T) {
	f := func(seed int64, iopsRaw, wrRaw, burstRaw uint16) bool {
		cfg := Synthetic{
			Duration:    30 * sim.Second,
			IOPS:        1 + float64(iopsRaw%300),
			WriteRatio:  float64(wrRaw%101) / 100,
			AvgReqBytes: 8 << 10,
			RandomFrac:  0.5,
			Burstiness:  float64(burstRaw%90) / 100,
			Seed:        seed,
		}
		recs, err := cfg.Generate(testVolume)
		if err != nil {
			return false
		}
		if err := Validate(recs, testVolume); err != nil {
			return false
		}
		for _, r := range recs {
			if r.Offset%BlockAlign != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestProfileCalibration(t *testing.T) {
	// Scaled-down generation must still match the published aggregate
	// statistics of each trace within tolerance. The published IOPS is
	// the burst rate; the long-run rate is IOPS x duty cycle.
	for _, name := range ProfileNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			p := Profiles[name]
			scale := 0.02
			if p.EffectiveIOPS() < 2 { // low-rate traces need a longer window
				scale = 0.10
			}
			recs, err := p.Generate(testVolume, scale)
			if err != nil {
				t.Fatal(err)
			}
			s := Summarize(recs)
			if math.Abs(s.WriteRatio-p.WriteRatio) > 0.05 {
				t.Errorf("write ratio = %.4f, want %.4f", s.WriteRatio, p.WriteRatio)
			}
			wantIOPS := p.EffectiveIOPS()
			if wantIOPS > 0.5 && math.Abs(s.IOPS-wantIOPS)/wantIOPS > 0.2 {
				t.Errorf("IOPS = %.2f, want %.2f ± 20%% (duty %.3f)", s.IOPS, wantIOPS, p.DutyCycle())
			}
			if math.Abs(s.AvgReqBytes-float64(p.AvgReqBytes))/float64(p.AvgReqBytes) > 0.15 {
				t.Errorf("avg req = %.0f, want %d ± 15%%", s.AvgReqBytes, p.AvgReqBytes)
			}
			wantWrite := float64(p.ExpectedWriteBytes(scale))
			if wantWrite > 0 && math.Abs(float64(s.WriteBytes)-wantWrite)/wantWrite > 0.25 {
				t.Errorf("write bytes = %d, want %.0f ± 25%%", s.WriteBytes, wantWrite)
			}
		})
	}
}

func TestProfileDutyCycles(t *testing.T) {
	// The published numbers imply src2_2 bursts hard (~1 % duty) while
	// proj_0 is far steadier (~14 %) — the Table V burstiness contrast.
	if d := Src2_2.DutyCycle(); d < 0.005 || d > 0.03 {
		t.Errorf("src2_2 duty = %.4f, want ~0.011", d)
	}
	if d := Proj_0.DutyCycle(); d < 0.08 || d > 0.25 {
		t.Errorf("proj_0 duty = %.4f, want ~0.14", d)
	}
	if Src2_2.DutyCycle() >= Proj_0.DutyCycle() {
		t.Error("src2_2 must be burstier (lower duty) than proj_0")
	}
	// All profiles replay the 7-day MSR window.
	for _, name := range ProfileNames() {
		p := Profiles[name]
		if p.Duration() != 7*24*sim.Hour {
			t.Errorf("%s duration = %v, want 168h", name, p.Duration())
		}
		if d := p.DutyCycle(); d <= 0 || d > 1 {
			t.Errorf("%s duty = %g", name, d)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("src2_2"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown profile accepted")
	}
	if len(ProfileNames()) != 7 {
		t.Fatalf("ProfileNames() has %d entries, want 7", len(ProfileNames()))
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Requests != 0 || s.IOPS != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestValidateRejectsDisorder(t *testing.T) {
	recs := []Record{
		{At: 10, Op: Write, Offset: 0, Size: 4096},
		{At: 5, Op: Write, Offset: 0, Size: 4096},
	}
	if err := Validate(recs, testVolume); err == nil {
		t.Fatal("out-of-order records accepted")
	}
	recs = []Record{{At: 1, Op: Op(9), Offset: 0, Size: 4096}}
	if err := Validate(recs, testVolume); err == nil {
		t.Fatal("bad op accepted")
	}
	recs = []Record{{At: 1, Op: Read, Offset: testVolume, Size: 4096}}
	if err := Validate(recs, testVolume); err == nil {
		t.Fatal("out-of-bounds record accepted")
	}
}

func TestMSRRoundTrip(t *testing.T) {
	cfg := Uniform70Random64K(50, 30*sim.Second, 17)
	cfg.WriteRatio = 0.8
	orig, err := cfg.Generate(testVolume)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMSR(&buf, "host", 0, orig); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseMSR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(orig) {
		t.Fatalf("round trip: %d records, want %d", len(parsed), len(orig))
	}
	// ParseMSR normalizes timestamps so the first record is at zero.
	base := orig[0].At
	for i := range orig {
		want := orig[i]
		want.At -= base
		if parsed[i] != want {
			t.Fatalf("record %d: %+v != %+v", i, parsed[i], want)
		}
	}
}

func TestParseMSRRealFormat(t *testing.T) {
	// A snippet in the documented MSR format: Windows file times.
	in := "128166372003061629,src2,2,Write,3556352,4096,1331\n" +
		"128166372013061629,src2,2,Read,7168000,8192,500\n"
	recs, err := ParseMSR(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("parsed %d records, want 2", len(recs))
	}
	if recs[0].At != 0 {
		t.Errorf("first record not normalized to 0: %v", recs[0].At)
	}
	if recs[1].At != sim.Second {
		t.Errorf("second record at %v, want 1s (10^7 ticks)", recs[1].At)
	}
	if recs[0].Op != Write || recs[1].Op != Read {
		t.Error("ops not parsed")
	}
	if recs[0].Offset != 3556352 || recs[0].Size != 4096 {
		t.Errorf("offset/size not parsed: %+v", recs[0])
	}
}

func TestParseMSRErrors(t *testing.T) {
	cases := []string{
		"notanumber,h,0,Write,0,4096,0\n",
		"1,h,0,Frobnicate,0,4096,0\n",
		"1,h,0,Write,zero,4096,0\n",
		"1,h,0,Write,0,bad,0\n",
		"1,h,0,Write,0,-5,0\n",
		"1,h,0\n",
	}
	for i, in := range cases {
		if _, err := ParseMSR(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: bad input accepted: %q", i, in)
		}
	}
}

func TestExpectedWriteBytes(t *testing.T) {
	cfg := Uniform70Random64K(100, 10*sim.Second, 1)
	want := int64(100 * 10 * 64 << 10)
	if got := cfg.ExpectedWriteBytes(); got != want {
		t.Fatalf("ExpectedWriteBytes = %d, want %d", got, want)
	}
}

func BenchmarkGenerate(b *testing.B) {
	cfg := Uniform70Random64K(200, sim.Minute, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Generate(testVolume); err != nil {
			b.Fatal(err)
		}
	}
}
