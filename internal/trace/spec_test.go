package trace

import (
	"strings"
	"testing"

	"github.com/rolo-storage/rolo/internal/sim"
)

func TestParseSyntheticSpec(t *testing.T) {
	c, err := ParseSyntheticSpec("iops=200, write=0.9\tduration=10m size=64K fixed seed=3 wws=2G")
	if err != nil {
		t.Fatal(err)
	}
	want := Synthetic{
		Duration:             600 * sim.Second,
		IOPS:                 200,
		WriteRatio:           0.9,
		AvgReqBytes:          64 << 10,
		FixedSize:            true,
		RandomFrac:           0.7, // default preserved
		Seed:                 3,
		WriteWorkingSetBytes: 2 << 30,
	}
	if c != want {
		t.Fatalf("parsed %+v, want %+v", c, want)
	}

	if _, err := ParseSyntheticSpec(""); err != nil {
		t.Fatalf("empty spec (all defaults): %v", err)
	}

	for _, tc := range []struct{ spec, errFrag string }{
		{"iops=0", "non-positive IOPS"},
		{"bogus=1", "unknown key"},
		{"iops=5 iops=6", "duplicate key"},
		{"fixed=1", "flag key takes no value"},
		{"duration=10", "missing unit"},
		{"size=-4096", "negative byte count"},
		{"size=9999999999G", "overflow"},
		{"write", "missing value"},
	} {
		if _, err := ParseSyntheticSpec(tc.spec); err == nil || !strings.Contains(err.Error(), tc.errFrag) {
			t.Errorf("ParseSyntheticSpec(%q) = %v, want error containing %q", tc.spec, err, tc.errFrag)
		}
	}
}

func TestSpecStringRoundTrip(t *testing.T) {
	c := Synthetic{
		Duration:    90 * sim.Second,
		IOPS:        33.5,
		WriteRatio:  0.42,
		AvgReqBytes: 12288,
		RandomFrac:  0.1,
		Burstiness:  0.5,
		ReadZipfS:   1.2,
		ReadHotFrac: 0.7,
		Seed:        -4,
	}
	back, err := ParseSyntheticSpec(c.SpecString())
	if err != nil {
		t.Fatalf("re-parse %q: %v", c.SpecString(), err)
	}
	if back != c {
		t.Fatalf("round trip:\n got %+v\nwant %+v", back, c)
	}
}
