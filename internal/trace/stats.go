package trace

import (
	"sort"

	"github.com/rolo-storage/rolo/internal/sim"
)

// ExtendedStats adds the workload-characterization metrics the paper's
// analysis leans on (burstiness, sequentiality, working-set size) to the
// basic Stats aggregates. Compute it with Characterize.
type ExtendedStats struct {
	Stats
	// SequentialFrac is the fraction of requests that begin exactly where
	// the previous request of the same kind ended.
	SequentialFrac float64
	// DutyCycle estimates the fraction of one-second windows containing
	// at least one arrival.
	DutyCycle float64
	// BurstIOPS is the mean arrival rate within active one-second
	// windows — directly comparable to the paper's Table III IOPS column.
	BurstIOPS float64
	// PeakIOPS is the arrival rate of the busiest one-second window.
	PeakIOPS float64
	// WriteWorkingSetBytes is the number of distinct bytes written
	// (unique, not total).
	WriteWorkingSetBytes int64
	// ReadWorkingSetBytes is the number of distinct bytes read.
	ReadWorkingSetBytes int64
}

// Characterize computes extended workload statistics. Records must be in
// time order.
func Characterize(recs []Record) ExtendedStats {
	var es ExtendedStats
	es.Stats = Summarize(recs)
	if len(recs) == 0 {
		return es
	}

	seq := 0
	var lastWriteEnd, lastReadEnd int64 = -1, -1
	counts := map[int64]int{}
	writeSpans := make([]Record, 0, len(recs))
	readSpans := make([]Record, 0)
	for _, r := range recs {
		switch r.Op {
		case Write:
			if r.Offset == lastWriteEnd {
				seq++
			}
			lastWriteEnd = r.End()
			writeSpans = append(writeSpans, r)
		case Read:
			if r.Offset == lastReadEnd {
				seq++
			}
			lastReadEnd = r.End()
			readSpans = append(readSpans, r)
		}
		counts[int64(r.At/sim.Second)]++
	}
	if len(recs) > 1 {
		es.SequentialFrac = float64(seq) / float64(len(recs)-1)
	}

	windows := int64(es.Duration/sim.Second) + 1
	if windows > 0 {
		es.DutyCycle = float64(len(counts)) / float64(windows)
	}
	if len(counts) > 0 {
		total, peak := 0, 0
		for _, c := range counts {
			total += c
			if c > peak {
				peak = c
			}
		}
		es.BurstIOPS = float64(total) / float64(len(counts))
		es.PeakIOPS = float64(peak)
	}
	es.WriteWorkingSetBytes = uniqueBytes(writeSpans)
	es.ReadWorkingSetBytes = uniqueBytes(readSpans)
	return es
}

// uniqueBytes measures the union of the records' byte ranges.
func uniqueBytes(recs []Record) int64 {
	if len(recs) == 0 {
		return 0
	}
	spans := make([][2]int64, len(recs))
	for i, r := range recs {
		spans[i] = [2]int64{r.Offset, r.End()}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i][0] < spans[j][0] })
	var total, curStart, curEnd int64
	curStart, curEnd = spans[0][0], spans[0][1]
	for _, sp := range spans[1:] {
		if sp[0] <= curEnd {
			if sp[1] > curEnd {
				curEnd = sp[1]
			}
			continue
		}
		total += curEnd - curStart
		curStart, curEnd = sp[0], sp[1]
	}
	return total + (curEnd - curStart)
}
