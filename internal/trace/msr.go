package trace

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/rolo-storage/rolo/internal/sim"
)

// The MSR Cambridge traces are CSV files with the fields
//
//	Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//
// where Timestamp and ResponseTime are Windows file times (100 ns ticks)
// and Offset/Size are bytes. ParseMSR normalizes timestamps so the first
// record is at time zero, letting genuine MSR traces drive the simulator
// directly in place of the calibrated synthetics.

const fileTimeTicksPerMicro = 10 // 100 ns ticks per µs

// ParseMSR reads records in the MSR Cambridge CSV format. Records for all
// disk numbers are merged into one volume-relative stream; lines with
// unknown operation types are rejected.
func ParseMSR(r io.Reader) ([]Record, error) {
	cr := csv.NewReader(bufio.NewReader(r))
	cr.FieldsPerRecord = -1
	var recs []Record
	var base int64
	first := true
	line := 0
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: parse MSR: %w", err)
		}
		line++
		if len(row) < 6 {
			return nil, fmt.Errorf("trace: line %d: %d fields, want >= 6", line, len(row))
		}
		ts, err := strconv.ParseInt(strings.TrimSpace(row[0]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: timestamp: %w", line, err)
		}
		var op Op
		switch strings.ToLower(strings.TrimSpace(row[3])) {
		case "read":
			op = Read
		case "write":
			op = Write
		default:
			return nil, fmt.Errorf("trace: line %d: unknown op %q", line, row[3])
		}
		off, err := strconv.ParseInt(strings.TrimSpace(row[4]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: offset: %w", line, err)
		}
		size, err := strconv.ParseInt(strings.TrimSpace(row[5]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: size: %w", line, err)
		}
		if size <= 0 {
			return nil, fmt.Errorf("trace: line %d: size %d", line, size)
		}
		if first {
			base = ts
			first = false
		}
		recs = append(recs, Record{
			At:     sim.Time((ts - base) / fileTimeTicksPerMicro),
			Op:     op,
			Offset: off,
			Size:   size,
		})
	}
	return recs, nil
}

// WriteMSR emits records in the MSR Cambridge CSV format, with the given
// hostname and disk number and a synthetic base file time of zero.
// Response times are written as zero (they are an output of simulation,
// not an input).
func WriteMSR(w io.Writer, hostname string, diskNum int, recs []Record) error {
	bw := bufio.NewWriter(w)
	for i, r := range recs {
		ts := int64(r.At) * fileTimeTicksPerMicro
		if _, err := fmt.Fprintf(bw, "%d,%s,%d,%s,%d,%d,0\n",
			ts, hostname, diskNum, r.Op, r.Offset, r.Size); err != nil {
			return fmt.Errorf("trace: write record %d: %w", i, err)
		}
	}
	return bw.Flush()
}
