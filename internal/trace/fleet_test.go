package trace

import (
	"math"
	"testing"

	"github.com/rolo-storage/rolo/internal/sim"
)

func baseSynthetic() Synthetic {
	return Synthetic{
		IOPS:        100,
		WriteRatio:  0.9,
		Duration:    10 * sim.Second,
		AvgReqBytes: 16 << 10,
		RandomFrac:  0.5,
		Seed:        7,
	}
}

// TestShardRuleDeterministic pins the derivation contract: the same
// (base, rule, shard) always yields the same workload, shards get
// distinct strided seeds, and the IOPS spread stays inside its band.
func TestShardRuleDeterministic(t *testing.T) {
	base := baseSynthetic()
	rule := ShardRule{SeedStride: 3, IOPSSpread: 0.4}
	seen := map[int64]bool{}
	for shard := 0; shard < 200; shard++ {
		a := rule.Derive(base, shard)
		b := rule.Derive(base, shard)
		if a != b {
			t.Fatalf("shard %d derivation not deterministic: %+v vs %+v", shard, a, b)
		}
		if want := base.Seed + 3*int64(shard); a.Seed != want {
			t.Fatalf("shard %d seed = %d, want %d", shard, a.Seed, want)
		}
		if seen[a.Seed] {
			t.Fatalf("shard %d reuses seed %d", shard, a.Seed)
		}
		seen[a.Seed] = true
		lo, hi := base.IOPS*(1-rule.IOPSSpread), base.IOPS*(1+rule.IOPSSpread)
		if a.IOPS < lo || a.IOPS > hi {
			t.Fatalf("shard %d IOPS %g outside [%g, %g]", shard, a.IOPS, lo, hi)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("shard %d derived workload invalid: %v", shard, err)
		}
	}
}

// TestShardRuleZeroValue pins the zero rule: stride defaults to 1 (every
// shard still gets a distinct seed) and IOPS is untouched.
func TestShardRuleZeroValue(t *testing.T) {
	base := baseSynthetic()
	var rule ShardRule
	for shard := 0; shard < 5; shard++ {
		d := rule.Derive(base, shard)
		if d.Seed != base.Seed+int64(shard) {
			t.Fatalf("shard %d seed = %d, want stride-1 default", shard, d.Seed)
		}
		if d.IOPS != base.IOPS {
			t.Fatalf("shard %d IOPS changed without spread: %g", shard, d.IOPS)
		}
	}
}

// TestShardRuleSpreadCoverage checks the spread factors actually use the
// band rather than clustering: across many shards the mean scaling stays
// near 1 and both halves of the band are populated.
func TestShardRuleSpreadCoverage(t *testing.T) {
	base := baseSynthetic()
	rule := ShardRule{IOPSSpread: 0.5}
	var sum float64
	below, above := 0, 0
	const n = 1000
	for shard := 0; shard < n; shard++ {
		f := rule.Derive(base, shard).IOPS / base.IOPS
		sum += f
		if f < 1 {
			below++
		} else {
			above++
		}
	}
	if mean := sum / n; math.Abs(mean-1) > 0.05 {
		t.Fatalf("mean spread factor %g, want ≈1", mean)
	}
	if below < n/4 || above < n/4 {
		t.Fatalf("spread factors unbalanced: %d below, %d above", below, above)
	}
}
