// Package trace supplies the I/O workloads that drive the simulator: a
// parser/writer for the MSR Cambridge block-trace format, seeded synthetic
// workload generators (Poisson and bursty arrivals, Zipf read locality,
// mixed sequential/random writes), and calibrated profiles reproducing the
// published statistics of the seven MSR traces used in the RoLo paper
// (Tables III, V and VI).
package trace

import (
	"fmt"

	"github.com/rolo-storage/rolo/internal/sim"
)

// Op is the request type.
type Op int

// Request types.
const (
	Read Op = iota + 1
	Write
)

// String returns the MSR-format operation name.
func (o Op) String() string {
	switch o {
	case Read:
		return "Read"
	case Write:
		return "Write"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Record is one logical volume request.
type Record struct {
	At     sim.Time // arrival time relative to trace start
	Op     Op
	Offset int64 // byte offset within the logical volume
	Size   int64 // bytes
}

// End returns the byte offset one past the last byte touched.
func (r Record) End() int64 { return r.Offset + r.Size }

// Stats summarizes a record slice with the paper's Table III/VI metrics.
type Stats struct {
	Requests      int
	WriteRatio    float64 // fraction of requests that are writes
	IOPS          float64 // requests per second over the trace duration
	AvgReqBytes   float64
	WriteBytes    int64 // total bytes written ("write capacity")
	ReadBytes     int64
	Duration      sim.Time
	MaxOffsetSeen int64
}

// Summarize computes aggregate statistics over records, which must be in
// non-decreasing time order.
func Summarize(recs []Record) Stats {
	var s Stats
	s.Requests = len(recs)
	if len(recs) == 0 {
		return s
	}
	writes := 0
	var totalBytes int64
	for _, r := range recs {
		totalBytes += r.Size
		if r.Op == Write {
			writes++
			s.WriteBytes += r.Size
		} else {
			s.ReadBytes += r.Size
		}
		if r.End() > s.MaxOffsetSeen {
			s.MaxOffsetSeen = r.End()
		}
	}
	s.Duration = recs[len(recs)-1].At - recs[0].At
	s.WriteRatio = float64(writes) / float64(len(recs))
	s.AvgReqBytes = float64(totalBytes) / float64(len(recs))
	if s.Duration > 0 {
		s.IOPS = float64(len(recs)) / s.Duration.Seconds()
	}
	return s
}

// Validate checks ordering and bounds of a record slice.
func Validate(recs []Record, volumeBytes int64) error {
	var prev sim.Time
	for i, r := range recs {
		if r.At < prev {
			return fmt.Errorf("trace: record %d at %v before predecessor %v", i, r.At, prev)
		}
		prev = r.At
		if r.Op != Read && r.Op != Write {
			return fmt.Errorf("trace: record %d has invalid op %d", i, int(r.Op))
		}
		if r.Size <= 0 {
			return fmt.Errorf("trace: record %d has size %d", i, r.Size)
		}
		if r.Offset < 0 || (volumeBytes > 0 && r.End() > volumeBytes) {
			return fmt.Errorf("trace: record %d [%d,%d) outside volume of %d bytes",
				i, r.Offset, r.End(), volumeBytes)
		}
	}
	return nil
}
