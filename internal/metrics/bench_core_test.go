package metrics

import (
	"testing"

	"github.com/rolo-storage/rolo/internal/sim"
)

// Core benchmark: the per-request-completion metrics path. Every completed
// request calls ResponseStats.AddClass (streaming mean, exact max, and a
// log-bucketed histogram observation); once the histogram's bucket array
// has grown to cover the largest observed latency it must be 0 allocs/op
// (DESIGN §11). Gated by scripts/check.sh bench-smoke and recorded in
// BENCH_core.json by `make bench`.
func BenchmarkCoreHistogramAdd(b *testing.B) {
	var r ResponseStats
	// Warm the bucket arrays past the latencies observed below.
	r.AddClass(10*sim.Second, true)
	r.AddClass(10*sim.Second, false)
	rts := [...]sim.Time{
		3 * sim.Millisecond, 420 * sim.Microsecond, 97 * sim.Millisecond,
		12 * sim.Millisecond, 1 * sim.Second, 250 * sim.Microsecond,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.AddClass(rts[i%len(rts)], i%2 == 0)
	}
}
