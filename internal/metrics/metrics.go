// Package metrics collects simulation observables: request response times,
// logging/destaging phase intervals with energy snapshots (for the paper's
// destaging interval ratio and destaging energy ratio), and per-state disk
// time fractions.
package metrics

import (
	"fmt"

	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/telemetry"
)

// ClassStats accumulates response times for one request class (reads or
// writes): a streaming mean and exact max, plus an exact log-bucketed
// histogram for percentiles. Unlike the sampling reservoir it replaced,
// the histogram counts every response, so percentiles carry no sampling
// error (only the ≤1% bucket-resolution error) and are deterministic
// without any RNG.
type ClassStats struct {
	count   int64
	totalUs float64
	max     sim.Time
	hist    telemetry.Histogram
}

// Add records one response time.
func (c *ClassStats) Add(rt sim.Time) {
	c.count++
	c.totalUs += float64(rt)
	if rt > c.max {
		c.max = rt
	}
	c.hist.Observe(int64(rt))
}

// Count returns the number of recorded responses.
func (c *ClassStats) Count() int64 { return c.count }

// Mean returns the mean response time in milliseconds.
func (c *ClassStats) Mean() float64 {
	if c.count == 0 {
		return 0
	}
	return c.totalUs / float64(c.count) / float64(sim.Millisecond)
}

// Max returns the largest response time observed.
func (c *ClassStats) Max() sim.Time { return c.max }

// Percentile returns the p-th percentile (0 < p <= 100) in milliseconds.
func (c *ClassStats) Percentile(p float64) float64 {
	return sim.Time(c.hist.Quantile(p)).Milliseconds()
}

// Histogram exposes the underlying latency histogram.
func (c *ClassStats) Histogram() *telemetry.Histogram { return &c.hist }

// ResponseStats accumulates request response times with a per-class
// (read/write) breakdown. The zero value is ready to use.
type ResponseStats struct {
	all   ClassStats
	read  ClassStats
	write ClassStats
}

// Add records one response time of unknown class (it contributes to the
// combined statistics only). Controllers that know the request direction
// should call AddClass instead.
func (r *ResponseStats) Add(rt sim.Time) { r.all.Add(rt) }

// AddClass records one response time for a read (write=false) or write.
func (r *ResponseStats) AddClass(rt sim.Time, write bool) {
	r.all.Add(rt)
	if write {
		r.write.Add(rt)
	} else {
		r.read.Add(rt)
	}
}

// Count returns the number of recorded responses.
func (r *ResponseStats) Count() int64 { return r.all.Count() }

// Mean returns the mean response time in milliseconds.
func (r *ResponseStats) Mean() float64 { return r.all.Mean() }

// Max returns the largest response time observed.
func (r *ResponseStats) Max() sim.Time { return r.all.Max() }

// Percentile returns the p-th percentile (0 < p <= 100) in milliseconds
// over all responses.
func (r *ResponseStats) Percentile(p float64) float64 { return r.all.Percentile(p) }

// All returns the combined (read+write) statistics.
func (r *ResponseStats) All() *ClassStats { return &r.all }

// Reads returns the read-class statistics.
func (r *ResponseStats) Reads() *ClassStats { return &r.read }

// Writes returns the write-class statistics.
func (r *ResponseStats) Writes() *ClassStats { return &r.write }

// Phase labels a period of a logging cycle.
type Phase int

// Phases of a logging cycle.
const (
	Logging Phase = iota + 1
	Destaging
)

// String returns the phase name.
func (p Phase) String() string {
	switch p {
	case Logging:
		return "logging"
	case Destaging:
		return "destaging"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Interval is one completed phase with its energy consumption.
type Interval struct {
	Phase   Phase
	Start   sim.Time
	End     sim.Time
	EnergyJ float64 // array energy consumed during the interval
}

// Duration returns the interval length.
func (iv Interval) Duration() sim.Time { return iv.End - iv.Start }

// PhaseLog records the alternation of logging and destaging periods.
// Controllers call Begin at each phase boundary with the array's cumulative
// energy so interval energy can be computed by difference.
type PhaseLog struct {
	intervals []Interval
	open      bool
	cur       Interval
	curEnergy float64
}

// Begin closes any open phase and starts a new one. energyJ is the array's
// cumulative energy at this instant.
func (l *PhaseLog) Begin(p Phase, now sim.Time, energyJ float64) {
	l.End(now, energyJ)
	l.open = true
	l.cur = Interval{Phase: p, Start: now}
	l.curEnergy = energyJ
}

// End closes the open phase, if any.
func (l *PhaseLog) End(now sim.Time, energyJ float64) {
	if !l.open {
		return
	}
	l.cur.End = now
	l.cur.EnergyJ = energyJ - l.curEnergy
	l.intervals = append(l.intervals, l.cur)
	l.open = false
}

// Len returns the number of completed intervals.
func (l *PhaseLog) Len() int { return len(l.intervals) }

// At returns the i-th completed interval, 0 <= i < Len(). Together with Len
// it lets callers scan the log without the copy Intervals() makes.
func (l *PhaseLog) At(i int) Interval { return l.intervals[i] }

// Intervals returns a copy of the completed intervals. It allocates; report
// generators may use it freely, but anything called per event should scan
// with Len/At instead.
func (l *PhaseLog) Intervals() []Interval {
	out := make([]Interval, len(l.intervals))
	copy(out, l.intervals)
	return out
}

// Totals sums duration and energy per phase over completed intervals.
func (l *PhaseLog) Totals() (dur map[Phase]sim.Time, energy map[Phase]float64) {
	dur = make(map[Phase]sim.Time)
	energy = make(map[Phase]float64)
	for _, iv := range l.intervals {
		dur[iv.Phase] += iv.Duration()
		energy[iv.Phase] += iv.EnergyJ
	}
	return dur, energy
}

// DestagingIntervalRatio is the fraction of completed-cycle time spent
// destaging — the paper's Figure 2(c) metric.
func (l *PhaseLog) DestagingIntervalRatio() float64 {
	dur, _ := l.Totals()
	total := dur[Logging] + dur[Destaging]
	if total == 0 {
		return 0
	}
	return float64(dur[Destaging]) / float64(total)
}

// DestagingEnergyRatio is the fraction of completed-cycle energy consumed
// during destaging — the paper's Figure 2(d) metric.
func (l *PhaseLog) DestagingEnergyRatio() float64 {
	_, energy := l.Totals()
	total := energy[Logging] + energy[Destaging]
	if total <= 0 {
		return 0
	}
	return energy[Destaging] / total
}
