// Package metrics collects simulation observables: request response times,
// logging/destaging phase intervals with energy snapshots (for the paper's
// destaging interval ratio and destaging energy ratio), and per-state disk
// time fractions.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"github.com/rolo-storage/rolo/internal/sim"
)

// ResponseStats accumulates request response times in a streaming fashion,
// keeping a bounded reservoir for percentile estimates.
type ResponseStats struct {
	count   int64
	totalUs float64
	max     sim.Time

	reservoir []sim.Time
	seen      int64
	rngState  uint64
}

const reservoirSize = 4096

// Add records one response time.
func (r *ResponseStats) Add(rt sim.Time) {
	r.count++
	r.totalUs += float64(rt)
	if rt > r.max {
		r.max = rt
	}
	r.seen++
	if len(r.reservoir) < reservoirSize {
		r.reservoir = append(r.reservoir, rt)
		return
	}
	// Vitter's algorithm R with a cheap xorshift generator: metrics must
	// not perturb the simulation's seeded randomness.
	r.rngState = r.rngState*6364136223846793005 + 1442695040888963407
	idx := r.rngState % uint64(r.seen)
	if idx < reservoirSize {
		r.reservoir[idx] = rt
	}
}

// Count returns the number of recorded responses.
func (r *ResponseStats) Count() int64 { return r.count }

// Mean returns the mean response time in milliseconds.
func (r *ResponseStats) Mean() float64 {
	if r.count == 0 {
		return 0
	}
	return r.totalUs / float64(r.count) / float64(sim.Millisecond)
}

// Max returns the largest response time observed.
func (r *ResponseStats) Max() sim.Time { return r.max }

// Percentile estimates the p-th percentile (0 < p <= 100) in milliseconds
// from the reservoir sample.
func (r *ResponseStats) Percentile(p float64) float64 {
	if len(r.reservoir) == 0 || p <= 0 || p > 100 {
		return 0
	}
	sorted := make([]sim.Time, len(r.reservoir))
	copy(sorted, r.reservoir)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx].Milliseconds()
}

// Phase labels a period of a logging cycle.
type Phase int

// Phases of a logging cycle.
const (
	Logging Phase = iota + 1
	Destaging
)

// String returns the phase name.
func (p Phase) String() string {
	switch p {
	case Logging:
		return "logging"
	case Destaging:
		return "destaging"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Interval is one completed phase with its energy consumption.
type Interval struct {
	Phase   Phase
	Start   sim.Time
	End     sim.Time
	EnergyJ float64 // array energy consumed during the interval
}

// Duration returns the interval length.
func (iv Interval) Duration() sim.Time { return iv.End - iv.Start }

// PhaseLog records the alternation of logging and destaging periods.
// Controllers call Begin at each phase boundary with the array's cumulative
// energy so interval energy can be computed by difference.
type PhaseLog struct {
	intervals []Interval
	open      bool
	cur       Interval
	curEnergy float64
}

// Begin closes any open phase and starts a new one. energyJ is the array's
// cumulative energy at this instant.
func (l *PhaseLog) Begin(p Phase, now sim.Time, energyJ float64) {
	l.End(now, energyJ)
	l.open = true
	l.cur = Interval{Phase: p, Start: now}
	l.curEnergy = energyJ
}

// End closes the open phase, if any.
func (l *PhaseLog) End(now sim.Time, energyJ float64) {
	if !l.open {
		return
	}
	l.cur.End = now
	l.cur.EnergyJ = energyJ - l.curEnergy
	l.intervals = append(l.intervals, l.cur)
	l.open = false
}

// Intervals returns a copy of the completed intervals.
func (l *PhaseLog) Intervals() []Interval {
	out := make([]Interval, len(l.intervals))
	copy(out, l.intervals)
	return out
}

// Totals sums duration and energy per phase over completed intervals.
func (l *PhaseLog) Totals() (dur map[Phase]sim.Time, energy map[Phase]float64) {
	dur = make(map[Phase]sim.Time)
	energy = make(map[Phase]float64)
	for _, iv := range l.intervals {
		dur[iv.Phase] += iv.Duration()
		energy[iv.Phase] += iv.EnergyJ
	}
	return dur, energy
}

// DestagingIntervalRatio is the fraction of completed-cycle time spent
// destaging — the paper's Figure 2(c) metric.
func (l *PhaseLog) DestagingIntervalRatio() float64 {
	dur, _ := l.Totals()
	total := dur[Logging] + dur[Destaging]
	if total == 0 {
		return 0
	}
	return float64(dur[Destaging]) / float64(total)
}

// DestagingEnergyRatio is the fraction of completed-cycle energy consumed
// during destaging — the paper's Figure 2(d) metric.
func (l *PhaseLog) DestagingEnergyRatio() float64 {
	_, energy := l.Totals()
	total := energy[Logging] + energy[Destaging]
	if total == 0 {
		return 0
	}
	return energy[Destaging] / total
}
