package metrics

import (
	"math"
	"testing"

	"github.com/rolo-storage/rolo/internal/sim"
)

func TestResponseStatsBasics(t *testing.T) {
	var r ResponseStats
	if r.Mean() != 0 || r.Count() != 0 {
		t.Fatal("zero value not empty")
	}
	r.Add(2 * sim.Millisecond)
	r.Add(4 * sim.Millisecond)
	r.Add(6 * sim.Millisecond)
	if r.Count() != 3 {
		t.Fatalf("Count = %d", r.Count())
	}
	if got := r.Mean(); math.Abs(got-4) > 1e-9 {
		t.Fatalf("Mean = %g ms, want 4", got)
	}
	if r.Max() != 6*sim.Millisecond {
		t.Fatalf("Max = %v", r.Max())
	}
}

func TestResponseStatsPercentile(t *testing.T) {
	var r ResponseStats
	for i := 1; i <= 100; i++ {
		r.Add(sim.Time(i) * sim.Millisecond)
	}
	if got := r.Percentile(50); math.Abs(got-50) > 1 {
		t.Fatalf("P50 = %g, want ~50", got)
	}
	if got := r.Percentile(99); math.Abs(got-99) > 1 {
		t.Fatalf("P99 = %g, want ~99", got)
	}
	if got := r.Percentile(0); got != 0 {
		t.Fatalf("P0 = %g, want 0 (invalid)", got)
	}
	if got := r.Percentile(101); got != 0 {
		t.Fatalf("P101 = %g, want 0 (invalid)", got)
	}
}

func TestResponseStatsReservoirBounded(t *testing.T) {
	var r ResponseStats
	for i := 0; i < 3*reservoirSize; i++ {
		r.Add(sim.Time(i))
	}
	if len(r.reservoir) != reservoirSize {
		t.Fatalf("reservoir grew to %d", len(r.reservoir))
	}
	if r.Count() != int64(3*reservoirSize) {
		t.Fatalf("Count = %d", r.Count())
	}
}

func TestPhaseLogAlternation(t *testing.T) {
	var l PhaseLog
	l.Begin(Logging, 0, 0)
	l.Begin(Destaging, 100*sim.Second, 500)
	l.Begin(Logging, 150*sim.Second, 900)
	l.End(250*sim.Second, 1400)
	ivs := l.Intervals()
	if len(ivs) != 3 {
		t.Fatalf("%d intervals, want 3", len(ivs))
	}
	want := []Interval{
		{Logging, 0, 100 * sim.Second, 500},
		{Destaging, 100 * sim.Second, 150 * sim.Second, 400},
		{Logging, 150 * sim.Second, 250 * sim.Second, 500},
	}
	for i := range want {
		if ivs[i] != want[i] {
			t.Fatalf("interval %d = %+v, want %+v", i, ivs[i], want[i])
		}
	}
}

func TestPhaseLogRatios(t *testing.T) {
	var l PhaseLog
	// 300s logging consuming 600 J, 100s destaging consuming 400 J.
	l.Begin(Logging, 0, 0)
	l.Begin(Destaging, 300*sim.Second, 600)
	l.End(400*sim.Second, 1000)
	if got := l.DestagingIntervalRatio(); math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("interval ratio = %g, want 0.25", got)
	}
	if got := l.DestagingEnergyRatio(); math.Abs(got-0.4) > 1e-9 {
		t.Fatalf("energy ratio = %g, want 0.4", got)
	}
}

func TestPhaseLogEmpty(t *testing.T) {
	var l PhaseLog
	if l.DestagingIntervalRatio() != 0 || l.DestagingEnergyRatio() != 0 {
		t.Fatal("empty log has non-zero ratios")
	}
	l.End(10, 5) // End without Begin is a no-op
	if len(l.Intervals()) != 0 {
		t.Fatal("End without Begin recorded an interval")
	}
}

func TestPhaseString(t *testing.T) {
	if Logging.String() != "logging" || Destaging.String() != "destaging" {
		t.Fatal("phase names wrong")
	}
	if Phase(99).String() == "" {
		t.Fatal("unknown phase renders empty")
	}
}

func TestReservoirSamplingRepresentative(t *testing.T) {
	// Feed a stream where the second half is 10x slower; the reservoir
	// percentile estimate must land between the two modes.
	var r ResponseStats
	for i := 0; i < 20000; i++ {
		v := sim.Millisecond
		if i >= 10000 {
			v = 10 * sim.Millisecond
		}
		r.Add(v)
	}
	p50 := r.Percentile(50)
	if p50 < 1 || p50 > 10 {
		t.Fatalf("P50 = %g, want within [1,10]", p50)
	}
	p90 := r.Percentile(90)
	if p90 != 10 {
		t.Fatalf("P90 = %g, want 10 (half the stream is 10ms)", p90)
	}
	if r.Max() != 10*sim.Millisecond {
		t.Fatalf("Max = %v", r.Max())
	}
}
