package metrics

import (
	"math"
	"sort"
	"testing"

	"github.com/rolo-storage/rolo/internal/sim"
)

func TestResponseStatsBasics(t *testing.T) {
	var r ResponseStats
	if r.Mean() != 0 || r.Count() != 0 {
		t.Fatal("zero value not empty")
	}
	r.Add(2 * sim.Millisecond)
	r.Add(4 * sim.Millisecond)
	r.Add(6 * sim.Millisecond)
	if r.Count() != 3 {
		t.Fatalf("Count = %d", r.Count())
	}
	if got := r.Mean(); math.Abs(got-4) > 1e-9 {
		t.Fatalf("Mean = %g ms, want 4", got)
	}
	if r.Max() != 6*sim.Millisecond {
		t.Fatalf("Max = %v", r.Max())
	}
}

func TestResponseStatsPercentile(t *testing.T) {
	var r ResponseStats
	for i := 1; i <= 100; i++ {
		r.Add(sim.Time(i) * sim.Millisecond)
	}
	if got := r.Percentile(50); math.Abs(got-50) > 1 {
		t.Fatalf("P50 = %g, want ~50", got)
	}
	if got := r.Percentile(99); math.Abs(got-99) > 1 {
		t.Fatalf("P99 = %g, want ~99", got)
	}
	if got := r.Percentile(0); got != 0 {
		t.Fatalf("P0 = %g, want 0 (invalid)", got)
	}
	if got := r.Percentile(101); got != 0 {
		t.Fatalf("P101 = %g, want 0 (invalid)", got)
	}
}

// TestResponseStatsPercentileMatchesReservoirEra checks histogram
// percentiles against the exact sorted-sample percentile the old 4096-
// sample reservoir computed (for n <= 4096 the reservoir held every
// sample, so its estimate was exact). The histogram must agree to within
// its documented ~1% bucket resolution.
func TestResponseStatsPercentileMatchesReservoirEra(t *testing.T) {
	var r ResponseStats
	samples := make([]sim.Time, 0, 4096)
	// A deterministic skewed stream: quadratic growth gives a long tail
	// like real response-time distributions.
	for i := 1; i <= 4096; i++ {
		v := sim.Time(i*i) * sim.Microsecond
		r.Add(v)
		samples = append(samples, v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, p := range []float64{1, 10, 50, 90, 95, 99, 99.9, 100} {
		idx := int(math.Ceil(p/100*float64(len(samples)))) - 1
		exact := samples[idx].Milliseconds()
		got := r.Percentile(p)
		if math.Abs(got-exact) > exact*0.01+1e-6 {
			t.Errorf("P%g = %g ms, exact %g ms", p, got, exact)
		}
	}
}

func TestResponseStatsClassBreakdown(t *testing.T) {
	var r ResponseStats
	r.AddClass(2*sim.Millisecond, false) // read
	r.AddClass(4*sim.Millisecond, false) // read
	r.AddClass(10*sim.Millisecond, true) // write
	if r.Count() != 3 {
		t.Fatalf("combined count = %d", r.Count())
	}
	if r.Reads().Count() != 2 || r.Writes().Count() != 1 {
		t.Fatalf("class counts = %d/%d", r.Reads().Count(), r.Writes().Count())
	}
	if got := r.Reads().Mean(); math.Abs(got-3) > 1e-9 {
		t.Fatalf("read mean = %g, want 3", got)
	}
	if got := r.Writes().Max(); got != 10*sim.Millisecond {
		t.Fatalf("write max = %v", got)
	}
	// Add (classless) contributes to the combined stats only.
	r.Add(100 * sim.Millisecond)
	if r.Count() != 4 || r.Reads().Count()+r.Writes().Count() != 3 {
		t.Fatal("classless Add leaked into a class")
	}
	if r.Writes().Histogram().Total() != 1 {
		t.Fatalf("write histogram total = %d", r.Writes().Histogram().Total())
	}
}

func TestResponseStatsDeterministic(t *testing.T) {
	// Two identical streams must produce identical percentiles (the old
	// reservoir was deterministic too, but via a private RNG; the
	// histogram is deterministic by construction).
	run := func() float64 {
		var r ResponseStats
		for i := 0; i < 20000; i++ {
			r.AddClass(sim.Time(i%977)*sim.Millisecond, i%3 == 0)
		}
		return r.Percentile(99)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same stream gave P99 %g then %g", a, b)
	}
}

func TestPhaseLogAlternation(t *testing.T) {
	var l PhaseLog
	l.Begin(Logging, 0, 0)
	l.Begin(Destaging, 100*sim.Second, 500)
	l.Begin(Logging, 150*sim.Second, 900)
	l.End(250*sim.Second, 1400)
	ivs := l.Intervals()
	if len(ivs) != 3 {
		t.Fatalf("%d intervals, want 3", len(ivs))
	}
	want := []Interval{
		{Logging, 0, 100 * sim.Second, 500},
		{Destaging, 100 * sim.Second, 150 * sim.Second, 400},
		{Logging, 150 * sim.Second, 250 * sim.Second, 500},
	}
	for i := range want {
		if ivs[i] != want[i] {
			t.Fatalf("interval %d = %+v, want %+v", i, ivs[i], want[i])
		}
	}
}

func TestPhaseLogRatios(t *testing.T) {
	var l PhaseLog
	// 300s logging consuming 600 J, 100s destaging consuming 400 J.
	l.Begin(Logging, 0, 0)
	l.Begin(Destaging, 300*sim.Second, 600)
	l.End(400*sim.Second, 1000)
	if got := l.DestagingIntervalRatio(); math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("interval ratio = %g, want 0.25", got)
	}
	if got := l.DestagingEnergyRatio(); math.Abs(got-0.4) > 1e-9 {
		t.Fatalf("energy ratio = %g, want 0.4", got)
	}
}

func TestPhaseLogEmpty(t *testing.T) {
	var l PhaseLog
	if l.DestagingIntervalRatio() != 0 || l.DestagingEnergyRatio() != 0 {
		t.Fatal("empty log has non-zero ratios")
	}
	l.End(10, 5) // End without Begin is a no-op
	if len(l.Intervals()) != 0 {
		t.Fatal("End without Begin recorded an interval")
	}
}

// TestPhaseLogRunEndsMidDestage models a run that is cut off while a
// destage is still in progress: Close ends the open destaging interval at
// the horizon, and the partial interval must be accounted exactly.
func TestPhaseLogRunEndsMidDestage(t *testing.T) {
	var l PhaseLog
	l.Begin(Logging, 0, 0)
	l.Begin(Destaging, 60*sim.Second, 1000)
	l.End(90*sim.Second, 1900) // run drained mid-destage
	ivs := l.Intervals()
	if len(ivs) != 2 {
		t.Fatalf("%d intervals, want 2", len(ivs))
	}
	last := ivs[1]
	if last.Phase != Destaging || last.Duration() != 30*sim.Second || last.EnergyJ != 900 {
		t.Fatalf("mid-destage interval = %+v", last)
	}
	if got := l.DestagingIntervalRatio(); math.Abs(got-float64(30)/90) > 1e-9 {
		t.Fatalf("interval ratio = %g", got)
	}
	// A second End must not double-record.
	l.End(95*sim.Second, 2000)
	if len(l.Intervals()) != 2 {
		t.Fatal("double End recorded an interval")
	}
}

// TestPhaseLogZeroDurationPhase covers a Begin immediately followed by a
// phase change at the same instant (e.g. a destage triggered at t=0).
func TestPhaseLogZeroDurationPhase(t *testing.T) {
	var l PhaseLog
	l.Begin(Logging, 0, 0)
	l.Begin(Destaging, 0, 0) // zero-length logging interval
	l.End(10*sim.Second, 100)
	ivs := l.Intervals()
	if len(ivs) != 2 {
		t.Fatalf("%d intervals, want 2", len(ivs))
	}
	if ivs[0].Duration() != 0 || ivs[0].EnergyJ != 0 {
		t.Fatalf("zero-length interval = %+v", ivs[0])
	}
	if got := l.DestagingIntervalRatio(); got != 1 {
		t.Fatalf("interval ratio = %g, want 1", got)
	}
}

func TestPhaseString(t *testing.T) {
	if Logging.String() != "logging" || Destaging.String() != "destaging" {
		t.Fatal("phase names wrong")
	}
	if Phase(99).String() == "" {
		t.Fatal("unknown phase renders empty")
	}
}

func TestClassStatsTailRepresentative(t *testing.T) {
	// Feed a stream where the second half is 10x slower; percentiles must
	// land on the modes since every sample is counted.
	var r ResponseStats
	for i := 0; i < 20000; i++ {
		v := sim.Millisecond
		if i >= 10000 {
			v = 10 * sim.Millisecond
		}
		r.Add(v)
	}
	p50 := r.Percentile(50)
	if p50 < 0.99 || p50 > 10.01 {
		t.Fatalf("P50 = %g, want within [1,10]", p50)
	}
	p90 := r.Percentile(90)
	if math.Abs(p90-10) > 0.1 {
		t.Fatalf("P90 = %g, want ~10 (half the stream is 10ms)", p90)
	}
	if r.Max() != 10*sim.Millisecond {
		t.Fatalf("Max = %v", r.Max())
	}
}
