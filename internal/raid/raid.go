// Package raid implements RAID10 geometry: striping a logical volume across
// mirrored disk pairs and splitting volume requests into per-pair extents.
//
// Layout follows the paper's configuration: a stripe unit of 16-64 KB is
// rotated across the pairs; each pair holds identical data on its primary
// and mirrored disk. Each disk reserves the tail of its LBA space as the
// logger region (managed by package logspace), so the geometry is
// parameterized by the per-disk *data* capacity, not the raw disk size.
package raid

import (
	"fmt"
)

// Geometry describes a RAID10 array's data layout.
type Geometry struct {
	// Pairs is the number of mirrored disk pairs (array has 2·Pairs disks).
	Pairs int
	// StripeUnitBytes is the striping granularity.
	StripeUnitBytes int64
	// DataBytesPerDisk is the size of the data region on each disk; the
	// remainder of the disk is logging space.
	DataBytesPerDisk int64
}

// Validate reports whether the geometry is usable.
func (g Geometry) Validate() error {
	switch {
	case g.Pairs <= 0:
		return fmt.Errorf("raid: non-positive pair count %d", g.Pairs)
	case g.StripeUnitBytes <= 0:
		return fmt.Errorf("raid: non-positive stripe unit %d", g.StripeUnitBytes)
	case g.DataBytesPerDisk <= 0:
		return fmt.Errorf("raid: non-positive data capacity %d", g.DataBytesPerDisk)
	case g.DataBytesPerDisk%g.StripeUnitBytes != 0:
		return fmt.Errorf("raid: data capacity %d not a multiple of stripe unit %d",
			g.DataBytesPerDisk, g.StripeUnitBytes)
	}
	return nil
}

// VolumeBytes returns the logical volume capacity.
func (g Geometry) VolumeBytes() int64 { return int64(g.Pairs) * g.DataBytesPerDisk }

// Extent is a contiguous range within one pair's data region. The same
// offsets apply to the pair's primary and mirrored disk.
type Extent struct {
	Pair   int
	Offset int64 // byte offset within the pair's data region
	Length int64
}

// End returns the offset one past the extent.
func (e Extent) End() int64 { return e.Offset + e.Length }

// Map splits the volume range [offset, offset+length) into per-pair
// extents, in volume order. Fragments that land adjacently on the same pair
// are merged.
func (g Geometry) Map(offset, length int64) ([]Extent, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if offset < 0 || length <= 0 || offset+length > g.VolumeBytes() {
		return nil, fmt.Errorf("raid: range [%d,%d) outside volume of %d bytes",
			offset, offset+length, g.VolumeBytes())
	}
	su := g.StripeUnitBytes
	var out []Extent
	for length > 0 {
		stripe := offset / su
		within := offset % su
		frag := su - within
		if frag > length {
			frag = length
		}
		pair := int(stripe % int64(g.Pairs))
		pairOff := (stripe/int64(g.Pairs))*su + within
		if n := len(out); n > 0 && out[n-1].Pair == pair && out[n-1].End() == pairOff {
			out[n-1].Length += frag
		} else {
			out = append(out, Extent{Pair: pair, Offset: pairOff, Length: frag})
		}
		offset += frag
		length -= frag
	}
	return out, nil
}

// PairOffsetToVolume is the inverse of Map for a single byte: it returns
// the volume offset stored at the given pair data-region offset.
func (g Geometry) PairOffsetToVolume(pair int, pairOff int64) (int64, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	if pair < 0 || pair >= g.Pairs {
		return 0, fmt.Errorf("raid: pair %d outside [0,%d)", pair, g.Pairs)
	}
	if pairOff < 0 || pairOff >= g.DataBytesPerDisk {
		return 0, fmt.Errorf("raid: pair offset %d outside data region of %d",
			pairOff, g.DataBytesPerDisk)
	}
	su := g.StripeUnitBytes
	stripeOnPair := pairOff / su
	within := pairOff % su
	stripe := stripeOnPair*int64(g.Pairs) + int64(pair)
	return stripe*su + within, nil
}
