package raid

import (
	"testing"
	"testing/quick"
)

func testGeom() Geometry {
	return Geometry{Pairs: 4, StripeUnitBytes: 64 << 10, DataBytesPerDisk: 1 << 30}
}

func TestValidate(t *testing.T) {
	if err := testGeom().Validate(); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
	bad := []Geometry{
		{Pairs: 0, StripeUnitBytes: 64 << 10, DataBytesPerDisk: 1 << 30},
		{Pairs: 4, StripeUnitBytes: 0, DataBytesPerDisk: 1 << 30},
		{Pairs: 4, StripeUnitBytes: 64 << 10, DataBytesPerDisk: 0},
		{Pairs: 4, StripeUnitBytes: 3000, DataBytesPerDisk: 1 << 30}, // not a multiple
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: invalid geometry accepted: %+v", i, g)
		}
	}
}

func TestVolumeBytes(t *testing.T) {
	g := testGeom()
	if got := g.VolumeBytes(); got != 4<<30 {
		t.Fatalf("VolumeBytes = %d, want %d", got, int64(4)<<30)
	}
}

func TestMapSingleStripeUnit(t *testing.T) {
	g := testGeom()
	su := g.StripeUnitBytes
	// Stripe k lands on pair k%4 at offset (k/4)*su.
	for k := int64(0); k < 10; k++ {
		exts, err := g.Map(k*su, su)
		if err != nil {
			t.Fatal(err)
		}
		if len(exts) != 1 {
			t.Fatalf("stripe %d: %d extents, want 1", k, len(exts))
		}
		want := Extent{Pair: int(k % 4), Offset: (k / 4) * su, Length: su}
		if exts[0] != want {
			t.Fatalf("stripe %d: got %+v, want %+v", k, exts[0], want)
		}
	}
}

func TestMapUnalignedSpansStripes(t *testing.T) {
	g := testGeom()
	su := g.StripeUnitBytes
	// A request starting mid-stripe and crossing into the next unit.
	exts, err := g.Map(su/2, su)
	if err != nil {
		t.Fatal(err)
	}
	if len(exts) != 2 {
		t.Fatalf("%d extents, want 2: %+v", len(exts), exts)
	}
	if exts[0] != (Extent{Pair: 0, Offset: su / 2, Length: su / 2}) {
		t.Errorf("first extent %+v", exts[0])
	}
	if exts[1] != (Extent{Pair: 1, Offset: 0, Length: su / 2}) {
		t.Errorf("second extent %+v", exts[1])
	}
}

func TestMapSinglePairMerges(t *testing.T) {
	g := Geometry{Pairs: 1, StripeUnitBytes: 64 << 10, DataBytesPerDisk: 1 << 30}
	exts, err := g.Map(0, 10*g.StripeUnitBytes)
	if err != nil {
		t.Fatal(err)
	}
	if len(exts) != 1 {
		t.Fatalf("single-pair map produced %d extents, want 1 merged: %+v", len(exts), exts)
	}
	if exts[0].Length != 10*g.StripeUnitBytes {
		t.Fatalf("merged length = %d", exts[0].Length)
	}
}

func TestMapBounds(t *testing.T) {
	g := testGeom()
	if _, err := g.Map(-1, 10); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := g.Map(0, 0); err == nil {
		t.Error("zero length accepted")
	}
	if _, err := g.Map(g.VolumeBytes()-10, 20); err == nil {
		t.Error("range past end accepted")
	}
	if _, err := g.Map(g.VolumeBytes()-10, 10); err != nil {
		t.Errorf("final bytes rejected: %v", err)
	}
}

func TestPairOffsetToVolumeRoundTrip(t *testing.T) {
	g := testGeom()
	for _, off := range []int64{0, 1, g.StripeUnitBytes - 1, g.StripeUnitBytes, 123456, g.VolumeBytes() - 1} {
		exts, err := g.Map(off, 1)
		if err != nil {
			t.Fatal(err)
		}
		back, err := g.PairOffsetToVolume(exts[0].Pair, exts[0].Offset)
		if err != nil {
			t.Fatal(err)
		}
		if back != off {
			t.Fatalf("round trip %d -> (%d,%d) -> %d", off, exts[0].Pair, exts[0].Offset, back)
		}
	}
}

func TestPairOffsetToVolumeBounds(t *testing.T) {
	g := testGeom()
	if _, err := g.PairOffsetToVolume(-1, 0); err == nil {
		t.Error("negative pair accepted")
	}
	if _, err := g.PairOffsetToVolume(4, 0); err == nil {
		t.Error("pair past end accepted")
	}
	if _, err := g.PairOffsetToVolume(0, g.DataBytesPerDisk); err == nil {
		t.Error("offset past data region accepted")
	}
}

// Property: Map conserves length, produces in-bounds extents, and the
// extents tile the request without overlap when mapped back to the volume.
func TestQuickMapConservation(t *testing.T) {
	g := testGeom()
	f := func(offRaw, lenRaw uint32) bool {
		off := int64(offRaw) % (g.VolumeBytes() - 1)
		length := int64(lenRaw)%(1<<20) + 1
		if off+length > g.VolumeBytes() {
			length = g.VolumeBytes() - off
		}
		exts, err := g.Map(off, length)
		if err != nil {
			return false
		}
		var total int64
		cursor := off
		for _, e := range exts {
			if e.Pair < 0 || e.Pair >= g.Pairs {
				return false
			}
			if e.Offset < 0 || e.End() > g.DataBytesPerDisk {
				return false
			}
			// First byte of each extent must map back to the cursor.
			back, err := g.PairOffsetToVolume(e.Pair, e.Offset)
			if err != nil || back != cursor {
				return false
			}
			total += e.Length
			cursor += e.Length
		}
		return total == length
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: distinct volume bytes map to distinct (pair, offset) addresses.
func TestQuickMapInjective(t *testing.T) {
	g := Geometry{Pairs: 3, StripeUnitBytes: 4 << 10, DataBytesPerDisk: 64 << 10}
	seen := make(map[[2]int64]int64)
	for off := int64(0); off < g.VolumeBytes(); off += 512 {
		exts, err := g.Map(off, 1)
		if err != nil {
			t.Fatal(err)
		}
		key := [2]int64{int64(exts[0].Pair), exts[0].Offset}
		if prev, dup := seen[key]; dup {
			t.Fatalf("volume offsets %d and %d both map to %v", prev, off, key)
		}
		seen[key] = off
	}
}

func BenchmarkMap(b *testing.B) {
	g := testGeom()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := g.Map(int64(i)%(g.VolumeBytes()-1<<20), 256<<10); err != nil {
			b.Fatal(err)
		}
	}
}
