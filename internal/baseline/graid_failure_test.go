package baseline

import (
	"testing"

	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/trace"
)

func TestGRAIDLogDiskFailureTriggersEmergencyDestage(t *testing.T) {
	a, eng := testArray(t, 2, 1)
	c, err := NewGRAID(a, graidConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Log some writes (below the destage threshold), then kill the logger.
	recs := writeRecs(32, 64<<10, 20*sim.Millisecond)
	replay(t, eng, a, c, recs)
	if c.Destages() != 0 {
		t.Fatalf("premature destage: %d", c.Destages())
	}
	exposed := c.FailLogDisk()
	if exposed <= 0 {
		t.Fatal("no exposed bytes reported despite dirty mirrors")
	}
	if !c.LogFailed() {
		t.Fatal("LogFailed not set")
	}
	eng.Run()
	// The emergency destage ran: mirrors spun up and were brought current.
	if c.Destages() != 1 {
		t.Fatalf("destages = %d, want 1 (emergency)", c.Destages())
	}
	for i, m := range a.Mirrors {
		if m.SpinCycles() != 1 {
			t.Fatalf("mirror %d spin cycles = %d: every mirror must wake", i, m.SpinCycles())
		}
		if m.Stats().BytesWritten == 0 {
			t.Fatalf("mirror %d not re-protected", i)
		}
	}
	if c.FailLogDisk() != 0 {
		t.Fatal("double failure returned exposure")
	}
}

func TestGRAIDWritesContinueWithoutLogDisk(t *testing.T) {
	a, eng := testArray(t, 2, 1)
	c, err := NewGRAID(a, graidConfig())
	if err != nil {
		t.Fatal(err)
	}
	recs := writeRecs(8, 64<<10, 20*sim.Millisecond)
	replay(t, eng, a, c, recs)
	c.FailLogDisk()
	eng.Run()
	before := c.Responses().Count()
	// Post-failure writes must still complete, with both copies in place.
	for i := 0; i < 4; i++ {
		at := eng.Now()
		if err := c.Submit(trace.Record{At: at, Op: trace.Write, Offset: int64(i) << 20, Size: 64 << 10}); err != nil {
			t.Fatalf("degraded write: %v", err)
		}
		eng.Run()
	}
	if got := c.Responses().Count(); got != before+4 {
		t.Fatalf("responses = %d, want %d", got, before+4)
	}
	// Replacement restores logging.
	if err := c.ReplaceLogDisk(); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if c.LogFailed() {
		t.Fatal("log still marked failed after replacement")
	}
	logBytesBefore := a.Extras[0].Stats().BytesWritten
	if err := c.Submit(trace.Record{At: eng.Now(), Op: trace.Write, Offset: 0, Size: 64 << 10}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if a.Extras[0].Stats().BytesWritten <= logBytesBefore {
		t.Fatal("replacement log disk received no writes")
	}
	if err := c.ReplaceLogDisk(); err == nil {
		t.Fatal("replacing a healthy log disk must error")
	}
}
