package baseline

import (
	"fmt"

	"github.com/rolo-storage/rolo/internal/array"
	"github.com/rolo-storage/rolo/internal/disk"
	"github.com/rolo-storage/rolo/internal/intervals"
	"github.com/rolo-storage/rolo/internal/invariant"
	"github.com/rolo-storage/rolo/internal/logspace"
	"github.com/rolo-storage/rolo/internal/metrics"
	"github.com/rolo-storage/rolo/internal/raid"
	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/telemetry"
	"github.com/rolo-storage/rolo/internal/trace"
)

// GRAIDConfig parameterizes the GRAID controller.
type GRAIDConfig struct {
	// LogCapacityBytes is the usable capacity of the dedicated log disk
	// (the paper's default is 16 GB).
	LogCapacityBytes int64
	// DestageThreshold is the log occupancy fraction that triggers a
	// centralized destage (the paper uses 0.8).
	DestageThreshold float64
	// DestageChunkBytes caps the size of each destage copy I/O.
	DestageChunkBytes int64
	// SpinDownRetry is the retry interval for post-destage spin-downs.
	SpinDownRetry sim.Time
}

// DefaultGRAIDConfig returns the paper's configuration.
func DefaultGRAIDConfig() GRAIDConfig {
	return GRAIDConfig{
		LogCapacityBytes:  16 << 30,
		DestageThreshold:  0.8,
		DestageChunkBytes: 256 << 10,
		SpinDownRetry:     sim.Second,
	}
}

// GRAID is the centralized-logging RAID10: mirrors stay in Standby while
// the second copy of every write lands sequentially on one dedicated log
// disk; when the log reaches the occupancy threshold, every mirror spins up
// and all inconsistent blocks are copied in parallel from the primaries
// (Figure 1 of the paper).
type GRAID struct {
	arr *array.Array
	cfg GRAIDConfig

	logDisk  *disk.Disk
	logSpace *logspace.Space
	gen      int // allocation generation tag; bumped at each destage

	dirty     []intervals.Set // per pair, mirror-stale spans (data-region offsets)
	destaging bool

	resp  metrics.ResponseStats
	phase metrics.PhaseLog
	tel   *telemetry.Recorder

	destages     int
	logOverflows int
	logFailed    bool
	closed       bool

	san *invariant.Audit // nil unless a sanitizer is attached (audit.go)
}

var (
	_ array.Controller       = (*GRAID)(nil)
	_ telemetry.Instrumented = (*GRAID)(nil)
	_ telemetry.GaugeSource  = (*GRAID)(nil)
)

// NewGRAID builds a GRAID controller. The array must have exactly one
// extra disk (the dedicated logger); mirrors are placed in Standby.
func NewGRAID(arr *array.Array, cfg GRAIDConfig) (*GRAID, error) {
	if len(arr.Extras) != 1 {
		return nil, fmt.Errorf("graid: need exactly 1 extra log disk, have %d", len(arr.Extras))
	}
	if cfg.LogCapacityBytes <= 0 || cfg.LogCapacityBytes > arr.Extras[0].Config().CapacityBytes {
		return nil, fmt.Errorf("graid: log capacity %d outside (0,%d]",
			cfg.LogCapacityBytes, arr.Extras[0].Config().CapacityBytes)
	}
	if cfg.DestageThreshold <= 0 || cfg.DestageThreshold > 1 {
		return nil, fmt.Errorf("graid: destage threshold %g outside (0,1]", cfg.DestageThreshold)
	}
	if cfg.DestageChunkBytes <= 0 {
		return nil, fmt.Errorf("graid: non-positive destage chunk %d", cfg.DestageChunkBytes)
	}
	space, err := logspace.New(cfg.LogCapacityBytes)
	if err != nil {
		return nil, err
	}
	g := &GRAID{
		arr:      arr,
		cfg:      cfg,
		logDisk:  arr.Extras[0],
		logSpace: space,
		dirty:    make([]intervals.Set, arr.Geom.Pairs),
	}
	for _, m := range arr.Mirrors {
		if err := m.ForceState(disk.Standby); err != nil {
			return nil, fmt.Errorf("graid: init mirror: %w", err)
		}
	}
	g.phase.Begin(metrics.Logging, arr.Eng.Now(), arr.TotalEnergyJ())
	return g, nil
}

// Responses returns the response-time statistics.
func (g *GRAID) Responses() *metrics.ResponseStats { return &g.resp }

// SetTelemetry implements telemetry.Instrumented.
func (g *GRAID) SetTelemetry(rec *telemetry.Recorder) { g.tel = rec }

// TelemetryGauges implements telemetry.GaugeSource: occupancy of the
// dedicated log disk and the mirror-stale bytes awaiting destage.
func (g *GRAID) TelemetryGauges() (logUsed, logCap, backlog int64) {
	for p := range g.dirty {
		backlog += g.dirty[p].Total()
	}
	return g.logSpace.UsedBytes(), g.logSpace.Capacity(), backlog
}

// Phases returns the logging/destaging phase log.
func (g *GRAID) Phases() *metrics.PhaseLog { return &g.phase }

// Destages returns the number of centralized destages triggered.
func (g *GRAID) Destages() int { return g.destages }

// LogOverflows returns how many writes had to bypass the logger because it
// was completely full.
func (g *GRAID) LogOverflows() int { return g.logOverflows }

// Submit implements array.Controller.
func (g *GRAID) Submit(rec trace.Record) error {
	exts, err := g.arr.Geom.Map(rec.Offset, rec.Size)
	if err != nil {
		return fmt.Errorf("graid: %w", err)
	}
	arrive := rec.At
	isWrite := rec.Op == trace.Write
	if g.tel != nil {
		g.tel.RequestStart(arrive, isWrite, rec.Size)
	}
	record := func(now sim.Time) {
		rt := now - arrive
		g.resp.AddClass(rt, isWrite)
		if g.tel != nil {
			g.tel.RequestDone(now, isWrite, rt)
		}
	}
	switch rec.Op {
	case trace.Read:
		// Mirrors are asleep; reads are always served by the primaries.
		join := array.NewJoin(len(exts), record)
		for _, e := range exts {
			io := g.arr.DataIO(e.Offset, e.Length, false, false)
			io.OnDone = join.Done
			if err := g.arr.Primaries[e.Pair].Submit(io); err != nil {
				return fmt.Errorf("graid: read: %w", err)
			}
		}
		return nil
	case trace.Write:
		return g.submitWrite(rec, exts, record)
	default:
		return fmt.Errorf("graid: unknown op %v", rec.Op)
	}
}

// FailLogDisk fails the dedicated log disk — GRAID's single point of
// failure (Section III-D of the RoLo paper contrasts this with RoLo's
// immediate logger replacement). The second copies of all logged-but-not-
// destaged writes are lost, so an emergency destage from the primaries
// re-protects them: every mirror spins up at once. Until ReplaceLogDisk
// is called, writes go directly to both copies and the energy advantage
// evaporates. It returns the number of bytes that were exposed to a
// second failure.
func (g *GRAID) FailLogDisk() int64 {
	if g.logFailed {
		return 0
	}
	g.logDisk.Fail()
	g.logFailed = true
	var exposed int64
	for p := range g.dirty {
		exposed += g.dirty[p].Total()
	}
	if !g.destaging {
		g.startDestage(g.arr.Eng.Now())
	}
	return exposed
}

// ReplaceLogDisk swaps in a fresh dedicated logger and resumes logging.
func (g *GRAID) ReplaceLogDisk() error {
	if !g.logFailed {
		return fmt.Errorf("graid: log disk is healthy")
	}
	if err := g.logDisk.Replace(); err != nil {
		return err
	}
	g.logFailed = false
	g.resetLog()
	g.gen++
	return nil
}

// LogFailed reports whether the dedicated logger is down.
func (g *GRAID) LogFailed() bool { return g.logFailed }

func (g *GRAID) submitWrite(rec trace.Record, exts []raid.Extent, record func(sim.Time)) error {
	if g.logFailed {
		// No logger: write both copies in place (the mirrors wake — the
		// cost of a centralized architecture's single point of failure).
		g.logOverflows++
		join := array.NewJoin(2*len(exts), record)
		for _, e := range exts {
			if err := g.writePair(e, join); err != nil {
				return err
			}
			g.cleanDirty(e.Pair, e.Offset, e.Offset+e.Length)
		}
		return nil
	}
	alloc, ok := g.logAlloc(rec.Size)
	if !ok {
		// Log completely full (can only happen if writes outrun the
		// in-progress destage): fall back to direct mirrored writes.
		// The mirrors are already up in that situation.
		g.logOverflows++
		join := array.NewJoin(2*len(exts), record)
		for _, e := range exts {
			if err := g.writePair(e, join); err != nil {
				return err
			}
		}
		g.maybeDestage()
		return nil
	}
	join := array.NewJoin(len(exts)+1, record)
	for _, e := range exts {
		io := g.arr.DataIO(e.Offset, e.Length, true, false)
		io.OnDone = join.Done
		if err := g.arr.Primaries[e.Pair].Submit(io); err != nil {
			return fmt.Errorf("graid: primary write: %w", err)
		}
		g.markDirty(e.Pair, e.Offset, e.Offset+e.Length)
	}
	// The dedicated log disk is log-only: its whole LBA space is the log,
	// addressed sequentially from LBA 0.
	lba, sectors := array.SectorRange(alloc.Offset, alloc.Length)
	logIO := g.arr.PooledIO(lba, sectors, true, false)
	logIO.OnDone = join.Done
	if err := g.logDisk.Submit(logIO); err != nil {
		return fmt.Errorf("graid: log write: %w", err)
	}
	g.maybeDestage()
	return nil
}

func (g *GRAID) writePair(e raid.Extent, join *array.Join) error {
	for _, mirror := range [...]bool{false, true} {
		io := g.arr.DataIO(e.Offset, e.Length, true, false)
		io.OnDone = join.Done
		target := g.arr.Primaries[e.Pair]
		if mirror {
			target = g.arr.Mirrors[e.Pair]
		}
		if err := target.Submit(io); err != nil {
			return fmt.Errorf("graid: direct write pair %d: %w", e.Pair, err)
		}
	}
	return nil
}

func (g *GRAID) maybeDestage() {
	if g.destaging {
		return
	}
	occupancy := 1 - g.logSpace.FreeFraction()
	if occupancy < g.cfg.DestageThreshold {
		return
	}
	g.startDestage(g.arr.Eng.Now())
}

func (g *GRAID) startDestage(now sim.Time) {
	g.destaging = true
	g.destages++
	destagedGen := g.gen
	g.gen++
	if g.tel != nil {
		g.tel.DestageStart(now, -1)
	}
	g.phase.Begin(metrics.Destaging, now, g.arr.TotalEnergyJ())

	join := array.NewJoin(g.arr.Geom.Pairs, func(at sim.Time) {
		g.endDestage(at, destagedGen)
	})
	for p := 0; p < g.arr.Geom.Pairs; p++ {
		p := p
		if err := g.arr.Mirrors[p].SpinUp(); err != nil {
			// Mirrors can only be Standby or (exceptionally) already
			// spinning here; a spin-up failure means SpinningDown, which
			// resolves itself — the queued destage IOs will wake it.
			_ = err
		}
		work := &intervals.Set{}
		for _, sp := range g.dirty[p].Spans() {
			work.Add(sp.Start, sp.End)
		}
		g.clearDirty(p)
		cp := array.NewCopier(g.arr.Eng, g.arr.Primaries[p], []*disk.Disk{g.arr.Mirrors[p]},
			work, g.cfg.DestageChunkBytes,
			func(sp intervals.Span) *disk.IO { return g.arr.DataIO(sp.Start, sp.Len(), false, true) },
			func(sp intervals.Span) *disk.IO { return g.arr.DataIO(sp.Start, sp.Len(), true, true) },
		)
		fired := false
		cp.OnDrained = func(at sim.Time) {
			if fired {
				return
			}
			fired = true
			join.Done(at)
		}
		cp.Kick()
	}
}

func (g *GRAID) endDestage(now sim.Time, destagedGen int) {
	if g.tel != nil {
		g.tel.DestageDone(now, -1)
	}
	freed := g.releaseGen(destagedGen)
	if g.tel != nil && freed > 0 {
		g.tel.LogInvalidate(now, -1, freed)
	}
	g.destaging = false
	g.phase.Begin(metrics.Logging, now, g.arr.TotalEnergyJ())
	for _, m := range g.arr.Mirrors {
		m := m
		array.SpinDownWhenIdle(g.arr.Eng, m, g.cfg.SpinDownRetry, func() bool {
			return !g.destaging && !g.closed
		})
	}
	// Writes that arrived during the destage may already have refilled
	// the log past the threshold.
	g.maybeDestage()
}

// Close implements array.Controller.
func (g *GRAID) Close(now sim.Time) {
	g.closed = true
	g.phase.End(now, g.arr.TotalEnergyJ())
}
