package baseline

import (
	"testing"

	"github.com/rolo-storage/rolo/internal/array"
	"github.com/rolo-storage/rolo/internal/disk"
	"github.com/rolo-storage/rolo/internal/metrics"
	"github.com/rolo-storage/rolo/internal/raid"
	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/trace"
)

func testArray(t *testing.T, pairs, extras int) (*array.Array, *sim.Engine) {
	t.Helper()
	eng := sim.New()
	geom := raid.Geometry{
		Pairs:            pairs,
		StripeUnitBytes:  64 << 10,
		DataBytesPerDisk: 256 << 20,
	}
	cfg := disk.Ultrastar36Z15().WithCapacity(512 << 20)
	a, err := array.New(eng, geom, cfg, extras)
	if err != nil {
		t.Fatal(err)
	}
	return a, eng
}

// replay drives a record slice through the controller via the runner.
func replay(t *testing.T, eng *sim.Engine, a *array.Array, c array.Controller, recs []trace.Record) array.ReplayResult {
	t.Helper()
	res, err := array.Replay(eng, a, c, recs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func writeRecs(n int, size int64, gap sim.Time) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{
			At:     sim.Time(i) * gap,
			Op:     trace.Write,
			Offset: int64(i) * size,
			Size:   size,
		}
	}
	return recs
}

func TestRAID10WritesBothCopies(t *testing.T) {
	a, eng := testArray(t, 2, 0)
	c := NewRAID10(a)
	recs := writeRecs(16, 64<<10, 20*sim.Millisecond)
	replay(t, eng, a, c, recs)
	var prim, mirr int64
	for i := range a.Primaries {
		prim += a.Primaries[i].Stats().BytesWritten
		mirr += a.Mirrors[i].Stats().BytesWritten
	}
	want := int64(16 * 64 << 10)
	if prim != want || mirr != want {
		t.Fatalf("primary/mirror bytes = %d/%d, want %d each", prim, mirr, want)
	}
	if c.Responses().Count() != 16 {
		t.Fatalf("responses = %d", c.Responses().Count())
	}
	if got := a.TotalSpinCycles(); got != 0 {
		t.Fatalf("RAID10 spun disks %d times", got)
	}
}

func TestRAID10ReadsBalance(t *testing.T) {
	a, eng := testArray(t, 1, 0)
	c := NewRAID10(a)
	// A burst of simultaneous reads must spread across both copies.
	recs := make([]trace.Record, 10)
	for i := range recs {
		recs[i] = trace.Record{At: 0, Op: trace.Read, Offset: int64(i) * (64 << 10), Size: 64 << 10}
	}
	replay(t, eng, a, c, recs)
	p := a.Primaries[0].Stats().IOsCompleted
	m := a.Mirrors[0].Stats().IOsCompleted
	if p == 0 || m == 0 {
		t.Fatalf("reads not balanced: primary=%d mirror=%d", p, m)
	}
}

func TestRAID10RejectsBadRecord(t *testing.T) {
	a, _ := testArray(t, 1, 0)
	c := NewRAID10(a)
	if err := c.Submit(trace.Record{Op: trace.Write, Offset: a.Geom.VolumeBytes(), Size: 4096}); err == nil {
		t.Fatal("out-of-volume write accepted")
	}
	if err := c.Submit(trace.Record{Op: trace.Op(9), Offset: 0, Size: 4096}); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func graidConfig() GRAIDConfig {
	cfg := DefaultGRAIDConfig()
	cfg.LogCapacityBytes = 16 << 20 // small log so destages trigger quickly
	return cfg
}

func TestNewGRAIDValidation(t *testing.T) {
	a, _ := testArray(t, 2, 0) // no extra disk
	if _, err := NewGRAID(a, graidConfig()); err == nil {
		t.Fatal("GRAID without log disk accepted")
	}
	a2, _ := testArray(t, 2, 1)
	bad := graidConfig()
	bad.DestageThreshold = 0
	if _, err := NewGRAID(a2, bad); err == nil {
		t.Fatal("zero threshold accepted")
	}
	a3, _ := testArray(t, 2, 1)
	bad = graidConfig()
	bad.LogCapacityBytes = 1 << 40
	if _, err := NewGRAID(a3, bad); err == nil {
		t.Fatal("log capacity beyond disk accepted")
	}
}

func TestGRAIDMirrorsSleepDuringLogging(t *testing.T) {
	a, eng := testArray(t, 2, 1)
	c, err := NewGRAID(a, graidConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Write less than the destage threshold.
	recs := writeRecs(16, 64<<10, 20*sim.Millisecond)
	replay(t, eng, a, c, recs)
	for i, m := range a.Mirrors {
		if m.State() != disk.Standby {
			t.Fatalf("mirror %d state = %v, want STANDBY", i, m.State())
		}
		if m.Stats().BytesWritten != 0 {
			t.Fatalf("mirror %d wrote %d bytes during logging", i, m.Stats().BytesWritten)
		}
	}
	if c.Destages() != 0 {
		t.Fatalf("unexpected destage: %d", c.Destages())
	}
	// Second copy landed on the log disk.
	if got := a.Extras[0].Stats().BytesWritten; got < 16*64<<10 {
		t.Fatalf("log disk wrote %d bytes", got)
	}
}

func TestGRAIDDestageCycle(t *testing.T) {
	a, eng := testArray(t, 2, 1)
	cfg := graidConfig() // 16 MB log, threshold 0.8 => destage after ~12.8 MB
	c, err := NewGRAID(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 300 x 64 KB = 18.75 MB of writes: exactly one destage triggers.
	recs := writeRecs(300, 64<<10, 20*sim.Millisecond)
	replay(t, eng, a, c, recs)
	if c.Destages() != 1 {
		t.Fatalf("destages = %d, want 1", c.Destages())
	}
	// Every mirror spun up exactly once for the destage (Table I: one
	// spin cycle per mirror per destage).
	for i, m := range a.Mirrors {
		if got := m.SpinCycles(); got != 1 {
			t.Fatalf("mirror %d spin cycles = %d, want 1", i, got)
		}
		if m.Stats().BytesWritten == 0 {
			t.Fatalf("mirror %d never caught up", i)
		}
		if m.State() != disk.Standby {
			t.Fatalf("mirror %d state = %v after destage, want STANDBY", i, m.State())
		}
	}
	// Phase log alternates logging -> destaging -> logging.
	ivs := c.Phases().Intervals()
	if len(ivs) < 3 {
		t.Fatalf("phase intervals = %d, want >= 3", len(ivs))
	}
	if ivs[0].Phase != metrics.Logging || ivs[1].Phase != metrics.Destaging {
		t.Fatalf("phases = %v,%v", ivs[0].Phase, ivs[1].Phase)
	}
	if c.Phases().DestagingIntervalRatio() <= 0 {
		t.Fatal("destaging interval ratio not measured")
	}
}

func TestGRAIDReadsFromPrimaries(t *testing.T) {
	a, eng := testArray(t, 2, 1)
	c, err := NewGRAID(a, graidConfig())
	if err != nil {
		t.Fatal(err)
	}
	recs := []trace.Record{
		{At: 0, Op: trace.Write, Offset: 0, Size: 64 << 10},
		{At: 50 * sim.Millisecond, Op: trace.Read, Offset: 0, Size: 64 << 10},
		{At: 100 * sim.Millisecond, Op: trace.Read, Offset: 10 << 20, Size: 64 << 10},
	}
	replay(t, eng, a, c, recs)
	for i, m := range a.Mirrors {
		if m.Stats().BytesRead != 0 {
			t.Fatalf("mirror %d serviced reads while asleep", i)
		}
	}
	if c.Responses().Count() != 3 {
		t.Fatalf("responses = %d", c.Responses().Count())
	}
}

func TestGRAIDMirrorConsistencyAfterDestage(t *testing.T) {
	a, eng := testArray(t, 2, 1)
	c, err := NewGRAID(a, graidConfig())
	if err != nil {
		t.Fatal(err)
	}
	recs := writeRecs(300, 64<<10, 20*sim.Millisecond)
	replay(t, eng, a, c, recs)
	// After the run every pair's dirty set only holds post-destage
	// writes; the destaged bytes must equal what the mirrors received.
	var mirrorBytes int64
	for i := range a.Mirrors {
		mirrorBytes += a.Mirrors[i].Stats().BytesWritten
	}
	var remaining int64
	for p := range c.dirty {
		remaining += c.dirty[p].Total()
	}
	total := int64(300 * 64 << 10)
	if mirrorBytes+remaining < total {
		t.Fatalf("mirror bytes %d + remaining dirty %d < written %d: lost updates",
			mirrorBytes, remaining, total)
	}
}

func TestGRAIDSpinCountScalesWithDestages(t *testing.T) {
	a, eng := testArray(t, 2, 1)
	cfg := graidConfig()
	c, err := NewGRAID(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// ~64 MB of writes over a long window: about 4-5 destage cycles.
	recs := writeRecs(1000, 64<<10, 50*sim.Millisecond)
	replay(t, eng, a, c, recs)
	if c.Destages() < 3 {
		t.Fatalf("destages = %d, want >= 3", c.Destages())
	}
	want := c.Destages() * len(a.Mirrors)
	if got := a.TotalSpinCycles(); got != want {
		t.Fatalf("spin cycles = %d, want destages x mirrors = %d", got, want)
	}
}

func TestGRAIDGenerationIsolation(t *testing.T) {
	// Writes logged while a destage is reclaiming the previous generation
	// must survive the reclamation: only the destaged generation's
	// extents are released.
	a, eng := testArray(t, 2, 1)
	c, err := NewGRAID(a, graidConfig()) // 16 MB log, threshold 0.8
	if err != nil {
		t.Fatal(err)
	}
	// Fill past the threshold to trigger the destage...
	recs := writeRecs(205, 64<<10, 5*sim.Millisecond)
	for i := range recs {
		rec := recs[i]
		if _, err := eng.Schedule(rec.At, func(sim.Time) {
			if err := c.Submit(rec); err != nil {
				t.Error(err)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	eng.RunUntil(recs[len(recs)-1].At)
	if !c.destaging {
		t.Skip("destage completed before mid-flight writes could be injected")
	}
	// ...then log more while the destage runs.
	during := 0
	for i := 0; i < 8; i++ {
		if err := c.Submit(trace.Record{
			At: eng.Now(), Op: trace.Write, Offset: int64(i) << 20, Size: 64 << 10,
		}); err != nil {
			t.Fatal(err)
		}
		during++
	}
	eng.Run()
	if c.Destages() < 1 {
		t.Fatal("no destage happened")
	}
	// The during-destage generation remains live in the log.
	if got := c.logSpace.UsedBytes(); got < int64(during)*(64<<10) {
		t.Fatalf("log holds %d bytes, want >= %d (mid-destage writes reclaimed too early)",
			got, during*(64<<10))
	}
}
