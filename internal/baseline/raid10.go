// Package baseline implements the two comparison schemes of the RoLo
// paper: a standard RAID10 array (all disks always spinning) and GRAID
// (MASCOTS'08), the centralized-logging RAID10 with one dedicated log disk
// and threshold-triggered destaging.
package baseline

import (
	"fmt"

	"github.com/rolo-storage/rolo/internal/array"
	"github.com/rolo-storage/rolo/internal/metrics"
	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/telemetry"
	"github.com/rolo-storage/rolo/internal/trace"
)

// RAID10 services reads from the less-loaded copy and writes to both disks
// of each pair. No disk ever spins down.
type RAID10 struct {
	arr  *array.Array
	resp metrics.ResponseStats
	tel  *telemetry.Recorder
}

var (
	_ array.Controller       = (*RAID10)(nil)
	_ telemetry.Instrumented = (*RAID10)(nil)
)

// NewRAID10 returns a RAID10 controller over the array. As in the paper,
// the baseline performs no power management: every disk is kept at ACTIVE
// power for the whole run.
func NewRAID10(arr *array.Array) *RAID10 {
	for _, d := range arr.AllDisks() {
		d.SetAlwaysActive(true)
	}
	return &RAID10{arr: arr}
}

// Responses returns the response-time statistics collected so far.
func (c *RAID10) Responses() *metrics.ResponseStats { return &c.resp }

// SetTelemetry implements telemetry.Instrumented.
func (c *RAID10) SetTelemetry(rec *telemetry.Recorder) { c.tel = rec }

// Submit implements array.Controller.
func (c *RAID10) Submit(rec trace.Record) error {
	exts, err := c.arr.Geom.Map(rec.Offset, rec.Size)
	if err != nil {
		return fmt.Errorf("raid10: %w", err)
	}
	arrive := rec.At
	isWrite := rec.Op == trace.Write
	if c.tel != nil {
		c.tel.RequestStart(arrive, isWrite, rec.Size)
	}
	record := func(now sim.Time) {
		rt := now - arrive
		c.resp.AddClass(rt, isWrite)
		if c.tel != nil {
			c.tel.RequestDone(now, isWrite, rt)
		}
	}
	switch rec.Op {
	case trace.Write:
		join := array.NewJoin(2*len(exts), record)
		for _, e := range exts {
			for _, d := range [...]int{0, 1} {
				io := c.arr.DataIO(e.Offset, e.Length, true, false)
				io.OnDone = join.Done
				target := c.arr.Primaries[e.Pair]
				if d == 1 {
					target = c.arr.Mirrors[e.Pair]
				}
				if err := target.Submit(io); err != nil {
					return fmt.Errorf("raid10: write pair %d: %w", e.Pair, err)
				}
			}
		}
	case trace.Read:
		join := array.NewJoin(len(exts), record)
		for _, e := range exts {
			io := c.arr.DataIO(e.Offset, e.Length, false, false)
			io.OnDone = join.Done
			// Read from the shorter queue; ties go to the primary.
			target := c.arr.Primaries[e.Pair]
			if m := c.arr.Mirrors[e.Pair]; m.QueueLen() < target.QueueLen() {
				target = m
			}
			if err := target.Submit(io); err != nil {
				return fmt.Errorf("raid10: read pair %d: %w", e.Pair, err)
			}
		}
	default:
		return fmt.Errorf("raid10: unknown op %v", rec.Op)
	}
	return nil
}

// Close implements array.Controller.
func (c *RAID10) Close(sim.Time) {}
