package baseline

import (
	"github.com/rolo-storage/rolo/internal/invariant"
	"github.com/rolo-storage/rolo/internal/logspace"
)

// This file is the RoloSan integration for the baseline schemes: GRAID's
// audited mutation helpers (the invariantguard analyzer enforces that all
// log-space and dirty-set changes route through them) and the Source
// snapshots for both baselines. GRAID tags allocations by generation, not
// by pair, so its State carries LogByPair == nil and the sanitizer applies
// the aggregate log-covers-dirt rule instead of the per-pair one.

var (
	_ invariant.Source     = (*GRAID)(nil)
	_ invariant.Attachable = (*GRAID)(nil)
	_ invariant.Source     = (*RAID10)(nil)
)

// SetSanitizer implements invariant.Attachable.
func (g *GRAID) SetSanitizer(a *invariant.Audit) { g.san = a }

// logAlloc reserves n log bytes on the dedicated logger under the current
// generation tag.
//
// rolosan:audited — notifies the sanitizer ledger on success.
func (g *GRAID) logAlloc(n int64) (logspace.Alloc, bool) {
	a, ok := g.logSpace.Alloc(n, g.gen)
	if ok {
		g.san.Alloc(g.logSpace, g.gen, n)
	}
	return a, ok
}

// releaseGen reclaims every extent of a destaged generation; legal only
// once that generation's centralized destage has completed.
//
// rolosan:audited — the sanitizer checks reclamation safety on the spot.
func (g *GRAID) releaseGen(gen int) int64 {
	freed := g.logSpace.ReleaseTag(gen)
	g.san.Release(g.logSpace, gen, freed)
	return freed
}

// resetLog drops the whole log — the log-disk replacement path. The data
// the extents protected is still current on the (always-spinning)
// primaries.
//
// rolosan:audited — the sanitizer checks reset safety on the spot.
func (g *GRAID) resetLog() {
	g.logSpace.Reset()
	g.san.Reset(g.logSpace)
}

// markDirty records that pair p's mirror is stale for [start, end).
//
// rolosan:audited
func (g *GRAID) markDirty(p int, start, end int64) {
	g.dirty[p].Add(start, end)
}

// cleanDirty removes [start, end) from pair p's stale set after a direct
// write landed on both copies.
//
// rolosan:audited
func (g *GRAID) cleanDirty(p int, start, end int64) {
	g.dirty[p].Remove(start, end)
}

// clearDirty empties pair p's stale set as the centralized destage takes
// ownership of its spans (they move into the destage work set).
//
// rolosan:audited
func (g *GRAID) clearDirty(p int) {
	g.dirty[p].Clear()
}

// SanitizerCounters implements invariant.Source.
func (g *GRAID) SanitizerCounters() invariant.Counters {
	used, _, backlog := g.TelemetryGauges()
	return invariant.Counters{
		Destages:   g.destages,
		DirtyBytes: backlog,
		LogUsed:    used,
	}
}

// SanitizerState implements invariant.Source. GRAID is primary-backed
// (primaries never spin down) and generation-tagged: LogByPair is nil, so
// the sanitizer checks the aggregate rule — while the log disk lives, the
// log covers the aggregate mirror-stale volume.
func (g *GRAID) SanitizerState() invariant.State {
	pairs := g.arr.Geom.Pairs
	st := invariant.State{
		Scheme:           "GRAID",
		Pairs:            pairs,
		Spaces:           []*logspace.Space{g.logSpace},
		DirtyBytes:       make([]int64, pairs),
		LogTotal:         g.logSpace.UsedBytes(),
		LogPrimaryBacked: true,
		LogDown:          g.logFailed,
		Counters:         g.SanitizerCounters(),
	}
	for p := 0; p < pairs; p++ {
		st.DirtyBytes[p] = g.dirty[p].Total()
	}
	return st
}

// SanitizerState implements invariant.Source. RAID10 keeps both copies
// current synchronously and has no log, so the snapshot is trivially
// clean; the interesting checks for this baseline live at the disk layer
// (no disk may ever leave ACTIVE/IDLE).
func (c *RAID10) SanitizerState() invariant.State {
	return invariant.State{
		Scheme:           "RAID10",
		Pairs:            c.arr.Geom.Pairs,
		LogPrimaryBacked: true,
	}
}

// SanitizerCounters implements invariant.Source.
func (c *RAID10) SanitizerCounters() invariant.Counters {
	return invariant.Counters{}
}
