package invariant

import (
	"fmt"
	"math"

	"github.com/rolo-storage/rolo/internal/disk"
	"github.com/rolo-storage/rolo/internal/sim"
)

// diskChecker validates the drive layer: every power-state transition is
// checked against the declared graph the moment it fires (via the disks'
// state-change hooks), and sweeps verify time conservation — per-state
// durations sum to the drive's elapsed lifetime — plus energy and counter
// monotonicity.
type diskChecker struct {
	san   *Sanitizer
	disks []*disk.Disk

	lastEnergy    []float64
	lastSpinUps   []int
	lastSpinDowns []int
	lastIOs       []int64
}

func newDiskChecker(s *Sanitizer, disks []*disk.Disk, forbidSpinDown bool) *diskChecker {
	c := &diskChecker{
		san:           s,
		disks:         disks,
		lastEnergy:    make([]float64, len(disks)),
		lastSpinUps:   make([]int, len(disks)),
		lastSpinDowns: make([]int, len(disks)),
		lastIOs:       make([]int64, len(disks)),
	}
	for _, d := range disks {
		d := d
		d.AddStateChangeHook(func(_ *disk.Disk, from, to disk.PowerState, now sim.Time) {
			if !disk.LegalTransition(from, to) {
				s.Report(Violation{
					Check: "state-machine", At: now,
					Object:   fmt.Sprintf("disk %d", d.ID()),
					Expected: fmt.Sprintf("a declared transition out of %v", from),
					Actual:   fmt.Sprintf("%v -> %v", from, to),
				})
			}
			if forbidSpinDown && to == disk.SpinningDown {
				s.Report(Violation{
					Check: "state-machine", At: now,
					Object:   fmt.Sprintf("disk %d", d.ID()),
					Expected: "no spin-downs (power-unmanaged baseline)",
					Actual:   fmt.Sprintf("%v -> %v", from, to),
				})
			}
		})
	}
	return c
}

func (c *diskChecker) Name() string { return "disk" }

func (c *diskChecker) Event(sim.Time) []Violation { return nil }

func (c *diskChecker) Sweep(now sim.Time) []Violation {
	var out []Violation
	for i, d := range c.disks {
		st := d.Stats()
		obj := fmt.Sprintf("disk %d", d.ID())
		bad := func(check, what, expected, actual string) {
			out = append(out, Violation{
				Check: check, At: now,
				Object: obj + " " + what, Expected: expected, Actual: actual,
			})
		}

		// Time conservation: the state durations partition [Born, now].
		var total sim.Time
		for _, dur := range st.StateDur {
			total += dur
		}
		if elapsed := now - d.Born(); total != elapsed {
			bad("time-conservation", "state durations",
				fmt.Sprintf("sum to elapsed %v", elapsed), fmt.Sprintf("%v", total))
		}

		// Energy: finite and non-decreasing.
		if math.IsNaN(st.EnergyJ) || math.IsInf(st.EnergyJ, 0) {
			bad("accounting", "energy", "a finite value", fmt.Sprint(st.EnergyJ))
		} else if st.EnergyJ < c.lastEnergy[i] {
			bad("accounting", "energy",
				fmt.Sprintf(">= %g J", c.lastEnergy[i]), fmt.Sprintf("%g J", st.EnergyJ))
		}
		c.lastEnergy[i] = st.EnergyJ

		// Spin cycles and I/O counters never run backwards.
		if st.SpinUps < c.lastSpinUps[i] {
			bad("accounting", "spin-ups", fmt.Sprintf(">= %d", c.lastSpinUps[i]), fmt.Sprint(st.SpinUps))
		}
		if st.SpinDowns < c.lastSpinDowns[i] {
			bad("accounting", "spin-downs", fmt.Sprintf(">= %d", c.lastSpinDowns[i]), fmt.Sprint(st.SpinDowns))
		}
		if st.IOsCompleted < c.lastIOs[i] {
			bad("accounting", "completed IOs", fmt.Sprintf(">= %d", c.lastIOs[i]), fmt.Sprint(st.IOsCompleted))
		}
		c.lastSpinUps[i] = st.SpinUps
		c.lastSpinDowns[i] = st.SpinDowns
		c.lastIOs[i] = st.IOsCompleted
	}
	return out
}
