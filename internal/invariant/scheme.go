package invariant

import (
	"fmt"

	"github.com/rolo-storage/rolo/internal/sim"
)

// schemeChecker validates controller-level invariants from Source
// snapshots: per-event counter monotonicity, and at sweeps the
// recoverability rule plus log-space conservation via the audit ledger.
type schemeChecker struct {
	san *Sanitizer
	src Source

	have bool
	last Counters
}

func (c *schemeChecker) Name() string { return "scheme" }

// Event checks accounting monotonicity: rotation and destage counters
// never decrease, occupancy gauges never go negative.
func (c *schemeChecker) Event(now sim.Time) []Violation {
	cur := c.src.SanitizerCounters()
	var out []Violation
	bad := func(object, expected, actual string) {
		out = append(out, Violation{
			Check: "accounting", At: now,
			Object: object, Expected: expected, Actual: actual,
		})
	}
	if c.have {
		if cur.Rotations < c.last.Rotations {
			bad("rotation counter", fmt.Sprintf(">= %d", c.last.Rotations), fmt.Sprint(cur.Rotations))
		}
		if cur.Destages < c.last.Destages {
			bad("destage counter", fmt.Sprintf(">= %d", c.last.Destages), fmt.Sprint(cur.Destages))
		}
	}
	if cur.DirtyBytes < 0 {
		bad("dirty bytes", ">= 0", fmt.Sprint(cur.DirtyBytes))
	}
	if cur.LogUsed < 0 {
		bad("log occupancy", ">= 0", fmt.Sprint(cur.LogUsed))
	}
	c.have = true
	c.last = cur
	return out
}

// Sweep validates the full snapshot.
func (c *schemeChecker) Sweep(now sim.Time) []Violation {
	st := c.src.SanitizerState()
	var out []Violation

	// Log-space conservation: each allocator's internal bookkeeping and
	// its agreement with the audit ledger.
	for _, sp := range st.Spaces {
		for _, v := range c.san.audit.sweepSpace(sp) {
			v.At = now
			out = append(out, v)
		}
	}

	// Recoverability: every dirty byte must have a valid source.
	var dirtyTotal int64
	for p := 0; p < st.Pairs && p < len(st.DirtyBytes); p++ {
		dirty := st.DirtyBytes[p]
		dirtyTotal += dirty
		if dirty == 0 {
			continue
		}
		if st.LogByPair != nil {
			logged := st.LogByPair[p]
			if st.LogPrimaryBacked {
				// RoLo-P/R: the primary holds current data; the log is the
				// redundancy for the stale mirror. Losing both is a
				// genuine double failure — exactly what must be reported.
				if !st.primaryOK(p) && logged < dirty {
					out = append(out, Violation{
						Check: "recoverability", At: now,
						Object:   fmt.Sprintf("pair %d", p),
						Expected: fmt.Sprintf("failed primary backed by >= %d logged bytes", dirty),
						Actual:   fmt.Sprintf("%d logged bytes", logged),
					})
				}
			} else if logged < dirty {
				// RoLo-E: the log holds the only current copy of dirty
				// spans; it must cover them regardless of disk health.
				out = append(out, Violation{
					Check: "recoverability", At: now,
					Object:   fmt.Sprintf("pair %d", p),
					Expected: fmt.Sprintf(">= %d logged bytes covering dirty spans", dirty),
					Actual:   fmt.Sprintf("%d logged bytes", logged),
				})
			}
		}
	}
	// Generation-tagged logs (GRAID): the aggregate log must cover the
	// aggregate dirt while the log device lives.
	if st.LogByPair == nil && !st.LogDown && st.LogTotal < dirtyTotal {
		out = append(out, Violation{
			Check: "recoverability", At: now,
			Object:   "log device",
			Expected: fmt.Sprintf(">= %d logged bytes covering dirty spans", dirtyTotal),
			Actual:   fmt.Sprintf("%d logged bytes", st.LogTotal),
		})
	}
	return out
}
