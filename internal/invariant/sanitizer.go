package invariant

import (
	"fmt"

	"github.com/rolo-storage/rolo/internal/disk"
	"github.com/rolo-storage/rolo/internal/sim"
)

// DefaultSweepEvery is the default full-sweep period in events. Sweeps
// walk every logspace and disk, so they are amortized over many events;
// per-event checks still run on every event.
const DefaultSweepEvery = 4096

// maxViolations bounds how many violations are retained after the first
// (the engine stops at the first one, but checkers already mid-flight may
// report a few more; keeping them aids diagnosis without unbounded growth).
const maxViolations = 16

// Sanitizer aggregates checkers, drives them from the engine's event
// hook, and fails fast on the first violation by stopping the engine.
type Sanitizer struct {
	scheme string
	eng    *sim.Engine
	every  uint64

	src      Source
	audit    *Audit
	checkers []Checker

	events     uint64
	sweeps     uint64
	violations []Violation
	stopped    bool
}

// New returns a sanitizer for the named scheme bound to the engine.
func New(scheme string, eng *sim.Engine) *Sanitizer {
	s := &Sanitizer{scheme: scheme, eng: eng, every: DefaultSweepEvery}
	s.audit = newAudit(s)
	return s
}

// SetSweepEvery overrides the full-sweep period (in events); 0 disables
// periodic sweeps (the final sweep still runs).
func (s *Sanitizer) SetSweepEvery(n uint64) { s.every = n }

// Audit returns the handle audited mutation helpers notify.
func (s *Sanitizer) Audit() *Audit { return s.audit }

// SetSource registers the controller snapshot source and attaches the
// scheme checker (recoverability, conservation, counter monotonicity).
func (s *Sanitizer) SetSource(src Source) {
	s.src = src
	s.Attach(&schemeChecker{san: s, src: src})
}

// Attach adds a checker.
func (s *Sanitizer) Attach(c Checker) { s.checkers = append(s.checkers, c) }

// WatchDisks attaches the disk checker: every power-state transition is
// validated against the declared graph as it happens, and sweeps verify
// time conservation and accounting monotonicity. With forbidSpinDown set
// (the RAID10 baseline), any spin-down attempt is itself a violation.
func (s *Sanitizer) WatchDisks(disks []*disk.Disk, forbidSpinDown bool) {
	s.Attach(newDiskChecker(s, disks, forbidSpinDown))
}

// Install hooks the sanitizer into the engine's event loop.
func (s *Sanitizer) Install() { s.eng.SetEventHook(s.onEvent) }

func (s *Sanitizer) onEvent(now sim.Time) {
	if s.stopped {
		return
	}
	s.events++
	for _, c := range s.checkers {
		s.record(c.Event(now))
	}
	if s.every > 0 && s.events%s.every == 0 {
		s.sweep(now)
	}
}

func (s *Sanitizer) sweep(now sim.Time) {
	s.sweeps++
	for _, c := range s.checkers {
		s.record(c.Sweep(now))
		if s.stopped {
			return
		}
	}
}

// Final runs one last full sweep; rolo.Run calls it after the trace has
// drained and the controller closed.
func (s *Sanitizer) Final(now sim.Time) {
	if s.stopped {
		return
	}
	s.sweep(now)
}

// Report records a violation discovered out of band (state-change hooks,
// audit notifications) and stops the engine.
func (s *Sanitizer) Report(v Violation) { s.record([]Violation{v}) }

func (s *Sanitizer) record(vs []Violation) {
	for _, v := range vs {
		if v.Scheme == "" {
			v.Scheme = s.scheme
		}
		v.Event = s.events
		if len(s.violations) < maxViolations {
			s.violations = append(s.violations, v)
		}
		if !s.stopped {
			s.stopped = true
			s.eng.Stop()
		}
	}
}

// Err returns nil when no invariant was violated, else an error carrying
// the first violation's structured diagnostic.
func (s *Sanitizer) Err() error {
	if len(s.violations) == 0 {
		return nil
	}
	first := s.violations[0]
	if len(s.violations) == 1 {
		return first
	}
	return fmt.Errorf("%w (+%d more)", first, len(s.violations)-1)
}

// Violations returns every retained violation, first (= fatal) first.
func (s *Sanitizer) Violations() []Violation {
	return append([]Violation(nil), s.violations...)
}

// Events returns how many simulation events the sanitizer observed.
func (s *Sanitizer) Events() uint64 { return s.events }

// Sweeps returns how many full sweeps ran (including the final one).
func (s *Sanitizer) Sweeps() uint64 { return s.sweeps }
