// Package invariant implements RoloSan, the repository's opt-in runtime
// sanitizer. It deep-checks the bookkeeping invariants the paper states
// but the simulator otherwise only implicitly maintains:
//
//   - recoverability: every dirty block has a valid source — a healthy
//     primary or a non-reclaimed log copy — under RoLo-P/R/E, GRAID, and
//     RAID10 semantics (Sections III-A/III-C of the paper);
//   - log-space conservation: logspace occupancy counters equal
//     block-level ground truth, every allocation/release/reset passed
//     through an audited mutation helper, and reclaimed tags never hold
//     live blocks (Section III-E's proactive reclamation);
//   - disk state-machine legality and time conservation: every power
//     transition follows the declared graph in internal/disk (the same
//     spec table the statetransition analyzer checks statically) and the
//     per-state durations always sum to the elapsed simulation time;
//   - accounting monotonicity: energy, spin cycles, rotation and destage
//     counters never run backwards.
//
// A Sanitizer installs itself on the simulation engine's event hook:
// cheap checks run after every event, full sweeps run every SweepEvery
// events and once more at the end of the run. The first violation stops
// the engine (fail fast) and surfaces as a structured diagnostic naming
// the scheme, event number, object, and expected-vs-actual values.
package invariant

import (
	"fmt"

	"github.com/rolo-storage/rolo/internal/logspace"
	"github.com/rolo-storage/rolo/internal/sim"
)

// Violation is one structured invariant diagnostic.
type Violation struct {
	Scheme   string   // controller under check, e.g. "RoLo-P"
	Check    string   // invariant family, e.g. "recoverability"
	Event    uint64   // engine event count when detected
	At       sim.Time // simulation time when detected
	Object   string   // what the invariant is about, e.g. "pair 3"
	Expected string
	Actual   string
}

// Error renders the violation as a single diagnostic line.
func (v Violation) Error() string {
	return fmt.Sprintf("rolosan: %s: %s violated at %v (event %d): %s: expected %s, actual %s",
		v.Scheme, v.Check, v.At, v.Event, v.Object, v.Expected, v.Actual)
}

// A Checker validates one invariant family. Event runs after every
// simulation event and must be cheap; Sweep runs every SweepEvery events
// and at the end of the run and may walk full data structures. Both
// return the violations found (nil when clean).
type Checker interface {
	Name() string
	Event(now sim.Time) []Violation
	Sweep(now sim.Time) []Violation
}

// Counters is the cheap per-event snapshot a controller exposes for
// monotonicity checking.
type Counters struct {
	Rotations  int
	Destages   int
	DirtyBytes int64 // total stale bytes awaiting destage
	LogUsed    int64 // total live log bytes
}

// State is the full controller snapshot a Source exposes for sweeps.
// Slices indexed by pair must have length Pairs.
type State struct {
	Scheme string
	Pairs  int

	// Spaces are the live logspace allocators (any number; the sweep
	// validates each one's internal bookkeeping and audit ledger).
	Spaces []*logspace.Space

	// DirtyBytes[p] is the number of pair-p bytes whose redundancy
	// currently depends on the log (RoLo-P/R: mirror stale; RoLo-E: only
	// current copy is logged; GRAID: mirror stale).
	DirtyBytes []int64

	// LogByPair[p] is the number of live log bytes tagged for pair p,
	// summed over all Spaces. Nil when log extents are not pair-tagged
	// (GRAID tags by destage generation); then LogTotal is checked in
	// aggregate instead.
	LogByPair []int64

	// LogTotal is the total live log bytes across all Spaces.
	LogTotal int64

	// LogPrimaryBacked is true when a healthy primary also holds the
	// current data for dirty spans (RoLo-P/R, GRAID), so losing the log
	// copies is survivable while the primary lives. False for RoLo-E,
	// where the log holds the only current copy.
	LogPrimaryBacked bool

	// PrimaryOK[p] / MirrorOK[p] report pair-p disk health. Nil slices
	// mean "all healthy".
	PrimaryOK []bool
	MirrorOK  []bool

	// LogDown reports that a dedicated log device has failed (GRAID):
	// logged redundancy is knowingly exposed until replacement, so the
	// aggregate log check is suspended.
	LogDown bool

	Counters
}

// A Source is a controller that can snapshot itself for the sanitizer.
type Source interface {
	SanitizerState() State
	SanitizerCounters() Counters
}

// An Attachable is a controller that accepts an audit handle; its audited
// mutation helpers notify the handle so the sanitizer's ledger tracks
// every log-space mutation.
type Attachable interface {
	SetSanitizer(*Audit)
}

func (s State) primaryOK(p int) bool { return s.PrimaryOK == nil || s.PrimaryOK[p] }
