package invariant

import (
	"fmt"
	"sort"

	"github.com/rolo-storage/rolo/internal/logspace"
)

// Audit is the notification sink for the controllers' audited mutation
// helpers. It maintains a shadow ledger of expected per-tag log bytes per
// space; sweeps compare the ledger against the allocator's own accounting,
// so both an allocator bug and a mutation that bypassed the audited
// helpers show up as a divergence. Release and reset notifications are
// additionally checked on the spot for the paper's reclamation-safety
// rule: a reclaimed tag must not hold live (still-dirty) blocks.
//
// All methods are safe on a nil receiver, so controllers call their
// audit handle unconditionally and pay nothing when the sanitizer is off.
type Audit struct {
	san    *Sanitizer
	ledger map[*logspace.Space]map[int]int64
}

func newAudit(s *Sanitizer) *Audit {
	return &Audit{san: s, ledger: make(map[*logspace.Space]map[int]int64)}
}

// Alloc records that n bytes were allocated under tag on sp.
func (a *Audit) Alloc(sp *logspace.Space, tag int, n int64) {
	if a == nil {
		return
	}
	tags := a.ledger[sp]
	if tags == nil {
		tags = make(map[int]int64)
		a.ledger[sp] = tags
	}
	tags[tag] += n
}

// Release records that ReleaseTag(tag) on sp reclaimed freed bytes, and
// checks reclamation safety: the ledger must have expected exactly freed
// bytes under the tag, and — for pair-tagged schemes — the pair must have
// no dirty bytes left (a destage completion is the only legal trigger;
// releasing earlier would reclaim live log copies).
func (a *Audit) Release(sp *logspace.Space, tag int, freed int64) {
	if a == nil {
		return
	}
	expect := a.ledger[sp][tag]
	if expect != freed {
		a.san.Report(Violation{
			Check:    "conservation",
			At:       a.san.eng.Now(),
			Object:   fmt.Sprintf("logspace release tag %d", tag),
			Expected: fmt.Sprintf("%d ledgered bytes reclaimed", expect),
			Actual:   fmt.Sprintf("%d bytes reclaimed", freed),
		})
	}
	delete(a.ledger[sp], tag)
	if a.san.src == nil {
		return
	}
	st := a.san.src.SanitizerState()
	if st.LogByPair != nil && tag >= 0 && tag < len(st.DirtyBytes) && st.DirtyBytes[tag] != 0 {
		a.san.Report(Violation{
			Check:    "recoverability",
			At:       a.san.eng.Now(),
			Object:   fmt.Sprintf("pair %d", tag),
			Expected: "log extents reclaimed only after the pair's destage drained",
			Actual:   fmt.Sprintf("tag %d released with %d dirty bytes outstanding", tag, st.DirtyBytes[tag]),
		})
	}
}

// Reset records that sp was reset (all tags reclaimed at once) and checks
// reset safety. For schemes where the log holds the only current copy
// (RoLo-E), a reset with any dirty bytes outstanding destroys live data.
// For primary-backed schemes a reset is the logger-failure path and is
// survivable as long as the primaries live; the recoverability sweep
// covers the double-failure case.
func (a *Audit) Reset(sp *logspace.Space) {
	if a == nil {
		return
	}
	delete(a.ledger, sp)
	if a.san.src == nil {
		return
	}
	st := a.san.src.SanitizerState()
	if st.LogPrimaryBacked {
		return
	}
	for p, dirty := range st.DirtyBytes {
		if dirty != 0 {
			a.san.Report(Violation{
				Check:    "recoverability",
				At:       a.san.eng.Now(),
				Object:   fmt.Sprintf("pair %d", p),
				Expected: "log reset only after every dirty span destaged",
				Actual:   fmt.Sprintf("%d dirty bytes whose only copy was logged", dirty),
			})
			return
		}
	}
}

// sweepSpace compares one space's accounting against the ledger and its
// own internal invariants.
func (a *Audit) sweepSpace(sp *logspace.Space) []Violation {
	if a == nil || sp == nil {
		return nil
	}
	var out []Violation
	if err := sp.CheckInvariants(); err != nil {
		out = append(out, Violation{
			Check:    "conservation",
			Object:   "logspace",
			Expected: "internally consistent allocator",
			Actual:   err.Error(),
		})
	}
	tags := a.ledger[sp]
	var total int64
	seen := make(map[int]bool, len(tags))
	order := make([]int, 0, len(tags))
	for tag := range tags {
		order = append(order, tag)
	}
	sort.Ints(order)
	for _, tag := range order {
		expect := tags[tag]
		seen[tag] = true
		total += expect
		if got := sp.TagBytes(tag); got != expect {
			out = append(out, Violation{
				Check:    "conservation",
				Object:   fmt.Sprintf("logspace tag %d", tag),
				Expected: fmt.Sprintf("%d audited bytes", expect),
				Actual:   fmt.Sprintf("%d allocated bytes", got),
			})
		}
	}
	for _, tag := range sp.Tags() {
		if !seen[tag] {
			out = append(out, Violation{
				Check:    "conservation",
				Object:   fmt.Sprintf("logspace tag %d", tag),
				Expected: "no bytes (never audited)",
				Actual:   fmt.Sprintf("%d allocated bytes bypassed the audited helpers", sp.TagBytes(tag)),
			})
		}
	}
	if got := sp.UsedBytes(); got != total {
		out = append(out, Violation{
			Check:    "conservation",
			Object:   "logspace occupancy",
			Expected: fmt.Sprintf("%d audited bytes", total),
			Actual:   fmt.Sprintf("%d used bytes", got),
		})
	}
	return out
}
