package disk

// powerGraph declares the legal edges of the drive power-state machine.
// This is the single spec table shared by the runtime sanitizer
// (internal/invariant validates every observed transition against it) and
// the statetransition static analyzer (which validates every setState call
// site against it at vet time), so the declared graph cannot drift from
// the enforced one.
//
// The graph mirrors Section II of the paper: a drive services I/O only
// while spinning (ACTIVE/IDLE), reaches STANDBY exclusively through a
// spin-down transition, and returns to service exclusively through a
// spin-up transition. There are no shortcut edges: ACTIVE never spins
// down directly (the controller must drain to IDLE first), and a
// spin-down cannot be aborted mid-flight.
var powerGraph = map[PowerState][]PowerState{
	Active:       {Idle},
	Idle:         {Active, SpinningDown},
	SpinningDown: {Standby},
	Standby:      {SpinningUp},
	SpinningUp:   {Idle},
}

// LegalTransition reports whether from -> to is a declared edge of the
// power-state graph. Self-transitions are legal no-ops (setState ignores
// them before any accounting happens).
func LegalTransition(from, to PowerState) bool {
	if from == to {
		return true
	}
	for _, next := range powerGraph[from] {
		if next == to {
			return true
		}
	}
	return false
}

// TransitionGraph returns a copy of the declared power-state graph, keyed
// by source state. Callers may mutate the copy freely.
func TransitionGraph() map[PowerState][]PowerState {
	out := make(map[PowerState][]PowerState, len(powerGraph))
	for from, tos := range powerGraph {
		out[from] = append([]PowerState(nil), tos...)
	}
	return out
}

// States returns every power state in the model, in declaration order.
func States() []PowerState {
	return []PowerState{Active, Idle, Standby, SpinningUp, SpinningDown}
}
