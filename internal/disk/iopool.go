package disk

// IOPool is a free list of IO structs keyed by request lifetime: an IO
// obtained from Get returns to the pool automatically once the drive is
// done with it — after its completion callback has run, or after the
// drop-on-failure path has fired it. IOs built with a plain composite
// literal never enter a pool and keep their ordinary GC lifetime.
//
// The pool is deliberately unsynchronized: like the engine, the disks and
// every controller, it belongs to exactly one simulation goroutine.
// Each Array owns one pool shared by its disks, which removes the last
// per-request heap allocation from the submit hot path (the ROADMAP's
// standing perf guideline; see DESIGN §11).
type IOPool struct {
	free []*IO
}

// Get returns a zeroed IO bound to this pool. The caller fills in the
// request fields and submits it; the drive recycles it after the
// completion callback has run, so callers must not retain the pointer
// past their OnDone.
func (p *IOPool) Get() *IO {
	if n := len(p.free); n > 0 {
		io := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return io
	}
	return &IO{pool: p}
}

// put zeroes the IO and pushes it back on the free list.
func (p *IOPool) put(io *IO) {
	*io = IO{pool: p}
	p.free = append(p.free, io)
}

// Free reports how many IOs are parked on the free list (test hook).
func (p *IOPool) Free() int { return len(p.free) }

// release returns a pooled IO to its pool; it is a no-op for IOs built
// directly. The drive calls it once per request, after the completion
// (or drop) callback has returned.
func (io *IO) release() {
	if io.pool != nil {
		io.pool.put(io)
	}
}

// Recycle returns an unsubmitted pooled IO to its pool (no-op for
// non-pooled IOs). Controllers use it for IOs they built but then chose
// not to submit — a target disk turned out to have failed, say. Calling
// it on an IO that has been submitted but has not completed corrupts the
// pool; submitted IOs are recycled by the drive itself.
func (io *IO) Recycle() {
	if io.submitted {
		return
	}
	io.release()
}
