package disk

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/rolo-storage/rolo/internal/sim"
)

func newTestDisk(t *testing.T) (*Disk, *sim.Engine) {
	t.Helper()
	eng := sim.New()
	d, err := New(0, Ultrastar36Z15(), eng)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d, eng
}

func TestConfigValidate(t *testing.T) {
	good := Ultrastar36Z15()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero capacity", func(c *Config) { c.CapacityBytes = 0 }},
		{"zero rpm", func(c *Config) { c.RPM = 0 }},
		{"zero transfer", func(c *Config) { c.TransferRate = 0 }},
		{"max<track seek", func(c *Config) { c.MaxSeek = c.TrackSeek - 1 }},
		{"negative spinup", func(c *Config) { c.SpinUpTime = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := Ultrastar36Z15()
			tc.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Fatal("expected error")
			}
			if _, err := New(0, c, sim.New()); err == nil {
				t.Fatal("New accepted invalid config")
			}
		})
	}
}

func TestUltrastarParameters(t *testing.T) {
	c := Ultrastar36Z15()
	if got := c.RevolutionTime(); got != 4*sim.Millisecond {
		t.Errorf("RevolutionTime = %v, want 4ms (15000 RPM)", got)
	}
	if got := c.AvgRotationalLatency(); got != 2*sim.Millisecond {
		t.Errorf("AvgRotationalLatency = %v, want 2ms", got)
	}
	if c.Sectors() != c.CapacityBytes/SectorSize {
		t.Errorf("Sectors mismatch")
	}
}

// The seek curve must reproduce the published 3.4 ms average seek when
// distances are uniformly random over the platter.
func TestSeekCurveCalibration(t *testing.T) {
	d, _ := newTestDisk(t)
	rng := rand.New(rand.NewSource(7))
	n := 200000
	var total sim.Time
	for i := 0; i < n; i++ {
		total += d.seekTime(rng.Int63n(d.cfg.Sectors()-1) + 1)
	}
	avgMs := (sim.Time(int64(total) / int64(n))).Milliseconds()
	if math.Abs(avgMs-3.4) > 0.05 {
		t.Fatalf("average seek = %.3f ms, want 3.4 ms ± 0.05", avgMs)
	}
}

func TestSeekMonotoneInDistance(t *testing.T) {
	d, _ := newTestDisk(t)
	prev := sim.Time(-1)
	for _, dist := range []int64{0, 1, 100, 10_000, 1_000_000, d.cfg.Sectors()} {
		s := d.seekTime(dist)
		if s < prev {
			t.Fatalf("seek(%d) = %v < previous %v", dist, s, prev)
		}
		prev = s
	}
	if d.seekTime(0) != 0 {
		t.Fatal("seek(0) must be 0")
	}
	if got := d.seekTime(d.cfg.Sectors()); got != d.cfg.MaxSeek {
		t.Fatalf("full-stroke seek = %v, want MaxSeek %v", got, d.cfg.MaxSeek)
	}
}

func TestSequentialAccessSkipsPositioning(t *testing.T) {
	d, eng := newTestDisk(t)
	var first, second sim.Time
	io1 := &IO{LBA: 1000, Sectors: 128, Write: true, OnDone: func(now sim.Time) { first = now }}
	if err := d.Submit(io1); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	start2 := eng.Now()
	io2 := &IO{LBA: 1128, Sectors: 128, Write: true, OnDone: func(now sim.Time) { second = now }}
	if err := d.Submit(io2); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	transferOnly := sim.Time(math.Ceil(float64(128*SectorSize) / d.cfg.TransferRate * float64(sim.Second)))
	if got := second - start2; got != transferOnly {
		t.Fatalf("sequential service = %v, want pure transfer %v", got, transferOnly)
	}
	if first == 0 || second == 0 {
		t.Fatal("completions not observed")
	}
	if firstSvc := first - 0; firstSvc <= transferOnly {
		t.Fatalf("random access service %v should exceed pure transfer %v", firstSvc, transferOnly)
	}
}

func TestServiceTimeComponents(t *testing.T) {
	d, _ := newTestDisk(t)
	// Head at 0, never accessed: random read at far LBA pays seek+rot+transfer.
	io := &IO{LBA: d.cfg.Sectors() / 2, Sectors: 128}
	svc := d.ServiceTime(io)
	transfer := sim.Time(math.Ceil(float64(128*SectorSize) / d.cfg.TransferRate * float64(sim.Second)))
	want := d.seekTime(d.cfg.Sectors()/2) + 2*sim.Millisecond + transfer
	if svc != want {
		t.Fatalf("ServiceTime = %v, want %v", svc, want)
	}
}

func TestSubmitValidation(t *testing.T) {
	d, _ := newTestDisk(t)
	if err := d.Submit(nil); err == nil {
		t.Error("nil IO accepted")
	}
	if err := d.Submit(&IO{LBA: 0, Sectors: 0}); !errors.Is(err, ErrZeroSectors) {
		t.Errorf("zero-sector IO: err = %v", err)
	}
	if err := d.Submit(&IO{LBA: -1, Sectors: 1}); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("negative LBA: err = %v", err)
	}
	if err := d.Submit(&IO{LBA: d.cfg.Sectors(), Sectors: 1}); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("past-end IO: err = %v", err)
	}
	io := &IO{LBA: 0, Sectors: 1}
	if err := d.Submit(io); err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(io); err == nil {
		t.Error("double submit accepted")
	}
}

func TestForegroundPriorityOverBackground(t *testing.T) {
	d, eng := newTestDisk(t)
	var order []string
	mk := func(name string, bg bool, lba int64) *IO {
		return &IO{LBA: lba, Sectors: 8, Background: bg, OnDone: func(sim.Time) { order = append(order, name) }}
	}
	// Queue them all at t=0. The first submitted starts immediately; among
	// the queued remainder, foreground must win even though background was
	// queued first.
	if err := d.Submit(mk("first", false, 0)); err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(mk("bg1", true, 100000)); err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(mk("bg2", true, 200000)); err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(mk("fg1", false, 300000)); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	want := []string{"first", "fg1", "bg1", "bg2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("completion order = %v, want %v", order, want)
		}
	}
}

func TestBackgroundGuardHoldsAfterTimeZeroForeground(t *testing.T) {
	// Regression: a foreground arrival at t=0 must still arm the guard
	// (lastFGArrival == 0 is a valid arrival time, not "never").
	d, eng := newTestDisk(t)
	var fgDone, bgDone sim.Time
	fg := &IO{LBA: 0, Sectors: 8, Write: true, OnDone: func(now sim.Time) { fgDone = now }}
	if err := d.Submit(fg); err != nil {
		t.Fatal(err)
	}
	bg := &IO{LBA: 100000, Sectors: 8, Background: true, OnDone: func(now sim.Time) { bgDone = now }}
	if err := d.Submit(bg); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if bgDone < fgDone {
		t.Fatal("background IO finished before foreground")
	}
	if bgDone < d.cfg.BackgroundGuard {
		t.Fatalf("background dispatched at %v, inside the guard window %v", bgDone, d.cfg.BackgroundGuard)
	}
}

func TestBackgroundRunsImmediatelyWithoutForegroundHistory(t *testing.T) {
	d, eng := newTestDisk(t)
	var bgDone sim.Time
	bg := &IO{LBA: 0, Sectors: 8, Background: true, OnDone: func(now sim.Time) { bgDone = now }}
	if err := d.Submit(bg); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if bgDone == 0 || bgDone > 20*sim.Millisecond {
		t.Fatalf("background on an fg-free disk completed at %v, want immediately", bgDone)
	}
}

func TestSpinDownAndAutoWake(t *testing.T) {
	d, eng := newTestDisk(t)
	if err := d.SpinDown(); err != nil {
		t.Fatalf("SpinDown from Idle: %v", err)
	}
	if d.State() != SpinningDown {
		t.Fatalf("state = %v, want SPINDOWN", d.State())
	}
	eng.Run()
	if d.State() != Standby {
		t.Fatalf("state = %v, want STANDBY", d.State())
	}
	var done sim.Time
	if err := d.Submit(&IO{LBA: 0, Sectors: 8, OnDone: func(now sim.Time) { done = now }}); err != nil {
		t.Fatal(err)
	}
	if d.State() != SpinningUp {
		t.Fatalf("state after arrival = %v, want SPINUP", d.State())
	}
	eng.Run()
	if done < d.cfg.SpinDownTime+d.cfg.SpinUpTime {
		t.Fatalf("IO completed at %v, before spin-up could finish", done)
	}
	if d.SpinCycles() != 1 {
		t.Fatalf("SpinCycles = %d, want 1", d.SpinCycles())
	}
}

func TestSpinDownRefusedWhenBusy(t *testing.T) {
	d, eng := newTestDisk(t)
	if err := d.Submit(&IO{LBA: 0, Sectors: 8}); err != nil {
		t.Fatal(err)
	}
	if err := d.SpinDown(); err == nil {
		t.Fatal("SpinDown accepted while Active")
	}
	eng.Run()
	if err := d.SpinDown(); err != nil {
		t.Fatalf("SpinDown after drain: %v", err)
	}
}

func TestSpinUpExplicitNoopWhenSpinning(t *testing.T) {
	d, eng := newTestDisk(t)
	if err := d.SpinUp(); err != nil {
		t.Fatalf("SpinUp while Idle should be a no-op: %v", err)
	}
	if d.SpinCycles() != 0 {
		t.Fatal("no-op SpinUp counted a cycle")
	}
	if err := d.SpinDown(); err != nil {
		t.Fatal(err)
	}
	if err := d.SpinUp(); err == nil {
		t.Fatal("SpinUp during SpinningDown should fail")
	}
	eng.Run()
	if err := d.SpinUp(); err != nil {
		t.Fatalf("SpinUp from Standby: %v", err)
	}
	eng.Run()
	if d.State() != Idle {
		t.Fatalf("state = %v, want IDLE", d.State())
	}
}

func TestArrivalDuringSpinDownWakesAfterStandby(t *testing.T) {
	d, eng := newTestDisk(t)
	if err := d.SpinDown(); err != nil {
		t.Fatal(err)
	}
	var done sim.Time
	if err := d.Submit(&IO{LBA: 0, Sectors: 8, OnDone: func(now sim.Time) { done = now }}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if done < d.cfg.SpinDownTime+d.cfg.SpinUpTime {
		t.Fatalf("IO done at %v, must wait for spin-down then spin-up", done)
	}
}

func TestEnergyAccountingIdleOnly(t *testing.T) {
	d, eng := newTestDisk(t)
	eng.After(10*sim.Second, func(sim.Time) {})
	eng.Run()
	got := d.EnergyJ()
	want := d.cfg.IdlePower * 10
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("10s idle energy = %g J, want %g J", got, want)
	}
}

func TestEnergyAccountingStandby(t *testing.T) {
	d, eng := newTestDisk(t)
	if err := d.SpinDown(); err != nil {
		t.Fatal(err)
	}
	eng.Run() // finishes spin-down at 1.5s
	eng.After(10*sim.Second, func(sim.Time) {})
	eng.Run()
	got := d.EnergyJ()
	want := d.cfg.SpinDownEnergy + d.cfg.StandbyPower*10
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("energy = %g J, want %g J", got, want)
	}
	st := d.Stats()
	if st.StateDur[Standby] != 10*sim.Second {
		t.Fatalf("standby duration = %v, want 10s", st.StateDur[Standby])
	}
	if st.StateDur[SpinningDown] != d.cfg.SpinDownTime {
		t.Fatalf("spindown duration = %v, want %v", st.StateDur[SpinningDown], d.cfg.SpinDownTime)
	}
}

func TestEnergyActiveDuringService(t *testing.T) {
	d, eng := newTestDisk(t)
	var doneAt sim.Time
	if err := d.Submit(&IO{LBA: 0, Sectors: 2048, Write: true, OnDone: func(now sim.Time) { doneAt = now }}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	got := d.EnergyJ()
	want := d.cfg.ActivePower * doneAt.Seconds()
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("active energy = %g, want %g", got, want)
	}
	st := d.Stats()
	if st.StateDur[Active] != doneAt {
		t.Fatalf("active duration = %v, want %v", st.StateDur[Active], doneAt)
	}
	if st.BytesWritten != 2048*SectorSize {
		t.Fatalf("bytes written = %d", st.BytesWritten)
	}
}

func TestStatsCounts(t *testing.T) {
	d, eng := newTestDisk(t)
	for i := 0; i < 5; i++ {
		if err := d.Submit(&IO{LBA: int64(i) * 1000, Sectors: 16, Write: i%2 == 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Submit(&IO{LBA: 900000, Sectors: 16, Background: true}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	st := d.Stats()
	if st.IOsCompleted != 6 {
		t.Fatalf("IOsCompleted = %d, want 6", st.IOsCompleted)
	}
	if st.ForegroundIOs != 5 || st.BackgroundIOs != 1 {
		t.Fatalf("fg/bg = %d/%d, want 5/1", st.ForegroundIOs, st.BackgroundIOs)
	}
	if st.BytesRead != 3*16*SectorSize {
		t.Fatalf("BytesRead = %d", st.BytesRead)
	}
	if st.BusyTime <= 0 {
		t.Fatal("BusyTime not accumulated")
	}
}

func TestStateChangeHook(t *testing.T) {
	d, eng := newTestDisk(t)
	var transitions []PowerState
	d.AddStateChangeHook(func(_ *Disk, _, to PowerState, _ sim.Time) {
		transitions = append(transitions, to)
	})
	if err := d.Submit(&IO{LBA: 0, Sectors: 8}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if err := d.SpinDown(); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	want := []PowerState{Active, Idle, SpinningDown, Standby}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
}

// Property: total accounted state duration always equals elapsed simulation
// time, and energy is non-negative and finite, across random I/O schedules.
func TestQuickAccountingConservation(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		eng := sim.New()
		d, err := New(0, Ultrastar36Z15(), eng)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		count := int(n%40) + 1
		for i := 0; i < count; i++ {
			at := sim.Time(rng.Int63n(int64(2 * sim.Second)))
			eng.After(at, func(sim.Time) {
				_ = d.Submit(&IO{
					LBA:        rng.Int63n(d.cfg.Sectors() - 256),
					Sectors:    rng.Int63n(255) + 1,
					Write:      rng.Intn(2) == 0,
					Background: rng.Intn(4) == 0,
				})
			})
		}
		eng.Run()
		st := d.Stats()
		var total sim.Time
		for _, dur := range st.StateDur {
			total += dur
		}
		if total != eng.Now() {
			return false
		}
		return st.EnergyJ >= 0 && !math.IsNaN(st.EnergyJ) && !math.IsInf(st.EnergyJ, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: all submitted IOs eventually complete exactly once.
func TestQuickAllIOsComplete(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		eng := sim.New()
		d, err := New(0, Ultrastar36Z15(), eng)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		count := int(n%50) + 1
		completed := 0
		for i := 0; i < count; i++ {
			at := sim.Time(rng.Int63n(int64(sim.Second)))
			eng.After(at, func(sim.Time) {
				_ = d.Submit(&IO{
					LBA:     rng.Int63n(d.cfg.Sectors() - 8),
					Sectors: 8,
					OnDone:  func(sim.Time) { completed++ },
				})
			})
		}
		eng.Run()
		return completed == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDiskRandomIO(b *testing.B) {
	eng := sim.New()
	d, err := New(0, Ultrastar36Z15(), eng)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Submit(&IO{LBA: rng.Int63n(d.cfg.Sectors() - 128), Sectors: 128, Write: true}); err != nil {
			b.Fatal(err)
		}
		eng.Run()
	}
}
