package disk

import (
	"errors"
	"math"
	"testing"

	"github.com/rolo-storage/rolo/internal/sim"
)

func TestAccessors(t *testing.T) {
	eng := sim.New()
	d, err := New(7, Ultrastar36Z15(), eng)
	if err != nil {
		t.Fatal(err)
	}
	if d.ID() != 7 {
		t.Errorf("ID = %d", d.ID())
	}
	if d.Config().Model != "IBM Ultrastar 36Z15" {
		t.Errorf("Config model = %q", d.Config().Model)
	}
	if d.ForegroundPending() {
		t.Error("fresh disk reports foreground pending")
	}
	if err := d.Submit(&IO{LBA: 0, Sectors: 8}); err != nil {
		t.Fatal(err)
	}
	if !d.ForegroundPending() {
		t.Error("in-flight foreground not reported")
	}
	eng.Run()
	if d.ForegroundPending() {
		t.Error("drained disk reports foreground pending")
	}
}

func TestWithCapacity(t *testing.T) {
	c := Ultrastar36Z15().WithCapacity(1 << 30)
	if c.CapacityBytes != 1<<30 {
		t.Fatalf("capacity = %d", c.CapacityBytes)
	}
	if c.RPM != Ultrastar36Z15().RPM {
		t.Fatal("WithCapacity must not touch other parameters")
	}
}

func TestPowerStateStrings(t *testing.T) {
	want := map[PowerState]string{
		Active: "ACTIVE", Idle: "IDLE", Standby: "STANDBY",
		SpinningUp: "SPINUP", SpinningDown: "SPINDOWN",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), name)
		}
	}
	if PowerState(42).String() == "" {
		t.Error("unknown state renders empty")
	}
}

func TestSetAlwaysActiveEnergy(t *testing.T) {
	eng := sim.New()
	d, err := New(0, Ultrastar36Z15(), eng)
	if err != nil {
		t.Fatal(err)
	}
	d.SetAlwaysActive(true)
	eng.After(10*sim.Second, func(sim.Time) {})
	eng.Run()
	got := d.EnergyJ()
	want := d.cfg.ActivePower * 10
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("always-active 10s idle energy = %g, want %g (active power)", got, want)
	}
	// Mid-run toggle accrues the earlier interval at the earlier rate.
	eng2 := sim.New()
	d2, err := New(0, Ultrastar36Z15(), eng2)
	if err != nil {
		t.Fatal(err)
	}
	eng2.After(5*sim.Second, func(sim.Time) { d2.SetAlwaysActive(true) })
	eng2.After(10*sim.Second, func(sim.Time) {})
	eng2.Run()
	want2 := d2.cfg.IdlePower*5 + d2.cfg.ActivePower*5
	if got2 := d2.EnergyJ(); math.Abs(got2-want2) > 1e-6 {
		t.Fatalf("toggled energy = %g, want %g", got2, want2)
	}
}

func TestForceStateRules(t *testing.T) {
	eng := sim.New()
	d, err := New(0, Ultrastar36Z15(), eng)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ForceState(Active); !errors.Is(err, ErrBadState) {
		t.Errorf("ForceState(Active) err = %v", err)
	}
	if err := d.ForceState(Standby); err != nil {
		t.Fatalf("ForceState(Standby): %v", err)
	}
	if d.State() != Standby {
		t.Fatalf("state = %v", d.State())
	}
	if d.SpinCycles() != 0 || d.EnergyJ() != 0 {
		t.Fatal("ForceState must be free")
	}
	// After any activity, ForceState is rejected.
	if err := d.Submit(&IO{LBA: 0, Sectors: 8}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if err := d.ForceState(Standby); err == nil {
		t.Fatal("ForceState accepted after activity")
	}
}

func TestFailedDiskDrawsNothingMore(t *testing.T) {
	eng := sim.New()
	d, err := New(0, Ultrastar36Z15(), eng)
	if err != nil {
		t.Fatal(err)
	}
	eng.After(2*sim.Second, func(sim.Time) { d.Fail() })
	eng.After(12*sim.Second, func(sim.Time) {})
	eng.Run()
	if !d.Failed() {
		t.Fatal("Failed not set")
	}
	got := d.EnergyJ()
	want := d.cfg.IdlePower*2 + d.cfg.StandbyPower*10
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("energy = %g, want %g (dead drive at standby draw)", got, want)
	}
	// Double-fail is a no-op; replace needs a failure.
	d.Fail()
	if err := d.Replace(); err != nil {
		t.Fatal(err)
	}
	if err := d.Replace(); err == nil {
		t.Fatal("Replace on healthy drive accepted")
	}
}

func TestSequentialPreferenceReordersQueue(t *testing.T) {
	d, eng := newTestDisk(t)
	var order []string
	mk := func(name string, lba int64) *IO {
		return &IO{LBA: lba, Sectors: 8, Write: true,
			OnDone: func(sim.Time) { order = append(order, name) }}
	}
	// First IO establishes head position at LBA 8. Then queue a far IO
	// followed by the sequential continuation: the continuation must be
	// serviced first.
	if err := d.Submit(mk("head", 0)); err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(mk("far", 4_000_000)); err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(mk("seq", 8)); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(order) != 3 || order[1] != "seq" || order[2] != "far" {
		t.Fatalf("service order = %v, want [head seq far]", order)
	}
}

func TestHeadOfLineAgeBoundsReordering(t *testing.T) {
	d, eng := newTestDisk(t)
	var order []string
	mk := func(name string, lba int64) *IO {
		return &IO{LBA: lba, Sectors: 8, Write: true,
			OnDone: func(sim.Time) { order = append(order, name) }}
	}
	// Keep a sequential stream flowing; inject one far IO and verify it
	// is not starved beyond the head-of-line bound.
	if err := d.Submit(mk("w0", 0)); err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(mk("far", 8_000_000)); err != nil {
		t.Fatal(err)
	}
	next := int64(8)
	for i := 0; i < 200; i++ {
		name := "seq"
		if err := d.Submit(mk(name, next)); err != nil {
			t.Fatal(err)
		}
		next += 8
	}
	eng.Run()
	// "far" must appear before the end: the 50th+ sequential IO would
	// exceed the age bound.
	pos := -1
	for i, n := range order {
		if n == "far" {
			pos = i
		}
	}
	if pos < 0 || pos == len(order)-1 {
		t.Fatalf("far IO starved to position %d of %d", pos, len(order))
	}
}
