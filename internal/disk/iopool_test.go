package disk

import (
	"testing"

	"github.com/rolo-storage/rolo/internal/sim"
)

// TestIOPoolRecyclesCompletedRequests pins the pool contract: a pooled IO
// comes back to the free list after its completion callback has run, and
// the recycled struct is fully reset (a stale submitted flag would make
// every reuse fail with errDoubleSubmit).
func TestIOPoolRecyclesCompletedRequests(t *testing.T) {
	d, eng := newTestDisk(t)
	var pool IOPool
	done := 0
	for i := 0; i < 3; i++ {
		io := pool.Get()
		io.LBA = int64(i * 1000)
		io.Sectors = 8
		io.Write = true
		io.OnDone = func(sim.Time) { done++ }
		if err := d.Submit(io); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		eng.Run()
	}
	if done != 3 {
		t.Fatalf("completions = %d, want 3", done)
	}
	if pool.Free() != 1 {
		t.Fatalf("free list holds %d IOs, want 1 (single struct recycled through 3 requests)", pool.Free())
	}
	io := pool.Get()
	if io.submitted || io.OnDone != nil || io.Sectors != 0 {
		t.Fatalf("recycled IO not reset: %+v", io)
	}
}

// TestIOPoolRecyclesDroppedRequests covers the failure drop path: queued
// requests dropped by Fail fire OnDone and return to the pool.
func TestIOPoolRecyclesDroppedRequests(t *testing.T) {
	d, eng := newTestDisk(t)
	var pool IOPool
	dropped := 0
	for i := 0; i < 4; i++ {
		io := pool.Get()
		io.LBA = int64(i * 64)
		io.Sectors = 8
		io.OnDone = func(sim.Time) { dropped++ }
		if err := d.Submit(io); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	// One request dispatches immediately; the other three sit queued and
	// are dropped (with their callbacks) when the drive fails.
	d.Fail()
	if dropped != 3 {
		t.Fatalf("dropped callbacks = %d, want 3", dropped)
	}
	if pool.Free() != 3 {
		t.Fatalf("free list holds %d IOs after drop, want 3", pool.Free())
	}
	eng.Run()
}

// TestRecycleUnsubmitted pins Recycle: a pooled-but-unsubmitted IO can be
// returned by the controller (failed-target skip path), and Recycle on a
// queued IO is a no-op rather than a pool corruption.
func TestRecycleUnsubmitted(t *testing.T) {
	d, _ := newTestDisk(t)
	var pool IOPool
	io := pool.Get()
	io.Sectors = 8
	io.Recycle()
	if pool.Free() != 1 {
		t.Fatalf("free = %d after recycling unsubmitted IO, want 1", pool.Free())
	}
	io = pool.Get()
	io.Sectors = 8
	if err := d.Submit(io); err != nil {
		t.Fatalf("submit: %v", err)
	}
	io.Recycle() // submitted: must be ignored
	if pool.Free() != 0 {
		t.Fatalf("free = %d after recycling a submitted IO, want 0", pool.Free())
	}
}

// TestIOSubmitZeroAlloc is the satellite's AllocsPerRun pin: once the pool
// and the engine slab are warm, a submit→service→complete round trip
// allocates nothing — the last per-request heap allocation named by the
// ROADMAP perf guideline is gone.
func TestIOSubmitZeroAlloc(t *testing.T) {
	eng := sim.New()
	d, err := New(0, Ultrastar36Z15(), eng)
	if err != nil {
		t.Fatal(err)
	}
	var pool IOPool
	lba := int64(0)
	round := func() {
		io := pool.Get()
		io.LBA = lba % 1_000_000
		io.Sectors = 128
		io.Write = true
		lba += 937
		if err := d.Submit(io); err != nil {
			t.Fatal(err)
		}
		eng.Run()
	}
	round() // warm the pool and the event slab
	if n := testing.AllocsPerRun(200, round); n > 0 {
		t.Fatalf("pooled submit/complete allocates %v per run, want 0", n)
	}
}

// BenchmarkCoreDiskIO measures the pooled request round trip (submit,
// mechanical service, completion, recycle) — the per-request hot path
// every controller rides. Must stay 0 allocs/op.
func BenchmarkCoreDiskIO(b *testing.B) {
	eng := sim.New()
	d, err := New(0, Ultrastar36Z15(), eng)
	if err != nil {
		b.Fatal(err)
	}
	var pool IOPool
	lba := int64(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		io := pool.Get()
		io.LBA = lba % 1_000_000
		io.Sectors = 128
		io.Write = true
		lba += 937
		if err := d.Submit(io); err != nil {
			b.Fatal(err)
		}
		eng.Run()
	}
}
