// Package disk models a single hard disk drive for discrete-event
// simulation: mechanical service times (seek, rotation, transfer), a
// two-priority request queue, and a power-state machine with energy
// accounting in the style of the Dempsey disk power model.
//
// The default parameterization is the IBM Ultrastar 36Z15, the drive used
// throughout the RoLo paper (Table II).
package disk

import (
	"errors"
	"fmt"
	"math"

	"github.com/rolo-storage/rolo/internal/sim"
)

// PowerState enumerates the power states of a drive.
type PowerState int

// Power states. Active means the drive is servicing an I/O; Idle means it is
// spinning but has no work; Standby means the platters are spun down.
// SpinningUp and SpinningDown are the transition states.
const (
	Active PowerState = iota + 1
	Idle
	Standby
	SpinningUp
	SpinningDown

	numPowerStates = int(SpinningDown) + 1
)

// String returns the state name used in reports.
func (s PowerState) String() string {
	switch s {
	case Active:
		return "ACTIVE"
	case Idle:
		return "IDLE"
	case Standby:
		return "STANDBY"
	case SpinningUp:
		return "SPINUP"
	case SpinningDown:
		return "SPINDOWN"
	default:
		return fmt.Sprintf("PowerState(%d)", int(s))
	}
}

// SectorSize is the fixed sector size in bytes used by all disk models.
const SectorSize = 512

// Config holds the mechanical and power parameters of a drive model.
type Config struct {
	Model         string
	CapacityBytes int64
	RPM           int

	// Seek model: seek(d) = TrackSeek + (MaxSeek-TrackSeek)·sqrt(d/dmax)
	// for d > 0, chosen so that the mean over uniformly random distances
	// equals the published average seek time (E[sqrt(U)] = 2/3).
	TrackSeek sim.Time
	MaxSeek   sim.Time

	// TransferRate is the sustained media rate in bytes per second.
	TransferRate float64

	// Power draw per state, in watts.
	ActivePower  float64
	IdlePower    float64
	StandbyPower float64

	// Spin transition costs.
	SpinUpEnergy   float64 // joules
	SpinDownEnergy float64 // joules
	SpinUpTime     sim.Time
	SpinDownTime   sim.Time

	// BackgroundGuard is the idle-slot detector: background I/O is
	// dispatched only when no foreground request has arrived for this
	// long, so destaging consumes genuine idle slots instead of the
	// microscopic gaps inside a burst (Section III-A of the paper).
	BackgroundGuard sim.Time
}

// Ultrastar36Z15 returns the IBM Ultrastar 36Z15 parameters from Table II of
// the paper: 18.4 GB, 15 000 RPM, 3.4 ms average seek, 2 ms average
// rotational latency, 55 MB/s sustained transfer, 13.5/10.2/2.5 W
// active/idle/standby, 135 J/13 J and 10.9 s/1.5 s spin up/down.
func Ultrastar36Z15() Config {
	const avgSeek = 3400 * sim.Microsecond
	const trackSeek = 600 * sim.Microsecond
	// avg = track + (max-track)·2/3  =>  max = track + (avg-track)·3/2
	maxSeek := trackSeek + (avgSeek-trackSeek)*3/2
	return Config{
		Model:           "IBM Ultrastar 36Z15",
		CapacityBytes:   18400 << 20, // 18.4 GB (binary MB, as DiskSim does)
		RPM:             15000,
		TrackSeek:       trackSeek,
		MaxSeek:         maxSeek,
		TransferRate:    55 << 20, // 55 MB/s
		ActivePower:     13.5,
		IdlePower:       10.2,
		StandbyPower:    2.5,
		SpinUpEnergy:    135,
		SpinDownEnergy:  13,
		SpinUpTime:      sim.FromSeconds(10.9),
		SpinDownTime:    sim.FromSeconds(1.5),
		BackgroundGuard: 10 * sim.Millisecond,
	}
}

// WithCapacity returns a copy of c with the capacity replaced. The paper's
// disk-size sensitivity study scales capacity while keeping performance and
// power parameters fixed.
func (c Config) WithCapacity(bytes int64) Config {
	c.CapacityBytes = bytes
	return c
}

// Sectors returns the number of addressable sectors.
func (c Config) Sectors() int64 { return c.CapacityBytes / SectorSize }

// RevolutionTime returns the time for one platter revolution.
func (c Config) RevolutionTime() sim.Time {
	return sim.Time(int64(60) * int64(sim.Second) / int64(c.RPM))
}

// AvgRotationalLatency is half a revolution: the expected latency of a
// random access.
func (c Config) AvgRotationalLatency() sim.Time { return c.RevolutionTime() / 2 }

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.CapacityBytes <= 0:
		return fmt.Errorf("disk: non-positive capacity %d", c.CapacityBytes)
	case c.RPM <= 0:
		return fmt.Errorf("disk: non-positive RPM %d", c.RPM)
	case c.TransferRate <= 0:
		return fmt.Errorf("disk: non-positive transfer rate %g", c.TransferRate)
	case c.MaxSeek < c.TrackSeek:
		return fmt.Errorf("disk: MaxSeek %v < TrackSeek %v", c.MaxSeek, c.TrackSeek)
	case c.SpinUpTime < 0 || c.SpinDownTime < 0:
		return errors.New("disk: negative spin transition time")
	case c.BackgroundGuard < 0:
		return errors.New("disk: negative background guard")
	}
	return nil
}

// IO is a single disk request. Background requests are dispatched only when
// no foreground request is waiting, which implements the paper's rule that
// destaging consumes only free disk bandwidth.
type IO struct {
	LBA        int64 // first sector
	Sectors    int64
	Write      bool
	Background bool

	// OnDone, if non-nil, is invoked at completion time.
	OnDone func(now sim.Time)

	submitted  bool
	enqueuedAt sim.Time

	// pool, when non-nil, is the free list this IO came from; the drive
	// returns the IO to it after the completion (or drop) callback has
	// run. See IOPool.
	pool *IOPool
}

// Errors returned by Disk operations.
var (
	ErrBusy         = errors.New("disk: drive has queued or in-flight work")
	ErrBadState     = errors.New("disk: operation invalid in current power state")
	ErrOutOfRange   = errors.New("disk: request beyond device capacity")
	ErrZeroSectors  = errors.New("disk: request with no sectors")
	ErrFailed       = errors.New("disk: drive has failed")
	errNilIO        = errors.New("disk: nil IO")
	errDoubleSubmit = errors.New("disk: IO submitted twice")
)

// Stats is a snapshot of a drive's accumulated accounting.
type Stats struct {
	EnergyJ       float64
	StateDur      map[PowerState]sim.Time
	SpinUps       int
	SpinDowns     int
	IOsCompleted  int64
	BytesRead     int64
	BytesWritten  int64
	BusyTime      sim.Time // total time servicing I/O
	ForegroundIOs int64
	BackgroundIOs int64
}

// Disk is a simulated drive bound to a simulation engine.
type Disk struct {
	id  int
	cfg Config
	eng *sim.Engine

	state      PowerState
	stateSince sim.Time
	born       sim.Time // creation time: stateDur accrues from here
	stateDur   [numPowerStates]sim.Time
	energyJ    float64

	headPos int64 // sector where the head ended up
	seqNext int64 // LBA that would continue the last access sequentially

	busy    bool
	current *IO
	fg      fifo
	bg      fifo

	spinUps, spinDowns int

	// spinSeq invalidates in-flight spin transitions: each spin-up or
	// spin-down completion closure captures the sequence at scheduling
	// time and no-ops if it has moved on (a failure aborted the
	// transition, or a replacement drive started its own spin-up).
	spinSeq      int
	iosCompleted int64
	bytesRead    int64
	bytesWritten int64
	busyTime     sim.Time
	fgIOs, bgIOs int64

	// wakeOnArrival makes a Standby drive spin up automatically when an IO
	// is submitted. All schemes in the paper behave this way.
	wakeOnArrival bool

	// alwaysActive models a drive under no power management at all: it
	// draws active power even while idle. The paper's RAID10 baseline
	// keeps every disk ACTIVE for the whole run (Section IV, Table I).
	alwaysActive bool

	lastFGArrival sim.Time
	sawFG         bool
	bgRecheck     bool
	failed        bool

	// completeFn and bgRecheckFn are the two per-IO-rate completion
	// closures, bound once at construction so the dispatch hot path
	// schedules events without allocating (DESIGN §11). completeFn reads
	// d.current, which is safe because at most one request is in flight.
	completeFn  sim.Handler
	bgRecheckFn sim.Handler

	onStateChange []func(d *Disk, from, to PowerState, now sim.Time)
}

// fifo is a simple FIFO queue of IOs.
type fifo struct {
	items []*IO
	head  int
}

func (q *fifo) push(io *IO) { q.items = append(q.items, io) }

func (q *fifo) pop() *IO {
	if q.head >= len(q.items) {
		return nil
	}
	io := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return io
}

// popAt removes and returns the i-th queued element (0 = head).
func (q *fifo) popAt(i int) *IO {
	idx := q.head + i
	io := q.items[idx]
	copy(q.items[idx:], q.items[idx+1:])
	q.items[len(q.items)-1] = nil
	q.items = q.items[:len(q.items)-1]
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return io
}

func (q *fifo) at(i int) *IO { return q.items[q.head+i] }

func (q *fifo) len() int { return len(q.items) - q.head }

// New creates a drive in the Idle state at the engine's current time.
func New(id int, cfg Config, eng *sim.Engine) (*Disk, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Disk{
		id:            id,
		cfg:           cfg,
		eng:           eng,
		state:         Idle,
		stateSince:    eng.Now(),
		born:          eng.Now(),
		seqNext:       -1,
		wakeOnArrival: true,
	}
	d.completeFn = func(at sim.Time) { d.complete(d.current, at) }
	d.bgRecheckFn = func(at sim.Time) {
		d.bgRecheck = false
		d.tryDispatch(at)
	}
	return d, nil
}

// ID returns the drive's identifier within its array.
func (d *Disk) ID() int { return d.id }

// Config returns the drive's configuration.
func (d *Disk) Config() Config { return d.cfg }

// State returns the drive's current power state.
func (d *Disk) State() PowerState { return d.state }

// QueueLen returns the number of queued (not in-flight) requests.
func (d *Disk) QueueLen() int { return d.fg.len() + d.bg.len() }

// ForegroundPending reports whether any foreground work is queued or in flight.
func (d *Disk) ForegroundPending() bool {
	return d.fg.len() > 0 || (d.busy && d.current != nil && !d.current.Background)
}

// Born returns the simulation time the drive was created; state durations
// accrue from this instant, so the durations in Stats always sum to
// Now()-Born().
func (d *Disk) Born() sim.Time { return d.born }

// AddStateChangeHook registers a callback observing power-state
// transitions. Hooks run in registration order, after the state has
// changed. Transitions forced by Fail or ForceState bypass the state
// machine and do not fire hooks.
func (d *Disk) AddStateChangeHook(fn func(d *Disk, from, to PowerState, now sim.Time)) {
	d.onStateChange = append(d.onStateChange, fn)
}

// setState is the audited transition point of the power-state machine:
// every legal transition goes through here (Fail and ForceState are the
// two documented bypasses). The statetransition analyzer checks each call
// site's possible from-states against the declared graph in powerGraph.
//
// rolosan:transition
func (d *Disk) setState(to PowerState, now sim.Time) {
	from := d.state
	if from == to {
		return
	}
	d.accrue(now)
	d.state = to
	for _, fn := range d.onStateChange {
		fn(d, from, to, now)
	}
}

// accrue charges energy and state duration for the interval since the last
// state change or accrual.
func (d *Disk) accrue(now sim.Time) {
	dt := now - d.stateSince
	if dt <= 0 {
		d.stateSince = now
		return
	}
	d.stateDur[d.state] += dt
	d.energyJ += d.statePower(d.state) * dt.Seconds()
	d.stateSince = now
}

// SetAlwaysActive marks the drive as power-unmanaged: idle time is charged
// at active power, as for the paper's RAID10 baseline.
func (d *Disk) SetAlwaysActive(v bool) {
	d.accrue(d.eng.Now())
	d.alwaysActive = v
}

func (d *Disk) statePower(s PowerState) float64 {
	switch s {
	case Active:
		return d.cfg.ActivePower
	case Idle:
		if d.alwaysActive {
			return d.cfg.ActivePower
		}
		return d.cfg.IdlePower
	case Standby:
		return d.cfg.StandbyPower
	default:
		// Spin transitions are charged as lump energies; the interval
		// itself draws nothing extra.
		return 0
	}
}

// ServiceTime computes the service time for a request given the drive's
// current head position, without side effects. Sequential continuations pay
// neither seek nor rotational latency.
func (d *Disk) ServiceTime(io *IO) sim.Time {
	transfer := sim.Time(math.Ceil(float64(io.Sectors*SectorSize) / d.cfg.TransferRate * float64(sim.Second)))
	if io.LBA == d.seqNext {
		return transfer
	}
	dist := io.LBA - d.headPos
	if dist < 0 {
		dist = -dist
	}
	return d.seekTime(dist) + d.cfg.AvgRotationalLatency() + transfer
}

func (d *Disk) seekTime(distSectors int64) sim.Time {
	if distSectors == 0 {
		return 0
	}
	frac := float64(distSectors) / float64(d.cfg.Sectors())
	if frac > 1 {
		frac = 1
	}
	span := float64(d.cfg.MaxSeek - d.cfg.TrackSeek)
	return d.cfg.TrackSeek + sim.Time(math.Round(span*math.Sqrt(frac)))
}

// Failed reports whether the drive has failed.
func (d *Disk) Failed() bool { return d.failed }

// Fail marks the drive as failed at the current instant: it stops drawing
// power, pending queued requests are dropped (their OnDone callbacks fire
// immediately so joins unblock — the controller is expected to reissue or
// degrade), and future submissions are rejected with ErrFailed. The
// in-flight request, if any, still completes (heads park with data already
// transferred in this model).
func (d *Disk) Fail() {
	if d.failed {
		return
	}
	now := d.eng.Now()
	d.accrue(now)
	d.failed = true
	// Abort any in-flight spin transition: its completion closure must
	// not fire a state change on a dead (or later replaced) drive.
	d.spinSeq++
	//lint:allow statetransition:bypass failure bypasses the state machine; a dead drive draws (approximately) nothing and hooks do not fire
	d.state = Standby
	for {
		io := d.fg.pop()
		if io == nil {
			io = d.bg.pop()
		}
		if io == nil {
			break
		}
		if io.OnDone != nil {
			io.OnDone(now)
		}
		io.release()
	}
}

// Replace swaps in a fresh drive in the same slot: the failure flag clears
// and the drive starts spinning up (a replacement begins cold). Cumulative
// accounting continues — the slot's energy history is what reports track.
func (d *Disk) Replace() error {
	if !d.failed {
		return fmt.Errorf("%w: replace a healthy drive", ErrBadState)
	}
	d.failed = false
	d.headPos = 0
	d.seqNext = -1
	d.beginSpinUp(d.eng.Now())
	return nil
}

// Submit queues an I/O. If the drive is in Standby and wakeOnArrival is set,
// a spin-up is initiated; the request waits for it.
func (d *Disk) Submit(io *IO) error {
	if io == nil {
		return errNilIO
	}
	if d.failed {
		return ErrFailed
	}
	if io.Sectors <= 0 {
		return ErrZeroSectors
	}
	if io.LBA < 0 || io.LBA+io.Sectors > d.cfg.Sectors() {
		return fmt.Errorf("%w: lba=%d sectors=%d capacity=%d", ErrOutOfRange, io.LBA, io.Sectors, d.cfg.Sectors())
	}
	if io.submitted {
		return errDoubleSubmit
	}
	io.submitted = true
	io.enqueuedAt = d.eng.Now()
	if io.Background {
		d.bg.push(io)
	} else {
		d.fg.push(io)
		d.lastFGArrival = d.eng.Now()
		d.sawFG = true
	}
	d.tryDispatch(d.eng.Now())
	return nil
}

func (d *Disk) tryDispatch(now sim.Time) {
	if d.busy || d.failed {
		return
	}
	switch d.state {
	case Standby:
		if d.QueueLen() > 0 && d.wakeOnArrival {
			d.beginSpinUp(now)
		}
		return
	case SpinningUp, SpinningDown:
		return // dispatch resumes when the transition completes
	}
	io := d.nextIO(now)
	if io == nil {
		d.setState(Idle, now)
		return
	}
	d.busy = true
	d.current = io
	d.setState(Active, now)
	svc := d.ServiceTime(io)
	d.headPos = io.LBA + io.Sectors
	d.seqNext = io.LBA + io.Sectors
	d.busyTime += svc
	d.eng.After(svc, d.completeFn)
}

// maxHeadOfLineWait bounds how long the oldest queued request may be
// bypassed by sequential-continuation scheduling.
const maxHeadOfLineWait = 15 * sim.Millisecond

// nextIO selects the next request: foreground before background, and among
// foreground requests a sequential continuation of the current head
// position is preferred (modeling command-queue reordering) unless the
// oldest request has already waited too long.
func (d *Disk) nextIO(now sim.Time) *IO {
	if d.fg.len() == 0 {
		if d.bg.len() == 0 {
			return nil
		}
		// Idle-slot detection: hold background work until the disk has
		// been free of foreground arrivals for the guard interval.
		if wait := d.cfg.BackgroundGuard - (now - d.lastFGArrival); wait > 0 && d.sawFG {
			d.scheduleBgRecheck(wait)
			return nil
		}
		return d.bg.pop()
	}
	head := d.fg.at(0)
	if now-head.enqueuedAt < maxHeadOfLineWait {
		for i := 0; i < d.fg.len(); i++ {
			if d.fg.at(i).LBA == d.seqNext {
				return d.fg.popAt(i)
			}
		}
	}
	return d.fg.pop()
}

// scheduleBgRecheck arranges a dispatch attempt once the background guard
// may have expired; a flag prevents duplicate timers.
func (d *Disk) scheduleBgRecheck(wait sim.Time) {
	if d.bgRecheck {
		return
	}
	d.bgRecheck = true
	d.eng.After(wait, d.bgRecheckFn)
}

func (d *Disk) complete(io *IO, now sim.Time) {
	d.busy = false
	d.current = nil
	d.iosCompleted++
	bytes := io.Sectors * SectorSize
	if io.Write {
		d.bytesWritten += bytes
	} else {
		d.bytesRead += bytes
	}
	if io.Background {
		d.bgIOs++
	} else {
		d.fgIOs++
	}
	if io.OnDone != nil {
		io.OnDone(now)
	}
	// The request's lifetime ends with its callback; a pooled IO goes
	// back on the free list before the dispatch of the next one.
	io.release()
	d.tryDispatch(now)
}

// ForceState places the drive directly into a power state with no
// transition latency, energy, or spin-cycle accounting. It is intended for
// setting each scheme's initial disk states at simulation start and is
// rejected once the drive has done any work.
func (d *Disk) ForceState(s PowerState) error {
	if d.iosCompleted > 0 || d.busy || d.QueueLen() > 0 || d.spinUps > 0 || d.spinDowns > 0 {
		return fmt.Errorf("%w: ForceState after activity", ErrBadState)
	}
	if s != Idle && s != Standby {
		return fmt.Errorf("%w: ForceState to %v", ErrBadState, s)
	}
	d.accrue(d.eng.Now())
	//lint:allow statetransition:bypass initial-state setup bypasses the state machine by design (no latency, energy, or hooks)
	d.state = s
	return nil
}

// SpinDown initiates a transition to Standby. It is only legal when the
// drive is Idle with an empty queue; controllers are expected to check.
func (d *Disk) SpinDown() error {
	now := d.eng.Now()
	if d.failed {
		return ErrFailed
	}
	if d.state != Idle {
		return fmt.Errorf("%w: spin down from %v", ErrBadState, d.state)
	}
	if d.busy || d.QueueLen() > 0 {
		return ErrBusy
	}
	d.setState(SpinningDown, now)
	d.spinDowns++
	d.energyJ += d.cfg.SpinDownEnergy
	d.spinSeq++
	seq := d.spinSeq
	d.eng.After(d.cfg.SpinDownTime, func(at sim.Time) {
		if d.spinSeq != seq {
			return // aborted by a failure mid-transition
		}
		//rolosan:from SpinningDown
		d.setState(Standby, at)
		// Work may have arrived during the transition; wake for it.
		if d.QueueLen() > 0 && d.wakeOnArrival {
			d.beginSpinUp(at)
		}
	})
	return nil
}

// SpinUp explicitly wakes a Standby drive (for example, proactively before a
// destage). It is a no-op if the drive is already spinning or in transition
// to spinning.
func (d *Disk) SpinUp() error {
	now := d.eng.Now()
	if d.failed {
		return ErrFailed
	}
	switch d.state {
	case Active, Idle, SpinningUp:
		return nil
	case SpinningDown:
		return fmt.Errorf("%w: spin up while spinning down", ErrBadState)
	}
	d.beginSpinUp(now)
	return nil
}

func (d *Disk) beginSpinUp(now sim.Time) {
	//rolosan:from Standby
	d.setState(SpinningUp, now)
	d.spinUps++
	d.energyJ += d.cfg.SpinUpEnergy
	d.spinSeq++
	seq := d.spinSeq
	d.eng.After(d.cfg.SpinUpTime, func(at sim.Time) {
		if d.spinSeq != seq {
			return // aborted by a failure mid-transition
		}
		//rolosan:from SpinningUp
		d.setState(Idle, at)
		d.tryDispatch(at)
	})
}

// SpinCycles returns the number of spin-up events, the paper's Table I
// "number of disks spin up/down" metric (one up/down pair counts once).
func (d *Disk) SpinCycles() int { return d.spinUps }

// Stats finalizes accounting to the current simulation time and returns a
// snapshot.
func (d *Disk) Stats() Stats {
	d.accrue(d.eng.Now())
	dur := make(map[PowerState]sim.Time, numPowerStates)
	for s := Active; s <= SpinningDown; s++ {
		if d.stateDur[s] != 0 {
			dur[s] = d.stateDur[s]
		}
	}
	return Stats{
		EnergyJ:       d.energyJ,
		StateDur:      dur,
		SpinUps:       d.spinUps,
		SpinDowns:     d.spinDowns,
		IOsCompleted:  d.iosCompleted,
		BytesRead:     d.bytesRead,
		BytesWritten:  d.bytesWritten,
		BusyTime:      d.busyTime,
		ForegroundIOs: d.fgIOs,
		BackgroundIOs: d.bgIOs,
	}
}

// EnergyJ finalizes accounting and returns total energy consumed in joules.
func (d *Disk) EnergyJ() float64 {
	d.accrue(d.eng.Now())
	return d.energyJ
}
