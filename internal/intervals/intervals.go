// Package intervals provides a coalescing set of half-open byte ranges.
// Controllers use it to track inconsistent (dirty) extents per mirrored
// pair and to chunk destaging work.
//
// All mutators work in place on the set's backing array (see DESIGN §11):
// Add, Remove and PopFirst shift spans with memmove-style copies instead of
// rebuilding the slice, so steady-state mutation performs no allocations
// once the backing array has reached the set's high-water span count.
package intervals

import (
	"fmt"
	"sort"
)

// Span is a half-open range [Start, End).
type Span struct {
	Start, End int64
}

// Len returns the span length.
func (s Span) Len() int64 { return s.End - s.Start }

// Set is a sorted, coalesced collection of non-overlapping spans. The zero
// value is an empty set ready for use.
type Set struct {
	spans []Span
	total int64 // cached sum of span lengths, maintained by every mutator
}

// Add inserts [start, end), merging with any overlapping or adjacent spans.
// Empty or inverted ranges are ignored.
func (s *Set) Add(start, end int64) {
	if end <= start {
		return
	}
	i := sort.Search(len(s.spans), func(i int) bool { return s.spans[i].End >= start })
	j := i
	var absorbed int64
	for j < len(s.spans) && s.spans[j].Start <= end {
		absorbed += s.spans[j].Len()
		if s.spans[j].Start < start {
			start = s.spans[j].Start
		}
		if s.spans[j].End > end {
			end = s.spans[j].End
		}
		j++
	}
	merged := Span{Start: start, End: end}
	s.total += merged.Len() - absorbed
	if i == j {
		// Pure insertion: open a hole at i.
		s.spans = append(s.spans, Span{})
		copy(s.spans[i+1:], s.spans[i:])
		s.spans[i] = merged
		return
	}
	// spans[i:j] collapse into one; close the leftover hole in place.
	s.spans[i] = merged
	if j > i+1 {
		n := copy(s.spans[i+1:], s.spans[j:])
		s.spans = s.spans[:i+1+n]
	}
}

// Remove deletes [start, end) from the set, splitting spans as needed. When
// the range does not overlap the set it returns without touching anything.
func (s *Set) Remove(start, end int64) {
	if end <= start || len(s.spans) == 0 {
		return
	}
	i := sort.Search(len(s.spans), func(i int) bool { return s.spans[i].End > start })
	if i == len(s.spans) || s.spans[i].Start >= end {
		return // no overlap
	}
	j := i
	for j < len(s.spans) && s.spans[j].Start < end {
		lo, hi := max(s.spans[j].Start, start), min(s.spans[j].End, end)
		s.total -= hi - lo
		j++
	}
	// spans[i:j] overlap the removed range; at most the first leaves a left
	// remainder and the last a right remainder.
	var rem [2]Span
	keep := 0
	if first := s.spans[i]; first.Start < start {
		rem[keep] = Span{Start: first.Start, End: start}
		keep++
	}
	if last := s.spans[j-1]; last.End > end {
		rem[keep] = Span{Start: end, End: last.End}
		keep++
	}
	switch delta := keep - (j - i); {
	case delta < 0:
		copy(s.spans[i+keep:], s.spans[j:])
		s.spans = s.spans[:len(s.spans)+delta]
	case delta > 0:
		// A removal strictly inside one span splits it: grow by one and
		// shift the suffix up.
		s.spans = append(s.spans, Span{})
		copy(s.spans[j+1:], s.spans[j:len(s.spans)-1])
	}
	for k := 0; k < keep; k++ {
		s.spans[i+k] = rem[k]
	}
}

// Contains reports whether [start, end) is fully covered by the set.
func (s *Set) Contains(start, end int64) bool {
	if end <= start {
		return true
	}
	i := sort.Search(len(s.spans), func(i int) bool { return s.spans[i].End > start })
	return i < len(s.spans) && s.spans[i].Start <= start && s.spans[i].End >= end
}

// Overlaps reports whether any byte of [start, end) is in the set.
func (s *Set) Overlaps(start, end int64) bool {
	if end <= start {
		return false
	}
	i := sort.Search(len(s.spans), func(i int) bool { return s.spans[i].End > start })
	return i < len(s.spans) && s.spans[i].Start < end
}

// Total returns the number of bytes covered. It is O(1): controllers and
// the sanitizer read it on hot paths (per-event dirty-byte counters).
func (s *Set) Total() int64 { return s.total }

// Empty reports whether the set covers nothing.
func (s *Set) Empty() bool { return len(s.spans) == 0 }

// Count returns the number of disjoint spans.
func (s *Set) Count() int { return len(s.spans) }

// At returns the i-th span in ascending order, 0 <= i < Count(). Together
// with Count it lets hot paths iterate without the copy Spans() makes.
func (s *Set) At(i int) Span { return s.spans[i] }

// Spans returns a copy of the coalesced spans in ascending order. Hot paths
// should iterate with Count/At instead.
func (s *Set) Spans() []Span {
	out := make([]Span, len(s.spans))
	copy(out, s.spans)
	return out
}

// Clear removes all spans.
func (s *Set) Clear() {
	s.spans = s.spans[:0]
	s.total = 0
}

// PopFirst removes and returns up to max bytes from the lowest span,
// which is how destagers chunk sequential work. It reports false when the
// set is empty. Whole-span pops shift the remainder down so the backing
// array's capacity is recycled rather than leaked behind a re-slice.
func (s *Set) PopFirst(max int64) (Span, bool) {
	if len(s.spans) == 0 || max <= 0 {
		return Span{}, false
	}
	sp := s.spans[0]
	if sp.Len() <= max {
		copy(s.spans, s.spans[1:])
		s.spans = s.spans[:len(s.spans)-1]
		s.total -= sp.Len()
		return sp, true
	}
	taken := Span{Start: sp.Start, End: sp.Start + max}
	s.spans[0].Start = taken.End
	s.total -= taken.Len()
	return taken, true
}

// CheckInvariants verifies internal ordering and coalescing; it is used by
// property tests.
func (s *Set) CheckInvariants() error {
	var sum int64
	for i, sp := range s.spans {
		if sp.End <= sp.Start {
			return fmt.Errorf("intervals: span %d degenerate: %+v", i, sp)
		}
		if i > 0 && s.spans[i-1].End >= sp.Start {
			return fmt.Errorf("intervals: spans %d,%d not coalesced: %+v %+v",
				i-1, i, s.spans[i-1], sp)
		}
		sum += sp.Len()
	}
	if sum != s.total {
		return fmt.Errorf("intervals: cached total %d != span sum %d", s.total, sum)
	}
	return nil
}
