// Package intervals provides a coalescing set of half-open byte ranges.
// Controllers use it to track inconsistent (dirty) extents per mirrored
// pair and to chunk destaging work.
package intervals

import (
	"fmt"
	"sort"
)

// Span is a half-open range [Start, End).
type Span struct {
	Start, End int64
}

// Len returns the span length.
func (s Span) Len() int64 { return s.End - s.Start }

// Set is a sorted, coalesced collection of non-overlapping spans. The zero
// value is an empty set ready for use.
type Set struct {
	spans []Span
	total int64 // cached sum of span lengths, maintained by every mutator
}

// Add inserts [start, end), merging with any overlapping or adjacent spans.
// Empty or inverted ranges are ignored.
func (s *Set) Add(start, end int64) {
	if end <= start {
		return
	}
	i := sort.Search(len(s.spans), func(i int) bool { return s.spans[i].End >= start })
	j := i
	var absorbed int64
	for j < len(s.spans) && s.spans[j].Start <= end {
		absorbed += s.spans[j].Len()
		if s.spans[j].Start < start {
			start = s.spans[j].Start
		}
		if s.spans[j].End > end {
			end = s.spans[j].End
		}
		j++
	}
	merged := Span{Start: start, End: end}
	s.total += merged.Len() - absorbed
	s.spans = append(s.spans[:i], append([]Span{merged}, s.spans[j:]...)...)
}

// Remove deletes [start, end) from the set, splitting spans as needed.
func (s *Set) Remove(start, end int64) {
	if end <= start {
		return
	}
	var out []Span
	for _, sp := range s.spans {
		if sp.End <= start || sp.Start >= end {
			out = append(out, sp)
			continue
		}
		lo, hi := max(sp.Start, start), min(sp.End, end)
		s.total -= hi - lo
		if sp.Start < start {
			out = append(out, Span{Start: sp.Start, End: start})
		}
		if sp.End > end {
			out = append(out, Span{Start: end, End: sp.End})
		}
	}
	s.spans = out
}

// Contains reports whether [start, end) is fully covered by the set.
func (s *Set) Contains(start, end int64) bool {
	if end <= start {
		return true
	}
	i := sort.Search(len(s.spans), func(i int) bool { return s.spans[i].End > start })
	return i < len(s.spans) && s.spans[i].Start <= start && s.spans[i].End >= end
}

// Overlaps reports whether any byte of [start, end) is in the set.
func (s *Set) Overlaps(start, end int64) bool {
	if end <= start {
		return false
	}
	i := sort.Search(len(s.spans), func(i int) bool { return s.spans[i].End > start })
	return i < len(s.spans) && s.spans[i].Start < end
}

// Total returns the number of bytes covered. It is O(1): controllers and
// the sanitizer read it on hot paths (per-event dirty-byte counters).
func (s *Set) Total() int64 { return s.total }

// Empty reports whether the set covers nothing.
func (s *Set) Empty() bool { return len(s.spans) == 0 }

// Count returns the number of disjoint spans.
func (s *Set) Count() int { return len(s.spans) }

// Spans returns a copy of the coalesced spans in ascending order.
func (s *Set) Spans() []Span {
	out := make([]Span, len(s.spans))
	copy(out, s.spans)
	return out
}

// Clear removes all spans.
func (s *Set) Clear() {
	s.spans = s.spans[:0]
	s.total = 0
}

// PopFirst removes and returns up to max bytes from the lowest span,
// which is how destagers chunk sequential work. It reports false when the
// set is empty.
func (s *Set) PopFirst(max int64) (Span, bool) {
	if len(s.spans) == 0 || max <= 0 {
		return Span{}, false
	}
	sp := s.spans[0]
	if sp.Len() <= max {
		s.spans = s.spans[1:]
		s.total -= sp.Len()
		return sp, true
	}
	taken := Span{Start: sp.Start, End: sp.Start + max}
	s.spans[0].Start = taken.End
	s.total -= taken.Len()
	return taken, true
}

// CheckInvariants verifies internal ordering and coalescing; it is used by
// property tests.
func (s *Set) CheckInvariants() error {
	var sum int64
	for i, sp := range s.spans {
		if sp.End <= sp.Start {
			return fmt.Errorf("intervals: span %d degenerate: %+v", i, sp)
		}
		if i > 0 && s.spans[i-1].End >= sp.Start {
			return fmt.Errorf("intervals: spans %d,%d not coalesced: %+v %+v",
				i-1, i, s.spans[i-1], sp)
		}
		sum += sp.Len()
	}
	if sum != s.total {
		return fmt.Errorf("intervals: cached total %d != span sum %d", s.total, sum)
	}
	return nil
}
