package intervals

import "testing"

// Core benchmarks: the in-place Set mutators controllers hit per write
// (markDirty/cleanDirty) and per destage chunk (PopFirst). scripts/check.sh
// runs them once per commit (bench-smoke) and `make bench` records them in
// BENCH_core.json. All of them must report 0 allocs/op once the backing
// array is at its high-water span count (DESIGN §11).

// warmSet returns a set whose backing array has held n disjoint spans.
func warmSet(n int64) *Set {
	var s Set
	for i := int64(0); i < n; i++ {
		s.Add(i*20, i*20+10)
	}
	s.Clear()
	return &s
}

// BenchmarkCoreIntervalsAddRemove cycles the mutation patterns a dirty-set
// sees per logged write: insert, extend, merge, split, and the no-overlap
// Remove early-return. Each iteration returns the set to empty.
func BenchmarkCoreIntervalsAddRemove(b *testing.B) {
	s := warmSet(32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(100, 200)    // insert
		s.Add(400, 500)    // second span
		s.Add(150, 250)    // extend the first
		s.Add(250, 400)    // merge both
		s.Remove(600, 700) // no overlap: early return
		s.Remove(220, 280) // split one span into two
		s.Remove(0, 1000)  // drop everything
	}
}

// BenchmarkCoreIntervalsPopFirst measures destage chunking: refill one
// span, then drain it in fixed-size chunks through partial and whole-span
// pops.
func BenchmarkCoreIntervalsPopFirst(b *testing.B) {
	s := warmSet(32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(0, 1024)
		for {
			if _, ok := s.PopFirst(256); !ok {
				break
			}
		}
	}
}
