package intervals

import (
	"math/rand"
	"testing"
)

// naiveSet is the reference implementation for the property tests: a plain
// coverage bitmap over a small universe. Every operation is written for
// obviousness, not speed. The bitmap extends past the generation range so
// ranges straddling the universe edge are still tracked exactly.
type naiveSet struct {
	covered [maxAddr]bool
}

const (
	universe = 512           // generated starts are in [0, universe+20)
	maxAddr  = universe + 60 // bitmap bound: start < universe+20, len < 40
)

func (n *naiveSet) add(start, end int64)    { n.set(start, end, true) }
func (n *naiveSet) remove(start, end int64) { n.set(start, end, false) }

func (n *naiveSet) set(start, end int64, v bool) {
	if end <= start {
		return
	}
	for i := clamp(start); i < clamp(end); i++ {
		n.covered[i] = v
	}
}

func clamp(v int64) int64 {
	if v < 0 {
		return 0
	}
	if v > maxAddr {
		return maxAddr
	}
	return v
}

func (n *naiveSet) total() int64 {
	var t int64
	for _, c := range n.covered {
		if c {
			t++
		}
	}
	return t
}

func (n *naiveSet) contains(start, end int64) bool {
	if end <= start {
		return true
	}
	for i := start; i < end; i++ {
		if i < 0 || i >= maxAddr || !n.covered[i] {
			return false
		}
	}
	return true
}

func (n *naiveSet) overlaps(start, end int64) bool {
	for i := clamp(start); i < clamp(end); i++ {
		if n.covered[i] {
			return true
		}
	}
	return false
}

// spans reconstructs the coalesced span list from the bitmap.
func (n *naiveSet) spans() []Span {
	var out []Span
	i := int64(0)
	for i < maxAddr {
		if !n.covered[i] {
			i++
			continue
		}
		j := i
		for j < maxAddr && n.covered[j] {
			j++
		}
		out = append(out, Span{Start: i, End: j})
		i = j
	}
	return out
}

// popFirst mirrors Set.PopFirst against the bitmap.
func (n *naiveSet) popFirst(max int64) (Span, bool) {
	sps := n.spans()
	if len(sps) == 0 || max <= 0 {
		return Span{}, false
	}
	sp := sps[0]
	if sp.Len() > max {
		sp.End = sp.Start + max
	}
	n.remove(sp.Start, sp.End)
	return sp, true
}

// TestSetMatchesNaiveReference fuzzes the in-place Set against the bitmap
// reference with a rapid add/remove/pop loop, checking CheckInvariants and
// full span-list agreement after every mutation.
func TestSetMatchesNaiveReference(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var s Set
		var ref naiveSet
		for op := 0; op < 2000; op++ {
			start := int64(rng.Intn(universe + 20)) // occasionally out past the edge
			end := start + int64(rng.Intn(40))
			switch k := rng.Intn(10); {
			case k < 4:
				s.Add(start, end)
				ref.add(start, end)
			case k < 7:
				s.Remove(start, end)
				ref.remove(start, end)
			case k < 8:
				max := int64(rng.Intn(30))
				got, gotOK := s.PopFirst(max)
				want, wantOK := ref.popFirst(max)
				if gotOK != wantOK || got != want {
					t.Fatalf("seed %d op %d: PopFirst(%d) = %+v,%v, want %+v,%v",
						seed, op, max, got, gotOK, want, wantOK)
				}
			case k < 9:
				if got, want := s.Contains(start, end), ref.contains(start, end); got != want {
					t.Fatalf("seed %d op %d: Contains(%d,%d) = %v, want %v", seed, op, start, end, got, want)
				}
			default:
				if got, want := s.Overlaps(start, end), ref.overlaps(start, end); got != want {
					t.Fatalf("seed %d op %d: Overlaps(%d,%d) = %v, want %v", seed, op, start, end, got, want)
				}
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("seed %d op %d: %v", seed, op, err)
			}
			if got, want := s.Total(), ref.total(); got != want {
				t.Fatalf("seed %d op %d: Total() = %d, want %d", seed, op, got, want)
			}
			gotSpans, wantSpans := s.Spans(), ref.spans()
			if len(gotSpans) != len(wantSpans) {
				t.Fatalf("seed %d op %d: %d spans %v, want %d spans %v",
					seed, op, len(gotSpans), gotSpans, len(wantSpans), wantSpans)
			}
			for i := range gotSpans {
				if gotSpans[i] != wantSpans[i] {
					t.Fatalf("seed %d op %d: span %d = %+v, want %+v", seed, op, i, gotSpans[i], wantSpans[i])
				}
			}
		}
	}
}

// TestRemoveNoOverlapDoesNotMutate pins the early-return: removing a range
// that misses the set must leave the backing slice untouched.
func TestRemoveNoOverlapDoesNotMutate(t *testing.T) {
	var s Set
	s.Add(100, 200)
	s.Add(300, 400)
	for _, r := range [][2]int64{{0, 100}, {200, 300}, {400, 500}, {250, 260}, {50, 20}} {
		s.Remove(r[0], r[1])
	}
	if s.Count() != 2 || s.At(0) != (Span{100, 200}) || s.At(1) != (Span{300, 400}) {
		t.Fatalf("non-overlapping Remove mutated the set: %v", s.Spans())
	}
}

// TestSetSteadyStateZeroAllocs pins the 0 allocs/op contract for Add,
// Remove and PopFirst once the backing array has reached its high-water
// span count.
func TestSetSteadyStateZeroAllocs(t *testing.T) {
	var s Set
	// Warm the backing array to its high-water mark for the loop below.
	for i := int64(0); i < 32; i++ {
		s.Add(i*20, i*20+10)
	}
	s.Clear()

	if n := testing.AllocsPerRun(200, func() {
		s.Add(100, 200)     // insert
		s.Add(150, 250)     // extend
		s.Add(400, 500)     // second span
		s.Add(200, 400)     // merge both
		s.Remove(150, 450)  // split-free shrink from the middle
		s.Remove(0, 600)    // drop everything
		s.Add(0, 100)       //
		s.Remove(20, 30)    // split one span into two
		s.PopFirst(15)      // partial pop
		s.PopFirst(1 << 20) // whole-span pop
		s.PopFirst(1 << 20) // drain
		if !s.Empty() {
			t.Fatal("set not drained")
		}
	}); n != 0 {
		t.Errorf("steady-state Add/Remove/PopFirst: %v allocs/op, want 0", n)
	}
}
