package intervals

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddCoalesceAdjacent(t *testing.T) {
	var s Set
	s.Add(0, 10)
	s.Add(10, 20)
	if s.Count() != 1 {
		t.Fatalf("adjacent spans not merged: %+v", s.Spans())
	}
	if s.Total() != 20 {
		t.Fatalf("Total = %d, want 20", s.Total())
	}
}

func TestAddCoalesceOverlap(t *testing.T) {
	var s Set
	s.Add(0, 10)
	s.Add(30, 40)
	s.Add(5, 35)
	if s.Count() != 1 || s.Total() != 40 {
		t.Fatalf("overlap merge wrong: %+v", s.Spans())
	}
}

func TestAddDisjoint(t *testing.T) {
	var s Set
	s.Add(100, 200)
	s.Add(0, 50)
	s.Add(300, 400)
	sp := s.Spans()
	if len(sp) != 3 || sp[0].Start != 0 || sp[1].Start != 100 || sp[2].Start != 300 {
		t.Fatalf("spans not sorted/disjoint: %+v", sp)
	}
}

func TestAddIgnoresEmpty(t *testing.T) {
	var s Set
	s.Add(10, 10)
	s.Add(20, 5)
	if !s.Empty() {
		t.Fatalf("degenerate adds changed the set: %+v", s.Spans())
	}
}

func TestRemoveSplit(t *testing.T) {
	var s Set
	s.Add(0, 100)
	s.Remove(40, 60)
	sp := s.Spans()
	if len(sp) != 2 || sp[0] != (Span{0, 40}) || sp[1] != (Span{60, 100}) {
		t.Fatalf("split wrong: %+v", sp)
	}
	if s.Total() != 80 {
		t.Fatalf("Total = %d, want 80", s.Total())
	}
}

func TestRemoveEdges(t *testing.T) {
	var s Set
	s.Add(0, 100)
	s.Remove(0, 10)   // trim head
	s.Remove(90, 200) // trim tail beyond end
	sp := s.Spans()
	if len(sp) != 1 || sp[0] != (Span{10, 90}) {
		t.Fatalf("edge trims wrong: %+v", sp)
	}
	s.Remove(0, 200) // remove everything
	if !s.Empty() {
		t.Fatal("set not emptied")
	}
}

func TestContainsOverlaps(t *testing.T) {
	var s Set
	s.Add(10, 20)
	s.Add(30, 40)
	cases := []struct {
		start, end         int64
		contains, overlaps bool
	}{
		{10, 20, true, true},
		{12, 18, true, true},
		{10, 21, false, true},
		{19, 31, false, true},
		{20, 30, false, false},
		{0, 10, false, false},
		{40, 50, false, false},
		{15, 15, true, false}, // empty range
	}
	for _, c := range cases {
		if got := s.Contains(c.start, c.end); got != c.contains {
			t.Errorf("Contains(%d,%d) = %v, want %v", c.start, c.end, got, c.contains)
		}
		if got := s.Overlaps(c.start, c.end); got != c.overlaps {
			t.Errorf("Overlaps(%d,%d) = %v, want %v", c.start, c.end, got, c.overlaps)
		}
	}
}

func TestPopFirst(t *testing.T) {
	var s Set
	s.Add(0, 100)
	s.Add(200, 250)
	sp, ok := s.PopFirst(40)
	if !ok || sp != (Span{0, 40}) {
		t.Fatalf("PopFirst = %+v %v", sp, ok)
	}
	sp, ok = s.PopFirst(1000)
	if !ok || sp != (Span{40, 100}) {
		t.Fatalf("PopFirst = %+v %v", sp, ok)
	}
	sp, ok = s.PopFirst(1000)
	if !ok || sp != (Span{200, 250}) {
		t.Fatalf("PopFirst = %+v %v", sp, ok)
	}
	if _, ok := s.PopFirst(10); ok {
		t.Fatal("PopFirst on empty set returned ok")
	}
}

func TestClear(t *testing.T) {
	var s Set
	s.Add(0, 10)
	s.Clear()
	if !s.Empty() || s.Total() != 0 {
		t.Fatal("Clear did not empty the set")
	}
}

// Property: the set behaves identically to a naive byte map under random
// add/remove sequences, and invariants always hold.
func TestQuickMatchesNaiveModel(t *testing.T) {
	const universe = 512
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Set
		model := make([]bool, universe)
		for i := 0; i < int(steps); i++ {
			a := rng.Int63n(universe)
			b := rng.Int63n(universe)
			if a > b {
				a, b = b, a
			}
			if rng.Intn(3) == 0 {
				s.Remove(a, b)
				for k := a; k < b; k++ {
					model[k] = false
				}
			} else {
				s.Add(a, b)
				for k := a; k < b; k++ {
					model[k] = true
				}
			}
			if err := s.CheckInvariants(); err != nil {
				return false
			}
		}
		var want int64
		for _, v := range model {
			if v {
				want++
			}
		}
		if s.Total() != want {
			return false
		}
		// Spot-check membership at every byte.
		for k := int64(0); k < universe; k++ {
			if s.Overlaps(k, k+1) != model[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: repeatedly popping drains exactly Total() bytes in order.
func TestQuickPopDrains(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Set
		for i := 0; i < int(n%20)+1; i++ {
			a := rng.Int63n(10000)
			s.Add(a, a+rng.Int63n(500)+1)
		}
		want := s.Total()
		var got, prevEnd int64
		for {
			sp, ok := s.PopFirst(rng.Int63n(200) + 1)
			if !ok {
				break
			}
			if sp.Start < prevEnd {
				return false // must come out in ascending order
			}
			prevEnd = sp.End
			got += sp.Len()
		}
		return got == want && s.Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
