package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"testing"
)

func TestPoolDefaults(t *testing.T) {
	o := tinyOptions()
	if o.sem != nil {
		t.Fatal("options start with a pool attached")
	}
	p := o.Pool(3)
	if p.Jobs != 3 || cap(p.sem) != 3 {
		t.Fatalf("Pool(3): Jobs=%d cap=%d, want 3/3", p.Jobs, cap(p.sem))
	}
	o.Jobs = 2
	p = o.Pool(0)
	if p.Jobs != 2 || cap(p.sem) != 2 {
		t.Fatalf("Pool(0) with Jobs=2: Jobs=%d cap=%d, want 2/2", p.Jobs, cap(p.sem))
	}
	p = tinyOptions().Pool(0)
	if p.Jobs < 1 || cap(p.sem) != p.Jobs {
		t.Fatalf("Pool(0) with no Jobs: Jobs=%d cap=%d, want GOMAXPROCS-sized pool", p.Jobs, cap(p.sem))
	}
}

func TestValidateRejectsNegativeJobs(t *testing.T) {
	o := tinyOptions()
	o.Jobs = -1
	if err := o.Validate(); err == nil {
		t.Fatal("negative Jobs accepted")
	}
}

func TestRunParSerialWithoutPool(t *testing.T) {
	o := tinyOptions() // no pool: must run in index order on this goroutine
	var order []int
	err := runPar(o, 5, func(i int) error {
		order = append(order, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial runPar order %v, want ascending", order)
		}
	}
}

func TestRunParFirstErrorByIndex(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	for _, jobs := range []int{1, 4} {
		o := tinyOptions().Pool(jobs)
		err := runPar(o, 8, func(i int) error {
			switch i {
			case 2:
				return errLow
			case 6:
				return errHigh
			default:
				return nil
			}
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("jobs=%d: got %v, want the lowest-index error %v", jobs, err, errLow)
		}
	}
}

func TestRunParRunsEveryIndexOnce(t *testing.T) {
	o := tinyOptions().Pool(4)
	const n = 32
	var counts [n]atomic.Int32
	if err := runPar(o, n, func(i int) error {
		counts[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("index %d ran %d times, want 1", i, got)
		}
	}
}

func TestAcquireBoundsInFlight(t *testing.T) {
	o := tinyOptions().Pool(2)
	var inflight, peak atomic.Int32
	err := runPar(o, 16, func(i int) error {
		release := o.acquire()
		defer release()
		cur := inflight.Add(1)
		defer inflight.Add(-1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				return nil
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 2 {
		t.Fatalf("peak in-flight %d exceeds the pool size 2", p)
	}
}

func TestRunAllPartialOutputOnError(t *testing.T) {
	boom := errors.New("boom")
	list := []Experiment{
		{ID: "a", Run: func(o Options, w io.Writer) error { fmt.Fprintln(w, "alpha"); return nil }},
		{ID: "b", Run: func(o Options, w io.Writer) error { fmt.Fprintln(w, "partial"); return boom }},
		{ID: "c", Run: func(o Options, w io.Writer) error { fmt.Fprintln(w, "gamma"); return nil }},
	}
	var buf bytes.Buffer
	err := RunAll(tinyOptions().Pool(4), &buf, list)
	if !errors.Is(err, boom) || !strings.Contains(err.Error(), "b:") {
		t.Fatalf("got error %v, want %v attributed to experiment b", err, boom)
	}
	out := buf.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "partial") {
		t.Errorf("output lost the completed prefix:\n%s", out)
	}
	if strings.Contains(out, "gamma") {
		t.Errorf("output continued past the failing experiment:\n%s", out)
	}
}

// TestRunAllDeterministic is the tentpole acceptance check: the bytes
// RunAll writes are identical to a serial experiment-by-experiment run
// and invariant under the job count.
func TestRunAllDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiment sweep three times")
	}
	o := tinyOptions()
	list := All()

	var serial bytes.Buffer
	for i, e := range list {
		if i > 0 {
			io.WriteString(&serial, separator)
		}
		if err := e.Run(o, &serial); err != nil {
			t.Fatalf("serial %s: %v", e.ID, err)
		}
	}

	for _, jobs := range []int{1, 4} {
		var buf bytes.Buffer
		if err := RunAll(o.Pool(jobs), &buf, list); err != nil {
			t.Fatalf("RunAll jobs=%d: %v", jobs, err)
		}
		if !bytes.Equal(serial.Bytes(), buf.Bytes()) {
			t.Errorf("RunAll jobs=%d output differs from the serial run (serial %d bytes, got %d)",
				jobs, serial.Len(), buf.Len())
		}
	}
}
