package experiments

import (
	"fmt"
	"io"

	"github.com/rolo-storage/rolo/internal/array"
	"github.com/rolo-storage/rolo/internal/baseline"
	"github.com/rolo-storage/rolo/internal/core"
	"github.com/rolo-storage/rolo/internal/disk"
	"github.com/rolo-storage/rolo/internal/raid"
	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "recovery",
		Title: "Section III-C/D: failure recovery — spin-ups per failure and logging continuity",
		Run:   runRecovery,
	})
}

// runRecovery quantifies the paper's single-point-of-failure argument: a
// failed on-duty logger in RoLo wakes at most one disk and logging never
// stops, while GRAID's dedicated log disk failing forces every mirror up.
func runRecovery(o Options, w io.Writer) error {
	if err := o.Validate(); err != nil {
		return err
	}
	fmt.Fprintf(w, "Failure recovery (scale=%.2f, %d disks): spin-ups caused by one failure\n\n",
		o.Scale, 2*o.Pairs)

	buildArray := func(extras int) (*array.Array, *sim.Engine, []trace.Record, error) {
		eng := sim.New()
		diskCap := scaleBytes(18.4*(1<<30), o.Scale)
		free := scaleBytes(8*(1<<30), o.Scale)
		data := diskCap - free
		data -= data % (64 << 10)
		geom := raid.Geometry{Pairs: o.Pairs, StripeUnitBytes: 64 << 10, DataBytesPerDisk: data}
		arr, err := array.New(eng, geom, disk.Ultrastar36Z15().WithCapacity(diskCap), extras)
		if err != nil {
			return nil, nil, nil, err
		}
		syn := trace.Uniform70Random64K(50, 2*sim.Minute, 33)
		syn.WriteWorkingSetBytes = geom.VolumeBytes() / 4
		recs, err := syn.Generate(geom.VolumeBytes())
		if err != nil {
			return nil, nil, nil, err
		}
		return arr, eng, recs, nil
	}

	t := &table{header: []string{"scheme", "failure", "spin-ups", "logging continues", "notes"}}

	// RoLo-P: fail the on-duty mirror mid-run.
	{
		arr, eng, recs, err := buildArray(0)
		if err != nil {
			return err
		}
		ctrl, err := core.New(arr, core.FlavorP, core.DefaultConfig())
		if err != nil {
			return err
		}
		for i := range recs {
			rec := recs[i]
			if _, err := eng.Schedule(rec.At, func(sim.Time) { _ = ctrl.Submit(rec) }); err != nil {
				return err
			}
		}
		eng.RunUntil(30 * sim.Second)
		before := arr.TotalSpinCycles()
		plan, err := ctrl.FailMirror(ctrl.OnDuty())
		if err != nil {
			return err
		}
		eng.Run()
		t.add("RoLo-P", "on-duty mirror", fmt.Sprintf("%d", arr.TotalSpinCycles()-before),
			fmt.Sprintf("%v", plan.NewOnDuty >= 0),
			fmt.Sprintf("duty handed to M%d at once", plan.NewOnDuty))
	}

	// RoLo-P: fail a primary.
	{
		arr, eng, recs, err := buildArray(0)
		if err != nil {
			return err
		}
		ctrl, err := core.New(arr, core.FlavorP, core.DefaultConfig())
		if err != nil {
			return err
		}
		for i := range recs {
			rec := recs[i]
			if _, err := eng.Schedule(rec.At, func(sim.Time) { _ = ctrl.Submit(rec) }); err != nil {
				return err
			}
		}
		eng.RunUntil(30 * sim.Second)
		before := arr.TotalSpinCycles()
		victim := (ctrl.OnDuty() + 1) % arr.Geom.Pairs
		plan, err := ctrl.FailPrimary(victim)
		if err != nil {
			return err
		}
		eng.Run()
		t.add("RoLo-P", fmt.Sprintf("primary P%d", victim),
			fmt.Sprintf("%d", arr.TotalSpinCycles()-before), "true",
			fmt.Sprintf("woke mirror + %d log-source logger(s)", len(plan.LogSourceLoggers)))
	}

	// GRAID: fail the dedicated log disk.
	{
		arr, eng, recs, err := buildArray(1)
		if err != nil {
			return err
		}
		gcfg := baseline.DefaultGRAIDConfig()
		gcfg.LogCapacityBytes = scaleBytes(16*(1<<30), o.Scale)
		ctrl, err := baseline.NewGRAID(arr, gcfg)
		if err != nil {
			return err
		}
		for i := range recs {
			rec := recs[i]
			if _, err := eng.Schedule(rec.At, func(sim.Time) { _ = ctrl.Submit(rec) }); err != nil {
				return err
			}
		}
		eng.RunUntil(30 * sim.Second)
		before := arr.TotalSpinCycles()
		exposed := ctrl.FailLogDisk()
		eng.Run()
		t.add("GRAID", "dedicated log disk",
			fmt.Sprintf("%d", arr.TotalSpinCycles()-before), "false",
			fmt.Sprintf("%.0f MB exposed; every mirror woke", float64(exposed)/(1<<20)))
	}

	if err := t.write(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "RoLo replaces a failed logger instantly (no single point of failure,")
	fmt.Fprintln(w, "Section III-D); GRAID's log-disk failure exposes every logged write and")
	fmt.Fprintln(w, "wakes the whole mirror set for an emergency destage.")
	return nil
}
