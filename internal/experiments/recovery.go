package experiments

import (
	"fmt"
	"io"

	"github.com/rolo-storage/rolo/internal/array"
	"github.com/rolo-storage/rolo/internal/baseline"
	"github.com/rolo-storage/rolo/internal/core"
	"github.com/rolo-storage/rolo/internal/disk"
	"github.com/rolo-storage/rolo/internal/raid"
	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "recovery",
		Title: "Section III-C/D: failure recovery — spin-ups per failure and logging continuity",
		Run:   runRecovery,
	})
}

// recoveryArray builds the shared array-plus-workload fixture of the
// failure scenarios.
func recoveryArray(o Options, extras int) (*array.Array, *sim.Engine, []trace.Record, error) {
	eng := sim.New()
	diskCap := scaleBytes(18.4*(1<<30), o.Scale)
	free := scaleBytes(8*(1<<30), o.Scale)
	data := diskCap - free
	data -= data % (64 << 10)
	geom := raid.Geometry{Pairs: o.Pairs, StripeUnitBytes: 64 << 10, DataBytesPerDisk: data}
	arr, err := array.New(eng, geom, disk.Ultrastar36Z15().WithCapacity(diskCap), extras)
	if err != nil {
		return nil, nil, nil, err
	}
	syn := trace.Uniform70Random64K(50, 2*sim.Minute, 33)
	syn.WriteWorkingSetBytes = geom.VolumeBytes() / 4
	recs, err := syn.Generate(geom.VolumeBytes())
	if err != nil {
		return nil, nil, nil, err
	}
	return arr, eng, recs, nil
}

// recoverOnDutyMirror fails RoLo-P's on-duty mirror mid-run.
func recoverOnDutyMirror(o Options) ([]string, error) {
	defer o.acquire()() // one pool slot per leaf simulation
	arr, eng, recs, err := recoveryArray(o, 0)
	if err != nil {
		return nil, err
	}
	ctrl, err := core.New(arr, core.FlavorP, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	for i := range recs {
		rec := recs[i]
		if _, err := eng.Schedule(rec.At, func(sim.Time) { _ = ctrl.Submit(rec) }); err != nil {
			return nil, err
		}
	}
	eng.RunUntil(30 * sim.Second)
	before := arr.TotalSpinCycles()
	plan, err := ctrl.FailMirror(ctrl.OnDuty())
	if err != nil {
		return nil, err
	}
	eng.Run()
	return []string{"RoLo-P", "on-duty mirror", fmt.Sprintf("%d", arr.TotalSpinCycles()-before),
		fmt.Sprintf("%v", plan.NewOnDuty >= 0),
		fmt.Sprintf("duty handed to M%d at once", plan.NewOnDuty)}, nil
}

// recoverPrimary fails a RoLo-P primary.
func recoverPrimary(o Options) ([]string, error) {
	defer o.acquire()() // one pool slot per leaf simulation
	arr, eng, recs, err := recoveryArray(o, 0)
	if err != nil {
		return nil, err
	}
	ctrl, err := core.New(arr, core.FlavorP, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	for i := range recs {
		rec := recs[i]
		if _, err := eng.Schedule(rec.At, func(sim.Time) { _ = ctrl.Submit(rec) }); err != nil {
			return nil, err
		}
	}
	eng.RunUntil(30 * sim.Second)
	before := arr.TotalSpinCycles()
	victim := (ctrl.OnDuty() + 1) % arr.Geom.Pairs
	plan, err := ctrl.FailPrimary(victim)
	if err != nil {
		return nil, err
	}
	eng.Run()
	return []string{"RoLo-P", fmt.Sprintf("primary P%d", victim),
		fmt.Sprintf("%d", arr.TotalSpinCycles()-before), "true",
		fmt.Sprintf("woke mirror + %d log-source logger(s)", len(plan.LogSourceLoggers))}, nil
}

// recoverGRAIDLogDisk fails GRAID's dedicated log disk.
func recoverGRAIDLogDisk(o Options) ([]string, error) {
	defer o.acquire()() // one pool slot per leaf simulation
	arr, eng, recs, err := recoveryArray(o, 1)
	if err != nil {
		return nil, err
	}
	gcfg := baseline.DefaultGRAIDConfig()
	gcfg.LogCapacityBytes = scaleBytes(16*(1<<30), o.Scale)
	ctrl, err := baseline.NewGRAID(arr, gcfg)
	if err != nil {
		return nil, err
	}
	for i := range recs {
		rec := recs[i]
		if _, err := eng.Schedule(rec.At, func(sim.Time) { _ = ctrl.Submit(rec) }); err != nil {
			return nil, err
		}
	}
	eng.RunUntil(30 * sim.Second)
	before := arr.TotalSpinCycles()
	exposed := ctrl.FailLogDisk()
	eng.Run()
	return []string{"GRAID", "dedicated log disk",
		fmt.Sprintf("%d", arr.TotalSpinCycles()-before), "false",
		fmt.Sprintf("%.0f MB exposed; every mirror woke", float64(exposed)/(1<<20))}, nil
}

// runRecovery quantifies the paper's single-point-of-failure argument: a
// failed on-duty logger in RoLo wakes at most one disk and logging never
// stops, while GRAID's dedicated log disk failing forces every mirror up.
// The three failure scenarios are independent simulations and fan out
// across the option pool.
func runRecovery(o Options, w io.Writer) error {
	if err := o.Validate(); err != nil {
		return err
	}
	fmt.Fprintf(w, "Failure recovery (scale=%.2f, %d disks): spin-ups caused by one failure\n\n",
		o.Scale, 2*o.Pairs)

	scenarios := []func(Options) ([]string, error){
		recoverOnDutyMirror,
		recoverPrimary,
		recoverGRAIDLogDisk,
	}
	rows := make([][]string, len(scenarios))
	if err := runPar(o, len(scenarios), func(i int) error {
		row, err := scenarios[i](o)
		rows[i] = row
		return err
	}); err != nil {
		return err
	}

	t := &table{header: []string{"scheme", "failure", "spin-ups", "logging continues", "notes"}}
	for _, row := range rows {
		t.add(row...)
	}
	if err := t.write(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "RoLo replaces a failed logger instantly (no single point of failure,")
	fmt.Fprintln(w, "Section III-D); GRAID's log-disk failure exposes every logged write and")
	fmt.Fprintln(w, "wakes the whole mirror set for an emergency destage.")
	return nil
}
