package experiments

import (
	"fmt"
	"io"
	"sync"

	"github.com/rolo-storage/rolo"
)

func init() {
	register(Experiment{
		ID:    "fig10",
		Title: "Figure 10: energy and mean response time vs RAID10 (src2_2, proj_0)",
		Run:   runFig10,
	})
	register(Experiment{
		ID:    "table1",
		Title: "Table I: disk spin up/down counts per scheme (src2_2, proj_0)",
		Run:   runTable1,
	})
	register(Experiment{
		ID:    "table4",
		Title: "Table IV: energy / performance / reliability comparison summary",
		Run:   runTable4,
	})
	register(Experiment{
		ID:    "table5",
		Title: "Table V: RoLo-E read characteristics under src2_2 and proj_0",
		Run:   runTable5,
	})
}

// mainResults runs all five schemes over the two write-intensive traces,
// memoized per (scale, pairs) so the Figure 10 family of experiments pays
// for the simulations once — even when fig10, table1, table4 and table5
// ask for the same key concurrently under RunAll: the first caller
// computes, everyone else waits on the entry's once.
type mainKey struct {
	scale float64
	pairs int
}

// mainEntry is one memoized (scale, pairs) computation. The once provides
// both in-flight deduplication and the happens-before edge publishing res
// and err to every waiter.
type mainEntry struct {
	once sync.Once
	res  map[string]map[rolo.Scheme]rolo.Report
	err  error
}

// mainMemo is the cross-experiment result cache. Only the entry map needs
// a lock: entries themselves synchronize through their once.
type mainMemo struct {
	mu sync.Mutex
	//rolosan:guardedby mu
	entries map[mainKey]*mainEntry
}

// entry returns the memo cell for key, creating it on first request.
func (m *mainMemo) entry(key mainKey) *mainEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.entries == nil {
		m.entries = map[mainKey]*mainEntry{}
	}
	e := m.entries[key]
	if e == nil {
		e = &mainEntry{}
		m.entries[key] = e
	}
	return e
}

var mainCache mainMemo

func mainResults(o Options) (map[string]map[rolo.Scheme]rolo.Report, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	e := mainCache.entry(mainKey{o.Scale, o.Pairs})
	e.once.Do(func() { e.res, e.err = computeMain(o) })
	return e.res, e.err
}

// computeMain fans the (profile, scheme) grid out across the option pool
// and assembles the nested result maps single-threadedly afterwards, so
// the maps are never written concurrently.
func computeMain(o Options) (map[string]map[rolo.Scheme]rolo.Report, error) {
	type cell struct {
		trace  string
		scheme rolo.Scheme
	}
	var jobs []cell
	for _, tr := range mainTraces {
		for _, s := range rolo.Schemes {
			jobs = append(jobs, cell{tr, s})
		}
	}
	reps := make([]rolo.Report, len(jobs))
	err := runPar(o, len(jobs), func(i int) error {
		rep, err := runProfile(jobs[i].scheme, o, jobs[i].trace, 8, 64<<10)
		reps[i] = rep
		return err
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]map[rolo.Scheme]rolo.Report, len(mainTraces))
	for i, j := range jobs {
		if out[j.trace] == nil {
			out[j.trace] = make(map[rolo.Scheme]rolo.Report, len(rolo.Schemes))
		}
		out[j.trace][j.scheme] = reps[i]
	}
	return out, nil
}

func runFig10(o Options, w io.Writer) error {
	res, err := mainResults(o)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 10(a): energy consumption normalized to RAID10 (scale=%.2f, %d disks)\n",
		o.Scale, 2*o.Pairs)
	ta := &table{header: []string{"trace", "RAID10", "GRAID", "RoLo-P", "RoLo-R", "RoLo-E"}}
	for _, tr := range mainTraces {
		base := res[tr][rolo.SchemeRAID10].EnergyJ
		row := []string{tr}
		for _, s := range rolo.Schemes {
			row = append(row, f3(res[tr][s].EnergyJ/base))
		}
		ta.add(row...)
	}
	if err := ta.write(w); err != nil {
		return err
	}

	fmt.Fprintln(w)
	fmt.Fprintln(w, "Figure 10(b): mean response time normalized to RAID10")
	tb := &table{header: []string{"trace", "RAID10", "GRAID", "RoLo-P", "RoLo-R", "RoLo-E"}}
	for _, tr := range mainTraces {
		base := res[tr][rolo.SchemeRAID10].MeanResponseMs
		row := []string{tr}
		for _, s := range rolo.Schemes {
			row = append(row, f3(res[tr][s].MeanResponseMs/base))
		}
		tb.add(row...)
	}
	if err := tb.write(w); err != nil {
		return err
	}

	fmt.Fprintln(w)
	fmt.Fprintln(w, "Raw values:")
	tc := &table{header: []string{"trace", "scheme", "energy(J)", "mean(ms)", "p99(ms)", "spins", "rot", "dest"}}
	for _, tr := range mainTraces {
		for _, s := range rolo.Schemes {
			r := res[tr][s]
			tc.add(tr, s.String(), fmt.Sprintf("%.0f", r.EnergyJ), f2(r.MeanResponseMs),
				f1(r.P99ResponseMs), fmt.Sprintf("%d", r.SpinCycles),
				fmt.Sprintf("%d", r.Rotations), fmt.Sprintf("%d", r.Destages))
		}
	}
	return tc.write(w)
}

func runTable1(o Options, w io.Writer) error {
	res, err := mainResults(o)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Table I: number of disk spin up/down events (scale=%.2f, %d disks)\n",
		o.Scale, 2*o.Pairs)
	t := &table{header: []string{"trace", "RAID10", "GRAID", "RoLo-P", "RoLo-R", "RoLo-E"}}
	for _, tr := range mainTraces {
		row := []string{tr}
		for _, s := range rolo.Schemes {
			row = append(row, fmt.Sprintf("%d", res[tr][s].SpinCycles))
		}
		t.add(row...)
	}
	return t.write(w)
}

func runTable4(o Options, w io.Writer) error {
	res, err := mainResults(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table IV: comparison among RAID10, GRAID, RoLo-P, RoLo-R and RoLo-E")
	t := &table{header: []string{
		"scheme", "trace",
		"energy saved/RAID10", "energy saved/GRAID",
		"perf gained/RAID10", "perf gained/GRAID",
	}}
	for _, s := range []rolo.Scheme{rolo.SchemeRoLoP, rolo.SchemeRoLoR, rolo.SchemeRoLoE} {
		for _, tr := range mainTraces {
			r := res[tr][s]
			raid := res[tr][rolo.SchemeRAID10]
			graid := res[tr][rolo.SchemeGRAID]
			t.add(s.String(), tr,
				pct(1-r.EnergyJ/raid.EnergyJ),
				pct(1-r.EnergyJ/graid.EnergyJ),
				pct(1-r.MeanResponseMs/raid.MeanResponseMs),
				pct(1-r.MeanResponseMs/graid.MeanResponseMs),
			)
		}
	}
	if err := t.write(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Reliability (analytic, Section IV): RoLo-R > RAID10 > RoLo-P > GRAID;")
	fmt.Fprintln(w, "RoLo-P/R spin ~10x less often than GRAID; RoLo-E suits write-only workloads.")
	return nil
}

func runTable5(o Options, w io.Writer) error {
	res, err := mainResults(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table V: RoLo-E read behaviour under src2_2 and proj_0")
	t := &table{header: []string{"trace", "read ratio", "read hit rate", "burstiness", "perf gained/RAID10"}}
	burst := map[string]string{"src2_2": "very high", "proj_0": "very low"}
	readRatio := map[string]float64{"src2_2": 1 - 0.9962, "proj_0": 1 - 0.9490}
	for _, tr := range mainTraces {
		r := res[tr][rolo.SchemeRoLoE]
		raid := res[tr][rolo.SchemeRAID10]
		t.add(tr, pct(readRatio[tr]), pct(r.ReadHitRate), burst[tr],
			pct(1-r.MeanResponseMs/raid.MeanResponseMs))
	}
	return t.write(w)
}
