package experiments

import (
	"fmt"
	"io"

	"github.com/rolo-storage/rolo/internal/disk"
	"github.com/rolo-storage/rolo/internal/parity"
	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "parity",
		Title: "Section VII (future work): RoLo on a parity array — small-write penalty",
		Run:   runParity,
	})
}

// runParity evaluates the paper's future-work direction: rotated logging
// transplanted onto RAID5. The metric is the small-write penalty — RAID5
// pays read-modify-write (four I/Os on the request path) while RoLo5 logs
// the second copy sequentially (two I/Os) and rebuilds parity in idle
// slots.
func runParity(o Options, w io.Writer) error {
	if err := o.Validate(); err != nil {
		return err
	}
	disks := 2 * o.Pairs // comparable spindle count to the RAID10 runs
	fmt.Fprintf(w, "RoLo on parity storage (RAID5, %d disks, scale=%.2f)\n\n", disks, o.Scale)

	t := &table{header: []string{
		"iops", "RAID5 mean(ms)", "RoLo5 mean(ms)", "speedup",
		"logged", "rmw-fallback", "stale@end",
	}}
	rates := []float64{20, 60, 120}
	rows := make([][]string, len(rates))
	if err := runPar(o, len(rates), func(ri int) error {
		row, err := parityPoint(o, disks, rates[ri])
		rows[ri] = row
		return err
	}); err != nil {
		return err
	}
	for _, row := range rows {
		t.add(row...)
	}
	if err := t.write(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Logged small writes cost two I/Os instead of RAID5's four; parity is")
	fmt.Fprintln(w, "reconstructed by an idle-slot sweeper and log extents are reclaimed per")
	fmt.Fprintln(w, "stripe — rotated logging and decentralized destaging on parity storage.")
	return nil
}

// parityPoint simulates RAID5 and RoLo5 at one request rate and returns
// the formatted table row. Both runs share one pool slot: the pair is a
// single leaf because the speedup column relates the two runs.
func parityPoint(o Options, disks int, iops float64) ([]string, error) {
	defer o.acquire()() // one pool slot per leaf simulation
	diskCap := scaleBytes(18.4*(1<<30), o.Scale)
	free := scaleBytes(8*(1<<30), o.Scale)
	data := diskCap - free
	data -= data % (64 << 10)
	geom := parity.Geometry{Disks: disks, StripUnitBytes: 64 << 10, DataBytesPerDisk: data}
	syn := trace.Uniform70Random64K(iops, 3*sim.Minute, 17)

	runOne := func(useRoLo bool) (mean float64, logged, rmw, stale int64, err error) {
		eng := sim.New()
		arr, err := parity.NewArray(eng, geom, disk.Ultrastar36Z15().WithCapacity(diskCap))
		if err != nil {
			return 0, 0, 0, 0, err
		}
		recs, err := syn.Generate(geom.VolumeBytes())
		if err != nil {
			return 0, 0, 0, 0, err
		}
		var submit func(trace.Record) error
		var finish func() (float64, int64, int64, int64)
		if useRoLo {
			c, err := parity.NewRoLo5(arr, parity.DefaultRoLo5Config())
			if err != nil {
				return 0, 0, 0, 0, err
			}
			submit = c.Submit
			finish = func() (float64, int64, int64, int64) {
				return c.Responses().Mean(), c.LoggedWrites(), c.DirectRMW(), c.StaleParityStripes()
			}
		} else {
			c := parity.NewRAID5(arr)
			submit = c.Submit
			finish = func() (float64, int64, int64, int64) {
				return c.Responses().Mean(), 0, c.RMWWrites(), 0
			}
		}
		for i := range recs {
			rec := recs[i]
			if _, err := eng.Schedule(rec.At, func(sim.Time) { _ = submit(rec) }); err != nil {
				return 0, 0, 0, 0, err
			}
		}
		eng.Run()
		m, l, r, s := finish()
		return m, l, r, s, nil
	}

	raidMean, _, _, _, err := runOne(false)
	if err != nil {
		return nil, err
	}
	roloMean, logged, rmw, stale, err := runOne(true)
	if err != nil {
		return nil, err
	}
	return []string{fmt.Sprintf("%.0f", iops), f2(raidMean), f2(roloMean),
		fmt.Sprintf("%.2fx", raidMean/roloMean),
		fmt.Sprintf("%d", logged), fmt.Sprintf("%d", rmw), fmt.Sprintf("%d", stale)}, nil
}
