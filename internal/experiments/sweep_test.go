package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestAllExperimentsRun executes every registered experiment end to end at
// miniature scale. Beyond smoke coverage, it guarantees the whole
// evaluation is regenerable from a clean checkout with one command.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	o := tinyOptions()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(o, &buf); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if len(strings.TrimSpace(out)) == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
			// Every experiment's output carries at least one table row
			// with numbers in it.
			hasDigit := false
			for _, r := range out {
				if r >= '0' && r <= '9' {
					hasDigit = true
					break
				}
			}
			if !hasDigit {
				t.Fatalf("%s output has no numbers:\n%s", e.ID, out)
			}
		})
	}
}
