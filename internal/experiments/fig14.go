package experiments

import (
	"fmt"
	"io"

	"github.com/rolo-storage/rolo"
)

func init() {
	register(Experiment{
		ID:    "fig14",
		Title: "Figure 14: energy and response time under non-write-intensive traces",
		Run:   runFig14,
	})
}

// lightTraces are the five non-write-intensive traces of Table VI, in the
// paper's presentation order.
var lightTraces = []string{"mds_0", "hm_1", "rsrch_2", "wdev_0", "web_1"}

func runFig14(o Options, w io.Writer) error {
	if err := o.Validate(); err != nil {
		return err
	}
	var cells []profileCell
	for _, tr := range lightTraces {
		for _, s := range rolo.Schemes {
			cells = append(cells, profileCell{tr, s, 8, 64 << 10})
		}
	}
	reps, err := runCells(o, cells)
	if err != nil {
		return err
	}
	results := make(map[string]map[rolo.Scheme]rolo.Report, len(lightTraces))
	for i, c := range cells {
		if results[c.tr] == nil {
			results[c.tr] = make(map[rolo.Scheme]rolo.Report, len(rolo.Schemes))
		}
		results[c.tr][c.scheme] = reps[i]
	}

	fmt.Fprintf(w, "Figure 14(a): energy consumption normalized to RAID10 (scale=%.2f)\n", o.Scale)
	ta := &table{header: []string{"trace", "RAID10", "GRAID", "RoLo-P", "RoLo-R", "RoLo-E"}}
	for _, tr := range lightTraces {
		base := results[tr][rolo.SchemeRAID10].EnergyJ
		row := []string{tr}
		for _, s := range rolo.Schemes {
			row = append(row, f3(results[tr][s].EnergyJ/base))
		}
		ta.add(row...)
	}
	if err := ta.write(w); err != nil {
		return err
	}

	fmt.Fprintln(w)
	fmt.Fprintln(w, "Figure 14(b): mean response time normalized to RAID10 (log-scale axis in the paper)")
	tb := &table{header: []string{"trace", "RAID10", "GRAID", "RoLo-P", "RoLo-R", "RoLo-E"}}
	for _, tr := range lightTraces {
		base := results[tr][rolo.SchemeRAID10].MeanResponseMs
		row := []string{tr}
		for _, s := range rolo.Schemes {
			row = append(row, f2(results[tr][s].MeanResponseMs/base))
		}
		tb.add(row...)
	}
	if err := tb.write(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "On non-write-intensive workloads RoLo-P/R track GRAID closely; the")
	fmt.Fprintln(w, "paper's conclusion is that deploying RoLo there does negligible harm.")
	return nil
}
