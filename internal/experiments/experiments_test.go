package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func tinyOptions() Options {
	return Options{Scale: 0.01, Pairs: 4}
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatalf("default options rejected: %v", err)
	}
	bad := []Options{
		{Scale: 0, Pairs: 4},
		{Scale: 1.5, Pairs: 4},
		{Scale: 0.1, Pairs: 1},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, o)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the evaluation must be regenerable.
	want := []string{
		"eqs", "fig2", "fig3", "fig9", "fig10", "fig11", "fig12",
		"fig13", "fig14", "table1", "table4", "table5", "stripe", "disksize", "recovery", "parity",
	}
	for _, id := range want {
		if _, err := Lookup(id); err != nil {
			t.Errorf("missing experiment %q: %v", id, err)
		}
	}
	if len(All()) < len(want) {
		t.Errorf("registry has %d experiments, want >= %d", len(All()), len(want))
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestFig9RunsAndOrders(t *testing.T) {
	var buf bytes.Buffer
	e, err := Lookup("fig9")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(tinyOptions(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, scheme := range []string{"RoLo-R", "RAID10", "RoLo-P", "GRAID"} {
		if !strings.Contains(out, scheme) {
			t.Errorf("fig9 output missing %s:\n%s", scheme, out)
		}
	}
}

func TestEqsAgree(t *testing.T) {
	var buf bytes.Buffer
	e, err := Lookup("eqs")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(tinyOptions(), &buf); err != nil {
		t.Fatal(err)
	}
	// Every ratio row must be close to 1 (chain vs closed form).
	for _, line := range strings.Split(buf.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 5 || fields[0] == "scheme" {
			continue
		}
		ratio := fields[4]
		if !strings.HasPrefix(ratio, "0.9") && !strings.HasPrefix(ratio, "1.0") {
			t.Errorf("chain/closed ratio %s out of line: %s", ratio, line)
		}
	}
}

// TestMainExperimentsShape runs the heart of the evaluation at miniature
// scale and asserts the paper's qualitative conclusions hold.
func TestMainExperimentsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	// Shape assertions need enough mirrors for the 10x spin contrast and
	// loggers big enough to amortize spin-ups; 0.02-scale, 20-disk runs
	// keep the test under a minute.
	o := Options{Scale: 0.02, Pairs: 10}
	res, err := mainResults(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range mainTraces {
		byScheme := res[tr]
		var raid, graid, p, rr, e float64
		var raidSpin, graidSpin, pSpin, eSpin int
		for s, rep := range byScheme {
			switch s.String() {
			case "RAID10":
				raid, raidSpin = rep.EnergyJ, rep.SpinCycles
			case "GRAID":
				graid, graidSpin = rep.EnergyJ, rep.SpinCycles
			case "RoLo-P":
				p, pSpin = rep.EnergyJ, rep.SpinCycles
			case "RoLo-R":
				rr = rep.EnergyJ
			case "RoLo-E":
				e, eSpin = rep.EnergyJ, rep.SpinCycles
			}
		}
		// Energy ordering: RoLo-E < RoLo-P <= GRAID < RAID10 (paper Fig
		// 10a; the P/GRAID gap is small, so allow a whisker).
		if !(e < p && p <= graid*1.05 && graid < raid) {
			t.Errorf("%s: energy ordering violated: E=%.0f P=%.0f R=%.0f G=%.0f RAID=%.0f",
				tr, e, p, rr, graid, raid)
		}
		// RoLo-E must save well over half of RAID10's energy.
		if e/raid > 0.5 {
			t.Errorf("%s: RoLo-E saves only %.1f%%", tr, 100*(1-e/raid))
		}
		// Spin counts: RAID10 never spins; RoLo-P spins far less than
		// GRAID; RoLo-E spins the most (paper Table I).
		if raidSpin != 0 {
			t.Errorf("%s: RAID10 spun %d times", tr, raidSpin)
		}
		if pSpin*3 > graidSpin {
			t.Errorf("%s: RoLo-P spins %d vs GRAID %d — expected ~10x fewer", tr, pSpin, graidSpin)
		}
		if eSpin <= graidSpin {
			t.Errorf("%s: RoLo-E spins %d vs GRAID %d — expected more", tr, eSpin, graidSpin)
		}
	}
}

func TestTableWriter(t *testing.T) {
	var buf bytes.Buffer
	tab := &table{header: []string{"a", "bb", "ccc"}}
	tab.add("1", "2", "3")
	tab.add("longer", "x", "y")
	if err := tab.write(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("wrote %d lines, want 3", len(lines))
	}
	if !strings.HasPrefix(lines[1], "1") || !strings.Contains(lines[1], "3") {
		t.Errorf("row mangled: %q", lines[1])
	}
}

func TestScaledConfigAlignment(t *testing.T) {
	for _, scale := range []float64{0.01, 0.05, 0.37, 1} {
		o := Options{Scale: scale, Pairs: 4}
		cfg := scaledConfig(0, o, 8, 64<<10)
		cfg.Scheme = 1 // RAID10
		if err := cfg.Validate(); err != nil {
			t.Errorf("scale %g: %v", scale, err)
		}
		if cfg.Disk.CapacityBytes%(1<<20) != 0 {
			t.Errorf("scale %g: unaligned capacity %d", scale, cfg.Disk.CapacityBytes)
		}
	}
}
