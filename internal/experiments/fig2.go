package experiments

import (
	"fmt"
	"io"

	"github.com/rolo-storage/rolo/internal/array"
	"github.com/rolo-storage/rolo/internal/baseline"
	"github.com/rolo-storage/rolo/internal/disk"
	"github.com/rolo-storage/rolo/internal/metrics"
	"github.com/rolo-storage/rolo/internal/raid"
	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "fig2",
		Title: "Figure 2: impact of logger capacity on destaging interval/energy ratios",
		Run:   runFig2,
	})
	register(Experiment{
		ID:    "fig3",
		Title: "Figure 3: IDLE vs ACTIVE/STANDBY time fractions under different I/O intensities",
		Run:   runFig3,
	})
}

// fig2Run drives the Section II micro-benchmark: a 10-pair RAID10 with
// centralized logging (GRAID), 100 % writes, 70 % random, 64 KB requests
// at a fixed rate, long enough for several logging cycles.
type fig2Result struct {
	phase     *metrics.PhaseLog
	primaries []*disk.Disk
	logDisk   *disk.Disk
	horizon   sim.Time
}

func fig2Run(o Options, logCapBytes int64, iops float64) (*fig2Result, error) {
	defer o.acquire()() // one pool slot per leaf simulation
	eng := sim.New()
	diskCap := scaleBytes(18.4*(1<<30), o.Scale)
	dataBytes := diskCap - diskCap/4 // plenty of data region; log disk is dedicated
	dataBytes -= dataBytes % (64 << 10)
	geom := raid.Geometry{Pairs: 10, StripeUnitBytes: 64 << 10, DataBytesPerDisk: dataBytes}
	cfg := disk.Ultrastar36Z15().WithCapacity(diskCap)
	arr, err := array.New(eng, geom, cfg, 1)
	if err != nil {
		return nil, err
	}
	gcfg := baseline.DefaultGRAIDConfig()
	gcfg.LogCapacityBytes = logCapBytes
	if gcfg.LogCapacityBytes > diskCap {
		gcfg.LogCapacityBytes = diskCap
	}
	ctrl, err := baseline.NewGRAID(arr, gcfg)
	if err != nil {
		return nil, err
	}
	// Run for ~3.5 logging cycles of this configuration.
	cycleBytes := float64(gcfg.LogCapacityBytes) * gcfg.DestageThreshold
	fill := cycleBytes / (iops * 64 * 1024)
	dur := sim.FromSeconds(3.5 * fill)
	syn := trace.Uniform70Random64K(iops, dur, 42)
	syn.WriteWorkingSetBytes = geom.VolumeBytes() / 2
	recs, err := syn.Generate(geom.VolumeBytes())
	if err != nil {
		return nil, err
	}
	res, err := array.Replay(eng, arr, ctrl, recs)
	if err != nil {
		return nil, err
	}
	return &fig2Result{
		phase:     ctrl.Phases(),
		primaries: arr.Primaries,
		logDisk:   arr.Extras[0],
		horizon:   res.Horizon,
	}, nil
}

func runFig2(o Options, w io.Writer) error {
	if err := o.Validate(); err != nil {
		return err
	}
	caps := []float64{8, 12, 16}
	rates := []float64{10, 50, 100, 200}

	fmt.Fprintf(w, "Figure 2(a,b): per-phase mean interval and energy at 100 IOPS (scale=%.2f)\n", o.Scale)
	tab := &table{header: []string{"logger", "log int(s)", "dest int(s)", "log E(J)", "dest E(J)"}}
	abGiBs := []float64{8, 16}
	abRes := make([]*fig2Result, len(abGiBs))
	if err := runPar(o, len(abGiBs), func(i int) error {
		r, err := fig2Run(o, scaleBytes(abGiBs[i]*(1<<30), o.Scale), 100)
		abRes[i] = r
		return err
	}); err != nil {
		return err
	}
	for i, gib := range abGiBs {
		r := abRes[i]
		dur, energy := r.phase.Totals()
		nLog, nDest := 0, 0
		for k := 0; k < r.phase.Len(); k++ {
			if r.phase.At(k).Phase == metrics.Logging {
				nLog++
			} else {
				nDest++
			}
		}
		if nLog == 0 || nDest == 0 {
			return fmt.Errorf("fig2: no complete cycles at %g GB", gib)
		}
		tab.add(fmt.Sprintf("%.0fGBx%.2f", gib, o.Scale),
			f1(dur[metrics.Logging].Seconds()/float64(nLog)),
			f1(dur[metrics.Destaging].Seconds()/float64(nDest)),
			fmt.Sprintf("%.0f", energy[metrics.Logging]/float64(nLog)),
			fmt.Sprintf("%.0f", energy[metrics.Destaging]/float64(nDest)))
	}
	if err := tab.write(w); err != nil {
		return err
	}

	fmt.Fprintln(w)
	fmt.Fprintln(w, "Figure 2(c): destaging interval ratio")
	tc := &table{header: []string{"logger\\iops", "10", "50", "100", "200"}}
	fmt.Fprintln(w)
	td := &table{header: []string{"logger\\iops", "10", "50", "100", "200"}}
	grid := make([]*fig2Result, len(caps)*len(rates))
	if err := runPar(o, len(grid), func(k int) error {
		gib, iops := caps[k/len(rates)], rates[k%len(rates)]
		r, err := fig2Run(o, scaleBytes(gib*(1<<30), o.Scale), iops)
		grid[k] = r
		return err
	}); err != nil {
		return err
	}
	for ci, gib := range caps {
		rowC := []string{fmt.Sprintf("%.0fGB", gib)}
		rowD := []string{fmt.Sprintf("%.0fGB", gib)}
		for ri := range rates {
			r := grid[ci*len(rates)+ri]
			rowC = append(rowC, f3(r.phase.DestagingIntervalRatio()))
			rowD = append(rowD, f3(r.phase.DestagingEnergyRatio()))
		}
		tc.add(rowC...)
		td.add(rowD...)
	}
	if err := tc.write(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Figure 2(d): destaging energy ratio")
	if err := td.write(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Observation (paper, Section II): the ratios barely move with logger")
	fmt.Fprintln(w, "capacity — growing the log prolongs logging and destaging periods")
	fmt.Fprintln(w, "proportionally, so centralized logging cannot convert extra space into")
	fmt.Fprintln(w, "energy savings.")
	return nil
}

func runFig3(o Options, w io.Writer) error {
	if err := o.Validate(); err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 3: fraction of time in IDLE vs ACTIVE+STANDBY (scale=%.2f)\n", o.Scale)
	t := &table{header: []string{"iops", "primary idle", "primary act/stby", "log idle", "log act/stby"}}
	logCap := scaleBytes(16*(1<<30), o.Scale)
	fig3Rates := []float64{10, 50, 100, 200}
	fig3Res := make([]*fig2Result, len(fig3Rates))
	if err := runPar(o, len(fig3Rates), func(i int) error {
		r, err := fig2Run(o, logCap, fig3Rates[i])
		fig3Res[i] = r
		return err
	}); err != nil {
		return err
	}
	for i, iops := range fig3Rates {
		r := fig3Res[i]
		pi, pa := stateSplit(array.StateDurations(r.primaries))
		li, la := stateSplit(array.StateDurations([]*disk.Disk{r.logDisk}))
		t.add(fmt.Sprintf("%.0f", iops), pct(pi), pct(pa), pct(li), pct(la))
	}
	if err := t.write(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Short idle slots dominate for both primaries and the log disk even at")
	fmt.Fprintln(w, "200 IOPS — the free bandwidth RoLo's decentralized destaging exploits.")
	return nil
}

// stateSplit returns (idle fraction, active+standby fraction) of total time.
func stateSplit(durs map[disk.PowerState]sim.Time) (idle, activeStandby float64) {
	var total sim.Time
	for _, d := range durs {
		total += d
	}
	if total == 0 {
		return 0, 0
	}
	idle = float64(durs[disk.Idle]) / float64(total)
	activeStandby = float64(durs[disk.Active]+durs[disk.Standby]) / float64(total)
	return idle, activeStandby
}
