package experiments

import (
	"fmt"
	"io"

	"github.com/rolo-storage/rolo"
)

func init() {
	register(Experiment{
		ID:    "fig11",
		Title: "Figure 11: energy saved over RAID10 vs number of disks (20/30/40)",
		Run:   runFig11,
	})
	register(Experiment{
		ID:    "fig12",
		Title: "Figure 12: average response time vs number of disks (20/30/40)",
		Run:   runFig12,
	})
}

var fig11Pairs = []int{10, 15, 20}

// prefetchPairs warms the Figure-10 memo for every array size in
// parallel, so the per-size loops below hit the cache and the three
// sizes' simulation grids overlap on the pool.
func prefetchPairs(o Options) error {
	return runPar(o, len(fig11Pairs), func(i int) error {
		po := o
		po.Pairs = fig11Pairs[i]
		_, err := mainResults(po)
		return err
	})
}

func runFig11(o Options, w io.Writer) error {
	if err := prefetchPairs(o); err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 11: energy saved over RAID10 as a function of array size (scale=%.2f)\n", o.Scale)
	for _, tr := range mainTraces {
		fmt.Fprintf(w, "\nunder %s:\n", tr)
		t := &table{header: []string{"scheme", "20 disks", "30 disks", "40 disks"}}
		rows := map[rolo.Scheme][]string{}
		for _, pairs := range fig11Pairs {
			po := o
			po.Pairs = pairs
			res, err := mainResults(po)
			if err != nil {
				return err
			}
			base := res[tr][rolo.SchemeRAID10].EnergyJ
			for _, s := range rolo.Schemes[1:] {
				rows[s] = append(rows[s], pct(1-res[tr][s].EnergyJ/base))
			}
		}
		for _, s := range rolo.Schemes[1:] {
			t.add(append([]string{s.String()}, rows[s]...)...)
		}
		if err := t.write(w); err != nil {
			return err
		}
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Larger arrays widen every logging scheme's savings; RoLo gains more")
	fmt.Fprintln(w, "than GRAID because each added pair is another sleeping logger.")
	return nil
}

func runFig12(o Options, w io.Writer) error {
	if err := prefetchPairs(o); err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 12: mean response time (ms) as a function of array size (scale=%.2f)\n", o.Scale)
	for _, tr := range mainTraces {
		fmt.Fprintf(w, "\nunder %s:\n", tr)
		t := &table{header: []string{"scheme", "20 disks", "30 disks", "40 disks"}}
		rows := map[rolo.Scheme][]string{}
		for _, pairs := range fig11Pairs {
			po := o
			po.Pairs = pairs
			res, err := mainResults(po)
			if err != nil {
				return err
			}
			for _, s := range rolo.Schemes {
				rows[s] = append(rows[s], f2(res[tr][s].MeanResponseMs))
			}
		}
		for _, s := range rolo.Schemes {
			t.add(append([]string{s.String()}, rows[s]...)...)
		}
		if err := t.write(w); err != nil {
			return err
		}
	}
	return nil
}
