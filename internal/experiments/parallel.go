package experiments

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"sync"
)

// This file is the experiment runner's concurrency layer. The model has
// three tiers, each with a distinct sharing discipline (see DESIGN §10):
//
//   - RunAll launches every experiment on its own goroutine with a private
//     output buffer, then streams the buffers in registry order, so the
//     bytes written to w never depend on scheduling or on the job count.
//   - runPar fans a batch of independent closures (one per simulation,
//     usually one per (scheme, profile) cell) across goroutines. Results
//     travel back over a channel; the closures write only to distinct
//     indices of caller-owned slices, published to the caller by the
//     channel synchronization.
//   - acquire bounds the number of simulations actually executing at once
//     to the pool attached by WithJobs. Slots are held only across one
//     leaf simulation, which waits on nothing else — so slot-holders can
//     never deadlock against each other or against coordination
//     goroutines, which hold no slots while they wait.
//
// Simulations share no mutable state: each rolo.Run builds a private
// engine, array, telemetry recorder and sanitizer. The one cross-
// experiment structure, the Figure-10 result memo, is mutex-guarded and
// deduplicates in-flight computation (fig10.go).

// Pool returns a copy of o with a pool of n simulation slots attached
// (n <= 0 selects Jobs, and failing that GOMAXPROCS). Experiments started
// with the returned options — including concurrently, under RunAll —
// share the pool, so at most n simulations are in flight at any moment.
// Options without a pool run every simulation on the calling goroutine.
func (o Options) Pool(n int) Options {
	if n <= 0 {
		n = o.Jobs
	}
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	o.Jobs = n
	o.sem = make(chan struct{}, n)
	return o
}

// acquire claims one pool slot, blocking while n simulations are already
// running, and returns the release function. Without a pool it is a no-op.
// Callers hold a slot only for the duration of one leaf simulation:
//
//	defer o.acquire()()
func (o Options) acquire() func() {
	if o.sem == nil {
		return func() {}
	}
	o.sem <- struct{}{}
	if o.stats != nil {
		o.stats.enter()
	}
	return func() {
		if o.stats != nil {
			o.stats.exit()
		}
		<-o.sem
	}
}

// slotStats observes pool occupancy. Attached (by tests) via the stats
// field, it records the high-water mark of simulations simultaneously
// holding a slot — the oversubscription regression check: every layer
// above the pool, including a fleet experiment's shards, must draw from
// the one shared semaphore, so the mark can never exceed the slot count.
type slotStats struct {
	mu    sync.Mutex
	cur   int   //rolosan:guardedby mu
	max   int   //rolosan:guardedby mu
	total int64 //rolosan:guardedby mu
}

func (s *slotStats) enter() {
	s.mu.Lock()
	s.cur++
	s.total++
	if s.cur > s.max {
		s.max = s.cur
	}
	s.mu.Unlock()
}

func (s *slotStats) exit() {
	s.mu.Lock()
	s.cur--
	s.mu.Unlock()
}

// Max returns the occupancy high-water mark.
func (s *slotStats) Max() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.max
}

// Total returns how many slot acquisitions the pool has served.
func (s *slotStats) Total() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// indexedErr carries one runPar result back to the coordinator.
type indexedErr struct {
	i   int
	err error
}

// runPar runs fn(0) … fn(n-1) and returns the error of the lowest failing
// index — the same error a serial loop would have returned first, so
// failures are deterministic under any job count. With a pool attached
// the calls run on n goroutines (throttled at the simulation leaves by
// acquire); without one they run serially on the calling goroutine.
//
// fn must confine its writes to caller-owned state indexed by i (distinct
// cells of a results slice); runPar's channel synchronization publishes
// those writes to the caller before it returns.
func runPar(o Options, n int, fn func(int) error) error {
	if o.sem == nil || n <= 1 {
		var firstErr error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	results := make(chan indexedErr)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results <- indexedErr{i, fn(i)}
		}(i)
	}
	go func() {
		wg.Wait()
		close(results)
	}()
	firstIdx, firstErr := -1, error(nil)
	for r := range results {
		if r.err != nil && (firstIdx < 0 || r.i < firstIdx) {
			firstIdx, firstErr = r.i, r.err
		}
	}
	return firstErr
}

// separator divides experiment outputs in RunAll, exactly as the serial
// runner printed it.
const separator = "\n========================================================================\n\n"

// RunAll runs every experiment in list concurrently — each into a private
// buffer, with simulations throttled by the option pool — and writes the
// buffers to w in list order, separated as the serial runner separated
// them. The bytes written to w are therefore identical for every job
// count, including the serial (no-pool) runner.
//
// The first error in list order stops the streaming: outputs of the
// experiments before the failing one are still written, matching the
// serial runner's behaviour.
func RunAll(o Options, w io.Writer, list []Experiment) error {
	if o.sem == nil {
		o = o.Pool(0)
	}
	bufs := make([]bytes.Buffer, len(list))
	errs := make([]error, len(list))
	err := runPar(o, len(list), func(i int) error {
		errs[i] = list[i].Run(o, &bufs[i])
		return nil // errors surface below, in list order with partial output
	})
	if err != nil {
		return err
	}
	for i := range list {
		if i > 0 {
			if _, werr := io.WriteString(w, separator); werr != nil {
				return werr
			}
		}
		if _, werr := w.Write(bufs[i].Bytes()); werr != nil {
			return werr
		}
		if errs[i] != nil {
			return fmt.Errorf("%s: %w", list[i].ID, errs[i])
		}
	}
	return nil
}
