package experiments

import (
	"fmt"
	"io"

	"github.com/rolo-storage/rolo/internal/fleet"
)

// The fleet experiment scales the evaluation out instead of up: a small
// data center of independent arrays cycling all five schemes under
// per-tenant workload variants of one base spec (DESIGN §16). Its shards
// are leaf simulations like any other experiment's, so they draw from
// the same slot pool as the rest of a `roloexp -run all` — the fleet
// adds no concurrency of its own beyond coordination goroutines.

func init() {
	register(Experiment{
		ID:    "fleet",
		Title: "Fleet: sharded multi-tenant cluster, merged cluster report",
		Run:   runFleet,
	})
}

// optionsPool adapts the experiment slot semaphore to fleet.Pool, so
// fleet shards and other experiments' simulations share one budget
// rather than multiplying pools. Without a pool attached, Cap is 0 and
// the fleet runs its shards serially on the calling goroutine — the
// same discipline every other experiment follows.
type optionsPool struct{ o Options }

func (p optionsPool) Acquire() func() { return p.o.acquire() }
func (p optionsPool) Cap() int        { return cap(p.o.sem) }

func runFleet(o Options, w io.Writer) error {
	spec := fleet.DefaultSpec()
	spec.Check = o.Check
	// The fleet rides the experiment scale: o.Scale is calibrated for
	// 20-pair single-array runs, and DefaultSpec's geometry (4 pairs,
	// 1/5 the scale) keeps a 64-shard fleet comparable to one of them.
	spec.Scale = o.Scale / 5
	fmt.Fprintf(w, "Fleet: %d shards (%d pairs each, scale %g), schemes cycled %v\n\n",
		spec.Shards, spec.Pairs, spec.Scale, spec.Schemes)
	rep, err := fleet.Run(spec, optionsPool{o})
	if err != nil {
		return err
	}
	return rep.WriteText(w)
}
