package experiments

import (
	"fmt"
	"io"

	"github.com/rolo-storage/rolo"
)

func init() {
	register(Experiment{
		ID:    "fig13",
		Title: "Figure 13: energy saved over GRAID vs per-disk free space (8/6/4 GB)",
		Run:   runFig13,
	})
	register(Experiment{
		ID:    "stripe",
		Title: "Section V-C: sensitivity to stripe unit size (16/32/64 KB)",
		Run:   runStripe,
	})
	register(Experiment{
		ID:    "disksize",
		Title: "Section V-C: sensitivity to disk size at fixed 50% free-space ratio",
		Run:   runDiskSize,
	})
}

// profileCell is one (trace, scheme, free-space, stripe) simulation of a
// sweep, fanned out with runPar and formatted afterwards in sweep order.
type profileCell struct {
	tr     string
	scheme rolo.Scheme
	free   float64
	stripe int64
}

// runCells simulates every cell across the option pool and returns the
// reports in cell order.
func runCells(o Options, cells []profileCell) ([]rolo.Report, error) {
	reps := make([]rolo.Report, len(cells))
	err := runPar(o, len(cells), func(i int) error {
		c := cells[i]
		rep, err := runProfile(c.scheme, o, c.tr, c.free, c.stripe)
		reps[i] = rep
		return err
	})
	if err != nil {
		return nil, err
	}
	return reps, nil
}

func runFig13(o Options, w io.Writer) error {
	if err := o.Validate(); err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 13: energy saved over GRAID vs free storage space (scale=%.2f)\n", o.Scale)
	freeGiBs := []float64{8, 6, 4}
	roloSchemes := []rolo.Scheme{rolo.SchemeRoLoP, rolo.SchemeRoLoR, rolo.SchemeRoLoE}
	var cells []profileCell
	for _, tr := range mainTraces {
		cells = append(cells, profileCell{tr, rolo.SchemeGRAID, 8, 64 << 10})
		for _, s := range roloSchemes {
			for _, free := range freeGiBs {
				cells = append(cells, profileCell{tr, s, free, 64 << 10})
			}
		}
	}
	reps, err := runCells(o, cells)
	if err != nil {
		return err
	}
	k := 0
	for _, tr := range mainTraces {
		fmt.Fprintf(w, "\nunder %s:\n", tr)
		graid := reps[k]
		k++
		t := &table{header: []string{"scheme", "8GB", "6GB", "4GB"}}
		for _, s := range roloSchemes {
			row := []string{s.String()}
			for range freeGiBs {
				row = append(row, pct(1-reps[k].EnergyJ/graid.EnergyJ))
				k++
			}
			t.add(row...)
		}
		if err := t.write(w); err != nil {
			return err
		}
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Less free space means shorter logging periods and more frequent logger")
	fmt.Fprintln(w, "rotations, slightly eroding (but not eliminating) RoLo's advantage.")
	return nil
}

func runStripe(o Options, w io.Writer) error {
	if err := o.Validate(); err != nil {
		return err
	}
	fmt.Fprintf(w, "Stripe-unit sensitivity: energy saved over RAID10 under src2_2 (scale=%.2f)\n", o.Scale)
	t := &table{header: []string{"scheme", "16KB", "32KB", "64KB"}}
	stripes := []int64{16 << 10, 32 << 10, 64 << 10}
	var cells []profileCell
	for _, su := range stripes {
		for _, s := range rolo.Schemes {
			cells = append(cells, profileCell{"src2_2", s, 8, su})
		}
	}
	reps, err := runCells(o, cells)
	if err != nil {
		return err
	}
	rows := map[rolo.Scheme][]string{}
	k := 0
	for range stripes {
		var base rolo.Report
		for _, s := range rolo.Schemes {
			rep := reps[k]
			k++
			if s == rolo.SchemeRAID10 {
				base = rep
				continue
			}
			rows[s] = append(rows[s], pct(1-rep.EnergyJ/base.EnergyJ))
		}
	}
	for _, s := range rolo.Schemes[1:] {
		t.add(append([]string{s.String()}, rows[s]...)...)
	}
	if err := t.write(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Per the paper, only RoLo-E shows stripe-size sensitivity under src2_2:")
	fmt.Fprintln(w, "smaller units split read misses across more sleeping disks.")
	return nil
}

func runDiskSize(o Options, w io.Writer) error {
	if err := o.Validate(); err != nil {
		return err
	}
	fmt.Fprintf(w, "Disk-size sensitivity at fixed 50%% free ratio: energy saved over GRAID (scale=%.2f)\n", o.Scale)
	// The paper shrinks GRAID's log disk to 16/8/4 GB with RoLo free space
	// 8/4/2 GB so the free-space ratio stays 50 %.
	type size struct {
		label    string
		diskGiB  float64
		freeGiB  float64
		graidGiB float64
	}
	sizes := []size{
		{"16GB log", 18.4, 8, 16},
		{"8GB log", 9.2, 4, 8},
		{"4GB log", 4.6, 2, 4},
	}
	roloSchemes := []rolo.Scheme{rolo.SchemeRoLoP, rolo.SchemeRoLoR, rolo.SchemeRoLoE}
	run := func(s rolo.Scheme, tr string, sz size) (rolo.Report, error) {
		defer o.acquire()() // one pool slot per leaf simulation
		cfg := rolo.DefaultConfig(s)
		cfg.Pairs = o.Pairs
		cfg.Disk.CapacityBytes = scaleBytes(sz.diskGiB*(1<<30), o.Scale)
		cfg.FreeBytesPerDisk = scaleBytes(sz.freeGiB*(1<<30), o.Scale)
		cfg.GRAID.LogCapacityBytes = scaleBytes(sz.graidGiB*(1<<30), o.Scale)
		recs, err := rolo.GenerateProfile(tr, cfg, o.Scale)
		if err != nil {
			return rolo.Report{}, err
		}
		return rolo.Run(cfg, recs)
	}
	type cell struct {
		tr     string
		scheme rolo.Scheme
		sz     size
	}
	var cells []cell
	for _, tr := range mainTraces {
		for _, sz := range sizes {
			cells = append(cells, cell{tr, rolo.SchemeGRAID, sz})
			for _, s := range roloSchemes {
				cells = append(cells, cell{tr, s, sz})
			}
		}
	}
	reps := make([]rolo.Report, len(cells))
	if err := runPar(o, len(cells), func(i int) error {
		rep, err := run(cells[i].scheme, cells[i].tr, cells[i].sz)
		reps[i] = rep
		return err
	}); err != nil {
		return err
	}
	k := 0
	for _, tr := range mainTraces {
		fmt.Fprintf(w, "\nunder %s:\n", tr)
		t := &table{header: []string{"scheme", sizes[0].label, sizes[1].label, sizes[2].label}}
		rows := map[rolo.Scheme][]string{}
		for range sizes {
			graid := reps[k]
			k++
			for _, s := range roloSchemes {
				rows[s] = append(rows[s], pct(1-reps[k].EnergyJ/graid.EnergyJ))
				k++
			}
		}
		for _, s := range roloSchemes {
			t.add(append([]string{s.String()}, rows[s]...)...)
		}
		if err := t.write(w); err != nil {
			return err
		}
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "The paper's conclusion: at a fixed free-space ratio, RoLo's advantage")
	fmt.Fprintln(w, "over GRAID tracks disk count and free space, not raw disk size.")
	return nil
}
