package experiments

import (
	"fmt"
	"io"

	"github.com/rolo-storage/rolo/internal/reliability"
)

func init() {
	register(Experiment{
		ID:    "fig9",
		Title: "Figure 9: MTTDL vs MTTR for RAID10, GRAID, RoLo-P, RoLo-R",
		Run:   runFig9,
	})
	register(Experiment{
		ID:    "eqs",
		Title: "Equations (1)-(5): closed-form MTTDL vs exact CTMC solutions",
		Run:   runEqs,
	})
}

func runFig9(o Options, w io.Writer) error {
	days := []float64{1, 2, 3, 4, 5, 6, 7}
	series, err := reliability.Fig9(days)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 9: MTTDL (years) as a function of MTTR (days), lambda = 1e-5/h")
	t := &table{header: []string{"MTTR(d)"}}
	for _, s := range series {
		t.header = append(t.header, s.Scheme)
	}
	for i, d := range days {
		row := []string{f1(d)}
		for _, s := range series {
			row = append(row, fmt.Sprintf("%.0f", s.Points[i].MTTDLYears))
		}
		t.add(row...)
	}
	return t.write(w)
}

func runEqs(o Options, w io.Writer) error {
	const lambda = 1e-5
	fmt.Fprintln(w, "MTTDL (hours) at lambda = 1e-5/h: paper closed forms vs exact CTMC")
	t := &table{header: []string{"scheme", "MTTR", "closed-form", "CTMC", "ratio"}}
	type entry struct {
		name   string
		closed func(l, m float64) float64
		chain  func(l, m float64) reliability.Chain
	}
	entries := []entry{
		{"RAID10", reliability.MTTDLRaid10, reliability.Raid10Chain},
		{"GRAID", reliability.MTTDLGRAID, reliability.GRAIDChain},
		{"RoLo-P", reliability.MTTDLRoLoP, reliability.RoLoPChain},
		{"RoLo-R", reliability.MTTDLRoLoR, reliability.RoLoRChain},
		{"RoLo-E", reliability.MTTDLRoLoE, reliability.RoLoEChain},
	}
	for _, e := range entries {
		for _, days := range []float64{1, 7} {
			mu := 1 / (days * 24)
			closed := e.closed(lambda, mu)
			exact, err := e.chain(lambda, mu).MTTDL()
			if err != nil {
				return fmt.Errorf("%s: %w", e.name, err)
			}
			t.add(e.name, fmt.Sprintf("%gd", days),
				fmt.Sprintf("%.4g", closed), fmt.Sprintf("%.4g", exact),
				fmt.Sprintf("%.4f", exact/closed))
		}
	}
	return t.write(w)
}
