package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestFleetSharesSlotBudget pins the no-pool-in-pool invariant: under
// RunAll, a fleet experiment's shards are leaf simulations on the one
// shared slot semaphore. Two checks together rule out both failure
// modes: Total counts one acquisition per shard (a fleet running its
// own private pool would bypass the shared semaphore and leave Total
// short), and Max bounds in-flight simulations by the slot count (a
// nested pool multiplying concurrency would exceed it).
func TestFleetSharesSlotBudget(t *testing.T) {
	o := DefaultOptions().Pool(2)
	o.Scale = 0.05 // shards stay tiny; this test is about scheduling
	stats := &slotStats{}
	o.stats = stats

	fleetExp, err := Lookup("fleet")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RunAll(o, &buf, []Experiment{fleetExp, fleetExp}); err != nil {
		t.Fatal(err)
	}
	if got := stats.Max(); got > 2 {
		t.Fatalf("observed %d simulations in flight with a 2-slot pool — the fleet is not sharing the budget", got)
	}
	if got, want := stats.Total(), int64(2*64); got != want {
		t.Fatalf("shared pool served %d acquisitions, want %d (one per shard of each fleet)", got, want)
	}
	if !strings.Contains(buf.String(), "fleet: 64 shards") {
		t.Fatalf("fleet output missing cluster header:\n%s", buf.String())
	}
}

// TestFleetExperimentDeterministic pins the experiment contract RunAll
// relies on: the fleet experiment writes identical bytes at any job
// count.
func TestFleetExperimentDeterministic(t *testing.T) {
	fleetExp, err := Lookup("fleet")
	if err != nil {
		t.Fatal(err)
	}
	run := func(o Options) string {
		var buf bytes.Buffer
		if err := fleetExp.Run(o, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	o := DefaultOptions()
	o.Scale = 0.05
	serial := run(o)
	if parallel := run(o.Pool(4)); parallel != serial {
		t.Fatalf("fleet experiment output depends on job count:\n--- serial ---\n%s--- jobs=4 ---\n%s", serial, parallel)
	}
}
