// Package experiments regenerates every table and figure of the RoLo
// paper's evaluation (Section II's motivation figures, Section IV's
// reliability analysis, and Section V's trace-driven evaluation). Each
// experiment is a named entry in the registry; cmd/roloexp and the root
// benchmarks drive them.
//
// # Scaling
//
// Experiments run at a configurable scale factor s (default 0.1): disk
// capacity, per-disk free space, the GRAID log capacity and the trace
// length all shrink by s together. This preserves the quantities the
// paper's conclusions rest on — rotation and destage counts, spin cycles,
// idle-slot structure, normalized energy and response-time ratios — while
// cutting simulation time by 1/s (the paper's own disk-size sensitivity
// study, Section V-C, is the evidence that absolute disk size does not
// matter at fixed free-space ratio). Scale 1.0 reproduces the full-size
// configuration.
package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"github.com/rolo-storage/rolo"
	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/telemetry"
	"github.com/rolo-storage/rolo/internal/telemetry/journal"
	"github.com/rolo-storage/rolo/internal/trace"
)

// Options configure an experiment run.
type Options struct {
	// Scale shrinks geometry and trace together; see the package comment.
	Scale float64
	// Pairs is the number of mirrored pairs (the paper's default is 20,
	// i.e. a 40-disk array).
	Pairs int
	// JournalDir, when non-empty, writes one JSONL telemetry journal per
	// simulation run into this directory, named <scheme>_<profile>.jsonl.
	// With JournalSegmentBytes set, each run instead gets a rotated
	// journal directory <scheme>_<profile>/ written through the async
	// pipeline (see internal/telemetry/journal).
	JournalDir string
	// JournalSegmentBytes rotates each run's journal into segments of
	// this many bytes (0 keeps the single-file layout).
	JournalSegmentBytes int64
	// JournalCompress gzips completed journal segments.
	JournalCompress bool
	// JournalRetain keeps only the newest N segments per run (0 = all).
	JournalRetain int
	// ProbeInterval enables periodic telemetry probes in every run.
	ProbeInterval sim.Time
	// Check enables the RoloSan invariant sanitizer in every run; the
	// first violation fails the experiment.
	Check bool
	// Jobs bounds how many simulations run concurrently (0 selects
	// GOMAXPROCS). It takes effect once a pool is attached with Pool;
	// options without a pool run serially regardless of Jobs.
	Jobs int

	// sem is the shared simulation-slot semaphore attached by Pool.
	// Copies of the options share the channel, so every experiment run
	// under one RunAll draws from the same slot budget. A nil sem means
	// "no pool": acquire is a no-op and runPar degenerates to a serial
	// loop.
	sem chan struct{}
	// stats, when non-nil, observes slot occupancy (tests attach it to
	// pin the shared-budget invariant; see slotStats).
	stats *slotStats
}

// DefaultOptions returns the default experiment options.
func DefaultOptions() Options {
	return Options{Scale: 0.1, Pairs: 20}
}

// Validate reports option errors.
func (o Options) Validate() error {
	if o.Scale <= 0 || o.Scale > 1 {
		return fmt.Errorf("experiments: scale %g outside (0,1]", o.Scale)
	}
	if o.Pairs < 2 {
		return fmt.Errorf("experiments: pairs %d < 2", o.Pairs)
	}
	if o.ProbeInterval < 0 {
		return fmt.Errorf("experiments: negative probe interval %v", o.ProbeInterval)
	}
	if o.JournalSegmentBytes < 0 {
		return fmt.Errorf("experiments: negative journal segment size %d", o.JournalSegmentBytes)
	}
	if (o.JournalCompress || o.JournalRetain != 0) && o.JournalSegmentBytes == 0 {
		return fmt.Errorf("experiments: journal compression/retention requires a segment size")
	}
	if o.Jobs < 0 {
		return fmt.Errorf("experiments: negative job count %d", o.Jobs)
	}
	return nil
}

// Experiment is one regenerable table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(o Options, w io.Writer) error
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID) // programmer error at init
	}
	registry[e.ID] = e
}

// All returns every registered experiment, sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		all := All()
		ids := make([]string, len(all))
		for i, e := range all {
			ids[i] = e.ID
		}
		return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(ids, ", "))
	}
	return e, nil
}

// scaledConfig builds the paper's configuration scaled by o.Scale:
// 18.4 GB drives with freeGiB of logging space each, a 16 GB GRAID log
// disk, and a 64 KB stripe unit.
func scaledConfig(scheme rolo.Scheme, o Options, freeGiB float64, stripe int64) rolo.Config {
	cfg := rolo.DefaultConfig(scheme)
	cfg.Pairs = o.Pairs
	cfg.StripeUnitBytes = stripe
	cfg.Disk.CapacityBytes = scaleBytes(18.4*(1<<30), o.Scale)
	cfg.FreeBytesPerDisk = scaleBytes(freeGiB*(1<<30), o.Scale)
	cfg.GRAID.LogCapacityBytes = scaleBytes(16*(1<<30), o.Scale)
	return cfg
}

func scaleBytes(b float64, scale float64) int64 {
	v := int64(b * scale)
	const align = 1 << 20
	v -= v % align
	if v < align {
		v = align
	}
	return v
}

// journalNames uniquifies per-run journal directory names across the
// whole process; which duplicate gets which suffix depends on pool
// scheduling, but every directory is internally complete and verifiable.
var journalNames struct {
	mu   sync.Mutex
	used map[string]int
}

func claimJournalName(base string) string {
	journalNames.mu.Lock()
	defer journalNames.mu.Unlock()
	if journalNames.used == nil {
		journalNames.used = map[string]int{}
	}
	journalNames.used[base]++
	if n := journalNames.used[base]; n > 1 {
		return fmt.Sprintf("%s_%d", base, n)
	}
	return base
}

// runProfile simulates one scheme against one calibrated trace profile at
// the option scale. When o.JournalDir is set, the run's telemetry journal
// is written alongside; probes follow o.ProbeInterval either way.
func runProfile(scheme rolo.Scheme, o Options, profile string, freeGiB float64, stripe int64) (rep rolo.Report, err error) {
	defer o.acquire()() // one pool slot per leaf simulation
	cfg := scaledConfig(scheme, o, freeGiB, stripe)
	recs, err := rolo.GenerateProfile(profile, cfg, o.Scale)
	if err != nil {
		return rolo.Report{}, err
	}
	cfg.Telemetry.ProbeInterval = o.ProbeInterval
	cfg.Check = o.Check
	switch {
	case o.JournalDir != "" && o.JournalSegmentBytes > 0:
		// Rotated mode: one journal directory per run, written through
		// the async pipeline. Blocking policy keeps the journal complete
		// and byte-deterministic; the per-run directory keeps concurrent
		// runs from interleaving segments. Several experiments simulate
		// the same (scheme, profile) cell with different free-space or
		// stripe parameters, so duplicate names get a _2, _3, … suffix —
		// two rotating writers in one directory would corrupt each other.
		dir := filepath.Join(o.JournalDir, claimJournalName(fmt.Sprintf("%s_%s", scheme, profile)))
		if mkerr := os.MkdirAll(dir, 0o755); mkerr != nil {
			return rolo.Report{}, mkerr
		}
		w, werr := journal.NewRotatingWriter(journal.RotateConfig{
			Dir:          dir,
			SegmentBytes: o.JournalSegmentBytes,
			Compress:     o.JournalCompress,
			Retain:       o.JournalRetain,
		})
		if werr != nil {
			return rolo.Report{}, werr
		}
		sink := journal.NewAsyncSink(w, journal.AsyncConfig{Policy: journal.PolicyBlock})
		// Closing drains the ring and writes the manifest; a close
		// failure means a broken journal, so it surfaces as the run's
		// error.
		defer func() {
			if cerr := sink.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		cfg.Telemetry.Sink = sink
	case o.JournalDir != "":
		name := fmt.Sprintf("%s_%s.jsonl", scheme, profile)
		f, ferr := os.Create(filepath.Join(o.JournalDir, name))
		if ferr != nil {
			return rolo.Report{}, ferr
		}
		// The journal is written through this file; a failed close means
		// a truncated journal, so it surfaces as the run's error.
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		cfg.Telemetry.Sink = telemetry.NewJSONLSink(f)
	}
	rep, err = rolo.Run(cfg, recs)
	if err != nil {
		return rolo.Report{}, fmt.Errorf("%v on %s: %w", scheme, profile, err)
	}
	return rep, nil
}

// table is a minimal fixed-width table printer.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) write(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.header)); err != nil {
		return err
	}
	for _, r := range t.rows {
		if _, err := fmt.Fprintln(w, line(r)); err != nil {
			return err
		}
	}
	return nil
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func pct(v float64) string {
	return fmt.Sprintf("%.1f%%", 100*v)
}

// mainTraces are the two write-intensive traces of the main evaluation.
var mainTraces = []string{"src2_2", "proj_0"}

// ensure the trace package profiles exist at init (programming guard).
var _ = trace.Profiles
