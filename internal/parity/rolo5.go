package parity

import (
	"fmt"

	"github.com/rolo-storage/rolo/internal/intervals"
	"github.com/rolo-storage/rolo/internal/logspace"
	"github.com/rolo-storage/rolo/internal/metrics"
	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/trace"
)

// RoLo5Config parameterizes the rotated parity-logging controller.
type RoLo5Config struct {
	// RotateFreeFraction rotates the logger when its free fraction drops
	// below this value.
	RotateFreeFraction float64
	// ParityChunkStripes caps how many consecutive dirty stripes one
	// background parity-rebuild pass handles.
	ParityChunkStripes int64
}

// DefaultRoLo5Config returns sensible defaults.
func DefaultRoLo5Config() RoLo5Config {
	return RoLo5Config{RotateFreeFraction: 0.10, ParityChunkStripes: 8}
}

// Validate reports configuration errors.
func (c RoLo5Config) Validate() error {
	if c.RotateFreeFraction <= 0 || c.RotateFreeFraction >= 1 {
		return fmt.Errorf("parity: rotate threshold %g outside (0,1)", c.RotateFreeFraction)
	}
	if c.ParityChunkStripes <= 0 {
		return fmt.Errorf("parity: non-positive parity chunk %d", c.ParityChunkStripes)
	}
	return nil
}

// RoLo5 applies the RoLo recipe to RAID5: a small write lands as one
// in-place data write plus one sequential append into the on-duty logging
// region (two I/Os instead of RMW's four); the stripe's parity becomes
// stale and is reconstructed later in idle time slots by a background
// sweeper. The logger rotates across the disks' free regions and log
// extents are reclaimed when their stripes' parity is brought current —
// rotated logging and decentralized destaging, transplanted to parity
// redundancy (the paper's Section VII future work).
type RoLo5 struct {
	arr *Array
	cfg RoLo5Config

	spaces []*logspace.Space
	onDuty int

	// staleParity holds stripe-number ranges whose parity is stale;
	// sweepInFlight counts stripes currently being rebuilt (popped from
	// the set but not yet fresh).
	staleParity   intervals.Set
	sweepInFlight int64
	sweeping      bool

	resp metrics.ResponseStats

	rotations     int
	loggedWrites  int64
	directRMW     int64
	paritySweeps  int64
	sweptStripes  int64
	closed        bool
	sweepDeferred bool
}

// NewRoLo5 builds the controller. All disks stay spinning: on a parity
// array there are no redundant mirrors to sleep, so the win is the
// small-write path, not energy.
func NewRoLo5(arr *Array, cfg RoLo5Config) (*RoLo5, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if arr.LogRegionBytes() <= 0 {
		return nil, fmt.Errorf("parity: array has no logging region")
	}
	r := &RoLo5{arr: arr, cfg: cfg}
	for range arr.Disks {
		sp, err := logspace.New(arr.LogRegionBytes())
		if err != nil {
			return nil, err
		}
		r.spaces = append(r.spaces, sp)
	}
	return r, nil
}

// Responses returns response-time statistics.
func (r *RoLo5) Responses() *metrics.ResponseStats { return &r.resp }

// Rotations counts logger rotations.
func (r *RoLo5) Rotations() int { return r.rotations }

// LoggedWrites counts strips that took the two-I/O logged path.
func (r *RoLo5) LoggedWrites() int64 { return r.loggedWrites }

// DirectRMW counts strips that fell back to read-modify-write.
func (r *RoLo5) DirectRMW() int64 { return r.directRMW }

// SweptStripes counts stripes whose parity the background sweeper rebuilt.
func (r *RoLo5) SweptStripes() int64 { return r.sweptStripes }

// StaleParityStripes reports how many stripes currently have stale parity,
// including those a sweep is rebuilding right now.
func (r *RoLo5) StaleParityStripes() int64 { return r.staleParity.Total() + r.sweepInFlight }

// Submit services one logical request.
func (r *RoLo5) Submit(rec trace.Record) error {
	strips, err := r.arr.Geom.Map(rec.Offset, rec.Size)
	if err != nil {
		return fmt.Errorf("rolo5: %w", err)
	}
	arrive := rec.At
	record := func(now sim.Time) { r.resp.Add(now - arrive) }
	if rec.Op == trace.Read {
		j := newJoin(len(strips), record)
		for _, s := range strips {
			io := r.arr.DataIO(s.Offset, s.Length, false, false)
			io.OnDone = j.done
			if err := r.arr.Disks[s.Disk].Submit(io); err != nil {
				return fmt.Errorf("rolo5: read: %w", err)
			}
		}
		return nil
	}

	// Writes: in-place data write + sequential log append on the on-duty
	// logger (never the disk holding the data strip — the log copy must
	// survive that disk's failure).
	type placed struct {
		strip Strip
		log   int
		alloc logspace.Alloc
		ok    bool
	}
	plan := make([]placed, len(strips))
	for i, s := range strips {
		lg := r.pickLogger(s.Disk)
		a, ok := logspace.Alloc{}, false
		if lg >= 0 {
			a, ok = r.spaces[lg].Alloc(s.Length, int(s.Stripe))
		}
		plan[i] = placed{strip: s, log: lg, alloc: a, ok: ok}
	}
	ios := 0
	for _, p := range plan {
		if p.ok {
			ios += 2 // data write + log append
		} else {
			ios += 4 // full read-modify-write fallback
		}
	}
	j := newJoin(ios, record)
	for _, p := range plan {
		s := p.strip
		target := r.arr.Disks[s.Disk]
		w := r.arr.DataIO(s.Offset, s.Length, true, false)
		w.OnDone = j.done
		if err := target.Submit(w); err != nil {
			return fmt.Errorf("rolo5: data write: %w", err)
		}
		if p.ok {
			r.loggedWrites++
			lio := r.arr.LogIO(p.alloc.Offset, p.alloc.Length, true, false)
			lio.OnDone = j.done
			if err := r.arr.Disks[p.log].Submit(lio); err != nil {
				return fmt.Errorf("rolo5: log write: %w", err)
			}
			r.staleParity.Add(s.Stripe, s.Stripe+1)
		} else {
			// Logging space exhausted: classic RMW for this strip.
			r.directRMW++
			old := r.arr.DataIO(s.Offset, s.Length, false, false)
			old.OnDone = j.done
			if err := target.Submit(old); err != nil {
				return fmt.Errorf("rolo5: rmw read: %w", err)
			}
			pd := r.arr.Disks[r.arr.Geom.ParityDisk(s.Stripe)]
			pr := r.arr.DataIO(r.arr.Geom.ParityOffset(s.Stripe), s.Length, false, false)
			pr.OnDone = j.done
			if err := pd.Submit(pr); err != nil {
				return fmt.Errorf("rolo5: parity read: %w", err)
			}
			pw := r.arr.DataIO(r.arr.Geom.ParityOffset(s.Stripe), r.arr.Geom.StripUnitBytes, true, false)
			pw.OnDone = j.done
			if err := pd.Submit(pw); err != nil {
				return fmt.Errorf("rolo5: parity write: %w", err)
			}
		}
	}
	r.checkRotation()
	r.kickSweep()
	return nil
}

// pickLogger chooses the logger with the most free space, excluding the
// disk that holds the data strip.
func (r *RoLo5) pickLogger(excludeDisk int) int {
	lg := r.onDuty
	if lg == excludeDisk {
		lg = (lg + 1) % r.arr.Geom.Disks
	}
	if r.spaces[lg].FreeBytes() > 0 {
		return lg
	}
	// Fall back to any disk with room.
	for i := range r.spaces {
		if i != excludeDisk && r.spaces[i].FreeBytes() > 0 {
			return i
		}
	}
	return -1
}

func (r *RoLo5) checkRotation() {
	if r.spaces[r.onDuty].FreeFraction() >= r.cfg.RotateFreeFraction {
		return
	}
	best, bestFree := r.onDuty, r.spaces[r.onDuty].FreeBytes()
	for i, sp := range r.spaces {
		if sp.FreeBytes() > bestFree {
			best, bestFree = i, sp.FreeBytes()
		}
	}
	if best != r.onDuty {
		r.onDuty = best
		r.rotations++
	}
}

// kickSweep starts the background parity reconstruction if stale stripes
// exist. One pass rebuilds up to ParityChunkStripes consecutive stripes:
// it reads every data strip of each stripe (background priority) and
// writes fresh parity, then releases the log extents of those stripes.
func (r *RoLo5) kickSweep() {
	if r.sweeping || r.closed || r.staleParity.Empty() {
		return
	}
	span, ok := r.staleParity.PopFirst(r.cfg.ParityChunkStripes)
	if !ok {
		return
	}
	r.sweeping = true
	r.paritySweeps++
	stripes := span.End - span.Start
	r.sweepInFlight += stripes
	// Per stripe: Disks-1 data reads + 1 parity write.
	total := int(stripes) * r.arr.Geom.Disks
	j := newJoin(total, func(now sim.Time) {
		r.sweptStripes += stripes
		r.sweepInFlight -= stripes
		r.releaseSwept(span)
		r.sweeping = false
		r.kickSweep()
	})
	su := r.arr.Geom.StripUnitBytes
	for st := span.Start; st < span.End; st++ {
		pd := r.arr.Geom.ParityDisk(st)
		for d := 0; d < r.arr.Geom.Disks; d++ {
			if d == pd {
				w := r.arr.DataIO(r.arr.Geom.ParityOffset(st), su, true, true)
				w.OnDone = j.done
				if err := r.arr.Disks[d].Submit(w); err != nil {
					r.sweeping = false
					return
				}
				continue
			}
			rd := r.arr.DataIO(st*su, su, false, true)
			rd.OnDone = j.done
			if err := r.arr.Disks[d].Submit(rd); err != nil {
				r.sweeping = false
				return
			}
		}
	}
}

// releaseSwept reclaims the log extents of stripes whose parity is fresh
// — the per-stripe analogue of RoLo's proactive reclamation.
func (r *RoLo5) releaseSwept(span intervals.Span) {
	for st := span.Start; st < span.End; st++ {
		for _, sp := range r.spaces {
			sp.ReleaseTag(int(st))
		}
	}
}

// Close finalizes the run.
func (r *RoLo5) Close(sim.Time) { r.closed = true }
