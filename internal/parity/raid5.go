package parity

import (
	"fmt"

	"github.com/rolo-storage/rolo/internal/disk"
	"github.com/rolo-storage/rolo/internal/metrics"
	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/trace"
)

// Array is a RAID5 disk set with the shared addressing helpers.
type Array struct {
	Eng   *sim.Engine
	Geom  Geometry
	Disks []*disk.Disk

	// ios is the array-wide IO free list; drives recycle completed
	// requests back into it (see disk.IOPool).
	ios disk.IOPool
}

// NewArray builds a RAID5 array; each drive reserves everything past the
// data region as logging space for RoLo5.
func NewArray(eng *sim.Engine, geom Geometry, cfg disk.Config) (*Array, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if geom.DataBytesPerDisk > cfg.CapacityBytes {
		return nil, fmt.Errorf("parity: data region %d exceeds disk capacity %d",
			geom.DataBytesPerDisk, cfg.CapacityBytes)
	}
	a := &Array{Eng: eng, Geom: geom}
	for i := 0; i < geom.Disks; i++ {
		d, err := disk.New(i, cfg, eng)
		if err != nil {
			return nil, err
		}
		a.Disks = append(a.Disks, d)
	}
	return a, nil
}

// LogRegionBytes is the per-disk logging capacity.
func (a *Array) LogRegionBytes() int64 {
	return a.Disks[0].Config().CapacityBytes - a.Geom.DataBytesPerDisk
}

func sectorRange(off, length int64) (lba, sectors int64) {
	lba = off / disk.SectorSize
	end := (off + length + disk.SectorSize - 1) / disk.SectorSize
	return lba, end - lba
}

// DataIO builds an IO against a disk's data region.
func (a *Array) DataIO(off, length int64, write, background bool) *disk.IO {
	lba, sectors := sectorRange(off, length)
	return a.pooledIO(lba, sectors, write, background)
}

// LogIO builds an IO against a disk's logging region.
func (a *Array) LogIO(off, length int64, write, background bool) *disk.IO {
	lba, sectors := sectorRange(off, length)
	return a.pooledIO(a.Geom.DataBytesPerDisk/disk.SectorSize+lba, sectors, write, background)
}

// pooledIO draws a request from the array's IO free list; the drive
// recycles it after the completion callback runs, so callers must not
// retain the pointer past their OnDone.
func (a *Array) pooledIO(lba, sectors int64, write, background bool) *disk.IO {
	io := a.ios.Get()
	io.LBA = lba
	io.Sectors = sectors
	io.Write = write
	io.Background = background
	return io
}

// TotalEnergyJ sums cumulative energy.
func (a *Array) TotalEnergyJ() float64 {
	var e float64
	for _, d := range a.Disks {
		e += d.EnergyJ()
	}
	return e
}

// join mirrors array.Join without importing it (the parity substrate is
// self-contained).
type join struct {
	remaining int
	fn        func(sim.Time)
}

func newJoin(n int, fn func(sim.Time)) *join { return &join{remaining: n, fn: fn} }

func (j *join) done(now sim.Time) {
	j.remaining--
	if j.remaining == 0 && j.fn != nil {
		j.fn(now)
	}
}

// RAID5 is the parity baseline: small writes pay the classic
// read-modify-write penalty (read old data + old parity, write new data +
// new parity); full-stripe writes compute parity from the payload and
// write everything once.
type RAID5 struct {
	arr  *Array
	resp metrics.ResponseStats

	rmwWrites        int64
	fullStripeWrites int64
}

// NewRAID5 returns the baseline controller.
func NewRAID5(arr *Array) *RAID5 { return &RAID5{arr: arr} }

// Responses returns response-time statistics.
func (c *RAID5) Responses() *metrics.ResponseStats { return &c.resp }

// RMWWrites counts strips written via read-modify-write.
func (c *RAID5) RMWWrites() int64 { return c.rmwWrites }

// FullStripeWrites counts stripes written with the full-stripe shortcut.
func (c *RAID5) FullStripeWrites() int64 { return c.fullStripeWrites }

// Submit services one logical request.
func (c *RAID5) Submit(rec trace.Record) error {
	strips, err := c.arr.Geom.Map(rec.Offset, rec.Size)
	if err != nil {
		return fmt.Errorf("raid5: %w", err)
	}
	arrive := rec.At
	record := func(now sim.Time) { c.resp.Add(now - arrive) }
	if rec.Op == trace.Read {
		j := newJoin(len(strips), record)
		for _, s := range strips {
			io := c.arr.DataIO(s.Offset, s.Length, false, false)
			io.OnDone = j.done
			if err := c.arr.Disks[s.Disk].Submit(io); err != nil {
				return fmt.Errorf("raid5: read: %w", err)
			}
		}
		return nil
	}

	fullSet := map[int64]bool{}
	full, _ := c.arr.Geom.FullStripes(rec.Offset, rec.Size)
	for _, s := range full {
		fullSet[s] = true
	}
	// Count the IOs first so the join is exact.
	ios := 0
	seenParity := map[int64]bool{}
	for _, s := range strips {
		if fullSet[s.Stripe] {
			ios++ // one data write; parity counted once per stripe below
		} else {
			ios += 2 // read old data + write new data
		}
		if !seenParity[s.Stripe] {
			seenParity[s.Stripe] = true
			if fullSet[s.Stripe] {
				ios++ // parity write
			} else {
				ios += 2 // read old parity + write new parity
			}
		}
	}
	j := newJoin(ios, record)
	seenParity = map[int64]bool{}
	for _, s := range strips {
		target := c.arr.Disks[s.Disk]
		if fullSet[s.Stripe] {
			c.fullStripeWrites++
			w := c.arr.DataIO(s.Offset, s.Length, true, false)
			w.OnDone = j.done
			if err := target.Submit(w); err != nil {
				return fmt.Errorf("raid5: full-stripe write: %w", err)
			}
		} else {
			c.rmwWrites++
			r := c.arr.DataIO(s.Offset, s.Length, false, false)
			r.OnDone = j.done
			if err := target.Submit(r); err != nil {
				return fmt.Errorf("raid5: rmw read: %w", err)
			}
			w := c.arr.DataIO(s.Offset, s.Length, true, false)
			w.OnDone = j.done
			if err := target.Submit(w); err != nil {
				return fmt.Errorf("raid5: rmw write: %w", err)
			}
		}
		if seenParity[s.Stripe] {
			continue
		}
		seenParity[s.Stripe] = true
		pd := c.arr.Disks[c.arr.Geom.ParityDisk(s.Stripe)]
		pOff := c.arr.Geom.ParityOffset(s.Stripe)
		if !fullSet[s.Stripe] {
			pr := c.arr.DataIO(pOff, s.Length, false, false)
			pr.OnDone = j.done
			if err := pd.Submit(pr); err != nil {
				return fmt.Errorf("raid5: parity read: %w", err)
			}
		}
		pw := c.arr.DataIO(pOff, c.arr.Geom.StripUnitBytes, true, false)
		pw.OnDone = j.done
		if err := pd.Submit(pw); err != nil {
			return fmt.Errorf("raid5: parity write: %w", err)
		}
	}
	return nil
}

// Close finalizes the run (no-op for the baseline).
func (c *RAID5) Close(sim.Time) {}
