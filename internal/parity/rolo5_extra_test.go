package parity

import (
	"testing"

	"github.com/rolo-storage/rolo/internal/disk"
	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/trace"
)

func TestNewArrayValidation(t *testing.T) {
	eng := sim.New()
	cfg := disk.Ultrastar36Z15().WithCapacity(320 << 20)
	if _, err := NewArray(eng, Geometry{}, cfg); err == nil {
		t.Error("invalid geometry accepted")
	}
	big := testGeom()
	big.DataBytesPerDisk = 1 << 40
	if _, err := NewArray(eng, big, cfg); err == nil {
		t.Error("data region beyond disk accepted")
	}
	badDisk := cfg
	badDisk.RPM = 0
	if _, err := NewArray(eng, testGeom(), badDisk); err == nil {
		t.Error("invalid disk accepted")
	}
}

func TestRoLo5ConfigValidation(t *testing.T) {
	bad := []RoLo5Config{
		{RotateFreeFraction: 0, ParityChunkStripes: 8},
		{RotateFreeFraction: 1, ParityChunkStripes: 8},
		{RotateFreeFraction: 0.1, ParityChunkStripes: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := NewRoLo5(&Array{}, RoLo5Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestRoLo5RotatesUnderLoad(t *testing.T) {
	eng := sim.New()
	// Tiny log regions so rotation happens quickly.
	geom := Geometry{Disks: 4, StripUnitBytes: 64 << 10, DataBytesPerDisk: 64 << 20}
	arr, err := NewArray(eng, geom, disk.Ultrastar36Z15().WithCapacity(72<<20))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewRoLo5(arr, DefaultRoLo5Config())
	if err != nil {
		t.Fatal(err)
	}
	// 8 MB log per disk; push ~40 MB of logged writes.
	for i := 0; i < 640; i++ {
		rec := trace.Record{
			At:     sim.Time(i) * 10 * sim.Millisecond,
			Op:     trace.Write,
			Offset: (int64(i) * 331 * 64 << 10) % (geom.VolumeBytes() - (64 << 10)),
			Size:   64 << 10,
		}
		rec.Offset -= rec.Offset % (64 << 10)
		i := i
		_ = i
		if _, err := eng.Schedule(rec.At, func(sim.Time) {
			if err := c.Submit(rec); err != nil {
				t.Error(err)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if c.Rotations() == 0 && c.DirectRMW() == 0 {
		t.Fatal("heavy logging neither rotated nor fell back — space cannot be infinite")
	}
	if c.Responses().Count() != 640 {
		t.Fatalf("responses = %d", c.Responses().Count())
	}
	if c.StaleParityStripes() != 0 {
		t.Fatalf("stale parity after drain = %d", c.StaleParityStripes())
	}
	c.Close(eng.Now())
}

func TestRoLo5ReadPath(t *testing.T) {
	arr, eng := buildArrays(t)
	c, err := NewRoLo5(arr, DefaultRoLo5Config())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(trace.Record{At: 0, Op: trace.Read, Offset: 128 << 10, Size: 128 << 10}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	var reads int64
	for _, d := range arr.Disks {
		reads += d.Stats().BytesRead
	}
	if reads != 128<<10 {
		t.Fatalf("read %d bytes, want %d", reads, 128<<10)
	}
	if got := arr.TotalEnergyJ(); got <= 0 {
		t.Fatalf("energy = %g", got)
	}
}

func TestRAID5Rejects(t *testing.T) {
	arr, _ := buildArrays(t)
	c := NewRAID5(arr)
	if err := c.Submit(trace.Record{Op: trace.Write, Offset: arr.Geom.VolumeBytes(), Size: 4096}); err == nil {
		t.Error("out-of-volume write accepted")
	}
	c.Close(0)
	r, err := NewRoLo5(arr, DefaultRoLo5Config())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Submit(trace.Record{Op: trace.Write, Offset: -1, Size: 4096}); err == nil {
		t.Error("negative offset accepted")
	}
}
