// Package parity implements the paper's stated future work (Section VII):
// RoLo deployed on a parity-based array. It provides a RAID5 substrate —
// left-symmetric rotating parity with read-modify-write small writes — and
// RoLo5, a rotated-parity-logging controller that defers the small-write
// parity penalty by logging writes into the rotating free-space pool and
// reconstructing parity in idle time slots, the way RoLo's decentralized
// destaging works on RAID10.
package parity

import (
	"fmt"
)

// Geometry describes a RAID5 layout: Disks drives with a rotating parity
// strip (left-symmetric), StripUnitBytes per strip, and DataBytesPerDisk
// of usable space per disk (the remainder of each drive is logging space
// for RoLo5).
type Geometry struct {
	Disks            int
	StripUnitBytes   int64
	DataBytesPerDisk int64
}

// Validate reports whether the geometry is usable.
func (g Geometry) Validate() error {
	switch {
	case g.Disks < 3:
		return fmt.Errorf("parity: RAID5 needs >= 3 disks, have %d", g.Disks)
	case g.StripUnitBytes <= 0:
		return fmt.Errorf("parity: non-positive strip unit %d", g.StripUnitBytes)
	case g.DataBytesPerDisk <= 0:
		return fmt.Errorf("parity: non-positive data capacity %d", g.DataBytesPerDisk)
	case g.DataBytesPerDisk%g.StripUnitBytes != 0:
		return fmt.Errorf("parity: data capacity %d not a multiple of strip unit %d",
			g.DataBytesPerDisk, g.StripUnitBytes)
	}
	return nil
}

// VolumeBytes is the logical capacity: (Disks-1) data strips per stripe.
func (g Geometry) VolumeBytes() int64 {
	stripesPerDisk := g.DataBytesPerDisk / g.StripUnitBytes
	return stripesPerDisk * int64(g.Disks-1) * g.StripUnitBytes
}

// Strip addresses one strip-aligned fragment of a request.
type Strip struct {
	Stripe int64 // stripe number
	Disk   int   // disk holding this data strip
	Offset int64 // byte offset within the disk's data region
	Within int64 // offset within the strip
	Length int64
}

// ParityDisk returns the disk holding the parity strip of a stripe
// (left-symmetric rotation: parity walks backwards across the array).
func (g Geometry) ParityDisk(stripe int64) int {
	n := int64(g.Disks)
	return int((n - 1 - stripe%n) % n)
}

// ParityOffset returns the byte offset of a stripe's parity strip within
// the parity disk's data region.
func (g Geometry) ParityOffset(stripe int64) int64 {
	return stripe * g.StripUnitBytes
}

// Map splits the volume range [offset, offset+length) into data strips.
func (g Geometry) Map(offset, length int64) ([]Strip, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if offset < 0 || length <= 0 || offset+length > g.VolumeBytes() {
		return nil, fmt.Errorf("parity: range [%d,%d) outside volume of %d bytes",
			offset, offset+length, g.VolumeBytes())
	}
	su := g.StripUnitBytes
	dataPerStripe := int64(g.Disks-1) * su
	var out []Strip
	for length > 0 {
		stripe := offset / dataPerStripe
		inStripe := offset % dataPerStripe
		dataIdx := inStripe / su // 0..Disks-2: which data strip of the stripe
		within := inStripe % su
		frag := su - within
		if frag > length {
			frag = length
		}
		// Left-symmetric: data strips occupy the disks after the parity
		// disk, wrapping around.
		pd := g.ParityDisk(stripe)
		dd := (pd + 1 + int(dataIdx)) % g.Disks
		out = append(out, Strip{
			Stripe: stripe,
			Disk:   dd,
			Offset: stripe*su + within,
			Within: within,
			Length: frag,
		})
		offset += frag
		length -= frag
	}
	return out, nil
}

// FullStripes reports which stripes of the range are fully covered by the
// request (eligible for the full-stripe write optimization) and whether
// every byte belongs to a full stripe.
func (g Geometry) FullStripes(offset, length int64) (full []int64, allFull bool) {
	dataPerStripe := int64(g.Disks-1) * g.StripUnitBytes
	first := offset / dataPerStripe
	last := (offset + length - 1) / dataPerStripe
	allFull = true
	for s := first; s <= last; s++ {
		start := s * dataPerStripe
		end := start + dataPerStripe
		if offset <= start && offset+length >= end {
			full = append(full, s)
		} else {
			allFull = false
		}
	}
	return full, allFull
}
