package parity

import (
	"testing"
	"testing/quick"

	"github.com/rolo-storage/rolo/internal/disk"
	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/trace"
)

func testGeom() Geometry {
	return Geometry{Disks: 5, StripUnitBytes: 64 << 10, DataBytesPerDisk: 256 << 20}
}

func TestGeometryValidate(t *testing.T) {
	if err := testGeom().Validate(); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
	bad := []Geometry{
		{Disks: 2, StripUnitBytes: 64 << 10, DataBytesPerDisk: 1 << 20},
		{Disks: 5, StripUnitBytes: 0, DataBytesPerDisk: 1 << 20},
		{Disks: 5, StripUnitBytes: 64 << 10, DataBytesPerDisk: 0},
		{Disks: 5, StripUnitBytes: 64 << 10, DataBytesPerDisk: 100},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, g)
		}
	}
}

func TestVolumeBytes(t *testing.T) {
	g := testGeom()
	// 4 data strips per stripe out of 5 disks.
	want := g.DataBytesPerDisk * 4
	if got := g.VolumeBytes(); got != want {
		t.Fatalf("VolumeBytes = %d, want %d", got, want)
	}
}

func TestParityRotates(t *testing.T) {
	g := testGeom()
	seen := map[int]bool{}
	for s := int64(0); s < int64(g.Disks); s++ {
		pd := g.ParityDisk(s)
		if pd < 0 || pd >= g.Disks {
			t.Fatalf("parity disk %d out of range", pd)
		}
		if seen[pd] {
			t.Fatalf("parity disk %d repeats within one rotation", pd)
		}
		seen[pd] = true
	}
}

func TestMapAvoidsParityDisk(t *testing.T) {
	g := testGeom()
	// Every data strip must land on a disk other than its stripe's parity
	// disk, and cover the full request.
	for off := int64(0); off < 10*(int64(g.Disks-1))*g.StripUnitBytes; off += 37 * 1024 {
		strips, err := g.Map(off, 200<<10)
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, s := range strips {
			if s.Disk == g.ParityDisk(s.Stripe) {
				t.Fatalf("data strip on parity disk: %+v", s)
			}
			total += s.Length
		}
		if total != 200<<10 {
			t.Fatalf("mapped %d of %d bytes", total, 200<<10)
		}
	}
}

// Property: Map tiles requests without loss and strips stay in bounds.
func TestQuickMapConservation(t *testing.T) {
	g := testGeom()
	f := func(offRaw, lenRaw uint32) bool {
		off := int64(offRaw) % (g.VolumeBytes() - 1)
		length := int64(lenRaw)%(1<<20) + 1
		if off+length > g.VolumeBytes() {
			length = g.VolumeBytes() - off
		}
		strips, err := g.Map(off, length)
		if err != nil {
			return false
		}
		var total int64
		for _, s := range strips {
			if s.Disk < 0 || s.Disk >= g.Disks {
				return false
			}
			if s.Offset < 0 || s.Offset+s.Length > g.DataBytesPerDisk {
				return false
			}
			total += s.Length
		}
		return total == length
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFullStripes(t *testing.T) {
	g := testGeom()
	dataPerStripe := int64(g.Disks-1) * g.StripUnitBytes
	full, allFull := g.FullStripes(0, dataPerStripe)
	if len(full) != 1 || !allFull {
		t.Fatalf("one exact stripe: full=%v allFull=%v", full, allFull)
	}
	full, allFull = g.FullStripes(0, dataPerStripe/2)
	if len(full) != 0 || allFull {
		t.Fatalf("half stripe: full=%v allFull=%v", full, allFull)
	}
	full, allFull = g.FullStripes(dataPerStripe/2, 2*dataPerStripe)
	if len(full) != 1 || allFull {
		t.Fatalf("straddling: full=%v allFull=%v", full, allFull)
	}
}

func buildArrays(t *testing.T) (*Array, *sim.Engine) {
	t.Helper()
	eng := sim.New()
	arr, err := NewArray(eng, testGeom(), disk.Ultrastar36Z15().WithCapacity(320<<20))
	if err != nil {
		t.Fatal(err)
	}
	return arr, eng
}

func TestRAID5SmallWriteRMW(t *testing.T) {
	arr, eng := buildArrays(t)
	c := NewRAID5(arr)
	// One strip-sized write: RMW = 2 reads + 2 writes.
	if err := c.Submit(trace.Record{At: 0, Op: trace.Write, Offset: 0, Size: 64 << 10}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	var reads, writes int64
	for _, d := range arr.Disks {
		st := d.Stats()
		reads += st.BytesRead
		writes += st.BytesWritten
	}
	if reads != 2*64<<10 {
		t.Fatalf("RMW read %d bytes, want %d", reads, 2*64<<10)
	}
	if writes != 2*64<<10 {
		t.Fatalf("RMW wrote %d bytes, want %d", writes, 2*64<<10)
	}
	if c.RMWWrites() != 1 || c.FullStripeWrites() != 0 {
		t.Fatalf("rmw=%d full=%d", c.RMWWrites(), c.FullStripeWrites())
	}
	if c.Responses().Count() != 1 {
		t.Fatal("response not recorded")
	}
}

func TestRAID5FullStripeSkipsRMW(t *testing.T) {
	arr, eng := buildArrays(t)
	c := NewRAID5(arr)
	dataPerStripe := int64(arr.Geom.Disks-1) * arr.Geom.StripUnitBytes
	if err := c.Submit(trace.Record{At: 0, Op: trace.Write, Offset: 0, Size: dataPerStripe}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	var reads int64
	for _, d := range arr.Disks {
		reads += d.Stats().BytesRead
	}
	if reads != 0 {
		t.Fatalf("full-stripe write read %d bytes", reads)
	}
	if c.FullStripeWrites() != int64(arr.Geom.Disks-1) {
		t.Fatalf("full-stripe strips = %d", c.FullStripeWrites())
	}
}

func TestRoLo5LoggedWriteIsTwoIOs(t *testing.T) {
	arr, eng := buildArrays(t)
	c, err := NewRoLo5(arr, DefaultRoLo5Config())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(trace.Record{At: 0, Op: trace.Write, Offset: 0, Size: 64 << 10}); err != nil {
		t.Fatal(err)
	}
	// Parity is stale the moment the logged write is accepted.
	if c.StaleParityStripes() != 1 {
		t.Fatalf("stale stripes = %d, want 1", c.StaleParityStripes())
	}
	// Before the background guard opens (10 ms), the foreground path is
	// exactly two IOs, and no disk that serviced foreground work may have
	// run sweep IOs yet (disks the request never touched are free to).
	eng.RunUntil(9900 * sim.Microsecond)
	var fgIOs int64
	for _, d := range arr.Disks {
		st := d.Stats()
		fgIOs += st.ForegroundIOs
		if st.ForegroundIOs > 0 && st.BackgroundIOs > 0 {
			t.Fatalf("disk %d ran sweep IOs inside its guard window", d.ID())
		}
	}
	if fgIOs != 2 {
		t.Fatalf("logged write took %d foreground IOs, want 2", fgIOs)
	}
	if c.LoggedWrites() != 1 || c.DirectRMW() != 0 {
		t.Fatalf("logged=%d rmw=%d", c.LoggedWrites(), c.DirectRMW())
	}
	// After the drain, the sweep has rebuilt the stripe.
	eng.Run()
	if c.StaleParityStripes() != 0 {
		t.Fatalf("stale stripes after drain = %d", c.StaleParityStripes())
	}
}

func TestRoLo5SweepRebuildsParityAndReclaims(t *testing.T) {
	arr, eng := buildArrays(t)
	c, err := NewRoLo5(arr, DefaultRoLo5Config())
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]trace.Record, 32)
	for i := range recs {
		recs[i] = trace.Record{
			At:     sim.Time(i) * 20 * sim.Millisecond,
			Op:     trace.Write,
			Offset: int64(i) * (64 << 10),
			Size:   64 << 10,
		}
	}
	for i := range recs {
		rec := recs[i]
		if _, err := eng.Schedule(rec.At, func(sim.Time) {
			if err := c.Submit(rec); err != nil {
				t.Error(err)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if c.StaleParityStripes() != 0 {
		t.Fatalf("stale stripes after drain = %d", c.StaleParityStripes())
	}
	if c.SweptStripes() == 0 {
		t.Fatal("sweeper never ran")
	}
	// All log extents reclaimed.
	for i, sp := range c.spaces {
		if sp.UsedBytes() != 0 {
			t.Fatalf("logger %d still holds %d bytes", i, sp.UsedBytes())
		}
	}
	// The sweep ran at background priority.
	var bg int64
	for _, d := range arr.Disks {
		bg += d.Stats().BackgroundIOs
	}
	if bg == 0 {
		t.Fatal("sweep used no background IOs")
	}
}

func TestRoLo5LogAvoidsDataDisk(t *testing.T) {
	arr, _ := buildArrays(t)
	c, err := NewRoLo5(arr, DefaultRoLo5Config())
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < arr.Geom.Disks; d++ {
		if lg := c.pickLogger(d); lg == d {
			t.Fatalf("logger %d equals data disk", lg)
		}
	}
}

func TestRoLo5BeatsRAID5OnSmallWrites(t *testing.T) {
	// The headline claim of the extension: logged small writes cost two
	// I/Os instead of four, so mean response time drops well below the
	// RMW baseline under a random small-write workload.
	syn := trace.Uniform70Random64K(60, 30*sim.Second, 11)
	mean := func(useRoLo bool) float64 {
		arr, eng := buildArrays(t)
		var submit func(trace.Record) error
		var respMean func() float64
		if useRoLo {
			c, err := NewRoLo5(arr, DefaultRoLo5Config())
			if err != nil {
				t.Fatal(err)
			}
			submit = c.Submit
			respMean = c.Responses().Mean
		} else {
			c := NewRAID5(arr)
			submit = c.Submit
			respMean = c.Responses().Mean
		}
		recs, err := syn.Generate(arr.Geom.VolumeBytes())
		if err != nil {
			t.Fatal(err)
		}
		for i := range recs {
			rec := recs[i]
			if _, err := eng.Schedule(rec.At, func(sim.Time) {
				if err := submit(rec); err != nil {
					t.Error(err)
				}
			}); err != nil {
				t.Fatal(err)
			}
		}
		eng.Run()
		return respMean()
	}
	raid5 := mean(false)
	rolo5 := mean(true)
	if rolo5 >= raid5 {
		t.Fatalf("RoLo5 mean %.2f ms not better than RAID5 %.2f ms", rolo5, raid5)
	}
	t.Logf("small-write mean: RAID5 %.2f ms vs RoLo5 %.2f ms (%.1fx)", raid5, rolo5, raid5/rolo5)
}
