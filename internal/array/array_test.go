package array

import (
	"testing"

	"github.com/rolo-storage/rolo/internal/disk"
	"github.com/rolo-storage/rolo/internal/intervals"
	"github.com/rolo-storage/rolo/internal/raid"
	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/trace"
)

func testArray(t *testing.T, pairs, extras int) (*Array, *sim.Engine) {
	t.Helper()
	eng := sim.New()
	geom := raid.Geometry{
		Pairs:            pairs,
		StripeUnitBytes:  64 << 10,
		DataBytesPerDisk: 512 << 20,
	}
	cfg := disk.Ultrastar36Z15().WithCapacity(1 << 30)
	a, err := New(eng, geom, cfg, extras)
	if err != nil {
		t.Fatal(err)
	}
	return a, eng
}

func TestNewValidation(t *testing.T) {
	eng := sim.New()
	cfg := disk.Ultrastar36Z15().WithCapacity(1 << 30)
	if _, err := New(eng, raid.Geometry{}, cfg, 0); err == nil {
		t.Error("invalid geometry accepted")
	}
	big := raid.Geometry{Pairs: 2, StripeUnitBytes: 64 << 10, DataBytesPerDisk: 2 << 30}
	if _, err := New(eng, big, cfg, 0); err == nil {
		t.Error("data region larger than disk accepted")
	}
}

func TestArrayLayout(t *testing.T) {
	a, _ := testArray(t, 3, 1)
	if len(a.Primaries) != 3 || len(a.Mirrors) != 3 || len(a.Extras) != 1 {
		t.Fatalf("layout %d/%d/%d", len(a.Primaries), len(a.Mirrors), len(a.Extras))
	}
	if got := len(a.AllDisks()); got != 7 {
		t.Fatalf("AllDisks = %d, want 7", got)
	}
	// IDs must be unique.
	seen := map[int]bool{}
	for _, d := range a.AllDisks() {
		if seen[d.ID()] {
			t.Fatalf("duplicate disk ID %d", d.ID())
		}
		seen[d.ID()] = true
	}
	if got := a.LogRegionBytes(); got != (1<<30)-(512<<20) {
		t.Fatalf("LogRegionBytes = %d", got)
	}
}

func TestSectorRange(t *testing.T) {
	cases := []struct {
		off, length, lba, sectors int64
	}{
		{0, 512, 0, 1},
		{0, 513, 0, 2},
		{512, 512, 1, 1},
		{100, 100, 0, 1},
		{511, 2, 0, 2},
		{1024, 4096, 2, 8},
	}
	for _, c := range cases {
		lba, sectors := SectorRange(c.off, c.length)
		if lba != c.lba || sectors != c.sectors {
			t.Errorf("SectorRange(%d,%d) = (%d,%d), want (%d,%d)",
				c.off, c.length, lba, sectors, c.lba, c.sectors)
		}
	}
}

func TestLogIOAddressesLogRegion(t *testing.T) {
	a, _ := testArray(t, 2, 0)
	io := a.LogIO(0, 4096, true, false)
	wantLBA := (int64(512) << 20) / disk.SectorSize
	if io.LBA != wantLBA {
		t.Fatalf("log IO LBA = %d, want %d (start of log region)", io.LBA, wantLBA)
	}
	dataIO := a.DataIO(0, 4096, true, false)
	if dataIO.LBA != 0 {
		t.Fatalf("data IO LBA = %d, want 0", dataIO.LBA)
	}
}

func TestJoin(t *testing.T) {
	fired := 0
	j := NewJoin(3, func(sim.Time) { fired++ })
	j.Done(1)
	j.Done(2)
	if fired != 0 {
		t.Fatal("join fired early")
	}
	j.Done(3)
	if fired != 1 {
		t.Fatalf("join fired %d times, want 1", fired)
	}
}

func TestCopierCopiesEverything(t *testing.T) {
	a, eng := testArray(t, 1, 0)
	var work intervals.Set
	work.Add(0, 3<<20)
	work.Add(10<<20, 11<<20)
	cp := NewCopier(eng, a.Primaries[0], []*disk.Disk{a.Mirrors[0]}, &work, 1<<20,
		func(sp intervals.Span) *disk.IO { return a.DataIO(sp.Start, sp.Len(), false, true) },
		func(sp intervals.Span) *disk.IO { return a.DataIO(sp.Start, sp.Len(), true, true) },
	)
	var drainedAt sim.Time
	cp.OnDrained = func(now sim.Time) { drainedAt = now }
	cp.Kick()
	eng.Run()
	if cp.Err() != nil {
		t.Fatal(cp.Err())
	}
	if got := cp.BytesCopied(); got != 4<<20 {
		t.Fatalf("BytesCopied = %d, want %d", got, 4<<20)
	}
	if drainedAt == 0 {
		t.Fatal("OnDrained never fired")
	}
	src := a.Primaries[0].Stats()
	dst := a.Mirrors[0].Stats()
	if src.BytesRead < 4<<20 {
		t.Fatalf("source read %d bytes", src.BytesRead)
	}
	if dst.BytesWritten < 4<<20 {
		t.Fatalf("destination wrote %d bytes", dst.BytesWritten)
	}
	if src.BackgroundIOs == 0 || dst.BackgroundIOs == 0 {
		t.Fatal("copier must run at background priority")
	}
}

func TestCopierYieldsToForeground(t *testing.T) {
	a, eng := testArray(t, 1, 0)
	var work intervals.Set
	work.Add(0, 50<<20) // long copy
	cp := NewCopier(eng, a.Primaries[0], []*disk.Disk{a.Mirrors[0]}, &work, 1<<20,
		func(sp intervals.Span) *disk.IO { return a.DataIO(sp.Start, sp.Len(), false, true) },
		func(sp intervals.Span) *disk.IO { return a.DataIO(sp.Start, sp.Len(), true, true) },
	)
	cp.Kick()
	// A foreground read arriving mid-copy must complete long before the
	// copy does: it only ever waits for one in-flight chunk.
	var fgDone sim.Time
	eng.After(100*sim.Millisecond, func(sim.Time) {
		io := a.DataIO(400<<20, 64<<10, false, false)
		io.OnDone = func(now sim.Time) { fgDone = now }
		if err := a.Primaries[0].Submit(io); err != nil {
			t.Errorf("fg submit: %v", err)
		}
	})
	eng.Run()
	if fgDone == 0 {
		t.Fatal("foreground IO never completed")
	}
	latency := fgDone - 100*sim.Millisecond
	if latency > 60*sim.Millisecond {
		t.Fatalf("foreground latency %v behind background copy; want under ~60ms", latency)
	}
}

func TestCopierRefillWhileRunning(t *testing.T) {
	a, eng := testArray(t, 1, 0)
	var work intervals.Set
	work.Add(0, 1<<20)
	drains := 0
	cp := NewCopier(eng, a.Primaries[0], []*disk.Disk{a.Mirrors[0]}, &work, 1<<20,
		func(sp intervals.Span) *disk.IO { return a.DataIO(sp.Start, sp.Len(), false, true) },
		func(sp intervals.Span) *disk.IO { return a.DataIO(sp.Start, sp.Len(), true, true) },
	)
	cp.OnDrained = func(sim.Time) { drains++ }
	cp.Kick()
	eng.After(sim.Millisecond, func(sim.Time) {
		work.Add(5<<20, 6<<20)
		cp.Kick()
	})
	eng.Run()
	if cp.BytesCopied() != 2<<20 {
		t.Fatalf("BytesCopied = %d, want %d", cp.BytesCopied(), 2<<20)
	}
}

func TestSpinDownWhenIdleImmediate(t *testing.T) {
	a, eng := testArray(t, 1, 0)
	SpinDownWhenIdle(eng, a.Mirrors[0], sim.Second, nil)
	eng.Run()
	if a.Mirrors[0].State() != disk.Standby {
		t.Fatalf("state = %v, want STANDBY", a.Mirrors[0].State())
	}
}

func TestSpinDownWhenIdleWaitsForDrain(t *testing.T) {
	a, eng := testArray(t, 1, 0)
	d := a.Mirrors[0]
	if err := d.Submit(a.DataIO(0, 8<<20, true, false)); err != nil {
		t.Fatal(err)
	}
	SpinDownWhenIdle(eng, d, 10*sim.Millisecond, nil)
	eng.Run()
	if d.State() != disk.Standby {
		t.Fatalf("state = %v, want STANDBY after drain", d.State())
	}
	st := d.Stats()
	if st.IOsCompleted != 1 {
		t.Fatal("IO was lost")
	}
}

func TestSpinDownWhenIdleAbortsOnPredicate(t *testing.T) {
	a, eng := testArray(t, 1, 0)
	d := a.Mirrors[0]
	if err := d.Submit(a.DataIO(0, 8<<20, true, false)); err != nil {
		t.Fatal(err)
	}
	keep := false
	SpinDownWhenIdle(eng, d, 10*sim.Millisecond, func() bool { return keep })
	eng.Run()
	if d.State() == disk.Standby {
		t.Fatal("spin-down proceeded despite false predicate")
	}
}

func TestReplayEmptyTrace(t *testing.T) {
	a, eng := testArray(t, 1, 0)
	if _, err := Replay(eng, a, nopController{}, nil); err == nil {
		t.Fatal("empty trace accepted")
	}
}

type nopController struct{}

func (nopController) Submit(trace.Record) error { return nil }
func (nopController) Close(sim.Time)            {}

func TestStateDurationsAggregates(t *testing.T) {
	a, eng := testArray(t, 2, 0)
	eng.After(2*sim.Second, func(sim.Time) {})
	eng.Run()
	durs := StateDurations(a.AllDisks())
	if got := durs[disk.Idle]; got != 4*2*sim.Second {
		t.Fatalf("aggregate idle = %v, want 8s across 4 disks", got)
	}
}
