package array

import (
	"errors"

	"github.com/rolo-storage/rolo/internal/disk"
	"github.com/rolo-storage/rolo/internal/sim"
)

// SpinDownWhenIdle spins d down as soon as it drains. If the disk is busy
// the attempt is retried after retry. Retries stop when the disk meanwhile
// entered Standby (already down) or SpinningUp (someone needs it again), or
// when the should predicate (if non-nil) reports false — callers use it to
// abandon the spin-down when the disk's role changes (e.g. it became the
// on-duty logger again). The predicate guarantee matters: without it a
// busy disk would be retried forever and the event loop would never drain.
func SpinDownWhenIdle(eng *sim.Engine, d *disk.Disk, retry sim.Time, should func() bool) {
	if should != nil && !should() {
		return
	}
	switch d.State() {
	case disk.Standby, disk.SpinningDown, disk.SpinningUp:
		return
	}
	err := d.SpinDown()
	if err == nil {
		return
	}
	if errors.Is(err, disk.ErrBusy) || errors.Is(err, disk.ErrBadState) {
		eng.After(retry, func(sim.Time) { SpinDownWhenIdle(eng, d, retry, should) })
	}
}
