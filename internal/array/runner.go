package array

import (
	"fmt"

	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/trace"
)

// Controller is a storage-scheme controller driving an Array. Submit is
// invoked at each request's arrival time; Close is invoked after the run
// fully drains so the controller can finalize bookkeeping (phase logs,
// outstanding destages).
type Controller interface {
	// Submit accepts a logical volume request at the current simulation
	// time (rec.At).
	Submit(rec trace.Record) error
	// Close finalizes accounting at the end of a run.
	Close(now sim.Time)
}

// ReplayResult carries run-wide observables computed by the runner.
type ReplayResult struct {
	// Horizon is the trace duration (last arrival time).
	Horizon sim.Time
	// EnergyAtHorizonJ is cumulative array energy at the horizon, the
	// figure used for all energy comparisons (schemes may drain
	// background work past the horizon).
	EnergyAtHorizonJ float64
	// DrainedAt is when the last event fired.
	DrainedAt sim.Time
}

// Replay schedules every record into the controller at its arrival time,
// runs the engine until all work drains, and snapshots energy at the trace
// horizon. The records must be time-ordered.
func Replay(eng *sim.Engine, a *Array, ctrl Controller, recs []trace.Record) (ReplayResult, error) {
	var res ReplayResult
	if len(recs) == 0 {
		return res, fmt.Errorf("array: empty trace")
	}
	// One arrival handler serves every record: arrival events fire in
	// scheduling order (time-ordered records, FIFO among equal times), so a
	// cursor visits the records exactly as per-record closures would, for N
	// fewer closure allocations on the replay setup path.
	var submitErr error
	next := 0
	arrival := func(sim.Time) {
		rec := recs[next]
		next++
		if submitErr != nil {
			return
		}
		if err := ctrl.Submit(rec); err != nil {
			submitErr = fmt.Errorf("array: submit record at %v: %w", rec.At, err)
			eng.Stop()
		}
	}
	for i := range recs {
		if i > 0 && recs[i].At < recs[i-1].At {
			return res, fmt.Errorf("array: trace not time-ordered at record %d (%v after %v)",
				i, recs[i].At, recs[i-1].At)
		}
		if _, err := eng.Schedule(recs[i].At, arrival); err != nil {
			return res, err
		}
	}
	res.Horizon = recs[len(recs)-1].At
	if _, err := eng.Schedule(res.Horizon, func(sim.Time) {
		res.EnergyAtHorizonJ = a.TotalEnergyJ()
	}); err != nil {
		return res, err
	}
	eng.Run()
	if submitErr != nil {
		return res, submitErr
	}
	res.DrainedAt = eng.Now()
	ctrl.Close(eng.Now())
	return res, nil
}
