package array

import (
	"errors"
	"testing"

	"github.com/rolo-storage/rolo/internal/disk"
	"github.com/rolo-storage/rolo/internal/intervals"
	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/trace"
)

// echoController submits a single disk IO per record so Replay exercises
// the full loop.
type echoController struct {
	a    *Array
	fail error
}

func (c *echoController) Submit(rec trace.Record) error {
	if c.fail != nil {
		return c.fail
	}
	return c.a.Primaries[0].Submit(c.a.DataIO(rec.Offset%(1<<20), rec.Size, rec.Op == trace.Write, false))
}

func (c *echoController) Close(sim.Time) {}

func TestReplayEndToEnd(t *testing.T) {
	a, eng := testArray(t, 1, 0)
	ctrl := &echoController{a: a}
	recs := []trace.Record{
		{At: 0, Op: trace.Write, Offset: 0, Size: 4096},
		{At: sim.Second, Op: trace.Read, Offset: 8192, Size: 4096},
		{At: 2 * sim.Second, Op: trace.Write, Offset: 16384, Size: 4096},
	}
	res, err := Replay(eng, a, ctrl, recs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Horizon != 2*sim.Second {
		t.Fatalf("horizon = %v", res.Horizon)
	}
	if res.DrainedAt < res.Horizon {
		t.Fatalf("drained %v before horizon", res.DrainedAt)
	}
	if res.EnergyAtHorizonJ <= 0 {
		t.Fatalf("energy at horizon = %g", res.EnergyAtHorizonJ)
	}
	// Energy keeps accruing after the horizon while work drains.
	if total := a.TotalEnergyJ(); total < res.EnergyAtHorizonJ {
		t.Fatalf("total energy %g below horizon snapshot %g", total, res.EnergyAtHorizonJ)
	}
	if a.TotalSpinCycles() != 0 {
		t.Fatal("unexpected spin cycles")
	}
}

func TestReplayPropagatesSubmitError(t *testing.T) {
	a, eng := testArray(t, 1, 0)
	sentinel := errors.New("boom")
	ctrl := &echoController{a: a, fail: sentinel}
	recs := []trace.Record{{At: 0, Op: trace.Write, Offset: 0, Size: 4096}}
	if _, err := Replay(eng, a, ctrl, recs); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

func TestReplayStopsAfterFirstError(t *testing.T) {
	a, eng := testArray(t, 1, 0)
	calls := 0
	ctrl := &funcController{fn: func(trace.Record) error {
		calls++
		if calls == 2 {
			return errors.New("second record fails")
		}
		return nil
	}}
	recs := []trace.Record{
		{At: 0, Op: trace.Write, Offset: 0, Size: 4096},
		{At: 1, Op: trace.Write, Offset: 0, Size: 4096},
		{At: 2, Op: trace.Write, Offset: 0, Size: 4096},
	}
	if _, err := Replay(eng, a, ctrl, recs); err == nil {
		t.Fatal("error swallowed")
	}
	if calls > 2 {
		t.Fatalf("submissions continued after failure: %d calls", calls)
	}
}

type funcController struct {
	fn func(trace.Record) error
}

func (c *funcController) Submit(rec trace.Record) error { return c.fn(rec) }
func (c *funcController) Close(sim.Time)                {}

func TestCopierRunningAndErr(t *testing.T) {
	a, eng := testArray(t, 1, 0)
	var work intervals.Set
	work.Add(0, 1<<20)
	cp := NewCopier(eng, a.Primaries[0], []*disk.Disk{a.Mirrors[0]}, &work, 256<<10,
		func(sp intervals.Span) *disk.IO { return a.DataIO(sp.Start, sp.Len(), false, true) },
		func(sp intervals.Span) *disk.IO { return a.DataIO(sp.Start, sp.Len(), true, true) },
	)
	if cp.Running() {
		t.Fatal("copier running before Kick")
	}
	cp.Kick()
	if !cp.Running() {
		t.Fatal("copier not running after Kick")
	}
	eng.Run()
	if cp.Running() {
		t.Fatal("copier still running after drain")
	}
	if cp.Err() != nil {
		t.Fatal(cp.Err())
	}
	// A translator producing out-of-range IOs surfaces through Err.
	var badWork intervals.Set
	badWork.Add(0, 1<<20)
	bad := NewCopier(eng, a.Primaries[0], []*disk.Disk{a.Mirrors[0]}, &badWork, 256<<10,
		func(sp intervals.Span) *disk.IO {
			return &disk.IO{LBA: -1, Sectors: 1, Background: true}
		},
		func(sp intervals.Span) *disk.IO { return a.DataIO(sp.Start, sp.Len(), true, true) },
	)
	bad.Kick()
	eng.Run()
	if bad.Err() == nil {
		t.Fatal("bad addressing not surfaced")
	}
}
