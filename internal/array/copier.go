package array

import (
	"github.com/rolo-storage/rolo/internal/disk"
	"github.com/rolo-storage/rolo/internal/intervals"
	"github.com/rolo-storage/rolo/internal/sim"
)

// Copier drains an interval set by copying it chunk-by-chunk from a source
// disk to one or more destination disks, at background priority, keeping a
// single chunk in flight. This is the destaging engine: it consumes only
// free disk bandwidth because background I/Os are dispatched by disks only
// when no foreground work is pending.
//
// Spans are interpreted as byte offsets; srcIO and dstIO translate a span
// into concrete IOs (data region vs log region addressing is up to the
// caller). Work may be added while the copier runs; Done fires when the
// set drains.
type Copier struct {
	eng   *sim.Engine
	src   *disk.Disk
	dsts  []*disk.Disk
	work  *intervals.Set
	chunk int64

	// srcIO and dstIO build the read and write IOs for a span. dstIO is
	// invoked once per destination disk.
	srcIO func(sp intervals.Span) *disk.IO
	dstIO func(sp intervals.Span) *disk.IO

	// OnDrained fires each time the work set empties (it may refill and
	// drain again).
	OnDrained func(now sim.Time)

	running     bool
	bytesCopied int64
	err         error

	// Per-chunk completion plumbing, bound once at construction: the
	// copier keeps a single chunk in flight, so cur, the write-phase join
	// and the two closures can be reused for every chunk (DESIGN §11).
	cur        intervals.Span
	join       Join
	readDoneFn func(now sim.Time)
	joinDoneFn func(now sim.Time)
}

// NewCopier constructs a copier. The interval set is owned by the caller
// and may be extended between chunks.
func NewCopier(eng *sim.Engine, src *disk.Disk, dsts []*disk.Disk, work *intervals.Set,
	chunk int64, srcIO, dstIO func(sp intervals.Span) *disk.IO) *Copier {
	c := &Copier{
		eng: eng, src: src, dsts: dsts, work: work, chunk: chunk,
		srcIO: srcIO, dstIO: dstIO,
	}
	c.readDoneFn = func(at sim.Time) { c.writePhase(at) }
	c.join.fn = func(at sim.Time) {
		c.bytesCopied += c.cur.Len()
		c.step(at)
	}
	c.joinDoneFn = c.join.Done
	return c
}

// Running reports whether a chunk is in flight.
func (c *Copier) Running() bool { return c.running }

// BytesCopied returns the total bytes copied so far.
func (c *Copier) BytesCopied() int64 { return c.bytesCopied }

// Err returns the first submission error, which halts the copier. A
// non-nil error indicates broken addressing in the caller's translators.
func (c *Copier) Err() error { return c.err }

// Kick starts (or resumes) the copy loop if work is pending. It is safe to
// call at any time, including while running.
func (c *Copier) Kick() {
	if c.running {
		return
	}
	c.step(c.eng.Now())
}

func (c *Copier) step(now sim.Time) {
	sp, ok := c.work.PopFirst(c.chunk)
	if !ok {
		c.running = false
		if c.OnDrained != nil {
			c.OnDrained(now)
		}
		return
	}
	c.running = true
	c.cur = sp
	read := c.srcIO(sp)
	read.Background = true
	read.Write = false
	read.OnDone = c.readDoneFn
	if err := c.src.Submit(read); err != nil {
		// Submission only fails on malformed addressing — a bug in the
		// caller's translators. Halt and expose via Err.
		c.running = false
		c.err = err
	}
}

func (c *Copier) writePhase(now sim.Time) {
	sp := c.cur
	c.join.remaining = len(c.dsts)
	for _, dst := range c.dsts {
		w := c.dstIO(sp)
		w.Background = true
		w.Write = true
		w.OnDone = c.joinDoneFn
		if err := dst.Submit(w); err != nil {
			c.running = false
			c.err = err
			return
		}
	}
}
