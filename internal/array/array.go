// Package array provides the disk-array scaffolding shared by every scheme
// controller: disk construction and addressing for a RAID10 layout with
// per-disk logging regions, sub-I/O join counters, a background
// interval-copy engine used by all destagers, and the trace-replay runner.
package array

import (
	"fmt"

	"github.com/rolo-storage/rolo/internal/disk"
	"github.com/rolo-storage/rolo/internal/raid"
	"github.com/rolo-storage/rolo/internal/sim"
)

// Array is a RAID10 disk array: Pairs primaries, Pairs mirrors, and
// optional extra disks (GRAID's dedicated logger). Each disk's LBA space is
// split into a data region (the first Geom.DataBytesPerDisk bytes) and a
// logging region (the remainder).
type Array struct {
	Eng     *sim.Engine
	Geom    raid.Geometry
	DiskCfg disk.Config

	Primaries []*disk.Disk
	Mirrors   []*disk.Disk
	Extras    []*disk.Disk

	// ios is the array-wide IO free list: DataIO/LogIO/PooledIO draw
	// from it and the drives recycle completed requests back into it,
	// so steady-state request submission allocates nothing.
	ios disk.IOPool
}

// New builds an array with the given geometry. extras additional disks are
// created beyond the mirrored pairs.
func New(eng *sim.Engine, geom raid.Geometry, cfg disk.Config, extras int) (*Array, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if geom.DataBytesPerDisk > cfg.CapacityBytes {
		return nil, fmt.Errorf("array: data region %d exceeds disk capacity %d",
			geom.DataBytesPerDisk, cfg.CapacityBytes)
	}
	a := &Array{Eng: eng, Geom: geom, DiskCfg: cfg}
	id := 0
	mk := func() (*disk.Disk, error) {
		d, err := disk.New(id, cfg, eng)
		id++
		return d, err
	}
	for i := 0; i < geom.Pairs; i++ {
		d, err := mk()
		if err != nil {
			return nil, err
		}
		a.Primaries = append(a.Primaries, d)
	}
	for i := 0; i < geom.Pairs; i++ {
		d, err := mk()
		if err != nil {
			return nil, err
		}
		a.Mirrors = append(a.Mirrors, d)
	}
	for i := 0; i < extras; i++ {
		d, err := mk()
		if err != nil {
			return nil, err
		}
		a.Extras = append(a.Extras, d)
	}
	return a, nil
}

// LogRegionBytes returns the per-disk logging capacity.
func (a *Array) LogRegionBytes() int64 {
	return a.DiskCfg.CapacityBytes - a.Geom.DataBytesPerDisk
}

// dataRegionSectors is the first logging-region LBA.
func (a *Array) dataRegionSectors() int64 {
	return a.Geom.DataBytesPerDisk / disk.SectorSize
}

// SectorRange converts a byte range to an (LBA, sector count) pair,
// expanding to sector boundaries.
func SectorRange(off, length int64) (lba, sectors int64) {
	lba = off / disk.SectorSize
	end := (off + length + disk.SectorSize - 1) / disk.SectorSize
	return lba, end - lba
}

// DataIO builds an IO against a disk's data region.
func (a *Array) DataIO(off, length int64, write, background bool) *disk.IO {
	lba, sectors := SectorRange(off, length)
	return a.PooledIO(lba, sectors, write, background)
}

// LogIO builds an IO against a disk's logging region, where off is relative
// to the region start.
func (a *Array) LogIO(off, length int64, write, background bool) *disk.IO {
	lba, sectors := SectorRange(off, length)
	return a.PooledIO(a.dataRegionSectors()+lba, sectors, write, background)
}

// PooledIO builds a raw IO addressed by absolute LBA from the array's IO
// pool. DataIO and LogIO cover the shared regions; this covers extra
// disks with their own addressing (GRAID's dedicated log device). The IO
// recycles into the pool once the drive has run its completion callback,
// so callers must not retain it past their OnDone.
func (a *Array) PooledIO(lba, sectors int64, write, background bool) *disk.IO {
	io := a.ios.Get()
	io.LBA = lba
	io.Sectors = sectors
	io.Write = write
	io.Background = background
	return io
}

// AllDisks returns every disk in the array.
func (a *Array) AllDisks() []*disk.Disk {
	out := make([]*disk.Disk, 0, len(a.Primaries)+len(a.Mirrors)+len(a.Extras))
	out = append(out, a.Primaries...)
	out = append(out, a.Mirrors...)
	out = append(out, a.Extras...)
	return out
}

// TotalEnergyJ returns cumulative array energy up to the current time.
func (a *Array) TotalEnergyJ() float64 {
	var e float64
	for _, d := range a.AllDisks() {
		e += d.EnergyJ()
	}
	return e
}

// TotalSpinCycles returns the total number of spin-up events across the
// array (the paper's Table I metric).
func (a *Array) TotalSpinCycles() int {
	n := 0
	for _, d := range a.AllDisks() {
		n += d.SpinCycles()
	}
	return n
}

// StateDurations aggregates per-state time over the given disks.
func StateDurations(disks []*disk.Disk) map[disk.PowerState]sim.Time {
	out := make(map[disk.PowerState]sim.Time)
	for _, d := range disks {
		for s, dur := range d.Stats().StateDur {
			out[s] += dur
		}
	}
	return out
}

// Join invokes a callback once a fixed number of sub-I/O completions have
// arrived. Create it with the expected count, then use Done as (or from)
// each sub-I/O's OnDone.
type Join struct {
	remaining int
	fn        func(now sim.Time)
}

// NewJoin returns a Join expecting n completions. If n is zero the callback
// fires immediately-on-first-use semantics are NOT applied; callers must
// not create zero-count joins.
func NewJoin(n int, fn func(now sim.Time)) *Join {
	return &Join{remaining: n, fn: fn}
}

// Done records one completion, firing the callback on the last.
func (j *Join) Done(now sim.Time) {
	j.remaining--
	if j.remaining == 0 && j.fn != nil {
		j.fn(now)
	}
}
