package array

import (
	"testing"

	"github.com/rolo-storage/rolo/internal/metrics"
	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/trace"
)

// countingController records which records reached the disk layer.
type countingController struct {
	resp  metrics.ResponseStats
	eng   *sim.Engine
	reads int
	write int
}

func (c *countingController) Submit(rec trace.Record) error {
	if rec.Op == trace.Read {
		c.reads++
	} else {
		c.write++
	}
	arrive := rec.At
	c.eng.After(5*sim.Millisecond, func(now sim.Time) { c.resp.Add(now - arrive) })
	return nil
}

func (c *countingController) Close(sim.Time) {}

func TestWithRAMCacheValidation(t *testing.T) {
	eng := sim.New()
	inner := &countingController{eng: eng}
	if _, err := WithRAMCache(nil, &inner.resp, eng, 4, 4096); err == nil {
		t.Error("nil inner accepted")
	}
	if _, err := WithRAMCache(inner, &inner.resp, eng, 4, 0); err == nil {
		t.Error("zero block size accepted")
	}
	if _, err := WithRAMCache(inner, &inner.resp, eng, -1, 4096); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestRAMCacheAbsorbsRepeatReads(t *testing.T) {
	eng := sim.New()
	inner := &countingController{eng: eng}
	c, err := WithRAMCache(inner, &inner.resp, eng, 64, 4096)
	if err != nil {
		t.Fatal(err)
	}
	// A write populates the cache; repeat reads of the block never reach
	// the inner controller.
	if err := c.Submit(trace.Record{At: 0, Op: trace.Write, Offset: 0, Size: 4096}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		eng.RunUntil(sim.Time(i) * sim.Second)
		if err := c.Submit(trace.Record{At: eng.Now(), Op: trace.Read, Offset: 0, Size: 4096}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if inner.reads != 0 {
		t.Fatalf("%d reads leaked past the cache", inner.reads)
	}
	if inner.write != 1 {
		t.Fatalf("writes must pass through: %d", inner.write)
	}
	if got := c.HitRate(); got != 1 {
		t.Fatalf("hit rate = %g, want 1", got)
	}
	// All four requests have recorded responses (hits at RAM latency).
	if inner.resp.Count() != 4 {
		t.Fatalf("responses = %d, want 4", inner.resp.Count())
	}
	if mean := inner.resp.Mean(); mean > 5 {
		t.Fatalf("mean %.3f ms: hits should pull it below the 5 ms disk path", mean)
	}
}

func TestRAMCacheMissFetchesAndCaches(t *testing.T) {
	eng := sim.New()
	inner := &countingController{eng: eng}
	c, err := WithRAMCache(inner, &inner.resp, eng, 64, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(trace.Record{At: 0, Op: trace.Read, Offset: 8192, Size: 4096}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if inner.reads != 1 {
		t.Fatalf("miss did not reach inner controller: %d", inner.reads)
	}
	if err := c.Submit(trace.Record{At: eng.Now(), Op: trace.Read, Offset: 8192, Size: 4096}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if inner.reads != 1 {
		t.Fatal("second read missed despite fill-on-miss")
	}
	if got := c.HitRate(); got != 0.5 {
		t.Fatalf("hit rate = %g, want 0.5", got)
	}
}

func TestRAMCacheEvicts(t *testing.T) {
	eng := sim.New()
	inner := &countingController{eng: eng}
	c, err := WithRAMCache(inner, &inner.resp, eng, 2, 4096)
	if err != nil {
		t.Fatal(err)
	}
	// Touch three distinct blocks; the first must be evicted.
	for i := int64(0); i < 3; i++ {
		if err := c.Submit(trace.Record{At: eng.Now(), Op: trace.Read, Offset: i * 4096, Size: 4096}); err != nil {
			t.Fatal(err)
		}
		eng.Run()
	}
	if err := c.Submit(trace.Record{At: eng.Now(), Op: trace.Read, Offset: 0, Size: 4096}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if inner.reads != 4 {
		t.Fatalf("inner reads = %d, want 4 (block 0 evicted)", inner.reads)
	}
}
