package array

import (
	"fmt"

	"github.com/rolo-storage/rolo/internal/cache"
	"github.com/rolo-storage/rolo/internal/metrics"
	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/telemetry"
	"github.com/rolo-storage/rolo/internal/trace"
)

// CachedController layers a controller-level RAM block cache in front of
// any scheme, modeling the multi-level storage caches the paper assumes
// absorb most reads before they reach the disks. Reads whose blocks are
// all resident complete at RAM latency without touching the inner
// controller; writes populate the cache (write-through) and always pass
// down, since data must still reach the disks for durability.
type CachedController struct {
	inner      Controller
	resp       *metrics.ResponseStats
	eng        *sim.Engine
	lru        *cache.LRU
	blockBytes int64
	hitLatency sim.Time
	tel        *telemetry.Recorder

	hits, misses int64
}

var (
	_ Controller             = (*CachedController)(nil)
	_ telemetry.Instrumented = (*CachedController)(nil)
)

// WithRAMCache wraps inner with a RAM cache of blocks entries of
// blockBytes each. resp must be the inner controller's response collector
// so cache hits appear in the same statistics.
func WithRAMCache(inner Controller, resp *metrics.ResponseStats, eng *sim.Engine,
	blocks int, blockBytes int64) (*CachedController, error) {
	if inner == nil || resp == nil || eng == nil {
		return nil, fmt.Errorf("array: nil dependency for RAM cache")
	}
	if blockBytes <= 0 {
		return nil, fmt.Errorf("array: non-positive cache block size %d", blockBytes)
	}
	lru, err := cache.NewLRU(blocks)
	if err != nil {
		return nil, err
	}
	return &CachedController{
		inner:      inner,
		resp:       resp,
		eng:        eng,
		lru:        lru,
		blockBytes: blockBytes,
		hitLatency: 100 * sim.Microsecond,
	}, nil
}

// SetTelemetry implements telemetry.Instrumented: the recorder is used
// for the RAM cache's own hit/miss and request events; it is also passed
// through to the inner controller if that is instrumented.
func (c *CachedController) SetTelemetry(rec *telemetry.Recorder) {
	c.tel = rec
	if in, ok := c.inner.(telemetry.Instrumented); ok {
		in.SetTelemetry(rec)
	}
}

// HitRate returns the RAM cache hit rate over reads.
func (c *CachedController) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Submit implements Controller.
func (c *CachedController) Submit(rec trace.Record) error {
	first := rec.Offset / c.blockBytes
	last := (rec.End() - 1) / c.blockBytes
	if rec.Op == trace.Write {
		for b := first; b <= last; b++ {
			c.lru.Put(b)
		}
		return c.inner.Submit(rec)
	}
	all := true
	for b := first; b <= last; b++ {
		if !c.lru.Get(b) {
			all = false
		}
	}
	if all {
		c.hits++
		if c.tel != nil {
			c.tel.CacheHit(rec.At, -1, rec.Size)
			// The inner controller never sees a RAM hit, so the cache
			// emits the request events itself.
			c.tel.RequestStart(rec.At, false, rec.Size)
		}
		arrive := rec.At
		c.eng.After(c.hitLatency, func(now sim.Time) {
			rt := now - arrive
			c.resp.AddClass(rt, false)
			if c.tel != nil {
				c.tel.RequestDone(now, false, rt)
			}
		})
		return nil
	}
	c.misses++
	if c.tel != nil {
		c.tel.CacheMiss(rec.At, -1, rec.Size)
	}
	for b := first; b <= last; b++ {
		c.lru.Put(b)
	}
	return c.inner.Submit(rec)
}

// Close implements Controller.
func (c *CachedController) Close(now sim.Time) { c.inner.Close(now) }
