package logspace

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustSpace(t *testing.T, cap int64) *Space {
	t.Helper()
	s, err := New(cap)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewRejectsBadCapacity(t *testing.T) {
	for _, c := range []int64{0, -1} {
		if _, err := New(c); err == nil {
			t.Errorf("capacity %d accepted", c)
		}
	}
}

func TestAllocSequential(t *testing.T) {
	s := mustSpace(t, 1000)
	a1, ok := s.Alloc(100, 1)
	if !ok || a1.Offset != 0 {
		t.Fatalf("first alloc = %+v %v", a1, ok)
	}
	a2, ok := s.Alloc(200, 2)
	if !ok || a2.Offset != 100 {
		t.Fatalf("second alloc = %+v %v, want offset 100 (append order)", a2, ok)
	}
	if s.FreeBytes() != 700 || s.UsedBytes() != 300 {
		t.Fatalf("free/used = %d/%d", s.FreeBytes(), s.UsedBytes())
	}
}

func TestAllocExhaustion(t *testing.T) {
	s := mustSpace(t, 100)
	if _, ok := s.Alloc(100, 1); !ok {
		t.Fatal("full-capacity alloc failed")
	}
	if _, ok := s.Alloc(1, 2); ok {
		t.Fatal("alloc beyond capacity succeeded")
	}
	if _, ok := s.Alloc(0, 1); ok {
		t.Fatal("zero alloc succeeded")
	}
}

func TestReleaseTagReclaims(t *testing.T) {
	s := mustSpace(t, 1000)
	s.Alloc(100, 1)
	s.Alloc(100, 2)
	s.Alloc(100, 1)
	if got := s.TagBytes(1); got != 200 {
		t.Fatalf("TagBytes(1) = %d, want 200", got)
	}
	if freed := s.ReleaseTag(1); freed != 200 {
		t.Fatalf("ReleaseTag(1) = %d, want 200", freed)
	}
	if s.UsedBytes() != 100 {
		t.Fatalf("UsedBytes = %d, want 100", s.UsedBytes())
	}
	if freed := s.ReleaseTag(1); freed != 0 {
		t.Fatalf("second ReleaseTag(1) = %d, want 0", freed)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocStaysSequentialAfterReclaim(t *testing.T) {
	// Reclaiming extents behind the append head must not pull subsequent
	// allocations backwards into the holes: the log is circular, so the
	// head keeps advancing until it wraps.
	s := mustSpace(t, 1000)
	s.Alloc(100, 1) // [0,100)
	s.Alloc(100, 2) // [100,200)
	s.ReleaseTag(1) // hole at [0,100) behind the head
	a, ok := s.Alloc(100, 3)
	if !ok || a.Offset != 200 {
		t.Fatalf("alloc after reclaim = %+v %v, want offset 200 (append, not hole)", a, ok)
	}
	// Fill to the end; the next allocation wraps into the hole.
	for off := int64(300); off < 1000; off += 100 {
		got, ok := s.Alloc(100, 4)
		if !ok || got.Offset != off {
			t.Fatalf("fill alloc = %+v %v, want offset %d", got, ok, off)
		}
	}
	a, ok = s.Alloc(100, 5)
	if !ok || a.Offset != 0 {
		t.Fatalf("wrap alloc = %+v %v, want offset 0", a, ok)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReclaimedSpaceReusable(t *testing.T) {
	s := mustSpace(t, 300)
	s.Alloc(100, 1)
	s.Alloc(100, 2)
	s.Alloc(100, 3)
	s.ReleaseTag(2)
	a, ok := s.Alloc(100, 4)
	if !ok || a.Offset != 100 {
		t.Fatalf("realloc into reclaimed hole = %+v %v", a, ok)
	}
}

func TestFragmentationBlocksLargeAlloc(t *testing.T) {
	s := mustSpace(t, 300)
	s.Alloc(100, 1)
	s.Alloc(100, 2)
	s.Alloc(100, 3)
	s.ReleaseTag(1)
	s.ReleaseTag(3)
	// 200 free but split into two 100-byte regions.
	if got := s.FreeBytes(); got != 200 {
		t.Fatalf("FreeBytes = %d", got)
	}
	if got := s.LargestFree(); got != 100 {
		t.Fatalf("LargestFree = %d, want 100", got)
	}
	if _, ok := s.Alloc(150, 9); ok {
		t.Fatal("allocated 150 contiguous from fragmented 100+100")
	}
	// Releasing the middle coalesces everything.
	s.ReleaseTag(2)
	if got := s.LargestFree(); got != 300 {
		t.Fatalf("LargestFree after coalesce = %d, want 300", got)
	}
}

func TestReset(t *testing.T) {
	s := mustSpace(t, 500)
	s.Alloc(400, 1)
	s.Reset()
	if s.FreeBytes() != 500 || len(s.Tags()) != 0 {
		t.Fatal("Reset incomplete")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestShrink(t *testing.T) {
	s := mustSpace(t, 1000)
	s.Alloc(300, 1)
	if !s.Shrink(500) {
		t.Fatal("Shrink(500) failed with 700 free")
	}
	if s.Capacity() != 500 || s.FreeBytes() != 200 {
		t.Fatalf("after shrink: cap=%d free=%d", s.Capacity(), s.FreeBytes())
	}
	if s.Shrink(300) {
		t.Fatal("Shrink beyond free succeeded")
	}
	if s.Shrink(0) {
		t.Fatal("Shrink(0) succeeded")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFreeFraction(t *testing.T) {
	s := mustSpace(t, 1000)
	s.Alloc(250, 1)
	if got := s.FreeFraction(); got != 0.75 {
		t.Fatalf("FreeFraction = %g, want 0.75", got)
	}
}

// Property: under random alloc/release sequences, accounting always
// balances (free + used == capacity), no extents overlap, and invariants
// hold.
func TestQuickAccountingInvariant(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		s, err := New(1 << 16)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < int(steps); i++ {
			switch rng.Intn(4) {
			case 0, 1:
				s.Alloc(rng.Int63n(4096)+1, rng.Intn(8))
			case 2:
				s.ReleaseTag(rng.Intn(8))
			case 3:
				if rng.Intn(4) == 0 {
					s.Shrink(rng.Int63n(1024) + 1)
				}
			}
			if s.FreeBytes()+s.UsedBytes() != s.Capacity() {
				return false
			}
			if err := s.CheckInvariants(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: total bytes allocated per tag equals total freed on release.
func TestQuickTagConservation(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		s, err := New(1 << 20)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		allocated := make(map[int]int64)
		for i := 0; i < int(n); i++ {
			tag := rng.Intn(4)
			size := rng.Int63n(2048) + 1
			if _, ok := s.Alloc(size, tag); ok {
				allocated[tag] += size
			}
		}
		for tag, want := range allocated {
			if s.TagBytes(tag) != want {
				return false
			}
			if got := s.ReleaseTag(tag); got != want {
				return false
			}
		}
		return s.UsedBytes() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAllocRelease(b *testing.B) {
	s, err := New(1 << 30)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tag := i % 16
		if _, ok := s.Alloc(64<<10, tag); !ok {
			s.ReleaseTag((i + 8) % 16)
			s.Alloc(64<<10, tag)
		}
	}
}
