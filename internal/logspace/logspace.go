// Package logspace manages the logging region of a disk: sequential append
// allocation for logged writes, and tag-based invalidation so that when the
// destaging of a mirrored pair completes, every stale log extent written on
// behalf of that pair — on any logger — can be reclaimed at once.
//
// This implements Section III-E of the RoLo paper: the logger region is
// tracked as used and unused region lists; reclaimed regions coalesce back
// into the unused list so the logger is ready for its next on-duty term.
package logspace

import (
	"fmt"
	"slices"

	"github.com/rolo-storage/rolo/internal/intervals"
)

// Alloc is one allocated extent within the logging region.
type Alloc struct {
	Offset int64
	Length int64
}

// Space is the allocator for one disk's logging region. Offsets are
// relative to the start of the region; callers translate them to LBAs.
type Space struct {
	addrSpace int64 // immutable size of the region's address range
	donated   int64 // bytes permanently given to the data region
	free      intervals.Set
	used      map[int]*intervals.Set // tag -> extents
	usedBy    int64
	// cursor is the append head: allocation is next-fit from here with
	// wrap-around, so consecutive log writes stay sequential on disk even
	// after reclamation has opened holes behind the head (the region
	// behaves as the circular log of Section III-A).
	cursor int64

	// Scratch buffers reused by CheckInvariants: the sanitizer sweeps call
	// it on every log region periodically during checked runs, and the
	// ownership sort would otherwise allocate on each sweep (DESIGN §11).
	chkScratch []ownedSpan
	tagScratch []int
}

// ownedSpan attributes a span to its owner for the disjointness check; tag
// -1 marks a free span.
type ownedSpan struct {
	sp  intervals.Span
	tag int
}

// New returns a Space over a region of the given size.
func New(capacity int64) (*Space, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("logspace: non-positive capacity %d", capacity)
	}
	s := &Space{addrSpace: capacity, used: make(map[int]*intervals.Set)}
	s.free.Add(0, capacity)
	return s, nil
}

// Capacity returns the logging capacity in bytes (the region size minus any
// space donated to the data region).
func (s *Space) Capacity() int64 { return s.addrSpace - s.donated }

// FreeBytes returns the number of unallocated bytes.
func (s *Space) FreeBytes() int64 { return s.Capacity() - s.usedBy }

// UsedBytes returns the number of allocated bytes.
func (s *Space) UsedBytes() int64 { return s.usedBy }

// FreeFraction returns FreeBytes/Capacity.
func (s *Space) FreeFraction() float64 {
	if c := s.Capacity(); c > 0 {
		return float64(s.FreeBytes()) / float64(c)
	}
	return 0
}

// LargestFree returns the size of the largest contiguous free extent.
func (s *Space) LargestFree() int64 {
	var max int64
	for i := 0; i < s.free.Count(); i++ {
		if n := s.free.At(i).Len(); n > max {
			max = n
		}
	}
	return max
}

// Alloc reserves n contiguous bytes tagged with tag, next-fit from the
// append cursor with wrap-around. Consecutive allocations are therefore
// address-sequential whenever space permits, which is what makes on-duty
// logging seek-free. It reports false when no free extent is large enough.
func (s *Space) Alloc(n int64, tag int) (Alloc, bool) {
	if n <= 0 {
		return Alloc{}, false
	}
	// First pass: at or after the cursor (a true append when the cursor
	// sits inside a free span). Indexed iteration (Count/At) avoids the
	// snapshot copy Spans() would make on this per-write path; take is
	// only called once a span is chosen, after iteration ends.
	for i := 0; i < s.free.Count(); i++ {
		sp := s.free.At(i)
		if sp.End <= s.cursor {
			continue
		}
		start := sp.Start
		if start < s.cursor {
			start = s.cursor
		}
		if sp.End-start >= n {
			return s.take(start, n, tag), true
		}
	}
	// Wrap around: restart from the lowest free extent that fits.
	for i := 0; i < s.free.Count(); i++ {
		if sp := s.free.At(i); sp.Len() >= n {
			return s.take(sp.Start, n, tag), true
		}
	}
	return Alloc{}, false
}

func (s *Space) take(start, n int64, tag int) Alloc {
	a := Alloc{Offset: start, Length: n}
	s.free.Remove(start, start+n)
	set, ok := s.used[tag]
	if !ok {
		set = &intervals.Set{}
		s.used[tag] = set
	}
	set.Add(start, start+n)
	s.usedBy += n
	s.cursor = start + n
	return a
}

// ReleaseTag invalidates every extent allocated under tag and returns the
// number of bytes reclaimed. This is the proactive reclamation step that
// follows a completed destage.
func (s *Space) ReleaseTag(tag int) int64 {
	set, ok := s.used[tag]
	if !ok {
		return 0
	}
	var freed int64
	for i := 0; i < set.Count(); i++ {
		sp := set.At(i)
		s.free.Add(sp.Start, sp.End)
		freed += sp.Len()
	}
	delete(s.used, tag)
	s.usedBy -= freed
	return freed
}

// TagBytes returns the bytes currently allocated under tag.
func (s *Space) TagBytes(tag int) int64 {
	set, ok := s.used[tag]
	if !ok {
		return 0
	}
	return set.Total()
}

// Tags returns the tags with live allocations, in ascending order so
// callers iterate deterministically.
func (s *Space) Tags() []int {
	out := make([]int, 0, len(s.used))
	for t := range s.used {
		out = append(out, t)
	}
	slices.Sort(out)
	return out
}

// Reset releases all allocations, returning every non-donated byte to the
// free list.
func (s *Space) Reset() {
	donatedSpans := s.donatedSpans()
	s.free.Clear()
	s.free.Add(0, s.addrSpace)
	for _, sp := range donatedSpans {
		s.free.Remove(sp.Start, sp.End)
	}
	s.used = make(map[int]*intervals.Set)
	s.usedBy = 0
	s.cursor = 0
}

// donatedSpans reconstructs which address ranges were donated: everything
// not free and not used. Donations only ever move bytes out of the free
// list, so this is exact.
func (s *Space) donatedSpans() []intervals.Span {
	var live intervals.Set
	for _, sp := range s.free.Spans() {
		live.Add(sp.Start, sp.End)
	}
	for _, set := range s.used {
		for _, sp := range set.Spans() {
			live.Add(sp.Start, sp.End)
		}
	}
	var donated intervals.Set
	donated.Add(0, s.addrSpace)
	for _, sp := range live.Spans() {
		donated.Remove(sp.Start, sp.End)
	}
	return donated.Spans()
}

// Shrink permanently donates n free bytes to the data region (the paper's
// data-region expansion: an unused logger region is freed from the unused
// region list when the data region fills). It reports false if less than n
// bytes are free.
func (s *Space) Shrink(n int64) bool {
	if n <= 0 || n > s.FreeBytes() {
		return false
	}
	remaining := n
	spans := s.free.Spans()
	for i := len(spans) - 1; i >= 0 && remaining > 0; i-- {
		sp := spans[i]
		take := sp.Len()
		if take > remaining {
			take = remaining
		}
		s.free.Remove(sp.End-take, sp.End)
		remaining -= take
	}
	s.donated += n
	return true
}

// CheckInvariants validates the allocator's bookkeeping: free and used
// extents are disjoint, within bounds, and account for every byte.
func (s *Space) CheckInvariants() error {
	if err := s.free.CheckInvariants(); err != nil {
		return err
	}
	// Gather every live span (free plus per-tag used) and verify mutual
	// disjointness with one sort and a linear scan. Building an
	// intervals.Set span by span would cost a quadratic memmove on
	// fragmented spaces, which matters because the sanitizer sweeps call
	// this on every log region periodically during checked runs. Both
	// scratch slices are kept on the Space and reused across sweeps.
	all := s.chkScratch[:0]
	for i := 0; i < s.free.Count(); i++ {
		sp := s.free.At(i)
		if sp.Start < 0 || sp.End > s.addrSpace {
			return fmt.Errorf("logspace: free span %+v out of bounds", sp)
		}
		all = append(all, ownedSpan{sp, -1})
	}
	tags := s.tagScratch[:0]
	for tag := range s.used {
		tags = append(tags, tag)
	}
	slices.Sort(tags)
	s.tagScratch = tags[:0]
	var usedTotal int64
	for _, tag := range tags {
		set := s.used[tag]
		if err := set.CheckInvariants(); err != nil {
			return fmt.Errorf("logspace: tag %d: %w", tag, err)
		}
		for i := 0; i < set.Count(); i++ {
			sp := set.At(i)
			if sp.Start < 0 || sp.End > s.addrSpace {
				return fmt.Errorf("logspace: tag %d span %+v out of bounds", tag, sp)
			}
			all = append(all, ownedSpan{sp, tag})
			usedTotal += sp.Len()
		}
	}
	s.chkScratch = all[:0]
	// slices.SortFunc, unlike sort.Slice, sorts without allocating.
	slices.SortFunc(all, func(a, b ownedSpan) int {
		switch {
		case a.sp.Start < b.sp.Start:
			return -1
		case a.sp.Start > b.sp.Start:
			return 1
		}
		return 0
	})
	var total int64
	for i, o := range all {
		if i > 0 && o.sp.Start < all[i-1].sp.End {
			if o.tag < 0 {
				return fmt.Errorf("logspace: free span %+v overlaps", o.sp)
			}
			return fmt.Errorf("logspace: tag %d span %+v overlaps", o.tag, o.sp)
		}
		total += o.sp.Len()
	}
	if usedTotal != s.usedBy {
		return fmt.Errorf("logspace: used accounting %d != tracked %d", usedTotal, s.usedBy)
	}
	if got, want := total, s.addrSpace-s.donated; got != want {
		return fmt.Errorf("logspace: accounted %d of %d live bytes", got, want)
	}
	return nil
}
