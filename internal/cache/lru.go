// Package cache implements a block-granular LRU cache. Controllers use it
// for the RAM read cache and RoLo-E uses it to manage the popular-block
// read cache kept in the on-duty logging space.
package cache

import (
	"container/list"
	"fmt"
)

// LRU is a fixed-capacity least-recently-used set of block keys. The zero
// value is unusable; construct with NewLRU. It is not safe for concurrent
// use (the simulator is single-threaded by design).
type LRU struct {
	capacity int
	ll       *list.List
	index    map[int64]*list.Element

	hits, misses int64
}

// NewLRU returns a cache holding at most capacity blocks. A capacity of 0
// produces a cache that never hits.
func NewLRU(capacity int) (*LRU, error) {
	if capacity < 0 {
		return nil, fmt.Errorf("cache: negative capacity %d", capacity)
	}
	return &LRU{
		capacity: capacity,
		ll:       list.New(),
		index:    make(map[int64]*list.Element),
	}, nil
}

// Len returns the number of cached blocks.
func (c *LRU) Len() int { return c.ll.Len() }

// Cap returns the configured capacity.
func (c *LRU) Cap() int { return c.capacity }

// Contains reports membership without updating recency or counters.
func (c *LRU) Contains(key int64) bool {
	_, ok := c.index[key]
	return ok
}

// Get reports whether key is cached, marking it most recently used and
// updating hit/miss counters.
func (c *LRU) Get(key int64) bool {
	el, ok := c.index[key]
	if !ok {
		c.misses++
		return false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return true
}

// Put inserts key as most recently used, evicting the least recently used
// block if the cache is full. It returns the evicted key and whether an
// eviction happened.
func (c *LRU) Put(key int64) (evicted int64, didEvict bool) {
	if c.capacity == 0 {
		return 0, false
	}
	if el, ok := c.index[key]; ok {
		c.ll.MoveToFront(el)
		return 0, false
	}
	c.index[key] = c.ll.PushFront(key)
	if c.ll.Len() <= c.capacity {
		return 0, false
	}
	tail := c.ll.Back()
	c.ll.Remove(tail)
	key = tail.Value.(int64)
	delete(c.index, key)
	return key, true
}

// Remove deletes key if present and reports whether it was cached.
func (c *LRU) Remove(key int64) bool {
	el, ok := c.index[key]
	if !ok {
		return false
	}
	c.ll.Remove(el)
	delete(c.index, key)
	return true
}

// Clear drops all entries but keeps hit/miss counters.
func (c *LRU) Clear() {
	c.ll.Init()
	c.index = make(map[int64]*list.Element)
}

// Hits returns the number of Get calls that found their key.
func (c *LRU) Hits() int64 { return c.hits }

// Misses returns the number of Get calls that missed.
func (c *LRU) Misses() int64 { return c.misses }

// HitRate returns hits/(hits+misses), or 0 before any Get.
func (c *LRU) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
