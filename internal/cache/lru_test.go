package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustLRU(t *testing.T, cap int) *LRU {
	t.Helper()
	c, err := NewLRU(cap)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewLRUNegative(t *testing.T) {
	if _, err := NewLRU(-1); err == nil {
		t.Fatal("negative capacity accepted")
	}
}

func TestBasicHitMiss(t *testing.T) {
	c := mustLRU(t, 2)
	if c.Get(1) {
		t.Fatal("empty cache hit")
	}
	c.Put(1)
	if !c.Get(1) {
		t.Fatal("miss after Put")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", c.Hits(), c.Misses())
	}
	if c.HitRate() != 0.5 {
		t.Fatalf("HitRate = %g, want 0.5", c.HitRate())
	}
}

func TestEvictionOrder(t *testing.T) {
	c := mustLRU(t, 2)
	c.Put(1)
	c.Put(2)
	if ev, did := c.Put(3); !did || ev != 1 {
		t.Fatalf("Put(3) evicted (%d,%v), want (1,true)", ev, did)
	}
	if c.Contains(1) || !c.Contains(2) || !c.Contains(3) {
		t.Fatal("wrong residents after eviction")
	}
}

func TestGetRefreshesRecency(t *testing.T) {
	c := mustLRU(t, 2)
	c.Put(1)
	c.Put(2)
	c.Get(1) // 1 becomes MRU; 2 is now LRU
	if ev, did := c.Put(3); !did || ev != 2 {
		t.Fatalf("Put(3) evicted (%d,%v), want (2,true)", ev, did)
	}
}

func TestPutExistingRefreshes(t *testing.T) {
	c := mustLRU(t, 2)
	c.Put(1)
	c.Put(2)
	c.Put(1) // refresh, no eviction
	if ev, did := c.Put(3); !did || ev != 2 {
		t.Fatalf("Put(3) evicted (%d,%v), want (2,true)", ev, did)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestZeroCapacityNeverHits(t *testing.T) {
	c := mustLRU(t, 0)
	c.Put(1)
	if c.Get(1) {
		t.Fatal("zero-capacity cache hit")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d, want 0", c.Len())
	}
}

func TestRemove(t *testing.T) {
	c := mustLRU(t, 3)
	c.Put(1)
	if !c.Remove(1) {
		t.Fatal("Remove existing returned false")
	}
	if c.Remove(1) {
		t.Fatal("Remove missing returned true")
	}
	if c.Contains(1) {
		t.Fatal("removed key still present")
	}
}

func TestClear(t *testing.T) {
	c := mustLRU(t, 3)
	c.Put(1)
	c.Put(2)
	c.Get(1)
	c.Clear()
	if c.Len() != 0 || c.Contains(1) {
		t.Fatal("Clear left entries")
	}
	if c.Hits() != 1 {
		t.Fatal("Clear reset counters")
	}
}

// Property: the cache never exceeds capacity and membership matches a naive
// model under random operations.
func TestQuickMatchesNaiveModel(t *testing.T) {
	f := func(seed int64, capRaw, steps uint8) bool {
		capacity := int(capRaw%16) + 1
		c, err := NewLRU(capacity)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		// Naive model: slice ordered MRU-first.
		var model []int64
		find := func(k int64) int {
			for i, v := range model {
				if v == k {
					return i
				}
			}
			return -1
		}
		for i := 0; i < int(steps); i++ {
			k := rng.Int63n(24)
			switch rng.Intn(3) {
			case 0: // Put
				c.Put(k)
				if i := find(k); i >= 0 {
					model = append(model[:i], model[i+1:]...)
				}
				model = append([]int64{k}, model...)
				if len(model) > capacity {
					model = model[:capacity]
				}
			case 1: // Get
				got := c.Get(k)
				idx := find(k)
				if got != (idx >= 0) {
					return false
				}
				if idx >= 0 {
					model = append(model[:idx], model[idx+1:]...)
					model = append([]int64{k}, model...)
				}
			case 2: // Remove
				got := c.Remove(k)
				idx := find(k)
				if got != (idx >= 0) {
					return false
				}
				if idx >= 0 {
					model = append(model[:idx], model[idx+1:]...)
				}
			}
			if c.Len() != len(model) || c.Len() > capacity {
				return false
			}
		}
		for _, k := range model {
			if !c.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLRUGetPut(b *testing.B) {
	c, err := NewLRU(1024)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := rng.Int63n(4096)
		if !c.Get(k) {
			c.Put(k)
		}
	}
}
