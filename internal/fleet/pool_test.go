package fleet

import (
	"sync"
	"testing"
	"time"

	"github.com/rolo-storage/rolo"
)

// countingPool wraps a Pool and records slot-occupancy statistics.
type countingPool struct {
	inner Pool
	mu    sync.Mutex
	cur   int //rolosan:guardedby mu
	max   int //rolosan:guardedby mu
}

func (p *countingPool) Acquire() func() {
	release := p.inner.Acquire()
	p.mu.Lock()
	p.cur++
	if p.cur > p.max {
		p.max = p.cur
	}
	p.mu.Unlock()
	return func() {
		p.mu.Lock()
		p.cur--
		p.mu.Unlock()
		release()
	}
}

func (p *countingPool) Cap() int { return p.inner.Cap() }

func (p *countingPool) Max() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.max
}

// TestRunWindowedBoundedByPool pins the throttle: shard workers run
// concurrently but never hold more slots than the pool has, and with
// work long enough to overlap they do saturate the pool — the runner is
// genuinely parallel, not serial with extra goroutines. Stub shards
// sleep rather than simulate so the overlap is observable even on a
// single-CPU machine.
func TestRunWindowedBoundedByPool(t *testing.T) {
	const shards, slots = 24, 2
	pool := &countingPool{inner: NewPool(slots)}
	folded := 0
	err := runWindowed(shards, pool,
		func(i int) (rolo.Report, error) {
			time.Sleep(5 * time.Millisecond)
			return rolo.Report{}, nil
		},
		func(int, *rolo.Report) { folded++ })
	if err != nil {
		t.Fatal(err)
	}
	if folded != shards {
		t.Fatalf("folded %d shards, want %d", folded, shards)
	}
	if got := pool.Max(); got > slots {
		t.Fatalf("%d workers held slots at once, pool has %d", got, slots)
	}
	if got := pool.Max(); got < slots {
		t.Fatalf("peak slot occupancy %d never reached the pool size %d", got, slots)
	}
}
