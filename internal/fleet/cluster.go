package fleet

import (
	"fmt"
	"io"
	"math"

	"github.com/rolo-storage/rolo"
	"github.com/rolo-storage/rolo/internal/telemetry"
)

// Cluster folds per-shard reports into cluster-wide statistics. Folding
// is associative only in shard-index order — the worst-K digest breaks
// ties by index — so the runner always feeds shards in order. The
// accumulator is constant-memory: merged histograms grow once to the
// widest shard's bucket span, the worst-K digest is a fixed-capacity
// insertion sort, and a steady-state Fold performs no allocations.
type Cluster struct {
	shards int

	all   telemetry.Histogram // merged response-time histogram, all classes
	read  telemetry.Histogram
	write telemetry.Histogram

	// Cross-shard distributions: one observation per shard, so fleet-level
	// percentiles ("p95 shard energy") come from the same exact log-bucket
	// machinery as latency.
	energy telemetry.Histogram // whole joules per shard
	spins  telemetry.Histogram // spin cycles per shard

	requests     int64
	energyJ      float64
	spinCycles   int64
	rotations    int64
	destages     int64
	directWrites int64

	perScheme [len(schemeNames)]schemeAgg

	worst  []ShardDigest // sorted worst-first, fixed capacity
	worstK int
}

// schemeAgg aggregates the shards running one scheme.
type schemeAgg struct {
	shards   int
	requests int64
	energyJ  float64
	lat      telemetry.Histogram
}

// schemeNames indexes scheme ints (0 unused) for the fixed per-scheme
// array; sized by the highest scheme constant.
var schemeNames = [int(rolo.SchemeRoLoE) + 1]string{}

func init() {
	for _, s := range rolo.Schemes {
		schemeNames[int(s)] = s.String()
	}
}

// ShardDigest identifies one shard in the worst-K table.
type ShardDigest struct {
	Shard    int         `json:"shard"`
	Scheme   rolo.Scheme `json:"scheme"`
	P99Ms    float64     `json:"p99_ms"`
	MeanMs   float64     `json:"mean_ms"`
	Requests int64       `json:"requests"`
	EnergyJ  float64     `json:"energy_j"`
}

// NewCluster returns an accumulator for a fleet of the given worst-K
// digest size.
func NewCluster(worstK int) *Cluster {
	if worstK < 1 {
		worstK = 1
	}
	return &Cluster{worstK: worstK, worst: make([]ShardDigest, 0, worstK)}
}

// Fold merges shard i's report. Shards must be folded in increasing
// index order; the report is read-only.
func (c *Cluster) Fold(shard int, rep *rolo.Report) {
	c.shards++
	c.all.Merge(&rep.AllHist)
	c.read.Merge(&rep.ReadHist)
	c.write.Merge(&rep.WriteHist)
	c.energy.Observe(int64(math.Round(rep.EnergyJ)))
	c.spins.Observe(int64(rep.SpinCycles))

	c.requests += rep.Requests
	c.energyJ += rep.EnergyJ
	c.spinCycles += int64(rep.SpinCycles)
	c.rotations += int64(rep.Rotations)
	c.destages += int64(rep.Destages)
	c.directWrites += rep.DirectWrites

	agg := &c.perScheme[int(rep.Scheme)]
	agg.shards++
	agg.requests += rep.Requests
	agg.energyJ += rep.EnergyJ
	agg.lat.Merge(&rep.AllHist)

	c.foldWorst(ShardDigest{
		Shard:    shard,
		Scheme:   rep.Scheme,
		P99Ms:    rep.P99ResponseMs,
		MeanMs:   rep.MeanResponseMs,
		Requests: rep.Requests,
		EnergyJ:  rep.EnergyJ,
	})
}

// foldWorst inserts the digest into the fixed-capacity worst-K table,
// ordered by descending P99 with lower shard index breaking ties (the
// tie-break keeps the table independent of fold concurrency upstream).
func (c *Cluster) foldWorst(d ShardDigest) {
	pos := len(c.worst)
	for pos > 0 {
		w := c.worst[pos-1]
		if w.P99Ms > d.P99Ms || (w.P99Ms == d.P99Ms && w.Shard < d.Shard) {
			break
		}
		pos--
	}
	if pos >= c.worstK {
		return
	}
	if len(c.worst) < c.worstK {
		c.worst = c.worst[:len(c.worst)+1]
	}
	copy(c.worst[pos+1:], c.worst[pos:])
	c.worst[pos] = d
}

// ClusterReport is the deterministic cluster summary.
type ClusterReport struct {
	Shards   int   `json:"shards"`
	Requests int64 `json:"requests"`

	MeanResponseMs float64 `json:"mean_response_ms"`
	P95ResponseMs  float64 `json:"p95_response_ms"`
	P99ResponseMs  float64 `json:"p99_response_ms"`
	MaxResponseMs  float64 `json:"max_response_ms"`

	ReadMeanMs  float64 `json:"read_mean_ms"`
	ReadP99Ms   float64 `json:"read_p99_ms"`
	WriteMeanMs float64 `json:"write_mean_ms"`
	WriteP99Ms  float64 `json:"write_p99_ms"`

	EnergyJ        float64 `json:"energy_j"`
	ShardEnergyP50 float64 `json:"shard_energy_p50_j"`
	ShardEnergyP95 float64 `json:"shard_energy_p95_j"`
	ShardEnergyMax float64 `json:"shard_energy_max_j"`

	SpinCycles    int64   `json:"spin_cycles"`
	ShardSpinsP50 int64   `json:"shard_spins_p50"`
	ShardSpinsP95 int64   `json:"shard_spins_p95"`
	ShardSpinsMax int64   `json:"shard_spins_max"`

	Rotations    int64 `json:"rotations"`
	Destages     int64 `json:"destages"`
	DirectWrites int64 `json:"direct_writes"`

	Schemes []SchemeSummary `json:"schemes"`
	Worst   []ShardDigest   `json:"worst_shards"`
}

// SchemeSummary aggregates every shard that ran one scheme.
type SchemeSummary struct {
	Scheme   string  `json:"scheme"`
	Shards   int     `json:"shards"`
	Requests int64   `json:"requests"`
	MeanMs   float64 `json:"mean_ms"`
	P99Ms    float64 `json:"p99_ms"`
	EnergyJ  float64 `json:"energy_j"`
}

// Report freezes the accumulator into a ClusterReport.
func (c *Cluster) Report() ClusterReport {
	r := ClusterReport{
		Shards:   c.shards,
		Requests: c.requests,

		MeanResponseMs: meanMs(&c.all),
		P95ResponseMs:  quantMs(&c.all, 95),
		P99ResponseMs:  quantMs(&c.all, 99),
		MaxResponseMs:  float64(c.all.Max()) / 1000,

		ReadMeanMs:  meanMs(&c.read),
		ReadP99Ms:   quantMs(&c.read, 99),
		WriteMeanMs: meanMs(&c.write),
		WriteP99Ms:  quantMs(&c.write, 99),

		EnergyJ:        c.energyJ,
		ShardEnergyP50: float64(c.energy.Quantile(50)),
		ShardEnergyP95: float64(c.energy.Quantile(95)),
		ShardEnergyMax: float64(c.energy.Max()),

		SpinCycles:    c.spinCycles,
		ShardSpinsP50: c.spins.Quantile(50),
		ShardSpinsP95: c.spins.Quantile(95),
		ShardSpinsMax: c.spins.Max(),

		Rotations:    c.rotations,
		Destages:     c.destages,
		DirectWrites: c.directWrites,

		Worst: append([]ShardDigest(nil), c.worst...),
	}
	for i := range c.perScheme {
		agg := &c.perScheme[i]
		if agg.shards == 0 {
			continue
		}
		r.Schemes = append(r.Schemes, SchemeSummary{
			Scheme:   schemeNames[i],
			Shards:   agg.shards,
			Requests: agg.requests,
			MeanMs:   meanMs(&agg.lat),
			P99Ms:    quantMs(&agg.lat, 99),
			EnergyJ:  agg.energyJ,
		})
	}
	return r
}

func meanMs(h *telemetry.Histogram) float64 {
	if h.Total() == 0 {
		return 0
	}
	return h.Sum() / float64(h.Total()) / 1000
}

func quantMs(h *telemetry.Histogram, p float64) float64 {
	return float64(h.Quantile(p)) / 1000
}

// WriteText renders the report as the canonical fixed-format text table.
// Every run of the same spec produces these exact bytes regardless of
// job count — the CI fleet-smoke stage hashes this output.
func (r *ClusterReport) WriteText(w io.Writer) error {
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("fleet: %d shards, %d requests\n", r.Shards, r.Requests); err != nil {
		return err
	}
	if err := p("latency  mean %.3f ms  p95 %.3f ms  p99 %.3f ms  max %.3f ms\n",
		r.MeanResponseMs, r.P95ResponseMs, r.P99ResponseMs, r.MaxResponseMs); err != nil {
		return err
	}
	if err := p("reads    mean %.3f ms  p99 %.3f ms\nwrites   mean %.3f ms  p99 %.3f ms\n",
		r.ReadMeanMs, r.ReadP99Ms, r.WriteMeanMs, r.WriteP99Ms); err != nil {
		return err
	}
	if err := p("energy   total %.1f J  per-shard p50 %.0f J  p95 %.0f J  max %.0f J\n",
		r.EnergyJ, r.ShardEnergyP50, r.ShardEnergyP95, r.ShardEnergyMax); err != nil {
		return err
	}
	if err := p("spins    total %d  per-shard p50 %d  p95 %d  max %d\n",
		r.SpinCycles, r.ShardSpinsP50, r.ShardSpinsP95, r.ShardSpinsMax); err != nil {
		return err
	}
	if err := p("events   rotations %d  destages %d  direct writes %d\n",
		r.Rotations, r.Destages, r.DirectWrites); err != nil {
		return err
	}
	if len(r.Schemes) > 0 {
		if err := p("\n%-8s %7s %10s %10s %10s %12s\n",
			"scheme", "shards", "requests", "mean ms", "p99 ms", "energy J"); err != nil {
			return err
		}
		for _, s := range r.Schemes {
			if err := p("%-8s %7d %10d %10.3f %10.3f %12.1f\n",
				s.Scheme, s.Shards, s.Requests, s.MeanMs, s.P99Ms, s.EnergyJ); err != nil {
				return err
			}
		}
	}
	if len(r.Worst) > 0 {
		if err := p("\nworst shards by p99:\n%-8s %-8s %10s %10s %10s %12s\n",
			"shard", "scheme", "p99 ms", "mean ms", "requests", "energy J"); err != nil {
			return err
		}
		for _, d := range r.Worst {
			if err := p("%-8d %-8s %10.3f %10.3f %10d %12.1f\n",
				d.Shard, d.Scheme, d.P99Ms, d.MeanMs, d.Requests, d.EnergyJ); err != nil {
				return err
			}
		}
	}
	return nil
}
