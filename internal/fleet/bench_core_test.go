package fleet

import (
	"testing"

	"github.com/rolo-storage/rolo"
)

// BenchmarkCoreFleetMerge measures the streaming fold of one shard
// report into a warmed cluster accumulator — the per-shard cost of the
// merge layer, exercised thousands of times per fleet. Must stay
// 0 allocs/op: the merge path is what keeps a 10k-shard fleet
// constant-memory.
func BenchmarkCoreFleetMerge(b *testing.B) {
	spec := testSpec(b, 4)
	reps := make([]rolo.Report, spec.Shards)
	for i := range reps {
		rep, err := spec.RunShard(i)
		if err != nil {
			b.Fatal(err)
		}
		reps[i] = rep
	}
	c := NewCluster(8)
	for i := range reps {
		c.Fold(i, &reps[i]) // warm the histograms to their final span
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Fold(spec.Shards+i, &reps[i%len(reps)])
	}
}

// BenchmarkCoreFleetEndToEnd runs a small fleet — simulate, merge,
// report — as the macro benchmark of the sharding layer.
func BenchmarkCoreFleetEndToEnd(b *testing.B) {
	spec := testSpec(b, 8)
	pool := NewPool(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(spec, pool); err != nil {
			b.Fatal(err)
		}
	}
}
