package fleet

import (
	"runtime"
	"sync"

	"github.com/rolo-storage/rolo"
)

// This file is the fleet runner: shards execute concurrently on a worker
// pool, but their reports are folded strictly in shard-index order
// through a bounded reorder window, so the cluster report — and the
// error a failing fleet returns — is identical at every job count.
//
// The memory discipline is the point (DESIGN §16): a fleet of thousands
// of shards never materializes thousands of reports. At most
// 2·pool.Cap() reports exist at once — the in-flight simulations plus
// the reorder window — and the Cluster accumulator folds each one away
// as soon as its index comes up.

// Pool bounds how many shard simulations run at once. It is an
// interface, not a struct, so the experiments runner can hand the fleet
// its own slot semaphore: under `roloexp -run all` a fleet experiment
// and the other experiments' leaf simulations then draw from one shared
// budget instead of multiplying pools (no pool-in-pool oversubscription).
type Pool interface {
	// Acquire claims one slot, blocking while the pool is full, and
	// returns the release function.
	Acquire() func()
	// Cap is the slot count.
	Cap() int
}

// NewPool returns a standalone pool of n slots (n <= 0 selects
// GOMAXPROCS).
func NewPool(n int) Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &semPool{sem: make(chan struct{}, n)}
}

type semPool struct {
	sem chan struct{}
}

func (p *semPool) Acquire() func() {
	p.sem <- struct{}{}
	return func() { <-p.sem }
}

func (p *semPool) Cap() int { return cap(p.sem) }

// Run simulates every shard of the fleet and returns the merged cluster
// report. A nil or single-slot pool runs the shards serially on the
// calling goroutine; otherwise shards run concurrently, throttled by the
// pool. Either way the reports fold in shard-index order, so the
// returned report is byte-for-byte identical across job counts, and a
// failing fleet returns the lowest failing shard's error — exactly what
// the serial loop would have hit first.
func Run(spec Spec, pool Pool) (ClusterReport, error) {
	if err := spec.Validate(); err != nil {
		return ClusterReport{}, err
	}
	c := NewCluster(spec.worstK())
	if pool == nil || pool.Cap() <= 1 || spec.Shards == 1 {
		for i := 0; i < spec.Shards; i++ {
			rep, err := spec.RunShard(i)
			if err != nil {
				return ClusterReport{}, err
			}
			c.Fold(i, &rep)
		}
		return c.Report(), nil
	}
	if err := runWindowed(spec.Shards, pool, spec.RunShard, c.Fold); err != nil {
		return ClusterReport{}, err
	}
	return c.Report(), nil
}

// shardResult carries one finished shard back to the folder.
type shardResult struct {
	shard int
	rep   rolo.Report
	err   error
}

// runWindowed is the concurrent runner. Token accounting keeps it
// deadlock-free and constant-memory:
//
//   - gate starts with `window` tokens. The dispatcher takes one per
//     shard before launching its worker; the folder returns one per
//     report folded. Dispatch order is shard order and folds are
//     in-order, so every in-flight shard index lies within
//     [next, next+window) — the reorder ring can never collide.
//   - results is buffered to `window`. At most `window` shards are
//     dispatched-but-unfolded (each holds a gate token), so worker sends
//     never block and every worker goroutine provably terminates, even
//     after an abort.
//   - on a shard error the folder records it, closes stop (which parks
//     the dispatcher) and drains results without folding; the error that
//     surfaces is the one at the fold cursor — the lowest failing index.
func runWindowed(shards int, pool Pool, run func(int) (rolo.Report, error), fold func(int, *rolo.Report)) error {
	window := 2 * pool.Cap()
	if window > shards {
		window = shards
	}

	gate := make(chan struct{}, window)
	for i := 0; i < window; i++ {
		gate <- struct{}{}
	}
	stop := make(chan struct{})
	results := make(chan shardResult, window)
	launched := make(chan struct{})
	var wg sync.WaitGroup

	// launch starts shard i's worker. The send into results never
	// blocks: the worker's gate token guarantees a buffer slot.
	launch := func(shard int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release := pool.Acquire()
			rep, err := run(shard)
			release()
			results <- shardResult{shard: shard, rep: rep, err: err}
		}()
	}
	// Dispatcher: launches workers in shard order, one gate token each.
	go func() {
		defer close(launched)
		for i := 0; i < shards; i++ {
			select {
			case <-gate:
			case <-stop:
				return
			}
			launch(i)
		}
	}()
	// Closer: ends the folder's range loop once every launched worker
	// has delivered.
	go func() {
		<-launched
		wg.Wait()
		close(results)
	}()

	// Folder (caller goroutine): reorder ring + in-order fold.
	pending := make([]shardResult, window)
	have := make([]bool, window)
	next := 0
	var firstErr error
	for r := range results {
		if firstErr != nil {
			continue // draining after abort
		}
		slot := r.shard % window
		pending[slot], have[slot] = r, true
		for next < shards && have[next%window] {
			cur := pending[next%window]
			have[next%window] = false
			pending[next%window] = shardResult{} // drop the report's buffers
			if cur.err != nil {
				firstErr = cur.err
				close(stop)
				break
			}
			fold(cur.shard, &cur.rep)
			next++
			gate <- struct{}{} // never blocks: ≤ window tokens exist
		}
	}
	return firstErr
}
