// Package fleet multiplexes many independent RoLo arrays — one per
// tenant shard — and folds their reports into a single deterministic
// cluster report. It is the enterprise-data-center layer over the
// single-array simulator: a one-line base workload spec expands into
// thousands of distinct per-tenant workloads (trace.ShardRule), every
// shard runs a private engine + array + controller (rolo.Run) as a leaf
// job on a shared worker pool, and a streaming merge layer folds the
// per-shard reports in shard-index order so the cluster report is
// byte-identical at any job count (DESIGN §16).
package fleet

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/rolo-storage/rolo"
	"github.com/rolo-storage/rolo/internal/telemetry/journal"
	"github.com/rolo-storage/rolo/internal/trace"
)

// Spec describes a fleet: how many shards, which schemes they cycle
// through, the per-shard array geometry, and the base tenant workload
// with its per-shard derivation rule.
type Spec struct {
	// Shards is the number of independent arrays.
	Shards int
	// Schemes are cycled across shards: shard i runs Schemes[i%len].
	Schemes []rolo.Scheme
	// Pairs, Scale, FreeGiB and StripeKB fix each shard's array geometry
	// (the same scaling discipline as internal/experiments: capacity,
	// free space and trace length shrink together).
	Pairs    int
	Scale    float64
	FreeGiB  float64
	StripeKB int64
	// Base is the tenant workload template; Rule derives shard i's
	// variant (distinct seed, IOPS spread).
	Base trace.Synthetic
	Rule trace.ShardRule
	// Check enables the RoloSan sanitizer in every shard.
	Check bool
	// WorstK is how many worst shards (by p99 latency) the cluster
	// report digests. Zero means 8.
	WorstK int

	// JournalDir, when non-empty, writes one rotated telemetry journal
	// directory per shard (shard-NNNNN/) through the async pipeline with
	// the drop backpressure policy — fleet mode favors forward progress
	// over journal completeness, and the per-shard manifests record the
	// drop counts.
	JournalDir          string
	JournalSegmentBytes int64
	JournalCompress     bool
	JournalRetain       int
}

// DefaultSpec returns a small but representative fleet: 64 shards
// cycling all five schemes at toy scale under a bursty mixed workload.
func DefaultSpec() Spec {
	base, err := trace.ParseSyntheticSpec("iops=60 write=0.9 duration=20s size=16K random=0.7 burst=0.3 seed=1")
	if err != nil {
		panic("fleet: default workload spec invalid: " + err.Error()) // programmer error at init
	}
	return Spec{
		Shards:   64,
		Schemes:  append([]rolo.Scheme(nil), rolo.Schemes...),
		Pairs:    4,
		Scale:    0.02,
		FreeGiB:  8,
		StripeKB: 64,
		Base:     base,
		Rule:     trace.ShardRule{SeedStride: 1, IOPSSpread: 0.5},
	}
}

// Validate reports spec errors.
func (s *Spec) Validate() error {
	switch {
	case s.Shards <= 0:
		return fmt.Errorf("fleet: non-positive shard count %d", s.Shards)
	case len(s.Schemes) == 0:
		return fmt.Errorf("fleet: no schemes")
	case s.Pairs < 2:
		return fmt.Errorf("fleet: pairs %d < 2", s.Pairs)
	case s.Scale <= 0 || s.Scale > 1:
		return fmt.Errorf("fleet: scale %g outside (0,1]", s.Scale)
	case s.FreeGiB <= 0:
		return fmt.Errorf("fleet: non-positive free space %g GiB", s.FreeGiB)
	case s.StripeKB <= 0:
		return fmt.Errorf("fleet: non-positive stripe unit %d KB", s.StripeKB)
	case s.Rule.IOPSSpread < 0 || s.Rule.IOPSSpread >= 1:
		return fmt.Errorf("fleet: IOPS spread %g outside [0,1)", s.Rule.IOPSSpread)
	case s.WorstK < 0:
		return fmt.Errorf("fleet: negative worst-K %d", s.WorstK)
	case (s.JournalCompress || s.JournalRetain != 0 || s.JournalSegmentBytes != 0) && s.JournalDir == "":
		return fmt.Errorf("fleet: journal options require a journal directory")
	}
	for _, sch := range s.Schemes {
		if _, err := rolo.ParseScheme(sch.String()); err != nil {
			return err
		}
	}
	return s.Base.Validate()
}

// worstK returns the effective worst-shard digest size.
func (s *Spec) worstK() int {
	if s.WorstK == 0 {
		return 8
	}
	return s.WorstK
}

// SchemeFor returns the scheme shard i runs.
func (s *Spec) SchemeFor(shard int) rolo.Scheme {
	return s.Schemes[shard%len(s.Schemes)]
}

// ShardConfig builds shard i's array configuration and derived workload.
func (s *Spec) ShardConfig(shard int) (rolo.Config, trace.Synthetic) {
	cfg := rolo.DefaultConfig(s.SchemeFor(shard))
	cfg.Pairs = s.Pairs
	cfg.StripeUnitBytes = s.StripeKB << 10
	cfg.Disk.CapacityBytes = scaleBytes(18.4*(1<<30), s.Scale)
	cfg.FreeBytesPerDisk = scaleBytes(s.FreeGiB*(1<<30), s.Scale)
	cfg.GRAID.LogCapacityBytes = scaleBytes(16*(1<<30), s.Scale)
	cfg.Check = s.Check
	return cfg, s.Rule.Derive(s.Base, shard)
}

// RunShard simulates shard i to completion and returns its report. It is
// a pure function of (spec, shard) apart from the optional journal files,
// so shards can run in any order and on any goroutine.
func (s *Spec) RunShard(shard int) (rep rolo.Report, err error) {
	cfg, wl := s.ShardConfig(shard)
	recs, err := wl.Generate(cfg.VolumeBytes())
	if err != nil {
		return rolo.Report{}, fmt.Errorf("fleet: shard %d workload: %w", shard, err)
	}
	if s.JournalDir != "" {
		dir := filepath.Join(s.JournalDir, fmt.Sprintf("shard-%05d", shard))
		if mkerr := os.MkdirAll(dir, 0o755); mkerr != nil {
			return rolo.Report{}, mkerr
		}
		segment := s.JournalSegmentBytes
		if segment == 0 {
			segment = 4 << 20
		}
		w, werr := journal.NewRotatingWriter(journal.RotateConfig{
			Dir:          dir,
			SegmentBytes: segment,
			Compress:     s.JournalCompress,
			Retain:       s.JournalRetain,
		})
		if werr != nil {
			return rolo.Report{}, werr
		}
		// Drop policy: a slow journal writer must never stall a fleet of
		// shards; the manifest records how many events were shed.
		sink := journal.NewAsyncSink(w, journal.AsyncConfig{Policy: journal.PolicyDrop})
		defer func() {
			if cerr := sink.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		cfg.Telemetry.Sink = sink
	}
	rep, err = rolo.Run(cfg, recs)
	if err != nil {
		return rolo.Report{}, fmt.Errorf("fleet: shard %d (%v): %w", shard, cfg.Scheme, err)
	}
	return rep, nil
}

// scaleBytes shrinks a byte quantity by the scale factor, aligned down to
// 1 MiB (the same rounding the experiments package uses).
func scaleBytes(b float64, scale float64) int64 {
	v := int64(b * scale)
	const align = 1 << 20
	v -= v % align
	if v < align {
		v = align
	}
	return v
}

// ParseSpec reads a fleet spec: one "key value" pair per line, with '#'
// comments and blank lines ignored. Keys:
//
//	shards      N                  shard count
//	scheme      RoLo-P[,RoLo-E,…]  schemes cycled across shards; "all" = all five
//	pairs       N                  mirrored pairs per shard
//	scale       F                  geometry+trace scale in (0,1]
//	free        F                  per-disk free (logging) GiB before scaling
//	stripe      N                  stripe unit in KB
//	seed-stride N                  per-shard seed spacing (default 1)
//	iops-spread F                  per-shard IOPS spread in [0,1)
//	worst       N                  worst-shard digest size (default 8)
//	workload    <spec>             base tenant workload (trace.ParseSyntheticSpec)
//
// Unset keys keep DefaultSpec's values. A successful parse always
// returns a spec that passes Validate.
func ParseSpec(r io.Reader) (Spec, error) {
	s := DefaultSpec()
	sc := bufio.NewScanner(r)
	line := 0
	seen := map[string]bool{}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		key, rest, _ := strings.Cut(text, " ")
		rest = strings.TrimSpace(rest)
		if seen[key] {
			return Spec{}, fmt.Errorf("fleet: spec line %d: duplicate key %q", line, key)
		}
		seen[key] = true
		var err error
		switch key {
		case "shards":
			s.Shards, err = strconv.Atoi(rest)
		case "scheme":
			s.Schemes, err = ParseSchemeList(rest)
		case "pairs":
			s.Pairs, err = strconv.Atoi(rest)
		case "scale":
			s.Scale, err = strconv.ParseFloat(rest, 64)
		case "free":
			s.FreeGiB, err = strconv.ParseFloat(rest, 64)
		case "stripe":
			s.StripeKB, err = strconv.ParseInt(rest, 10, 64)
		case "seed-stride":
			s.Rule.SeedStride, err = strconv.ParseInt(rest, 10, 64)
		case "iops-spread":
			s.Rule.IOPSSpread, err = strconv.ParseFloat(rest, 64)
		case "worst":
			s.WorstK, err = strconv.Atoi(rest)
		case "workload":
			s.Base, err = trace.ParseSyntheticSpec(rest)
		default:
			err = fmt.Errorf("unknown key")
		}
		if err != nil {
			return Spec{}, fmt.Errorf("fleet: spec line %d (%q): %v", line, key, err)
		}
	}
	if err := sc.Err(); err != nil {
		return Spec{}, fmt.Errorf("fleet: reading spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// ParseSchemeList resolves a comma-separated scheme list; "all" expands
// to every scheme in paper order.
func ParseSchemeList(list string) ([]rolo.Scheme, error) {
	if list == "all" {
		return append([]rolo.Scheme(nil), rolo.Schemes...), nil
	}
	var out []rolo.Scheme
	for _, name := range strings.Split(list, ",") {
		sch, err := rolo.ParseScheme(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, sch)
	}
	return out, nil
}
