package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"

	"github.com/rolo-storage/rolo"
	"github.com/rolo-storage/rolo/internal/trace"
)

// testSpec is a small fleet that still exercises every scheme and real
// per-shard workload divergence, sized to keep the race detector happy.
func testSpec(t testing.TB, shards int) Spec {
	t.Helper()
	base, err := trace.ParseSyntheticSpec("iops=50 write=0.9 duration=5s size=16K random=0.7 seed=11")
	if err != nil {
		t.Fatal(err)
	}
	s := DefaultSpec()
	s.Shards = shards
	s.Scale = 0.01
	s.Base = base
	s.WorstK = 4
	return s
}

// TestFleetDeterminism is the acceptance test for the merge discipline:
// the same spec must produce byte-identical rendered output and JSON at
// every job count, including the serial runner.
func TestFleetDeterminism(t *testing.T) {
	spec := testSpec(t, 13)
	render := func(pool Pool) (string, string) {
		rep, err := Run(spec, pool)
		if err != nil {
			t.Fatalf("fleet run: %v", err)
		}
		if rep.Requests == 0 || rep.P99ResponseMs <= 0 || rep.P99ResponseMs < rep.MeanResponseMs/10 {
			t.Fatalf("implausible cluster stats: %+v", rep)
		}
		if len(rep.Worst) != spec.WorstK || len(rep.Schemes) != len(rolo.Schemes) {
			t.Fatalf("digest sizes: worst %d schemes %d", len(rep.Worst), len(rep.Schemes))
		}
		var txt bytes.Buffer
		if err := rep.WriteText(&txt); err != nil {
			t.Fatal(err)
		}
		js, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return txt.String(), string(js)
	}
	serialTxt, serialJSON := render(nil)
	if !strings.Contains(serialTxt, "fleet: 13 shards") {
		t.Fatalf("unexpected header in:\n%s", serialTxt)
	}
	for _, jobs := range []int{2, 7} {
		txt, js := render(NewPool(jobs))
		if txt != serialTxt {
			t.Errorf("-jobs %d text differs from serial:\n--- serial ---\n%s--- jobs=%d ---\n%s",
				jobs, serialTxt, jobs, txt)
		}
		if js != serialJSON {
			t.Errorf("-jobs %d JSON differs from serial", jobs)
		}
	}
}

// TestRunWindowedFoldsInOrder pins the reorder window: whatever order
// shards finish in, folds happen strictly in shard-index order and every
// shard folds exactly once.
func TestRunWindowedFoldsInOrder(t *testing.T) {
	const n = 100
	var folded []int
	err := runWindowed(n, NewPool(4),
		func(i int) (rolo.Report, error) {
			return rolo.Report{Requests: int64(i)}, nil
		},
		func(i int, rep *rolo.Report) {
			if rep.Requests != int64(i) {
				t.Errorf("shard %d folded with report of shard %d", i, rep.Requests)
			}
			folded = append(folded, i)
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(folded) != n {
		t.Fatalf("folded %d shards, want %d", len(folded), n)
	}
	for i, got := range folded {
		if got != i {
			t.Fatalf("fold %d was shard %d — out of order", i, got)
		}
	}
}

// TestRunWindowedLowestIndexError pins the error contract: with several
// shards failing, the runner reports the lowest failing index — the same
// error a serial loop would have returned — and stops folding there.
func TestRunWindowedLowestIndexError(t *testing.T) {
	const n = 64
	fail := map[int]bool{9: true, 30: true, 31: true}
	lastFold := -1
	err := runWindowed(n, NewPool(8),
		func(i int) (rolo.Report, error) {
			if fail[i] {
				return rolo.Report{}, fmt.Errorf("shard %d boom", i)
			}
			return rolo.Report{}, nil
		},
		func(i int, _ *rolo.Report) { lastFold = i })
	if err == nil || !strings.Contains(err.Error(), "shard 9 boom") {
		t.Fatalf("error = %v, want shard 9's", err)
	}
	if lastFold != 8 {
		t.Fatalf("last fold = %d, want 8 (folding stops at the failing shard)", lastFold)
	}
}

// TestRunShardJournal checks the optional per-shard rotated journal: the
// shard directory appears with at least one segment and a manifest.
func TestRunShardJournal(t *testing.T) {
	spec := testSpec(t, 2)
	spec.JournalDir = t.TempDir()
	if _, err := Run(spec, nil); err != nil {
		t.Fatal(err)
	}
	for shard := 0; shard < spec.Shards; shard++ {
		dir := fmt.Sprintf("%s/shard-%05d", spec.JournalDir, shard)
		m, err := readManifest(t, dir)
		if err != nil {
			t.Fatalf("shard %d manifest: %v", shard, err)
		}
		if m == 0 {
			t.Fatalf("shard %d journal empty", shard)
		}
	}
}

// TestClusterFoldZeroAlloc pins the streaming-merge hot path: folding a
// report into a warmed accumulator performs no allocations, so merging a
// fleet of any size costs no per-shard garbage.
func TestClusterFoldZeroAlloc(t *testing.T) {
	spec := testSpec(t, 2)
	reps := make([]rolo.Report, spec.Shards)
	for i := range reps {
		rep, err := spec.RunShard(i)
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = rep
	}
	c := NewCluster(4)
	for i := range reps {
		c.Fold(i, &reps[i]) // warm: histograms grow to final bucket span
	}
	shard := spec.Shards
	if n := testing.AllocsPerRun(100, func() {
		for i := range reps {
			c.Fold(shard, &reps[i])
			shard++
		}
	}); n > 0 {
		t.Fatalf("Fold allocates %v per warmed call, want 0", n)
	}
}

// TestWorstDigest pins the fixed-capacity worst-K table: descending P99,
// ties broken toward the lower shard index, overflow dropped.
func TestWorstDigest(t *testing.T) {
	c := NewCluster(3)
	for i, p99 := range []float64{5, 9, 7, 9, 1, 8} {
		c.foldWorst(ShardDigest{Shard: i, P99Ms: p99})
	}
	got := c.Report().Worst
	want := []struct {
		shard int
		p99   float64
	}{{1, 9}, {3, 9}, {5, 8}}
	if len(got) != len(want) {
		t.Fatalf("worst table has %d entries, want %d: %+v", len(got), len(want), got)
	}
	for i, w := range want {
		if got[i].Shard != w.shard || got[i].P99Ms != w.p99 {
			t.Fatalf("worst[%d] = shard %d p99 %g, want shard %d p99 %g",
				i, got[i].Shard, got[i].P99Ms, w.shard, w.p99)
		}
	}
}

// TestParseSpec covers the spec-file format and its failure modes.
func TestParseSpec(t *testing.T) {
	text := `# fleet spec
shards 500
scheme RoLo-P,RoLo-E
pairs 6
scale 0.05
free 4
stripe 128
seed-stride 7
iops-spread 0.25
worst 12
workload iops=120 write=0.8 duration=30s size=32K random=0.5 seed=42
`
	s, err := ParseSpec(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards != 500 || len(s.Schemes) != 2 || s.Pairs != 6 ||
		s.Scale != 0.05 || s.FreeGiB != 4 || s.StripeKB != 128 ||
		s.Rule.SeedStride != 7 || s.Rule.IOPSSpread != 0.25 || s.WorstK != 12 {
		t.Fatalf("parsed spec mismatch: %+v", s)
	}
	if s.Base.IOPS != 120 || s.Base.Seed != 42 {
		t.Fatalf("parsed workload mismatch: %+v", s.Base)
	}
	if s.SchemeFor(0) != rolo.SchemeRoLoP || s.SchemeFor(1) != rolo.SchemeRoLoE {
		t.Fatalf("scheme cycling broken: %v %v", s.SchemeFor(0), s.SchemeFor(1))
	}

	for _, bad := range []string{
		"shards x\n",
		"shards 4\nshards 5\n",
		"scheme RAID7\n",
		"bogus 1\n",
		"shards 0\n",
		"iops-spread 1.5\n",
	} {
		if _, err := ParseSpec(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseSpec(%q) accepted invalid spec", bad)
		}
	}
}

// TestSpecValidate covers validation branches not reachable from text.
func TestSpecValidate(t *testing.T) {
	s := DefaultSpec()
	s.JournalCompress = true
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "journal") {
		t.Fatalf("journal options without a directory accepted: %v", err)
	}
	s = DefaultSpec()
	s.Schemes = nil
	if err := s.Validate(); err == nil {
		t.Fatal("empty scheme list accepted")
	}
}

// readManifest returns the number of journal files in a shard directory.
func readManifest(t *testing.T, dir string) (int, error) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	return len(entries), nil
}
