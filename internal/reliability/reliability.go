// Package reliability implements the paper's Section IV analysis: Mean
// Time To Data Loss for RAID10, GRAID and the three RoLo flavors, both as
// the closed-form approximations of Equations (1)-(5) and as exact
// absorbing continuous-time Markov chains solved numerically. Disk
// failures are independent exponential events of rate λ and repairs of
// rate µ, as in the paper.
package reliability

import (
	"errors"
	"fmt"
	"math"
)

// HoursPerYear converts MTTDL hours to years (the unit of Figure 9).
const HoursPerYear = 24 * 365

// Closed-form MTTDLs from the paper, in hours, for λ and µ in events/hour.

// MTTDLRaid10 is Equation (1): a four-disk (two-pair) RAID10.
func MTTDLRaid10(lambda, mu float64) float64 {
	return (3*lambda + mu) / (4 * lambda * lambda)
}

// MTTDLGRAID is Equation (2): four data disks plus one dedicated log disk.
func MTTDLGRAID(lambda, mu float64) float64 {
	return (17*lambda + 2*mu) / (12 * lambda * lambda)
}

// MTTDLRoLoP is Equation (3): four disks, one mirror on logging duty.
func MTTDLRoLoP(lambda, mu float64) float64 {
	return (10*lambda + mu) / (5 * lambda * lambda)
}

// MTTDLRoLoR is Equation (4): four disks, one pair on logging duty, three
// copies of every write.
func MTTDLRoLoR(lambda, mu float64) float64 {
	return (15*lambda + 2*mu) / (6 * lambda * lambda)
}

// MTTDLRoLoE is Equation (5): only the on-duty pair is spinning.
func MTTDLRoLoE(lambda, mu float64) float64 {
	return (3*lambda + mu) / (2 * lambda * lambda)
}

// Chain is an absorbing CTMC over transient states 0..n-1 plus an implicit
// absorbing "data loss" state. Rates[i][j] is the transition rate from
// transient state i to transient state j; Absorb[i] is the rate from state
// i into data loss.
type Chain struct {
	Name   string
	Rates  [][]float64
	Absorb []float64
}

// Validate reports structural errors.
func (c Chain) Validate() error {
	n := len(c.Rates)
	if n == 0 {
		return errors.New("reliability: empty chain")
	}
	if len(c.Absorb) != n {
		return fmt.Errorf("reliability: %d absorb rates for %d states", len(c.Absorb), n)
	}
	for i, row := range c.Rates {
		if len(row) != n {
			return fmt.Errorf("reliability: row %d has %d entries, want %d", i, len(row), n)
		}
		for j, r := range row {
			if r < 0 || (i == j && r != 0) {
				return fmt.Errorf("reliability: invalid rate [%d][%d]=%g", i, j, r)
			}
		}
		if c.Absorb[i] < 0 {
			return fmt.Errorf("reliability: negative absorb rate at %d", i)
		}
	}
	return nil
}

// MTTDL solves the chain for the expected time to absorption starting from
// state 0, by first-step analysis: for each transient state i with total
// outflow Λ_i,
//
//	Λ_i·t_i − Σ_j q_ij·t_j = 1
//
// solved by Gaussian elimination with partial pivoting.
func (c Chain) MTTDL() (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	n := len(c.Rates)
	// Build the augmented matrix [A | 1].
	a := make([][]float64, n)
	for i := 0; i < n; i++ {
		a[i] = make([]float64, n+1)
		var out float64
		for j := 0; j < n; j++ {
			out += c.Rates[i][j]
		}
		out += c.Absorb[i]
		if out <= 0 {
			return 0, fmt.Errorf("reliability: state %d has no outflow (never absorbs)", i)
		}
		for j := 0; j < n; j++ {
			a[i][j] = -c.Rates[i][j]
		}
		a[i][i] += out
		a[i][n] = 1
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-300 {
			return 0, fmt.Errorf("reliability: singular system at column %d (data loss unreachable from some state)", col)
		}
		a[col], a[piv] = a[piv], a[col]
		for r := 0; r < n; r++ {
			if r == col || a[r][col] == 0 {
				continue
			}
			f := a[r][col] / a[col][col]
			for k := col; k <= n; k++ {
				a[r][k] -= f * a[col][k]
			}
		}
	}
	t0 := a[0][n] / a[0][0]
	if t0 <= 0 || math.IsNaN(t0) || math.IsInf(t0, 0) {
		return 0, fmt.Errorf("reliability: non-physical MTTDL %g", t0)
	}
	return t0, nil
}

// lethalChain builds a two-level chain from a "lethal structure": the
// system starts with all disks up; disk class i fails at rate fail[i] into
// an exposed state from which lethal[i] (the combined rate of the failures
// that would lose data) absorbs, any other failure is survivable and
// folded into repair, and repair at rate mu returns to healthy. This is
// exactly the construction behind the paper's Figures 6-8: each first
// failure determines which second failures are fatal.
func lethalChain(name string, mu float64, fail, lethal []float64) Chain {
	n := 1 + len(fail)
	rates := make([][]float64, n)
	for i := range rates {
		rates[i] = make([]float64, n)
	}
	absorb := make([]float64, n)
	for i, f := range fail {
		rates[0][1+i] = f
		rates[1+i][0] = mu
		absorb[1+i] = lethal[i]
	}
	return Chain{Name: name, Rates: rates, Absorb: absorb}
}

// Raid10Chain models a two-pair RAID10 (paper's four-disk system): after
// any first failure, only the failed disk's partner is fatal.
func Raid10Chain(lambda, mu float64) Chain {
	// Four symmetric disks: first failure at 4λ, partner fatal at λ.
	return lethalChain("RAID10", mu,
		[]float64{4 * lambda},
		[]float64{lambda})
}

// GRAIDChain models four data disks plus the dedicated log disk L. Recent
// writes exist only on their primary and on L. A primary failure is
// exposed to its mirror (the repair immediately re-protects the logged
// recent writes); an L failure is exposed to both primaries until the
// mirrors are destaged; a mirror failure is exposed to its primary. This
// reconstruction matches the leading term of the paper's Equation (2).
func GRAIDChain(lambda, mu float64) Chain {
	return lethalChain("GRAID", mu,
		[]float64{
			2 * lambda, // either primary fails
			lambda,     // log disk fails
			2 * lambda, // either mirror fails
		},
		[]float64{
			lambda,     // partner mirror (classic pair loss)
			2 * lambda, // either primary (its recent writes lived on L)
			lambda,     // the mirror's primary
		})
}

// RoLoPChain models RoLo-P with M0 on duty: recent writes live on their
// primary and on M0. P0's partner and logger coincide (M0); P1 is exposed
// to M1 and M0; M0's failure is repaired by re-logging from P0 before a
// fatal P0 loss; M1 is exposed to P1.
func RoLoPChain(lambda, mu float64) Chain {
	return lethalChain("RoLo-P", mu,
		[]float64{
			lambda, // P0 fails
			lambda, // P1 fails
			lambda, // M0 (on-duty logger) fails
			lambda, // M1 fails
		},
		[]float64{
			lambda,     // M0 (mirror and logger in one)
			2 * lambda, // M1 or M0
			lambda,     // P0 (the pair whose log copies vanished)
			lambda,     // P1
		})
}

// RoLoRChain models RoLo-R with pair (P0, M0) on duty: every write has
// three copies (its primary, P0 and M0), so a single further failure is
// fatal only for classic pair loss.
func RoLoRChain(lambda, mu float64) Chain {
	return lethalChain("RoLo-R", mu,
		[]float64{
			lambda, // P0
			lambda, // P1
			lambda, // M0
			lambda, // M1
		},
		[]float64{
			lambda, // M0 — pair 0 loss (other copy of recent writes survives on M0? no: P0's partner)
			lambda, // M1 — pair 1 loss; recent pair-1 writes still on P0+M0
			lambda, // P0 after M0
			0,      // M1 alone: pair-1 data on P1, recent also on P0+M0
		})
}

// RoLoEChain is the paper's Figure 8, which it models exactly: only the
// on-duty pair is spinning (sleeping disks are assumed not to fail), so
// the system is a single mirrored pair.
func RoLoEChain(lambda, mu float64) Chain {
	return lethalChain("RoLo-E", mu,
		[]float64{2 * lambda},
		[]float64{lambda})
}

// Point is one MTTDL sample of Figure 9.
type Point struct {
	MTTRDays    float64
	MTTDLYears  float64
	ClosedYears float64 // the paper's closed-form value
}

// Series is Figure 9 data for one scheme.
type Series struct {
	Scheme string
	Points []Point
}

// Fig9 computes MTTDL (years) as a function of MTTR (days) for the four
// schemes plotted in the paper's Figure 9, at the paper's λ of one failure
// per 100 000 hours.
func Fig9(mttrDays []float64) ([]Series, error) {
	const lambda = 1e-5
	type scheme struct {
		name   string
		chain  func(l, m float64) Chain
		closed func(l, m float64) float64
	}
	schemes := []scheme{
		{"RoLo-R", RoLoRChain, MTTDLRoLoR},
		{"RAID10", Raid10Chain, MTTDLRaid10},
		{"RoLo-P", RoLoPChain, MTTDLRoLoP},
		{"GRAID", GRAIDChain, MTTDLGRAID},
	}
	out := make([]Series, 0, len(schemes))
	for _, s := range schemes {
		ser := Series{Scheme: s.name}
		for _, days := range mttrDays {
			if days <= 0 {
				return nil, fmt.Errorf("reliability: non-positive MTTR %g days", days)
			}
			mu := 1 / (days * 24)
			t, err := s.chain(lambda, mu).MTTDL()
			if err != nil {
				return nil, fmt.Errorf("%s: %w", s.name, err)
			}
			ser.Points = append(ser.Points, Point{
				MTTRDays:    days,
				MTTDLYears:  t / HoursPerYear,
				ClosedYears: s.closed(lambda, mu) / HoursPerYear,
			})
		}
		out = append(out, ser)
	}
	return out, nil
}
