package reliability

import (
	"math"
	"testing"
	"testing/quick"
)

const (
	lambda = 1e-5      // one failure per 100 000 hours, as in the paper
	mu24h  = 1.0 / 24  // one-day repair
	mu7d   = 1.0 / 168 // seven-day repair
)

func TestClosedFormsOrdering(t *testing.T) {
	// Paper, Figure 9: RoLo-R > RAID10 > RoLo-P > GRAID at every MTTR.
	for _, mu := range []float64{mu24h, 1.0 / 72, mu7d} {
		r := MTTDLRoLoR(lambda, mu)
		raid := MTTDLRaid10(lambda, mu)
		p := MTTDLRoLoP(lambda, mu)
		g := MTTDLGRAID(lambda, mu)
		if !(r > raid && raid > p && p > g) {
			t.Fatalf("mu=%g: ordering violated: RoLo-R=%g RAID10=%g RoLo-P=%g GRAID=%g",
				mu, r, raid, p, g)
		}
	}
}

func TestClosedFormRatios(t *testing.T) {
	// Paper: RoLo-R beats RAID10 by up to 33%; RAID10 beats RoLo-P by up
	// to 20% and GRAID by up to 33% (asymptotically in µ/λ).
	raid := MTTDLRaid10(lambda, mu24h)
	if got := MTTDLRoLoR(lambda, mu24h) / raid; math.Abs(got-4.0/3) > 0.01 {
		t.Errorf("RoLo-R/RAID10 = %.4f, want ~1.333", got)
	}
	if got := raid / MTTDLRoLoP(lambda, mu24h); math.Abs(got-1.25) > 0.01 {
		t.Errorf("RAID10/RoLo-P = %.4f, want ~1.25", got)
	}
	if got := raid / MTTDLGRAID(lambda, mu24h); math.Abs(got-1.5) > 0.01 {
		t.Errorf("RAID10/GRAID = %.4f, want ~1.5", got)
	}
	// Equation (5): RoLo-E is n=2 times RAID10.
	if got := MTTDLRoLoE(lambda, mu24h) / raid; math.Abs(got-2) > 0.01 {
		t.Errorf("RoLo-E/RAID10 = %.4f, want ~2", got)
	}
}

func TestChainsMatchClosedForms(t *testing.T) {
	cases := []struct {
		name   string
		chain  func(l, m float64) Chain
		closed func(l, m float64) float64
	}{
		{"RAID10", Raid10Chain, MTTDLRaid10},
		{"GRAID", GRAIDChain, MTTDLGRAID},
		{"RoLo-P", RoLoPChain, MTTDLRoLoP},
		{"RoLo-R", RoLoRChain, MTTDLRoLoR},
		{"RoLo-E", RoLoEChain, MTTDLRoLoE},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			for _, mu := range []float64{mu24h, 1.0 / 96, mu7d} {
				got, err := c.chain(lambda, mu).MTTDL()
				if err != nil {
					t.Fatal(err)
				}
				want := c.closed(lambda, mu)
				if rel := math.Abs(got-want) / want; rel > 0.02 {
					t.Errorf("mu=%g: chain MTTDL %.4g vs closed form %.4g (rel err %.4f)",
						mu, got, want, rel)
				}
			}
		})
	}
}

func TestRoLoEChainExact(t *testing.T) {
	// Figure 8 is a complete diagram, so the chain must match Equation
	// (5) to numerical precision, not just asymptotically.
	for _, mu := range []float64{mu24h, mu7d, 0.5} {
		got, err := RoLoEChain(lambda, mu).MTTDL()
		if err != nil {
			t.Fatal(err)
		}
		want := MTTDLRoLoE(lambda, mu)
		if rel := math.Abs(got-want) / want; rel > 1e-9 {
			t.Fatalf("mu=%g: %.12g vs %.12g", mu, got, want)
		}
	}
}

func TestChainValidate(t *testing.T) {
	bad := []Chain{
		{},
		{Rates: [][]float64{{0}}, Absorb: []float64{1, 2}},
		{Rates: [][]float64{{1}}, Absorb: []float64{1}},                // diagonal
		{Rates: [][]float64{{0, -1}, {0, 0}}, Absorb: []float64{0, 1}}, // negative
		{Rates: [][]float64{{0, 1}}, Absorb: []float64{0}},             // ragged
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestChainNoAbsorption(t *testing.T) {
	// A state with no outflow at all can never reach data loss.
	c := Chain{
		Rates:  [][]float64{{0, 1}, {0, 0}},
		Absorb: []float64{0, 0},
	}
	if _, err := c.MTTDL(); err == nil {
		t.Fatal("chain without absorption solved")
	}
}

func TestSingleStateChain(t *testing.T) {
	// Pure exponential absorption: MTTDL = 1/rate.
	c := Chain{Rates: [][]float64{{0}}, Absorb: []float64{0.25}}
	got, err := c.MTTDL()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-4) > 1e-12 {
		t.Fatalf("MTTDL = %g, want 4", got)
	}
}

func TestMTTDLDecreasesWithMTTR(t *testing.T) {
	// Slower repair must never increase reliability.
	prev := math.Inf(1)
	for days := 1.0; days <= 7; days++ {
		v, err := Raid10Chain(lambda, 1/(days*24)).MTTDL()
		if err != nil {
			t.Fatal(err)
		}
		if v >= prev {
			t.Fatalf("MTTDL increased from %g to %g at MTTR %g days", prev, v, days)
		}
		prev = v
	}
}

// Property: for random valid two-level chains, MTTDL is positive and
// decreases when every lethal rate is scaled up.
func TestQuickLethalMonotonicity(t *testing.T) {
	f := func(a, b, c uint8) bool {
		l := 1e-5 * (1 + float64(a%16))
		m := 1e-2 * (1 + float64(b%16))
		scale := 1 + float64(c%4)
		base := lethalChain("x", m, []float64{2 * l, l}, []float64{l, 2 * l})
		worse := lethalChain("y", m, []float64{2 * l, l}, []float64{scale * l, scale * 2 * l})
		t1, err1 := base.MTTDL()
		t2, err2 := worse.MTTDL()
		if err1 != nil || err2 != nil {
			return false
		}
		return t1 > 0 && t2 > 0 && t2 <= t1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFig9(t *testing.T) {
	days := []float64{1, 2, 3, 4, 5, 6, 7}
	series, err := Fig9(days)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("%d series, want 4", len(series))
	}
	byName := map[string][]Point{}
	for _, s := range series {
		if len(s.Points) != len(days) {
			t.Fatalf("%s: %d points", s.Scheme, len(s.Points))
		}
		byName[s.Scheme] = s.Points
	}
	// Paper's Figure 9 ordering at every MTTR.
	for i := range days {
		r, raid := byName["RoLo-R"][i].MTTDLYears, byName["RAID10"][i].MTTDLYears
		p, g := byName["RoLo-P"][i].MTTDLYears, byName["GRAID"][i].MTTDLYears
		if !(r > raid && raid > p && p > g) {
			t.Fatalf("MTTR %g d: ordering violated (%g, %g, %g, %g)", days[i], r, raid, p, g)
		}
	}
	// Spot value: RAID10 at MTTR=1 day is (3λ+µ)/4λ² ≈ 1.19e4 years.
	got := byName["RAID10"][0].MTTDLYears
	want := MTTDLRaid10(1e-5, 1.0/24) / HoursPerYear
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("RAID10@1d = %g years, want ~%g", got, want)
	}
	if _, err := Fig9([]float64{0}); err == nil {
		t.Fatal("accepted zero MTTR")
	}
}
