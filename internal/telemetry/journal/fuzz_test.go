package journal

import (
	"encoding/binary"
	"io"
	"testing"

	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/telemetry"
)

// stateAlphabet is the probe state-string alphabet; keeping fuzzed States
// inside it (plus a quote-needing character) keeps the strings valid
// UTF-8 so strconv quote/unquote round-trips exactly.
const stateAlphabet = `AISUDF"\`

// eventsFromBytes derives a canonical event sequence from raw fuzz input:
// 8 bytes per event, folded into fields that respect the encoder's
// omission invariants (Disk/Pair ≥ -1, LogUsed only beside LogCap), which
// are exactly the invariants the real recorder upholds.
func eventsFromBytes(data []byte) []telemetry.Event {
	var evs []telemetry.Event
	var at sim.Time
	for len(data) >= 8 {
		word := binary.LittleEndian.Uint64(data[:8])
		data = data[8:]
		at += sim.Time(word >> 48)
		kind := telemetry.Kinds[int(word>>40&0xff)%len(telemetry.Kinds)]
		ev := telemetry.Event{At: at, Kind: kind, Disk: -1, Pair: -1}
		ev.Disk = int(word>>32&0xff) - 1
		ev.Pair = int(word>>24&0xff) - 1
		ev.Write = word>>23&1 == 1
		ev.Bytes = int64(word >> 8 & 0x7fff)
		switch word >> 4 & 0x7 {
		case 1:
			ev.LatencyUs = int64(word & 0xffff)
		case 2:
			ev.LogCap = int64(word&0xffff) + 1
			ev.LogUsed = int64(word & 0xff)
			ev.Backlog = int64(word & 0xf)
		case 3:
			n := int(word & 0xf)
			s := make([]byte, n)
			for i := range s {
				s[i] = stateAlphabet[int(word>>(i%8)&0xff)%len(stateAlphabet)]
			}
			ev.States = string(s)
		}
		evs = append(evs, ev)
	}
	return evs
}

// FuzzJournalRoundTrip feeds the JSONL encoder's output through the full
// journal lifecycle — rotation, gzip archival, manifest — and back
// through the streaming reader, requiring event-for-event equality and a
// verifying manifest. One fuzz byte steers the rotation/compression
// configuration so all writer paths stay covered.
func FuzzJournalRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte("\x10\x20\x30\x40\x50\x60\x70\x80journal-lifecycle-seed-corpus!!"))
	seed := make([]byte, 0, 256)
	for i := 0; i < 32; i++ {
		seed = append(seed, byte(i*37), byte(i*11), byte(i), 0xff, byte(i*5), 0x33, byte(i*13), byte(255-i))
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		cfg := RotateConfig{Dir: t.TempDir(), SegmentBytes: 512, Compress: true}
		if len(data) > 0 {
			cfg.Compress = data[0]&1 == 0
			cfg.SegmentBytes = int64(data[0])*16 + 128
		}
		evs := eventsFromBytes(data)

		w, err := NewRotatingWriter(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var scratch []byte
		for _, ev := range evs {
			scratch = telemetry.AppendEvent(scratch[:0], ev)
			if err := w.WriteEvent(scratch, ev.At); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := Verify(cfg.Dir); err != nil {
			t.Fatalf("manifest verification: %v", err)
		}

		r, err := Open(cfg.Dir)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		for i, want := range evs {
			got, err := r.Next()
			if err != nil {
				t.Fatalf("event %d: %v", i, err)
			}
			if got != want {
				t.Fatalf("event %d = %+v, want %+v", i, got, want)
			}
		}
		if _, err := r.Next(); err != io.EOF {
			t.Fatalf("reader yielded extra events: %v", err)
		}
	})
}
