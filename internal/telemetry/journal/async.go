package journal

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sync"

	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/telemetry"
)

// Policy selects what Emit does when the ring is full.
type Policy int

const (
	// PolicyBlock makes Emit wait for ring space. No event is ever lost,
	// so the journal bytes are a deterministic function of the event
	// sequence — the same contract as the synchronous JSONLSink, which is
	// why blocking is the default and the byte-equivalence gate runs
	// under it. The simulation goroutine stalls only when it has outrun
	// both the ring and the disk.
	PolicyBlock Policy = iota
	// PolicyDrop makes Emit discard the event and bump the drop counter
	// when the ring is full. Fleet/nightly sweeps prefer losing journal
	// lines to stalling hundreds of simulations on one slow disk; the
	// drop count lands in the manifest so lossy journals are
	// self-identifying.
	PolicyDrop
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyBlock:
		return "block"
	case PolicyDrop:
		return "drop"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// DefaultBuffer is the ring capacity used when AsyncConfig.Buffer is 0.
const DefaultBuffer = 8192

// AsyncConfig configures an AsyncSink.
type AsyncConfig struct {
	// Buffer is the ring capacity in events (DefaultBuffer when 0).
	Buffer int
	// Policy selects the full-ring behavior (PolicyBlock by default).
	Policy Policy
}

// AsyncSink moves journal encoding and IO off the simulation goroutine.
// Emit copies the event into a bounded MPSC ring and returns; a single
// writer goroutine drains the ring in batches, encodes each event with
// telemetry.AppendEvent into a goroutine-owned scratch buffer, and hands
// the lines to the EventWriter (typically a RotatingWriter). Producers
// pay one uncontended mutex acquisition and a struct copy per event —
// no encoding, no syscalls.
//
// Ordering: events from one producer are written in emission order. The
// simulator emits from its single event-loop goroutine, so with
// PolicyBlock the byte stream is identical to the synchronous sink's.
//
// Lifecycle: Flush blocks until everything emitted so far is encoded,
// written and flushed through the EventWriter (rolo.Run calls it at end
// of run); Close drains the ring, stops the writer goroutine, records
// WriterStats into the writer (when it accepts them) and closes it.
// Emit after Close counts the event as dropped rather than blocking.
//
//rolosan:resource
type AsyncSink struct {
	w      EventWriter
	policy Policy

	mu       sync.Mutex
	notFull  *sync.Cond // ring has space, or the sink is closing
	notEmpty *sync.Cond // ring has events, a flush is requested, or closing
	flushed  *sync.Cond // flushAck advanced, or the writer goroutine exited

	//rolosan:guardedby mu
	ring []telemetry.Event
	//rolosan:guardedby mu
	head int
	//rolosan:guardedby mu
	n int
	//rolosan:guardedby mu
	closing bool
	//rolosan:guardedby mu
	writerExited bool
	//rolosan:guardedby mu
	err error // first writer error, sticky
	//rolosan:guardedby mu
	stats WriterStats
	//rolosan:guardedby mu
	flushReq uint64
	//rolosan:guardedby mu
	flushAck uint64

	done chan struct{} // closed when the writer goroutine exits

	// Writer-goroutine-owned scratch (no locking): the drain batch and
	// the encode buffer, both reused across batches.
	batch   []telemetry.Event
	scratch []byte
}

// NewAsyncSink starts the writer goroutine over w. The caller must Close
// the sink (which closes w) when the run is over.
func NewAsyncSink(w EventWriter, cfg AsyncConfig) *AsyncSink {
	buf := cfg.Buffer
	if buf <= 0 {
		buf = DefaultBuffer
	}
	s := &AsyncSink{
		w:      w,
		policy: cfg.Policy,
		ring:   make([]telemetry.Event, buf),
		done:   make(chan struct{}),
		batch:  make([]telemetry.Event, 0, buf),
		stats:  WriterStats{Capacity: buf},
	}
	s.notFull = sync.NewCond(&s.mu)
	s.notEmpty = sync.NewCond(&s.mu)
	s.flushed = sync.NewCond(&s.mu)
	go func() {
		defer close(s.done)
		s.writeLoop()
	}()
	return s
}

// Emit implements telemetry.Sink. It is safe for concurrent producers.
func (s *AsyncSink) Emit(ev telemetry.Event) {
	s.mu.Lock()
	for s.n == len(s.ring) && !s.closing {
		if s.policy == PolicyDrop {
			s.stats.Dropped++
			s.mu.Unlock()
			return
		}
		s.notFull.Wait()
	}
	if s.closing {
		s.stats.Dropped++
		s.mu.Unlock()
		return
	}
	s.ring[(s.head+s.n)%len(s.ring)] = ev
	s.n++
	s.stats.Enqueued++
	if s.n > s.stats.PeakOccupancy {
		s.stats.PeakOccupancy = s.n
	}
	if s.n == 1 {
		s.notEmpty.Signal()
	}
	s.mu.Unlock()
}

// writeLoop is the single consumer: batch-drain the ring, encode and
// write outside the lock, serve flush requests, exit once closing and
// drained.
func (s *AsyncSink) writeLoop() {
	defer func() {
		s.mu.Lock()
		s.writerExited = true
		s.flushed.Broadcast()
		s.notFull.Broadcast()
		s.mu.Unlock()
	}()
	for {
		s.mu.Lock()
		for s.n == 0 && !s.closing && s.flushAck == s.flushReq {
			s.notEmpty.Wait()
		}
		take := s.n
		s.batch = s.batch[:0]
		for i := 0; i < take; i++ {
			s.batch = append(s.batch, s.ring[(s.head+i)%len(s.ring)])
		}
		s.head = (s.head + take) % len(s.ring)
		s.n = 0
		closing := s.closing
		flushTo := s.flushReq
		doFlush := s.flushAck != flushTo
		if take > 0 {
			s.stats.Batches++
			if take > s.stats.MaxBatch {
				s.stats.MaxBatch = take
			}
			s.notFull.Broadcast()
		}
		s.mu.Unlock()

		var werr error
		written := 0
		for _, ev := range s.batch {
			s.scratch = telemetry.AppendEvent(s.scratch[:0], ev)
			if err := s.w.WriteEvent(s.scratch, ev.At); err != nil {
				werr = err
				break
			}
			written++
		}
		var ferr error
		if doFlush {
			ferr = s.w.Flush()
		}

		s.mu.Lock()
		s.stats.Written += int64(written)
		// Events past a write failure are dropped, not silently absorbed.
		s.stats.Dropped += int64(take - written)
		if s.err == nil {
			s.err = werr
		}
		if s.err == nil {
			s.err = ferr
		}
		if doFlush {
			s.flushAck = flushTo
			s.flushed.Broadcast()
		}
		exit := closing && s.n == 0 && s.flushAck == s.flushReq
		s.mu.Unlock()
		if exit {
			return
		}
	}
}

// Flush implements telemetry.Flusher: it blocks until every event
// emitted before the call has been encoded, written and flushed through
// the EventWriter, then reports the writer's sticky error, if any.
func (s *AsyncSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.writerExited {
		return s.err
	}
	s.flushReq++
	target := s.flushReq
	s.notEmpty.Signal()
	for s.flushAck < target && !s.writerExited {
		s.flushed.Wait()
	}
	return s.err
}

// Close drains the ring, stops the writer goroutine, records the sink's
// self-telemetry into the EventWriter (when it accepts WriterStats, as
// RotatingWriter does) and closes it. Close is idempotent; the first
// call's error — writer errors joined with the close error — is
// authoritative.
func (s *AsyncSink) Close() error {
	s.mu.Lock()
	already := s.closing
	s.closing = true
	s.notEmpty.Signal()
	s.notFull.Broadcast()
	s.mu.Unlock()
	<-s.done
	if already {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.err
	}
	// The writer goroutine has exited: the EventWriter is ours again.
	if sr, ok := s.w.(interface{ SetWriterStats(WriterStats) }); ok {
		sr.SetWriterStats(s.Stats())
	}
	cerr := s.w.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		s.err = cerr
	} else if cerr != nil {
		s.err = errors.Join(s.err, cerr)
	}
	return s.err
}

// Stats returns a snapshot of the sink's self-telemetry.
func (s *AsyncSink) Stats() WriterStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// streamWriter adapts a plain io.Writer (one growing JSONL stream, no
// rotation) to the EventWriter contract, for async journaling to a
// single file and for tests and benchmarks.
type streamWriter struct {
	bw *bufio.Writer
	c  io.Closer // underlying file, when owned; nil otherwise
}

// NewStreamWriter wraps w in a buffered EventWriter. Close flushes; it
// closes w only when w is an io.Closer.
func NewStreamWriter(w io.Writer) EventWriter {
	sw := &streamWriter{bw: bufio.NewWriterSize(w, 64<<10)}
	if c, ok := w.(io.Closer); ok {
		sw.c = c
	}
	return sw
}

func (w *streamWriter) WriteEvent(line []byte, _ sim.Time) error {
	_, err := w.bw.Write(line)
	return err
}

func (w *streamWriter) Flush() error { return w.bw.Flush() }

func (w *streamWriter) Close() error {
	err := w.bw.Flush()
	if w.c != nil {
		if cerr := w.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
