package journal

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/telemetry"
)

// nullWriter swallows lines; it isolates the producer-side cost of the
// sinks from disk speed.
type nullWriter struct{}

func (nullWriter) WriteEvent([]byte, sim.Time) error { return nil }
func (nullWriter) Flush() error                      { return nil }
func (nullWriter) Close() error                      { return nil }

// nullIOWriter is the io.Writer equivalent for the synchronous sink.
type nullIOWriter struct{}

func (nullIOWriter) Write(p []byte) (int, error) { return len(p), nil }

var benchEvents = genBenchEvents()

func genBenchEvents() [8]telemetry.Event {
	return [8]telemetry.Event{
		{At: 1000, Kind: telemetry.KindRequestStart, Disk: -1, Pair: -1, Write: true, Bytes: 65536},
		{At: 1400, Kind: telemetry.KindRequestDone, Disk: -1, Pair: -1, Write: true, LatencyUs: 400},
		{At: 2000, Kind: telemetry.KindRotation, Disk: -1, Pair: 7},
		{At: 2100, Kind: telemetry.KindSpinUp, Disk: 13, Pair: -1},
		{At: 2200, Kind: telemetry.KindCacheHit, Disk: -1, Pair: 0, Bytes: 4096},
		{At: 2300, Kind: telemetry.KindLogInvalidate, Disk: -1, Pair: 3, Bytes: 1 << 20},
		{At: 2400, Kind: telemetry.KindProbe, Disk: -1, Pair: -1, States: "AISUDAISUD", LogUsed: 100, LogCap: 1000, Backlog: 5},
		{At: 2500, Kind: telemetry.KindRequestDone, Disk: -1, Pair: -1, LatencyUs: 90},
	}
}

// BenchmarkSyncJSONLSinkEmit is the baseline: the synchronous sink's
// per-event cost on the emitting (simulation) goroutine when the journal
// goes to an actual file — encode, buffered write, and the amortized
// write syscalls whenever the buffer fills.
func BenchmarkSyncJSONLSinkEmit(b *testing.B) {
	f, err := os.Create(filepath.Join(b.TempDir(), "journal.jsonl"))
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	s := telemetry.NewJSONLSink(f)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Emit(benchEvents[i%len(benchEvents)])
	}
	b.StopTimer()
	if err := s.Flush(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAsyncSinkEmit measures what the simulation goroutine pays per
// event with the async pipeline over the same file-backed journal: a
// ring push under an uncontended mutex. Encoding and IO happen on the
// writer goroutine. The acceptance gate for the async journal work is
// this number dropping below the synchronous baseline above.
func BenchmarkAsyncSinkEmit(b *testing.B) {
	f, err := os.Create(filepath.Join(b.TempDir(), "journal.jsonl"))
	if err != nil {
		b.Fatal(err)
	}
	s := NewAsyncSink(NewStreamWriter(f), AsyncConfig{Buffer: DefaultBuffer, Policy: PolicyBlock})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Emit(benchEvents[i%len(benchEvents)])
	}
	b.StopTimer()
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAsyncSinkEmitDrop is the fleet-mode variant: PolicyDrop never
// blocks the producer even when the writer falls behind.
func BenchmarkAsyncSinkEmitDrop(b *testing.B) {
	f, err := os.Create(filepath.Join(b.TempDir(), "journal.jsonl"))
	if err != nil {
		b.Fatal(err)
	}
	s := NewAsyncSink(NewStreamWriter(f), AsyncConfig{Buffer: DefaultBuffer, Policy: PolicyDrop})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Emit(benchEvents[i%len(benchEvents)])
	}
	b.StopTimer()
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAsyncSinkEmitNullIO isolates the pure ring-push cost with no
// IO anywhere, for profiling the sink itself rather than the pipeline.
func BenchmarkAsyncSinkEmitNullIO(b *testing.B) {
	s := NewAsyncSink(nullWriter{}, AsyncConfig{Buffer: DefaultBuffer, Policy: PolicyBlock})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Emit(benchEvents[i%len(benchEvents)])
	}
	b.StopTimer()
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
}
