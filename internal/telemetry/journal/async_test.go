package journal

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/telemetry"
)

// memWriter is an in-memory EventWriter for sink tests.
type memWriter struct {
	buf     bytes.Buffer
	flushes int
	closed  bool
	stats   *WriterStats
	failAt  int // fail the Nth write (1-based); 0 never fails
	writes  int
}

func (w *memWriter) WriteEvent(line []byte, _ sim.Time) error {
	w.writes++
	if w.failAt > 0 && w.writes >= w.failAt {
		return fmt.Errorf("memWriter: injected failure at write %d", w.writes)
	}
	_, err := w.buf.Write(line)
	return err
}

func (w *memWriter) Flush() error { w.flushes++; return nil }

func (w *memWriter) Close() error { w.closed = true; return nil }

func (w *memWriter) SetWriterStats(ws WriterStats) { w.stats = &ws }

func TestAsyncSinkBlockingPreservesBytes(t *testing.T) {
	evs := genEvents(5000, 10)
	want := encodeAll(evs)

	// A tiny ring forces the producer through the backpressure path.
	mw := &memWriter{}
	s := NewAsyncSink(mw, AsyncConfig{Buffer: 16, Policy: PolicyBlock})
	for _, ev := range evs {
		s.Emit(ev)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	if !bytes.Equal(mw.buf.Bytes(), want) {
		t.Fatalf("async bytes diverge from synchronous encoding (%d vs %d bytes)", mw.buf.Len(), len(want))
	}
	st := s.Stats()
	if st.Dropped != 0 {
		t.Fatalf("blocking policy dropped %d events", st.Dropped)
	}
	if st.Enqueued != int64(len(evs)) || st.Written != int64(len(evs)) {
		t.Fatalf("stats enqueued=%d written=%d, want %d", st.Enqueued, st.Written, len(evs))
	}
	if st.Batches == 0 || st.MaxBatch == 0 || st.PeakOccupancy == 0 || st.PeakOccupancy > 16 {
		t.Fatalf("implausible batch stats: %+v", st)
	}
	if !mw.closed {
		t.Fatal("Close did not close the EventWriter")
	}
	if mw.stats == nil || mw.stats.Written != int64(len(evs)) {
		t.Fatalf("self-telemetry not recorded into the writer: %+v", mw.stats)
	}
}

func TestAsyncSinkDropPolicy(t *testing.T) {
	// A writer that blocks until released, so the ring must fill.
	gate := make(chan struct{})
	mw := &memWriter{}
	bw := &gatedWriter{inner: mw, gate: gate}
	s := NewAsyncSink(bw, AsyncConfig{Buffer: 8, Policy: PolicyDrop})
	for i := 0; i < 100; i++ {
		s.Emit(telemetry.Event{At: sim.Time(i), Kind: telemetry.KindRequestStart, Disk: -1, Pair: -1})
	}
	close(gate)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st := s.Stats()
	if st.Dropped == 0 {
		t.Fatal("drop policy with a stalled writer dropped nothing")
	}
	if st.Enqueued+st.Dropped != 100 {
		t.Fatalf("enqueued %d + dropped %d != 100", st.Enqueued, st.Dropped)
	}
	if st.Written != st.Enqueued {
		t.Fatalf("written %d != enqueued %d after drain", st.Written, st.Enqueued)
	}
}

// gatedWriter blocks its first write until the gate opens.
type gatedWriter struct {
	inner EventWriter
	gate  chan struct{}
	once  sync.Once
}

func (w *gatedWriter) WriteEvent(line []byte, at sim.Time) error {
	w.once.Do(func() { <-w.gate })
	return w.inner.WriteEvent(line, at)
}
func (w *gatedWriter) Flush() error { return w.inner.Flush() }
func (w *gatedWriter) Close() error { return w.inner.Close() }

func TestAsyncSinkConcurrentProducers(t *testing.T) {
	// Multiple producers (the MPSC case): every event must arrive exactly
	// once; cross-producer order is unspecified.
	const producers, per = 8, 500
	mw := &memWriter{}
	s := NewAsyncSink(mw, AsyncConfig{Buffer: 32, Policy: PolicyBlock})
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Emit(telemetry.Event{
					At: sim.Time(p*per + i), Kind: telemetry.KindCacheHit,
					Disk: -1, Pair: p, Bytes: int64(i + 1),
				})
			}
		}(p)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st := s.Stats()
	if st.Dropped != 0 || st.Written != producers*per {
		t.Fatalf("stats after concurrent producers: %+v", st)
	}
	evs, err := telemetry.ParseJournal(bytes.NewReader(mw.buf.Bytes()))
	if err != nil {
		t.Fatalf("journal unparseable after concurrent producers: %v", err)
	}
	if len(evs) != producers*per {
		t.Fatalf("journal holds %d events, want %d", len(evs), producers*per)
	}
	seen := make(map[sim.Time]bool, len(evs))
	for _, ev := range evs {
		if seen[ev.At] {
			t.Fatalf("event %v written twice", ev.At)
		}
		seen[ev.At] = true
	}
}

func TestAsyncSinkEmitAfterCloseDrops(t *testing.T) {
	mw := &memWriter{}
	s := NewAsyncSink(mw, AsyncConfig{Buffer: 8})
	s.Emit(telemetry.Event{At: 1, Kind: telemetry.KindSpinUp, Disk: 0, Pair: -1})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s.Emit(telemetry.Event{At: 2, Kind: telemetry.KindSpinUp, Disk: 1, Pair: -1})
	st := s.Stats()
	if st.Written != 1 || st.Dropped != 1 {
		t.Fatalf("post-close emit: %+v", st)
	}
	// Close is idempotent.
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// Flush after close must not hang and must report the sticky state.
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush after Close: %v", err)
	}
}

func TestAsyncSinkStickyWriteError(t *testing.T) {
	mw := &memWriter{failAt: 3}
	s := NewAsyncSink(mw, AsyncConfig{Buffer: 4, Policy: PolicyBlock})
	for i := 0; i < 10; i++ {
		s.Emit(telemetry.Event{At: sim.Time(i), Kind: telemetry.KindSpinDown, Disk: i, Pair: -1})
	}
	if err := s.Flush(); err == nil {
		t.Fatal("Flush swallowed the writer error")
	}
	if err := s.Close(); err == nil {
		t.Fatal("Close swallowed the writer error")
	}
	st := s.Stats()
	if st.Dropped == 0 {
		t.Fatal("events past the write failure not accounted as dropped")
	}
	if st.Written+st.Dropped != st.Enqueued {
		t.Fatalf("accounting leak: %+v", st)
	}
}

func TestAsyncSinkOverRotatingWriter(t *testing.T) {
	// The full production stack: async ring → rotating writer → gzip
	// segments → manifest; then verified and read back.
	dir := t.TempDir()
	evs := genEvents(2000, 11)
	w, err := NewRotatingWriter(RotateConfig{Dir: dir, SegmentBytes: 4096, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	s := NewAsyncSink(w, AsyncConfig{Buffer: 64, Policy: PolicyBlock})
	for _, ev := range evs {
		s.Emit(ev)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	m, err := Verify(dir)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if m.Writer == nil || m.Writer.Dropped != 0 || m.Writer.Written != int64(len(evs)) {
		t.Fatalf("manifest writer stats: %+v", m.Writer)
	}
	if got, want := concatSegments(t, dir), encodeAll(evs); !bytes.Equal(got, want) {
		t.Fatal("async rotated journal diverges from synchronous single-file bytes")
	}
	got := readAll(t, dir)
	for i := range evs {
		if got[i] != evs[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], evs[i])
		}
	}
}

func TestStreamWriterAdapter(t *testing.T) {
	var buf bytes.Buffer
	w := NewStreamWriter(&buf)
	evs := genEvents(50, 12)
	var scratch []byte
	for _, ev := range evs {
		scratch = telemetry.AppendEvent(scratch[:0], ev)
		if err := w.WriteEvent(scratch, ev.At); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), encodeAll(evs)) {
		t.Fatal("stream writer bytes diverge")
	}
}
