// Package journal is the telemetry journal's lifecycle layer: an
// asynchronous sink that moves event encoding and file IO off the
// simulation goroutine, a rotating writer that cuts size-capped JSONL
// segments and archives completed ones with gzip, a manifest describing
// every segment, and a streaming reader that iterates a journal — single
// file or rotated directory, plain or compressed — in order without ever
// holding it in memory.
//
// Layout of a rotated journal directory:
//
//	run-00001.jsonl.gz    completed segment, gzip-compressed
//	run-00002.jsonl.gz    ...
//	run-00003.jsonl       active (or final uncompressed) segment
//	manifest.json         per-segment event counts, time bounds, checksums
//
// The writer side preserves the telemetry package's byte-determinism
// contract: with the blocking backpressure policy, the concatenation of
// the (decompressed) segments is byte-identical to the journal a
// synchronous telemetry.JSONLSink would have produced for the same run.
package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"github.com/rolo-storage/rolo/internal/sim"
)

// ManifestName is the manifest file name inside a rotated journal
// directory.
const ManifestName = "manifest.json"

// SegmentInfo describes one journal segment in the manifest.
type SegmentInfo struct {
	// Name is the segment file name within the journal directory
	// (run-00001.jsonl, or run-00001.jsonl.gz once compressed).
	Name string `json:"name"`
	// Events is the number of journal events (JSONL lines) in the segment.
	Events int64 `json:"events"`
	// FirstAt and LastAt bound the simulation times of the segment's
	// events in microseconds (both 0 for an empty segment).
	FirstAt sim.Time `json:"first_at"`
	LastAt  sim.Time `json:"last_at"`
	// Bytes is the uncompressed JSONL byte size of the segment.
	Bytes int64 `json:"bytes"`
	// CRC32 is the IEEE checksum of the uncompressed segment bytes.
	CRC32 uint32 `json:"crc32"`
	// Compressed marks gzip-archived segments.
	Compressed bool `json:"compressed,omitempty"`
}

// WriterStats is the async sink's self-telemetry, recorded in the
// manifest on close so every journal carries the evidence of how it was
// written (the drop counter must be zero under the blocking policy).
type WriterStats struct {
	// Enqueued counts events accepted into the ring.
	Enqueued int64 `json:"enqueued"`
	// Written counts events the writer goroutine encoded and wrote.
	Written int64 `json:"written"`
	// Dropped counts events discarded: ring-full drops under PolicyDrop,
	// plus any events arriving after Close began.
	Dropped int64 `json:"dropped"`
	// PeakOccupancy is the high-water mark of events queued in the ring.
	PeakOccupancy int `json:"peak_occupancy"`
	// Capacity is the ring size the sink ran with.
	Capacity int `json:"capacity"`
	// Batches counts writer-goroutine drains; MaxBatch is the largest
	// single drain. Written/Batches is the mean batch size.
	Batches  int64 `json:"batches"`
	MaxBatch int   `json:"max_batch"`
}

// Manifest describes a rotated journal directory: every retained segment
// in order, how many older segments the retention cap deleted, and the
// async writer's self-telemetry when the journal was written through an
// AsyncSink.
type Manifest struct {
	Segments []SegmentInfo `json:"segments"`
	// RemovedSegments counts segments deleted by the retention cap; their
	// events are gone from disk and from the Segments list.
	RemovedSegments int `json:"removed_segments,omitempty"`
	// Writer carries the async sink's close-time self-telemetry, when the
	// journal was written asynchronously.
	Writer *WriterStats `json:"writer,omitempty"`
}

// Events sums the event counts of all retained segments.
func (m *Manifest) Events() int64 {
	var n int64
	for _, s := range m.Segments {
		n += s.Events
	}
	return n
}

// WriteManifest atomically replaces dir's manifest (write to a temp file,
// then rename) so a crash mid-write never leaves a truncated manifest.
func WriteManifest(dir string, m *Manifest) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("journal: encoding manifest: %w", err)
	}
	b = append(b, '\n')
	tmp := filepath.Join(dir, ManifestName+".tmp")
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("journal: writing manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, ManifestName)); err != nil {
		return fmt.Errorf("journal: installing manifest: %w", err)
	}
	return nil
}

// ReadManifest loads dir's manifest.
func ReadManifest(dir string) (*Manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("journal: reading manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("journal: decoding manifest: %w", err)
	}
	return &m, nil
}
