package journal

import (
	"bytes"
	"compress/gzip"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/telemetry"
)

// genEvents builds a deterministic event sequence exercising every kind
// and optional-field combination the encoder distinguishes.
func genEvents(n int, seed int64) []telemetry.Event {
	rng := rand.New(rand.NewSource(seed))
	evs := make([]telemetry.Event, n)
	var at sim.Time
	for i := range evs {
		at += sim.Time(rng.Intn(5000))
		kind := telemetry.Kinds[rng.Intn(len(telemetry.Kinds))]
		ev := telemetry.Event{At: at, Kind: kind, Disk: -1, Pair: -1}
		switch kind {
		case telemetry.KindRequestStart:
			ev.Write = rng.Intn(2) == 0
			ev.Bytes = int64(rng.Intn(1 << 20))
		case telemetry.KindRequestDone:
			ev.Write = rng.Intn(2) == 0
			ev.LatencyUs = int64(rng.Intn(1e6))
		case telemetry.KindSpinUp, telemetry.KindSpinDown:
			ev.Disk = rng.Intn(40)
		case telemetry.KindRotation, telemetry.KindDestageStart, telemetry.KindDestageDone:
			ev.Pair = rng.Intn(20)
		case telemetry.KindLogInvalidate:
			ev.Pair = rng.Intn(20)
			ev.Bytes = int64(rng.Intn(1 << 24))
		case telemetry.KindCacheHit, telemetry.KindCacheMiss:
			ev.Pair = rng.Intn(20) - 1
			ev.Bytes = int64(rng.Intn(1 << 16))
		case telemetry.KindProbe:
			ev.States = strings.Repeat("AISUDF", 3)[:rng.Intn(18)]
			ev.LogCap = int64(rng.Intn(1 << 30))
			if ev.LogCap > 0 {
				ev.LogUsed = int64(rng.Intn(int(ev.LogCap)))
			}
			ev.Backlog = int64(rng.Intn(1 << 20))
		}
		evs[i] = ev
	}
	return evs
}

// encodeAll renders events exactly as the synchronous JSONLSink would.
func encodeAll(evs []telemetry.Event) []byte {
	var out []byte
	for _, ev := range evs {
		out = telemetry.AppendEvent(out, ev)
	}
	return out
}

// writeRotated pushes events through a RotatingWriter synchronously.
func writeRotated(t *testing.T, dir string, cfg RotateConfig, evs []telemetry.Event) {
	t.Helper()
	cfg.Dir = dir
	w, err := NewRotatingWriter(cfg)
	if err != nil {
		t.Fatalf("NewRotatingWriter: %v", err)
	}
	var buf []byte
	for _, ev := range evs {
		buf = telemetry.AppendEvent(buf[:0], ev)
		if err := w.WriteEvent(buf, ev.At); err != nil {
			t.Fatalf("WriteEvent: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// readAll drains a Reader.
func readAll(t *testing.T, path string) []telemetry.Event {
	t.Helper()
	r, err := Open(path)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	defer r.Close()
	var out []telemetry.Event
	for {
		ev, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, ev)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return out
}

// concatSegments decompresses and concatenates a directory's segments in
// order — the byte-equivalence view of a rotated journal.
func concatSegments(t *testing.T, dir string) []byte {
	t.Helper()
	files, err := segmentFiles(dir)
	if err != nil {
		t.Fatalf("segmentFiles: %v", err)
	}
	var out []byte
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if strings.HasSuffix(f, ".gz") {
			gz, err := gzip.NewReader(bytes.NewReader(b))
			if err != nil {
				t.Fatalf("%s: %v", f, err)
			}
			if b, err = io.ReadAll(gz); err != nil {
				t.Fatalf("%s: %v", f, err)
			}
		}
		out = append(out, b...)
	}
	return out
}

func TestRotatingWriterSegmentsAndManifest(t *testing.T) {
	dir := t.TempDir()
	evs := genEvents(500, 1)
	writeRotated(t, dir, RotateConfig{SegmentBytes: 2048, Compress: true}, evs)

	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Segments) < 3 {
		t.Fatalf("expected several segments, got %d", len(m.Segments))
	}
	if got := m.Events(); got != int64(len(evs)) {
		t.Fatalf("manifest counts %d events, wrote %d", got, len(evs))
	}
	for i, s := range m.Segments {
		if !s.Compressed || !strings.HasSuffix(s.Name, ".jsonl.gz") {
			t.Fatalf("segment %d not archived: %+v", i, s)
		}
		if s.Events == 0 || s.Bytes == 0 || s.CRC32 == 0 {
			t.Fatalf("segment %d has empty accounting: %+v", i, s)
		}
		if s.FirstAt > s.LastAt {
			t.Fatalf("segment %d time bounds inverted: %+v", i, s)
		}
		if i > 0 && m.Segments[i-1].LastAt > s.FirstAt {
			t.Fatalf("segments %d/%d out of order", i-1, i)
		}
	}

	// Concatenated decompressed segments == the synchronous encoding.
	if got, want := concatSegments(t, dir), encodeAll(evs); !bytes.Equal(got, want) {
		t.Fatalf("segment concatenation diverges from single-file encoding (%d vs %d bytes)", len(got), len(want))
	}

	// The streaming reader yields the events back, in order, equal.
	got := readAll(t, dir)
	if len(got) != len(evs) {
		t.Fatalf("reader yielded %d events, wrote %d", len(got), len(evs))
	}
	for i := range evs {
		if got[i] != evs[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], evs[i])
		}
	}

	// And the manifest verifies.
	if _, err := Verify(dir); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestRotatingWriterUncompressedAndSingleSegment(t *testing.T) {
	evs := genEvents(100, 2)

	t.Run("uncompressed-rotation", func(t *testing.T) {
		dir := t.TempDir()
		writeRotated(t, dir, RotateConfig{SegmentBytes: 1024}, evs)
		m, err := Verify(dir)
		if err != nil {
			t.Fatalf("Verify: %v", err)
		}
		for _, s := range m.Segments {
			if s.Compressed {
				t.Fatalf("segment %s compressed without Compress", s.Name)
			}
		}
		if got, want := concatSegments(t, dir), encodeAll(evs); !bytes.Equal(got, want) {
			t.Fatal("uncompressed segments diverge from baseline")
		}
	})

	t.Run("single-unbounded-segment", func(t *testing.T) {
		dir := t.TempDir()
		writeRotated(t, dir, RotateConfig{}, evs)
		m, err := Verify(dir)
		if err != nil {
			t.Fatalf("Verify: %v", err)
		}
		if len(m.Segments) != 1 {
			t.Fatalf("expected 1 segment, got %d", len(m.Segments))
		}
	})

	t.Run("empty-run", func(t *testing.T) {
		dir := t.TempDir()
		writeRotated(t, dir, RotateConfig{SegmentBytes: 1024, Compress: true}, nil)
		m, err := Verify(dir)
		if err != nil {
			t.Fatalf("Verify: %v", err)
		}
		if len(m.Segments) != 1 || m.Segments[0].Events != 0 {
			t.Fatalf("empty run manifest: %+v", m)
		}
		if got := readAll(t, dir); len(got) != 0 {
			t.Fatalf("empty run yielded %d events", len(got))
		}
	})
}

func TestRotatingWriterRetention(t *testing.T) {
	dir := t.TempDir()
	evs := genEvents(500, 3)
	writeRotated(t, dir, RotateConfig{SegmentBytes: 2048, Compress: true, Retain: 2}, evs)

	m, err := Verify(dir)
	if err != nil {
		t.Fatalf("Verify after retention: %v", err)
	}
	if len(m.Segments) > 2 {
		t.Fatalf("retention kept %d segments, cap 2", len(m.Segments))
	}
	if m.RemovedSegments == 0 {
		t.Fatal("retention removed nothing for a many-segment run")
	}
	// The retained tail must still match the baseline's tail bytes.
	want := encodeAll(evs)
	got := concatSegments(t, dir)
	if !bytes.HasSuffix(want, got) {
		t.Fatal("retained segments are not a suffix of the baseline stream")
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	evs := genEvents(300, 4)
	writeRotated(t, dir, RotateConfig{SegmentBytes: 2048, Compress: false}, evs)
	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one byte inside the middle segment: CRC must catch it.
	victim := filepath.Join(dir, m.Segments[len(m.Segments)/2].Name)
	b, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x20
	if err := os.WriteFile(victim, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(dir); err == nil {
		t.Fatal("Verify accepted a corrupted segment")
	}

	// A stray segment file must be flagged too.
	if err := os.WriteFile(victim, b, 0o644); err != nil {
		t.Fatal(err)
	}
	stray := filepath.Join(dir, segmentName(999))
	if err := os.WriteFile(stray, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(dir); err == nil || !strings.Contains(err.Error(), "not in the manifest") {
		t.Fatalf("Verify missed the stray segment: %v", err)
	}
	if err := os.Remove(stray); err != nil {
		t.Fatal(err)
	}

	// A deleted segment must be flagged.
	if err := os.Remove(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(dir); err == nil {
		t.Fatal("Verify accepted a missing segment")
	}
}

func TestOpenSingleFileMatchesParseJournal(t *testing.T) {
	evs := genEvents(200, 5)
	raw := encodeAll(evs)
	path := filepath.Join(t.TempDir(), "run.jsonl")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got := readAll(t, path)
	want, err := telemetry.ParseJournal(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("reader: %d events, ParseJournal: %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "absent.jsonl")); err == nil {
		t.Fatal("Open accepted a missing path")
	}
	if _, err := Open(t.TempDir()); err == nil {
		t.Fatal("Open accepted a directory with no segments")
	}

	// Garbage line surfaces with file and line position.
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(path, []byte("{\"at\":1,\"kind\":\"SpinUp\",\"disk\":3}\n{nope\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Next(); err != nil {
		t.Fatalf("first line: %v", err)
	}
	_, err = r.Next()
	if err == nil || errors.Is(err, io.EOF) || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("garbage line error = %v", err)
	}
}

func TestDuplicateSegmentDetected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "run-00001.jsonl"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "run-00001.jsonl.gz"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted a plain+compressed duplicate segment")
	}
}

func TestRerunReplacesStaleJournal(t *testing.T) {
	// A rerun into the same directory must behave like os.Create on a
	// file: the previous journal disappears entirely, including segments
	// past the new run's end that would otherwise fail verification as
	// stray files.
	dir := t.TempDir()
	writeRotated(t, dir, RotateConfig{Dir: dir, SegmentBytes: 256, Compress: true}, genEvents(500, 21))
	short := genEvents(40, 22)
	writeRotated(t, dir, RotateConfig{Dir: dir, SegmentBytes: 256}, short)
	if _, err := Verify(dir); err != nil {
		t.Fatalf("rerun journal does not verify: %v", err)
	}
	got := readAll(t, dir)
	if len(got) != len(short) {
		t.Fatalf("rerun journal holds %d events, want %d", len(got), len(short))
	}
	for i := range short {
		if got[i] != short[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], short[i])
		}
	}
}
