package journal

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"github.com/rolo-storage/rolo/internal/sim"
)

// EventWriter is the destination contract of the async sink: one encoded
// JSONL line per event (newline included), stamped with the event's
// simulation time so rotation metadata can track time bounds without
// re-parsing. Implementations are single-goroutine: the async sink's
// writer goroutine (or a synchronous caller) owns the writer exclusively.
//
//rolosan:resource
type EventWriter interface {
	// WriteEvent appends one encoded event line (terminated by '\n').
	WriteEvent(line []byte, at sim.Time) error
	// Flush forces buffered lines to the underlying storage.
	Flush() error
	// Close finalizes the journal; no writes may follow.
	Close() error
}

// RotateConfig configures a RotatingWriter.
type RotateConfig struct {
	// Dir is the journal directory; it is created if missing.
	Dir string
	// SegmentBytes cuts a new segment once the active one reaches this
	// many uncompressed bytes (checked after each line, so lines are
	// never split). <= 0 keeps a single unbounded segment.
	SegmentBytes int64
	// Compress gzip-archives each completed segment (including the final
	// one at Close), replacing run-NNNNN.jsonl with run-NNNNN.jsonl.gz.
	Compress bool
	// Retain caps how many completed segments stay on disk; once
	// exceeded, the oldest is deleted and counted in the manifest's
	// RemovedSegments. 0 retains everything.
	Retain int
}

// segmentName renders the canonical segment file name for seq.
func segmentName(seq int) string { return fmt.Sprintf("run-%05d.jsonl", seq) }

// RotatingWriter writes a journal as size-capped JSONL segments with
// optional gzip archival, a retention cap, and a manifest recording each
// segment's event count, simulation-time bounds and CRC32. It implements
// EventWriter and is not safe for concurrent use — it is driven either
// synchronously or by an AsyncSink's single writer goroutine.
//
//rolosan:resource
type RotatingWriter struct {
	cfg RotateConfig

	f   *os.File
	bw  *bufio.Writer
	crc hash.Hash32
	mw  io.Writer // tee: bw + crc

	seq     int // active segment number, 1-based
	size    int64
	events  int64
	firstAt sim.Time
	lastAt  sim.Time

	manifest Manifest
	closed   bool
}

// NewRotatingWriter creates cfg.Dir if needed, removes any journal left
// there by a previous run (stale segments would otherwise survive past a
// shorter rerun and fail manifest verification — the directory analogue
// of os.Create truncating a file), and opens the first segment.
func NewRotatingWriter(cfg RotateConfig) (*RotatingWriter, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("journal: rotating writer needs a directory")
	}
	if cfg.Retain < 0 {
		return nil, fmt.Errorf("journal: negative retention cap %d", cfg.Retain)
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: creating %s: %w", cfg.Dir, err)
	}
	if err := removeStaleJournal(cfg.Dir); err != nil {
		return nil, err
	}
	w := &RotatingWriter{cfg: cfg}
	if err := w.openSegment(1); err != nil {
		return nil, err
	}
	return w, nil
}

// removeStaleJournal deletes segment files and the manifest of a prior
// journal in dir; files that are not journal artifacts are left alone.
func removeStaleJournal(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("journal: scanning %s: %w", dir, err)
	}
	for _, e := range entries {
		_, seg := isSegmentName(e.Name())
		if e.IsDir() || (!seg && e.Name() != ManifestName) {
			continue
		}
		if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
			return fmt.Errorf("journal: removing stale %s: %w", e.Name(), err)
		}
	}
	return nil
}

func (w *RotatingWriter) openSegment(seq int) error {
	f, err := os.Create(filepath.Join(w.cfg.Dir, segmentName(seq)))
	if err != nil {
		return fmt.Errorf("journal: creating segment: %w", err)
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, 64<<10)
	w.crc = crc32.NewIEEE()
	w.mw = io.MultiWriter(w.bw, w.crc)
	w.seq = seq
	w.size, w.events, w.firstAt, w.lastAt = 0, 0, 0, 0
	return nil
}

// WriteEvent implements EventWriter, rotating once the active segment
// reaches the configured size.
func (w *RotatingWriter) WriteEvent(line []byte, at sim.Time) error {
	if w.closed {
		return fmt.Errorf("journal: write to closed rotating writer")
	}
	if _, err := w.mw.Write(line); err != nil {
		return fmt.Errorf("journal: segment %s: %w", segmentName(w.seq), err)
	}
	if w.events == 0 {
		w.firstAt = at
	}
	w.lastAt = at
	w.events++
	w.size += int64(len(line))
	if w.cfg.SegmentBytes > 0 && w.size >= w.cfg.SegmentBytes {
		return w.rotate()
	}
	return nil
}

// Flush implements EventWriter; the active segment becomes tail-able.
func (w *RotatingWriter) Flush() error {
	if w.closed {
		return nil
	}
	return w.bw.Flush()
}

// seal flushes and closes the active segment file and appends its
// manifest entry (uncompressed for now).
func (w *RotatingWriter) seal() (SegmentInfo, error) {
	info := SegmentInfo{
		Name:    segmentName(w.seq),
		Events:  w.events,
		FirstAt: w.firstAt,
		LastAt:  w.lastAt,
		Bytes:   w.size,
		CRC32:   w.crc.Sum32(),
	}
	if err := w.bw.Flush(); err != nil {
		_ = w.f.Close() // the flush error is the root cause; the descriptor must not outlive the segment
		return info, fmt.Errorf("journal: flushing %s: %w", info.Name, err)
	}
	if err := w.f.Close(); err != nil {
		return info, fmt.Errorf("journal: closing %s: %w", info.Name, err)
	}
	return info, nil
}

// compress gzips a sealed segment in place: run-NNNNN.jsonl becomes
// run-NNNNN.jsonl.gz and the plain file is removed. The checksum in the
// manifest stays that of the uncompressed bytes, so verification and the
// byte-equivalence gate see through the archival step.
func (w *RotatingWriter) compress(info *SegmentInfo) error {
	plain := filepath.Join(w.cfg.Dir, info.Name)
	src, err := os.Open(plain)
	if err != nil {
		return fmt.Errorf("journal: compressing %s: %w", info.Name, err)
	}
	defer src.Close() //lint:allow resourcelifecycle:dropped-error read side of the archival copy; the write side is checked
	if err := writeArchive(plain+".gz", src); err != nil {
		return fmt.Errorf("journal: compressing %s: %w", info.Name, err)
	}
	if err := os.Remove(plain); err != nil {
		return fmt.Errorf("journal: removing %s after archival: %w", info.Name, err)
	}
	info.Name += ".gz"
	info.Compressed = true
	return nil
}

// writeArchive gzips src into a new file at path, closing both the gzip
// stream and the file on every path. Any failure removes the partial
// archive so an error never strands a stray .gz next to the plain
// segment it was meant to replace (the plain file is only removed by the
// caller after a fully successful archival).
func writeArchive(path string, src io.Reader) error {
	dst, err := os.Create(path)
	if err != nil {
		return err
	}
	gz := gzip.NewWriter(dst)
	_, err = io.Copy(gz, src)
	if cerr := gz.Close(); err == nil {
		err = cerr
	}
	if cerr := dst.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(path) // best-effort cleanup; the write error is the root cause
		return err
	}
	return nil
}

// retain enforces the retention cap over completed segments.
func (w *RotatingWriter) retain() error {
	if w.cfg.Retain <= 0 {
		return nil
	}
	for len(w.manifest.Segments) > w.cfg.Retain {
		victim := w.manifest.Segments[0]
		if err := os.Remove(filepath.Join(w.cfg.Dir, victim.Name)); err != nil {
			return fmt.Errorf("journal: retention removing %s: %w", victim.Name, err)
		}
		w.manifest.Segments = w.manifest.Segments[1:]
		w.manifest.RemovedSegments++
	}
	return nil
}

// rotate seals, archives and accounts the active segment, then opens the
// next one.
func (w *RotatingWriter) rotate() error {
	info, err := w.seal()
	if err != nil {
		return err
	}
	if w.cfg.Compress {
		if err := w.compress(&info); err != nil {
			return err
		}
	}
	w.manifest.Segments = append(w.manifest.Segments, info)
	if err := w.retain(); err != nil {
		return err
	}
	return w.openSegment(w.seq + 1)
}

// SetWriterStats attaches the async sink's self-telemetry for the
// manifest; call before Close.
func (w *RotatingWriter) SetWriterStats(ws WriterStats) {
	w.manifest.Writer = &ws
}

// Manifest returns a snapshot of the manifest as accounted so far
// (completed segments only until Close seals the active one).
func (w *RotatingWriter) Manifest() Manifest { return w.manifest }

// Close seals the active segment (dropping it instead if it is empty and
// not the only one), writes the manifest, and finalizes the journal.
func (w *RotatingWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	info, err := w.seal()
	if err != nil {
		return err
	}
	if info.Events == 0 && len(w.manifest.Segments) > 0 {
		// Rotation just cut a fresh segment and nothing arrived since:
		// an empty trailing file is noise, not data.
		if err := os.Remove(filepath.Join(w.cfg.Dir, info.Name)); err != nil {
			return fmt.Errorf("journal: removing empty %s: %w", info.Name, err)
		}
	} else {
		if w.cfg.Compress {
			if err := w.compress(&info); err != nil {
				return err
			}
		}
		w.manifest.Segments = append(w.manifest.Segments, info)
		if err := w.retain(); err != nil {
			return err
		}
	}
	return WriteManifest(w.cfg.Dir, &w.manifest)
}
