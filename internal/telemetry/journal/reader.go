package journal

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/rolo-storage/rolo/internal/telemetry"
)

// Reader streams a journal's events in order — one segment after the
// next, one line at a time — without ever materializing the journal in
// memory. cmd/rolostat's folds run over it, so analysis cost is
// constant-memory in the event count.
//
//rolosan:resource
type Reader struct {
	files []string // segment paths, in replay order
	idx   int      // next file to open
	cur   string   // file currently being read (for error messages)
	line  int

	f  *os.File
	gz *gzip.Reader
	sc *bufio.Scanner
}

// isSegmentName reports whether a directory entry is a journal segment
// and returns its ordering key (the plain name without the .gz suffix).
func isSegmentName(name string) (key string, ok bool) {
	key = strings.TrimSuffix(name, ".gz")
	if !strings.HasPrefix(key, "run-") || !strings.HasSuffix(key, ".jsonl") {
		return "", false
	}
	return key, true
}

// segmentFiles lists dir's segment files in replay order. Zero-padded
// sequence numbers make the lexical order the numeric order.
func segmentFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	type seg struct{ key, name string }
	var segs []seg
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if key, ok := isSegmentName(e.Name()); ok {
			segs = append(segs, seg{key, e.Name()})
		}
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("journal: %s contains no journal segments (run-*.jsonl[.gz])", dir)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].key < segs[j].key })
	files := make([]string, len(segs))
	for i, s := range segs {
		if i > 0 && segs[i-1].key == s.key {
			return nil, fmt.Errorf("journal: %s holds both %s and %s for one segment (interrupted archival?)",
				dir, segs[i-1].name, s.name)
		}
		files[i] = filepath.Join(dir, s.name)
	}
	return files, nil
}

// Open opens a journal for streaming: either a single JSONL file
// (optionally gzip-compressed) or a rotated journal directory, whose
// plain and compressed segments are iterated in order.
func Open(path string) (*Reader, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if !st.IsDir() {
		return &Reader{files: []string{path}}, nil
	}
	files, err := segmentFiles(path)
	if err != nil {
		return nil, err
	}
	return &Reader{files: files}, nil
}

// nextFile closes the current segment and opens the following one.
func (r *Reader) nextFile() error {
	if err := r.closeCurrent(); err != nil {
		return err
	}
	if r.idx >= len(r.files) {
		return io.EOF
	}
	path := r.files[r.idx]
	r.idx++
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	var src io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			_ = f.Close() // already failing; the gzip open error is the root cause
			return fmt.Errorf("journal: %s: %w", path, err)
		}
		r.gz = gz
		src = gz
	}
	r.f = f
	r.cur = path
	r.line = 0
	r.sc = bufio.NewScanner(src)
	r.sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	return nil
}

func (r *Reader) closeCurrent() error {
	var err error
	if r.gz != nil {
		err = r.gz.Close()
		r.gz = nil
	}
	if r.f != nil {
		if cerr := r.f.Close(); err == nil {
			err = cerr
		}
		r.f = nil
	}
	r.sc = nil
	if err != nil {
		return fmt.Errorf("journal: closing %s: %w", r.cur, err)
	}
	return nil
}

// Next returns the next event in journal order. It returns io.EOF after
// the last event of the last segment.
func (r *Reader) Next() (telemetry.Event, error) {
	for {
		if r.sc == nil {
			if err := r.nextFile(); err != nil {
				return telemetry.Event{}, err
			}
		}
		for r.sc.Scan() {
			r.line++
			raw := r.sc.Bytes()
			if len(raw) == 0 {
				continue
			}
			ev, err := telemetry.UnmarshalEvent(raw)
			if err != nil {
				return telemetry.Event{}, fmt.Errorf("journal: %s line %d: %w", r.cur, r.line, err)
			}
			return ev, nil
		}
		if err := r.sc.Err(); err != nil {
			return telemetry.Event{}, fmt.Errorf("journal: %s line %d: %w", r.cur, r.line, err)
		}
		r.sc = nil // segment exhausted; advance
	}
}

// Close releases the reader's file handles. It is safe after EOF.
func (r *Reader) Close() error {
	r.idx = len(r.files)
	return r.closeCurrent()
}

// Verify checks a rotated journal directory against its manifest: every
// listed segment must exist with the recorded uncompressed byte size,
// CRC32, event count and first/last simulation times, and no stray
// segment files may exist outside the manifest. It streams each segment
// once, so verification is constant-memory too. The returned manifest
// lets callers report totals.
func Verify(dir string) (*Manifest, error) {
	m, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	listed := make(map[string]bool, len(m.Segments))
	for _, s := range m.Segments {
		listed[s.Name] = true
	}
	files, err := segmentFiles(dir)
	if err != nil {
		return nil, err
	}
	for _, f := range files {
		if name := filepath.Base(f); !listed[name] {
			return nil, fmt.Errorf("journal: %s is not in the manifest", name)
		}
	}
	if len(files) != len(m.Segments) {
		return nil, fmt.Errorf("journal: manifest lists %d segments, directory has %d", len(m.Segments), len(files))
	}
	for _, want := range m.Segments {
		if err := verifySegment(dir, want); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// verifySegment recomputes one segment's manifest entry from its bytes.
func verifySegment(dir string, want SegmentInfo) error {
	f, err := os.Open(filepath.Join(dir, want.Name))
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer f.Close() //lint:allow resourcelifecycle:dropped-error read-only verification pass, close error carries no data
	var src io.Reader = f
	if want.Compressed != strings.HasSuffix(want.Name, ".gz") {
		return fmt.Errorf("journal: %s: compressed flag disagrees with file name", want.Name)
	}
	if want.Compressed {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return fmt.Errorf("journal: %s: %w", want.Name, err)
		}
		defer gz.Close() //lint:allow resourcelifecycle:dropped-error read-only verification pass, close error carries no data
		src = gz
	}
	crc := crc32.NewIEEE()
	sc := bufio.NewScanner(io.TeeReader(src, crc))
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	got := SegmentInfo{Name: want.Name, Compressed: want.Compressed}
	var firstLine, lastLine []byte
	for sc.Scan() {
		raw := sc.Bytes()
		got.Bytes += int64(len(raw)) + 1 // the scanner strips '\n'
		if len(raw) == 0 {
			continue
		}
		if got.Events == 0 {
			firstLine = append(firstLine[:0], raw...) //lint:allow taintbounds:append line length is capped by the scanner's 1 MiB buffer above
		}
		lastLine = append(lastLine[:0], raw...) //lint:allow taintbounds:append line length is capped by the scanner's 1 MiB buffer above
		got.Events++
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("journal: %s: %w", want.Name, err)
	}
	if got.Events > 0 {
		first, err := telemetry.UnmarshalEvent(firstLine)
		if err != nil {
			return fmt.Errorf("journal: %s first event: %w", want.Name, err)
		}
		last, err := telemetry.UnmarshalEvent(lastLine)
		if err != nil {
			return fmt.Errorf("journal: %s last event: %w", want.Name, err)
		}
		got.FirstAt, got.LastAt = first.At, last.At
	}
	// The CRC covers the newlines the scanner stripped; TeeReader fed the
	// raw bytes through, so Sum32 is over the exact uncompressed stream.
	got.CRC32 = crc.Sum32()
	if got != want {
		return fmt.Errorf("journal: %s fails verification:\n  manifest: %+v\n  observed: %+v", want.Name, want, got)
	}
	return nil
}
