package telemetry

import (
	"testing"

	"github.com/rolo-storage/rolo/internal/sim"
)

// discard is an io.Writer that swallows bytes, isolating encoder cost
// from disk speed.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// Core benchmark: the per-event journal encoding path. JSONLSink.Emit
// encodes with AppendEvent into a sink-owned scratch buffer and hands the
// line to a bufio.Writer; once the scratch has grown to cover the largest
// event it must be 0 allocs/op (DESIGN §11/§12) — the probe event below
// carries a States string precisely because quoting it was the one
// per-event allocation this path used to make. Gated by scripts/check.sh
// bench-smoke and recorded in BENCH_core.json by `make bench`.
func BenchmarkCoreTelemetryEncode(b *testing.B) {
	s := NewJSONLSink(discard{})
	evs := [...]Event{
		{At: 1000, Kind: KindRequestStart, Disk: -1, Pair: -1, Write: true, Bytes: 65536},
		{At: 1400, Kind: KindRequestDone, Disk: -1, Pair: -1, Write: true, LatencyUs: 400},
		{At: 2000, Kind: KindRotation, Disk: -1, Pair: 7},
		{At: 2100, Kind: KindSpinUp, Disk: 13, Pair: -1},
		{At: 2400, Kind: KindProbe, Disk: -1, Pair: -1,
			States:  "AISUDAISUDAISUDAISUDAISUDAISUDAISUDAISUD",
			LogUsed: 123456789, LogCap: 987654321, Backlog: 4 << 20},
		{At: 2500, Kind: KindCacheMiss, Disk: -1, Pair: 0, Bytes: 4096},
	}
	var _ = sim.Time(0) // the events above are stamped in raw microseconds
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Emit(evs[i%len(evs)])
	}
}
