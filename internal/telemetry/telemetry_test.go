package telemetry

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"github.com/rolo-storage/rolo/internal/sim"
)

func TestKindStringsRoundTrip(t *testing.T) {
	for _, k := range Kinds {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Fatal("ParseKind accepted garbage")
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind renders empty")
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder enabled")
	}
	// Every helper must be a no-op on a nil receiver.
	r.RequestStart(1, true, 10)
	r.RequestDone(2, false, 5)
	r.Rotation(3, 1)
	r.DestageStart(4, 0)
	r.DestageDone(5, 0)
	r.SpinUp(6, 2)
	r.SpinDown(7, 2)
	r.LogInvalidate(8, 1, 100)
	r.CacheHit(9, -1, 4096)
	r.CacheMiss(10, -1, 4096)
	r.Emit(Event{At: 11, Kind: KindProbe})
	if NewRecorder(nil) != nil {
		t.Fatal("NewRecorder(nil) not nil")
	}
}

func TestNilRecorderAllocatesNothing(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		r.RequestStart(1, true, 4096)
		r.RequestDone(2, true, 100)
		r.SpinUp(3, 7)
	})
	if allocs != 0 {
		t.Fatalf("disabled recorder allocates %.1f objects/op", allocs)
	}
}

func TestCountingSink(t *testing.T) {
	var cs CountingSink
	r := NewRecorder(&cs)
	if !r.Enabled() {
		t.Fatal("recorder with sink not enabled")
	}
	r.Rotation(1, 0)
	r.Rotation(2, 1)
	r.SpinUp(3, 4)
	if cs.Count(KindRotation) != 2 || cs.Count(KindSpinUp) != 1 || cs.Total() != 3 {
		t.Fatalf("counts: rot=%d up=%d total=%d",
			cs.Count(KindRotation), cs.Count(KindSpinUp), cs.Total())
	}
	if cs.Count(Kind(99)) != 0 {
		t.Fatal("out-of-range kind counted")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	r := NewRecorder(s)
	events := []func(){
		func() { r.RequestStart(100, true, 8192) },
		func() { r.RequestDone(5000, true, 4900) },
		func() { r.Rotation(6000, 3) },
		func() { r.DestageStart(6000, 3) },
		func() { r.DestageDone(9000, 3) },
		func() { r.SpinUp(9500, 12) },
		func() { r.SpinDown(20000, 12) },
		func() { r.LogInvalidate(9000, 3, 1<<20) },
		func() { r.CacheHit(9100, -1, 4096) },
		func() { r.CacheMiss(9200, 0, 512) },
		func() {
			r.Emit(Event{At: 10000, Kind: KindProbe, Disk: -1, Pair: -1,
				States: "AISUD", LogUsed: 5, LogCap: 10, Backlog: 7})
		},
	}
	for _, emit := range events {
		emit()
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ParseJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("parsed %d events, wrote %d", len(got), len(events))
	}
	want := []Event{
		{At: 100, Kind: KindRequestStart, Disk: -1, Pair: -1, Write: true, Bytes: 8192},
		{At: 5000, Kind: KindRequestDone, Disk: -1, Pair: -1, Write: true, LatencyUs: 4900},
		{At: 6000, Kind: KindRotation, Disk: -1, Pair: 3},
		{At: 6000, Kind: KindDestageStart, Disk: -1, Pair: 3},
		{At: 9000, Kind: KindDestageDone, Disk: -1, Pair: 3},
		{At: 9500, Kind: KindSpinUp, Disk: 12, Pair: -1},
		{At: 20000, Kind: KindSpinDown, Disk: 12, Pair: -1},
		{At: 9000, Kind: KindLogInvalidate, Disk: -1, Pair: 3, Bytes: 1 << 20},
		{At: 9100, Kind: KindCacheHit, Disk: -1, Pair: -1, Bytes: 4096},
		{At: 9200, Kind: KindCacheMiss, Disk: -1, Pair: 0, Bytes: 512},
		{At: 10000, Kind: KindProbe, Disk: -1, Pair: -1, States: "AISUD", LogUsed: 5, LogCap: 10, Backlog: 7},
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestJSONLDeterministicBytes(t *testing.T) {
	emitAll := func() string {
		var buf bytes.Buffer
		s := NewJSONLSink(&buf)
		r := NewRecorder(s)
		r.RequestStart(1, false, 512)
		r.RequestDone(2, false, 1)
		r.SpinUp(3, 0)
		_ = s.Flush()
		return buf.String()
	}
	a, b := emitAll(), emitAll()
	if a != b {
		t.Fatalf("same events produced different bytes:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, `"kind":"SpinUp"`) {
		t.Fatalf("unexpected journal contents: %s", a)
	}
}

func TestParseJournalRejectsGarbage(t *testing.T) {
	if _, err := ParseJournal(strings.NewReader("{nope\n")); err == nil {
		t.Fatal("garbage line accepted")
	}
	evs, err := ParseJournal(strings.NewReader(""))
	if err != nil || len(evs) != 0 {
		t.Fatalf("empty journal: %v, %d events", err, len(evs))
	}
}

func TestTeeSink(t *testing.T) {
	var a, b CountingSink
	var buf bytes.Buffer
	j := NewJSONLSink(&buf)
	tee := TeeSink{&a, &b, j}
	r := NewRecorder(tee)
	r.Rotation(1, 0)
	if err := tee.Flush(); err != nil {
		t.Fatal(err)
	}
	if a.Total() != 1 || b.Total() != 1 || buf.Len() == 0 {
		t.Fatal("tee did not fan out")
	}
}

func TestKindJSONRoundTrip(t *testing.T) {
	for _, k := range Kinds {
		b, err := k.MarshalJSON()
		if err != nil {
			t.Fatalf("MarshalJSON(%v): %v", k, err)
		}
		if want := `"` + k.String() + `"`; string(b) != want {
			t.Fatalf("MarshalJSON(%v) = %s, want %s", k, b, want)
		}
		var got Kind
		if err := got.UnmarshalJSON(b); err != nil || got != k {
			t.Fatalf("UnmarshalJSON(%s) = %v, %v", b, got, err)
		}
	}
	var k Kind
	if err := k.UnmarshalJSON([]byte(`"nope"`)); err == nil {
		t.Fatal("UnmarshalJSON accepted an unknown kind")
	}
	if err := k.UnmarshalJSON([]byte(`17`)); err == nil {
		t.Fatal("UnmarshalJSON accepted a non-string kind")
	}
}

// TestJSONLSinkZeroAlloc pins the hot-path guarantee the async pipeline
// builds on: once the sink's scratch buffer has grown to cover the
// largest event, Emit allocates nothing — including for events whose
// States string needs quoting, which used to cost one allocation per
// event.
func TestJSONLSinkZeroAlloc(t *testing.T) {
	s := NewJSONLSink(io.Discard)
	evs := []Event{
		{At: 1, Kind: KindRequestStart, Disk: -1, Pair: -1, Write: true, Bytes: 1 << 16},
		{At: 2, Kind: KindRequestDone, Disk: -1, Pair: -1, LatencyUs: 1234},
		{At: 3, Kind: KindProbe, Disk: -1, Pair: -1,
			States:  `AISUDAISUDAISUDAISUD"quoted\escape"AISUD`,
			LogUsed: 1 << 40, LogCap: 1 << 42, Backlog: 1 << 30},
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		s.Emit(evs[i%len(evs)])
		i++
	})
	if allocs != 0 {
		t.Fatalf("JSONLSink.Emit allocates %.1f objects/op, want 0", allocs)
	}
}

// failingFlusher is a sink whose Flush always fails.
type failingFlusher struct {
	CountingSink
	err error
}

func (f *failingFlusher) Flush() error { return f.err }

func TestTeeSinkFlushesAllMembersDespiteError(t *testing.T) {
	// A failing member must not short-circuit the tee: later members
	// still flush, and every error is reported.
	errA := errors.New("sink A broke")
	errC := errors.New("sink C broke")
	a := &failingFlusher{err: errA}
	var buf bytes.Buffer
	b := NewJSONLSink(&buf)
	c := &failingFlusher{err: errC}
	tee := TeeSink{a, b, c}
	NewRecorder(tee).Rotation(1, 0)

	err := tee.Flush()
	if err == nil {
		t.Fatal("tee flush swallowed member errors")
	}
	if !errors.Is(err, errA) || !errors.Is(err, errC) {
		t.Fatalf("joined error %v missing a member error", err)
	}
	if buf.Len() == 0 {
		t.Fatal("healthy member was not flushed after an earlier member failed")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config invalid: %v", err)
	}
	if err := (Config{ProbeInterval: -sim.Second}).Validate(); err == nil {
		t.Fatal("negative probe interval accepted")
	}
}
