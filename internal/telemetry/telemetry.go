// Package telemetry is the simulator's observability layer: a structured
// event journal, exact log-bucketed latency histograms, and periodic
// time-series probes.
//
// The journal is built around three pieces:
//
//   - Event, a typed record of one thing that happened inside a run
//     (a request arriving or completing, a logger rotation, a destage
//     starting or draining, a disk spinning up or down, a log-extent
//     invalidation, a cache hit or miss, a periodic probe sample);
//   - Sink, the pluggable consumer interface (JSONL for offline analysis
//     with cmd/rolostat, counting for tests and cheap live accounting);
//   - Recorder, the nil-safe emission front end that controllers hold.
//
// Overhead guarantees: a nil *Recorder (no sink configured) is the
// disabled state — every emission helper returns before constructing an
// Event, Events are plain value structs, and no goroutines or locks are
// involved, so a run with telemetry disabled performs no journal work and
// allocates nothing. Because sinks observe the simulation but never
// schedule events or consume randomness, enabling a sink cannot perturb a
// run's trajectory: the same configuration and trace always produce the
// same Report and, line for line, the same journal.
package telemetry

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"

	"github.com/rolo-storage/rolo/internal/sim"
)

// Kind enumerates the event types in the journal taxonomy.
type Kind int

// The event taxonomy. Request events cover the foreground I/O path;
// Rotation/DestageStart/DestageDone/LogInvalidate cover the logging
// life cycle; SpinUp/SpinDown cover the power state machine; CacheHit and
// CacheMiss cover both the controller RAM cache and RoLo-E's on-duty read
// cache; Probe carries a periodic time-series sample.
const (
	KindRequestStart Kind = iota + 1
	KindRequestDone
	KindRotation
	KindDestageStart
	KindDestageDone
	KindSpinUp
	KindSpinDown
	KindLogInvalidate
	KindCacheHit
	KindCacheMiss
	KindProbe

	numKinds = int(KindProbe) + 1
)

// Kinds lists every event kind in declaration order.
var Kinds = []Kind{
	KindRequestStart, KindRequestDone, KindRotation, KindDestageStart,
	KindDestageDone, KindSpinUp, KindSpinDown, KindLogInvalidate,
	KindCacheHit, KindCacheMiss, KindProbe,
}

// String returns the journal name of the kind.
func (k Kind) String() string {
	switch k {
	case KindRequestStart:
		return "RequestStart"
	case KindRequestDone:
		return "RequestDone"
	case KindRotation:
		return "Rotation"
	case KindDestageStart:
		return "DestageStart"
	case KindDestageDone:
		return "DestageDone"
	case KindSpinUp:
		return "SpinUp"
	case KindSpinDown:
		return "SpinDown"
	case KindLogInvalidate:
		return "LogInvalidate"
	case KindCacheHit:
		return "CacheHit"
	case KindCacheMiss:
		return "CacheMiss"
	case KindProbe:
		return "Probe"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind resolves a kind name as written by String.
func ParseKind(name string) (Kind, error) {
	for _, k := range Kinds {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("telemetry: unknown event kind %q", name)
}

// MarshalJSON renders the kind as its name.
func (k Kind) MarshalJSON() ([]byte, error) {
	return strconv.AppendQuote(nil, k.String()), nil
}

// UnmarshalJSON parses a kind name.
func (k *Kind) UnmarshalJSON(b []byte) error {
	s, err := strconv.Unquote(string(b))
	if err != nil {
		return fmt.Errorf("telemetry: kind: %w", err)
	}
	v, err := ParseKind(s)
	if err != nil {
		return err
	}
	*k = v
	return nil
}

// Event is one journal record. It is a flat union: which optional fields
// are meaningful depends on Kind (see the field comments). Disk and Pair
// are -1 when not applicable.
type Event struct {
	// At is the simulation time of the event in microseconds.
	At sim.Time `json:"at"`
	// Kind is the event type.
	Kind Kind `json:"kind"`
	// Disk is the disk ID for SpinUp/SpinDown events, -1 otherwise.
	Disk int `json:"disk,omitempty"`
	// Pair is the pair/logger index for Rotation (new on-duty logger),
	// DestageStart/Done and LogInvalidate (destaged pair, or -1 for a
	// centralized, array-wide destage), and CacheHit/Miss on the RoLo-E
	// path (first on-duty pair; -1 for the controller RAM cache).
	Pair int `json:"pair,omitempty"`
	// Write marks request and cache events on the write path.
	Write bool `json:"write,omitempty"`
	// Bytes is the request size (request/cache events) or the number of
	// log bytes reclaimed (LogInvalidate).
	Bytes int64 `json:"bytes,omitempty"`
	// LatencyUs is the response time in microseconds (RequestDone only).
	LatencyUs int64 `json:"lat_us,omitempty"`
	// States is the per-disk power-state string for Probe events: one
	// character per disk ID (A=active, I=idle, S=standby, U=spinning up,
	// D=spinning down, F=failed).
	States string `json:"states,omitempty"`
	// LogUsed/LogCap are the occupied and total logging-space bytes at a
	// Probe sample, summed over the scheme's active logging allocators.
	LogUsed int64 `json:"log_used,omitempty"`
	LogCap  int64 `json:"log_cap,omitempty"`
	// Backlog is the destage backlog in bytes at a Probe sample.
	Backlog int64 `json:"backlog,omitempty"`
}

// Sink consumes journal events. Emit is called in simulation-time order
// (timestamps are non-decreasing) from the single simulation goroutine;
// sinks need no locking. A sink must not schedule simulation events.
type Sink interface {
	Emit(ev Event)
}

// Flusher is implemented by sinks with buffered output; rolo.Run flushes
// such sinks when a run completes.
type Flusher interface {
	Flush() error
}

// Recorder is the nil-safe emission front end. Controllers hold a
// *Recorder and call the typed helpers below; a nil receiver (telemetry
// disabled) returns immediately from every helper without constructing an
// Event.
type Recorder struct {
	sink Sink
}

// NewRecorder wraps a sink. A nil sink yields a nil recorder, the
// disabled state.
func NewRecorder(s Sink) *Recorder {
	if s == nil {
		return nil
	}
	return &Recorder{sink: s}
}

// Enabled reports whether events are being recorded.
func (r *Recorder) Enabled() bool { return r != nil && r.sink != nil }

// Emit forwards an event to the sink, if any.
func (r *Recorder) Emit(ev Event) {
	if r == nil || r.sink == nil {
		return
	}
	r.sink.Emit(ev)
}

// RequestStart records a logical request arriving at a controller.
func (r *Recorder) RequestStart(now sim.Time, write bool, bytes int64) {
	if r == nil || r.sink == nil {
		return
	}
	r.sink.Emit(Event{At: now, Kind: KindRequestStart, Disk: -1, Pair: -1, Write: write, Bytes: bytes})
}

// RequestDone records a logical request completing with the given latency.
func (r *Recorder) RequestDone(now sim.Time, write bool, latency sim.Time) {
	if r == nil || r.sink == nil {
		return
	}
	r.sink.Emit(Event{At: now, Kind: KindRequestDone, Disk: -1, Pair: -1, Write: write, LatencyUs: int64(latency)})
}

// Rotation records a logger rotation; pair is the newly on-duty logger.
func (r *Recorder) Rotation(now sim.Time, pair int) {
	if r == nil || r.sink == nil {
		return
	}
	r.sink.Emit(Event{At: now, Kind: KindRotation, Disk: -1, Pair: pair})
}

// DestageStart records a destage beginning for the given pair (-1 for a
// centralized, array-wide destage).
func (r *Recorder) DestageStart(now sim.Time, pair int) {
	if r == nil || r.sink == nil {
		return
	}
	r.sink.Emit(Event{At: now, Kind: KindDestageStart, Disk: -1, Pair: pair})
}

// DestageDone records a destage draining for the given pair (-1 for a
// centralized destage).
func (r *Recorder) DestageDone(now sim.Time, pair int) {
	if r == nil || r.sink == nil {
		return
	}
	r.sink.Emit(Event{At: now, Kind: KindDestageDone, Disk: -1, Pair: pair})
}

// SpinUp records disk diskID beginning its spin-up transition.
func (r *Recorder) SpinUp(now sim.Time, diskID int) {
	if r == nil || r.sink == nil {
		return
	}
	r.sink.Emit(Event{At: now, Kind: KindSpinUp, Disk: diskID, Pair: -1})
}

// SpinDown records disk diskID beginning its spin-down transition.
func (r *Recorder) SpinDown(now sim.Time, diskID int) {
	if r == nil || r.sink == nil {
		return
	}
	r.sink.Emit(Event{At: now, Kind: KindSpinDown, Disk: diskID, Pair: -1})
}

// LogInvalidate records bytes of log space reclaimed on behalf of pair
// (-1 when the reclamation is not pair-scoped, e.g. GRAID generations).
func (r *Recorder) LogInvalidate(now sim.Time, pair int, bytes int64) {
	if r == nil || r.sink == nil {
		return
	}
	r.sink.Emit(Event{At: now, Kind: KindLogInvalidate, Disk: -1, Pair: pair, Bytes: bytes})
}

// CacheHit records a read served from a cache (pair -1 for the controller
// RAM cache, or the first on-duty pair for RoLo-E's log-space cache).
func (r *Recorder) CacheHit(now sim.Time, pair int, bytes int64) {
	if r == nil || r.sink == nil {
		return
	}
	r.sink.Emit(Event{At: now, Kind: KindCacheHit, Disk: -1, Pair: pair, Bytes: bytes})
}

// CacheMiss records a read that missed a cache.
func (r *Recorder) CacheMiss(now sim.Time, pair int, bytes int64) {
	if r == nil || r.sink == nil {
		return
	}
	r.sink.Emit(Event{At: now, Kind: KindCacheMiss, Disk: -1, Pair: pair, Bytes: bytes})
}

// Instrumented is implemented by controllers that accept a telemetry
// recorder. rolo.Run feeds the configured recorder to every controller
// that supports it.
type Instrumented interface {
	SetTelemetry(*Recorder)
}

// Config selects the telemetry behavior of one simulation run. The zero
// value disables telemetry entirely.
type Config struct {
	// Sink receives the structured event journal; nil disables it.
	Sink Sink
	// ProbeInterval enables periodic time-series probes at this spacing
	// (disk power states, log occupancy, destage backlog); 0 disables
	// them. Probe events go to Sink; occupancy/backlog peaks are reported
	// even without a sink.
	ProbeInterval sim.Time
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.ProbeInterval < 0 {
		return fmt.Errorf("telemetry: negative probe interval %v", c.ProbeInterval)
	}
	return nil
}

// CountingSink counts events per kind. The zero value is ready to use.
type CountingSink struct {
	counts [numKinds]int64
	total  int64
}

// Emit implements Sink.
func (s *CountingSink) Emit(ev Event) {
	if k := int(ev.Kind); k >= 0 && k < numKinds {
		s.counts[k]++
	}
	s.total++
}

// Count returns the number of events of the given kind.
func (s *CountingSink) Count(k Kind) int64 {
	if int(k) < 0 || int(k) >= numKinds {
		return 0
	}
	return s.counts[k]
}

// Total returns the total number of events observed.
func (s *CountingSink) Total() int64 { return s.total }

// TeeSink fans events out to several sinks in order.
type TeeSink []Sink

// Emit implements Sink.
func (t TeeSink) Emit(ev Event) {
	for _, s := range t {
		s.Emit(ev)
	}
}

// Flush implements Flusher. Every buffered member is flushed even when an
// earlier one fails — stopping at the first error would silently strand
// buffered events in the later sinks — and the failures are joined.
func (t TeeSink) Flush() error {
	var errs []error
	for _, s := range t {
		if f, ok := s.(Flusher); ok {
			if err := f.Flush(); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errors.Join(errs...)
}

// AppendEvent appends the canonical JSONL encoding of ev — one JSON
// object terminated by '\n' — to dst and returns the extended slice.
// Field order is fixed and zero/absent optional fields are omitted, so
// the byte stream is a deterministic function of the event sequence — the
// determinism regression tests and the rotated-journal byte-equivalence
// gate compare journals byte for byte. JSONLSink and the async journal
// writer share this single encoder; it never allocates beyond growing
// dst.
func AppendEvent(dst []byte, ev Event) []byte {
	dst = append(dst, `{"at":`...)
	dst = strconv.AppendInt(dst, int64(ev.At), 10)
	dst = append(dst, `,"kind":"`...)
	dst = append(dst, ev.Kind.String()...)
	dst = append(dst, '"')
	if ev.Disk >= 0 {
		dst = append(dst, `,"disk":`...)
		dst = strconv.AppendInt(dst, int64(ev.Disk), 10)
	}
	if ev.Pair >= 0 {
		dst = append(dst, `,"pair":`...)
		dst = strconv.AppendInt(dst, int64(ev.Pair), 10)
	}
	if ev.Write {
		dst = append(dst, `,"write":true`...)
	}
	if ev.Bytes != 0 {
		dst = append(dst, `,"bytes":`...)
		dst = strconv.AppendInt(dst, ev.Bytes, 10)
	}
	if ev.LatencyUs != 0 {
		dst = append(dst, `,"lat_us":`...)
		dst = strconv.AppendInt(dst, ev.LatencyUs, 10)
	}
	if ev.States != "" {
		dst = append(dst, `,"states":`...)
		dst = strconv.AppendQuote(dst, ev.States)
	}
	if ev.LogCap != 0 {
		dst = append(dst, `,"log_used":`...)
		dst = strconv.AppendInt(dst, ev.LogUsed, 10)
		dst = append(dst, `,"log_cap":`...)
		dst = strconv.AppendInt(dst, ev.LogCap, 10)
	}
	if ev.Backlog != 0 {
		dst = append(dst, `,"backlog":`...)
		dst = strconv.AppendInt(dst, ev.Backlog, 10)
	}
	dst = append(dst, '}', '\n')
	return dst
}

// UnmarshalEvent decodes one JSONL journal line as written by
// AppendEvent. Absent disk/pair fields decode as -1, matching the
// writer's omission rule.
func UnmarshalEvent(line []byte) (Event, error) {
	ev := Event{Disk: -1, Pair: -1}
	if err := json.Unmarshal(line, &ev); err != nil {
		return Event{}, err
	}
	return ev, nil
}

// JSONLSink writes one JSON object per event to an io.Writer, encoding
// with AppendEvent into a sink-owned scratch buffer so the steady-state
// emission path performs no per-event allocation (pinned by
// TestJSONLSinkZeroAlloc and BenchmarkCoreTelemetryEncode).
type JSONLSink struct {
	w       *bufio.Writer
	scratch []byte
}

// NewJSONLSink buffers writes to w. Call Flush (or rely on rolo.Run's
// end-of-run flush) before reading the output.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriterSize(w, 64<<10), scratch: make([]byte, 0, 256)}
}

// Emit implements Sink.
func (s *JSONLSink) Emit(ev Event) {
	s.scratch = AppendEvent(s.scratch[:0], ev)
	s.w.Write(s.scratch)
}

// Flush implements Flusher.
func (s *JSONLSink) Flush() error { return s.w.Flush() }

// ParseJournal reads a JSONL journal back into an in-memory event slice.
// For journals too large to hold whole — or rotated, compressed journal
// directories — use the streaming iterator in telemetry/journal instead.
func ParseJournal(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		ev, err := UnmarshalEvent(raw)
		if err != nil {
			return nil, fmt.Errorf("telemetry: journal line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: journal line %d: %w", line, err)
	}
	return out, nil
}
