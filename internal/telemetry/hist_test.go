package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestHistogramBucketLayout(t *testing.T) {
	// Exact unit buckets below 2^(histSubBits+1).
	for v := int64(0); v < 2<<histSubBits; v++ {
		i := bucketOf(v)
		if got := bucketValue(i); got != v {
			t.Fatalf("small value %d maps to bucket value %d", v, got)
		}
	}
	// Bucket indices are monotonic and representative values stay within
	// the guaranteed relative error at every scale.
	prev := -1
	for _, v := range []int64{1, 100, 127, 128, 129, 1000, 4096, 1 << 20, 1 << 40, 1 << 62} {
		i := bucketOf(v)
		if i < prev {
			t.Fatalf("bucket index not monotonic at %d", v)
		}
		prev = i
		rep := bucketValue(i)
		relErr := math.Abs(float64(rep-v)) / float64(v)
		if relErr > 1.0/float64(int64(1)<<(histSubBits+1)) {
			t.Fatalf("value %d: representative %d, relative error %.4f", v, rep, relErr)
		}
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Total() != 0 || h.Quantile(50) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not empty")
	}
	h.Observe(5)
	h.Observe(10)
	h.Observe(-3) // clamps to 0
	if h.Total() != 3 || h.Max() != 10 || h.Sum() != 15 {
		t.Fatalf("total=%d max=%d sum=%g", h.Total(), h.Max(), h.Sum())
	}
	if h.Quantile(0) != 0 || h.Quantile(101) != 0 {
		t.Fatal("out-of-range quantile not zero")
	}
	if got := h.Quantile(100); got != 10 {
		t.Fatalf("Q100 = %d, want 10", got)
	}
}

// TestHistogramQuantileExactness compares histogram quantiles against the
// exact sorted-sample percentile (what the old ≤4096-sample reservoir
// returned) across several distributions: the histogram must agree to
// within its bucket resolution.
func TestHistogramQuantileExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	distributions := map[string]func() int64{
		"uniform":   func() int64 { return rng.Int63n(1_000_000) },
		"exp":       func() int64 { return int64(rng.ExpFloat64() * 20_000) },
		"bimodal":   func() int64 { return []int64{1000, 250_000}[rng.Intn(2)] + rng.Int63n(100) },
		"tiny":      func() int64 { return rng.Int63n(100) },
		"singleton": func() int64 { return 777 },
	}
	for name, draw := range distributions {
		var h Histogram
		samples := make([]int64, 0, 4096)
		for i := 0; i < 4096; i++ {
			v := draw()
			h.Observe(v)
			samples = append(samples, v)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		for _, p := range []float64{1, 25, 50, 90, 95, 99, 99.9, 100} {
			idx := int(math.Ceil(p/100*float64(len(samples)))) - 1
			exact := samples[idx]
			got := h.Quantile(p)
			tol := math.Max(1, float64(exact)/float64(int64(1)<<(histSubBits+1)))
			if math.Abs(float64(got-exact)) > tol {
				t.Errorf("%s: Q%g = %d, exact %d (tolerance %.0f)", name, p, got, exact, tol)
			}
		}
	}
}

func TestHistogramBucketsIteration(t *testing.T) {
	var h Histogram
	h.Observe(3)
	h.Observe(3)
	h.Observe(500)
	var total int64
	prev := int64(-1)
	h.Buckets(func(value, count int64) {
		if value <= prev {
			t.Fatalf("bucket values not increasing: %d after %d", value, prev)
		}
		prev = value
		total += count
	})
	if total != 3 {
		t.Fatalf("bucket counts sum to %d, want 3", total)
	}
}

// TestHistogramMergeProperty is the fleet-merge correctness property:
// merging per-shard histograms must equal the histogram of the
// concatenated samples — exactly, not approximately. Counts are integer
// adds and the sums are float64 additions of integer values far below
// 2^53, so equality is exact in every field and at every quantile.
func TestHistogramMergeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var merged, direct Histogram
	for shard := 0; shard < 17; shard++ {
		var h Histogram
		n := rng.Intn(3000) // including empty shards
		for i := 0; i < n; i++ {
			v := int64(rng.ExpFloat64() * float64(1+rng.Intn(200_000)))
			h.Observe(v)
			direct.Observe(v)
		}
		merged.Merge(&h)
	}
	if merged.Total() != direct.Total() || merged.Sum() != direct.Sum() || merged.Max() != direct.Max() {
		t.Fatalf("merged total/sum/max = %d/%g/%d, direct = %d/%g/%d",
			merged.Total(), merged.Sum(), merged.Max(),
			direct.Total(), direct.Sum(), direct.Max())
	}
	for _, p := range []float64{1, 25, 50, 90, 95, 99, 99.9, 100} {
		if m, d := merged.Quantile(p), direct.Quantile(p); m != d {
			t.Fatalf("Q%g: merged %d, direct %d", p, m, d)
		}
	}
	type bucket struct{ v, c int64 }
	var mb, db []bucket
	merged.Buckets(func(v, c int64) { mb = append(mb, bucket{v, c}) })
	direct.Buckets(func(v, c int64) { db = append(db, bucket{v, c}) })
	if len(mb) != len(db) {
		t.Fatalf("bucket spans differ: %d vs %d", len(mb), len(db))
	}
	for i := range mb {
		if mb[i] != db[i] {
			t.Fatalf("bucket %d differs: %+v vs %+v", i, mb[i], db[i])
		}
	}
}

// TestHistogramMergeSteadyStateAlloc pins the fold hot path: once the
// destination spans the widest source, further merges allocate nothing.
func TestHistogramMergeSteadyStateAlloc(t *testing.T) {
	var src Histogram
	for v := int64(1); v < 1_000_000; v *= 3 {
		src.Observe(v)
	}
	var dst Histogram
	dst.Merge(&src) // grow once
	if n := testing.AllocsPerRun(100, func() { dst.Merge(&src) }); n > 0 {
		t.Fatalf("steady-state Merge allocates %v, want 0", n)
	}
}

// TestHistogramReset pins Reset: the histogram empties but keeps its
// bucket capacity, so a reused accumulator stays allocation-free.
func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Observe(12345)
	h.Reset()
	if h.Total() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Quantile(50) != 0 {
		t.Fatal("Reset left state behind")
	}
	if n := testing.AllocsPerRun(10, func() { h.Observe(12345) }); n > 0 {
		t.Fatalf("Observe after Reset allocates %v, want 0", n)
	}
}
