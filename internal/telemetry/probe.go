package telemetry

import (
	"github.com/rolo-storage/rolo/internal/disk"
	"github.com/rolo-storage/rolo/internal/sim"
)

// GaugeSource exposes a controller's instantaneous logging gauges for
// periodic probes. Controllers without a logging space (RAID10) simply do
// not implement it.
type GaugeSource interface {
	// TelemetryGauges returns the occupied and total logging-space bytes
	// (summed over the scheme's active allocators) and the destage
	// backlog in bytes.
	TelemetryGauges() (logUsed, logCap, backlog int64)
}

// Prober samples per-disk power state, log-space occupancy and destage
// backlog at a fixed interval, emitting one Probe event per sample and
// tracking run-wide peaks. Samples stop at the trace horizon so the
// engine's event queue can drain.
type Prober struct {
	eng      *sim.Engine
	rec      *Recorder
	disks    []*disk.Disk
	src      GaugeSource
	interval sim.Time
	horizon  sim.Time

	samples       int
	peakOccupancy float64
	peakBacklog   int64
	peakSpinning  int
}

// StartProber schedules probes every interval from the current time
// through horizon (inclusive). src may be nil (no gauges); rec may be nil
// (peaks are still tracked, no events are emitted).
func StartProber(eng *sim.Engine, rec *Recorder, disks []*disk.Disk, src GaugeSource,
	interval, horizon sim.Time) *Prober {
	p := &Prober{
		eng: eng, rec: rec, disks: disks, src: src,
		interval: interval, horizon: horizon,
	}
	eng.After(0, p.tick)
	return p
}

// stateChar is the one-character encoding used in Probe state strings.
func stateChar(d *disk.Disk) byte {
	if d.Failed() {
		return 'F'
	}
	switch d.State() {
	case disk.Active:
		return 'A'
	case disk.Idle:
		return 'I'
	case disk.Standby:
		return 'S'
	case disk.SpinningUp:
		return 'U'
	case disk.SpinningDown:
		return 'D'
	default:
		return '?'
	}
}

func (p *Prober) tick(now sim.Time) {
	p.samples++
	spinning := 0
	var states []byte
	if p.rec.Enabled() {
		states = make([]byte, len(p.disks))
	}
	for i, d := range p.disks {
		switch d.State() {
		case disk.Active, disk.Idle, disk.SpinningUp:
			if !d.Failed() {
				spinning++
			}
		}
		if states != nil {
			states[i] = stateChar(d)
		}
	}
	if spinning > p.peakSpinning {
		p.peakSpinning = spinning
	}
	var used, capacity, backlog int64
	if p.src != nil {
		used, capacity, backlog = p.src.TelemetryGauges()
		if capacity > 0 {
			if occ := float64(used) / float64(capacity); occ > p.peakOccupancy {
				p.peakOccupancy = occ
			}
		}
		if backlog > p.peakBacklog {
			p.peakBacklog = backlog
		}
	}
	if p.rec.Enabled() {
		p.rec.Emit(Event{
			At: now, Kind: KindProbe, Disk: -1, Pair: -1,
			States: string(states), LogUsed: used, LogCap: capacity, Backlog: backlog,
		})
	}
	if next := now + p.interval; next <= p.horizon {
		p.eng.After(p.interval, p.tick)
	}
}

// Samples returns the number of probe samples taken.
func (p *Prober) Samples() int { return p.samples }

// PeakOccupancy returns the highest sampled log-space occupancy fraction.
func (p *Prober) PeakOccupancy() float64 { return p.peakOccupancy }

// PeakBacklog returns the highest sampled destage backlog in bytes.
func (p *Prober) PeakBacklog() int64 { return p.peakBacklog }

// PeakSpinning returns the highest sampled count of spinning disks
// (Active, Idle or SpinningUp).
func (p *Prober) PeakSpinning() int { return p.peakSpinning }
