package telemetry

import "math/bits"

// Histogram is an exact log-bucketed histogram of non-negative int64
// values (latencies in microseconds throughout this repository). Every
// observation is counted — unlike a sampling reservoir there is no
// estimation error in the counts — and bucket boundaries follow an
// HDR-style layout: values below 2^(histSubBits+1) get exact unit
// buckets, and each further power-of-two octave is split into
// 2^histSubBits sub-buckets, bounding the relative quantile error by
// 2^-(histSubBits+1) (≈0.8% at histSubBits=6) at any scale.
//
// The zero value is an empty histogram ready to use.
type Histogram struct {
	counts []int64
	total  int64
	sum    float64
	max    int64
}

// histSubBits sets the resolution: 64 sub-buckets per octave.
const histSubBits = 6

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < 2<<histSubBits {
		return int(u)
	}
	shift := bits.Len64(u) - (histSubBits + 1)
	return (shift << histSubBits) + int(u>>uint(shift))
}

// bucketValue returns the representative value (midpoint) of bucket i.
func bucketValue(i int) int64 {
	if i < 2<<histSubBits {
		return int64(i)
	}
	shift := (i >> histSubBits) - 1
	rem := int64(i - shift<<histSubBits)
	low := rem << uint(shift)
	return low + int64(1)<<uint(shift)/2
}

// Observe counts one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	i := bucketOf(v)
	if i >= len(h.counts) {
		grown := make([]int64, i+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[i]++
	h.total++
	h.sum += float64(v)
	if v > h.max {
		h.max = v
	}
}

// Total returns the number of observations.
func (h *Histogram) Total() int64 { return h.total }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// Max returns the largest observed value (exact, not bucketed).
func (h *Histogram) Max() int64 { return h.max }

// Quantile returns the value at the p-th percentile (0 < p <= 100): the
// representative value of the bucket holding the sample of rank
// ceil(p/100·total), matching the rank convention of a sorted-sample
// percentile. It returns 0 for an empty histogram or out-of-range p.
func (h *Histogram) Quantile(p float64) int64 {
	if h.total == 0 || p <= 0 || p > 100 {
		return 0
	}
	rank := int64(p / 100 * float64(h.total))
	if float64(rank)*100 < p*float64(h.total) {
		rank++ // ceil without float round-off at exact multiples
	}
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			v := bucketValue(i)
			if v > h.max {
				v = h.max // top bucket midpoint may exceed the true max
			}
			return v
		}
	}
	return h.max
}

// Merge adds src's counts into h bucket-by-bucket. Because both
// histograms share the same exact log-bucket layout, the result is
// identical to having observed every one of src's samples into h
// directly: counts, totals and maxima are exact, and sums are exact as
// long as they stay within float64's integer range (they do for
// microsecond latencies at any realistic fleet size). src is only read;
// merging a histogram into itself is not supported. Merge grows h's
// bucket array at most to src's length, so folding many histograms into
// one accumulator allocates only until the accumulator has seen the
// largest bucket index — the steady-state fold is allocation-free.
func (h *Histogram) Merge(src *Histogram) {
	if src.total == 0 {
		return
	}
	if len(src.counts) > len(h.counts) {
		grown := make([]int64, len(src.counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for i, c := range src.counts {
		if c != 0 {
			h.counts[i] += c
		}
	}
	h.total += src.total
	h.sum += src.sum
	if src.max > h.max {
		h.max = src.max
	}
}

// Reset empties the histogram, keeping the bucket array's capacity so a
// reused accumulator does not re-grow.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
	h.sum = 0
	h.max = 0
}

// Buckets invokes fn for every non-empty bucket in increasing value
// order with the bucket's representative value and count.
func (h *Histogram) Buckets(fn func(value, count int64)) {
	for i, c := range h.counts {
		if c > 0 {
			fn(bucketValue(i), c)
		}
	}
}
