package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// This file cross-checks the slab engine against a reference engine built
// the way the original implementation was: container/heap over *event
// pointers with a byID map. The property tests drive both with identical
// operation scripts and require event-for-event agreement.

type refEvent struct {
	at   Time
	seq  uint64
	fn   Handler
	dead bool
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() any     { old := *h; n := len(old); ev := old[n-1]; *h = old[:n-1]; return ev }

// refEngine reproduces the original engine semantics: FIFO among same-time
// events, lazy cancellation, clock advance on fire.
type refEngine struct {
	now   Time
	seq   uint64
	queue refHeap
}

func (e *refEngine) schedule(at Time, fn Handler) *refEvent {
	if at < e.now {
		panic("ref: schedule in past")
	}
	e.seq++
	ev := &refEvent{at: at, seq: e.seq, fn: fn}
	heap.Push(&e.queue, ev)
	return ev
}

func (e *refEngine) after(d Time, fn Handler) *refEvent {
	if d < 0 {
		d = 0
	}
	return e.schedule(e.now+d, fn)
}

func (e *refEngine) cancel(ev *refEvent) bool {
	if ev.dead {
		return false
	}
	ev.dead = true
	return true
}

func (e *refEngine) step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*refEvent)
		if ev.dead {
			continue
		}
		ev.dead = true
		e.now = ev.at
		ev.fn(e.now)
		return true
	}
	return false
}

// firing records one executed event for trajectory comparison.
type firing struct {
	label int
	at    Time
}

// TestSlabEngineMatchesHeapReference drives the slab engine and the
// container/heap reference with the same randomized script — schedules,
// cancellations (including of already-fired and already-cancelled events),
// partial stepping, and handlers that schedule follow-up events — and
// asserts both fire the same labels at the same times in the same order.
func TestSlabEngineMatchesHeapReference(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))

		eng := New()
		ref := &refEngine{}
		var engLog, refLog []firing

		nextLabel := 0
		ids := make(map[int]EventID)
		refs := make(map[int]*refEvent)
		known := make([]int, 0, 64)

		// schedule registers one labeled event on both engines; a third of
		// the handlers chain a follow-up event when they fire.
		var schedule func(delay Time)
		schedule = func(delay Time) {
			label := nextLabel
			nextLabel++
			chain := label%3 == 0
			eh := func(now Time) {
				engLog = append(engLog, firing{label, now})
				if chain {
					eng.After(Time(label%7)*5, func(now Time) {
						engLog = append(engLog, firing{-label, now})
					})
				}
			}
			rh := func(now Time) {
				refLog = append(refLog, firing{label, now})
				if chain {
					ref.after(Time(label%7)*5, func(now Time) {
						refLog = append(refLog, firing{-label, now})
					})
				}
			}
			ids[label] = eng.After(delay, eh)
			refs[label] = ref.after(delay, rh)
			known = append(known, label)
		}

		ops := 300 + rng.Intn(300)
		for op := 0; op < ops; op++ {
			switch k := rng.Intn(10); {
			case k < 5:
				schedule(Time(rng.Intn(1000)))
			case k < 7 && len(known) > 0:
				label := known[rng.Intn(len(known))]
				got := eng.Cancel(ids[label])
				want := ref.cancel(refs[label])
				if got != want {
					t.Fatalf("seed %d: Cancel(label %d) = %v, reference %v", seed, label, got, want)
				}
			default:
				got := eng.Step()
				want := ref.step()
				if got != want {
					t.Fatalf("seed %d: Step() = %v, reference %v", seed, got, want)
				}
				if eng.Now() != ref.now {
					t.Fatalf("seed %d: clock %v, reference %v", seed, eng.Now(), ref.now)
				}
			}
		}
		// Drain both and compare the full trajectories.
		for eng.Step() {
		}
		for ref.step() {
		}
		if len(engLog) != len(refLog) {
			t.Fatalf("seed %d: fired %d events, reference %d", seed, len(engLog), len(refLog))
		}
		for i := range engLog {
			if engLog[i] != refLog[i] {
				t.Fatalf("seed %d: firing %d = %+v, reference %+v", seed, i, engLog[i], refLog[i])
			}
		}
	}
}

// TestPendingAcrossInterleavings checks the maintained live counter against
// a naive recount through random Schedule/Cancel/Step interleavings.
func TestPendingAcrossInterleavings(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed + 1000))
		eng := New()
		livePending := 0 // naive shadow count
		var ids []EventID
		for op := 0; op < 500; op++ {
			switch k := rng.Intn(10); {
			case k < 5:
				ids = append(ids, eng.After(Time(rng.Intn(200)), func(Time) {}))
				livePending++
			case k < 8 && len(ids) > 0:
				if eng.Cancel(ids[rng.Intn(len(ids))]) {
					livePending--
				}
			default:
				if eng.Step() {
					livePending--
				}
			}
			if got := eng.Pending(); got != livePending {
				t.Fatalf("seed %d op %d: Pending() = %d, want %d", seed, op, got, livePending)
			}
		}
	}
}

// TestCancelStaleIDAfterSlotReuse verifies that an EventID kept across its
// slot's reuse (fire, then schedule again) never cancels the new tenant.
func TestCancelStaleIDAfterSlotReuse(t *testing.T) {
	eng := New()
	stale := eng.After(1, func(Time) {})
	eng.Run() // fires; slot is freed
	fired := false
	fresh := eng.After(1, func(Time) { fired = true }) // reuses the slot
	if stale.slot() != fresh.slot() {
		t.Fatalf("expected slot reuse, got %d then %d", stale.slot(), fresh.slot())
	}
	if eng.Cancel(stale) {
		t.Fatal("stale EventID cancelled the slot's new tenant")
	}
	eng.Run()
	if !fired {
		t.Fatal("fresh event did not fire")
	}
}

// TestSteadyStateZeroAllocs pins the 0 allocs/op contract for the engine
// hot paths: scheduling into a warmed slab, firing, and cancelling.
func TestSteadyStateZeroAllocs(t *testing.T) {
	eng := New()
	fn := Handler(func(Time) {})
	// Warm the slab and queue beyond the working set used below.
	for i := 0; i < 64; i++ {
		eng.After(Time(i), fn)
	}
	eng.Run()

	if n := testing.AllocsPerRun(200, func() {
		eng.After(10, fn)
		eng.Step()
	}); n != 0 {
		t.Errorf("schedule+fire: %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		id := eng.After(10, fn)
		eng.Cancel(id)
	}); n != 0 {
		t.Errorf("schedule+cancel: %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		for i := 0; i < 32; i++ {
			eng.After(Time(i%5), fn)
		}
		eng.Run()
	}); n != 0 {
		t.Errorf("burst schedule+drain: %v allocs/op, want 0", n)
	}
}

// TestCancelHeavyQueueBounded pins the compaction guarantee: a workload
// that schedules and cancels without ever firing keeps the queue bounded
// by roughly twice the live population, and the survivors still fire in
// exact (time, seq) order afterwards.
func TestCancelHeavyQueueBounded(t *testing.T) {
	eng := New()
	var kept []EventID
	var order []int
	label := 0
	for round := 0; round < 200; round++ {
		for i := 0; i < 50; i++ {
			id := eng.After(Time(1000+round*50+i), func(Time) {})
			if i == 0 {
				l := label
				kept = append(kept, eng.After(Time(500+round), func(Time) { order = append(order, l) }))
				label++
			}
			if !eng.Cancel(id) {
				t.Fatal("cancel of pending event failed")
			}
		}
		if max := 2*eng.Pending() + compactMin; len(eng.queue) > max {
			t.Fatalf("round %d: queue holds %d entries for %d live events (cap %d)",
				round, len(eng.queue), eng.Pending(), max)
		}
	}
	eng.Run()
	if len(order) != len(kept) {
		t.Fatalf("fired %d of %d surviving events", len(order), len(kept))
	}
	for i, l := range order {
		if l != i {
			t.Fatalf("firing %d has label %d; compaction broke heap order", i, l)
		}
	}
}
