// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock in microseconds and a priority queue
// of scheduled events. Events scheduled for the same instant fire in the
// order they were scheduled, which makes every simulation in this repository
// fully deterministic: the same configuration and seed always produce the
// same trajectory.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Time is a simulation timestamp in microseconds since the start of the run.
type Time int64

// Common time unit conversions.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
	Hour        Time = 60 * Minute
)

// MaxTime is the largest representable simulation time.
const MaxTime Time = math.MaxInt64

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds converts t to floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String renders t as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// FromSeconds converts floating-point seconds to a Time, rounding to the
// nearest microsecond.
func FromSeconds(s float64) Time { return Time(math.Round(s * float64(Second))) }

// FromMilliseconds converts floating-point milliseconds to a Time.
func FromMilliseconds(ms float64) Time { return Time(math.Round(ms * float64(Millisecond))) }

// ErrTimeTravel is returned by Schedule when an event is scheduled before the
// current simulation time.
var ErrTimeTravel = errors.New("sim: event scheduled in the past")

// Handler is a callback invoked when an event fires. The engine passes the
// current simulation time (the event's due time).
type Handler func(now Time)

// EventID identifies a scheduled event so it can be cancelled.
type EventID uint64

type event struct {
	at    Time
	seq   uint64 // tie-break: FIFO among same-time events
	id    EventID
	fn    Handler
	index int // heap index; -1 when popped
	dead  bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	now     Time
	seq     uint64
	nextID  EventID
	queue   eventHeap
	byID    map[EventID]*event
	stopped bool
	fired   uint64

	// onEvent, if set, runs after each executed event with the clock at
	// that event's due time (see SetEventHook).
	onEvent func(now Time)
}

// New returns an initialized Engine starting at time zero.
func New() *Engine {
	return &Engine{byID: make(map[EventID]*event)}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have been executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are currently scheduled.
func (e *Engine) Pending() int { return len(e.queue) - e.deadCount() }

func (e *Engine) deadCount() int {
	n := 0
	for _, ev := range e.queue {
		if ev.dead {
			n++
		}
	}
	return n
}

// Schedule registers fn to run at absolute time at. It returns an EventID
// that can be passed to Cancel. Scheduling in the past is an error.
func (e *Engine) Schedule(at Time, fn Handler) (EventID, error) {
	if at < e.now {
		return 0, fmt.Errorf("%w: at=%v now=%v", ErrTimeTravel, at, e.now)
	}
	if e.byID == nil {
		e.byID = make(map[EventID]*event)
	}
	e.nextID++
	e.seq++
	ev := &event{at: at, seq: e.seq, id: e.nextID, fn: fn}
	heap.Push(&e.queue, ev)
	e.byID[ev.id] = ev
	return ev.id, nil
}

// After schedules fn to run d after the current time. Negative delays clamp
// to "now".
func (e *Engine) After(d Time, fn Handler) EventID {
	if d < 0 {
		d = 0
	}
	id, _ := e.Schedule(e.now+d, fn) // cannot fail: e.now+d >= e.now
	return id
}

// Cancel removes a scheduled event. It reports whether the event was still
// pending (false if it already fired, was cancelled, or never existed).
func (e *Engine) Cancel(id EventID) bool {
	ev, ok := e.byID[id]
	if !ok || ev.dead {
		return false
	}
	ev.dead = true
	delete(e.byID, id)
	return true
}

// Stop halts the run loop after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// SetEventHook registers fn to run after every executed event, with the
// clock at that event's due time. Observers such as the invariant
// sanitizer use this to interleave checks with the simulation without
// scheduling events of their own, which would keep a run-to-drain loop
// alive forever. Passing nil removes the hook.
func (e *Engine) SetEventHook(fn func(now Time)) { e.onEvent = fn }

// Step executes the next pending event, advancing the clock to its due time.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.dead {
			continue
		}
		delete(e.byID, ev.id)
		e.now = ev.at
		e.fired++
		ev.fn(e.now)
		if e.onEvent != nil {
			e.onEvent(e.now)
		}
		return true
	}
	return false
}

// RunUntil executes events until the queue is empty, the engine is stopped,
// or the next event would fire strictly after the deadline. The clock is
// left at the time of the last executed event (or at the deadline if it is
// later and at least one event remained).
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped {
		ev := e.peek()
		if ev == nil || ev.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

func (e *Engine) peek() *event {
	for len(e.queue) > 0 {
		ev := e.queue[0]
		if !ev.dead {
			return ev
		}
		heap.Pop(&e.queue)
	}
	return nil
}
