// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock in microseconds and a priority queue
// of scheduled events. Events scheduled for the same instant fire in the
// order they were scheduled, which makes every simulation in this repository
// fully deterministic: the same configuration and seed always produce the
// same trajectory.
//
// The implementation is allocation-free in steady state (see DESIGN §11):
// events live in a slab of reusable slots addressed by a value-based 4-ary
// heap, EventIDs carry a (slot, generation) pair so Cancel is an O(1)
// generation check with no map, and Pending is a maintained counter.
package sim

import (
	"errors"
	"fmt"
	"math"
)

// Time is a simulation timestamp in microseconds since the start of the run.
type Time int64

// Common time unit conversions.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
	Hour        Time = 60 * Minute
)

// MaxTime is the largest representable simulation time.
const MaxTime Time = math.MaxInt64

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds converts t to floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String renders t as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// FromSeconds converts floating-point seconds to a Time, rounding to the
// nearest microsecond.
func FromSeconds(s float64) Time { return Time(math.Round(s * float64(Second))) }

// FromMilliseconds converts floating-point milliseconds to a Time.
func FromMilliseconds(ms float64) Time { return Time(math.Round(ms * float64(Millisecond))) }

// ErrTimeTravel is returned by Schedule when an event is scheduled before the
// current simulation time.
var ErrTimeTravel = errors.New("sim: event scheduled in the past")

// Handler is a callback invoked when an event fires. The engine passes the
// current simulation time (the event's due time).
type Handler func(now Time)

// EventID identifies a scheduled event so it can be cancelled. It packs the
// event's slab slot (low 32 bits) and the slot's generation at scheduling
// time (high 32 bits); generations start at 1, so the zero EventID is never
// a live event.
type EventID uint64

func makeEventID(slot, gen uint32) EventID { return EventID(gen)<<32 | EventID(slot) }

func (id EventID) slot() uint32 { return uint32(id) }
func (id EventID) gen() uint32  { return uint32(id >> 32) }

// slotState is one slab entry. A slot is live from Schedule until the event
// fires or is cancelled; freeing bumps the generation, so stale EventIDs and
// stale heap entries are recognized in O(1) without any lookup structure.
// The handler is cleared on free so the slab never pins dead closures.
type slotState struct {
	gen  uint32
	live bool
	fn   Handler
}

// heapEntry is one element of the event queue. Due time and sequence are
// copied inline so heap sifting never dereferences the slab; slot+gen tie
// the entry back to its slab slot. An entry whose generation no longer
// matches its slot is dead (cancelled) and is dropped lazily when popped.
type heapEntry struct {
	at   Time
	seq  uint64 // tie-break: FIFO among same-time events
	slot uint32
	gen  uint32
}

// before orders entries by due time, then scheduling order.
func (a heapEntry) before(b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// heapArity is the fan-out of the event queue. A 4-ary heap halves the tree
// depth of a binary heap; sift-down compares up to four children per level,
// but those live in one or two cache lines, so fire-heavy workloads win.
const heapArity = 4

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	now     Time
	seq     uint64
	slots   []slotState
	free    []uint32 // freed slot indices, reused LIFO
	queue   []heapEntry
	live    int // scheduled and not yet fired or cancelled
	dead    int // cancelled entries still sitting in the queue
	stopped bool
	fired   uint64

	// onEvent, if set, runs after each executed event with the clock at
	// that event's due time (see SetEventHook).
	onEvent func(now Time)
}

// New returns an initialized Engine starting at time zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have been executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are currently scheduled. It is O(1): the
// engine maintains the count across Schedule, Cancel and Step.
func (e *Engine) Pending() int { return e.live }

// Schedule registers fn to run at absolute time at. It returns an EventID
// that can be passed to Cancel. Scheduling in the past is an error.
func (e *Engine) Schedule(at Time, fn Handler) (EventID, error) {
	if at < e.now {
		return 0, fmt.Errorf("%w: at=%v now=%v", ErrTimeTravel, at, e.now)
	}
	var slot uint32
	if n := len(e.free); n > 0 {
		slot = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.slots = append(e.slots, slotState{gen: 1})
		slot = uint32(len(e.slots) - 1)
	}
	s := &e.slots[slot]
	s.live = true
	s.fn = fn
	e.seq++
	e.push(heapEntry{at: at, seq: e.seq, slot: slot, gen: s.gen})
	e.live++
	return makeEventID(slot, s.gen), nil
}

// After schedules fn to run d after the current time. Negative delays clamp
// to "now".
func (e *Engine) After(d Time, fn Handler) EventID {
	if d < 0 {
		d = 0
	}
	id, _ := e.Schedule(e.now+d, fn) // cannot fail: e.now+d >= e.now
	return id
}

// Cancel removes a scheduled event. It reports whether the event was still
// pending (false if it already fired, was cancelled, or never existed).
// The queue entry is normally dropped lazily when it reaches the top of
// the heap; if dead entries come to dominate the queue (a schedule-heavy,
// cancel-heavy pattern that rarely fires), the queue is compacted in place
// so memory stays bounded by twice the live event count.
func (e *Engine) Cancel(id EventID) bool {
	slot := id.slot()
	if int(slot) >= len(e.slots) {
		return false
	}
	s := &e.slots[slot]
	if !s.live || s.gen != id.gen() {
		return false
	}
	e.freeSlot(slot, s)
	e.dead++
	if e.dead > len(e.queue)/2 && len(e.queue) >= compactMin {
		e.compact()
	}
	return true
}

// compactMin is the queue length below which dead entries are never worth
// compacting away.
const compactMin = 64

// compact filters dead entries out of the queue in place and restores the
// heap property bottom-up. Heap order is total ((at, seq) never ties), so
// compaction cannot change which event pops next.
func (e *Engine) compact() {
	q := e.queue[:0]
	for _, ent := range e.queue {
		s := &e.slots[ent.slot]
		if s.live && s.gen == ent.gen {
			q = append(q, ent)
		}
	}
	e.queue = q
	e.dead = 0
	for i := (len(q) - 2) / heapArity; i >= 0; i-- {
		e.siftDown(i)
	}
}

// freeSlot retires a live slot: the generation bump invalidates any
// outstanding EventID and heap entry, and the handler reference is dropped.
func (e *Engine) freeSlot(slot uint32, s *slotState) {
	s.live = false
	s.gen++
	s.fn = nil
	e.free = append(e.free, slot)
	e.live--
}

// Stop halts the run loop after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// SetEventHook registers fn to run after every executed event, with the
// clock at that event's due time. Observers such as the invariant
// sanitizer use this to interleave checks with the simulation without
// scheduling events of their own, which would keep a run-to-drain loop
// alive forever. Passing nil removes the hook.
func (e *Engine) SetEventHook(fn func(now Time)) { e.onEvent = fn }

// Step executes the next pending event, advancing the clock to its due time.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ent := e.queue[0]
		e.pop()
		s := &e.slots[ent.slot]
		if !s.live || s.gen != ent.gen {
			e.dead-- // cancelled; slot may already be reused
			continue
		}
		fn := s.fn
		e.freeSlot(ent.slot, s)
		e.now = ent.at
		e.fired++
		fn(e.now)
		if e.onEvent != nil {
			e.onEvent(e.now)
		}
		return true
	}
	return false
}

// RunUntil executes events until the queue is empty, the engine is stopped,
// or the next event would fire strictly after the deadline. The clock is
// left at the time of the last executed event (or at the deadline if it is
// later and at least one event remained).
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped {
		at, ok := e.peek()
		if !ok || at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// peek reports the due time of the next live event, discarding dead entries
// from the top of the queue.
func (e *Engine) peek() (Time, bool) {
	for len(e.queue) > 0 {
		ent := e.queue[0]
		s := &e.slots[ent.slot]
		if s.live && s.gen == ent.gen {
			return ent.at, true
		}
		e.dead--
		e.pop()
	}
	return 0, false
}

// push inserts an entry into the 4-ary heap.
func (e *Engine) push(ent heapEntry) {
	e.queue = append(e.queue, ent)
	i := len(e.queue) - 1
	for i > 0 {
		parent := (i - 1) / heapArity
		if !e.queue[i].before(e.queue[parent]) {
			break
		}
		e.queue[i], e.queue[parent] = e.queue[parent], e.queue[i]
		i = parent
	}
}

// pop removes the minimum entry from the 4-ary heap.
func (e *Engine) pop() {
	n := len(e.queue) - 1
	e.queue[0] = e.queue[n]
	e.queue = e.queue[:n]
	e.siftDown(0)
}

// siftDown restores the heap property below index i.
func (e *Engine) siftDown(i int) {
	n := len(e.queue)
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.queue[c].before(e.queue[min]) {
				min = c
			}
		}
		if !e.queue[min].before(e.queue[i]) {
			break
		}
		e.queue[i], e.queue[min] = e.queue[min], e.queue[i]
		i = min
	}
}
