package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestZeroValueEngineUsable(t *testing.T) {
	var e Engine
	ran := false
	if _, err := e.Schedule(5*Millisecond, func(now Time) { ran = true }); err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	e.Run()
	if !ran {
		t.Fatal("event did not fire")
	}
	if e.Now() != 5*Millisecond {
		t.Fatalf("Now() = %v, want 5ms", e.Now())
	}
}

func TestScheduleInPast(t *testing.T) {
	e := New()
	e.After(10, func(Time) {})
	e.Run()
	if _, err := e.Schedule(5, func(Time) {}); err == nil {
		t.Fatal("expected ErrTimeTravel scheduling at t=5 after clock reached t=10")
	}
}

func TestEventOrdering(t *testing.T) {
	e := New()
	var got []int
	e.After(30, func(Time) { got = append(got, 3) })
	e.After(10, func(Time) { got = append(got, 1) })
	e.After(20, func(Time) { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.After(42, func(Time) { got = append(got, i) })
	}
	e.Run()
	if !sort.IntsAreSorted(got) {
		t.Fatalf("same-time events fired out of scheduling order: %v", got)
	}
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	id := e.After(10, func(Time) { fired = true })
	if !e.Cancel(id) {
		t.Fatal("Cancel returned false for pending event")
	}
	if e.Cancel(id) {
		t.Fatal("double Cancel returned true")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelAfterFire(t *testing.T) {
	e := New()
	id := e.After(1, func(Time) {})
	e.Run()
	if e.Cancel(id) {
		t.Fatal("Cancel returned true for already-fired event")
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.After(at, func(now Time) { fired = append(fired, now) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %d events by t=25, want 2", len(fired))
	}
	if e.Now() != 25 {
		t.Fatalf("Now() = %v after RunUntil(25), want 25", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("fired %d events total, want 4", len(fired))
	}
}

func TestStop(t *testing.T) {
	e := New()
	count := 0
	for i := 1; i <= 10; i++ {
		e.After(Time(i), func(Time) {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("executed %d events, want 3 (stopped)", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("Pending() = %d, want 7", e.Pending())
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := New()
	var got []Time
	e.After(10, func(now Time) {
		got = append(got, now)
		e.After(5, func(now Time) { got = append(got, now) })
	})
	e.Run()
	if len(got) != 2 || got[0] != 10 || got[1] != 15 {
		t.Fatalf("got %v, want [10 15]", got)
	}
}

func TestAfterNegativeClamps(t *testing.T) {
	e := New()
	e.After(10, func(Time) {
		e.After(-5, func(now Time) {
			if now != 10 {
				t.Errorf("negative After fired at %v, want 10", now)
			}
		})
	})
	e.Run()
}

func TestFiredCounter(t *testing.T) {
	e := New()
	for i := 0; i < 17; i++ {
		e.After(Time(i), func(Time) {})
	}
	e.Run()
	if e.Fired() != 17 {
		t.Fatalf("Fired() = %d, want 17", e.Fired())
	}
}

// Property: regardless of the insertion order of random timestamps, the
// engine fires events in non-decreasing time order and the clock never
// moves backwards.
func TestQuickMonotonicClock(t *testing.T) {
	f := func(stamps []uint32) bool {
		e := New()
		var fired []Time
		for _, s := range stamps {
			at := Time(s % 1_000_000)
			e.After(at, func(now Time) { fired = append(fired, now) })
		}
		e.Run()
		if len(fired) != len(stamps) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset of events fires exactly the rest.
func TestQuickCancelSubset(t *testing.T) {
	f := func(n uint8, seed int64) bool {
		e := New()
		rng := rand.New(rand.NewSource(seed))
		total := int(n%64) + 1
		ids := make([]EventID, 0, total)
		firedCount := 0
		for i := 0; i < total; i++ {
			id := e.After(Time(rng.Intn(1000)), func(Time) { firedCount++ })
			ids = append(ids, id)
		}
		cancelled := 0
		for _, id := range ids {
			if rng.Intn(2) == 0 {
				if e.Cancel(id) {
					cancelled++
				}
			}
		}
		e.Run()
		return firedCount == total-cancelled
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeConversions(t *testing.T) {
	cases := []struct {
		in   Time
		secs float64
	}{
		{Second, 1},
		{500 * Millisecond, 0.5},
		{Minute, 60},
		{Hour, 3600},
	}
	for _, c := range cases {
		if got := c.in.Seconds(); got != c.secs {
			t.Errorf("%v.Seconds() = %v, want %v", c.in, got, c.secs)
		}
	}
	if FromSeconds(1.5) != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v", FromSeconds(1.5))
	}
	if FromMilliseconds(3.4) != 3400 {
		t.Errorf("FromMilliseconds(3.4) = %v", FromMilliseconds(3.4))
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := New()
		for j := 0; j < 1000; j++ {
			e.After(Time(rng.Intn(1_000_000)), func(Time) {})
		}
		e.Run()
	}
}

func TestCancelInsideHandler(t *testing.T) {
	e := New()
	var id2 EventID
	fired2 := false
	e.After(10, func(Time) {
		if !e.Cancel(id2) {
			t.Error("cancel of pending event from a handler failed")
		}
	})
	id2 = e.After(20, func(Time) { fired2 = true })
	e.Run()
	if fired2 {
		t.Fatal("cancelled event fired")
	}
}

func TestPendingExcludesCancelled(t *testing.T) {
	e := New()
	keep := e.After(10, func(Time) {})
	drop := e.After(20, func(Time) {})
	_ = keep
	if !e.Cancel(drop) {
		t.Fatal("cancel failed")
	}
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending = %d, want 1", got)
	}
	e.Run()
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending after drain = %d", got)
	}
}

func TestRunUntilExactBoundary(t *testing.T) {
	e := New()
	fired := false
	e.After(25, func(Time) { fired = true })
	e.RunUntil(25) // inclusive boundary
	if !fired {
		t.Fatal("event at the deadline did not fire")
	}
}
