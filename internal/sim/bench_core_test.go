package sim

import (
	"math/rand"
	"testing"
)

// Core benchmarks: the engine's steady-state hot paths. scripts/check.sh
// runs them once per commit (bench-smoke) so they cannot bit-rot, and
// `make bench` records them in BENCH_core.json for the perf trajectory.
// Every path benchmarked here must report 0 allocs/op (DESIGN §11).

// warmEngine returns an engine whose slab and queue have been through a
// burst larger than the benchmark working set, so steady-state runs reuse
// slots and backing arrays instead of growing them.
func warmEngine(n int) *Engine {
	e := New()
	fn := Handler(func(Time) {})
	for i := 0; i < n; i++ {
		e.After(Time(i), fn)
	}
	e.Run()
	return e
}

// BenchmarkCoreEngineScheduleFire measures one After+Step round trip
// against an otherwise empty queue: the floor cost of an event.
func BenchmarkCoreEngineScheduleFire(b *testing.B) {
	e := warmEngine(64)
	fn := Handler(func(Time) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(10, fn)
		e.Step()
	}
}

// BenchmarkCoreEngineScheduleCancel measures one After+Cancel round trip:
// the generation-stamp path that replaced the byID map delete.
func BenchmarkCoreEngineScheduleCancel(b *testing.B) {
	e := warmEngine(64)
	fn := Handler(func(Time) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Cancel(e.After(10, fn))
	}
}

// BenchmarkCoreEngineChurn holds a standing population of 1024 pending
// events — a realistic heap depth for full-scale simulations — and
// schedules one plus fires one per iteration, so sift costs reflect a
// deep 4-ary heap rather than an empty one.
func BenchmarkCoreEngineChurn(b *testing.B) {
	const standing = 1024
	e := warmEngine(standing * 2)
	fn := Handler(func(Time) {})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < standing; i++ {
		e.After(Time(rng.Intn(1_000_000)), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(Time(rng.Intn(1_000_000)), fn)
		e.Step()
	}
	b.StopTimer()
	for e.Step() {
	}
}
