package core

import (
	"testing"

	"github.com/rolo-storage/rolo/internal/array"
	"github.com/rolo-storage/rolo/internal/disk"
	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/trace"
)

// failSetup drives some writes so the on-duty logger holds live extents
// for several pairs, then returns the controller mid-run.
func failSetup(t *testing.T) (*RoLo, *array.Array, *sim.Engine) {
	t.Helper()
	a, eng := testArray(t, 4)
	r, err := New(a, FlavorP, scaledConfig())
	if err != nil {
		t.Fatal(err)
	}
	recs := writeRecs(64, 64<<10, 20*sim.Millisecond)
	for i := range recs {
		rec := recs[i]
		if _, err := eng.Schedule(rec.At, func(sim.Time) {
			if err := r.Submit(rec); err != nil {
				t.Errorf("submit: %v", err)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	eng.RunUntil(2 * sim.Second)
	return r, a, eng
}

func TestFailOnDutyMirrorRotatesImmediately(t *testing.T) {
	r, a, eng := failSetup(t)
	prevDuty := r.OnDuty()
	plan, err := r.FailMirror(prevDuty)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NewOnDuty < 0 || plan.NewOnDuty == prevDuty {
		t.Fatalf("no successor logger: %+v", plan)
	}
	if r.OnDuty() != plan.NewOnDuty {
		t.Fatalf("on-duty = %d, plan said %d", r.OnDuty(), plan.NewOnDuty)
	}
	// Logging continues: the next write must succeed without error.
	done := false
	eng.After(10*sim.Millisecond, func(sim.Time) {
		err := r.Submit(trace.Record{
			At: eng.Now(), Op: trace.Write, Offset: 0, Size: 64 << 10,
		})
		if err != nil {
			t.Errorf("write after on-duty failure: %v", err)
		}
		done = true
	})
	eng.Run()
	if !done {
		t.Fatal("post-failure write never ran")
	}
	if a.Mirrors[prevDuty].State() != disk.Standby || !a.Mirrors[prevDuty].Failed() {
		t.Fatalf("failed mirror state = %v failed=%v", a.Mirrors[prevDuty].State(), a.Mirrors[prevDuty].Failed())
	}
}

func TestFailPrimaryWakesOnlyEssentialDisks(t *testing.T) {
	r, a, eng := failSetup(t)
	// Pick a pair whose mirror sleeps and which has logged extents.
	victim := -1
	for p := 0; p < a.Geom.Pairs; p++ {
		if p != r.OnDuty() && a.Mirrors[p].State() == disk.Standby && r.spaces[r.OnDuty()].TagBytes(p) > 0 {
			victim = p
			break
		}
	}
	if victim == -1 {
		t.Skip("no sleeping pair with logged extents in this setup")
	}
	plan, err := r.FailPrimary(victim)
	if err != nil {
		t.Fatal(err)
	}
	// The victim's mirror must be waking.
	if st := a.Mirrors[victim].State(); st != disk.SpinningUp {
		t.Fatalf("victim mirror state = %v, want SPINUP", st)
	}
	// Log sources must include the on-duty logger (it holds extents for
	// the victim) — already awake, so not in SpunUp.
	foundSource := false
	for _, i := range plan.LogSourceLoggers {
		if i == r.OnDuty() {
			foundSource = true
		}
	}
	if !foundSource {
		t.Fatalf("on-duty logger missing from log sources: %+v", plan)
	}
	// Mirrors with no involvement stay asleep.
	for p := 0; p < a.Geom.Pairs; p++ {
		if p == victim || p == r.OnDuty() {
			continue
		}
		if r.spaces[p].TagBytes(victim) > 0 {
			continue
		}
		involved := false
		for _, s := range plan.SpunUp {
			if s == p {
				involved = true
			}
		}
		if !involved && a.Mirrors[p].State() == disk.SpinningUp {
			t.Fatalf("uninvolved mirror %d was woken", p)
		}
	}
	if plan.RebuildBytes < a.Geom.DataBytesPerDisk {
		t.Fatalf("rebuild bytes %d below data region %d", plan.RebuildBytes, a.Geom.DataBytesPerDisk)
	}
	eng.Run()
}

func TestDegradedReadsAndWritesAfterPrimaryFailure(t *testing.T) {
	r, a, eng := failSetup(t)
	victim := (r.OnDuty() + 1) % a.Geom.Pairs
	if _, err := r.FailPrimary(victim); err != nil {
		t.Fatal(err)
	}
	// Reads and writes addressed to the failed pair must still complete,
	// served by the surviving mirror.
	su := a.Geom.StripeUnitBytes
	off := int64(victim) * su // stripe `victim` lands on that pair
	completed := 0
	for i, op := range []trace.Op{trace.Read, trace.Write} {
		op := op
		eng.After(sim.Time(i+1)*sim.Second, func(now sim.Time) {
			if err := r.Submit(trace.Record{At: now, Op: op, Offset: off, Size: su}); err != nil {
				t.Errorf("degraded %v: %v", op, err)
				return
			}
			completed++
		})
	}
	eng.Run()
	if completed != 2 {
		t.Fatalf("only %d degraded ops issued", completed)
	}
	if got := a.Mirrors[victim].Stats().IOsCompleted; got == 0 {
		t.Fatal("surviving mirror serviced nothing")
	}
}

func TestRebuildMirror(t *testing.T) {
	r, a, eng := failSetup(t)
	victim := (r.OnDuty() + 1) % a.Geom.Pairs
	if _, err := r.FailMirror(victim); err != nil {
		t.Fatal(err)
	}
	var rebuiltAt sim.Time
	if err := r.Rebuild(victim, true, func(now sim.Time) { rebuiltAt = now }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if rebuiltAt == 0 {
		t.Fatal("rebuild never completed")
	}
	if a.Mirrors[victim].Failed() {
		t.Fatal("mirror still marked failed after rebuild")
	}
	if !r.dirty[victim].Empty() {
		t.Fatal("rebuilt pair still dirty")
	}
	// The rebuilt mirror received at least a full data region.
	if got := a.Mirrors[victim].Stats().BytesWritten; got < a.Geom.DataBytesPerDisk {
		t.Fatalf("rebuild wrote %d of %d bytes", got, a.Geom.DataBytesPerDisk)
	}
}

func TestRebuildRefusesDoubleFailure(t *testing.T) {
	r, a, _ := failSetup(t)
	victim := (r.OnDuty() + 1) % a.Geom.Pairs
	if _, err := r.FailMirror(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := r.FailPrimary(victim); err != nil {
		t.Fatal(err)
	}
	if err := r.Rebuild(victim, true, nil); err == nil {
		t.Fatal("rebuild with both disks failed must error (data loss)")
	}
	_ = a
}

func TestFailValidation(t *testing.T) {
	r, _, _ := failSetup(t)
	if _, err := r.FailMirror(-1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := r.FailPrimary(99); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := r.FailMirror(1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.FailMirror(1); err == nil {
		t.Error("double failure accepted")
	}
	if err := r.Rebuild(2, true, nil); err == nil {
		t.Error("rebuild of healthy disk accepted")
	}
}

func TestDiskFailDropsQueueAndRejects(t *testing.T) {
	a, eng := testArray(t, 2)
	d := a.Mirrors[0]
	dropped := 0
	if err := d.Submit(a.DataIO(0, 1<<20, true, false)); err != nil {
		t.Fatal(err)
	}
	io2 := a.DataIO(1<<20, 1<<20, true, false)
	io2.OnDone = func(sim.Time) { dropped++ }
	if err := d.Submit(io2); err != nil {
		t.Fatal(err)
	}
	d.Fail()
	if dropped != 1 {
		t.Fatalf("queued IO callback fired %d times, want 1 (dropped)", dropped)
	}
	if err := d.Submit(a.DataIO(0, 4096, true, false)); err == nil {
		t.Fatal("failed disk accepted IO")
	}
	if err := d.SpinUp(); err == nil {
		t.Fatal("failed disk accepted SpinUp")
	}
	eng.Run()
	if d.State() != disk.Standby {
		t.Fatalf("failed disk state = %v", d.State())
	}
	if err := d.Replace(); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if d.State() != disk.Idle {
		t.Fatalf("replacement state = %v, want IDLE after spin-up", d.State())
	}
}
