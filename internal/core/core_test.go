package core

import (
	"testing"

	"github.com/rolo-storage/rolo/internal/array"
	"github.com/rolo-storage/rolo/internal/disk"
	"github.com/rolo-storage/rolo/internal/raid"
	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/trace"
)

// testArray builds a small array: 4 pairs, 256 MB data + 64 MB log space
// per disk, so logger rotations happen after ~tens of MB of writes.
func testArray(t *testing.T, pairs int) (*array.Array, *sim.Engine) {
	t.Helper()
	eng := sim.New()
	geom := raid.Geometry{
		Pairs:            pairs,
		StripeUnitBytes:  64 << 10,
		DataBytesPerDisk: 256 << 20,
	}
	cfg := disk.Ultrastar36Z15().WithCapacity(320 << 20) // 64 MB log region
	a, err := array.New(eng, geom, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	return a, eng
}

// arrayForGeom builds an array with the test disk model for an arbitrary
// geometry.
func arrayForGeom(t *testing.T, geom raid.Geometry) (*array.Array, error) {
	t.Helper()
	return array.New(sim.New(), geom, disk.Ultrastar36Z15().WithCapacity(320<<20), 0)
}

func replay(t *testing.T, eng *sim.Engine, a *array.Array, c array.Controller, recs []trace.Record) {
	t.Helper()
	if _, err := array.Replay(eng, a, c, recs); err != nil {
		t.Fatal(err)
	}
}

func writeRecs(n int, size int64, gap sim.Time) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{
			At:     sim.Time(i) * gap,
			Op:     trace.Write,
			Offset: (int64(i) * size * 7) % (900 << 20), // scattered but bounded
			Size:   size,
		}
	}
	return recs
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.RotateFreeFraction = 0 },
		func(c *Config) { c.RotateFreeFraction = 1 },
		func(c *Config) { c.SpinUpLeadFreeFraction = c.RotateFreeFraction / 2 },
		func(c *Config) { c.DeactivateFreeFraction = c.RotateFreeFraction + 0.1 },
		func(c *Config) { c.DestageChunkBytes = 0 },
		func(c *Config) { c.SpinDownRetry = 0 },
	}
	for i, m := range mutations {
		cfg := DefaultConfig()
		m(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestNewRejectsBadSetups(t *testing.T) {
	a, _ := testArray(t, 4)
	if _, err := New(a, FlavorE, DefaultConfig()); err == nil {
		t.Error("New accepted FlavorE")
	}
	if _, err := New(a, FlavorP, Config{}); err == nil {
		t.Error("New accepted zero config")
	}
	// One pair cannot rotate.
	eng := sim.New()
	geom := raid.Geometry{Pairs: 1, StripeUnitBytes: 64 << 10, DataBytesPerDisk: 256 << 20}
	one, err := array.New(eng, geom, disk.Ultrastar36Z15().WithCapacity(320<<20), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(one, FlavorP, DefaultConfig()); err == nil {
		t.Error("single-pair array accepted")
	}
}

func TestRoLoPInitialStates(t *testing.T) {
	a, _ := testArray(t, 4)
	r, err := New(a, FlavorP, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.OnDuty() != 0 {
		t.Fatalf("on-duty = %d, want 0", r.OnDuty())
	}
	for i, p := range a.Primaries {
		if p.State() != disk.Idle {
			t.Fatalf("primary %d state = %v", i, p.State())
		}
	}
	if a.Mirrors[0].State() != disk.Idle {
		t.Fatalf("on-duty mirror state = %v", a.Mirrors[0].State())
	}
	for i := 1; i < 4; i++ {
		if a.Mirrors[i].State() != disk.Standby {
			t.Fatalf("off-duty mirror %d state = %v", i, a.Mirrors[i].State())
		}
	}
}

func TestRoLoPLogsOnOnDutyMirror(t *testing.T) {
	a, eng := testArray(t, 4)
	r, err := New(a, FlavorP, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	recs := writeRecs(32, 64<<10, 20*sim.Millisecond)
	replay(t, eng, a, r, recs)
	if err := r.CheckErr(); err != nil {
		t.Fatal(err)
	}
	want := int64(32 * 64 << 10)
	// All second copies went to mirror 0's logging region.
	if got := a.Mirrors[0].Stats().BytesWritten; got < want {
		t.Fatalf("on-duty mirror wrote %d, want >= %d", got, want)
	}
	for i := 1; i < 4; i++ {
		if got := a.Mirrors[i].Stats().BytesWritten; got != 0 {
			t.Fatalf("off-duty mirror %d wrote %d bytes", i, got)
		}
	}
	if r.Rotations() != 0 {
		t.Fatalf("rotations = %d, want 0 for small write volume", r.Rotations())
	}
	if r.Responses().Count() != 32 {
		t.Fatalf("responses = %d", r.Responses().Count())
	}
}

func TestRoLoRThreeCopies(t *testing.T) {
	a, eng := testArray(t, 4)
	r, err := New(a, FlavorR, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Write to pair 2 only: primary 2 gets the data copy; primary 0 and
	// mirror 0 (the on-duty logger pair) each get a log copy.
	recs := make([]trace.Record, 8)
	for i := range recs {
		// Stripe 2 of each row lands on pair 2.
		off := int64(2)*(64<<10) + int64(i)*4*(64<<10)
		recs[i] = trace.Record{At: sim.Time(i) * 20 * sim.Millisecond, Op: trace.Write, Offset: off, Size: 64 << 10}
	}
	replay(t, eng, a, r, recs)
	want := int64(8 * 64 << 10)
	if got := a.Primaries[2].Stats().BytesWritten; got != want {
		t.Fatalf("target primary wrote %d, want %d", got, want)
	}
	if got := a.Primaries[0].Stats().BytesWritten; got != want {
		t.Fatalf("logger primary wrote %d, want %d", got, want)
	}
	if got := a.Mirrors[0].Stats().BytesWritten; got != want {
		t.Fatalf("logger mirror wrote %d, want %d", got, want)
	}
}

// scaledConfig widens the spin-up lead so the ~11 s wake-up latency fits
// the miniature 64 MB loggers used in tests (at the paper's 8 GB loggers
// the default lead is ample).
func scaledConfig() Config {
	cfg := DefaultConfig()
	cfg.SpinUpLeadFreeFraction = 0.5
	cfg.RotateFreeFraction = 0.15
	return cfg
}

func TestRoLoRotationAndReclamation(t *testing.T) {
	a, eng := testArray(t, 4)
	r, err := New(a, FlavorP, scaledConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 64 MB log per mirror; write ~200 MB so the logger must rotate
	// several times and reuse reclaimed space.
	recs := writeRecs(3200, 64<<10, 20*sim.Millisecond)
	replay(t, eng, a, r, recs)
	if err := r.CheckErr(); err != nil {
		t.Fatal(err)
	}
	if r.Rotations() < 3 {
		t.Fatalf("rotations = %d, want >= 3", r.Rotations())
	}
	if r.DirectWrites() > len(recs)/5 {
		t.Fatalf("direct writes = %d of %d: reclamation is not keeping up",
			r.DirectWrites(), len(recs))
	}
	// Rotation reuses reclaimed space: total logged bytes exceed a single
	// logger's capacity.
	var logged int64
	for _, m := range a.Mirrors {
		logged += m.Stats().BytesWritten
	}
	if logged < 2*a.LogRegionBytes() {
		t.Fatalf("logged %d bytes, want > 2x one logger (%d): space was not recycled",
			logged, a.LogRegionBytes())
	}
	// Every mirror took at least one logging turn.
	for i, m := range a.Mirrors {
		if m.Stats().BytesWritten == 0 {
			t.Fatalf("mirror %d never participated", i)
		}
	}
}

func TestRoLoDecentralizedDestageUsesBackground(t *testing.T) {
	a, eng := testArray(t, 4)
	r, err := New(a, FlavorP, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	recs := writeRecs(3200, 64<<10, 10*sim.Millisecond)
	replay(t, eng, a, r, recs)
	var bgReads, bgWrites int64
	for _, d := range a.Primaries {
		bgReads += d.Stats().BackgroundIOs
	}
	for _, d := range a.Mirrors {
		bgWrites += d.Stats().BackgroundIOs
	}
	if bgReads == 0 || bgWrites == 0 {
		t.Fatalf("destaging must run at background priority (bg reads=%d writes=%d)",
			bgReads, bgWrites)
	}
}

func TestRoLoConsistencyInvariants(t *testing.T) {
	// Dirty spans persist for pairs still waiting for their on-duty turn
	// (the paper's Figure 5: D0T0 is only reclaimed in T3), but three
	// invariants must hold once the run drains:
	//  1. no destage is still live;
	//  2. every dirty byte has a logged copy (dirty <= allocated log);
	//  3. a pair with no dirt holds no live log allocations anywhere —
	//     its extents were proactively reclaimed.
	for _, flavor := range []Flavor{FlavorP, FlavorR} {
		flavor := flavor
		t.Run(flavor.String(), func(t *testing.T) {
			a, eng := testArray(t, 4)
			r, err := New(a, flavor, scaledConfig())
			if err != nil {
				t.Fatal(err)
			}
			recs := writeRecs(1600, 64<<10, 20*sim.Millisecond)
			replay(t, eng, a, r, recs)
			if err := r.CheckErr(); err != nil {
				t.Fatal(err)
			}
			for p := range r.destageLive {
				if r.destageLive[p] {
					t.Fatalf("destage %d still live after drain", p)
				}
			}
			if r.DirectWrites() != 0 {
				t.Skipf("direct writes occurred (%d); per-tag invariant does not apply", r.DirectWrites())
			}
			var logged int64
			for _, sp := range r.spaces {
				logged += sp.UsedBytes()
			}
			if dirty := r.DirtyBytes(); dirty > logged {
				t.Fatalf("dirty %d exceeds live log allocations %d", dirty, logged)
			}
			for p := 0; p < a.Geom.Pairs; p++ {
				if !r.dirty[p].Empty() {
					continue
				}
				for i, sp := range r.spaces {
					if got := sp.TagBytes(p); got != 0 {
						t.Fatalf("pair %d clean but logger %d holds %d stale bytes", p, i, got)
					}
				}
			}
		})
	}
}

func TestRoLoReadsServedByPrimaries(t *testing.T) {
	a, eng := testArray(t, 4)
	r, err := New(a, FlavorP, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	recs := []trace.Record{
		{At: 0, Op: trace.Read, Offset: 0, Size: 64 << 10},
		{At: 20 * sim.Millisecond, Op: trace.Read, Offset: 300 << 20, Size: 64 << 10},
	}
	replay(t, eng, a, r, recs)
	var primReads int64
	for _, p := range a.Primaries {
		primReads += p.Stats().BytesRead
	}
	if primReads != 2*64<<10 {
		t.Fatalf("primaries read %d bytes, want %d", primReads, 2*64<<10)
	}
	// No read should ever wake a sleeping mirror in RoLo-P.
	for i := 1; i < 4; i++ {
		if a.Mirrors[i].SpinCycles() != 0 {
			t.Fatalf("mirror %d spun up for a read", i)
		}
	}
}

func TestRoLoSpinCyclesTrackRotations(t *testing.T) {
	a, eng := testArray(t, 4)
	r, err := New(a, FlavorP, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	recs := writeRecs(3200, 64<<10, 10*sim.Millisecond)
	replay(t, eng, a, r, recs)
	// Each rotation wakes exactly one mirror: total spin-ups should be
	// close to the rotation count (the paper's 10x advantage over GRAID).
	spins := a.TotalSpinCycles()
	if spins > r.Rotations()+len(a.Mirrors) {
		t.Fatalf("spin cycles %d far exceed rotations %d", spins, r.Rotations())
	}
}
