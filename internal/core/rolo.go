// Package core implements the RoLo rotated-logging architecture — the
// primary contribution of the paper. RoLo pools the free space of the
// mirrored disks into a rotating logical logging space: one mirror
// (RoLo-P) or one mirrored pair (RoLo-R) serves as the on-duty logger while
// off-duty mirrors sleep. Each rotation triggers a decentralized destage
// for the newly on-duty pair, executed at background priority in the idle
// time slots between foreground requests; completed destages invalidate the
// corresponding log extents on every logger, proactively reclaiming space
// so the logger can rotate indefinitely. RoLo-E (see roloe.go) instead
// spins everything down except one on-duty pair that absorbs all writes and
// caches popular reads.
package core

import (
	"fmt"

	"github.com/rolo-storage/rolo/internal/array"
	"github.com/rolo-storage/rolo/internal/disk"
	"github.com/rolo-storage/rolo/internal/intervals"
	"github.com/rolo-storage/rolo/internal/invariant"
	"github.com/rolo-storage/rolo/internal/logspace"
	"github.com/rolo-storage/rolo/internal/metrics"
	"github.com/rolo-storage/rolo/internal/raid"
	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/telemetry"
	"github.com/rolo-storage/rolo/internal/trace"
)

// Flavor selects the RoLo variant.
type Flavor int

// The three RoLo flavors from Section III-B of the paper.
const (
	FlavorP Flavor = iota + 1 // performance-oriented: one mirror logs, 2 copies
	FlavorR                   // reliability-oriented: one pair logs, 3 copies
	FlavorE                   // energy-oriented: one pair up, everything else asleep
)

// String returns the flavor name.
func (f Flavor) String() string {
	switch f {
	case FlavorP:
		return "RoLo-P"
	case FlavorR:
		return "RoLo-R"
	case FlavorE:
		return "RoLo-E"
	default:
		return fmt.Sprintf("Flavor(%d)", int(f))
	}
}

// Config parameterizes the RoLo controllers.
type Config struct {
	// RotateFreeFraction rotates the logger when its free fraction drops
	// below this value.
	RotateFreeFraction float64
	// SpinUpLeadFreeFraction starts spinning up the next logger when the
	// on-duty free fraction drops below this value, hiding the ~11 s
	// spin-up latency.
	SpinUpLeadFreeFraction float64
	// DeactivateFreeFraction: if every logger's free fraction is below
	// this, RoLo is deactivated for the request and writes go directly to
	// the mirrors (Section III-E's 5% rule).
	DeactivateFreeFraction float64
	// DestageChunkBytes caps each background destage copy I/O.
	DestageChunkBytes int64
	// SpinDownRetry is the retry interval for deferred spin-downs.
	SpinDownRetry sim.Time
	// OnDutyLoggers is how many mirrors serve as on-duty loggers at once
	// (Section III-D: "one or a few mirrored disks take turns"). More
	// loggers raise log bandwidth at the cost of more spinning disks.
	// Zero means one.
	OnDutyLoggers int
}

// DefaultConfig returns the configuration used throughout the evaluation.
func DefaultConfig() Config {
	return Config{
		RotateFreeFraction:     0.10,
		SpinUpLeadFreeFraction: 0.20,
		DeactivateFreeFraction: 0.05,
		DestageChunkBytes:      256 << 10,
		SpinDownRetry:          sim.Second,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.RotateFreeFraction <= 0 || c.RotateFreeFraction >= 1:
		return fmt.Errorf("core: rotate threshold %g outside (0,1)", c.RotateFreeFraction)
	case c.SpinUpLeadFreeFraction < c.RotateFreeFraction || c.SpinUpLeadFreeFraction >= 1:
		return fmt.Errorf("core: spin-up lead %g must be in [rotate threshold, 1)", c.SpinUpLeadFreeFraction)
	case c.DeactivateFreeFraction < 0 || c.DeactivateFreeFraction > c.RotateFreeFraction:
		return fmt.Errorf("core: deactivate threshold %g outside [0, rotate threshold]", c.DeactivateFreeFraction)
	case c.DestageChunkBytes <= 0:
		return fmt.Errorf("core: non-positive destage chunk %d", c.DestageChunkBytes)
	case c.SpinDownRetry <= 0:
		return fmt.Errorf("core: non-positive spin-down retry %v", c.SpinDownRetry)
	case c.OnDutyLoggers < 0:
		return fmt.Errorf("core: negative on-duty logger count %d", c.OnDutyLoggers)
	}
	return nil
}

// loggers returns the effective on-duty logger count.
func (c Config) loggers() int {
	if c.OnDutyLoggers <= 0 {
		return 1
	}
	return c.OnDutyLoggers
}

// RoLo is the RoLo-P / RoLo-R controller.
type RoLo struct {
	arr    *array.Array
	cfg    Config
	flavor Flavor

	// spaces[i] tracks logger space per mirror (P) or per pair (R; the
	// pair's two disks hold identical log contents, so one allocator
	// covers both).
	spaces []*logspace.Space
	// dirty[p] is the set of pair-p data-region spans whose mirror copy
	// is stale. It doubles as the destage work queue for pair p.
	dirty []intervals.Set

	onDuty      []int           // on-duty logger indices (usually one)
	spinningUp  int             // logger index being woken ahead of rotation, or -1
	destagers   []*array.Copier // per pair; nil when no destage ever started
	destageLive []bool          // destage in progress for pair p

	resp metrics.ResponseStats
	tel  *telemetry.Recorder

	rotations    int
	directWrites int // writes that bypassed logging (deactivation fallback)
	closed       bool

	// Per-Submit scratch buffers. Submit builds its placement and target
	// lists, hands them to synchronous consumers and returns, so the
	// backing arrays are reused across requests (DESIGN §11). The
	// simulation is single-threaded per engine, so no locking is needed.
	orderScratch  []int
	allocScratch  []placedAlloc
	targetScratch []targetIO

	san *invariant.Audit // nil unless a sanitizer is attached (audit.go)
}

// placedAlloc records where one extent's log copy was placed.
type placedAlloc struct {
	alloc  logspace.Alloc
	logger int
}

var (
	_ array.Controller       = (*RoLo)(nil)
	_ telemetry.Instrumented = (*RoLo)(nil)
	_ telemetry.GaugeSource  = (*RoLo)(nil)
)

// New builds a RoLo-P or RoLo-R controller over the array. Logger 0 starts
// on duty; all other mirrors are placed in Standby. The per-logger space
// is the array's per-disk logging region.
func New(arr *array.Array, flavor Flavor, cfg Config) (*RoLo, error) {
	if flavor != FlavorP && flavor != FlavorR {
		return nil, fmt.Errorf("core: New handles RoLo-P/R; use NewE for %v", flavor)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if arr.LogRegionBytes() <= 0 {
		return nil, fmt.Errorf("core: array has no logging region (disk %d bytes, data %d bytes)",
			arr.DiskCfg.CapacityBytes, arr.Geom.DataBytesPerDisk)
	}
	if arr.Geom.Pairs < 2 {
		return nil, fmt.Errorf("core: rotation needs >= 2 pairs, have %d", arr.Geom.Pairs)
	}
	if cfg.loggers() >= arr.Geom.Pairs {
		return nil, fmt.Errorf("core: %d on-duty loggers need at least %d pairs for rotation",
			cfg.loggers(), cfg.loggers()+1)
	}
	r := &RoLo{
		arr:         arr,
		cfg:         cfg,
		flavor:      flavor,
		spaces:      make([]*logspace.Space, arr.Geom.Pairs),
		dirty:       make([]intervals.Set, arr.Geom.Pairs),
		destagers:   make([]*array.Copier, arr.Geom.Pairs),
		destageLive: make([]bool, arr.Geom.Pairs),
		spinningUp:  -1,
	}
	for i := 0; i < cfg.loggers(); i++ {
		r.onDuty = append(r.onDuty, i)
	}
	for i := range r.spaces {
		sp, err := logspace.New(arr.LogRegionBytes())
		if err != nil {
			return nil, err
		}
		r.spaces[i] = sp
	}
	for i, m := range arr.Mirrors {
		if r.isOnDuty(i) {
			continue
		}
		if err := m.ForceState(disk.Standby); err != nil {
			return nil, fmt.Errorf("core: init mirror %d: %w", i, err)
		}
	}
	return r, nil
}

// isOnDuty reports whether logger i is currently on duty.
func (r *RoLo) isOnDuty(i int) bool {
	for _, d := range r.onDuty {
		if d == i {
			return true
		}
	}
	return false
}

// Responses returns response-time statistics.
func (r *RoLo) Responses() *metrics.ResponseStats { return &r.resp }

// SetTelemetry implements telemetry.Instrumented.
func (r *RoLo) SetTelemetry(rec *telemetry.Recorder) { r.tel = rec }

// TelemetryGauges implements telemetry.GaugeSource: log occupancy summed
// over every logger's space, and the stale bytes awaiting destage.
func (r *RoLo) TelemetryGauges() (logUsed, logCap, backlog int64) {
	for _, sp := range r.spaces {
		logUsed += sp.UsedBytes()
		logCap += sp.Capacity()
	}
	return logUsed, logCap, r.DirtyBytes()
}

// Rotations returns the number of logger rotations performed.
func (r *RoLo) Rotations() int { return r.rotations }

// DirectWrites returns how many writes bypassed logging because every
// logger was (nearly) full.
func (r *RoLo) DirectWrites() int { return r.directWrites }

// OnDuty returns the first on-duty logger index, or -1 when logging is
// deactivated.
func (r *RoLo) OnDuty() int {
	if len(r.onDuty) == 0 {
		return -1
	}
	return r.onDuty[0]
}

// OnDutyLoggers returns a copy of the on-duty logger indices.
func (r *RoLo) OnDutyLoggers() []int {
	out := make([]int, len(r.onDuty))
	copy(out, r.onDuty)
	return out
}

// DirtyBytes returns the total stale bytes awaiting destage.
func (r *RoLo) DirtyBytes() int64 {
	var t int64
	for i := range r.dirty {
		t += r.dirty[i].Total()
	}
	return t
}

// Submit implements array.Controller.
func (r *RoLo) Submit(rec trace.Record) error {
	exts, err := r.arr.Geom.Map(rec.Offset, rec.Size)
	if err != nil {
		return fmt.Errorf("%v: %w", r.flavor, err)
	}
	arrive := rec.At
	isWrite := rec.Op == trace.Write
	if r.tel != nil {
		r.tel.RequestStart(arrive, isWrite, rec.Size)
	}
	record := func(now sim.Time) {
		rt := now - arrive
		r.resp.AddClass(rt, isWrite)
		if r.tel != nil {
			r.tel.RequestDone(now, isWrite, rt)
		}
	}
	if rec.Op == trace.Read {
		join := array.NewJoin(len(exts), record)
		for _, e := range exts {
			io := r.arr.DataIO(e.Offset, e.Length, false, false)
			io.OnDone = join.Done
			// Primaries are always spinning in RoLo-P/R; mirrors are
			// mostly asleep or stale, so reads go to the primary. A
			// failed primary degrades to its mirror, which wakes
			// "silently" (Section III-C).
			target := r.arr.Primaries[e.Pair]
			if target.Failed() {
				target = r.arr.Mirrors[e.Pair]
			}
			if err := target.Submit(io); err != nil {
				return fmt.Errorf("%v: read: %w", r.flavor, err)
			}
		}
		return nil
	}

	// Write path: one copy to the primary's data region, plus one (P) or
	// two (R) sequential copies into an on-duty logging space.
	if len(r.onDuty) == 0 {
		// Logging deactivated (on-duty failure with no viable successor).
		err := r.directWrite(exts, record)
		r.reactivate()
		return err
	}
	logCopies := 1
	if r.flavor == FlavorR {
		logCopies = 2
	}
	allocs := r.allocScratch[:0]
	allOK := true
	for _, e := range exts {
		lg, a, ok := r.allocOnDuty(e.Length, e.Pair)
		if !ok {
			allOK = false
			break
		}
		allocs = append(allocs, placedAlloc{alloc: a, logger: lg})
	}
	r.allocScratch = allocs[:0]
	if !allOK {
		// Partial allocations stay tagged and are reclaimed with their
		// pair's next destage; they only waste a little space. Fall back
		// to direct mirrored writes for the whole request, and push the
		// rotation machinery so the logger moves on.
		err := r.directWrite(exts, record)
		r.checkRotation()
		return err
	}

	targets := r.targetScratch[:0]
	for i, e := range exts {
		prim := r.arr.Primaries[e.Pair]
		if prim.Failed() {
			// Degraded: the in-place copy goes to the mirror, which then
			// holds current data for this span.
			targets = append(targets, targetIO{
				disk: r.arr.Mirrors[e.Pair],
				io:   r.arr.DataIO(e.Offset, e.Length, true, false),
			})
			r.cleanDirty(e.Pair, e.Offset, e.Offset+e.Length)
		} else {
			targets = append(targets, targetIO{
				disk: prim,
				io:   r.arr.DataIO(e.Offset, e.Length, true, false),
			})
			r.markDirty(e.Pair, e.Offset, e.Offset+e.Length)
		}
		for c := 0; c < logCopies; c++ {
			target := r.arr.Mirrors[allocs[i].logger]
			if c == 1 {
				target = r.arr.Primaries[allocs[i].logger]
			} else if st := target.State(); st == disk.SpinningUp || st == disk.Standby {
				// Non-interrupted logging service (Section III-D): while a
				// freshly promoted logger is still waking — an emergency
				// failover is the only way an on-duty mirror can be cold —
				// the second copy lands in the log region of the logger
				// pair's primary, which is always spinning.
				if p := r.arr.Primaries[allocs[i].logger]; !p.Failed() {
					target = p
				}
			}
			targets = append(targets, targetIO{
				disk: target,
				io:   r.arr.LogIO(allocs[i].alloc.Offset, allocs[i].alloc.Length, true, false),
			})
		}
	}
	r.targetScratch = targets[:0]
	if err := r.submitSurviving(targets, record); err != nil {
		return err
	}
	r.checkRotation()
	return nil
}

// allocOnDuty places a log extent on the emptiest on-duty logger, falling
// back through the rest of the set.
func (r *RoLo) allocOnDuty(n int64, tag int) (logger int, a logspace.Alloc, ok bool) {
	order := append(r.orderScratch[:0], r.onDuty...)
	r.orderScratch = order[:0]
	// Emptiest first: balances fill level so rotations stagger.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && r.spaces[order[j]].FreeBytes() > r.spaces[order[j-1]].FreeBytes(); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, lg := range order {
		if a, ok := r.logAlloc(r.spaces[lg], n, tag); ok {
			return lg, a, true
		}
	}
	return -1, logspace.Alloc{}, false
}

// reactivate re-enables logging after deactivation (and tops the on-duty
// set back up) once reclamation frees a viable logger (Section III-E).
func (r *RoLo) reactivate() {
	for len(r.onDuty) < r.cfg.loggers() {
		next := r.pickNext()
		if next < 0 || r.arr.Mirrors[next].Failed() {
			return
		}
		r.onDuty = append(r.onDuty, next)
		r.rotations++
		if r.tel != nil {
			r.tel.Rotation(r.arr.Eng.Now(), next)
		}
		_ = r.arr.Mirrors[next].SpinUp()
		r.startDestage(next)
	}
}

// markDirty records staleness and feeds the live destager if pair p is
// currently being destaged.
//
// rolosan:audited
func (r *RoLo) markDirty(p int, start, end int64) {
	r.dirty[p].Add(start, end)
	if r.destageLive[p] && r.destagers[p] != nil {
		r.destagers[p].Kick()
	}
}

// directWrite is the deactivation fallback: write both copies in place,
// waking the target mirrors if needed (Section III-E).
func (r *RoLo) directWrite(exts []raid.Extent, record func(sim.Time)) error {
	r.directWrites++
	targets := r.targetScratch[:0]
	for _, e := range exts {
		for _, mirror := range [...]bool{false, true} {
			target := r.arr.Primaries[e.Pair]
			if mirror {
				target = r.arr.Mirrors[e.Pair]
			}
			targets = append(targets, targetIO{
				disk: target,
				io:   r.arr.DataIO(e.Offset, e.Length, true, false),
			})
		}
		// The surviving mirror copy is now current for this span.
		if !r.arr.Mirrors[e.Pair].Failed() {
			r.cleanDirty(e.Pair, e.Offset, e.Offset+e.Length)
		}
	}
	r.targetScratch = targets[:0]
	return r.submitSurviving(targets, record)
}

// checkRotation wakes the next logger ahead of time and rotates the
// fullest on-duty logger when it is nearly exhausted.
func (r *RoLo) checkRotation() {
	if len(r.onDuty) < r.cfg.loggers() {
		r.reactivate()
	}
	if len(r.onDuty) == 0 {
		return
	}
	// The fullest on-duty logger drives the rotation pipeline.
	slot := 0
	for i := range r.onDuty {
		if r.spaces[r.onDuty[i]].FreeBytes() < r.spaces[r.onDuty[slot]].FreeBytes() {
			slot = i
		}
	}
	free := r.spaces[r.onDuty[slot]].FreeFraction()
	if free >= r.cfg.SpinUpLeadFreeFraction {
		return
	}
	if r.spinningUp == -1 {
		if next := r.pickNext(); next >= 0 {
			r.spinningUp = next
			// Wake the mirror of the candidate logger; its primary
			// (needed by RoLo-R) is always up.
			_ = r.arr.Mirrors[next].SpinUp()
		}
	}
	if free >= r.cfg.RotateFreeFraction {
		return
	}
	if r.spinningUp < 0 {
		return
	}
	switch r.arr.Mirrors[r.spinningUp].State() {
	case disk.Idle, disk.Active:
		r.rotate(slot, r.spinningUp)
	case disk.Standby:
		// A racing spin-down beat the wake-up; try again.
		_ = r.arr.Mirrors[r.spinningUp].SpinUp()
	}
}

// pickNext selects the off-duty logger with the most reclaimed space,
// requiring it to beat the deactivation threshold.
func (r *RoLo) pickNext() int {
	best, bestFree := -1, int64(-1)
	for i, sp := range r.spaces {
		if r.isOnDuty(i) || i == r.spinningUp || r.arr.Mirrors[i].Failed() {
			continue
		}
		if f := sp.FreeBytes(); f > bestFree {
			best, bestFree = i, f
		}
	}
	if best >= 0 && r.spaces[best].FreeFraction() <= r.cfg.DeactivateFreeFraction {
		return -1
	}
	return best
}

// rotate replaces the on-duty logger in the given slot with `next` and
// triggers the decentralized destage for the newly on-duty pair.
func (r *RoLo) rotate(slot, next int) {
	prev := r.onDuty[slot]
	r.onDuty[slot] = next
	r.spinningUp = -1
	r.rotations++
	if r.tel != nil {
		r.tel.Rotation(r.arr.Eng.Now(), next)
	}

	r.startDestage(next)

	// The previous logger spins down once the destage that writes to it
	// (its own pair's) finishes and it has drained.
	r.maybeSleepMirror(prev)
}

// startDestage begins (or resumes) the background destage for pair p: its
// stale spans are copied from its primary to its mirror in idle time slots.
// A pair with a failed disk cannot destage; its dirt waits for Rebuild.
func (r *RoLo) startDestage(p int) {
	if r.destageLive[p] || r.arr.Primaries[p].Failed() || r.arr.Mirrors[p].Failed() {
		return
	}
	r.destageLive[p] = true
	if r.tel != nil {
		r.tel.DestageStart(r.arr.Eng.Now(), p)
	}
	if r.destagers[p] == nil {
		r.destagers[p] = array.NewCopier(r.arr.Eng,
			r.arr.Primaries[p], []*disk.Disk{r.arr.Mirrors[p]},
			&r.dirty[p], r.cfg.DestageChunkBytes,
			func(sp intervals.Span) *disk.IO { return r.arr.DataIO(sp.Start, sp.Len(), false, true) },
			func(sp intervals.Span) *disk.IO { return r.arr.DataIO(sp.Start, sp.Len(), true, true) },
		)
		r.destagers[p].OnDrained = func(at sim.Time) { r.destageDrained(p, at) }
	}
	r.destagers[p].Kick()
}

// destageDrained fires when pair p's dirty set empties: every logged copy
// written on behalf of pair p is now stale, so its extents are reclaimed on
// every logger (the proactive reclamation of Section III-A).
func (r *RoLo) destageDrained(p int, at sim.Time) {
	if !r.destageLive[p] {
		return
	}
	r.destageLive[p] = false
	if r.tel != nil {
		r.tel.DestageDone(at, p)
	}
	var freed int64
	for _, sp := range r.spaces {
		freed += r.releaseTag(sp, p)
	}
	if r.tel != nil && freed > 0 {
		r.tel.LogInvalidate(at, p, freed)
	}
	r.maybeSleepMirror(p)
}

// maybeSleepMirror spins down mirror m when it is off-duty and its pair's
// destage has completed.
func (r *RoLo) maybeSleepMirror(m int) {
	if r.isOnDuty(m) || m == r.spinningUp || r.destageLive[m] {
		return
	}
	array.SpinDownWhenIdle(r.arr.Eng, r.arr.Mirrors[m], r.cfg.SpinDownRetry, func() bool {
		return !r.isOnDuty(m) && m != r.spinningUp && !r.destageLive[m] && !r.closed
	})
}

// Close implements array.Controller.
func (r *RoLo) Close(sim.Time) {
	r.closed = true
}

// CheckErr returns the first destager addressing error, if any. Tests call
// this to assert the run was internally consistent.
func (r *RoLo) CheckErr() error {
	for p, cp := range r.destagers {
		if cp != nil && cp.Err() != nil {
			return fmt.Errorf("%v: destager %d: %w", r.flavor, p, cp.Err())
		}
	}
	return nil
}
