package core

import (
	"testing"

	"github.com/rolo-storage/rolo/internal/disk"
	"github.com/rolo-storage/rolo/internal/sim"
)

func TestMultiLoggerValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OnDutyLoggers = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative logger count accepted")
	}
	a, _ := testArray(t, 4)
	cfg = DefaultConfig()
	cfg.OnDutyLoggers = 4 // no pair left to rotate to
	if _, err := New(a, FlavorP, cfg); err == nil {
		t.Error("logger count == pairs accepted")
	}
}

func TestMultiLoggerInitialStates(t *testing.T) {
	a, _ := testArray(t, 4)
	cfg := scaledConfig()
	cfg.OnDutyLoggers = 2
	r, err := New(a, FlavorP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	duty := r.OnDutyLoggers()
	if len(duty) != 2 {
		t.Fatalf("on-duty set = %v, want 2 loggers", duty)
	}
	for _, i := range duty {
		if a.Mirrors[i].State() != disk.Idle {
			t.Fatalf("on-duty mirror %d state = %v", i, a.Mirrors[i].State())
		}
	}
	for i := 2; i < 4; i++ {
		if a.Mirrors[i].State() != disk.Standby {
			t.Fatalf("off-duty mirror %d state = %v", i, a.Mirrors[i].State())
		}
	}
}

func TestMultiLoggerSharesLogTraffic(t *testing.T) {
	a, eng := testArray(t, 4)
	cfg := scaledConfig()
	cfg.OnDutyLoggers = 2
	r, err := New(a, FlavorP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs := writeRecs(256, 64<<10, 10*sim.Millisecond)
	replay(t, eng, a, r, recs)
	if err := r.CheckErr(); err != nil {
		t.Fatal(err)
	}
	w0 := a.Mirrors[0].Stats().BytesWritten
	w1 := a.Mirrors[1].Stats().BytesWritten
	if w0 == 0 || w1 == 0 {
		t.Fatalf("log traffic not shared: %d / %d", w0, w1)
	}
	// Emptiest-first placement keeps the two loggers roughly balanced.
	ratio := float64(w0) / float64(w1)
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("log balance ratio = %.2f (w0=%d w1=%d)", ratio, w0, w1)
	}
}

func TestMultiLoggerRotatesIndependently(t *testing.T) {
	a, eng := testArray(t, 4)
	cfg := scaledConfig()
	cfg.OnDutyLoggers = 2
	r, err := New(a, FlavorP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Enough volume to force rotations of the shared pool
	// (2 loggers x 64 MB).
	recs := writeRecs(4800, 64<<10, 15*sim.Millisecond)
	replay(t, eng, a, r, recs)
	if err := r.CheckErr(); err != nil {
		t.Fatal(err)
	}
	if r.Rotations() < 2 {
		t.Fatalf("rotations = %d, want >= 2", r.Rotations())
	}
	duty := r.OnDutyLoggers()
	if len(duty) != 2 {
		t.Fatalf("on-duty set shrank to %v", duty)
	}
	if duty[0] == duty[1] {
		t.Fatalf("duplicate on-duty logger: %v", duty)
	}
}

func TestMultiLoggerFailureShrinksAndRefills(t *testing.T) {
	a, eng := testArray(t, 4)
	cfg := scaledConfig()
	cfg.OnDutyLoggers = 2
	r, err := New(a, FlavorP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs := writeRecs(32, 64<<10, 10*sim.Millisecond)
	replay(t, eng, a, r, recs)
	victim := r.OnDutyLoggers()[0]
	plan, err := r.FailMirror(victim)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NewOnDuty < 0 {
		t.Fatalf("no successor: %+v", plan)
	}
	duty := r.OnDutyLoggers()
	if len(duty) != 2 {
		t.Fatalf("on-duty set = %v after failover, want 2", duty)
	}
	for _, d := range duty {
		if d == victim {
			t.Fatalf("failed logger still on duty: %v", duty)
		}
	}
	eng.Run()
}
