package core

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/rolo-storage/rolo/internal/array"
	"github.com/rolo-storage/rolo/internal/disk"
	"github.com/rolo-storage/rolo/internal/raid"
	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/trace"
)

// checkRoLoInvariants asserts the structural invariants that must hold at
// any instant of a RoLo-P/R run, healthy or degraded:
//
//  1. every logspace allocator balances (free + used = capacity, no
//     overlapping extents);
//  2. the on-duty set contains no failed or duplicate loggers;
//  3. a clean pair (no dirty spans) holds no live log extents anywhere,
//     unless direct writes occurred (which clean dirt without touching
//     logs) or a logger failure discarded extents;
//  4. a live destage only runs for pairs with a healthy primary.
func checkRoLoInvariants(t *testing.T, r *RoLo, allowStaleTags bool) {
	t.Helper()
	for i, sp := range r.spaces {
		if err := sp.CheckInvariants(); err != nil {
			t.Fatalf("logger %d: %v", i, err)
		}
	}
	seen := map[int]bool{}
	for _, d := range r.onDuty {
		if seen[d] {
			t.Fatalf("duplicate on-duty logger %d in %v", d, r.onDuty)
		}
		seen[d] = true
		if r.arr.Mirrors[d].Failed() {
			t.Fatalf("failed mirror %d is on duty", d)
		}
	}
	if !allowStaleTags {
		for p := 0; p < r.arr.Geom.Pairs; p++ {
			if !r.dirty[p].Empty() {
				continue
			}
			for i, sp := range r.spaces {
				if got := sp.TagBytes(p); got != 0 {
					t.Fatalf("pair %d clean but logger %d holds %d bytes", p, i, got)
				}
			}
		}
	}
	for p, live := range r.destageLive {
		if live && r.arr.Primaries[p].Failed() {
			t.Fatalf("destage live for pair %d with failed primary", p)
		}
	}
}

// TestRoLoRandomOpsInvariants drives RoLo with randomized traffic and
// periodically validates the invariants. This is the closest thing to a
// model checker the simulator has: rotations, destages, reclamation and
// the deactivation fallback all interleave.
func TestRoLoRandomOpsInvariants(t *testing.T) {
	for _, flavor := range []Flavor{FlavorP, FlavorR} {
		for seed := int64(1); seed <= 3; seed++ {
			flavor, seed := flavor, seed
			t.Run(fmt.Sprintf("%v/seed%d", flavor, seed), func(t *testing.T) {
				a, eng := testArray(t, 4)
				r, err := New(a, flavor, scaledConfig())
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(seed))
				volume := a.Geom.VolumeBytes()
				at := sim.Time(0)
				for i := 0; i < 2000; i++ {
					at += sim.Time(rng.Intn(int(20 * sim.Millisecond)))
					rec := trace.Record{
						At:     at,
						Op:     trace.Write,
						Offset: (rng.Int63n(volume/8192-16) * 8192),
						Size:   int64(rng.Intn(16)+1) * 8192,
					}
					if rng.Intn(10) == 0 {
						rec.Op = trace.Read
					}
					if _, err := eng.Schedule(rec.At, func(sim.Time) {
						if err := r.Submit(rec); err != nil {
							t.Errorf("submit: %v", err)
						}
					}); err != nil {
						t.Fatal(err)
					}
				}
				// Validate at 64 checkpoints during the run.
				step := at / 64
				for c := sim.Time(step); c <= at; c += step {
					eng.RunUntil(c)
					checkRoLoInvariants(t, r, r.DirectWrites() > 0)
				}
				eng.Run()
				checkRoLoInvariants(t, r, r.DirectWrites() > 0)
				if err := r.CheckErr(); err != nil {
					t.Fatal(err)
				}
				if got := r.Responses().Count(); got != 2000 {
					t.Fatalf("responses = %d, want 2000", got)
				}
			})
		}
	}
}

// TestRoLoFailureInjectionInvariants interleaves traffic with random disk
// failures and rebuilds, validating the degraded-mode invariants and that
// no request is ever lost.
func TestRoLoFailureInjectionInvariants(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			eng := sim.New()
			geom := raid.Geometry{Pairs: 6, StripeUnitBytes: 64 << 10, DataBytesPerDisk: 128 << 20}
			a, err := array.New(eng, geom, disk.Ultrastar36Z15().WithCapacity(192<<20), 0)
			if err != nil {
				t.Fatal(err)
			}
			r, err := New(a, FlavorP, scaledConfig())
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed))
			volume := geom.VolumeBytes()
			const n = 1500
			at := sim.Time(0)
			for i := 0; i < n; i++ {
				at += sim.Time(rng.Intn(int(30 * sim.Millisecond)))
				rec := trace.Record{
					At:     at,
					Op:     trace.Write,
					Offset: rng.Int63n(volume/8192-16) * 8192,
					Size:   int64(rng.Intn(16)+1) * 8192,
				}
				if _, err := eng.Schedule(rec.At, func(sim.Time) {
					if err := r.Submit(rec); err != nil {
						t.Errorf("submit at %v: %v", rec.At, err)
					}
				}); err != nil {
					t.Fatal(err)
				}
			}
			// Inject failures and rebuilds at random instants, at most one
			// failed disk per pair so data survives.
			failedMirror := map[int]bool{}
			failedPrimary := map[int]bool{}
			for i := 0; i < 4; i++ {
				failAt := sim.Time(rng.Int63n(int64(at)))
				if _, err := eng.Schedule(failAt, func(now sim.Time) {
					p := rng.Intn(geom.Pairs)
					if failedMirror[p] || failedPrimary[p] {
						return
					}
					if rng.Intn(2) == 0 {
						if _, err := r.FailMirror(p); err == nil {
							failedMirror[p] = true
							eng.After(20*sim.Second, func(sim.Time) {
								if err := r.Rebuild(p, true, nil); err == nil {
									failedMirror[p] = false
								}
							})
						}
					} else {
						if _, err := r.FailPrimary(p); err == nil {
							failedPrimary[p] = true
							eng.After(20*sim.Second, func(sim.Time) {
								if err := r.Rebuild(p, false, nil); err == nil {
									failedPrimary[p] = false
								}
							})
						}
					}
				}); err != nil {
					t.Fatal(err)
				}
			}
			step := at / 32
			for c := step; c <= at; c += step {
				eng.RunUntil(c)
				// Failures legitimately strand log extents of clean pairs,
				// so the stale-tag invariant is waived.
				checkRoLoInvariants(t, r, true)
			}
			eng.Run()
			checkRoLoInvariants(t, r, true)
			if got := r.Responses().Count(); got != n {
				t.Fatalf("responses = %d, want %d: requests were lost", got, n)
			}
		})
	}
}
