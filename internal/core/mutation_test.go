package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/rolo-storage/rolo/internal/array"
	"github.com/rolo-storage/rolo/internal/invariant"
	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/trace"
)

// These are RoloSan's mutation tests: each test seeds one deliberate
// corruption of the bookkeeping — the kind of bug the sanitizer exists to
// catch — and asserts that it is detected with the right invariant family
// in the diagnostic. The clean-run tests at the bottom are the flip side:
// legitimate fault injection (disk failures, rebuilds, mid-destage
// traffic) must NOT trip the sanitizer.

// attachSanitizer wires a sanitizer to a controller the same way rolo.Run
// does for Config.Check.
func attachSanitizer(scheme string, eng *sim.Engine, a *array.Array, src invariant.Source, at invariant.Attachable) *invariant.Sanitizer {
	san := invariant.New(scheme, eng)
	san.SetSweepEvery(64)
	san.SetSource(src)
	at.SetSanitizer(san.Audit())
	san.WatchDisks(a.AllDisks(), false)
	san.Install()
	return san
}

// wantViolation asserts that the sanitizer tripped, with the expected
// invariant family and a diagnostic mentioning frag.
func wantViolation(t *testing.T, san *invariant.Sanitizer, check, frag string) {
	t.Helper()
	if san.Err() == nil {
		t.Fatalf("corruption went undetected (want %s violation)", check)
	}
	v := san.Violations()[0]
	if v.Check != check {
		t.Fatalf("violation family = %q, want %q (%v)", v.Check, check, v)
	}
	if !strings.Contains(v.Error(), frag) {
		t.Fatalf("diagnostic %q does not mention %q", v.Error(), frag)
	}
}

// TestMutationUnauditedAlloc allocates log space behind the audited
// helpers' back; the conservation sweep must notice ledger divergence.
func TestMutationUnauditedAlloc(t *testing.T) {
	a, eng := testArray(t, 4)
	r, err := New(a, FlavorP, scaledConfig())
	if err != nil {
		t.Fatal(err)
	}
	san := attachSanitizer("RoLo-P", eng, a, r, r)

	if _, ok := r.spaces[0].Alloc(8192, 3); !ok { // bypasses r.logAlloc
		t.Fatal("direct alloc failed")
	}
	san.Final(eng.Now())
	wantViolation(t, san, "conservation", "bypassed the audited helpers")
}

// TestMutationEarlyRelease reclaims a pair's log extents while the pair
// still has dirty bytes — the reclamation-safety rule (paper §III-E: only
// a drained destage may release).
func TestMutationEarlyRelease(t *testing.T) {
	a, eng := testArray(t, 4)
	r, err := New(a, FlavorP, scaledConfig())
	if err != nil {
		t.Fatal(err)
	}
	san := attachSanitizer("RoLo-P", eng, a, r, r)

	sp := r.spaces[0]
	if _, ok := r.logAlloc(sp, 8192, 2); !ok {
		t.Fatal("log alloc failed")
	}
	r.markDirty(2, 0, 8192)
	r.releaseTag(sp, 2) // destage never drained: live log copies reclaimed
	wantViolation(t, san, "recoverability", "dirty bytes outstanding")
}

// TestMutationMidDestageReset resets a RoLo-E log that still covers dirty
// spans — under RoLo-E the log holds the only current copy, so this is
// data loss (the exact bug class the centralized-destage write path must
// avoid).
func TestMutationMidDestageReset(t *testing.T) {
	a, eng := testArray(t, 4)
	e, err := NewE(a, DefaultEConfig())
	if err != nil {
		t.Fatal(err)
	}
	san := attachSanitizer("RoLo-E", eng, a, e, e)

	e.markDirty(0, 0, 4096)
	e.resetSpace(e.spaces[0])
	wantViolation(t, san, "recoverability", "only copy was logged")
}

// TestMutationPhantomDirty marks a span dirty with no log backing, then
// fails the pair's primary: no valid source remains for the span and the
// recoverability sweep must report the double exposure.
func TestMutationPhantomDirty(t *testing.T) {
	a, eng := testArray(t, 4)
	r, err := New(a, FlavorP, scaledConfig())
	if err != nil {
		t.Fatal(err)
	}
	san := attachSanitizer("RoLo-P", eng, a, r, r)

	r.markDirty(1, 0, 1<<20)
	a.Primaries[1].Fail()
	san.Final(eng.Now())
	wantViolation(t, san, "recoverability", "failed primary")
}

// TestMutationForbiddenSpinDown watches disks under the RAID10 policy
// (power-unmanaged: no spin-downs, ever) and spins one down anyway.
func TestMutationForbiddenSpinDown(t *testing.T) {
	a, eng := testArray(t, 4)
	san := invariant.New("RAID10", eng)
	san.WatchDisks(a.AllDisks(), true)
	san.Install()

	if err := a.Primaries[2].SpinDown(); err != nil {
		t.Fatal(err)
	}
	wantViolation(t, san, "state-machine", "no spin-downs")
}

// TestSanitizerCleanUnderFailureInjection re-runs the failure-injection
// scenario — random traffic interleaved with disk failures and rebuilds,
// destages and rotations mid-flight — with the sanitizer attached. All of
// that is legitimate; any violation is a sanitizer false positive (or a
// real controller bug).
func TestSanitizerCleanUnderFailureInjection(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			a, eng := testArray(t, 4)
			r, err := New(a, FlavorP, scaledConfig())
			if err != nil {
				t.Fatal(err)
			}
			san := attachSanitizer("RoLo-P", eng, a, r, r)

			rng := rand.New(rand.NewSource(seed))
			volume := a.Geom.VolumeBytes()
			at := sim.Time(0)
			for i := 0; i < 1200; i++ {
				at += sim.Time(rng.Intn(int(25 * sim.Millisecond)))
				rec := trace.Record{
					At:     at,
					Op:     trace.Write,
					Offset: rng.Int63n(volume/8192-16) * 8192,
					Size:   int64(rng.Intn(16)+1) * 8192,
				}
				if _, err := eng.Schedule(rec.At, func(sim.Time) {
					if err := r.Submit(rec); err != nil {
						t.Errorf("submit: %v", err)
					}
				}); err != nil {
					t.Fatal(err)
				}
			}
			failed := map[int]bool{}
			for i := 0; i < 3; i++ {
				failAt := sim.Time(rng.Int63n(int64(at)))
				if _, err := eng.Schedule(failAt, func(now sim.Time) {
					p := rng.Intn(a.Geom.Pairs)
					if failed[p] {
						return
					}
					mirror := rng.Intn(2) == 0
					var ferr error
					if mirror {
						_, ferr = r.FailMirror(p)
					} else {
						_, ferr = r.FailPrimary(p)
					}
					if ferr == nil {
						failed[p] = true
						eng.After(15*sim.Second, func(sim.Time) {
							if err := r.Rebuild(p, mirror, nil); err == nil {
								failed[p] = false
							}
						})
					}
				}); err != nil {
					t.Fatal(err)
				}
			}
			eng.Run()
			san.Final(eng.Now())
			if err := san.Err(); err != nil {
				t.Fatalf("sanitizer tripped on a legitimate faulty run: %v", err)
			}
			if san.Events() == 0 || san.Sweeps() == 0 {
				t.Fatalf("sanitizer saw %d events, %d sweeps: not wired", san.Events(), san.Sweeps())
			}
		})
	}
}

// TestSanitizerCleanRoLoEDestage drives RoLo-E hard enough to force
// centralized destages with writes continuing to arrive mid-destage, all
// under the sanitizer.
func TestSanitizerCleanRoLoEDestage(t *testing.T) {
	a, eng := testArray(t, 4)
	e, err := NewE(a, DefaultEConfig())
	if err != nil {
		t.Fatal(err)
	}
	san := attachSanitizer("RoLo-E", eng, a, e, e)

	recs := writeRecs(3200, 64<<10, 20*sim.Millisecond)
	replay(t, eng, a, e, recs)
	san.Final(eng.Now())
	if err := san.Err(); err != nil {
		t.Fatalf("sanitizer tripped on a clean destaging run: %v", err)
	}
	if e.Destages() == 0 {
		t.Fatal("workload never triggered a centralized destage; the test proves nothing")
	}
	if san.Events() == 0 || san.Sweeps() == 0 {
		t.Fatalf("sanitizer saw %d events, %d sweeps: not wired", san.Events(), san.Sweeps())
	}
}
