package core

import (
	"testing"

	"github.com/rolo-storage/rolo/internal/disk"
	"github.com/rolo-storage/rolo/internal/sim"
)

func TestRoLoEMultiPairValidation(t *testing.T) {
	cfg := DefaultEConfig()
	cfg.OnDutyPairs = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative pair count accepted")
	}
	a, _ := testArray(t, 4)
	cfg = DefaultEConfig()
	cfg.OnDutyPairs = 4
	if _, err := NewE(a, cfg); err == nil {
		t.Error("pair count == pairs accepted")
	}
}

func TestRoLoEMultiPairInitialStates(t *testing.T) {
	a, _ := testArray(t, 4)
	cfg := DefaultEConfig()
	cfg.OnDutyPairs = 2
	e, err := NewE(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	duty := e.OnDutyPairs()
	if len(duty) != 2 {
		t.Fatalf("on-duty pairs = %v", duty)
	}
	awake := 0
	for _, d := range a.AllDisks() {
		if d.State() == disk.Idle {
			awake++
		}
	}
	if awake != 4 {
		t.Fatalf("%d disks awake, want 4 (two pairs)", awake)
	}
}

func TestRoLoEMultiPairSharesLogWrites(t *testing.T) {
	a, eng := testArray(t, 4)
	cfg := DefaultEConfig()
	cfg.OnDutyPairs = 2
	e, err := NewE(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs := writeRecs(256, 64<<10, 10*sim.Millisecond)
	replay(t, eng, a, e, recs)
	w0 := a.Primaries[0].Stats().BytesWritten + a.Mirrors[0].Stats().BytesWritten
	w1 := a.Primaries[1].Stats().BytesWritten + a.Mirrors[1].Stats().BytesWritten
	if w0 == 0 || w1 == 0 {
		t.Fatalf("log writes not shared: pair0=%d pair1=%d", w0, w1)
	}
	ratio := float64(w0) / float64(w1)
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("log balance ratio = %.2f", ratio)
	}
	// Off-duty pairs untouched during logging.
	for p := 2; p < 4; p++ {
		if a.Primaries[p].Stats().BytesWritten != 0 {
			t.Fatalf("off-duty pair %d written during logging", p)
		}
	}
}

func TestRoLoEMultiPairRotationKeepsDistinct(t *testing.T) {
	a, eng := testArray(t, 4)
	cfg := DefaultEConfig()
	cfg.OnDutyPairs = 2
	e, err := NewE(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Enough volume for at least one centralized destage of the pooled
	// 2 x 48 MB log space.
	recs := writeRecs(2400, 64<<10, 15*sim.Millisecond)
	replay(t, eng, a, e, recs)
	if e.Destages() < 1 {
		t.Fatalf("destages = %d", e.Destages())
	}
	duty := e.OnDutyPairs()
	if len(duty) != 2 || duty[0] == duty[1] {
		t.Fatalf("on-duty pairs degenerate after rotation: %v", duty)
	}
}
