package core

import (
	"fmt"

	"github.com/rolo-storage/rolo/internal/array"
	"github.com/rolo-storage/rolo/internal/cache"
	"github.com/rolo-storage/rolo/internal/disk"
	"github.com/rolo-storage/rolo/internal/intervals"
	"github.com/rolo-storage/rolo/internal/invariant"
	"github.com/rolo-storage/rolo/internal/logspace"
	"github.com/rolo-storage/rolo/internal/metrics"
	"github.com/rolo-storage/rolo/internal/raid"
	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/telemetry"
	"github.com/rolo-storage/rolo/internal/trace"
)

// EConfig parameterizes the RoLo-E controller.
type EConfig struct {
	// DestageFreeFraction triggers the centralized destage when the
	// on-duty logging space's free fraction falls below it.
	DestageFreeFraction float64
	// CacheFraction is the share of the logging region reserved for the
	// popular-read-block cache.
	CacheFraction float64
	// CacheBlockBytes is the granularity of the read cache.
	CacheBlockBytes int64
	// MissIdleSpinDown is how long a miss-awakened disk stays up after
	// its last foreground I/O before spinning back down.
	MissIdleSpinDown sim.Time
	// DestageChunkBytes caps each destage copy I/O.
	DestageChunkBytes int64
	// SpinDownRetry is the retry interval for deferred spin-downs.
	SpinDownRetry sim.Time
	// OnDutyPairs is how many mirrored pairs serve as log disks at once
	// (the paper's "one or several mirrored disk pairs"). Zero means one.
	OnDutyPairs int
}

// DefaultEConfig returns the configuration used in the evaluation.
func DefaultEConfig() EConfig {
	return EConfig{
		DestageFreeFraction: 0.10,
		CacheFraction:       0.25,
		CacheBlockBytes:     64 << 10,
		MissIdleSpinDown:    sim.Minute,
		DestageChunkBytes:   256 << 10,
		SpinDownRetry:       sim.Second,
	}
}

// Validate reports configuration errors.
func (c EConfig) Validate() error {
	switch {
	case c.DestageFreeFraction <= 0 || c.DestageFreeFraction >= 1:
		return fmt.Errorf("core: destage threshold %g outside (0,1)", c.DestageFreeFraction)
	case c.CacheFraction < 0 || c.CacheFraction >= 1:
		return fmt.Errorf("core: cache fraction %g outside [0,1)", c.CacheFraction)
	case c.CacheBlockBytes <= 0:
		return fmt.Errorf("core: non-positive cache block %d", c.CacheBlockBytes)
	case c.MissIdleSpinDown <= 0:
		return fmt.Errorf("core: non-positive miss idle timeout %v", c.MissIdleSpinDown)
	case c.DestageChunkBytes <= 0:
		return fmt.Errorf("core: non-positive destage chunk %d", c.DestageChunkBytes)
	case c.SpinDownRetry <= 0:
		return fmt.Errorf("core: non-positive spin-down retry %v", c.SpinDownRetry)
	case c.OnDutyPairs < 0:
		return fmt.Errorf("core: negative on-duty pair count %d", c.OnDutyPairs)
	}
	return nil
}

// pairs returns the effective on-duty pair count.
func (c EConfig) pairs() int {
	if c.OnDutyPairs <= 0 {
		return 1
	}
	return c.OnDutyPairs
}

// RoLoE is the energy-oriented flavor: only the on-duty mirrored pair
// spins; it logs both copies of every write and caches popular read blocks
// in its logging space. A read miss pays a disk spin-up; a full log forces
// a centralized destage that wakes the whole array.
type RoLoE struct {
	arr *array.Array
	cfg EConfig

	onDuty []int // on-duty pair indices (usually one)
	// spaces[i] is the logging allocator of on-duty slot i; it moves with
	// the slot across rotations (each destage resets it).
	spaces []*logspace.Space
	// dirty[p]: spans of pair p's data region whose only current copy
	// lives in the on-duty log.
	dirty []intervals.Set

	readCache  *cache.LRU
	cacheBytes int64 // reserved cache capacity (informational)

	destaging bool

	resp  metrics.ResponseStats
	phase metrics.PhaseLog
	tel   *telemetry.Recorder

	lastFG    []sim.Time // per disk id, last foreground completion
	rotations int
	destages  int
	readHits  int64
	readMiss  int64
	overflow  int64 // writes bypassing the log during destage
	closed    bool

	// allocScratch backs submitWrite's placement list; the list is fully
	// consumed before Submit returns, so the array is reused per request
	// (DESIGN §11).
	allocScratch []placedSlot

	san *invariant.Audit // nil unless a sanitizer is attached (audit.go)
}

// placedSlot records where one extent's log copy was placed.
type placedSlot struct {
	alloc logspace.Alloc
	slot  int
}

var (
	_ array.Controller       = (*RoLoE)(nil)
	_ telemetry.Instrumented = (*RoLoE)(nil)
	_ telemetry.GaugeSource  = (*RoLoE)(nil)
)

// NewE builds a RoLo-E controller. Pair 0 starts on duty; every other disk
// is placed in Standby.
func NewE(arr *array.Array, cfg EConfig) (*RoLoE, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if arr.LogRegionBytes() <= 0 {
		return nil, fmt.Errorf("core: array has no logging region")
	}
	if arr.Geom.Pairs < 2 {
		return nil, fmt.Errorf("core: rotation needs >= 2 pairs, have %d", arr.Geom.Pairs)
	}
	if cfg.pairs() >= arr.Geom.Pairs {
		return nil, fmt.Errorf("core: %d on-duty pairs need at least %d pairs for rotation",
			cfg.pairs(), cfg.pairs()+1)
	}
	region := arr.LogRegionBytes()
	cacheBytes := int64(float64(region) * cfg.CacheFraction)
	logBytes := region - cacheBytes
	if logBytes <= 0 {
		return nil, fmt.Errorf("core: cache fraction %g leaves no log space", cfg.CacheFraction)
	}
	lru, err := cache.NewLRU(int(cacheBytes / cfg.CacheBlockBytes * int64(cfg.pairs())))
	if err != nil {
		return nil, err
	}
	e := &RoLoE{
		arr:        arr,
		cfg:        cfg,
		dirty:      make([]intervals.Set, arr.Geom.Pairs),
		readCache:  lru,
		cacheBytes: cacheBytes,
		lastFG:     make([]sim.Time, 2*arr.Geom.Pairs),
	}
	for i := 0; i < cfg.pairs(); i++ {
		e.onDuty = append(e.onDuty, i)
		space, err := logspace.New(logBytes)
		if err != nil {
			return nil, err
		}
		e.spaces = append(e.spaces, space)
	}
	for p := 0; p < arr.Geom.Pairs; p++ {
		if e.isOnDuty(p) {
			continue
		}
		if err := arr.Primaries[p].ForceState(disk.Standby); err != nil {
			return nil, fmt.Errorf("core: init primary %d: %w", p, err)
		}
		if err := arr.Mirrors[p].ForceState(disk.Standby); err != nil {
			return nil, fmt.Errorf("core: init mirror %d: %w", p, err)
		}
	}
	e.phase.Begin(metrics.Logging, arr.Eng.Now(), arr.TotalEnergyJ())
	return e, nil
}

// Responses returns response-time statistics.
func (e *RoLoE) Responses() *metrics.ResponseStats { return &e.resp }

// SetTelemetry implements telemetry.Instrumented.
func (e *RoLoE) SetTelemetry(rec *telemetry.Recorder) { e.tel = rec }

// TelemetryGauges implements telemetry.GaugeSource: occupancy of the
// on-duty logging spaces and the bytes whose only current copy is logged.
func (e *RoLoE) TelemetryGauges() (logUsed, logCap, backlog int64) {
	for _, sp := range e.spaces {
		logUsed += sp.UsedBytes()
		logCap += sp.Capacity()
	}
	for i := range e.dirty {
		backlog += e.dirty[i].Total()
	}
	return logUsed, logCap, backlog
}

// Phases returns the logging/destaging phase log.
func (e *RoLoE) Phases() *metrics.PhaseLog { return &e.phase }

// ReadHitRate returns the fraction of reads served by the on-duty pair
// (the paper's Table V metric).
func (e *RoLoE) ReadHitRate() float64 {
	total := e.readHits + e.readMiss
	if total == 0 {
		return 0
	}
	return float64(e.readHits) / float64(total)
}

// ReadHits returns the number of reads served without a spin-up.
func (e *RoLoE) ReadHits() int64 { return e.readHits }

// ReadMisses returns the number of reads that needed an off-duty disk.
func (e *RoLoE) ReadMisses() int64 { return e.readMiss }

// Destages returns the number of centralized destages.
func (e *RoLoE) Destages() int { return e.destages }

// Rotations returns the number of on-duty pair rotations.
func (e *RoLoE) Rotations() int { return e.rotations }

// Overflows returns the number of writes that bypassed the log because a
// destage was reclaiming it.
func (e *RoLoE) Overflows() int64 { return e.overflow }

// isOnDuty reports whether pair p currently serves as a logger.
func (e *RoLoE) isOnDuty(p int) bool {
	for _, d := range e.onDuty {
		if d == p {
			return true
		}
	}
	return false
}

// OnDutyPairs returns a copy of the on-duty pair indices.
func (e *RoLoE) OnDutyPairs() []int {
	out := make([]int, len(e.onDuty))
	copy(out, e.onDuty)
	return out
}

// slotDisks returns on-duty slot i's pair ordered (primary, mirror).
func (e *RoLoE) slotDisks(i int) (*disk.Disk, *disk.Disk) {
	return e.arr.Primaries[e.onDuty[i]], e.arr.Mirrors[e.onDuty[i]]
}

// allocSlot places a log extent on the emptiest on-duty slot.
func (e *RoLoE) allocSlot(n int64, tag int) (int, logspace.Alloc, bool) {
	best := -1
	for i := range e.spaces {
		if best == -1 || e.spaces[i].FreeBytes() > e.spaces[best].FreeBytes() {
			best = i
		}
	}
	for off := 0; off < len(e.spaces); off++ {
		i := (best + off) % len(e.spaces)
		if a, ok := e.logAlloc(e.spaces[i], n, tag); ok {
			return i, a, true
		}
	}
	return -1, logspace.Alloc{}, false
}

// hitTarget picks the least-loaded disk across all on-duty pairs.
func (e *RoLoE) hitTarget() *disk.Disk {
	var best *disk.Disk
	for i := range e.onDuty {
		prim, mirr := e.slotDisks(i)
		for _, d := range [...]*disk.Disk{prim, mirr} {
			if best == nil || d.QueueLen() < best.QueueLen() {
				best = d
			}
		}
	}
	return best
}

// Submit implements array.Controller.
func (e *RoLoE) Submit(rec trace.Record) error {
	exts, err := e.arr.Geom.Map(rec.Offset, rec.Size)
	if err != nil {
		return fmt.Errorf("RoLo-E: %w", err)
	}
	arrive := rec.At
	isWrite := rec.Op == trace.Write
	if e.tel != nil {
		e.tel.RequestStart(arrive, isWrite, rec.Size)
	}
	record := func(now sim.Time) {
		rt := now - arrive
		e.resp.AddClass(rt, isWrite)
		if e.tel != nil {
			e.tel.RequestDone(now, isWrite, rt)
		}
	}
	if rec.Op == trace.Write {
		return e.submitWrite(rec, exts, record)
	}
	return e.submitRead(rec, exts, record)
}

func (e *RoLoE) submitWrite(rec trace.Record, exts []raid.Extent, record func(sim.Time)) error {
	// Writes invalidate any cached copies of the blocks they touch.
	for b := rec.Offset / e.cfg.CacheBlockBytes; b <= (rec.End()-1)/e.cfg.CacheBlockBytes; b++ {
		e.readCache.Remove(b)
	}

	allocs := e.allocScratch[:0]
	// While the centralized destage is reclaiming the log, nothing may be
	// logged: a copy logged now would be destroyed by the reset at the end
	// of the destage while its dirty span persisted — the log would no
	// longer cover every dirty byte. The array is fully awake during a
	// destage anyway, so these writes take the in-place path below.
	allOK := !e.destaging
	for _, ext := range exts {
		if !allOK {
			break
		}
		slot, a, ok := e.allocSlot(ext.Length, ext.Pair)
		if !ok {
			allOK = false
			break
		}
		allocs = append(allocs, placedSlot{alloc: a, slot: slot})
	}
	e.allocScratch = allocs[:0]
	if !allOK {
		// Log full or mid-destage: the whole array is awake (or waking),
		// so write both copies in place.
		e.overflow++
		join := array.NewJoin(2*len(exts), record)
		for _, ext := range exts {
			for _, mirror := range [...]bool{false, true} {
				io := e.arr.DataIO(ext.Offset, ext.Length, true, false)
				io.OnDone = join.Done
				target := e.arr.Primaries[ext.Pair]
				if mirror {
					target = e.arr.Mirrors[ext.Pair]
				}
				if err := target.Submit(io); err != nil {
					return fmt.Errorf("RoLo-E: overflow write: %w", err)
				}
				e.touchFG(target)
			}
			// In-place writes supersede whatever the log held.
			e.cleanDirty(ext.Pair, ext.Offset, ext.Offset+ext.Length)
		}
		e.maybeDestage()
		return nil
	}

	join := array.NewJoin(2*len(exts), record)
	for i, ext := range exts {
		prim, mirr := e.slotDisks(allocs[i].slot)
		for _, target := range [...]*disk.Disk{prim, mirr} {
			io := e.arr.LogIO(allocs[i].alloc.Offset, allocs[i].alloc.Length, true, false)
			io.OnDone = join.Done
			if err := target.Submit(io); err != nil {
				return fmt.Errorf("RoLo-E: log write: %w", err)
			}
		}
		e.markDirty(ext.Pair, ext.Offset, ext.Offset+ext.Length)
	}
	e.maybeDestage()
	return nil
}

func (e *RoLoE) submitRead(rec trace.Record, exts []raid.Extent, record func(sim.Time)) error {
	// A read is a hit when every extent is available on an on-duty pair:
	// either its latest version lives in the log (dirty) or it is cached.
	hit := true
	for _, ext := range exts {
		if e.dirty[ext.Pair].Contains(ext.Offset, ext.Offset+ext.Length) {
			continue
		}
		if !e.cachedRange(rec.Offset, rec.Size) {
			hit = false
			break
		}
	}
	join := array.NewJoin(len(exts), record)
	if hit {
		e.readHits++
		if e.tel != nil {
			e.tel.CacheHit(rec.At, e.onDuty[0], rec.Size)
		}
		for _, ext := range exts {
			// Serve from the least-loaded on-duty disk; address the read
			// within the logging region (its exact placement does not
			// change the seek statistics materially).
			target := e.hitTarget()
			io := e.arr.LogIO(e.logOffFor(ext.Offset, ext.Length), ext.Length, false, false)
			io.OnDone = join.Done
			if err := target.Submit(io); err != nil { //lint:allow nilness:maybe the hit path already indexed onDuty[0], so the on-duty set is non-empty
				return fmt.Errorf("RoLo-E: hit read: %w", err)
			}
		}
		return nil
	}

	e.readMiss++
	if e.tel != nil {
		e.tel.CacheMiss(rec.At, e.onDuty[0], rec.Size)
	}
	for _, ext := range exts {
		ext := ext
		target := e.arr.Primaries[ext.Pair]
		io := e.arr.DataIO(ext.Offset, ext.Length, false, false)
		io.OnDone = func(now sim.Time) {
			e.touchFG(target)
			e.armSpinDown(target, ext.Pair)
			join.Done(now)
		}
		if err := target.Submit(io); err != nil {
			return fmt.Errorf("RoLo-E: miss read: %w", err)
		}
		e.touchFG(target)
	}
	// Cache the fetched blocks in the logging space: background writes to
	// the on-duty pair that do not affect the response time.
	e.insertCache(rec.Offset, rec.Size)
	return nil
}

// logOffFor maps a data-region offset to an in-bounds logging-region
// offset for modeling reads of logged/cached data. The exact placement is
// an approximation of the sequential log layout; clamping keeps the IO
// within the region.
func (e *RoLoE) logOffFor(off, length int64) int64 {
	region := e.spaces[0].Capacity()
	lo := off % region
	if lo+length > region {
		lo = region - length
	}
	if lo < 0 {
		lo = 0
	}
	return lo
}

// cachedRange reports whether every cache block covering [off, off+size)
// is resident, touching each for LRU recency.
func (e *RoLoE) cachedRange(off, size int64) bool {
	all := true
	for b := off / e.cfg.CacheBlockBytes; b <= (off+size-1)/e.cfg.CacheBlockBytes; b++ {
		if !e.readCache.Get(b) {
			all = false
		}
	}
	return all
}

// insertCache records the blocks as cached and issues the background cache
// writes into the on-duty logging space.
func (e *RoLoE) insertCache(off, size int64) {
	if e.readCache.Cap() == 0 {
		return
	}
	for b := off / e.cfg.CacheBlockBytes; b <= (off+size-1)/e.cfg.CacheBlockBytes; b++ {
		e.readCache.Put(b)
	}
	// One background write per disk of the first on-duty pair covering
	// the inserted blocks.
	prim, mirr := e.slotDisks(0)
	logOff := e.logOffFor(off, size)
	for _, target := range [...]*disk.Disk{prim, mirr} {
		io := e.arr.LogIO(logOff, size, true, true)
		if err := target.Submit(io); err != nil {
			// Cache fills are best-effort; losing one only costs a
			// future hit.
			continue
		}
	}
}

// touchFG records foreground activity for the idle spin-down logic.
func (e *RoLoE) touchFG(d *disk.Disk) {
	if id := d.ID(); id >= 0 && id < len(e.lastFG) {
		e.lastFG[id] = e.arr.Eng.Now()
	}
}

// armSpinDown schedules the miss-awakened disk to spin back down after the
// configured idle window, unless it became on-duty or saw new work.
func (e *RoLoE) armSpinDown(d *disk.Disk, pair int) {
	at := e.arr.Eng.Now()
	e.arr.Eng.After(e.cfg.MissIdleSpinDown, func(now sim.Time) {
		if e.closed || e.destaging || e.isOnDuty(pair) {
			return
		}
		if e.lastFG[d.ID()] > at {
			return // newer activity re-armed its own timer
		}
		array.SpinDownWhenIdle(e.arr.Eng, d, e.cfg.SpinDownRetry, func() bool {
			return !e.closed && !e.destaging && !e.isOnDuty(pair) && e.lastFG[d.ID()] <= at
		})
	})
}

func (e *RoLoE) maybeDestage() {
	if e.destaging {
		return
	}
	var free, capTotal int64
	for _, sp := range e.spaces {
		free += sp.FreeBytes()
		capTotal += sp.Capacity()
	}
	if capTotal == 0 || float64(free)/float64(capTotal) >= e.cfg.DestageFreeFraction {
		return
	}
	e.startDestage(e.arr.Eng.Now())
}

// startDestage is RoLo-E's centralized destage: the whole array wakes, the
// logged data is applied to both disks of every dirty pair, the log is
// reset, and the on-duty role rotates to the next pair.
func (e *RoLoE) startDestage(now sim.Time) {
	e.destaging = true
	e.destages++
	if e.tel != nil {
		e.tel.DestageStart(now, -1)
	}
	e.phase.Begin(metrics.Destaging, now, e.arr.TotalEnergyJ())
	for _, d := range e.arr.AllDisks() {
		_ = d.SpinUp()
	}
	// Round-robin the log-read source across all on-duty disks to spread
	// the read load.
	srcs := make([]*disk.Disk, 0, 2*len(e.onDuty))
	for i := range e.onDuty {
		prim, mirr := e.slotDisks(i)
		srcs = append(srcs, prim, mirr)
	}
	join := array.NewJoin(e.arr.Geom.Pairs, func(at sim.Time) { e.endDestage(at) })
	for p := 0; p < e.arr.Geom.Pairs; p++ {
		p := p
		work := &intervals.Set{}
		for _, sp := range e.dirty[p].Spans() {
			work.Add(sp.Start, sp.End)
		}
		e.clearDirty(p)
		src := srcs[p%len(srcs)]
		cp := array.NewCopier(e.arr.Eng, src,
			[]*disk.Disk{e.arr.Primaries[p], e.arr.Mirrors[p]},
			work, e.cfg.DestageChunkBytes,
			func(sp intervals.Span) *disk.IO {
				// The logged copy is read back from the logging region;
				// its placement approximates the sequential log layout.
				return e.arr.LogIO(e.logOffFor(sp.Start, sp.Len()), sp.Len(), false, true)
			},
			func(sp intervals.Span) *disk.IO {
				return e.arr.DataIO(sp.Start, sp.Len(), true, true)
			},
		)
		fired := false
		cp.OnDrained = func(at sim.Time) {
			if fired {
				return
			}
			fired = true
			join.Done(at)
		}
		cp.Kick()
	}
}

func (e *RoLoE) endDestage(now sim.Time) {
	if e.tel != nil {
		e.tel.DestageDone(now, -1)
	}
	var freed int64
	for _, sp := range e.spaces {
		freed += sp.UsedBytes()
		e.resetSpace(sp)
	}
	if e.tel != nil && freed > 0 {
		e.tel.LogInvalidate(now, -1, freed)
	}
	e.readCache.Clear()
	// Advance every slot by the slot count: with K on-duty pairs the duty
	// walks the array in strides of K, so distinctness is preserved.
	k := len(e.onDuty)
	for i := range e.onDuty {
		e.onDuty[i] = (e.onDuty[i] + k) % e.arr.Geom.Pairs
	}
	e.rotations++
	if e.tel != nil {
		e.tel.Rotation(now, e.onDuty[0])
	}
	e.destaging = false
	e.phase.Begin(metrics.Logging, now, e.arr.TotalEnergyJ())
	for p := 0; p < e.arr.Geom.Pairs; p++ {
		if e.isOnDuty(p) {
			continue
		}
		for _, d := range [...]*disk.Disk{e.arr.Primaries[p], e.arr.Mirrors[p]} {
			d := d
			pp := p
			array.SpinDownWhenIdle(e.arr.Eng, d, e.cfg.SpinDownRetry, func() bool {
				return !e.closed && !e.destaging && !e.isOnDuty(pp)
			})
		}
	}
}

// Close implements array.Controller.
func (e *RoLoE) Close(now sim.Time) {
	e.closed = true
	e.phase.End(now, e.arr.TotalEnergyJ())
}
