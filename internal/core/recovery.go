package core

import (
	"fmt"

	"github.com/rolo-storage/rolo/internal/array"
	"github.com/rolo-storage/rolo/internal/disk"
	"github.com/rolo-storage/rolo/internal/intervals"
	"github.com/rolo-storage/rolo/internal/sim"
)

// This file implements Section III-C of the paper: disk failure recovery.
// When a disk fails, only the disks essential for data recovery are spun
// up; the failure of an on-duty logger triggers an immediate rotation so
// the logging service never stops (Section III-D's "elimination of single
// point of failure").

// RecoveryPlan describes the actions taken on a failure.
type RecoveryPlan struct {
	// Failed names the failed disk ("P3", "M0").
	Failed string
	// SpunUp lists the mirror indices that were woken for recovery
	// (disks already spinning are not listed).
	SpunUp []int
	// LogSourceLoggers lists loggers holding live log extents needed to
	// reconstruct recent writes of the failed disk's pair.
	LogSourceLoggers []int
	// RebuildBytes is the data-region volume to copy onto the
	// replacement (the pair's data region plus unreclaimed log extents).
	RebuildBytes int64
	// NewOnDuty is the logger that took over if the on-duty logger
	// failed, else -1.
	NewOnDuty int
}

// FailMirror simulates the failure of mirror m. If m is on duty, the
// logger rotates to the best candidate immediately; the recovery source is
// the pair's primary, which is always spinning in RoLo-P/R.
func (r *RoLo) FailMirror(m int) (RecoveryPlan, error) {
	if m < 0 || m >= r.arr.Geom.Pairs {
		return RecoveryPlan{}, fmt.Errorf("%v: mirror %d outside [0,%d)", r.flavor, m, r.arr.Geom.Pairs)
	}
	d := r.arr.Mirrors[m]
	if d.Failed() {
		return RecoveryPlan{}, fmt.Errorf("%v: mirror %d already failed", r.flavor, m)
	}
	d.Fail()
	plan := RecoveryPlan{Failed: fmt.Sprintf("M%d", m), NewOnDuty: -1}

	if r.destageLive[m] {
		// The destage writing to this mirror can no longer proceed; its
		// dirty spans survive and will be rebuilt onto the replacement.
		r.destageLive[m] = false
	}
	if r.isOnDuty(m) {
		// Non-interrupted logging: hand duty to the next logger at once.
		// Log extents on the failed mirror are gone; the data they
		// protected is still safe on the primaries, so the corresponding
		// pairs simply stay dirty until their next destage.
		r.resetSpace(r.spaces[m])
		slot := 0
		for i, d := range r.onDuty {
			if d == m {
				slot = i
			}
		}
		next := r.pickNext()
		if next < 0 {
			// Every viable logger is nearly full: shrink the on-duty set
			// (writes take the direct path if it empties).
			r.onDuty = append(r.onDuty[:slot], r.onDuty[slot+1:]...)
		} else {
			if r.arr.Mirrors[next].State() == disk.Standby {
				_ = r.arr.Mirrors[next].SpinUp()
				plan.SpunUp = append(plan.SpunUp, next)
			}
			r.onDuty[slot] = next
			r.spinningUp = -1
			r.rotations++
			r.startDestage(next)
			plan.NewOnDuty = next
		}
	}
	// Rebuild: the replacement mirror is reconstructed from its primary
	// (data region) — the primary is ACTIVE already, so nothing else is
	// woken.
	plan.RebuildBytes = r.arr.Geom.DataBytesPerDisk
	return plan, nil
}

// FailPrimary simulates the failure of primary p. Its mirror wakes
// "silently"; in addition, every off-duty logger still holding live log
// extents for pair p wakes, because the mirror's data region is stale for
// exactly those extents (the paper: "awaken several other mirrored disks,
// which are the on-duty log disks during the previous several logging
// periods").
func (r *RoLo) FailPrimary(p int) (RecoveryPlan, error) {
	if p < 0 || p >= r.arr.Geom.Pairs {
		return RecoveryPlan{}, fmt.Errorf("%v: primary %d outside [0,%d)", r.flavor, p, r.arr.Geom.Pairs)
	}
	d := r.arr.Primaries[p]
	if d.Failed() {
		return RecoveryPlan{}, fmt.Errorf("%v: primary %d already failed", r.flavor, p)
	}
	d.Fail()
	plan := RecoveryPlan{Failed: fmt.Sprintf("P%d", p), NewOnDuty: -1}

	// A destage sourced from this primary cannot continue.
	if r.destageLive[p] {
		r.destageLive[p] = false
	}
	// Wake the pair's own mirror.
	if r.arr.Mirrors[p].State() == disk.Standby {
		_ = r.arr.Mirrors[p].SpinUp()
		plan.SpunUp = append(plan.SpunUp, p)
	}
	// Wake every logger holding live extents for pair p.
	for i, sp := range r.spaces {
		if sp.TagBytes(p) == 0 {
			continue
		}
		plan.LogSourceLoggers = append(plan.LogSourceLoggers, i)
		if r.arr.Mirrors[i].State() == disk.Standby && !r.arr.Mirrors[i].Failed() {
			_ = r.arr.Mirrors[i].SpinUp()
			plan.SpunUp = append(plan.SpunUp, i)
		}
	}
	var logBytes int64
	for _, i := range plan.LogSourceLoggers {
		logBytes += r.spaces[i].TagBytes(p)
	}
	plan.RebuildBytes = r.arr.Geom.DataBytesPerDisk + logBytes
	return plan, nil
}

// Rebuild replaces the failed disk of pair p and copies its contents back
// at background priority: the mirror is rebuilt from the primary (or vice
// versa), plus any live log extents for the pair. It returns a completion
// hook via done.
func (r *RoLo) Rebuild(p int, mirrorFailed bool, done func(now sim.Time)) error {
	var failed, src *disk.Disk
	if mirrorFailed {
		failed, src = r.arr.Mirrors[p], r.arr.Primaries[p]
	} else {
		failed, src = r.arr.Primaries[p], r.arr.Mirrors[p]
	}
	if !failed.Failed() {
		return fmt.Errorf("%v: pair %d: disk is healthy", r.flavor, p)
	}
	if src.Failed() {
		return fmt.Errorf("%v: pair %d: both disks failed — data loss", r.flavor, p)
	}
	if err := failed.Replace(); err != nil {
		return err
	}
	work := &intervals.Set{}
	work.Add(0, r.arr.Geom.DataBytesPerDisk)
	cp := array.NewCopier(r.arr.Eng, src, []*disk.Disk{failed}, work,
		r.cfg.DestageChunkBytes,
		func(sp intervals.Span) *disk.IO { return r.arr.DataIO(sp.Start, sp.Len(), false, true) },
		func(sp intervals.Span) *disk.IO { return r.arr.DataIO(sp.Start, sp.Len(), true, true) },
	)
	fired := false
	cp.OnDrained = func(at sim.Time) {
		if fired {
			return
		}
		fired = true
		// The rebuilt mirror is current: its pair is clean and any log
		// extents for it are stale.
		if mirrorFailed {
			r.clearDirty(p)
			for _, sp := range r.spaces {
				r.releaseTag(sp, p)
			}
		}
		if done != nil {
			done(at)
		}
	}
	cp.Kick()
	return nil
}

// degradedSubmit reissues a write pair-by-pair when some disks have
// failed: surviving copies are still written. Used by Submit when the
// normal path hits ErrFailed.
func (r *RoLo) submitSurviving(ios []targetIO, record func(sim.Time)) error {
	// Two passes instead of building a filtered copy: count survivors for
	// the join, then submit them.
	live := 0
	for _, t := range ios {
		if !t.disk.Failed() {
			live++
		}
	}
	if live == 0 {
		return fmt.Errorf("%v: no surviving copy target", r.flavor)
	}
	join := array.NewJoin(live, record)
	for _, t := range ios {
		if t.disk.Failed() {
			t.io.Recycle() // never submitted; return it to the array pool
			continue
		}
		t.io.OnDone = join.Done
		if err := t.disk.Submit(t.io); err != nil {
			return fmt.Errorf("%v: degraded submit: %w", r.flavor, err)
		}
	}
	return nil
}

// targetIO pairs an IO with its destination disk.
type targetIO struct {
	disk *disk.Disk
	io   *disk.IO
}
