package core

import (
	"testing"

	"github.com/rolo-storage/rolo/internal/disk"
	"github.com/rolo-storage/rolo/internal/sim"
	"github.com/rolo-storage/rolo/internal/trace"
)

func TestEConfigValidate(t *testing.T) {
	if err := DefaultEConfig().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	mutations := []func(*EConfig){
		func(c *EConfig) { c.DestageFreeFraction = 0 },
		func(c *EConfig) { c.DestageFreeFraction = 1 },
		func(c *EConfig) { c.CacheFraction = 1 },
		func(c *EConfig) { c.CacheFraction = -0.1 },
		func(c *EConfig) { c.CacheBlockBytes = 0 },
		func(c *EConfig) { c.MissIdleSpinDown = 0 },
		func(c *EConfig) { c.DestageChunkBytes = 0 },
		func(c *EConfig) { c.SpinDownRetry = 0 },
	}
	for i, m := range mutations {
		cfg := DefaultEConfig()
		m(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestRoLoEInitialStates(t *testing.T) {
	a, _ := testArray(t, 4)
	e, err := NewE(a, DefaultEConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Primaries[0].State() != disk.Idle || a.Mirrors[0].State() != disk.Idle {
		t.Fatal("on-duty pair not awake")
	}
	for p := 1; p < 4; p++ {
		if a.Primaries[p].State() != disk.Standby {
			t.Fatalf("primary %d state = %v, want STANDBY", p, a.Primaries[p].State())
		}
		if a.Mirrors[p].State() != disk.Standby {
			t.Fatalf("mirror %d state = %v, want STANDBY", p, a.Mirrors[p].State())
		}
	}
	_ = e
}

func TestRoLoEWritesGoToOnDutyPairOnly(t *testing.T) {
	a, eng := testArray(t, 4)
	e, err := NewE(a, DefaultEConfig())
	if err != nil {
		t.Fatal(err)
	}
	recs := writeRecs(32, 64<<10, 20*sim.Millisecond)
	replay(t, eng, a, e, recs)
	want := int64(32 * 64 << 10)
	if got := a.Primaries[0].Stats().BytesWritten; got < want {
		t.Fatalf("on-duty primary wrote %d, want >= %d", got, want)
	}
	if got := a.Mirrors[0].Stats().BytesWritten; got < want {
		t.Fatalf("on-duty mirror wrote %d, want >= %d", got, want)
	}
	for p := 1; p < 4; p++ {
		if a.Primaries[p].Stats().BytesWritten != 0 || a.Mirrors[p].Stats().BytesWritten != 0 {
			t.Fatalf("off-duty pair %d was written during logging", p)
		}
	}
	if e.Destages() != 0 {
		t.Fatalf("unexpected destage: %d", e.Destages())
	}
}

func TestRoLoEReadHitServedWithoutSpinUp(t *testing.T) {
	a, eng := testArray(t, 4)
	e, err := NewE(a, DefaultEConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Write a block (it lands in the log), then read it back: the latest
	// copy is on the on-duty pair, so no spin-up may occur.
	recs := []trace.Record{
		{At: 0, Op: trace.Write, Offset: 128 << 20, Size: 64 << 10},
		{At: sim.Second, Op: trace.Read, Offset: 128 << 20, Size: 64 << 10},
	}
	replay(t, eng, a, e, recs)
	if e.ReadHits() != 1 || e.ReadMisses() != 0 {
		t.Fatalf("hits/misses = %d/%d, want 1/0", e.ReadHits(), e.ReadMisses())
	}
	if got := a.TotalSpinCycles(); got != 0 {
		t.Fatalf("spin cycles = %d, want 0", got)
	}
	// The hit must be fast: no spin-up latency in the response.
	if mean := e.Responses().Mean(); mean > 100 {
		t.Fatalf("mean response %.1f ms suggests a spin-up happened", mean)
	}
}

func TestRoLoEReadMissSpinsUpAndCaches(t *testing.T) {
	a, eng := testArray(t, 4)
	cfg := DefaultEConfig()
	e, err := NewE(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Cold read of pair 2's data: target primary must wake (a >10 s
	// penalty); an identical read shortly after must hit the cache.
	off := int64(2) * (64 << 10) // stripe 2 -> pair 2
	recs := []trace.Record{
		{At: 0, Op: trace.Read, Offset: off, Size: 64 << 10},
		{At: 15 * sim.Second, Op: trace.Read, Offset: off, Size: 64 << 10},
	}
	replay(t, eng, a, e, recs)
	if e.ReadMisses() != 1 || e.ReadHits() != 1 {
		t.Fatalf("misses/hits = %d/%d, want 1/1", e.ReadMisses(), e.ReadHits())
	}
	if got := a.Primaries[2].SpinCycles(); got != 1 {
		t.Fatalf("target primary spin cycles = %d, want 1", got)
	}
	// The miss paid the spin-up; the hit did not.
	if p99 := e.Responses().Max().Seconds(); p99 < 10 {
		t.Fatalf("max response %.2f s: miss did not pay the spin-up", p99)
	}
}

func TestRoLoEMissAwakenedDiskSpinsBackDown(t *testing.T) {
	a, eng := testArray(t, 4)
	cfg := DefaultEConfig()
	cfg.MissIdleSpinDown = 2 * sim.Second
	e, err := NewE(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(2) * (64 << 10)
	recs := []trace.Record{
		{At: 0, Op: trace.Read, Offset: off, Size: 64 << 10},
		// Keep the trace horizon far enough out for the timer to fire.
		{At: sim.Minute, Op: trace.Write, Offset: 0, Size: 64 << 10},
	}
	replay(t, eng, a, e, recs)
	if got := a.Primaries[2].State(); got != disk.Standby {
		t.Fatalf("miss-awakened primary state = %v, want STANDBY again", got)
	}
	if got := a.Primaries[2].SpinCycles(); got != 1 {
		t.Fatalf("spin cycles = %d, want exactly 1", got)
	}
	_ = e
}

func TestRoLoECentralizedDestageAndRotation(t *testing.T) {
	a, eng := testArray(t, 4)
	e, err := NewE(a, DefaultEConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Log space is (1-0.25)x64 MB = 48 MB; write ~90 MB to force at
	// least one centralized destage.
	recs := writeRecs(1440, 64<<10, 20*sim.Millisecond)
	replay(t, eng, a, e, recs)
	if e.Destages() < 1 {
		t.Fatalf("destages = %d, want >= 1", e.Destages())
	}
	if e.Rotations() != e.Destages() {
		t.Fatalf("rotations %d != destages %d: RoLo-E rotates at each destage",
			e.Rotations(), e.Destages())
	}
	// The destage wrote the logged data to both disks of dirty pairs.
	var offDutyWrites int64
	for p := 0; p < 4; p++ {
		offDutyWrites += a.Primaries[p].Stats().BytesWritten
	}
	if offDutyWrites == 0 {
		t.Fatal("no data was ever applied to data regions")
	}
	// After the final destage + rotation, exactly one pair is awake once
	// spin-downs settle.
	awake := 0
	for _, d := range a.AllDisks() {
		if s := d.State(); s == disk.Idle || s == disk.Active {
			awake++
		}
	}
	if awake != 2 {
		t.Fatalf("%d disks awake after drain, want 2 (one pair)", awake)
	}
}

func TestRoLoEPhaseLogAlternates(t *testing.T) {
	a, eng := testArray(t, 4)
	e, err := NewE(a, DefaultEConfig())
	if err != nil {
		t.Fatal(err)
	}
	recs := writeRecs(1440, 64<<10, 20*sim.Millisecond)
	replay(t, eng, a, e, recs)
	ivs := e.Phases().Intervals()
	if len(ivs) < 2 {
		t.Fatalf("phase intervals = %d", len(ivs))
	}
	for i := 1; i < len(ivs); i++ {
		if ivs[i].Phase == ivs[i-1].Phase {
			t.Fatalf("phases did not alternate at %d", i)
		}
	}
}

func TestNewEValidation(t *testing.T) {
	a, _ := testArray(t, 4)
	bad := DefaultEConfig()
	bad.CacheFraction = 0.99999 // leaves no log space on tiny regions
	if _, err := NewE(a, bad); err == nil {
		t.Skip("tiny region still had log space") // acceptable; config-dependent
	}
	eng := sim.New()
	geomOne := a.Geom
	geomOne.Pairs = 1
	one, err := arrayForGeom(t, geomOne)
	if err != nil {
		t.Fatal(err)
	}
	_ = eng
	if _, err := NewE(one, DefaultEConfig()); err == nil {
		t.Error("single-pair array accepted")
	}
}
