package core

import (
	"github.com/rolo-storage/rolo/internal/invariant"
	"github.com/rolo-storage/rolo/internal/logspace"
)

// This file is the RoloSan integration for the RoLo-P/R and RoLo-E
// controllers: the audited mutation helpers every log-space and dirty-set
// change must route through (the invariantguard analyzer enforces this),
// and the Source snapshots the sanitizer's checkers consume. The audit
// handle is nil unless a sanitizer is attached, and every helper is
// nil-safe, so the audited path costs nothing in normal runs.

var (
	_ invariant.Source     = (*RoLo)(nil)
	_ invariant.Attachable = (*RoLo)(nil)
	_ invariant.Source     = (*RoLoE)(nil)
	_ invariant.Attachable = (*RoLoE)(nil)
)

// SetSanitizer implements invariant.Attachable.
func (r *RoLo) SetSanitizer(a *invariant.Audit) { r.san = a }

// logAlloc reserves n log bytes tagged for pair tag on sp.
//
// rolosan:audited — notifies the sanitizer ledger on success.
func (r *RoLo) logAlloc(sp *logspace.Space, n int64, tag int) (logspace.Alloc, bool) {
	a, ok := sp.Alloc(n, tag)
	if ok {
		r.san.Alloc(sp, tag, n)
	}
	return a, ok
}

// releaseTag reclaims every extent tagged for pair tag on sp; legal only
// once the pair's destage (or rebuild) has drained its dirty set.
//
// rolosan:audited — the sanitizer checks reclamation safety on the spot.
func (r *RoLo) releaseTag(sp *logspace.Space, tag int) int64 {
	freed := sp.ReleaseTag(tag)
	r.san.Release(sp, tag, freed)
	return freed
}

// resetSpace drops every extent on sp — the logger-failure path: the data
// the extents protected must still be covered by healthy primaries.
//
// rolosan:audited — the sanitizer checks reset safety on the spot.
func (r *RoLo) resetSpace(sp *logspace.Space) {
	sp.Reset()
	r.san.Reset(sp)
}

// cleanDirty removes [start, end) from pair p's dirty set: an in-place
// write (or completed copy) made the mirror copy current again.
//
// rolosan:audited
func (r *RoLo) cleanDirty(p int, start, end int64) {
	r.dirty[p].Remove(start, end)
}

// clearDirty empties pair p's dirty set after a rebuild made the mirror
// fully current.
//
// rolosan:audited
func (r *RoLo) clearDirty(p int) {
	r.dirty[p].Clear()
}

// SanitizerCounters implements invariant.Source.
func (r *RoLo) SanitizerCounters() invariant.Counters {
	used, _, backlog := r.TelemetryGauges()
	return invariant.Counters{
		Rotations:  r.rotations,
		DirtyBytes: backlog,
		LogUsed:    used,
	}
}

// SanitizerState implements invariant.Source. RoLo-P/R are primary-backed:
// a dirty span's current data lives on its (healthy) primary, and the log
// copies are the redundancy protecting it.
func (r *RoLo) SanitizerState() invariant.State {
	pairs := r.arr.Geom.Pairs
	st := invariant.State{
		Scheme:           r.flavor.String(),
		Pairs:            pairs,
		Spaces:           append([]*logspace.Space(nil), r.spaces...),
		DirtyBytes:       make([]int64, pairs),
		LogByPair:        make([]int64, pairs),
		LogPrimaryBacked: true,
		PrimaryOK:        make([]bool, pairs),
		MirrorOK:         make([]bool, pairs),
		Counters:         r.SanitizerCounters(),
	}
	for p := 0; p < pairs; p++ {
		st.DirtyBytes[p] = r.dirty[p].Total()
		st.PrimaryOK[p] = !r.arr.Primaries[p].Failed()
		st.MirrorOK[p] = !r.arr.Mirrors[p].Failed()
	}
	for _, sp := range r.spaces {
		st.LogTotal += sp.UsedBytes()
		for _, tag := range sp.Tags() {
			if tag >= 0 && tag < pairs {
				st.LogByPair[tag] += sp.TagBytes(tag)
			}
		}
	}
	return st
}

// SetSanitizer implements invariant.Attachable.
func (e *RoLoE) SetSanitizer(a *invariant.Audit) { e.san = a }

// logAlloc reserves n log bytes tagged for pair tag on sp.
//
// rolosan:audited — notifies the sanitizer ledger on success.
func (e *RoLoE) logAlloc(sp *logspace.Space, n int64, tag int) (logspace.Alloc, bool) {
	a, ok := sp.Alloc(n, tag)
	if ok {
		e.san.Alloc(sp, tag, n)
	}
	return a, ok
}

// resetSpace drops every extent on sp after a centralized destage applied
// the logged data in place; legal only with no dirty bytes outstanding.
//
// rolosan:audited — the sanitizer checks reset safety on the spot.
func (e *RoLoE) resetSpace(sp *logspace.Space) {
	sp.Reset()
	e.san.Reset(sp)
}

// markDirty records that pair p's only current copy of [start, end) now
// lives in the on-duty log.
//
// rolosan:audited
func (e *RoLoE) markDirty(p int, start, end int64) {
	e.dirty[p].Add(start, end)
}

// cleanDirty removes [start, end) from pair p's dirty set after an
// in-place write superseded the logged copy.
//
// rolosan:audited
func (e *RoLoE) cleanDirty(p int, start, end int64) {
	e.dirty[p].Remove(start, end)
}

// clearDirty empties pair p's dirty set as the centralized destage takes
// ownership of its spans (they move into the destage work set).
//
// rolosan:audited
func (e *RoLoE) clearDirty(p int) {
	e.dirty[p].Clear()
}

// SanitizerCounters implements invariant.Source.
func (e *RoLoE) SanitizerCounters() invariant.Counters {
	used, _, backlog := e.TelemetryGauges()
	return invariant.Counters{
		Rotations:  e.rotations,
		Destages:   e.destages,
		DirtyBytes: backlog,
		LogUsed:    used,
	}
}

// SanitizerState implements invariant.Source. RoLo-E is not
// primary-backed: for a dirty span the log holds the only current copy,
// so the log must cover every dirty byte regardless of disk health.
func (e *RoLoE) SanitizerState() invariant.State {
	pairs := e.arr.Geom.Pairs
	st := invariant.State{
		Scheme:           "RoLo-E",
		Pairs:            pairs,
		Spaces:           append([]*logspace.Space(nil), e.spaces...),
		DirtyBytes:       make([]int64, pairs),
		LogByPair:        make([]int64, pairs),
		LogPrimaryBacked: false,
		Counters:         e.SanitizerCounters(),
	}
	for p := 0; p < pairs; p++ {
		st.DirtyBytes[p] = e.dirty[p].Total()
	}
	for _, sp := range e.spaces {
		st.LogTotal += sp.UsedBytes()
		for _, tag := range sp.Tags() {
			if tag >= 0 && tag < pairs {
				st.LogByPair[tag] += sp.TagBytes(tag)
			}
		}
	}
	return st
}
