// Package phases exercises the phasepairing analyzer: Begin calls with
// and without a reachable End.
package phases

import "github.com/rolo-storage/rolo/internal/metrics"

func localUnpaired() {
	var l metrics.PhaseLog
	l.Begin(metrics.Logging, 0, 0) // want `PhaseLog\.Begin with no reachable End/Close`
}

func localPaired() {
	var l metrics.PhaseLog
	l.Begin(metrics.Logging, 0, 0)    // ended below: fine
	l.Begin(metrics.Destaging, 10, 1) // Begin closes the previous phase: fine
	l.End(20, 2)
}

func localDeferredEnd() {
	var l metrics.PhaseLog
	l.Begin(metrics.Logging, 0, 0) // deferred End counts: fine
	defer l.End(5, 1)
}

func twoLogs() {
	var a, b metrics.PhaseLog
	a.Begin(metrics.Logging, 0, 0) // want `PhaseLog\.Begin with no reachable End/Close`
	b.Begin(metrics.Logging, 0, 0) // b is ended, a is not: fine
	b.End(9, 1)
}

// leaky begins phases but no method of it ever ends one.
type leaky struct {
	phase metrics.PhaseLog
}

func (k *leaky) start(now int64) {
	k.phase.Begin(metrics.Logging, now, 0) // want `PhaseLog\.Begin with no reachable End/Close`
}

// controller mirrors the real schemes: Begin in event handlers, the
// terminal End in the teardown method.
type controller struct {
	phase metrics.PhaseLog
}

func (c *controller) onRotate(now int64) {
	c.phase.Begin(metrics.Logging, now, 0) // ended in finish: fine
}

func (c *controller) onDestage(now int64) {
	c.phase.Begin(metrics.Destaging, now, 0) // ended in finish: fine
}

func (c *controller) finish(now int64) {
	c.phase.End(now, 0)
}

// newController mirrors the scheme constructors: the opening phase is
// begun on a local of the controller type and ended in finish.
func newController(now int64) *controller {
	c := &controller{}
	c.phase.Begin(metrics.Logging, now, 0) // ended in finish: fine
	return c
}

// newLeaky shows the constructor pattern still flags when no method of
// the type ever ends a phase.
func newLeaky(now int64) *leaky {
	k := &leaky{}
	k.phase.Begin(metrics.Logging, now, 0) // want `PhaseLog\.Begin with no reachable End/Close`
	return k
}

// nested exercises a deeper field chain.
type stats struct {
	phase metrics.PhaseLog
}

type wrapper struct {
	stats stats
}

func (w *wrapper) begin(now int64) {
	w.stats.phase.Begin(metrics.Logging, now, 0) // ended below on the same chain: fine
}

func (w *wrapper) end(now int64) {
	w.stats.phase.End(now, 0)
}

func allowed() {
	var l metrics.PhaseLog
	l.Begin(metrics.Logging, 0, 0) //lint:allow phasepairing:unpaired-begin run is cut at the horizon, interval dropped on purpose
}
