// Package metrics is a fixture stub of the real metrics package: the
// PhaseLog type the phasepairing analyzer matches by package-path
// suffix.
package metrics

// Phase labels a period of a logging cycle.
type Phase int

// Phases.
const (
	Logging Phase = iota + 1
	Destaging
)

// PhaseLog records phase alternation.
type PhaseLog struct{ open bool }

// Begin starts a phase (closing any open one, as in the real package).
func (l *PhaseLog) Begin(p Phase, now int64, energyJ float64) { l.open = true }

// End closes the open phase.
func (l *PhaseLog) End(now int64, energyJ float64) { l.open = false }
