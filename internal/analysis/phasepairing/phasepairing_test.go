package phasepairing_test

import (
	"testing"

	"github.com/rolo-storage/rolo/internal/analysis/analysistest"
	"github.com/rolo-storage/rolo/internal/analysis/phasepairing"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", phasepairing.Analyzer, "fix/phases")
}
