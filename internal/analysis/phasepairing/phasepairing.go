// Package phasepairing checks that every metrics.PhaseLog.Begin has a
// reachable matching End (or Close).
//
// A PhaseLog whose final phase is never ended silently drops that
// interval from Totals(), skewing the destaging interval/energy ratios
// the reproduction reports. Begin itself closes the previous phase, so
// the alternating Begin/Begin/... pattern inside a controller is fine —
// what must exist is a terminal End.
//
// "Reachable" is resolved at two granularities:
//
//   - a Begin on a bare local variable (or parameter) must be matched
//     by an End/Close on the same variable somewhere in the same
//     function (deferred calls count);
//   - a Begin on a field chain rooted at a variable of a named type
//     declared in this package (`g.phase.Begin(...)` inside a *GRAID
//     method, or on the fresh `g` inside NewGRAID) is matched by an
//     End/Close on the same field chain anywhere in the package —
//     controllers begin phases in constructors and event handlers and
//     end them in their run-teardown method.
//
// Anything else (package-level logs, logs reached through interfaces) is
// matched per function. The `//lint:allow phasepairing:unpaired-begin
// <reason>` directive covers intentional exceptions.
package phasepairing

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"github.com/rolo-storage/rolo/internal/analysis"
)

// Analyzer is the phasepairing check.
var Analyzer = &analysis.Analyzer{
	Name: "phasepairing",
	Doc:  "flag metrics.PhaseLog.Begin calls with no reachable End/Close",
	Run:  run,
}

// site is one Begin call, the key identifying its receiver, and the
// receiver's display form for diagnostics.
type site struct {
	call *ast.CallExpr
	key  string
	disp string
}

func run(pass *analysis.Pass) error {
	var begins []site             // per-function Begin sites, key scoped to the function
	ends := map[string]bool{}     // keys (function- or type-scoped) with an End/Close
	typeEnds := map[string]bool{} // type-scoped keys with an End/Close anywhere in the package

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fnBegins, fnEnds, fnTypeEnds := scanFunc(pass, fd)
			begins = append(begins, fnBegins...)
			for k := range fnEnds {
				ends[k] = true
			}
			for k := range fnTypeEnds {
				typeEnds[k] = true
			}
		}
	}

	for _, b := range begins {
		if ends[b.key] || typeEnds[b.key] {
			continue
		}
		pass.Reportf(b.call.Pos(), "unpaired-begin",
			"PhaseLog.Begin with no reachable End/Close for %s; the final phase interval would be dropped", b.disp)
	}
	return nil
}

// scanFunc collects PhaseLog Begin/End sites in one function. Keys for
// receiver-rooted field chains are type-scoped ("(*GRAID).phase") and
// valid package-wide; all other keys are prefixed with the function name
// so they only match within it.
func scanFunc(pass *analysis.Pass, fd *ast.FuncDecl) (begins []site, ends, typeEnds map[string]bool) {
	ends = map[string]bool{}
	typeEnds = map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		name := fn.Name()
		if name != "Begin" && name != "End" && name != "Close" {
			return true
		}
		sig, _ := fn.Type().(*types.Signature)
		if sig == nil || sig.Recv() == nil ||
			!analysis.IsNamed(sig.Recv().Type(), "internal/metrics", "PhaseLog") {
			return true
		}
		key, typeScoped := receiverKey(pass, fd, sel.X)
		switch name {
		case "Begin":
			begins = append(begins, site{call: call, key: key, disp: types.ExprString(ast.Unparen(sel.X))})
		default:
			ends[key] = true
			if typeScoped {
				typeEnds[key] = true
			}
		}
		return true
	})
	return begins, ends, typeEnds
}

// receiverKey renders the expression the PhaseLog method is called on
// into a matching key. If expr is a field chain rooted at a variable
// whose type is a named type declared in this package (g.phase,
// e.stats.phase, ... where g is a *GRAID receiver, constructor local,
// or parameter), the key is type-scoped: "(TypeName).field.chain".
// Otherwise the key is scoped to the function.
func receiverKey(pass *analysis.Pass, fd *ast.FuncDecl, expr ast.Expr) (key string, typeScoped bool) {
	expr = ast.Unparen(expr)
	if root, path := chainRoot(expr); root != nil && path != "" {
		if named := localNamedType(pass, root); named != nil {
			return "(" + named.Obj().Name() + ")." + path, true
		}
	}
	// Position-prefix the key so same-named functions (methods on
	// different types) cannot cross-match.
	return fmt.Sprintf("%d·%s", fd.Pos(), types.ExprString(expr)), false
}

// localNamedType resolves the named type (behind one pointer) of the
// variable ident refers to, if that type is declared in the package
// under analysis; otherwise nil.
func localNamedType(pass *analysis.Pass, ident *ast.Ident) *types.Named {
	obj := pass.TypesInfo.Uses[ident]
	if obj == nil {
		obj = pass.TypesInfo.Defs[ident]
	}
	if obj == nil {
		return nil
	}
	t := obj.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() != pass.Pkg {
		return nil
	}
	return named
}

// chainRoot unwinds a selector chain x.a.b → (x, "a.b"). A non-chain
// expression yields a nil root.
func chainRoot(expr ast.Expr) (*ast.Ident, string) {
	var parts []string
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e, strings.Join(parts, ".")
		case *ast.SelectorExpr:
			parts = append([]string{e.Sel.Name}, parts...)
			expr = ast.Unparen(e.X)
		default:
			return nil, ""
		}
	}
}
