package raceguard_test

import (
	"testing"

	"github.com/rolo-storage/rolo/internal/analysis/analysistest"
	"github.com/rolo-storage/rolo/internal/analysis/raceguard"
)

func TestGuardedBy(t *testing.T) {
	analysistest.Run(t, "testdata", raceguard.GuardedBy, "fix/guarded")
}

func TestLockContract(t *testing.T) {
	analysistest.Run(t, "testdata", raceguard.LockContract, "fix/lockcontract")
}

func TestGoCapture(t *testing.T) {
	analysistest.Run(t, "testdata", raceguard.GoCapture, "fix/capture")
}

func TestWaitPairing(t *testing.T) {
	analysistest.Run(t, "testdata", raceguard.WaitPairing, "fix/waitpair")
}
