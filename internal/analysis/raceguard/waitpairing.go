package raceguard

import (
	"go/ast"
	"go/types"

	"github.com/rolo-storage/rolo/internal/analysis"
	"github.com/rolo-storage/rolo/internal/analysis/cfg"
)

// WaitPairing is the goroutine-join check.
var WaitPairing = &analysis.Analyzer{
	Name: "waitpairing",
	Doc:  "flag go statements whose goroutines cannot be joined: no completion signal on every path, or Done without a paired Add",
	Run:  runWaitPairing,
}

// Signal universe for the "does every path signal completion" dataflow.
const (
	sigPending = iota
	sigDone
)

func runWaitPairing(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		analysis.WalkStack(file, func(n ast.Node, stack []ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
			if !ok {
				pass.Reportf(g.Pos(), "non-literal",
					"go statement calls a non-literal function; its completion cannot be checked — wrap it in a literal that signals completion (WaitGroup.Done, channel send, or close)")
				return true
			}
			doneChains := checkSignals(pass, g, lit)
			for chain := range doneChains {
				checkAddPairing(pass, g, stack, chain)
			}
			return true
		})
	}
	return nil
}

// checkSignals verifies the goroutine literal signals completion on every
// exit path, and returns the WaitGroup chains it signals through Done.
func checkSignals(pass *analysis.Pass, g *ast.GoStmt, lit *ast.FuncLit) map[string]bool {
	doneChains := map[string]bool{}
	deferred := false
	any := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// A deferred signal runs on every exit, panics included.
			if signalInNode(pass.TypesInfo, n, doneChains) {
				deferred = true
				any = true
			}
			return false
		case *ast.SendStmt:
			any = true
		case *ast.CallExpr:
			if isClose(pass.TypesInfo, n) {
				any = true
			} else if chain, ok := waitGroupCall(pass.TypesInfo, n, "Done"); ok {
				doneChains[chain] = true
				any = true
			}
		}
		return true
	})
	if !any {
		pass.Reportf(g.Pos(), "no-signal",
			"goroutine never signals completion (no WaitGroup.Done, channel send, or close); it cannot be joined")
		return doneChains
	}
	if deferred {
		return doneChains
	}

	// No deferred signal: every exit path must pass a direct signal.
	graph := cfg.Build(lit.Body)
	if graph.Unanalyzable {
		return doneChains // a signal exists; give unmodelled flow the benefit of the doubt
	}
	states := graph.Solve(cfg.Only(sigPending), func(s ast.Stmt, in cfg.Set) cfg.Set {
		if directSignal(pass.TypesInfo, s) {
			return cfg.Only(sigDone)
		}
		return in
	}, nil)
	for _, blk := range graph.Blocks {
		st, reached := states[blk]
		if !reached || len(blk.Succs) > 0 {
			continue
		}
		for _, s := range blk.Stmts {
			if directSignal(pass.TypesInfo, s) {
				st = cfg.Only(sigDone)
			}
		}
		if st.Has(sigPending) {
			pass.Reportf(g.Pos(), "partial-signal",
				"goroutine may return without signaling completion on some path; defer the WaitGroup.Done (or send/close) instead")
			return doneChains
		}
	}
	return doneChains
}

// checkAddPairing verifies that, in the function spawning the goroutine,
// chain.Add is called on every path leading to the go statement.
func checkAddPairing(pass *analysis.Pass, g *ast.GoStmt, stack []ast.Node, chain string) {
	var body *ast.BlockStmt
	switch fn := analysis.EnclosingFunc(stack).(type) {
	case *ast.FuncDecl:
		body = fn.Body
	case *ast.FuncLit:
		body = fn.Body
	}
	if body == nil {
		return
	}

	hasAdd := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if c, ok := waitGroupCall(pass.TypesInfo, call, "Add"); ok && c == chain {
				hasAdd = true
			}
		}
		return !hasAdd
	})
	if !hasAdd {
		pass.Reportf(g.Pos(), "missing-add",
			"goroutine calls %s.Done but the spawning function never calls %s.Add", chain, chain)
		return
	}

	graph := cfg.Build(body)
	if graph.Unanalyzable {
		return // an Add exists; unmodelled flow gets the benefit of the doubt
	}
	transfer := func(s ast.Stmt, in cfg.Set) cfg.Set {
		if stmtCallsAdd(pass.TypesInfo, s, chain) {
			return cfg.Only(sigDone)
		}
		return in
	}
	states := graph.Solve(cfg.Only(sigPending), transfer, nil)
	for _, blk := range graph.Blocks {
		st, reached := states[blk]
		if !reached {
			continue
		}
		for _, s := range blk.Stmts {
			if stmtContains(s, g) {
				if st.Has(sigPending) {
					pass.Reportf(g.Pos(), "add-path",
						"goroutine calls %s.Done but %s.Add does not precede the go statement on every path", chain, chain)
				}
				return
			}
			st = transfer(s, st)
		}
	}
}

// directSignal reports whether the statement itself (nested literals
// excluded — they run at another time) sends, closes, or calls Done.
func directSignal(info *types.Info, s ast.Stmt) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			if isClose(info, n) {
				found = true
			} else if _, ok := waitGroupCall(info, n, "Done"); ok {
				found = true
			}
		}
		return true
	})
	return found
}

// stmtCallsAdd reports whether the statement (nested literals excluded)
// calls chain.Add.
func stmtCallsAdd(info *types.Info, s ast.Stmt, chain string) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if c, ok := waitGroupCall(info, call, "Add"); ok && c == chain {
				found = true
			}
		}
		return true
	})
	return found
}

// signalInNode scans an arbitrary subtree (nested literals included —
// a `defer func() { ... }()` wrapper still runs at exit) for completion
// signals, accumulating Done receiver chains.
func signalInNode(info *types.Info, root ast.Node, doneChains map[string]bool) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			if isClose(info, n) {
				found = true
			} else if chain, ok := waitGroupCall(info, n, "Done"); ok {
				doneChains[chain] = true
				found = true
			}
		}
		return true
	})
	return found
}

// waitGroupCall matches a statically-resolved call to sync.WaitGroup's
// method named name, returning the rendered receiver chain ("wg", "p.wg").
func waitGroupCall(info *types.Info, call *ast.CallExpr, name string) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || fn.Name() != name {
		return "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil ||
		!analysis.IsNamed(sig.Recv().Type(), "sync", "WaitGroup") {
		return "", false
	}
	return types.ExprString(ast.Unparen(sel.X)), true
}

// isClose matches the close builtin.
func isClose(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" {
		return false
	}
	_, builtin := info.Uses[id].(*types.Builtin)
	return builtin
}
