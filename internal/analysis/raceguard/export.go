package raceguard

// This file exports the lock-state machinery to the liveness analyzer
// family (internal/analysis/liveness). Lockorder keys its lock-order
// graph off the same per-function summaries guardedby and lockcontract
// compute — so a helper that acquires a mutex counts as holding it at the
// next acquisition site — and chanmisuse's blocking-under-lock check
// reuses the any-mutex dataflow gocapture uses. Exporting the model keeps
// the two families agreeing about what "the lock is held here" means.

import (
	"go/ast"
	"go/types"

	"github.com/rolo-storage/rolo/internal/analysis"
	"github.com/rolo-storage/rolo/internal/analysis/callgraph"
	"github.com/rolo-storage/rolo/internal/analysis/cfg"
)

// Lock-state lattice values of the forward may-analysis, re-exported for
// sibling analyzer families. A block's state set containing StateLocked
// or StateRLocked means "some path reaches here with the lock held".
const (
	StateUnheld  = stUnheld
	StateRLocked = stRLocked
	StateLocked  = stLocked
)

// LockOp classifies a statically-resolved call as a lock-state operation
// (Lock, Unlock, RLock, RUnlock) on a sync.Mutex or sync.RWMutex,
// returning the rendered receiver chain ("m.mu") and the method name.
func LockOp(info *types.Info, call *ast.CallExpr) (chain, method string, ok bool) {
	return lockMethod(info, call)
}

// AnyLockStates solves the any-mutex lock-state analysis over a built
// CFG: the chain-agnostic mode where any Lock sets the state and any
// Unlock clears it. entry is the function-entry state (ContractEntry for
// declarations with lock contracts, cfg.Only(StateUnheld) otherwise).
func AnyLockStates(info *types.Info, g *cfg.Graph, entry cfg.Set) map[*cfg.Block]cfg.Set {
	return g.Solve(entry, func(s ast.Stmt, in cfg.Set) cfg.Set {
		return lockTransfer(info, "", s, in)
	}, nil)
}

// FoldAnyLock folds one statement over the any-mutex state set, reaching
// a statement's program point from its block's entry set.
func FoldAnyLock(info *types.Info, s ast.Stmt, in cfg.Set) cfg.Set {
	return lockTransfer(info, "", s, in)
}

// ContractEntry returns the any-mutex entry state of a declaration: a
// function declared `//rolosan:requires mu` starts with that lock held.
func ContractEntry(info *types.Info, decl *ast.FuncDecl) cfg.Set {
	recvName, _ := receiver(info, decl)
	if len(declaredRequires(decl, recvName)) > 0 {
		return cfg.Only(stLocked)
	}
	return cfg.Only(stUnheld)
}

// A Chain is one mutex chain as rendered inside a function ("s.mu",
// "journalNames.mu"), with the object its base identifier resolves to.
type Chain struct {
	Text string
	Root types.Object
}

// A LockModel is the summary-aware lock-state dataflow of one package:
// the call graph, the per-function LockSummary facts (local and
// imported), and per-chain state solving that interprets helper calls
// whose summaries acquire or release a chain.
type LockModel struct {
	sm *summaries
}

// NewLockModel computes the package's lock summaries (the same ones
// lockcontract exports as facts) and wraps them for external use.
func NewLockModel(pass *analysis.Pass) *LockModel {
	return &LockModel{sm: computeSummaries(pass)}
}

// Graph returns the package call graph underlying the model.
func (m *LockModel) Graph() *callgraph.Graph { return m.sm.graph }

// ExportFacts publishes the model's per-function lock summaries in the
// "lockcontract" namespace, exactly as the lockcontract analyzer does.
// Liveness analyzers call this so their cross-package lock reasoning
// works even when they run alone (analysistest); when lockcontract runs
// too, the re-export writes identical content and is harmless.
func (m *LockModel) ExportFacts() {
	for _, node := range m.sm.graph.All() {
		if s := m.sm.local[node.Func]; s != nil && !s.empty() {
			m.sm.pass.ExportFact(lockNS, node.Func, s)
		}
	}
}

// Chains returns the distinct mutex chains the body operates on, directly
// or through summarized callees, sorted by rendered text.
func (m *LockModel) Chains(body *ast.BlockStmt) []Chain {
	cis := m.sm.candidateChains(body)
	out := make([]Chain, len(cis))
	for i, ci := range cis {
		out[i] = Chain{Text: ci.text, Root: ci.root}
	}
	return out
}

// Requires returns the chains a declaration's `//rolosan:requires`
// contract names, rendered as seen inside the function, with resolved
// roots (the receiver object for receiver-rooted chains, the package
// scope's variable for package-level ones; nil when unresolvable).
func (m *LockModel) Requires(decl *ast.FuncDecl) []Chain {
	recvName, recvObj := receiver(m.sm.pass.TypesInfo, decl)
	var out []Chain
	for _, r := range declaredRequires(decl, recvName) {
		text := localChain(r, recvName)
		var root types.Object
		if recvObj != nil && (text == recvName || len(text) > len(recvName) && text[:len(recvName)+1] == recvName+".") {
			root = recvObj
		} else if base, _, _ := cutChain(text); base != "" && m.sm.pass.Pkg != nil {
			root = m.sm.pass.Pkg.Scope().Lookup(base)
		}
		out = append(out, Chain{Text: text, Root: root})
	}
	return out
}

// cutChain splits a rendered chain into its base identifier and the rest.
func cutChain(text string) (base, rest string, dotted bool) {
	for i := 0; i < len(text); i++ {
		if text[i] == '.' {
			return text[:i], text[i+1:], true
		}
	}
	return text, "", false
}

// Entry returns the lock-state entry set of one chain in decl: chains the
// declaration requires start locked, everything else unheld.
func (m *LockModel) Entry(decl *ast.FuncDecl, chain string) cfg.Set {
	recvName, _ := receiver(m.sm.pass.TypesInfo, decl)
	return entrySet(declaredRequires(decl, recvName), recvName, chain)
}

// States solves the summary-aware lock-state analysis of one chain over
// the declaration's built CFG, with the declaration's contract as the
// entry state. Callers fold with Fold to reach statement granularity.
func (m *LockModel) States(g *cfg.Graph, decl *ast.FuncDecl, chain string) map[*cfg.Block]cfg.Set {
	return m.sm.states(g, chain, m.Entry(decl, chain))
}

// Fold folds one statement over the lock-state set for chain,
// interpreting both direct Lock/Unlock calls and calls to functions whose
// summaries acquire or release the chain.
func (m *LockModel) Fold(chain string, s ast.Stmt, in cfg.Set) cfg.Set {
	return m.sm.transfer(chain, s, in)
}
