// Package raceguard is rololint's concurrency-discipline analyzer family:
// three CFG-powered checks that make the data-race patterns the parallel
// experiment runner must avoid into lint failures, so the discipline is
// enforced at the first `go` statement rather than discovered under
// `go test -race` (which only sees the schedules the test happens to run).
//
//   - guardedby: struct fields annotated `//rolosan:guardedby <mu>` may
//     only be read or written on paths where the named sibling mutex is
//     held. Lock state is tracked by a forward dataflow over the
//     function's CFG (Lock/RLock/Unlock/RUnlock, with deferred unlocks
//     treated as end-of-function). `//lint:allow guardedby:unheld
//     <reason>` covers init-before-share construction.
//
//   - gocapture: `go` statements whose function literals capture an
//     enclosing loop variable (goroutine inputs belong in parameters,
//     where review can see them) or assign to captured variables without
//     holding a lock — the classic shared-results-slice race.
//
//   - waitpairing: every `go` statement must be joinable: its function
//     literal signals completion on all paths (sync.WaitGroup.Done, a
//     channel send, or close), and a Done-signalling goroutine must be
//     preceded by the matching WaitGroup.Add on every path to the `go`
//     statement, mirroring phasepairing's Begin/End shape.
//
// Like the rest of the suite the analyses are intraprocedural and
// over-approximate: unrecognized control flow assumes the full value set
// (guardedby and waitpairing then err toward reporting, with the
// mandatory-reason escape hatch for intentional exceptions). Lock
// identity is textual — the rendered receiver chain (`m.mu`, `p.inner.mu`)
// scoped to one function — which is exactly the per-instance discipline
// the runner uses and cheap enough to run under `go vet` on every build.
package raceguard

import (
	"go/ast"
	"go/types"

	"github.com/rolo-storage/rolo/internal/analysis"
	"github.com/rolo-storage/rolo/internal/analysis/cfg"
)

// isMutex reports whether t (after one pointer indirection) is
// sync.Mutex or sync.RWMutex, and which.
func isMutex(t types.Type) (mutex, rw bool) {
	if analysis.IsNamed(t, "sync", "Mutex") {
		return true, false
	}
	if analysis.IsNamed(t, "sync", "RWMutex") {
		return true, true
	}
	return false, false
}

// lockMethod classifies a statically-resolved call as a lock-state
// operation on a sync.Mutex or sync.RWMutex receiver, returning the
// rendered receiver chain ("m.mu") and the method name.
func lockMethod(info *types.Info, call *ast.CallExpr) (chain, method string, ok bool) {
	sel, selOK := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !selOK {
		return "", "", false
	}
	fn := analysis.CalleeFunc(info, call)
	if fn == nil {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", "", false
	}
	if m, _ := isMutex(sig.Recv().Type()); !m {
		return "", "", false
	}
	return types.ExprString(ast.Unparen(sel.X)), fn.Name(), true
}

// Lock-state universe shared by the analyzers: a forward may-analysis
// over the lattice {unheld, rlocked, locked}. The meet is union, so a
// state set containing unheld means "some path reaches here without the
// lock".
const (
	stUnheld = iota
	stRLocked
	stLocked
	stCount
)

// lockTransfer folds one statement over the lock-state set for the mutex
// identified by chain (empty chain matches any mutex — gocapture's "some
// lock is held" mode). Deferred unlocks run at function exit and leave
// the path state alone; deferred locks are nonsensical and ignored.
func lockTransfer(info *types.Info, chain string, s ast.Stmt, in cfg.Set) cfg.Set {
	out := in
	// Walk the statement, skipping nested function literals: their bodies
	// execute at another time, under their own analysis.
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			c, method, ok := lockMethod(info, n)
			if !ok || (chain != "" && c != chain) {
				return true
			}
			switch method {
			case "Lock":
				out = cfg.Only(stLocked)
			case "RLock":
				out = cfg.Only(stRLocked)
			case "Unlock", "RUnlock":
				out = cfg.Only(stUnheld)
			}
		}
		return true
	})
	return out
}

// lockStates solves the lock-state analysis for one mutex chain over a
// built graph, returning the entry set of every block. Callers fold
// lockTransfer themselves to reach a statement's program point.
func lockStates(info *types.Info, g *cfg.Graph, chain string) map[*cfg.Block]cfg.Set {
	return g.Solve(cfg.Only(stUnheld), func(s ast.Stmt, in cfg.Set) cfg.Set {
		return lockTransfer(info, chain, s, in)
	}, nil)
}

// stmtContains reports whether the AST node lies within stmt, excluding
// nested function literal bodies (which belong to another analysis).
func stmtContains(s ast.Stmt, target ast.Node) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if n == target {
			found = true
			return false
		}
		return true
	})
	return found
}

// funcBodies yields every function body in the file — declarations and
// function literals — paired with the node whose position names it.
// Literal bodies are visited separately from their enclosing functions
// because they run at another time: lock state never flows into them.
func funcBodies(file *ast.File, fn func(body *ast.BlockStmt)) {
	funcBodiesDecl(file, func(_ *ast.FuncDecl, body *ast.BlockStmt) { fn(body) })
}

// funcBodiesDecl is funcBodies with the enclosing declaration: non-nil for
// declared functions and methods (whose doc may carry lock contracts), nil
// for function literals.
func funcBodiesDecl(file *ast.File, fn func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				fn(n, n.Body)
			}
		case *ast.FuncLit:
			fn(nil, n.Body)
		}
		return true
	})
}
