package raceguard

// This file is the interprocedural half of the lock-discipline family: a
// per-function LockSummary computed bottom-up over the package's call
// graph and exported as a fact in the "lockcontract" namespace, so that
// guardedby and lockcontract see through helper calls — `s.lockAll()`
// counts as acquiring `s.mu`, and a call to a method declared
// `//rolosan:requires mu` demands the lock at every call site, in this
// package and in every importer.
//
// Summary chains are receiver-relative: the receiver segment of a rendered
// mutex chain is replaced by the marker "$recv" ("$recv.mu"), and call
// sites translate the marker back through the callee's receiver expression
// ("w.seg.lock()" turns "$recv.mu" into "w.seg.mu"). Chains rooted at
// locals or parameters are not summarizable and stay function-private;
// chains rooted at package-level variables keep their rendered text, which
// matches textually within the declaring package only — a deliberate,
// sound under-approximation (cross-package callers simply get no summary
// effect).

import (
	"go/ast"
	"go/types"
	"reflect"
	"sort"
	"strings"

	"github.com/rolo-storage/rolo/internal/analysis"
	"github.com/rolo-storage/rolo/internal/analysis/callgraph"
	"github.com/rolo-storage/rolo/internal/analysis/cfg"
)

// lockNS is the fact namespace shared by guardedby and lockcontract.
const lockNS = "lockcontract"

// requiresDirective declares a function's lock contract:
// `//rolosan:requires mu` on the doc comment means every caller must hold
// the named mutex (a field of the receiver, or a package-level chain).
const requiresDirective = "rolosan:requires"

// recvMarker stands for the receiver in summary chains.
const recvMarker = "$recv"

// A LockSummary is the per-function fact of the lockcontract namespace.
type LockSummary struct {
	// Requires lists chains the caller must hold when calling (declared
	// via //rolosan:requires; never inferred, so one missing annotation
	// cannot cascade into reports at every transitive caller).
	Requires []string `json:"requires,omitempty"`
	// Acquires lists chains unheld at entry and held at every non-panic
	// exit — lock-helper methods.
	Acquires []string `json:"acquires,omitempty"`
	// Releases lists chains the function unlocks: held at entry, unheld
	// at every exit, with no Lock of its own.
	Releases []string `json:"releases,omitempty"`
}

func (s *LockSummary) empty() bool {
	return s == nil || (len(s.Requires) == 0 && len(s.Acquires) == 0 && len(s.Releases) == 0)
}

// summaries resolves LockSummary facts: locally computed ones for this
// package's functions, imported ones for dependencies.
type summaries struct {
	pass  *analysis.Pass
	graph *callgraph.Graph
	local map[*types.Func]*LockSummary
}

// forFunc returns fn's summary, or nil if none is known.
func (sm *summaries) forFunc(fn *types.Func) *LockSummary {
	if s, ok := sm.local[fn]; ok {
		return s
	}
	var s LockSummary
	if sm.pass.ImportFact(lockNS, fn, &s) && !s.empty() {
		sm.local[fn] = &s
		return &s
	}
	sm.local[fn] = nil
	return nil
}

// computeSummaries builds the package call graph and computes every
// function's LockSummary bottom-up. Both guardedby and lockcontract call
// it (each works alone, e.g. under analysistest); only lockcontract
// exports the results as facts.
func computeSummaries(pass *analysis.Pass) *summaries {
	sm := &summaries{
		pass:  pass,
		graph: callgraph.Build(pass.Files, pass.TypesInfo),
		local: make(map[*types.Func]*LockSummary),
	}
	for _, comp := range sm.graph.SCCs() {
		// Iterate mutually recursive components to a fixpoint; the lattice
		// per function is tiny, so this converges in a couple of rounds.
		for range len(comp) + 1 {
			changed := false
			for _, node := range comp {
				next := sm.summarize(node)
				if !reflect.DeepEqual(sm.local[node.Func], next) {
					sm.local[node.Func] = next
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
	return sm
}

// summarize computes one function's summary from its body and the current
// summaries of its callees.
func (sm *summaries) summarize(node *callgraph.Node) *LockSummary {
	decl := node.Decl
	recvName, recvObj := receiver(sm.pass.TypesInfo, decl)
	out := &LockSummary{Requires: declaredRequires(decl, recvName)}

	g := cfg.Build(decl.Body)
	for _, ci := range sm.candidateChains(decl.Body) {
		exported := summaryChain(ci, recvName, recvObj)
		if exported == "" || g.Unanalyzable {
			continue
		}
		acquireExit := sm.exitSet(g, ci.text, cfg.Only(stUnheld))
		releaseExit := sm.exitSet(g, ci.text, cfg.Only(stLocked))
		ops := directOps(sm.pass.TypesInfo, decl.Body, ci.text)
		switch {
		case acquireExit == cfg.Only(stLocked) && !ops.deferredUnlock:
			out.Acquires = append(out.Acquires, exported)
		case releaseExit == cfg.Only(stUnheld) && acquireExit == cfg.Only(stUnheld) &&
			ops.unlock && !ops.lock:
			out.Releases = append(out.Releases, exported)
		}
	}
	sort.Strings(out.Acquires)
	sort.Strings(out.Releases)
	if out.empty() {
		return nil
	}
	return out
}

// A chainInfo is a mutex chain as rendered inside one function, plus the
// object its base identifier resolves to.
type chainInfo struct {
	text string
	root types.Object
}

// candidateChains collects the distinct mutex chains the body operates on,
// directly or through summarized callees.
func (sm *summaries) candidateChains(body *ast.BlockStmt) []chainInfo {
	seen := map[string]chainInfo{}
	add := func(text string, root types.Object) {
		if _, ok := seen[text]; !ok {
			seen[text] = chainInfo{text: text, root: root}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if chain, _, ok := lockMethod(sm.pass.TypesInfo, n); ok {
				sel := ast.Unparen(n.Fun).(*ast.SelectorExpr)
				add(chain, rootObject(sm.pass.TypesInfo, sel.X))
				return true
			}
			callee := callgraph.StaticCallee(sm.pass.TypesInfo, n)
			if callee == nil {
				return true
			}
			if s := sm.forFunc(callee); s != nil {
				for _, c := range append(append([]string(nil), s.Acquires...), s.Releases...) {
					if text, root, ok := siteChain(sm.pass.TypesInfo, c, n); ok {
						add(text, root)
					}
				}
			}
		}
		return true
	})
	out := make([]chainInfo, 0, len(seen))
	for _, ci := range seen {
		out = append(out, ci)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].text < out[j].text })
	return out
}

// transfer folds one statement over the lock-state set for chain,
// interpreting both direct Lock/Unlock calls and calls to functions whose
// summaries acquire or release the chain. Nested literals and deferred
// calls are skipped, like lockTransfer.
func (sm *summaries) transfer(chain string, s ast.Stmt, in cfg.Set) cfg.Set {
	out := in
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if c, method, ok := lockMethod(sm.pass.TypesInfo, n); ok {
				if c != chain {
					return true
				}
				switch method {
				case "Lock":
					out = cfg.Only(stLocked)
				case "RLock":
					out = cfg.Only(stRLocked)
				case "Unlock", "RUnlock":
					out = cfg.Only(stUnheld)
				}
				return true
			}
			callee := callgraph.StaticCallee(sm.pass.TypesInfo, n)
			if callee == nil {
				return true
			}
			sum := sm.forFunc(callee)
			if sum == nil {
				return true
			}
			for _, c := range sum.Acquires {
				if text, _, ok := siteChain(sm.pass.TypesInfo, c, n); ok && text == chain {
					out = cfg.Only(stLocked)
				}
			}
			for _, c := range sum.Releases {
				if text, _, ok := siteChain(sm.pass.TypesInfo, c, n); ok && text == chain {
					out = cfg.Only(stUnheld)
				}
			}
		}
		return true
	})
	return out
}

// states solves the summary-aware lock-state analysis for one chain.
func (sm *summaries) states(g *cfg.Graph, chain string, entry cfg.Set) map[*cfg.Block]cfg.Set {
	return g.Solve(entry, func(s ast.Stmt, in cfg.Set) cfg.Set {
		return sm.transfer(chain, s, in)
	}, nil)
}

// exitSet returns the union of the lock states at every reachable function
// exit (end of a successor-less block), ignoring panic exits.
func (sm *summaries) exitSet(g *cfg.Graph, chain string, entry cfg.Set) cfg.Set {
	in := sm.states(g, chain, entry)
	var exit cfg.Set
	for _, blk := range g.Blocks {
		st, reached := in[blk]
		if !reached || len(blk.Succs) > 0 {
			continue
		}
		panics := false
		for _, s := range blk.Stmts {
			st = sm.transfer(chain, s, st)
			panics = cfg.IsPanicStmt(s)
		}
		if !panics {
			exit = exit.Union(st)
		}
	}
	return exit
}

// opsInfo summarizes the direct lock operations a body performs on one
// chain.
type opsInfo struct {
	lock, unlock   bool // any Lock/RLock, any Unlock/RUnlock outside defer
	deferredUnlock bool
	any            bool // any direct op or summarized helper effect
}

// directOps scans the body (excluding nested literals) for lock operations
// on chain.
func directOps(info *types.Info, body *ast.BlockStmt, chain string) opsInfo {
	var ops opsInfo
	var walk func(n ast.Node, inDefer bool)
	walk = func(root ast.Node, inDefer bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				if !inDefer {
					walk(n.Call, true)
				}
				return false
			case *ast.CallExpr:
				c, method, ok := lockMethod(info, n)
				if !ok || c != chain {
					return true
				}
				ops.any = true
				switch method {
				case "Lock", "RLock":
					if !inDefer {
						ops.lock = true
					}
				case "Unlock", "RUnlock":
					if inDefer {
						ops.deferredUnlock = true
					} else {
						ops.unlock = true
					}
				}
			}
			return true
		})
	}
	walk(body, false)
	return ops
}

// touchesChain reports whether the body has any lock effect on chain —
// a direct operation or a call to a helper whose summary acquires or
// releases it. When false, the chain's state cannot change inside the
// function: an access under that chain is a pure delegated contract, which
// lockcontract (not guardedby) reports, once, with a directive fix.
func (sm *summaries) touchesChain(body *ast.BlockStmt, chain string) bool {
	if directOps(sm.pass.TypesInfo, body, chain).any {
		return true
	}
	for _, ci := range sm.candidateChains(body) {
		if ci.text == chain {
			return true
		}
	}
	return false
}

// receiver returns the receiver name and object of a method declaration
// ("" and nil for functions and unnamed receivers).
func receiver(info *types.Info, decl *ast.FuncDecl) (string, types.Object) {
	if decl == nil || decl.Recv == nil || len(decl.Recv.List) == 0 {
		return "", nil
	}
	names := decl.Recv.List[0].Names
	if len(names) == 0 || names[0].Name == "_" {
		return "", nil
	}
	return names[0].Name, info.Defs[names[0]]
}

// rootObject resolves the base identifier of a selector chain.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// summaryChain renders a function-local chain in exportable form:
// "$recv.mu" for receiver-rooted chains, the text itself for chains rooted
// at package-level variables, "" for locals and parameters.
func summaryChain(ci chainInfo, recvName string, recvObj types.Object) string {
	if recvObj != nil && ci.root == recvObj {
		if ci.text == recvName {
			return recvMarker
		}
		if rest, ok := strings.CutPrefix(ci.text, recvName+"."); ok {
			return recvMarker + "." + rest
		}
		return ""
	}
	if v, ok := ci.root.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return ci.text
	}
	return ""
}

// siteChain translates a summary chain to the caller's rendering at one
// call site: "$recv.mu" through the callee's receiver expression,
// package-level chains verbatim.
func siteChain(info *types.Info, chain string, call *ast.CallExpr) (text string, root types.Object, ok bool) {
	rest, hasRecv := strings.CutPrefix(chain, recvMarker)
	if !hasRecv {
		return chain, nil, true
	}
	sel, selOK := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !selOK {
		return "", nil, false // method value/expression call; no receiver text
	}
	recv := ast.Unparen(sel.X)
	return types.ExprString(recv) + rest, rootObject(info, recv), true
}

// localChain renders a summary chain as seen inside the summarized
// function itself, substituting the receiver name for the marker.
func localChain(chain, recvName string) string {
	if recvName == "" {
		return chain
	}
	if chain == recvMarker {
		return recvName
	}
	if rest, ok := strings.CutPrefix(chain, recvMarker+"."); ok {
		return recvName + "." + rest
	}
	return chain
}

// declaredRequires parses the //rolosan:requires directives of a function
// declaration into summary-form chains.
func declaredRequires(decl *ast.FuncDecl, recvName string) []string {
	if decl == nil || decl.Doc == nil {
		return nil
	}
	var out []string
	for _, c := range decl.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		rest, ok := strings.CutPrefix(text, requiresDirective)
		if !ok {
			continue
		}
		for _, name := range strings.Fields(rest) {
			name = strings.TrimSuffix(name, ",")
			if name == "" {
				continue
			}
			out = append(out, normalizeRequired(name, recvName))
		}
	}
	sort.Strings(out)
	return out
}

// normalizeRequired turns a directive operand into summary form: a bare
// field name or a receiver-rooted chain becomes $recv-relative; anything
// else (package-level chains) is kept verbatim.
func normalizeRequired(name, recvName string) string {
	if recvName != "" {
		if name == recvName {
			return recvMarker
		}
		if rest, ok := strings.CutPrefix(name, recvName+"."); ok {
			return recvMarker + "." + rest
		}
	}
	if !strings.Contains(name, ".") && recvName != "" {
		return recvMarker + "." + name
	}
	return name
}

// entrySet returns the lock-state entry set for one chain in a function
// whose declared requires are given in summary form: required chains start
// locked, everything else unheld.
func entrySet(requires []string, recvName, chain string) cfg.Set {
	for _, r := range requires {
		if localChain(r, recvName) == chain {
			return cfg.Only(stLocked)
		}
	}
	return cfg.Only(stUnheld)
}
