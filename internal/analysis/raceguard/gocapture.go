package raceguard

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/rolo-storage/rolo/internal/analysis"
	"github.com/rolo-storage/rolo/internal/analysis/cfg"
)

// GoCapture is the goroutine-capture check.
var GoCapture = &analysis.Analyzer{
	Name: "gocapture",
	Doc:  "flag go statements whose literals capture loop variables or assign to captured variables without a lock",
	Run:  runGoCapture,
}

func runGoCapture(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		analysis.WalkStack(file, func(n ast.Node, stack []ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
			if !ok {
				return true // waitpairing owns non-literal go statements
			}
			checkLoopCapture(pass, lit, stack)
			checkCapturedWrites(pass, lit)
			return true
		})
	}
	return nil
}

// checkLoopCapture reports uses, inside the goroutine literal, of
// variables bound by an enclosing for or range statement. Go 1.22 gives
// every iteration its own variable, so this is no longer the classic
// shared-index bug — but goroutine inputs belong in the literal's
// parameter list, where the reader can see exactly what state the
// goroutine starts from.
func checkLoopCapture(pass *analysis.Pass, lit *ast.FuncLit, stack []ast.Node) {
	loopVars := map[types.Object]bool{}
	for _, anc := range stack {
		switch s := anc.(type) {
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{s.Key, s.Value} {
				if id, ok := e.(*ast.Ident); ok {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						loopVars[obj] = true
					}
				}
			}
		case *ast.ForStmt:
			if init, ok := s.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, e := range init.Lhs {
					if id, ok := e.(*ast.Ident); ok {
						if obj := pass.TypesInfo.Defs[id]; obj != nil {
							loopVars[obj] = true
						}
					}
				}
			}
		}
	}
	if len(loopVars) == 0 {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.TypesInfo.Uses[id]; obj != nil && loopVars[obj] {
			pass.Reportf(id.Pos(), "loop-var",
				"go function literal captures loop variable %s; pass it as a parameter", id.Name)
		}
		return true
	})
}

// checkCapturedWrites reports assignments, inside the goroutine literal,
// whose target is rooted at a variable declared outside the literal —
// state the goroutine shares with its spawner — unless some mutex is
// held on every path to the write (guardedby then checks that it is the
// right one).
func checkCapturedWrites(pass *analysis.Pass, lit *ast.FuncLit) {
	type write struct {
		stmt ast.Stmt
		root *ast.Ident
	}
	var writes []write
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if s.Tok == token.DEFINE {
					continue
				}
				if root := rootIdent(lhs); root != nil && capturedVar(pass, root, lit) {
					writes = append(writes, write{s, root})
				}
			}
		case *ast.IncDecStmt:
			if root := rootIdent(s.X); root != nil && capturedVar(pass, root, lit) {
				writes = append(writes, write{s, root})
			}
		}
		return true
	})
	if len(writes) == 0 {
		return
	}

	graph := cfg.Build(lit.Body)
	var states map[*cfg.Block]cfg.Set
	if !graph.Unanalyzable {
		states = lockStates(pass.TypesInfo, graph, "") // any mutex counts
	}
	for _, w := range writes {
		if states != nil && lockedAt(pass.TypesInfo, graph, states, w.stmt) {
			continue
		}
		pass.Reportf(w.stmt.Pos(), "captured-write",
			"goroutine assigns to captured variable %s without holding a lock; spawner and goroutine race", w.root.Name)
	}
}

// lockedAt reports whether every path reaching stmt holds some mutex.
func lockedAt(info *types.Info, graph *cfg.Graph, states map[*cfg.Block]cfg.Set, stmt ast.Stmt) bool {
	for _, blk := range graph.Blocks {
		st, reached := states[blk]
		if !reached {
			continue
		}
		for _, s := range blk.Stmts {
			if s == stmt || stmtContains(s, stmt) {
				return !st.Has(stUnheld) && !st.Empty()
			}
			st = lockTransfer(info, "", s, st)
		}
	}
	// The write sits in a nested literal or unreachable code; its lock
	// state is unknown — assume unlocked.
	return false
}

// rootIdent unwinds an assignment target to its base identifier:
// x, x.f, x[i], *x, x.f[i].g … all root at x. Blank targets yield nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch t := e.(type) {
		case *ast.Ident:
			if t.Name == "_" {
				return nil
			}
			return t
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// capturedVar reports whether id resolves to a variable declared outside
// the literal (captured from the spawning function or package scope).
func capturedVar(pass *analysis.Pass, id *ast.Ident, lit *ast.FuncLit) bool {
	obj := pass.TypesInfo.Uses[id]
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	return v.Pos() < lit.Pos() || v.Pos() > lit.End()
}
