// Package guarded exercises the guardedby analyzer: annotated fields
// accessed with and without their mutex, across branches, goroutine
// literals and RWMutex read/write modes.
package guarded

import "sync"

type memo struct {
	mu sync.Mutex
	//rolosan:guardedby mu
	entries map[string]int

	rw sync.RWMutex
	//rolosan:guardedby rw
	hits int

	//rolosan:guardedby missing
	bad int // want `rolosan:guardedby names "missing", which is not a sync\.Mutex or sync\.RWMutex field of the same struct`
}

func (m *memo) locked(k string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.entries == nil {
		m.entries = map[string]int{}
	}
	return m.entries[k]
}

func (m *memo) unlockedRead(k string) int {
	// No lock operation anywhere in the method: this is a delegated
	// contract, which lockcontract (not guardedby) reports, once, with a
	// //rolosan:requires fix.
	return m.entries[k]
}

// lockHelper is summarized as acquiring m.mu; guardedby must see the
// state change through the call.
func (m *memo) lockHelper() { m.mu.Lock() }

func (m *memo) unlockHelper() { m.mu.Unlock() }

func (m *memo) lockedViaHelper(k string) int {
	m.lockHelper()
	v := m.entries[k]
	m.unlockHelper()
	return v
}

func (m *memo) helperOnSomePaths(k string, cond bool) int {
	if cond {
		m.lockHelper()
	}
	v := m.entries[k] // want `read of guarded field m\.entries on a path where m\.mu may not be held`
	if cond {
		m.unlockHelper()
	}
	return v
}

// declaredContract is analyzed with m.mu held at entry.
//
//rolosan:requires mu
func (m *memo) declaredContract(k string) int {
	return m.entries[k]
}

func (m *memo) lockedOnSomePaths(k string, cond bool) int {
	if cond {
		m.mu.Lock()
	}
	v := m.entries[k] // want `read of guarded field m\.entries on a path where m\.mu may not be held`
	if cond {
		m.mu.Unlock()
	}
	return v
}

func (m *memo) useAfterUnlock(k string) {
	m.mu.Lock()
	m.mu.Unlock()
	m.entries[k] = 1 // want `write of guarded field m\.entries on a path where m\.mu may not be held`
}

func (m *memo) lockDoesNotReachLiteral(done chan struct{}) {
	m.mu.Lock()
	defer m.mu.Unlock()
	go func() {
		// The spawner's lock does not protect the goroutine.
		m.entries["k"] = 1 // want `write of guarded field m\.entries on a path where m\.mu may not be held`
		close(done)
	}()
	<-done
}

func (m *memo) readUnderRLock() int {
	m.rw.RLock()
	defer m.rw.RUnlock()
	return m.hits // the read lock suffices for reads
}

func (m *memo) writeUnderRLock() {
	m.rw.RLock()
	m.hits++ // want `write of guarded field m\.hits on a path where m\.rw may be held only for reading`
	m.rw.RUnlock()
}

func (m *memo) writeUnderLock() {
	m.rw.Lock()
	m.hits++
	m.rw.Unlock()
}

func newMemo() *memo {
	m := &memo{}
	m.entries = map[string]int{} //lint:allow guardedby:unheld m is not shared until newMemo returns
	return m
}

var _ = newMemo
