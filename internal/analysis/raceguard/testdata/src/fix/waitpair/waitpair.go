// Package waitpair exercises the waitpairing analyzer: goroutines with
// and without completion signals, and WaitGroup Add/Done pairing across
// the spawning function's paths.
package waitpair

import "sync"

func work(int) {}
func helper()  {}

func paired(n int) {
	var wg sync.WaitGroup
	results := make(chan int)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results <- i
		}(i)
	}
	go func() {
		wg.Wait()
		close(results)
	}()
	for v := range results {
		work(v)
	}
}

func noSignal() {
	go func() { // want `goroutine never signals completion`
		helper()
	}()
}

func nonLiteral() {
	go helper() // want `go statement calls a non-literal function`
}

func missingAdd() {
	var wg sync.WaitGroup
	go func() { // want `goroutine calls wg\.Done but the spawning function never calls wg\.Add`
		defer wg.Done()
		helper()
	}()
	wg.Wait()
}

func addNotOnAllPaths(cond bool) {
	var wg sync.WaitGroup
	if cond {
		wg.Add(1)
	}
	go func() { // want `goroutine calls wg\.Done but wg\.Add does not precede the go statement on every path`
		defer wg.Done()
		helper()
	}()
	wg.Wait()
}

func addBeforeLoop(n int) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			work(i)
		}(i)
	}
	wg.Wait()
}

func signalNotOnAllPaths(ch chan int, cond bool) {
	go func() { // want `goroutine may return without signaling completion on some path`
		if cond {
			return
		}
		ch <- 1
	}()
}

func deferredSendInWrapper(ch chan struct{}) {
	go func() {
		defer func() { ch <- struct{}{} }()
		helper()
	}()
}

func allowedFireAndForget() {
	go func() { //lint:allow waitpairing:no-signal best-effort warmup; process lifetime outlives it
		helper()
	}()
}
