// Package lockdep is a dependency fixture for lockcontract: its summaries
// (a declared requires contract and lock/unlock helpers) must reach
// importing fixture packages as facts.
package lockdep

import "sync"

// Box is a shared counter with an exported lock.
type Box struct {
	Mu sync.Mutex
	//rolosan:guardedby Mu
	Val int
}

// Bump increments the counter; callers hold the lock.
//
//rolosan:requires Mu
func (b *Box) Bump() { b.Val++ }

// Lock acquires the box lock (summarized as acquiring $recv.Mu).
func (b *Box) Lock() { b.Mu.Lock() }

// Unlock releases the box lock.
func (b *Box) Unlock() { b.Mu.Unlock() }
