// Package capture exercises the gocapture analyzer: loop variables
// captured by goroutine literals, and goroutine writes to captured state
// with and without a lock.
package capture

import "sync"

func work(int) {}

func loopCapture(items []int) {
	var wg sync.WaitGroup
	for i := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work(i) // want `go function literal captures loop variable i; pass it as a parameter`
		}()
	}
	wg.Wait()
}

func loopParam(items []int) {
	var wg sync.WaitGroup
	for i := range items {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			work(i) // a parameter, not a capture: fine
		}(i)
	}
	wg.Wait()
}

func capturedWrite() int {
	total := 0
	var wg sync.WaitGroup
	for j := 0; j < 4; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			total += j // want `goroutine assigns to captured variable total without holding a lock`
		}(j)
	}
	wg.Wait()
	return total
}

func guardedWrite() int {
	total := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for j := 0; j < 4; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			mu.Lock()
			total += j // the lock is held on every path: fine
			mu.Unlock()
		}(j)
	}
	wg.Wait()
	return total
}

func lockedOnSomePaths(cond bool) int {
	total := 0
	var mu sync.Mutex
	done := make(chan struct{})
	go func() {
		if cond {
			mu.Lock()
		}
		total++ // want `goroutine assigns to captured variable total without holding a lock`
		if cond {
			mu.Unlock()
		}
		close(done)
	}()
	<-done
	return total
}

func indexedAllowed(items []int) []int {
	out := make([]int, len(items))
	var wg sync.WaitGroup
	for i := range items {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = items[i] * 2 //lint:allow gocapture:captured-write each goroutine owns index i; wg.Wait publishes the slice
		}(i)
	}
	wg.Wait()
	return out
}

func goroutineLocals() {
	done := make(chan struct{})
	go func() {
		sum := 0
		for k := 0; k < 8; k++ {
			sum += k // the goroutine's own locals: fine
		}
		work(sum)
		close(done)
	}()
	<-done
}
