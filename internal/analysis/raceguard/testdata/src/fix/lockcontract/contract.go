// Package contract exercises the lockcontract analyzer: declared
// //rolosan:requires contracts checked at call sites, lock state flowing
// through summarized helper methods, cross-package contracts via facts,
// and undeclared-requires inference with its directive fix.
package contract

import (
	"sync"

	"fix/lockdep"
)

type store struct {
	mu sync.Mutex
	//rolosan:guardedby mu
	n int
}

// bump increments under the caller's lock.
//
//rolosan:requires mu
func (s *store) bump() { s.n++ }

// lock is summarized as acquiring $recv.mu.
func (s *store) lock() { s.mu.Lock() }

// unlock is summarized as releasing $recv.mu.
func (s *store) unlock() { s.mu.Unlock() }

func (s *store) direct() {
	s.mu.Lock()
	s.bump()
	s.mu.Unlock()
}

func (s *store) viaHelpers() {
	s.lock()
	s.bump()
	s.unlock()
}

func (s *store) unheldCall() {
	s.bump() // want `call to bump requires s\.mu held, but it may not be held here`
}

func (s *store) partiallyHeld(cond bool) {
	if cond {
		s.lock()
	}
	s.bump() // want `call to bump requires s\.mu held, but it may not be held here`
	if cond {
		s.unlock()
	}
}

func (s *store) allowedCall() {
	s.bump() //lint:allow lockcontract:requires-unheld construction-time call before the store is shared
}

// peek reads the guarded field with no locking anywhere in the method:
// the undeclared-requires inference flags it once, with a fix inserting
// the directive.
func (s *store) peek() int {
	return s.n // want `peek accesses s\.n \(guarded by s\.mu\) without locking; declare //rolosan:requires mu if callers must hold the lock`
}

func (s *store) allowedPeek() int {
	return s.n //lint:allow lockcontract:undeclared-requires snapshot read; staleness is acceptable here
}

//rolosan:requires missing
func (s *store) badDirective() {} // want `rolosan:requires names "missing", which is not a sync\.Mutex or sync\.RWMutex field of the receiver`

func useDep(b *lockdep.Box) {
	b.Bump() // want `call to Bump requires b\.Mu held, but it may not be held here`
	b.Lock()
	b.Bump()
	b.Unlock()
}

var (
	_ = (*store).direct
	_ = (*store).viaHelpers
	_ = (*store).unheldCall
	_ = (*store).partiallyHeld
	_ = (*store).allowedCall
	_ = (*store).peek
	_ = (*store).allowedPeek
	_ = (*store).badDirective
	_ = useDep
)
