package raceguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/rolo-storage/rolo/internal/analysis"
	"github.com/rolo-storage/rolo/internal/analysis/cfg"
)

// GuardedBy is the lock-discipline check for annotated struct fields.
var GuardedBy = &analysis.Analyzer{
	Name: "guardedby",
	Doc:  "flag access to a `//rolosan:guardedby mu` field on paths where mu may not be held",
	Run:  runGuardedBy,
}

// guardDirective is the annotation prefix naming a field's guarding mutex.
const guardDirective = "rolosan:guardedby"

// guard describes one annotated field: the sibling mutex field that must
// be held to touch it, and whether that mutex is an RWMutex (whose read
// lock suffices for reads).
type guard struct {
	mu string
	rw bool
}

func runGuardedBy(pass *analysis.Pass) error {
	guards := collectGuards(pass, true)
	if len(guards) == 0 {
		return nil
	}
	sm := computeSummaries(pass)
	for _, file := range pass.Files {
		funcBodiesDecl(file, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
			checkGuardedBody(pass, sm, guards, decl, body)
		})
	}
	return nil
}

// collectGuards gathers the annotated fields of every struct in the
// package. When report is set it also validates that each annotation names
// a sibling mutex field (guardedby reports; lockcontract collects
// silently, so the two analyzers do not double-flag bad annotations).
func collectGuards(pass *analysis.Pass, report bool) map[types.Object]guard {
	guards := map[types.Object]guard{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, f := range st.Fields.List {
				muName, ok := guardAnnotation(f)
				if !ok {
					continue
				}
				g, found := siblingMutex(pass, st, muName)
				if !found {
					if report {
						pass.Reportf(f.Pos(), "bad-annotation",
							"%s names %q, which is not a sync.Mutex or sync.RWMutex field of the same struct", guardDirective, muName)
					}
					continue
				}
				for _, name := range f.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guards[obj] = g
					}
				}
			}
			return true
		})
	}
	return guards
}

// guardAnnotation extracts the mutex name from a field's doc or trailing
// comment, if the field carries a guardedby directive.
func guardAnnotation(f *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			rest, ok := strings.CutPrefix(text, guardDirective)
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) > 0 {
				return fields[0], true
			}
		}
	}
	return "", false
}

// siblingMutex finds the struct field named muName and classifies it.
func siblingMutex(pass *analysis.Pass, st *ast.StructType, muName string) (guard, bool) {
	for _, f := range st.Fields.List {
		for _, name := range f.Names {
			if name.Name != muName {
				continue
			}
			if t := pass.TypesInfo.TypeOf(f.Type); t != nil {
				if m, rw := isMutex(t); m {
					return guard{mu: muName, rw: rw}, true
				}
			}
			return guard{}, false
		}
	}
	return guard{}, false
}

// access is one read or write of a guarded field within a function body.
type access struct {
	sel   *ast.SelectorExpr
	write bool
	g     guard
	chain string       // rendered mutex chain, e.g. "m.mu"
	root  types.Object // object the chain's base identifier resolves to
}

// collectAccesses gathers the guarded-field accesses of one function body
// (nested literals excluded — they are visited on their own, with the lock
// assumed released, because they run at another time).
func collectAccesses(pass *analysis.Pass, guards map[types.Object]guard, body *ast.BlockStmt) []access {
	var accesses []access
	analysis.WalkStack(body, func(n ast.Node, stack []ast.Node) bool {
		if n == body {
			return true
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		g, guarded := guards[pass.TypesInfo.Uses[sel.Sel]]
		if !guarded {
			return true
		}
		accesses = append(accesses, access{
			sel:   sel,
			write: isWrite(sel, stack),
			g:     g,
			chain: types.ExprString(ast.Unparen(sel.X)) + "." + g.mu,
			root:  rootObject(pass.TypesInfo, sel.X),
		})
		return true
	})
	return accesses
}

// checkGuardedBody verifies every guarded-field access in one function
// body. decl is the enclosing declaration (nil for function literals): its
// //rolosan:requires directives seed the lock state held at entry, and
// helper calls transfer lock state through their summaries. Receiver-
// rooted chains the body never locks at all are lockcontract's
// undeclared-requires finding (one report per method, with a directive
// fix), so guardedby stays silent on them instead of flagging every
// access.
func checkGuardedBody(pass *analysis.Pass, sm *summaries, guards map[types.Object]guard, decl *ast.FuncDecl, body *ast.BlockStmt) {
	accesses := collectAccesses(pass, guards, body)
	if len(accesses) == 0 {
		return
	}
	recvName, recvObj := receiver(pass.TypesInfo, decl)
	requires := declaredRequires(decl, recvName)

	graph := cfg.Build(body)
	if graph.Unanalyzable {
		for _, a := range accesses {
			pass.Reportf(a.sel.Pos(), "unverifiable",
				"%s of guarded field %s cannot be verified: control flow is unanalyzable (%s); may not hold %s",
				rw(a.write), fieldDisp(a.sel), graph.Reason, a.chain)
		}
		return
	}

	// One dataflow per distinct mutex chain; fold each block's statements
	// to reach every access's program point.
	byChain := map[string][]access{}
	for _, a := range accesses {
		if recvObj != nil && a.root == recvObj &&
			entrySet(requires, recvName, a.chain) == cfg.Only(stUnheld) &&
			!sm.touchesChain(body, a.chain) {
			continue // lockcontract:undeclared-requires owns this chain
		}
		byChain[a.chain] = append(byChain[a.chain], a)
	}
	for chain, list := range byChain {
		entry := entrySet(requires, recvName, chain)
		states := sm.states(graph, chain, entry)
		for _, blk := range graph.Blocks {
			st, reached := states[blk]
			if !reached {
				continue
			}
			for _, s := range blk.Stmts {
				for _, a := range list {
					if !stmtContains(s, a.sel) {
						continue
					}
					switch {
					case st.Has(stUnheld):
						pass.Reportf(a.sel.Pos(), "unheld",
							"%s of guarded field %s on a path where %s may not be held",
							rw(a.write), fieldDisp(a.sel), chain)
					case a.write && st.Has(stRLocked):
						pass.Reportf(a.sel.Pos(), "rlock-write",
							"write of guarded field %s on a path where %s may be held only for reading",
							fieldDisp(a.sel), chain)
					}
				}
				st = sm.transfer(chain, s, st)
			}
		}
	}
}

// isWrite classifies a guarded-field selector by its ancestors: the
// assignment target (including element and sub-field stores through it),
// an inc/dec target, or an address-taken operand counts as a write.
func isWrite(sel *ast.SelectorExpr, stack []ast.Node) bool {
	cur := ast.Node(sel)
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			cur = p
		case *ast.IndexExpr:
			if p.X != cur {
				return false // the access is the index expression: a read
			}
			cur = p
		case *ast.StarExpr:
			cur = p
		case *ast.SelectorExpr:
			if p.X != cur {
				return false
			}
			cur = p
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if lhs == cur {
					return true
				}
			}
			return false
		case *ast.IncDecStmt:
			return p.X == cur
		case *ast.UnaryExpr:
			// Taking the address lets the pointee escape the lock's
			// scope; treat it as a write.
			return p.Op == token.AND && p.X == cur
		default:
			return false
		}
	}
	return false
}

func rw(write bool) string {
	if write {
		return "write"
	}
	return "read"
}

func fieldDisp(sel *ast.SelectorExpr) string {
	return types.ExprString(sel)
}
