package raceguard

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"github.com/rolo-storage/rolo/internal/analysis"
	"github.com/rolo-storage/rolo/internal/analysis/callgraph"
	"github.com/rolo-storage/rolo/internal/analysis/cfg"
)

// LockContract is the interprocedural side of the lock-discipline family:
// it exports per-function lock summaries as facts, enforces declared
// `//rolosan:requires mu` contracts at every static call site, and flags
// methods that touch guarded fields under a contract they never declared.
var LockContract = &analysis.Analyzer{
	Name: "lockcontract",
	Doc: "check //rolosan:requires lock contracts at call sites and flag undeclared ones\n\n" +
		"A function declared `//rolosan:requires mu` is analyzed with mu held\n" +
		"and every caller must hold mu (or a helper summarized as acquiring\n" +
		"it) at the call site. A method that accesses a `//rolosan:guardedby`\n" +
		"field without any lock operation of its own is flagged once, with a\n" +
		"fix inserting the missing directive.",
	Run: runLockContract,
}

func runLockContract(pass *analysis.Pass) error {
	sm := computeSummaries(pass)
	for fn, s := range sm.local {
		if !s.empty() {
			pass.ExportFact(lockNS, fn, s)
		}
	}
	guards := collectGuards(pass, false)
	for _, node := range sm.graph.All() {
		checkContracts(pass, sm, guards, node)
	}
	return nil
}

// checkContracts runs the three lockcontract checks over one declared
// function: directive validation, call-site contract enforcement, and
// undeclared-requires inference.
func checkContracts(pass *analysis.Pass, sm *summaries, guards map[types.Object]guard, node *callgraph.Node) {
	decl := node.Decl
	recvName, recvObj := receiver(pass.TypesInfo, decl)
	requires := declaredRequires(decl, recvName)
	validateRequires(pass, decl, requires)

	// Demands: call sites whose static callee declares a required chain,
	// grouped by the chain's caller-local rendering. Calls inside nested
	// literals and defers run at another time and are not checked here.
	demands := map[string][]*ast.CallExpr{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			callee := callgraph.StaticCallee(pass.TypesInfo, n)
			if callee == nil {
				return true
			}
			if s := sm.forFunc(callee); s != nil {
				for _, r := range s.Requires {
					if text, _, ok := siteChain(pass.TypesInfo, r, n); ok {
						demands[text] = append(demands[text], n)
					}
				}
			}
		}
		return true
	})

	if len(demands) > 0 {
		g := cfg.Build(decl.Body)
		if !g.Unanalyzable {
			chains := make([]string, 0, len(demands))
			for c := range demands {
				chains = append(chains, c)
			}
			sort.Strings(chains)
			for _, chain := range chains {
				entry := entrySet(requires, recvName, chain)
				states := sm.states(g, chain, entry)
				for _, blk := range g.Blocks {
					st, reached := states[blk]
					if !reached {
						continue
					}
					for _, s := range blk.Stmts {
						for _, call := range demands[chain] {
							if stmtContains(s, call) && st.Has(stUnheld) {
								callee := callgraph.StaticCallee(pass.TypesInfo, call)
								pass.Reportf(call.Pos(), "requires-unheld",
									"call to %s requires %s held, but it may not be held here",
									callee.Name(), chain)
							}
						}
						st = sm.transfer(chain, s, st)
					}
				}
			}
		}
	}

	inferRequires(pass, sm, guards, decl, recvName, recvObj, requires)
}

// inferRequires flags receiver-rooted guarded-field accesses in methods
// that neither lock the chain themselves (directly or through helpers) nor
// declare the contract, suggesting the directive as a fix. One report per
// chain: the finding is about the method's missing contract, not about
// each access.
func inferRequires(pass *analysis.Pass, sm *summaries, guards map[types.Object]guard,
	decl *ast.FuncDecl, recvName string, recvObj types.Object, requires []string) {
	if recvObj == nil || len(guards) == 0 {
		return
	}
	reported := map[string]bool{}
	for _, a := range collectAccesses(pass, guards, decl.Body) {
		if a.root != recvObj || reported[a.chain] {
			continue
		}
		if entrySet(requires, recvName, a.chain) != cfg.Only(stUnheld) {
			continue // declared; the body is analyzed with the lock held
		}
		if sm.touchesChain(decl.Body, a.chain) {
			continue // locks locally on some path: guardedby's domain
		}
		reported[a.chain] = true
		operand := strings.TrimPrefix(a.chain, recvName+".")
		directive := fmt.Sprintf("//%s %s", requiresDirective, operand)
		pass.Report(analysis.Diagnostic{
			Pos:      a.sel.Pos(),
			Category: "undeclared-requires",
			Message: fmt.Sprintf(
				"%s accesses %s (guarded by %s) without locking; declare %s if callers must hold the lock",
				decl.Name.Name, fieldDisp(a.sel), a.chain, directive),
			SuggestedFixes: []analysis.SuggestedFix{{
				Message: "declare the lock contract on " + decl.Name.Name,
				Edits: []analysis.TextEdit{{
					Pos:     decl.Pos(),
					End:     decl.Pos(),
					NewText: directive + "\n",
				}},
			}},
		})
	}
}

// validateRequires checks that each declared chain names something the
// analysis can hold: a mutex field of the receiver for $recv-relative
// single-segment chains. Deeper paths and package-level chains are taken
// on faith (they still participate textually).
func validateRequires(pass *analysis.Pass, decl *ast.FuncDecl, requires []string) {
	if len(requires) == 0 {
		return
	}
	for _, r := range requires {
		field, ok := strings.CutPrefix(r, recvMarker+".")
		if !ok || strings.Contains(field, ".") {
			continue
		}
		if !receiverHasMutexField(pass, decl, field) {
			pass.Reportf(decl.Pos(), "bad-annotation",
				"%s names %q, which is not a sync.Mutex or sync.RWMutex field of the receiver",
				requiresDirective, field)
		}
	}
}

// receiverHasMutexField reports whether the method's receiver struct has a
// mutex field with the given name.
func receiverHasMutexField(pass *analysis.Pass, decl *ast.FuncDecl, field string) bool {
	fn, _ := pass.TypesInfo.Defs[decl.Name].(*types.Func)
	if fn == nil {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != field {
			continue
		}
		m, _ := isMutex(f.Type())
		return m
	}
	return false
}
