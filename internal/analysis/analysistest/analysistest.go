// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against `// want` expectations, mirroring the x/tools
// package of the same name with only the standard library.
//
// Fixture layout follows the x/tools convention: a testdata directory
// containing src/<importpath>/*.go. Fixture packages may import each
// other (the harness resolves imports under testdata/src first) and the
// standard library (resolved by compiling GOROOT sources with the
// `source` importer, which needs no pre-built export data and therefore
// works in hermetic build environments).
//
// Expectations are written as trailing comments on the line a diagnostic
// is expected:
//
//	time.Now() // want `wall-clock`
//
// The string is a regular expression that must match the diagnostic
// message. Both backquoted and double-quoted forms are accepted, and a
// line may carry several expectations. Diagnostics with no matching
// expectation, and expectations with no matching diagnostic, fail the
// test.
package analysistest

import (
	"bytes"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/rolo-storage/rolo/internal/analysis"
)

// Run applies the analyzer to each fixture package (an import path under
// testdata/src) and reports mismatches through t.
//
// Fixture dependencies under testdata/src are analyzed first (their
// findings discarded) so the facts they export are available to the
// package under test — the in-memory equivalent of the vetx transport.
//
// If a fixture file has a sibling named <file>.go.golden, the harness
// additionally applies the suggested fixes of the run's findings to the
// file and requires the gofmt-formatted result to equal the golden file.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	fset := token.NewFileSet()
	ld := &loader{
		testdata: testdata,
		fset:     fset,
		units:    make(map[string]*analysis.Unit),
		std:      importer.ForCompiler(fset, "source", nil),
		facts:    make(analysis.Facts),
		analyzed: make(map[string]bool),
	}
	for _, path := range paths {
		unit, err := ld.load(path)
		if err != nil {
			t.Errorf("loading fixture %q: %v", path, err)
			continue
		}
		// Dependencies first: ld.order is post-order, so a package's
		// imports always precede it.
		depsOK := true
		for _, p := range ld.order {
			if p == path || ld.analyzed[p] {
				continue
			}
			if err := ld.analyze(p, a); err != nil {
				t.Errorf("analyzing fixture dependency %q: %v", p, err)
				depsOK = false
			}
		}
		if !depsOK {
			continue
		}
		findings, exported, err := analysis.RunAnalyzersFacts(unit, []*analysis.Analyzer{a}, ld.facts)
		if err != nil {
			t.Errorf("running %s on %q: %v", a.Name, path, err)
			continue
		}
		ld.mergeFacts(exported)
		ld.analyzed[path] = true
		checkExpectations(t, ld, path, findings)
		checkGolden(t, ld, path, findings)
	}
}

// analyze runs the analyzer over one already-loaded fixture package for
// its facts only.
func (l *loader) analyze(path string, a *analysis.Analyzer) error {
	_, exported, err := analysis.RunAnalyzersFacts(l.units[path], []*analysis.Analyzer{a}, l.facts)
	if err != nil {
		return err
	}
	l.mergeFacts(exported)
	l.analyzed[path] = true
	return nil
}

func (l *loader) mergeFacts(facts analysis.Facts) {
	for k, v := range facts {
		l.facts[k] = v
	}
}

// checkGolden verifies golden fix files: for every fixture file with a
// .golden sibling, applying the findings' suggested fixes must reproduce
// the golden content exactly.
func checkGolden(t *testing.T, ld *loader, path string, findings []analysis.Finding) {
	t.Helper()
	unit := ld.units[path]
	for _, f := range unit.Files {
		filename := ld.fset.Position(f.Pos()).Filename
		want, err := os.ReadFile(filename + ".golden")
		if err != nil {
			continue // no golden file for this fixture
		}
		src, err := os.ReadFile(filename)
		if err != nil {
			t.Errorf("reading fixture %s: %v", filename, err)
			continue
		}
		fixed, _, err := analysis.ApplyFixesToSource(filename, src, findings)
		if err != nil {
			t.Errorf("applying fixes to %s: %v", filename, err)
			continue
		}
		if !bytes.Equal(fixed, want) {
			t.Errorf("%s: applying fixes does not reproduce %s.golden:\n--- got ---\n%s--- want ---\n%s",
				filename, filepath.Base(filename), fixed, want)
		}
	}
}

// loader resolves fixture packages under testdata/src, falling back to
// the source importer for everything else.
type loader struct {
	testdata string
	fset     *token.FileSet
	units    map[string]*analysis.Unit
	std      types.Importer
	order    []string // successful loads, post-order (dependencies first)
	facts    analysis.Facts
	analyzed map[string]bool
}

func (l *loader) load(path string) (*analysis.Unit, error) {
	if u, ok := l.units[path]; ok {
		if u == nil {
			return nil, fmt.Errorf("import cycle through %q", path)
		}
		return u, nil
	}
	dir := filepath.Join(l.testdata, "src", filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	l.units[path] = nil // cycle marker
	unit, err := analysis.TypecheckFiles(l.fset, path, files, l, "")
	if err != nil {
		delete(l.units, path)
		return nil, err
	}
	l.units[path] = unit
	l.order = append(l.order, path)
	return unit, nil
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.testdata, "src", filepath.FromSlash(path)); dirExists(dir) {
		unit, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return unit.Pkg, nil
	}
	return l.std.Import(path)
}

func dirExists(dir string) bool {
	info, err := os.Stat(dir)
	return err == nil && info.IsDir()
}

// expectation is one `// want` pattern.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

func checkExpectations(t *testing.T, ld *loader, path string, findings []analysis.Finding) {
	t.Helper()
	unit := ld.units[path]
	var wants []*expectation
	for _, f := range unit.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				posn := ld.fset.Position(c.Pos())
				patterns, err := parseWant(c.Text)
				if err != nil {
					t.Errorf("%s: %v", posn, err)
					continue
				}
				for _, p := range patterns {
					wants = append(wants, &expectation{file: posn.Filename, line: posn.Line, pattern: p})
				}
			}
		}
	}
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if w.file == f.Pos.Filename && w.line == f.Pos.Line && w.pattern.MatchString(f.Message) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", f.Pos, f.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.pattern)
		}
	}
}

// parseWant extracts the regexp patterns from a `// want` comment, or
// nil if the comment is not an expectation.
func parseWant(comment string) ([]*regexp.Regexp, error) {
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	rest, ok := strings.CutPrefix(text, "want ")
	if !ok {
		return nil, nil
	}
	var patterns []*regexp.Regexp
	rest = strings.TrimSpace(rest)
	for rest != "" {
		var raw string
		switch rest[0] {
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated ` in want comment")
			}
			raw = rest[1 : 1+end]
			rest = rest[end+2:]
		case '"':
			var err error
			s, tail, ok := cutQuoted(rest)
			if !ok {
				return nil, fmt.Errorf("malformed quoted string in want comment")
			}
			raw, err = strconv.Unquote(s)
			if err != nil {
				return nil, fmt.Errorf("want comment: %v", err)
			}
			rest = tail
		default:
			return nil, fmt.Errorf("want comment: expected quoted regexp, got %q", rest)
		}
		re, err := regexp.Compile(raw)
		if err != nil {
			return nil, fmt.Errorf("want comment: %v", err)
		}
		patterns = append(patterns, re)
		rest = strings.TrimSpace(rest)
	}
	return patterns, nil
}

// cutQuoted splits a leading double-quoted Go string literal (with
// escapes) off s, returning the literal (quotes included) and the tail.
func cutQuoted(s string) (lit, tail string, ok bool) {
	if s == "" || s[0] != '"' {
		return "", "", false
	}
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return s[:i+1], s[i+1:], true
		}
	}
	return "", "", false
}
