package callgraph

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

func buildGraph(t *testing.T, src string) (*Graph, *types.Package) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("p", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return Build([]*ast.File{file}, info), pkg
}

func node(t *testing.T, g *Graph, name string) *Node {
	t.Helper()
	for _, n := range g.All() {
		if n.Func.Name() == name {
			return n
		}
	}
	t.Fatalf("no node %q", name)
	return nil
}

func callees(n *Node) []string {
	var out []string
	for _, c := range n.Calls {
		if c.Callee != nil {
			out = append(out, c.Callee.Name())
		} else {
			out = append(out, "<dynamic>")
		}
	}
	return out
}

func TestStaticAndMethodCalls(t *testing.T) {
	g, _ := buildGraph(t, `package p
type T struct{}
func (T) m() {}
func leaf() {}
func caller(v T) {
	leaf()
	v.m()
}
`)
	c := node(t, g, "caller")
	if c.Dynamic {
		t.Error("caller marked dynamic; all its calls are static")
	}
	got := callees(c)
	if len(got) != 2 || got[0] != "leaf" || got[1] != "m" {
		t.Errorf("callees = %v, want [leaf m]", got)
	}
}

func TestInterfaceDispatchIsDynamic(t *testing.T) {
	g, _ := buildGraph(t, `package p
type I interface{ m() }
func f(i I) { i.m() }
`)
	n := node(t, g, "f")
	if !n.Dynamic {
		t.Error("interface method call not marked dynamic")
	}
	if got := callees(n); len(got) != 1 || got[0] != "<dynamic>" {
		t.Errorf("callees = %v, want [<dynamic>]", got)
	}
}

func TestFuncValueAndLiteralAreDynamic(t *testing.T) {
	g, _ := buildGraph(t, `package p
func f(cb func()) {
	cb()
	func() {}()
}
`)
	n := node(t, g, "f")
	if !n.Dynamic {
		t.Error("function-value call not marked dynamic")
	}
	if len(n.Calls) != 2 {
		t.Errorf("calls = %v, want two dynamic calls", callees(n))
	}
}

func TestConversionsAndBuiltinsNotDynamic(t *testing.T) {
	g, _ := buildGraph(t, `package p
type ms []int
func f(x int) int {
	s := ms(nil)
	s = append(s, int64EqHack(x))
	_ = []byte("k")
	return len(s)
}
func int64EqHack(x int) int { return x }
`)
	n := node(t, g, "f")
	if n.Dynamic {
		t.Errorf("conversions/builtins marked dynamic; calls = %v", callees(n))
	}
	if got := callees(n); len(got) != 1 || got[0] != "int64EqHack" {
		t.Errorf("callees = %v, want [int64EqHack]", got)
	}
}

func TestCrossPackageCalleeResolved(t *testing.T) {
	g, pkg := buildGraph(t, `package p
import "strings"
func f(s string) string { return strings.TrimSpace(s) }
`)
	n := node(t, g, "f")
	if n.Dynamic || len(n.Calls) != 1 || n.Calls[0].Callee == nil {
		t.Fatalf("strings.TrimSpace not resolved statically: %v", callees(n))
	}
	if got := n.Calls[0].Callee.Pkg(); got == pkg || got.Path() != "strings" {
		t.Errorf("callee package = %v, want strings", got)
	}
}

func TestSCCsBottomUp(t *testing.T) {
	// leaf <- mid <- {even, odd} (mutually recursive) <- root
	g, _ := buildGraph(t, `package p
func leaf() {}
func mid() { leaf() }
func even(n int) {
	if n > 0 {
		odd(n - 1)
	}
	mid()
}
func odd(n int) {
	if n > 0 {
		even(n - 1)
	}
}
func root() { even(3) }
`)
	sccs := g.SCCs()
	pos := make(map[string]int)
	size := make(map[string]int)
	for i, comp := range sccs {
		for _, n := range comp {
			pos[n.Func.Name()] = i
			size[n.Func.Name()] = len(comp)
		}
	}
	if size["even"] != 2 || pos["even"] != pos["odd"] {
		t.Errorf("even/odd not in one component: pos=%v size=%v", pos, size)
	}
	// Callee-first: every call edge goes to an equal-or-earlier component.
	for caller, callee := range map[string]string{
		"mid": "leaf", "even": "mid", "root": "even",
	} {
		if pos[callee] >= pos[caller] {
			t.Errorf("%s (comp %d) should come after callee %s (comp %d)",
				caller, pos[caller], callee, pos[callee])
		}
	}
}
