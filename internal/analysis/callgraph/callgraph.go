// Package callgraph builds the static call graph of one package: a node
// per declared function or method, with an edge per call whose callee the
// type information resolves statically — direct calls to package-level
// functions and method calls through a concrete receiver, whether the
// callee lives in this package or an imported one.
//
// The builder is deliberately conservative about everything dynamic.
// Calls through interface methods, function-typed values, and function
// literals have no static callee; they are recorded as calls with a nil
// Callee and flagged on the caller via Node.Dynamic, so summary-based
// analyzers know the node's behavior is not fully described by its
// outgoing edges. Function literals themselves are not nodes: a literal
// runs at another time under another analysis (the same convention the
// CFG-based analyzers use), and a call to one is a dynamic call.
//
// Bottom-up summary propagation drives the API shape: SCCs returns the
// strongly connected components in callee-first order, so an analyzer
// folds summaries from leaves toward roots, iterating within a component
// (mutual recursion) until its small lattice reaches a fixpoint.
package callgraph

import (
	"go/ast"
	"go/types"
)

// A Call is one call site in a function body.
type Call struct {
	Site   *ast.CallExpr
	Callee *types.Func // nil when the callee is dynamic
}

// A Node is one declared function or method of the package.
type Node struct {
	Func *types.Func
	Decl *ast.FuncDecl
	// Calls lists the body's call sites in source order, including calls
	// inside nested function literals (a literal's effects are its
	// enclosing function's responsibility only insofar as the analyzers
	// decide; they can filter by position).
	Calls []Call
	// Dynamic is set when the body contains at least one call the types
	// info cannot resolve to a single *types.Func — through an interface,
	// a function value, a literal, or a builtin-wrapped expression.
	Dynamic bool
}

// A Graph is the static call graph of one package.
type Graph struct {
	// Nodes maps each declared function to its node.
	Nodes map[*types.Func]*Node
	order []*Node // declaration order, for deterministic iteration
}

// Build constructs the call graph of the package's files.
func Build(files []*ast.File, info *types.Info) *Graph {
	g := &Graph{Nodes: make(map[*types.Func]*Node)}
	for _, file := range files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := &Node{Func: fn, Decl: fd}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := StaticCallee(info, call)
				if callee == nil {
					if !isNonFunctionCall(info, call) {
						node.Dynamic = true
						node.Calls = append(node.Calls, Call{Site: call})
					}
					return true
				}
				node.Calls = append(node.Calls, Call{Site: call, Callee: callee})
				return true
			})
			g.Nodes[fn] = node
			g.order = append(g.order, node)
		}
	}
	return g
}

// All returns the nodes in declaration order.
func (g *Graph) All() []*Node { return g.order }

// StaticCallee resolves the single function or method a call must invoke,
// or nil for dynamic calls, conversions and builtins. Unlike a plain
// Uses lookup, method values and interface methods resolve to nil unless
// the receiver's static type pins a concrete method.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return nil
		}
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			// A method call through an interface dispatches dynamically.
			if types.IsInterface(sel.Recv()) {
				return nil
			}
		}
		return fn
	}
	return nil
}

// isNonFunctionCall reports whether the CallExpr is not a function call
// at all: a type conversion or a builtin. Those are not dynamic calls.
func isNonFunctionCall(info *types.Info, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch info.Uses[fun].(type) {
		case *types.TypeName, *types.Builtin:
			return true
		}
	case *ast.SelectorExpr:
		if _, ok := info.Uses[fun.Sel].(*types.TypeName); ok {
			return true
		}
	case *ast.ArrayType, *ast.MapType, *ast.ChanType, *ast.FuncType,
		*ast.InterfaceType, *ast.StructType, *ast.StarExpr:
		return true
	}
	return false
}

// SCCs returns the graph's strongly connected components in bottom-up
// (callee-first) order: every intra-package call from a node in component
// i leads to a component with index <= i, with equality exactly for
// calls inside the component. Calls to other packages do not shape the
// order (their summaries arrive as imported facts). The classic Tarjan
// algorithm emits components in reverse topological order, which is the
// bottom-up order summary propagation wants.
func (g *Graph) SCCs() [][]*Node {
	type state struct {
		index, lowlink int
		onStack        bool
	}
	states := make(map[*Node]*state, len(g.order))
	var stack []*Node
	var sccs [][]*Node
	next := 0

	var strongconnect func(v *Node)
	strongconnect = func(v *Node) {
		sv := &state{index: next, lowlink: next}
		next++
		states[v] = sv
		stack = append(stack, v)
		sv.onStack = true

		for _, call := range v.Calls {
			w, ok := g.Nodes[call.Callee]
			if !ok {
				continue // dynamic or cross-package
			}
			sw, seen := states[w]
			if !seen {
				strongconnect(w)
				if lw := states[w].lowlink; lw < sv.lowlink {
					sv.lowlink = lw
				}
			} else if sw.onStack {
				if sw.index < sv.lowlink {
					sv.lowlink = sw.index
				}
			}
		}

		if sv.lowlink == sv.index {
			var comp []*Node
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				states[w].onStack = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, comp)
		}
	}
	for _, v := range g.order {
		if _, seen := states[v]; !seen {
			strongconnect(v)
		}
	}
	return sccs
}
