package callgraph

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// cyclesString renders an enumeration result compactly: "0>1>2 3>4".
func cyclesString(cycles [][]int) string {
	parts := make([]string, len(cycles))
	for i, c := range cycles {
		elems := make([]string, len(c))
		for j, v := range c {
			elems[j] = fmt.Sprint(v)
		}
		parts[i] = strings.Join(elems, ">")
	}
	return strings.Join(parts, " ")
}

func succsOf(edges map[int][]int) func(int) []int {
	return func(v int) []int { return edges[v] }
}

func TestEnumerateCyclesMultiSCC(t *testing.T) {
	// Two disjoint cycles bridged by acyclic edges: {0,1} and {3,4,5},
	// with 2 a bridge vertex on no cycle. Every elementary cycle must be
	// reported exactly once, rooted at its smallest vertex.
	edges := map[int][]int{
		0: {1, 2},
		1: {0},
		2: {3},
		3: {4},
		4: {5},
		5: {3},
	}
	got := cyclesString(EnumerateCycles(6, succsOf(edges)))
	if want := "0>1 3>4>5"; got != want {
		t.Errorf("cycles = %q, want %q", got, want)
	}
}

func TestEnumerateCyclesSelfLoop(t *testing.T) {
	// A self-loop is a cycle of length one; it must coexist with longer
	// cycles through the same vertex.
	edges := map[int][]int{
		0: {0, 1},
		1: {0},
	}
	got := cyclesString(EnumerateCycles(2, succsOf(edges)))
	if want := "0 0>1"; got != want {
		t.Errorf("cycles = %q, want %q", got, want)
	}
}

func TestEnumerateCyclesSharedVertex(t *testing.T) {
	// A figure-eight: two cycles sharing vertex 0 form one SCC with two
	// elementary cycles (plus no spurious composites of length 4).
	edges := map[int][]int{
		0: {1, 2},
		1: {0},
		2: {0},
	}
	got := cyclesString(EnumerateCycles(3, succsOf(edges)))
	if want := "0>1 0>2"; got != want {
		t.Errorf("cycles = %q, want %q", got, want)
	}
}

func TestEnumerateCyclesDeterministicUnderEdgeOrder(t *testing.T) {
	// The enumeration must not depend on successor insertion order:
	// shuffled adjacency lists are re-sorted by the caller in lockorder,
	// and here we assert the vertex-indexed walk gives one answer for
	// any successor permutation.
	base := map[int][]int{
		0: {1, 3},
		1: {2},
		2: {0, 1},
		3: {0},
	}
	want := cyclesString(EnumerateCycles(4, succsOf(base)))
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		shuffled := make(map[int][]int, len(base))
		for v, ws := range base {
			p := append([]int(nil), ws...)
			rng.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
			shuffled[v] = p
		}
		got := cyclesString(EnumerateCycles(4, succsOf(shuffled)))
		if got != want {
			t.Fatalf("trial %d: cycles = %q, want %q", trial, got, want)
		}
	}
}

func TestEnumerateCyclesCap(t *testing.T) {
	// A complete digraph on 8 vertices has far more elementary cycles
	// than the cap; the enumeration must stop at maxCycles rather than
	// blow up.
	succs := func(v int) []int {
		var out []int
		for w := 0; w < 8; w++ {
			if w != v {
				out = append(out, w)
			}
		}
		return out
	}
	got := EnumerateCycles(8, succs)
	if len(got) != maxCycles {
		t.Errorf("len(cycles) = %d, want cap %d", len(got), maxCycles)
	}
}

func TestGraphCyclesRecursionGroups(t *testing.T) {
	g, _ := buildGraph(t, `package p
func self() { self() }
func even(n int) {
	if n > 0 {
		odd(n - 1)
	}
}
func odd(n int) {
	if n > 0 {
		even(n - 1)
	}
}
func acyclic() { even(3) }
`)
	cycles := g.Cycles()
	var rendered []string
	for _, cyc := range cycles {
		names := make([]string, len(cyc))
		for i, n := range cyc {
			names[i] = n.Func.Name()
		}
		rendered = append(rendered, strings.Join(names, ">"))
	}
	if got, want := strings.Join(rendered, " "), "self even>odd"; got != want {
		t.Errorf("graph cycles = %q, want %q", got, want)
	}
}
