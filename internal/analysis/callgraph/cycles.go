package callgraph

import (
	"go/types"
	"sort"
)

// Elementary-cycle enumeration, the engine behind lockorder's deadlock
// reports. The algorithm is a bounded variant of Johnson's: vertices are
// visited in index order, and a DFS rooted at vertex s explores only
// vertices strictly greater than s inside s's strongly connected
// component, so every elementary cycle is emitted exactly once — rooted
// at (and starting with) its smallest vertex. That rooting convention is
// also what makes the output deterministic: same graph, same cycles, same
// order, regardless of how the edges were inserted.
//
// Enumeration is exponential in the worst case (a complete graph has
// ~(n-1)! elementary cycles), so the search is capped; analyses report
// what was found and the cap is generous compared to any real lock graph.

// maxCycles bounds one enumeration. A lock-order graph that produces this
// many distinct elementary cycles is broken far beyond the point where
// listing more of them helps.
const maxCycles = 256

// EnumerateCycles returns the elementary cycles of the directed graph
// with vertices 0..n-1 and successor function succs, each cycle as the
// vertex sequence starting at its smallest member (a self-loop is [v]).
// Adjacency is normalized first — duplicates dropped, successors sorted —
// so the output order and content are deterministic regardless of edge
// insertion order. At most maxCycles cycles are returned.
func EnumerateCycles(n int, succs func(int) []int) [][]int {
	adj := make([][]int, n)
	for v := 0; v < n; v++ {
		ws := append([]int(nil), succs(v)...)
		sort.Ints(ws)
		adj[v] = ws[:0]
		for i, w := range ws {
			if w < 0 || w >= n || (i > 0 && w == ws[i-1]) {
				continue
			}
			adj[v] = append(adj[v], w)
		}
	}
	scc := sccIDs(n, func(v int) []int { return adj[v] })

	var out [][]int
	path := make([]int, 0, n)
	onPath := make([]bool, n)
	var root int
	var dfs func(v int) bool
	dfs = func(v int) bool {
		path = append(path, v)
		onPath[v] = true
		defer func() {
			path = path[:len(path)-1]
			onPath[v] = false
		}()
		for _, w := range adj[v] {
			switch {
			case w == root:
				if len(out) >= maxCycles {
					return false
				}
				out = append(out, append([]int(nil), path...))
			case w > root && !onPath[w] && scc[w] == scc[root]:
				if !dfs(w) {
					return false
				}
			}
		}
		return true
	}
	for root = 0; root < n; root++ {
		if !dfs(root) {
			break
		}
	}
	return out
}

// sccIDs labels each vertex with its strongly-connected-component id via
// Tarjan's algorithm over the integer graph.
func sccIDs(n int, succs func(int) []int) []int {
	const unvisited = -1
	index := make([]int, n)
	lowlink := make([]int, n)
	comp := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int
	next, nComp := 0, 0

	var strongconnect func(v int)
	strongconnect = func(v int) {
		index[v] = next
		lowlink[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succs(v) {
			switch {
			case index[w] == unvisited:
				strongconnect(w)
				if lowlink[w] < lowlink[v] {
					lowlink[v] = lowlink[w]
				}
			case onStack[w]:
				if index[w] < lowlink[v] {
					lowlink[v] = index[w]
				}
			}
		}
		if lowlink[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = nComp
				if w == v {
					break
				}
			}
			nComp++
		}
	}
	for v := 0; v < n; v++ {
		if index[v] == unvisited {
			strongconnect(v)
		}
	}
	return comp
}

// Cycles returns the elementary cycles of the package's intra-package
// call graph (recursion groups), each as the node sequence starting at
// the node earliest in declaration order. Dynamic calls and calls to
// other packages contribute no edges.
func (g *Graph) Cycles() [][]*Node {
	idx := make(map[*types.Func]int, len(g.order))
	for i, n := range g.order {
		idx[n.Func] = i
	}
	succs := make([][]int, len(g.order))
	for i, n := range g.order {
		var dedup map[int]bool
		for _, c := range n.Calls {
			if j, ok := idx[c.Callee]; ok {
				if dedup == nil {
					dedup = make(map[int]bool)
				}
				if !dedup[j] {
					dedup[j] = true
					succs[i] = append(succs[i], j)
				}
			}
		}
	}
	raw := EnumerateCycles(len(g.order), func(i int) []int { return succs[i] })
	out := make([][]*Node, len(raw))
	for i, cyc := range raw {
		nodes := make([]*Node, len(cyc))
		for j, v := range cyc {
			nodes[j] = g.order[v]
		}
		out[i] = nodes
	}
	return out
}
