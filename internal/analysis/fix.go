package analysis

import (
	"bytes"
	"fmt"
	"go/format"
	"os"
	"sort"
)

// This file is the autofix engine: it turns the SuggestedFixes carried by
// findings into edited, gofmt-clean source files. The engine is
// deliberately one-shot — it applies each finding's first fix, skipping
// any fix that overlaps one already scheduled — and relies on the
// analyzers' contract that an applied fix does not reproduce its
// diagnostic, which is what makes `rololint -fix` idempotent: the second
// run finds nothing to fix and edits nothing.

// An AppliedFix describes one fix the engine applied, for reporting.
type AppliedFix struct {
	Finding Finding
	Message string
}

// A SkippedFix describes a fix the engine scheduled around: its edits
// overlap a fix from an earlier finding, so applying both in one pass
// would corrupt the file. The finding itself stays unfixed (and is
// reported); a subsequent run, after the first fix has shifted the
// source, gets a clean shot at it.
type SkippedFix struct {
	Finding Finding
	Message string // the message of the fix that was skipped
}

// scheduleFixes picks the edits to apply for a finding list: each
// finding's first fix, unless one of its edits overlaps an edit already
// scheduled (findings arrive position-sorted, so the earliest finding
// wins and later overlapping fixes are skipped, reported, and left for a
// subsequent run). Two pure insertions at distinct offsets never
// conflict; two insertions at the same offset do (their order would be
// ambiguous).
func scheduleFixes(findings []Finding) (perFile map[string][]FixEdit, remaining []Finding, applied []AppliedFix, skipped []SkippedFix) {
	perFile = make(map[string][]FixEdit)
	overlaps := func(a, b FixEdit) bool {
		if a.Filename != b.Filename {
			return false
		}
		if a.Start == a.End && b.Start == b.End {
			return a.Start == b.Start
		}
		return a.Start < b.End && b.Start < a.End
	}
	for _, f := range findings {
		if len(f.Fixes) == 0 {
			remaining = append(remaining, f)
			continue
		}
		fix := f.Fixes[0]
		conflict := false
		for _, e := range fix.Edits {
			for _, prev := range perFile[e.Filename] {
				if overlaps(e, prev) {
					conflict = true
					break
				}
			}
			if conflict {
				break
			}
		}
		if conflict {
			remaining = append(remaining, f)
			skipped = append(skipped, SkippedFix{Finding: f, Message: fix.Message})
			continue
		}
		for _, e := range fix.Edits {
			perFile[e.Filename] = append(perFile[e.Filename], e)
		}
		applied = append(applied, AppliedFix{Finding: f, Message: fix.Message})
	}
	return perFile, remaining, applied, skipped
}

// applyEdits applies the edits (any order, non-overlapping) to src.
func applyEdits(src []byte, edits []FixEdit) ([]byte, error) {
	sorted := append([]FixEdit(nil), edits...)
	// Back to front, so earlier offsets stay valid.
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start > sorted[j].Start })
	out := src
	for _, e := range sorted {
		if e.Start < 0 || e.End < e.Start || e.End > len(src) {
			return nil, fmt.Errorf("edit [%d,%d) out of range (file is %d bytes)", e.Start, e.End, len(src))
		}
		out = append(out[:e.Start:e.Start], append([]byte(e.NewText), out[e.End:]...)...)
	}
	return out, nil
}

// renderFixes computes the gofmt-formatted post-fix content of every
// file the scheduled edits touch, without writing anything.
func renderFixes(perFile map[string][]FixEdit) (files []string, before, after map[string][]byte, err error) {
	files = make([]string, 0, len(perFile))
	for name := range perFile {
		files = append(files, name)
	}
	sort.Strings(files)
	before = make(map[string][]byte, len(files))
	after = make(map[string][]byte, len(files))
	for _, name := range files {
		src, rerr := os.ReadFile(name)
		if rerr != nil {
			return nil, nil, nil, fmt.Errorf("fix %s: %w", name, rerr)
		}
		out, aerr := applyEdits(src, perFile[name])
		if aerr != nil {
			return nil, nil, nil, fmt.Errorf("fix %s: %w", name, aerr)
		}
		formatted, ferr := format.Source(out)
		if ferr != nil {
			return nil, nil, nil, fmt.Errorf("fix %s: result does not parse: %w", name, ferr)
		}
		before[name] = src
		after[name] = formatted
	}
	return files, before, after, nil
}

// ApplyFixes applies the first suggested fix of every finding that has
// one and rewrites the edited files gofmt-formatted, returning the
// findings that had no applicable fix alongside reports of what was
// applied and which fixes were skipped because their edits overlap an
// earlier finding's fix.
func ApplyFixes(findings []Finding) (remaining []Finding, applied []AppliedFix, skipped []SkippedFix, err error) {
	perFile, remaining, applied, skipped := scheduleFixes(findings)
	if len(perFile) == 0 {
		return remaining, nil, skipped, nil
	}
	files, _, after, err := renderFixes(perFile)
	if err != nil {
		return remaining, applied, skipped, err
	}
	for _, name := range files {
		mode := os.FileMode(0o644)
		if info, serr := os.Stat(name); serr == nil {
			mode = info.Mode()
		}
		if werr := os.WriteFile(name, after[name], mode); werr != nil {
			return remaining, applied, skipped, fmt.Errorf("fix %s: %w", name, werr)
		}
	}
	return remaining, applied, skipped, nil
}

// PreviewFixes is the dry-run twin of ApplyFixes: it schedules the same
// fixes, renders the edited files in memory, and returns a unified diff
// of what ApplyFixes would write, leaving the tree untouched.
func PreviewFixes(findings []Finding) (remaining []Finding, applied []AppliedFix, skipped []SkippedFix, diff string, err error) {
	perFile, remaining, applied, skipped := scheduleFixes(findings)
	if len(perFile) == 0 {
		return remaining, nil, skipped, "", nil
	}
	files, before, after, err := renderFixes(perFile)
	if err != nil {
		return remaining, applied, skipped, "", err
	}
	var b bytes.Buffer
	for _, name := range files {
		b.WriteString(UnifiedDiff(name, before[name], after[name]))
	}
	return remaining, applied, skipped, b.String(), nil
}

// ApplyFixesToSource applies the scheduled fixes that touch only filename
// to src in memory, returning the gofmt-formatted result and whether
// anything changed — the analysistest harness's golden-file path.
func ApplyFixesToSource(filename string, src []byte, findings []Finding) ([]byte, bool, error) {
	perFile, _, _, _ := scheduleFixes(findings)
	edits := perFile[filename]
	if len(edits) == 0 {
		return src, false, nil
	}
	out, err := applyEdits(src, edits)
	if err != nil {
		return nil, false, err
	}
	formatted, err := format.Source(out)
	if err != nil {
		return nil, false, fmt.Errorf("fixed source does not parse: %w", err)
	}
	return formatted, true, nil
}
