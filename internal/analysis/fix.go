package analysis

import (
	"fmt"
	"go/format"
	"os"
	"sort"
)

// This file is the autofix engine: it turns the SuggestedFixes carried by
// findings into edited, gofmt-clean source files. The engine is
// deliberately one-shot — it applies each finding's first fix, skipping
// any fix that overlaps one already scheduled — and relies on the
// analyzers' contract that an applied fix does not reproduce its
// diagnostic, which is what makes `rololint -fix` idempotent: the second
// run finds nothing to fix and edits nothing.

// An AppliedFix describes one fix the engine applied, for reporting.
type AppliedFix struct {
	Finding Finding
	Message string
}

// scheduleFixes picks the edits to apply for a finding list: each
// finding's first fix, unless one of its edits overlaps an edit already
// scheduled (findings arrive position-sorted, so the earliest finding
// wins and later overlapping fixes are left for a subsequent run).
// Two pure insertions at distinct offsets never conflict; two insertions
// at the same offset do (their order would be ambiguous).
func scheduleFixes(findings []Finding) (perFile map[string][]FixEdit, remaining []Finding, applied []AppliedFix) {
	perFile = make(map[string][]FixEdit)
	overlaps := func(a, b FixEdit) bool {
		if a.Filename != b.Filename {
			return false
		}
		if a.Start == a.End && b.Start == b.End {
			return a.Start == b.Start
		}
		return a.Start < b.End && b.Start < a.End
	}
	for _, f := range findings {
		if len(f.Fixes) == 0 {
			remaining = append(remaining, f)
			continue
		}
		fix := f.Fixes[0]
		conflict := false
		for _, e := range fix.Edits {
			for _, prev := range perFile[e.Filename] {
				if overlaps(e, prev) {
					conflict = true
					break
				}
			}
			if conflict {
				break
			}
		}
		if conflict {
			remaining = append(remaining, f)
			continue
		}
		for _, e := range fix.Edits {
			perFile[e.Filename] = append(perFile[e.Filename], e)
		}
		applied = append(applied, AppliedFix{Finding: f, Message: fix.Message})
	}
	return perFile, remaining, applied
}

// applyEdits applies the edits (any order, non-overlapping) to src.
func applyEdits(src []byte, edits []FixEdit) ([]byte, error) {
	sorted := append([]FixEdit(nil), edits...)
	// Back to front, so earlier offsets stay valid.
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start > sorted[j].Start })
	out := src
	for _, e := range sorted {
		if e.Start < 0 || e.End < e.Start || e.End > len(src) {
			return nil, fmt.Errorf("edit [%d,%d) out of range (file is %d bytes)", e.Start, e.End, len(src))
		}
		out = append(out[:e.Start:e.Start], append([]byte(e.NewText), out[e.End:]...)...)
	}
	return out, nil
}

// ApplyFixes applies the first suggested fix of every finding that has
// one and rewrites the edited files gofmt-formatted, returning the
// findings that had no applicable fix alongside a report of what was
// applied.
func ApplyFixes(findings []Finding) (remaining []Finding, applied []AppliedFix, err error) {
	perFile, remaining, applied := scheduleFixes(findings)
	if len(perFile) == 0 {
		return remaining, nil, nil
	}
	files := make([]string, 0, len(perFile))
	for name := range perFile {
		files = append(files, name)
	}
	sort.Strings(files)
	for _, name := range files {
		src, rerr := os.ReadFile(name)
		if rerr != nil {
			return remaining, applied, fmt.Errorf("fix %s: %w", name, rerr)
		}
		out, aerr := applyEdits(src, perFile[name])
		if aerr != nil {
			return remaining, applied, fmt.Errorf("fix %s: %w", name, aerr)
		}
		formatted, ferr := format.Source(out)
		if ferr != nil {
			return remaining, applied, fmt.Errorf("fix %s: result does not parse: %w", name, ferr)
		}
		mode := os.FileMode(0o644)
		if info, serr := os.Stat(name); serr == nil {
			mode = info.Mode()
		}
		if werr := os.WriteFile(name, formatted, mode); werr != nil {
			return remaining, applied, fmt.Errorf("fix %s: %w", name, werr)
		}
	}
	return remaining, applied, nil
}

// ApplyFixesToSource applies the scheduled fixes that touch only filename
// to src in memory, returning the gofmt-formatted result and whether
// anything changed — the analysistest harness's golden-file path.
func ApplyFixesToSource(filename string, src []byte, findings []Finding) ([]byte, bool, error) {
	perFile, _, _ := scheduleFixes(findings)
	edits := perFile[filename]
	if len(edits) == 0 {
		return src, false, nil
	}
	out, err := applyEdits(src, edits)
	if err != nil {
		return nil, false, err
	}
	formatted, err := format.Source(out)
	if err != nil {
		return nil, false, fmt.Errorf("fixed source does not parse: %w", err)
	}
	return formatted, true, nil
}
