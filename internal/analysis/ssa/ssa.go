// Package ssa lowers Go function bodies into a lightweight
// static-single-assignment form built on the cfg package's basic blocks.
//
// The IR is deliberately smaller than golang.org/x/tools/go/ssa: it exists
// to feed the valueflow lattice (nilness, constant intervals, units, taint),
// not to compile code. Each local variable that is never address-taken or
// captured by a closure becomes a chain of immutable virtual registers
// (Values); φ-nodes are placed at CFG joins using Braun-style on-demand
// construction (seal blocks as their predecessors complete, leave
// incomplete φs for back edges, fill them once the loop body is built).
// Trivial φs are kept rather than eliminated — a φ whose operands all agree
// joins to the same lattice point, so the only cost is a few extra Values.
//
// Alongside the registers, construction collects the syntactic sites the
// analyzers care about: pointer/map/func dereferences (Derefs), allocation
// sizes and index/slice bounds (Bounds), calls with their argument and
// result registers (Calls), and return sites (Returns). Each site carries
// the short-circuit guard context it was evaluated under, so `p != nil &&
// p.f()` does not read as an unguarded dereference.
//
// Functions whose CFG is Unanalyzable (goto, select, type switches, labels
// on plain statements) yield a Func with Unanalyzable set and no blocks;
// callers must treat every value in them as unknown.
package ssa

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"github.com/rolo-storage/rolo/internal/analysis/callgraph"
	"github.com/rolo-storage/rolo/internal/analysis/cfg"
)

// Kind discriminates how a Value was produced.
type Kind uint8

const (
	// Unknown is an opaque value: a global, a field or element load, a
	// channel receive, an untracked variable, or any expression form the
	// builder does not model. Unknowns carry no lattice evidence.
	Unknown  Kind = iota
	Param         // function parameter or receiver; Var and Index identify it
	Zero          // zero value of a declared-but-unassigned variable
	Const         // constant expression; ConstVal holds the value
	NilConst      // the predeclared nil
	Phi           // join of Args, parallel to Block.Preds
	Call          // result of a call; single result, or the tuple root
	Extract       // Index'th component of the tuple in Args[0]
	BinOp         // Op applied to Args[0], Args[1]
	UnOp          // Op applied to Args[0] (not &, * or <-)
	Convert       // conversion of Args[0]; units survive conversions
	Alloc         // non-nil producer: &x, new, make, composite/func literal,
	// func identifier, bound method value, address-of
	Load     // memory load: *p, x.f, m[k], s[i]
	RangeVar // per-iteration key (Index 0) or element (Index 1) of a
	// range loop; Args[0] is the ranged operand's value when available
	Assert  // single-form type assertion x.(T): panics unless it holds
	SliceOp // s[lo:hi]: Args are base, lo, hi (nil entries elided)
	LenOf   // len(x) or cap(x): Args[0] is x
)

var kindNames = [...]string{
	"unknown", "param", "zero", "const", "nil", "phi", "call", "extract",
	"binop", "unop", "convert", "alloc", "load", "rangevar", "assert",
	"sliceop", "lenof",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind?"
}

// CommaKind tags the two Extracts of a comma-ok form.
type CommaKind uint8

const (
	NotCommaOk CommaKind = iota
	MapOk                // v, ok := m[k]
	AssertOk             // v, ok := x.(T)
	RecvOk               // v, ok := <-ch
)

// A Value is one virtual register.
type Value struct {
	ID    int
	Kind  Kind
	Type  types.Type // may be nil (void calls, some synthetics)
	Expr  ast.Expr   // defining expression, when one exists
	Op    token.Token
	Args  []*Value
	Index int        // Extract result index; Param position; RangeVar role
	Block *Block     // defining block; nil for Params, Zeros, Unknowns
	Var   *types.Var // Param: the object; Phi/Zero/Unknown: the variable
	Uses  []*Value   // values listing this one among their Args

	ConstVal constant.Value // Const only

	// Pair links the two Extracts of a comma-ok form to each other, and
	// CommaOk says which form; refinement of the ok boolean then narrows
	// its partner (present/absent, asserted/failed).
	Pair    *Value
	CommaOk CommaKind
}

// A Block mirrors one cfg.Block, adding predecessor links and φ-nodes.
// Blocks[i] corresponds to Graph.Blocks[i].
type Block struct {
	Index int
	CFG   *cfg.Block
	Preds []*Block // in edge order; φ operands are parallel to this
	Phis  []*Value
}

// A Guard records one short-circuit conjunct in force at a site: within
// `a && b`, b is evaluated only with Cond=a, Sense=true; within `a || b`,
// only with Sense=false.
type Guard struct {
	Cond  ast.Expr
	Sense bool
}

// A DerefSite is an expression that dereferences Base: *p, a field access
// through a pointer, a write into a map, or a call of a function value.
type DerefSite struct {
	Expr   ast.Expr
	Base   *Value
	Block  *Block
	What   string // "pointer dereference", "field access", ...
	Guards []Guard
}

// BoundKind classifies a size or index use.
type BoundKind uint8

const (
	MakeLen BoundKind = iota
	MakeCap
	Index        // s[i] on a slice, array or string
	SliceBound   // lo/hi/max of s[lo:hi:max]
	AppendSpread // append(s, x...): Val is x, whose interval is its length
)

var boundNames = [...]string{"make-len", "make-cap", "index", "slice-bound", "append-spread"}

func (k BoundKind) String() string {
	if int(k) < len(boundNames) {
		return boundNames[k]
	}
	return "bound?"
}

// A BoundSite is a use of Val as an allocation size or index into Base.
type BoundSite struct {
	Kind   BoundKind
	Expr   ast.Expr // the size/index expression
	Val    *Value
	Base   *Value // indexed/sliced operand; nil for make
	Block  *Block
	Guards []Guard
}

// A CallSite records one call with its argument and result registers.
type CallSite struct {
	Site    *ast.CallExpr
	Callee  *types.Func // static callee, or nil
	Args    []*Value    // excluding the receiver
	Recv    *Value      // receiver value for method calls, else nil
	Result  *Value      // the Call value (single result or tuple root)
	Results []*Value    // Extracts when the tuple is destructured
	Block   *Block
}

// A ReturnSite is one return statement with its resolved result registers.
type ReturnSite struct {
	Stmt  *ast.ReturnStmt
	Block *Block
	Vals  []*Value // one per result; named results read at the return
}

// A Func is the SSA form of one function or function literal.
type Func struct {
	Node ast.Node // *ast.FuncDecl or *ast.FuncLit
	Name string
	Fn   *types.Func // nil for literals
	Sig  *types.Signature

	G      *cfg.Graph
	Blocks []*Block // parallel to G.Blocks
	Entry  *Block

	Params    []*Value // receiver first when present
	Values    []*Value
	ExprValue map[ast.Expr]*Value

	Calls   []*CallSite
	Derefs  []*DerefSite
	Bounds  []*BoundSite
	Returns []*ReturnSite
	Lits    []*ast.FuncLit // nested literals, built separately

	Unanalyzable bool
	Reason       string
}

// BlockFor returns the SSA block mirroring cb.
func (f *Func) BlockFor(cb *cfg.Block) *Block {
	if cb == nil || cb.Index >= len(f.Blocks) {
		return nil
	}
	return f.Blocks[cb.Index]
}

// Build constructs the SSA form of node, which must be an *ast.FuncDecl or
// *ast.FuncLit with a body. It returns nil when node has no body or no
// recorded type, and a Func with Unanalyzable set when the CFG cannot be
// modeled.
func Build(info *types.Info, node ast.Node) *Func {
	var body *ast.BlockStmt
	f := &Func{Node: node, ExprValue: make(map[ast.Expr]*Value)}
	switch n := node.(type) {
	case *ast.FuncDecl:
		body = n.Body
		fn, _ := info.Defs[n.Name].(*types.Func)
		if body == nil || fn == nil {
			return nil
		}
		f.Fn = fn
		f.Sig = fn.Type().(*types.Signature)
		f.Name = n.Name.Name
	case *ast.FuncLit:
		body = n.Body
		sig, _ := info.Types[n].Type.(*types.Signature)
		if sig == nil {
			return nil
		}
		f.Sig = sig
		f.Name = "func literal"
	default:
		return nil
	}

	f.G = cfg.Build(body)
	if f.G.Unanalyzable {
		f.Unanalyzable = true
		f.Reason = f.G.Reason
		return f
	}

	b := &builder{info: info, fn: f}
	b.mirrorBlocks()
	b.scan(body)
	b.seedParams()
	for _, blk := range rpo(f) {
		b.processBlock(blk)
	}
	b.fillIncomplete()
	return f
}

type rangeInfo struct {
	x    ast.Expr // ranged operand
	role int      // 0 key, 1 value
	val  *Value   // lazily created RangeVar
}

type builder struct {
	info *types.Info
	fn   *Func

	tracked   map[*types.Var]bool
	rangeVars map[*types.Var]*rangeInfo

	localDef  []map[*types.Var]*Value // per block: last in-block write
	entryVal  []map[*types.Var]*Value // per block: memoized entry value
	processed []bool
	filling   bool // final fill phase: every block counts as sealed

	incomplete []*Value // φs awaiting operands (FIFO)

	cur    *Block
	guards []Guard
}

func (b *builder) mirrorBlocks() {
	g := b.fn.G
	n := len(g.Blocks)
	b.fn.Blocks = make([]*Block, n)
	b.localDef = make([]map[*types.Var]*Value, n)
	b.entryVal = make([]map[*types.Var]*Value, n)
	b.processed = make([]bool, n)
	for i, cb := range g.Blocks {
		b.fn.Blocks[i] = &Block{Index: i, CFG: cb}
		b.localDef[i] = make(map[*types.Var]*Value)
		b.entryVal[i] = make(map[*types.Var]*Value)
	}
	for _, cb := range g.Blocks {
		from := b.fn.Blocks[cb.Index]
		for _, e := range cb.Succs {
			to := b.fn.Blocks[e.To.Index]
			to.Preds = append(to.Preds, from)
		}
	}
	b.fn.Entry = b.fn.Blocks[g.Entry.Index]
}

// rpo returns the reachable blocks in reverse postorder from the entry.
func rpo(f *Func) []*Block {
	seen := make([]bool, len(f.Blocks))
	var post []*Block
	var dfs func(*Block)
	dfs = func(blk *Block) {
		seen[blk.Index] = true
		for _, e := range blk.CFG.Succs {
			s := f.Blocks[e.To.Index]
			if !seen[s.Index] {
				dfs(s)
			}
		}
		post = append(post, blk)
	}
	dfs(f.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// scan walks the body once to decide which variables are tracked: locals
// and parameters that are never address-taken and never written inside a
// nested function literal. Read-only capture by a literal is harmless —
// the literal cannot change the variable between this function's
// statements — so it does not untrack. Writes under a literal that is
// the direct callee of a defer statement do not untrack either: a
// deferred closure runs at function exit, after every load in the body.
// Range-defined loop variables are recorded so reads yield per-iteration
// RangeVar values; assign-mode range variables are untracked (their
// per-iteration writes happen outside any block).
func (b *builder) scan(body *ast.BlockStmt) {
	b.tracked = make(map[*types.Var]bool)
	b.rangeVars = make(map[*types.Var]*rangeInfo)

	// Parameters, receiver and named results.
	sig := b.fn.Sig
	if r := sig.Recv(); r != nil {
		b.tracked[r] = true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		b.tracked[sig.Params().At(i)] = true
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if v := sig.Results().At(i); v.Name() != "" && v.Name() != "_" {
			b.tracked[v] = true
		}
	}

	// Locals declared directly in this body (not inside nested literals).
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// A deferred literal's writes land at function exit, after
			// the last load of the body: its free variables stay
			// tracked. Argument expressions evaluate at the defer
			// statement itself, so those are still walked.
			if _, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				for _, arg := range n.Call.Args {
					ast.Inspect(arg, walk)
				}
				return false
			}
		case *ast.FuncLit:
			// Free variables a literal can write may change at any time
			// relative to this function's statements: untrack those.
			b.untrackMutated(n.Body)
			return false
		case *ast.Ident:
			if v, ok := b.info.Defs[n].(*types.Var); ok {
				b.tracked[v] = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					if v, ok := b.info.Uses[id].(*types.Var); ok {
						delete(b.tracked, v)
					}
				}
			}
		case *ast.RangeStmt:
			b.scanRange(n)
		}
		return true
	}
	ast.Inspect(body, walk)
}

// untrackMutated removes from the tracked set every outer variable the
// literal body can write: assignment targets, inc/dec operands,
// assign-mode range variables, and address-taken variables (a leaked
// pointer permits writes from anywhere). Reads are left alone.
func (b *builder) untrackMutated(body ast.Node) {
	drop := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if v, ok := b.info.Uses[id].(*types.Var); ok {
				delete(b.tracked, v)
			}
		}
	}
	ast.Inspect(body, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.AssignStmt:
			for _, lhs := range m.Lhs {
				drop(lhs)
			}
		case *ast.IncDecStmt:
			drop(m.X)
		case *ast.UnaryExpr:
			if m.Op == token.AND {
				drop(m.X)
			}
		case *ast.RangeStmt:
			if m.Tok == token.ASSIGN {
				drop(m.Key)
				drop(m.Value)
			}
		}
		return true
	})
}

func (b *builder) scanRange(s *ast.RangeStmt) {
	note := func(e ast.Expr, role int) {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		if s.Tok == token.DEFINE {
			if v, ok := b.info.Defs[id].(*types.Var); ok {
				b.rangeVars[v] = &rangeInfo{x: s.X, role: role}
			}
		} else if v, ok := b.info.Uses[id].(*types.Var); ok {
			// Assign-mode range writes bypass the block statements.
			delete(b.tracked, v)
		}
	}
	if s.Key != nil {
		note(s.Key, 0)
	}
	if s.Value != nil {
		note(s.Value, 1)
	}
}

func (b *builder) seedParams() {
	entry := b.fn.Entry
	pos := 0
	add := func(v *types.Var) {
		p := b.newValue(Param, v.Type(), nil)
		p.Var = v
		p.Index = pos
		p.Block = nil
		pos++
		b.fn.Params = append(b.fn.Params, p)
		if b.tracked[v] {
			b.localDef[entry.Index][v] = p
		}
	}
	sig := b.fn.Sig
	if r := sig.Recv(); r != nil {
		add(r)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		add(sig.Params().At(i))
	}
	for i := 0; i < sig.Results().Len(); i++ {
		v := sig.Results().At(i)
		if b.tracked[v] {
			z := b.newValue(Zero, v.Type(), nil)
			z.Var = v
			z.Block = nil
			b.localDef[entry.Index][v] = z
		}
	}
}

func (b *builder) newValue(k Kind, t types.Type, e ast.Expr, args ...*Value) *Value {
	v := &Value{ID: len(b.fn.Values), Kind: k, Type: t, Expr: e, Index: -1, Block: b.cur}
	for _, a := range args {
		v.Args = append(v.Args, a)
		if a != nil {
			a.Uses = append(a.Uses, v)
		}
	}
	b.fn.Values = append(b.fn.Values, v)
	return v
}

func (b *builder) unknownFor(v *types.Var) *Value {
	u := b.newValue(Unknown, v.Type(), nil)
	u.Var = v
	return u
}

// sealedNow reports whether blk's entry state is final: every predecessor
// has been processed (or we are in the terminal fill phase).
func (b *builder) sealedNow(blk *Block) bool {
	if b.filling {
		return true
	}
	for _, p := range blk.Preds {
		if !b.processed[p.Index] {
			return false
		}
	}
	return true
}

func (b *builder) newPhi(v *types.Var, blk *Block) *Value {
	phi := b.newValue(Phi, v.Type(), nil)
	phi.Var = v
	phi.Block = blk
	blk.Phis = append(blk.Phis, phi)
	return phi
}

// read returns the register holding v at the current point of blk's
// statement walk.
func (b *builder) read(v *types.Var, blk *Block) *Value {
	if val, ok := b.localDef[blk.Index][v]; ok {
		return val
	}
	return b.readEntry(v, blk)
}

// readAtEnd returns the register holding v at the end of blk.
func (b *builder) readAtEnd(v *types.Var, blk *Block) *Value {
	if val, ok := b.localDef[blk.Index][v]; ok {
		return val
	}
	return b.readEntry(v, blk)
}

// readEntry returns the register holding v on entry to blk, creating φs
// as needed (incomplete ones while blk still has unprocessed predecessors).
func (b *builder) readEntry(v *types.Var, blk *Block) *Value {
	if val, ok := b.entryVal[blk.Index][v]; ok {
		return val
	}
	var val *Value
	switch {
	case !b.sealedNow(blk):
		phi := b.newPhi(v, blk)
		b.incomplete = append(b.incomplete, phi)
		val = phi
	case len(blk.Preds) == 0:
		if ri, ok := b.rangeVars[v]; ok {
			val = b.rangeValue(v, ri)
		} else {
			val = b.unknownFor(v)
		}
	case len(blk.Preds) == 1:
		b.entryVal[blk.Index][v] = nil // cycle guard; overwritten below
		val = b.readAtEnd(v, blk.Preds[0])
	default:
		phi := b.newPhi(v, blk)
		b.entryVal[blk.Index][v] = phi // break cycles before recursing
		b.fillPhi(phi)
		val = phi
	}
	b.entryVal[blk.Index][v] = val
	return val
}

func (b *builder) fillPhi(phi *Value) {
	for _, p := range phi.Block.Preds {
		op := b.readAtEnd(phi.Var, p)
		phi.Args = append(phi.Args, op)
		if op != nil {
			op.Uses = append(op.Uses, phi)
		}
	}
}

func (b *builder) fillIncomplete() {
	b.filling = true
	// Filling may enqueue further φs; the slice grows as we go.
	for i := 0; i < len(b.incomplete); i++ {
		phi := b.incomplete[i]
		if len(phi.Args) == 0 {
			b.fillPhi(phi)
		}
	}
	b.filling = false
}

// rangeValue returns (creating on first use) the per-iteration register of
// a range-defined loop variable.
func (b *builder) rangeValue(v *types.Var, ri *rangeInfo) *Value {
	if ri.val == nil {
		rv := b.newValue(RangeVar, v.Type(), nil, b.fn.ExprValue[ast.Unparen(ri.x)])
		rv.Var = v
		rv.Index = ri.role
		rv.Block = nil
		ri.val = rv
	}
	return ri.val
}

func (b *builder) write(v *types.Var, val *Value) {
	if b.tracked[v] && val != nil {
		b.localDef[b.cur.Index][v] = val
	}
}

func (b *builder) processBlock(blk *Block) {
	b.cur = blk
	for _, s := range blk.CFG.Stmts {
		b.stmt(s)
	}
	b.processed[blk.Index] = true
}

// ---- statements ----

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		b.assign(s)
	case *ast.IncDecStmt:
		b.incDec(s)
	case *ast.DeclStmt:
		b.declStmt(s)
	case *ast.ExprStmt:
		b.expr(s.X)
	case *ast.ReturnStmt:
		b.ret(s)
	case *ast.DeferStmt:
		b.expr(s.Call)
	case *ast.GoStmt:
		b.expr(s.Call)
	case *ast.SendStmt:
		b.expr(s.Chan)
		b.expr(s.Value)
	case *ast.LabeledStmt:
		b.stmt(s.Stmt)
	}
}

func (b *builder) incDec(s *ast.IncDecStmt) {
	old := b.expr(s.X)
	op := token.ADD
	if s.Tok == token.DEC {
		op = token.SUB
	}
	one := b.newValue(Const, types.Typ[types.Int], nil)
	one.ConstVal = constant.MakeInt64(1)
	nv := b.newValue(BinOp, b.info.TypeOf(s.X), nil, old, one)
	nv.Op = op
	if id, ok := ast.Unparen(s.X).(*ast.Ident); ok {
		if v, ok := b.info.Uses[id].(*types.Var); ok {
			b.write(v, nv)
		}
	}
}

func (b *builder) declStmt(s *ast.DeclStmt) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		if len(vs.Values) == 0 {
			for _, name := range vs.Names {
				v, ok := b.info.Defs[name].(*types.Var)
				if !ok {
					continue
				}
				z := b.newValue(Zero, v.Type(), nil)
				z.Var = v
				b.write(v, z)
			}
			continue
		}
		if len(vs.Values) == 1 && len(vs.Names) > 1 {
			b.multiAssign(exprsOf(vs.Names), vs.Values[0])
			continue
		}
		for i, name := range vs.Names {
			if i >= len(vs.Values) {
				break
			}
			val := b.expr(vs.Values[i])
			b.writeIdent(name, val)
		}
	}
}

func exprsOf(ids []*ast.Ident) []ast.Expr {
	out := make([]ast.Expr, len(ids))
	for i, id := range ids {
		out[i] = id
	}
	return out
}

func (b *builder) assign(s *ast.AssignStmt) {
	switch {
	case len(s.Rhs) == 1 && len(s.Lhs) > 1:
		b.multiAssign(s.Lhs, s.Rhs[0])
	case s.Tok == token.ASSIGN || s.Tok == token.DEFINE:
		// Parallel assignment: evaluate every RHS before any write.
		vals := make([]*Value, len(s.Rhs))
		for i, r := range s.Rhs {
			vals[i] = b.expr(r)
		}
		for i, l := range s.Lhs {
			b.writeLhs(l, vals[i])
		}
	default:
		// Compound assignment: x op= y.
		old := b.expr(s.Lhs[0])
		rhs := b.expr(s.Rhs[0])
		nv := b.newValue(BinOp, b.info.TypeOf(s.Lhs[0]), nil, old, rhs)
		nv.Op = compoundOp(s.Tok)
		if id, ok := ast.Unparen(s.Lhs[0]).(*ast.Ident); ok {
			if v, ok := b.info.Uses[id].(*types.Var); ok {
				b.write(v, nv)
			}
		}
	}
}

func compoundOp(tok token.Token) token.Token {
	switch tok {
	case token.ADD_ASSIGN:
		return token.ADD
	case token.SUB_ASSIGN:
		return token.SUB
	case token.MUL_ASSIGN:
		return token.MUL
	case token.QUO_ASSIGN:
		return token.QUO
	case token.REM_ASSIGN:
		return token.REM
	case token.AND_ASSIGN:
		return token.AND
	case token.OR_ASSIGN:
		return token.OR
	case token.XOR_ASSIGN:
		return token.XOR
	case token.SHL_ASSIGN:
		return token.SHL
	case token.SHR_ASSIGN:
		return token.SHR
	case token.AND_NOT_ASSIGN:
		return token.AND_NOT
	}
	return tok
}

// multiAssign handles `a, b, ... = rhs` for tuple calls and the three
// comma-ok forms.
func (b *builder) multiAssign(lhs []ast.Expr, rhs ast.Expr) {
	switch r := ast.Unparen(rhs).(type) {
	case *ast.CallExpr:
		root := b.expr(r)
		if root == nil {
			break
		}
		var results []*Value
		sig := callSignature(b.info, r)
		for i, l := range lhs {
			var t types.Type
			if sig != nil && i < sig.Results().Len() {
				t = sig.Results().At(i).Type()
			}
			ex := b.newValue(Extract, t, nil, root)
			ex.Index = i
			results = append(results, ex)
			b.writeLhs(l, ex)
		}
		// Pair the leading value with a trailing error for err-branch
		// refinement of the common (T, error) shape.
		if len(results) == 2 && isErrorType(results[1].Type) {
			link(results[0], results[1], NotCommaOk)
		}
		if cs := b.callSiteFor(root); cs != nil {
			cs.Results = results
		}
	case *ast.IndexExpr:
		base := b.expr(r.X)
		idx := b.expr(r.Index)
		if isMap(b.info.TypeOf(r.X)) && len(lhs) == 2 {
			load := b.newValue(Load, b.info.TypeOf(rhs), rhs, base, idx)
			b.fn.ExprValue[rhs] = load
			b.commaOk(lhs, load, b.info.TypeOf(rhs), MapOk)
			return
		}
		for _, l := range lhs {
			b.writeLhs(l, nil)
		}
	case *ast.TypeAssertExpr:
		x := b.expr(r.X)
		if len(lhs) == 2 {
			root := b.newValue(Assert, b.info.TypeOf(rhs), rhs, x)
			b.fn.ExprValue[rhs] = root
			b.commaOk(lhs, root, b.info.TypeOf(rhs), AssertOk)
			return
		}
	case *ast.UnaryExpr:
		if r.Op == token.ARROW {
			x := b.expr(r.X)
			if len(lhs) == 2 {
				root := b.newValue(Unknown, b.info.TypeOf(rhs), rhs, x)
				b.fn.ExprValue[rhs] = root
				b.commaOk(lhs, root, b.info.TypeOf(rhs), RecvOk)
				return
			}
		}
		for _, l := range lhs {
			b.writeLhs(l, nil)
		}
	default:
		for _, l := range lhs {
			b.writeLhs(l, nil)
		}
	}
}

func (b *builder) commaOk(lhs []ast.Expr, root *Value, vt types.Type, kind CommaKind) {
	// In a comma-ok context go/types records the (T, bool) tuple as the
	// expression type; the value component is its first element.
	if tup, ok := vt.(*types.Tuple); ok && tup.Len() == 2 {
		vt = tup.At(0).Type()
	}
	val := b.newValue(Extract, vt, nil, root)
	val.Index = 0
	ok := b.newValue(Extract, types.Typ[types.Bool], nil, root)
	ok.Index = 1
	link(val, ok, kind)
	b.writeLhs(lhs[0], val)
	b.writeLhs(lhs[1], ok)
}

func link(val, ok *Value, kind CommaKind) {
	val.Pair, ok.Pair = ok, val
	val.CommaOk, ok.CommaOk = kind, kind
}

func (b *builder) callSiteFor(root *Value) *CallSite {
	for i := len(b.fn.Calls) - 1; i >= 0; i-- {
		if b.fn.Calls[i].Result == root {
			return b.fn.Calls[i]
		}
	}
	return nil
}

func (b *builder) writeLhs(lhs ast.Expr, val *Value) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		b.writeIdent(l, val)
	case *ast.StarExpr:
		base := b.expr(l.X)
		b.deref(l, base, "store through pointer")
	case *ast.SelectorExpr:
		b.expr(l) // records the field-access deref itself
	case *ast.IndexExpr:
		base := b.expr(l.X)
		idx := b.expr(l.Index)
		t := b.info.TypeOf(l.X)
		switch {
		case isMap(t):
			b.deref(l, base, "write into map")
		case indexable(t):
			b.bound(Index, l.Index, idx, base)
		}
	default:
		b.expr(lhs)
	}
}

func (b *builder) writeIdent(id *ast.Ident, val *Value) {
	if id.Name == "_" {
		return
	}
	if v, ok := b.info.Defs[id].(*types.Var); ok {
		if val == nil {
			val = b.unknownFor(v)
		}
		b.write(v, val)
		return
	}
	if v, ok := b.info.Uses[id].(*types.Var); ok {
		if val == nil {
			val = b.unknownFor(v)
		}
		b.write(v, val)
	}
}

func (b *builder) ret(s *ast.ReturnStmt) {
	site := &ReturnSite{Stmt: s, Block: b.cur}
	n := b.fn.Sig.Results().Len()
	switch {
	case len(s.Results) == 0 && n > 0:
		// Bare return with named results.
		for i := 0; i < n; i++ {
			v := b.fn.Sig.Results().At(i)
			if b.tracked[v] {
				site.Vals = append(site.Vals, b.read(v, b.cur))
			} else {
				site.Vals = append(site.Vals, b.unknownFor(v))
			}
		}
	case len(s.Results) == 1 && n > 1:
		// return f() forwarding a tuple.
		root := b.expr(s.Results[0])
		for i := 0; i < n; i++ {
			ex := b.newValue(Extract, b.fn.Sig.Results().At(i).Type(), nil, root)
			ex.Index = i
			site.Vals = append(site.Vals, ex)
		}
	default:
		for _, r := range s.Results {
			site.Vals = append(site.Vals, b.expr(r))
		}
	}
	b.fn.Returns = append(b.fn.Returns, site)
}

// ---- expressions ----

func (b *builder) deref(e ast.Expr, base *Value, what string) {
	if base == nil {
		return
	}
	b.fn.Derefs = append(b.fn.Derefs, &DerefSite{
		Expr: e, Base: base, Block: b.cur, What: what,
		Guards: append([]Guard(nil), b.guards...),
	})
}

func (b *builder) bound(k BoundKind, e ast.Expr, val, base *Value) {
	if val == nil {
		return
	}
	b.fn.Bounds = append(b.fn.Bounds, &BoundSite{
		Kind: k, Expr: e, Val: val, Base: base, Block: b.cur,
		Guards: append([]Guard(nil), b.guards...),
	})
}

// expr builds (and memoizes) the register for e.
func (b *builder) expr(e ast.Expr) *Value {
	if e == nil {
		return nil
	}
	if v, ok := b.fn.ExprValue[e]; ok {
		return v
	}
	v := b.expr1(e)
	b.fn.ExprValue[e] = v
	return v
}

func (b *builder) expr1(e ast.Expr) *Value {
	t := b.info.TypeOf(e)
	if tv, ok := b.info.Types[e]; ok && tv.Value != nil {
		c := b.newValue(Const, t, e)
		c.ConstVal = tv.Value
		return c
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return b.expr(e.X)
	case *ast.Ident:
		return b.ident(e, t)
	case *ast.BasicLit:
		// Constant-folded above; reached only for malformed trees.
		return b.newValue(Const, t, e)
	case *ast.BinaryExpr:
		return b.binary(e, t)
	case *ast.UnaryExpr:
		return b.unary(e, t)
	case *ast.StarExpr:
		base := b.expr(e.X)
		b.deref(e, base, "pointer dereference")
		return b.newValue(Load, t, e, base)
	case *ast.SelectorExpr:
		return b.selector(e, t)
	case *ast.IndexExpr:
		return b.index(e, t)
	case *ast.IndexListExpr:
		return b.newValue(Unknown, t, e) // generic instantiation
	case *ast.SliceExpr:
		return b.sliceExpr(e, t)
	case *ast.CallExpr:
		return b.call(e, t)
	case *ast.TypeAssertExpr:
		if e.Type == nil {
			return b.newValue(Unknown, t, e)
		}
		x := b.expr(e.X)
		return b.newValue(Assert, t, e, x)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			b.expr(el)
		}
		return b.newValue(Alloc, t, e)
	case *ast.KeyValueExpr:
		b.expr(e.Key)
		b.expr(e.Value)
		return b.newValue(Unknown, t, e)
	case *ast.FuncLit:
		b.fn.Lits = append(b.fn.Lits, e)
		return b.newValue(Alloc, t, e)
	}
	return b.newValue(Unknown, t, e)
}

func (b *builder) ident(e *ast.Ident, t types.Type) *Value {
	switch obj := b.info.Uses[e].(type) {
	case *types.Nil:
		return b.newValue(NilConst, t, e)
	case *types.Var:
		if b.tracked[obj] {
			// Range-defined variables are tracked too: their read chain
			// bottoms out in a per-iteration RangeVar at the entry.
			return b.read(obj, b.cur)
		}
		return b.opaqueVar(obj, t, e)
	case *types.Func:
		return b.newValue(Alloc, t, e) // function values are non-nil
	}
	return b.newValue(Unknown, t, e)
}

func (b *builder) opaqueVar(v *types.Var, t types.Type, e ast.Expr) *Value {
	u := b.newValue(Unknown, t, e)
	u.Var = v
	return u
}

func (b *builder) binary(e *ast.BinaryExpr, t types.Type) *Value {
	x := b.expr(e.X)
	switch e.Op {
	case token.LAND, token.LOR:
		// The right operand only evaluates under the left's verdict.
		b.guards = append(b.guards, Guard{Cond: e.X, Sense: e.Op == token.LAND})
		y := b.expr(e.Y)
		b.guards = b.guards[:len(b.guards)-1]
		v := b.newValue(BinOp, t, e, x, y)
		v.Op = e.Op
		return v
	}
	y := b.expr(e.Y)
	v := b.newValue(BinOp, t, e, x, y)
	v.Op = e.Op
	return v
}

func (b *builder) unary(e *ast.UnaryExpr, t types.Type) *Value {
	switch e.Op {
	case token.AND:
		b.expr(e.X) // &x.f still dereferences x
		return b.newValue(Alloc, t, e)
	case token.ARROW:
		x := b.expr(e.X)
		return b.newValue(Unknown, t, e, x)
	}
	x := b.expr(e.X)
	v := b.newValue(UnOp, t, e, x)
	v.Op = e.Op
	return v
}

func (b *builder) selector(e *ast.SelectorExpr, t types.Type) *Value {
	if id, ok := e.X.(*ast.Ident); ok {
		if _, isPkg := b.info.Uses[id].(*types.PkgName); isPkg {
			// Qualified reference: constants were folded above; functions
			// are non-nil; package variables are opaque.
			if _, ok := b.info.Uses[e.Sel].(*types.Func); ok {
				return b.newValue(Alloc, t, e)
			}
			return b.newValue(Unknown, t, e)
		}
	}
	base := b.expr(e.X)
	sel := b.info.Selections[e]
	if sel != nil && sel.Kind() == types.FieldVal {
		if sel.Indirect() || isPointer(b.info.TypeOf(e.X)) {
			b.deref(e, base, "field access")
		}
		return b.newValue(Load, t, e, base)
	}
	if sel != nil && sel.Kind() == types.MethodVal {
		// A bound-method value; selecting it does not dereference.
		return b.newValue(Alloc, t, e, base)
	}
	return b.newValue(Unknown, t, e, base)
}

func (b *builder) index(e *ast.IndexExpr, t types.Type) *Value {
	if tv, ok := b.info.Types[e]; ok && tv.IsType() {
		return b.newValue(Unknown, t, e)
	}
	base := b.expr(e.X)
	idx := b.expr(e.Index)
	bt := b.info.TypeOf(e.X)
	if indexable(bt) {
		b.bound(Index, e.Index, idx, base)
	}
	return b.newValue(Load, t, e, base, idx)
}

func (b *builder) sliceExpr(e *ast.SliceExpr, t types.Type) *Value {
	base := b.expr(e.X)
	lo := b.expr(e.Low)
	hi := b.expr(e.High)
	mx := b.expr(e.Max)
	for _, p := range []struct {
		e ast.Expr
		v *Value
	}{{e.Low, lo}, {e.High, hi}, {e.Max, mx}} {
		if p.v != nil {
			b.bound(SliceBound, p.e, p.v, base)
		}
	}
	return b.newValue(SliceOp, t, e, base, lo, hi)
}

func (b *builder) call(e *ast.CallExpr, t types.Type) *Value {
	// Conversion: T(x).
	if tv, ok := b.info.Types[e.Fun]; ok && tv.IsType() {
		x := b.expr(e.Args[0])
		return b.newValue(Convert, t, e, x)
	}
	// Builtins.
	if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
		if _, ok := b.info.Uses[id].(*types.Builtin); ok {
			return b.builtin(e, id.Name, t)
		}
	}

	funVal := b.expr(e.Fun)
	// Calling a possibly-nil function value panics. Method calls and
	// direct calls of declared functions are exempt.
	if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
		if v, ok := b.info.Uses[id].(*types.Var); ok && b.tracked[v] {
			b.deref(e, funVal, "call of function value")
		}
	}

	args := make([]*Value, len(e.Args))
	for i, a := range e.Args {
		args[i] = b.expr(a)
	}

	cv := b.newValue(Call, t, e)
	cs := &CallSite{Site: e, Callee: callgraph.StaticCallee(b.info, e), Args: args, Result: cv, Block: b.cur}
	if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
		if s := b.info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
			cs.Recv = b.fn.ExprValue[sel.X]
			// Calling through a nil pointer panics either at the receiver
			// load (value receivers) or, almost always, inside the method.
			if isPointer(b.info.TypeOf(sel.X)) {
				b.deref(e, cs.Recv, "method call")
			}
		}
	}
	if sig := callSignature(b.info, e); sig != nil && sig.Results().Len() == 1 {
		cs.Results = []*Value{cv}
	}
	b.fn.Calls = append(b.fn.Calls, cs)
	return cv
}

func (b *builder) builtin(e *ast.CallExpr, name string, t types.Type) *Value {
	switch name {
	case "len", "cap":
		x := b.expr(e.Args[0])
		return b.newValue(LenOf, t, e, x)
	case "make":
		var sizes []*Value
		for _, a := range e.Args[1:] {
			sizes = append(sizes, b.expr(a))
		}
		if len(sizes) > 0 {
			b.bound(MakeLen, e.Args[1], sizes[0], nil)
		}
		if len(sizes) > 1 {
			b.bound(MakeCap, e.Args[2], sizes[1], nil)
		}
		return b.newValue(Alloc, t, e, sizes...)
	case "new":
		return b.newValue(Alloc, t, e)
	case "append":
		var args []*Value
		for _, a := range e.Args {
			args = append(args, b.expr(a))
		}
		if e.Ellipsis.IsValid() && len(args) > 0 {
			last := args[len(args)-1]
			b.bound(AppendSpread, e.Args[len(e.Args)-1], last, args[0])
		}
		return b.newValue(Unknown, t, e, args...)
	default:
		for _, a := range e.Args {
			b.expr(a)
		}
		return b.newValue(Unknown, t, e)
	}
}

// ---- type helpers ----

func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	t := info.TypeOf(call.Fun)
	if t == nil {
		return nil
	}
	sig, _ := t.Underlying().(*types.Signature)
	return sig
}

func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func isPointer(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Pointer)
	return ok
}

func indexable(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Basic:
		return u.Info()&types.IsString != 0
	case *types.Pointer:
		_, ok := u.Elem().Underlying().(*types.Array)
		return ok
	}
	return false
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	it, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return it.NumMethods() == 1 && it.Method(0).Name() == "Error"
}
