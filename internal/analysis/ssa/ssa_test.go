package ssa

import (
	"go/ast"
	"go/constant"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// buildFn type-checks src (appended to a package clause) and builds the
// SSA form of the function named name.
func buildFn(t *testing.T, src, name string) *Func {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			f := Build(info, fd)
			if f == nil {
				t.Fatalf("Build returned nil for %s", name)
			}
			return f
		}
	}
	t.Fatalf("no function %s", name)
	return nil
}

// sinkArgs returns the argument registers of every call to sink, in order.
func sinkArgs(t *testing.T, f *Func) []*Value {
	t.Helper()
	var out []*Value
	for _, cs := range f.Calls {
		if cs.Callee != nil && cs.Callee.Name() == "sink" {
			out = append(out, cs.Args...)
		}
	}
	if len(out) == 0 {
		t.Fatal("no sink call found")
	}
	return out
}

// phiClosure collects the non-φ values reachable through φ operands.
func phiClosure(v *Value) []*Value {
	seen := map[*Value]bool{}
	var out []*Value
	var walk func(*Value)
	walk = func(v *Value) {
		if v == nil || seen[v] {
			return
		}
		seen[v] = true
		if v.Kind != Phi {
			out = append(out, v)
			return
		}
		for _, a := range v.Args {
			walk(a)
		}
	}
	walk(v)
	return out
}

const prelude = `
func sink(args ...any) {}
func cond() bool { return false }
`

func TestStraightLineRegisters(t *testing.T) {
	f := buildFn(t, prelude+`
func f() {
	x := 1
	y := x + 2
	sink(y)
}`, "f")
	arg := sinkArgs(t, f)[0]
	if arg.Kind != BinOp || arg.Op != token.ADD {
		t.Fatalf("sink arg = %v %v, want binop +", arg.Kind, arg.Op)
	}
	if arg.Args[0].Kind != Const || arg.Args[1].Kind != Const {
		t.Errorf("operands = %v, %v, want const, const", arg.Args[0].Kind, arg.Args[1].Kind)
	}
}

func TestPhiAtIfJoin(t *testing.T) {
	f := buildFn(t, prelude+`
func f() {
	x := 1
	if cond() {
		x = 2
	}
	sink(x)
}`, "f")
	arg := sinkArgs(t, f)[0]
	if arg.Kind != Phi {
		t.Fatalf("sink arg = %v, want phi", arg.Kind)
	}
	if len(arg.Args) != 2 {
		t.Fatalf("phi has %d operands, want 2", len(arg.Args))
	}
	// Operand order is parallel to the join block's predecessors.
	if len(arg.Block.Preds) != len(arg.Args) {
		t.Errorf("phi operands (%d) not parallel to preds (%d)", len(arg.Args), len(arg.Block.Preds))
	}
	vals := map[int64]bool{}
	for _, op := range arg.Args {
		if op.Kind != Const {
			t.Fatalf("phi operand = %v, want const", op.Kind)
		}
		c, _ := constInt(op)
		vals[c] = true
	}
	if !vals[1] || !vals[2] {
		t.Errorf("phi operands = %v, want {1, 2}", vals)
	}
}

func constInt(v *Value) (int64, bool) {
	if v.ConstVal == nil {
		return 0, false
	}
	return constant.Int64Val(constant.ToInt(v.ConstVal))
}

func TestLoopHeaderPhi(t *testing.T) {
	f := buildFn(t, prelude+`
func f(n int) {
	x := 1
	for i := 0; i < n; i++ {
		x = 2
	}
	sink(x)
}`, "f")
	arg := sinkArgs(t, f)[0]
	leaves := phiClosure(arg)
	vals := map[int64]bool{}
	for _, l := range leaves {
		if c, ok := constInt(l); ok {
			vals[c] = true
		}
	}
	if !vals[1] || !vals[2] {
		t.Errorf("loop join leaves = %v, want both 1 and 2 reachable", vals)
	}
}

func TestDefUseChains(t *testing.T) {
	f := buildFn(t, prelude+`
func f(n int) int {
	x := n + 1
	if cond() {
		x = x * 2
	}
	return x
}`, "f")
	for _, v := range f.Values {
		for _, a := range v.Args {
			if a == nil {
				continue
			}
			found := false
			for _, u := range a.Uses {
				if u == v {
					found = true
				}
			}
			if !found {
				t.Errorf("v%d missing from uses of its operand v%d", v.ID, a.ID)
			}
		}
	}
}

func TestCommaOkLinkage(t *testing.T) {
	f := buildFn(t, prelude+`
func f(m map[string]int, k string) {
	v, ok := m[k]
	sink(v, ok)
}`, "f")
	args := sinkArgs(t, f)
	v, ok := args[0], args[1]
	if v.Kind != Extract || ok.Kind != Extract {
		t.Fatalf("kinds = %v, %v, want extract, extract", v.Kind, ok.Kind)
	}
	if v.CommaOk != MapOk || ok.CommaOk != MapOk {
		t.Errorf("comma-ok kinds = %v, %v, want map-ok", v.CommaOk, ok.CommaOk)
	}
	if v.Pair != ok || ok.Pair != v {
		t.Error("extracts not pair-linked")
	}
	if v.Index != 0 || ok.Index != 1 {
		t.Errorf("indices = %d, %d, want 0, 1", v.Index, ok.Index)
	}
}

func TestErrResultPairing(t *testing.T) {
	f := buildFn(t, prelude+`
type T struct{ n int }
func g() (*T, error) { return nil, nil }
func f() {
	v, err := g()
	sink(v, err)
}`, "f")
	args := sinkArgs(t, f)
	v, errv := args[0], args[1]
	if v.Pair != errv || errv.Pair != v {
		t.Error("(T, error) extracts not pair-linked")
	}
}

func TestDerefAndGuardContext(t *testing.T) {
	f := buildFn(t, prelude+`
func f(p *int) {
	if p != nil && *p == 1 {
		sink()
	}
	_ = *p
}`, "f")
	if len(f.Derefs) != 2 {
		t.Fatalf("derefs = %d, want 2", len(f.Derefs))
	}
	guarded := f.Derefs[0]
	if len(guarded.Guards) != 1 || !guarded.Guards[0].Sense {
		t.Fatalf("guarded deref guards = %+v, want one true-sense conjunct", guarded.Guards)
	}
	if bare := f.Derefs[1]; len(bare.Guards) != 0 {
		t.Errorf("bare deref carries guards %+v", bare.Guards)
	}
	if guarded.Base.Kind != Param {
		t.Errorf("guarded deref base = %v, want param", guarded.Base.Kind)
	}
	// After the if-join the read is a (kept-trivial) φ over the same
	// register: edge-refined joins rely on that φ being present.
	bare := f.Derefs[1]
	if leaves := phiClosure(bare.Base); len(leaves) != 1 || leaves[0] != guarded.Base {
		t.Errorf("post-join deref does not join back to the param register: %v", leaves)
	}
}

func TestMapWriteAndFieldDeref(t *testing.T) {
	f := buildFn(t, prelude+`
type S struct{ n int }
func f(m map[string]int, p *S) {
	m["k"] = 1
	sink(p.n)
}`, "f")
	whats := map[string]int{}
	for _, d := range f.Derefs {
		whats[d.What]++
	}
	if whats["write into map"] != 1 || whats["field access"] != 1 {
		t.Errorf("deref whats = %v", whats)
	}
}

func TestBoundSites(t *testing.T) {
	f := buildFn(t, prelude+`
func f(n int, s []int, extra []int) {
	b := make([]byte, n)
	x := s[n]
	y := s[1:n]
	s = append(s, extra...)
	sink(b, x, y, s)
}`, "f")
	kinds := map[BoundKind]int{}
	for _, bs := range f.Bounds {
		kinds[bs.Kind]++
	}
	if kinds[MakeLen] != 1 || kinds[Index] != 1 || kinds[SliceBound] != 2 || kinds[AppendSpread] != 1 {
		t.Errorf("bound kinds = %v", kinds)
	}
	for _, bs := range f.Bounds {
		if bs.Val == nil {
			t.Errorf("%v site has nil value", bs.Kind)
		}
	}
}

func TestRangeVarValue(t *testing.T) {
	f := buildFn(t, prelude+`
func f(n int) {
	for i := range n {
		sink(i)
	}
}`, "f")
	arg := sinkArgs(t, f)[0]
	leaves := phiClosure(arg)
	found := false
	for _, l := range leaves {
		if l.Kind == RangeVar && l.Index == 0 {
			found = true
			if len(l.Args) != 1 || l.Args[0] == nil || l.Args[0].Kind != Param {
				t.Errorf("range var operand = %+v, want the ranged param", l.Args)
			}
		}
	}
	if !found {
		t.Errorf("range key read does not reach a RangeVar (leaves: %v)", leaves)
	}
}

func TestAddressTakenUntracked(t *testing.T) {
	f := buildFn(t, prelude+`
func f() {
	x := 1
	p := &x
	*p = 2
	sink(x)
}`, "f")
	arg := sinkArgs(t, f)[0]
	if arg.Kind != Unknown {
		t.Errorf("address-taken variable read = %v, want unknown", arg.Kind)
	}
}

func TestClosureCaptureUntracked(t *testing.T) {
	f := buildFn(t, prelude+`
func f() {
	x := 1
	g := func() { x = 2 }
	g()
	sink(x)
}`, "f")
	arg := sinkArgs(t, f)[0]
	if arg.Kind != Unknown {
		t.Errorf("captured variable read = %v, want unknown", arg.Kind)
	}
	if len(f.Lits) != 1 {
		t.Errorf("nested literals = %d, want 1", len(f.Lits))
	}
}

func TestNamedResultZeroAndBareReturn(t *testing.T) {
	f := buildFn(t, prelude+`
func f() (err error) {
	return
}`, "f")
	if len(f.Returns) != 1 || len(f.Returns[0].Vals) != 1 {
		t.Fatalf("returns = %+v", f.Returns)
	}
	if got := f.Returns[0].Vals[0].Kind; got != Zero {
		t.Errorf("bare return of untouched named result = %v, want zero", got)
	}
}

func TestFuncValueCallDeref(t *testing.T) {
	f := buildFn(t, prelude+`
func f(g func()) {
	g()
}`, "f")
	found := false
	for _, d := range f.Derefs {
		if d.What == "call of function value" {
			found = true
		}
	}
	if !found {
		t.Error("call of a function-typed parameter not recorded as a deref site")
	}
}

func TestUnanalyzableBody(t *testing.T) {
	f := buildFn(t, prelude+`
func f() {
	goto done
done:
	sink()
}`, "f")
	if !f.Unanalyzable {
		t.Fatal("goto body not marked unanalyzable")
	}
	if len(f.Blocks) != 0 {
		t.Errorf("unanalyzable func has %d blocks, want none", len(f.Blocks))
	}
}

func TestParamSeeding(t *testing.T) {
	f := buildFn(t, prelude+`
type R struct{}
func (r *R) f(a int, b string) {
	sink(a, b)
}`, "f")
	if len(f.Params) != 3 {
		t.Fatalf("params = %d, want 3 (receiver + 2)", len(f.Params))
	}
	args := sinkArgs(t, f)
	if args[0].Kind != Param || args[0].Index != 1 {
		t.Errorf("a = %v index %d, want param index 1", args[0].Kind, args[0].Index)
	}
	if args[1].Kind != Param || args[1].Index != 2 {
		t.Errorf("b = %v index %d, want param index 2", args[1].Kind, args[1].Index)
	}
}
