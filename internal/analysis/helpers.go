package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// HasPathSegment reports whether pkgPath contains seg as a whole path
// segment (e.g. HasPathSegment("example.com/m/internal/sim", "internal")).
func HasPathSegment(pkgPath, seg string) bool {
	for _, s := range strings.Split(pkgPath, "/") {
		if s == seg {
			return true
		}
	}
	return false
}

// IsPkgPath reports whether path denotes the package named by suffix:
// either exactly, or as a trailing "/"-separated suffix. Analyzers match
// repository packages this way so they keep working if the module path
// changes (and so test fixtures can stub them under any prefix).
func IsPkgPath(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// IsNamed reports whether t — after stripping one level of pointer —
// is the named type `name` declared in the package identified by
// pkgSuffix (per IsPkgPath).
func IsNamed(t types.Type, pkgSuffix, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return IsPkgPath(obj.Pkg().Path(), pkgSuffix)
}

// CalleeFunc resolves the function or method a call statically invokes,
// or nil for calls through function values, builtins and conversions.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// IsPkgFunc reports whether the call invokes the package-level function
// pkgPath.name (not a method).
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath
}

// WalkStack traverses root in depth-first order, calling fn with each
// node and the stack of its ancestors (outermost first, not including n).
// If fn returns false the node's children are skipped.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// IsTestFile reports whether the file containing pos is a _test.go file.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// IsFixturePath reports whether the file or directory path lies under a
// testdata directory. Fixture packages deliberately violate the analyzers
// that load them (`// want` expectations), so every driver must skip
// them: go list-based enumeration (`./...`) never descends into testdata,
// but explicit patterns and vet configs can still name fixtures.
func IsFixturePath(path string) bool {
	for _, seg := range strings.Split(filepath.ToSlash(path), "/") {
		if seg == "testdata" {
			return true
		}
	}
	return false
}

// EnclosingFunc returns the innermost function literal or declaration in
// the ancestor stack, or nil.
func EnclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}
