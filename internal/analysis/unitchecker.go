package analysis

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
)

// vetConfig mirrors the JSON configuration the go command hands a
// -vettool for each package unit. Only the fields this driver consumes
// are declared; unknown fields are ignored by encoding/json.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunUnitchecker analyzes the single package unit described by the vet
// config file at cfgPath, printing findings to w in the classic
// `file:line:col: message` form. It returns the process exit code:
// 0 for a clean run, 1 for a driver error, 2 when findings were reported
// (matching the go vet convention that any nonzero exit fails the build).
func RunUnitchecker(cfgPath string, analyzers []*Analyzer, w io.Writer) int {
	findings, err := analyzeUnit(cfgPath, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rololint: %v\n", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintf(w, "%s: %s\n", f.Pos, f.Message)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

func analyzeUnit(cfgPath string, analyzers []*Analyzer) ([]Finding, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parse %s: %w", cfgPath, err)
	}

	// The go command expects a facts file for every analyzed unit so it
	// can cache and feed dependency facts downstream. The rololint suite
	// is factless, so an empty file satisfies the protocol.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return nil, fmt.Errorf("write facts: %w", err)
		}
	}
	if cfg.VetxOnly {
		// Dependency-only visit: facts written (none), nothing to report.
		return nil, nil
	}
	if IsFixturePath(cfg.Dir) {
		// Analyzer fixture package (deliberate violations); skip.
		return nil, nil
	}

	fset := token.NewFileSet()
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, compiler, lookup)

	unit, err := TypecheckFiles(fset, cfg.ImportPath, cfg.GoFiles, imp, cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			// The compiler will report the problem; stay quiet.
			return nil, nil
		}
		return nil, err
	}
	return RunAnalyzers(unit, analyzers)
}
