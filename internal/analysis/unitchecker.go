package analysis

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"strings"
)

// vetConfig mirrors the JSON configuration the go command hands a
// -vettool for each package unit. Only the fields this driver consumes
// are declared; unknown fields are ignored by encoding/json.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// stdlibImportPath reports whether an import path names a standard-
// library package, by the go command's own rule: the first path element
// of a module path is a domain and contains a dot, a standard-library
// path never does. "unsafe" and "C" fall out naturally.
func stdlibImportPath(path string) bool {
	elem := path
	if i := strings.IndexByte(elem, '/'); i >= 0 {
		elem = elem[:i]
	}
	return !strings.Contains(elem, ".")
}

// RunUnitchecker analyzes the single package unit described by the vet
// config file at cfgPath, printing findings to w in the classic
// `file:line:col: message` form. It returns the process exit code:
// 0 for a clean run, 1 for a driver error, 2 when findings were reported
// (matching the go vet convention that any nonzero exit fails the build).
func RunUnitchecker(cfgPath string, analyzers []*Analyzer, w io.Writer) int {
	findings, err := analyzeUnit(cfgPath, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rololint: %v\n", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintf(w, "%s: %s\n", f.Pos, f.Message)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// analyzeUnit runs the analyzers over one vet unit. Facts ride the vetx
// files: the go command hands the dependency units' vetx paths in
// PackageVetx (scheduling dependencies first, VetxOnly when a package is
// visited only for its facts) and caches what this unit writes to
// VetxOutput, keyed by content — which is why EncodeFacts serializes
// deterministically.
func analyzeUnit(cfgPath string, analyzers []*Analyzer) ([]Finding, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parse %s: %w", cfgPath, err)
	}
	writeVetx := func(f Facts) error {
		if cfg.VetxOutput == "" {
			return nil
		}
		out, err := EncodeFacts(f)
		if err != nil {
			return fmt.Errorf("encode facts: %w", err)
		}
		return os.WriteFile(cfg.VetxOutput, out, 0o666)
	}

	// Standard-library units carry no repository facts and must not be
	// analyzed (several have "internal" path segments that would drag
	// them into the analyzers' scope); fixture packages are deliberate
	// violations. Both still owe the protocol a facts file. cfg.Standard
	// covers only the unit's imports, never the unit itself, so the
	// unit's own import path is classified the way the go command does
	// it: a first path element without a dot is the standard library.
	if cfg.Standard[cfg.ImportPath] || stdlibImportPath(cfg.ImportPath) || IsFixturePath(cfg.Dir) {
		return nil, writeVetx(nil)
	}

	imported := make(Facts)
	for _, vetx := range cfg.PackageVetx {
		fdata, err := os.ReadFile(vetx)
		if err != nil {
			// A dependency whose facts never materialized degrades to
			// intra-package analysis; the analyzers are conservative
			// without imported summaries.
			continue
		}
		if imported, err = DecodeFacts(imported, fdata); err != nil {
			return nil, fmt.Errorf("%s: %w", vetx, err)
		}
	}

	fset := token.NewFileSet()
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, compiler, lookup)

	unit, err := TypecheckFiles(fset, cfg.ImportPath, cfg.GoFiles, imp, cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			// The compiler will report the problem; stay quiet.
			return nil, writeVetx(nil)
		}
		return nil, err
	}
	findings, exported, err := RunAnalyzersFacts(unit, analyzers, imported)
	if err != nil {
		return nil, err
	}
	if err := writeVetx(exported); err != nil {
		return nil, err
	}
	if cfg.VetxOnly {
		// Dependency-only visit: facts written, nothing to report.
		return nil, nil
	}
	return findings, nil
}
