package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
)

// TypecheckFiles parses and type-checks one package from its file list,
// returning a Unit ready for RunAnalyzers. The importer resolves every
// import; goVersion ("go1.22"-style, or empty) sets the language version.
// Parse or type errors are returned joined into a single error.
func TypecheckFiles(fset *token.FileSet, path string, filenames []string,
	imp types.Importer, goVersion string) (*Unit, error) {
	var files []*ast.File
	var errs []string
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			errs = append(errs, err.Error())
			continue
		}
		files = append(files, f)
	}
	if len(errs) > 0 {
		return nil, fmt.Errorf("parse: %s", strings.Join(errs, "; "))
	}
	info := NewInfo()
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { errs = append(errs, err.Error()) },
	}
	if goVersion != "" {
		conf.GoVersion = goVersion
	}
	pkg, err := conf.Check(path, fset, files, info)
	if len(errs) > 0 {
		return nil, fmt.Errorf("typecheck %s: %s", path, strings.Join(errs, "; "))
	}
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Unit{Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}
