package unitflow_test

import (
	"testing"

	"github.com/rolo-storage/rolo/internal/analysis/analysistest"
	"github.com/rolo-storage/rolo/internal/analysis/unitflow"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", unitflow.Analyzer,
		"fix/basic",   // in-function mixes, stores, args, returns, waiver
		"fix/convfix", // golden autofix: dropped redundant conversion
		"fix/xpkg",    // cross-package unit facts (dep: unitdep)
	)
}
