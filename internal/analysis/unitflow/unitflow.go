// Package unitflow flags value flows that mix physical units: simulated
// time, byte counts, block counts, sector counts, or any dimension named
// by a //rolosan:unit directive.
//
// Units are seeded by the valueflow lattice from declared types
// (internal/sim.Time is "time" without annotation) and from
// //rolosan:unit directives on types, package-level variables, constants
// and struct fields. Unlike simtimeunits' literal-only check, the tag
// travels with the value: through arithmetic, φ-joins, assignments and —
// deliberately — through conversions, so `ByteCount(elapsed)` still
// carries "time" and is caught wherever it lands. Re-dimensioning is
// expressed by arithmetic that cancels the unit (dividing two times
// yields a dimensionless ratio) or, where genuinely intended, by a
// //lint:allow waiver.
//
// Categories:
//
//   - mix: additive arithmetic (+, -, %) or a comparison whose operands
//     carry two different known units.
//   - assign: a value of one unit stored into a variable or field tagged
//     (or typed) with another.
//   - arg: a call argument whose unit differs from the callee parameter's
//     declared unit (summaries cross packages as valueflow facts).
//   - return: a returned value whose unit differs from the declared
//     result type's unit.
//   - redundant: a conversion whose operand already has the target type
//     — a leftover where unit confusion hides; the autofix deletes the
//     wrapper.
//
// Dimensionless values never trigger findings: both sides must carry a
// known unit. Scope: all non-test files.
package unitflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"github.com/rolo-storage/rolo/internal/analysis"
	"github.com/rolo-storage/rolo/internal/analysis/ssa"
	"github.com/rolo-storage/rolo/internal/analysis/valueflow"
)

// Analyzer is the unit-safety check.
var Analyzer = &analysis.Analyzer{
	Name: "unitflow",
	Doc:  "flag arithmetic, assignments and calls that mix time/byte/block/sector units",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	res := valueflow.Compute(pass)
	for _, fr := range res.Funcs {
		if fr.SSA.Unanalyzable || analysis.IsTestFile(pass.Fset, fr.SSA.Node.Pos()) {
			continue
		}
		checkMixes(pass, fr)
		checkAssigns(pass, res, fr)
		checkCalls(pass, res, fr)
		checkReturns(pass, res, fr)
		checkRedundant(pass, res, fr)
	}
	return nil
}

// mixing reports whether op combines its operands in a unit-sensitive
// way: additive arithmetic and comparisons require like units, while
// multiplicative and shift operators legitimately combine dimensions.
func mixing(op token.Token) (verb string, ok bool) {
	switch op {
	case token.ADD, token.SUB, token.REM:
		return "arithmetic", true
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		return "comparison", true
	}
	return "", false
}

// checkMixes flags binary operations over two different known units.
func checkMixes(pass *analysis.Pass, fr *valueflow.FuncResult) {
	for _, v := range fr.SSA.Values {
		if v.Kind != ssa.BinOp || v.Expr == nil || len(v.Args) != 2 {
			continue
		}
		verb, ok := mixing(v.Op)
		if !ok || !fr.Reached(v.Block) {
			continue
		}
		ux := fr.AbstractOf(v.Args[0]).Unit
		uy := fr.AbstractOf(v.Args[1]).Unit
		if ux == "" || uy == "" || ux == uy {
			continue
		}
		pass.Reportf(v.Expr.Pos(), "mix",
			"cross-unit %s mixes %s and %s", verb, ux, uy)
	}
}

// checkAssigns flags plain assignments whose right-hand unit contradicts
// the destination's declared or directive unit. Compound assignments
// (+=) desugar to a BinOp and are covered by checkMixes.
func checkAssigns(pass *analysis.Pass, res *valueflow.Result, fr *valueflow.FuncResult) {
	ast.Inspect(fr.SSA.Node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != fr.SSA.Node {
			return false // literals have their own FuncResult
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			want, what := destUnit(pass, res, as.Lhs[i])
			if want == "" {
				continue
			}
			rv := regOf(fr, as.Rhs[i])
			if rv == nil {
				continue
			}
			got := fr.AbstractOf(rv).Unit
			if got == "" || got == want {
				continue
			}
			pass.Reportf(as.Rhs[i].Pos(), "assign",
				"assignment of %s value to %s %s", got, want, what)
		}
		return true
	})
}

// checkCalls flags arguments whose unit differs from the callee
// parameter's, using the callee's valueflow summary (imported across
// packages as facts).
func checkCalls(pass *analysis.Pass, res *valueflow.Result, fr *valueflow.FuncResult) {
	for _, cs := range fr.SSA.Calls {
		if cs.Callee == nil || !fr.Reached(cs.Block) {
			continue
		}
		s := res.SummaryOf(cs.Callee)
		if s == nil {
			continue
		}
		// Params lists the receiver first for methods; Args excludes it.
		shift := 0
		if cs.Recv != nil {
			shift = 1
		}
		for i, arg := range cs.Args {
			pi := i + shift
			if arg == nil || pi >= len(s.Params) || s.Params[pi].Unit == "" {
				continue
			}
			got := fr.AbstractAt(arg, cs.Block).Unit
			if got == "" || got == s.Params[pi].Unit {
				continue
			}
			pos := cs.Site.Pos()
			if arg.Expr != nil {
				pos = arg.Expr.Pos()
			}
			pass.Reportf(pos, "arg",
				"argument %d to %s carries %s, parameter expects %s",
				i+1, cs.Callee.Name(), got, s.Params[pi].Unit)
		}
	}
}

// checkReturns flags returned values whose unit differs from the unit of
// the declared result type.
func checkReturns(pass *analysis.Pass, res *valueflow.Result, fr *valueflow.FuncResult) {
	sig := fr.SSA.Sig
	if sig == nil {
		return
	}
	for _, rs := range fr.SSA.Returns {
		if !fr.Reached(rs.Block) || len(rs.Vals) != sig.Results().Len() {
			continue
		}
		for i, v := range rs.Vals {
			if v == nil {
				continue
			}
			want := res.UnitOf(sig.Results().At(i).Type())
			if want == "" {
				continue
			}
			got := fr.AbstractAt(v, rs.Block).Unit
			if got == "" || got == want {
				continue
			}
			pass.Reportf(rs.Stmt.Pos(), "return",
				"returning %s value as %s result", got, want)
		}
	}
}

// checkRedundant flags conversions whose operand already has the target
// type, when that type carries a unit — the no-op wrappers left behind by
// refactors are exactly where unit confusion hides. The fix deletes the
// wrapper, which removes the conversion and so cannot reproduce the
// diagnostic.
func checkRedundant(pass *analysis.Pass, res *valueflow.Result, fr *valueflow.FuncResult) {
	for _, v := range fr.SSA.Values {
		if v.Kind != ssa.Convert || v.Expr == nil || len(v.Args) != 1 || v.Args[0] == nil {
			continue
		}
		if !fr.Reached(v.Block) {
			continue
		}
		if v.Type == nil || v.Args[0].Type == nil || !types.Identical(v.Type, v.Args[0].Type) {
			continue
		}
		unit := res.UnitOf(v.Type)
		if unit == "" {
			continue
		}
		call, ok := ast.Unparen(v.Expr).(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			continue
		}
		name := types.TypeString(v.Type, types.RelativeTo(pass.Pkg))
		pass.Report(analysis.Diagnostic{
			Pos:      v.Expr.Pos(),
			Category: "redundant",
			Message:  fmt.Sprintf("redundant conversion: the operand is already %s (%s)", name, unit),
			SuggestedFixes: []analysis.SuggestedFix{{
				Message: "drop the redundant conversion",
				Edits: []analysis.TextEdit{
					{Pos: call.Pos(), End: call.Args[0].Pos(), NewText: ""},
					{Pos: call.Args[0].End(), End: call.End(), NewText: ""},
				},
			}},
		})
	}
}

// destUnit resolves the unit an assignment destination expects: a
// //rolosan:unit directive on the named variable or field, else the unit
// of its declared type. The second result names the destination for the
// message.
func destUnit(pass *analysis.Pass, res *valueflow.Result, e ast.Expr) (string, string) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return "", ""
		}
		if v, ok := pass.TypesInfo.Uses[x].(*types.Var); ok {
			return varUnit(res, v), "variable " + x.Name
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[x]; ok {
			if v, ok := sel.Obj().(*types.Var); ok {
				return varUnit(res, v), "field " + x.Sel.Name
			}
		}
		if v, ok := pass.TypesInfo.Uses[x.Sel].(*types.Var); ok {
			return varUnit(res, v), "variable " + x.Sel.Name
		}
	case *ast.IndexExpr, *ast.StarExpr:
		if tv, ok := pass.TypesInfo.Types[e]; ok {
			return res.UnitOf(tv.Type), "element"
		}
	}
	return "", ""
}

func varUnit(res *valueflow.Result, v *types.Var) string {
	if u := res.UnitOfVar(v); u != "" {
		return u
	}
	return res.UnitOf(v.Type())
}

// regOf maps an expression to its virtual register.
func regOf(fr *valueflow.FuncResult, e ast.Expr) *ssa.Value {
	if v, ok := fr.SSA.ExprValue[e]; ok {
		return v
	}
	if v, ok := fr.SSA.ExprValue[ast.Unparen(e)]; ok {
		return v
	}
	return nil
}
