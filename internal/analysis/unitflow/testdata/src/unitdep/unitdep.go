// Package unitdep is the cross-package dependency fixture: the
// //rolosan:unit tag on Sector and the parameter unit in Seek's summary
// travel to the importing package as valueflow facts.
package unitdep

// Sector addresses one 512-byte device sector.
//
//rolosan:unit sectors
type Sector int64

// Seek positions the arm at s and reports where it landed.
func Seek(s Sector) Sector { return s }
