// Package xpkg consumes unitdep's units through the fact layer: a byte
// quantity laundered into unitdep.Sector is flagged at the call site and
// at a cross-package typed assignment.
package xpkg

import "unitdep"

// size counts payload bytes.
//
//rolosan:unit bytes
type size int64

func bad(n size) unitdep.Sector {
	return unitdep.Seek(unitdep.Sector(int64(n))) // want `argument 1 to Seek carries bytes, parameter expects sectors`
}

func good(s unitdep.Sector) unitdep.Sector {
	return unitdep.Seek(s)
}

// head is the current arm position.
var head unitdep.Sector

func badStore(n size) {
	head = unitdep.Sector(int64(n)) // want `assignment of bytes value to sectors variable head`
}

func okStore(s unitdep.Sector) {
	head = s
}
