// Package convfix exercises the drop-the-redundant-conversion autofix:
// the operand already has the target (unit-tagged) type, so the wrapper
// is a no-op left behind by a refactor.
package convfix

// Tick counts simulated microseconds.
//
//rolosan:unit time
type Tick int64

func wait(t Tick) Tick {
	delay := Tick(t) // want `redundant conversion: the operand is already Tick \(time\)`
	return delay
}
