// Package basic exercises the in-function unit checks: cross-unit
// arithmetic and comparisons, directive-tagged variable and field
// stores, call arguments, returns, and the waiver path.
package basic

// Duration counts simulated microseconds.
//
//rolosan:unit time
type Duration int64

// ByteCount counts payload bytes.
//
//rolosan:unit bytes
type ByteCount int64

func badAdd(t Duration, b ByteCount) int64 {
	return int64(t) + int64(b) // want `cross-unit arithmetic mixes time and bytes`
}

func okAdd(a, b Duration) Duration {
	return a + b
}

func okUnitless(t Duration, n int64) Duration {
	return t + Duration(n)
}

func badCompare(t Duration, b ByteCount) bool {
	return int64(t) < int64(b) // want `cross-unit comparison mixes time and bytes`
}

func okRatio(busy, window Duration, b ByteCount) int64 {
	// Dividing two times cancels the unit: the ratio is dimensionless
	// and may scale a byte count.
	return int64(b) * (int64(busy) / int64(window))
}

// cursor is the next sector to write.
//
//rolosan:unit sectors
var cursor int64

func badStore(b ByteCount) {
	cursor = int64(b) // want `assignment of bytes value to sectors variable cursor`
}

func okStore(n int64) {
	cursor = n // dimensionless: fine
}

type header struct {
	// start is the first sector of the segment.
	//
	//rolosan:unit sectors
	start int64
}

func badField(h *header, b ByteCount) {
	h.start = int64(b) // want `assignment of bytes value to sectors field start`
}

func okField(h *header) {
	h.start = cursor
}

func scale(d Duration) Duration { return 2 * d }

func badArg(b ByteCount) Duration {
	return scale(Duration(int64(b))) // want `argument 1 to scale carries bytes, parameter expects time`
}

func okArg(t Duration) Duration {
	return scale(t)
}

func badReturn(t Duration) ByteCount {
	return ByteCount(int64(t)) // want `returning time value as bytes result`
}

func okReturn(b ByteCount) ByteCount {
	return b + 1
}

func waived(t Duration, b ByteCount) int64 {
	return int64(t) + int64(b) //lint:allow unitflow:mix histogram packs both on one axis
}
