package statetransition_test

import (
	"testing"

	"github.com/rolo-storage/rolo/internal/analysis/analysistest"
	"github.com/rolo-storage/rolo/internal/analysis/statetransition"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", statetransition.Analyzer,
		"fix/statemachine",
	)
}
