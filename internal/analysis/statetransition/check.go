package statetransition

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"github.com/rolo-storage/rolo/internal/analysis"
	"github.com/rolo-storage/rolo/internal/analysis/cfg"
)

// fromKey addresses one //rolosan:from directive by file line.
type fromKey struct {
	file string
	line int
}

// collectFromDirectives parses every `//rolosan:from A, B` comment into
// the universe set it declares. Unknown constant names are reported at
// the directive.
func collectFromDirectives(pass *analysis.Pass, sp *spec) map[fromKey]cfg.Set {
	byName := map[string]int{}
	for i, n := range sp.names {
		byName[n] = i
	}
	out := map[fromKey]cfg.Set{}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if strings.HasPrefix(text, "//") {
					text = text[2:]
				} else {
					text = strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/")
				}
				rest, ok := strings.CutPrefix(strings.TrimSpace(text), FromDirective)
				if !ok {
					continue
				}
				// Allow trailing prose after an embedded `//`.
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = rest[:i]
				}
				var set cfg.Set
				valid := true
				for _, name := range strings.Split(rest, ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					i, ok := byName[name]
					if !ok {
						pass.Reportf(c.Pos(), "bad-annotation", "%s names unknown state constant %q", FromDirective, name)
						valid = false
						continue
					}
					set = set.With(i)
				}
				if !valid || set.Empty() {
					continue
				}
				posn := pass.Fset.Position(c.Pos())
				out[fromKey{posn.Filename, posn.Line}] = set
			}
		}
	}
	return out
}

// mutationSummaries computes, by fixpoint over the package's call graph,
// which declared functions may mutate the tracked field: a direct
// assignment, a call to the transition function, a call through a
// function value, or a call to a function already known to mutate.
// Function literals are skipped — they run when invoked, and invocation
// through a value is already treated as mutating at the caller.
func mutationSummaries(pass *analysis.Pass, sp *spec) map[*types.Func]bool {
	type fnDecl struct {
		obj  *types.Func
		decl *ast.FuncDecl
	}
	var fns []fnDecl
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func); obj != nil {
				fns = append(fns, fnDecl{obj, fd})
			}
		}
	}
	mutates := map[*types.Func]bool{sp.fn: true}
	calls := map[*types.Func][]*types.Func{}
	for _, fn := range fns {
		direct := false
		inspectSkippingFuncLits(fn.decl.Body, func(n ast.Node) {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if sp.isTrackedSel(pass.TypesInfo, lhs, nil) {
						direct = true
					}
				}
			case *ast.CallExpr:
				callee, dynamic := resolveCallee(pass.TypesInfo, n)
				switch {
				case dynamic:
					direct = true
				case callee != nil && callee.Pkg() == pass.Pkg:
					calls[fn.obj] = append(calls[fn.obj], callee)
				}
			}
		})
		if direct {
			mutates[fn.obj] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			if mutates[fn.obj] {
				continue
			}
			for _, callee := range calls[fn.obj] {
				if mutates[callee] {
					mutates[fn.obj] = true
					changed = true
					break
				}
			}
		}
	}
	return mutates
}

// resolveCallee classifies a call: a statically known function/method, or
// a dynamic call through a function value. Builtins and conversions are
// neither.
func resolveCallee(info *types.Info, call *ast.CallExpr) (callee *types.Func, dynamic bool) {
	if tv, ok := info.Types[call.Fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
		return nil, false
	}
	if fn := analysis.CalleeFunc(info, call); fn != nil {
		return fn, false
	}
	return nil, true
}

// inspectSkippingFuncLits walks root without descending into function
// literals.
func inspectSkippingFuncLits(root ast.Node, fn func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// callSite is one transition-function call found in a function body.
type callSite struct {
	call    *ast.CallExpr
	recvObj types.Object // object the method is called on (ident receivers only)
	inLit   bool         // inside a function literal
}

// checkFunc verifies every transition call and direct field write in fd.
func checkFunc(pass *analysis.Pass, sp *spec, fd *ast.FuncDecl, froms map[fromKey]cfg.Set, summaries map[*types.Func]bool) {
	inTransition := pass.TypesInfo.Defs[fd.Name] == sp.fn

	// Direct writes to the tracked field bypass the state machine.
	if !inTransition {
		analysis.WalkStack(fd.Body, func(n ast.Node, _ []ast.Node) bool {
			if as, ok := n.(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					if sp.isTrackedSel(pass.TypesInfo, lhs, nil) {
						pass.Reportf(as.Pos(), "bypass",
							"direct write to %s.%s bypasses the state machine (no accrual, no hooks); call %s or annotate the intentional bypass",
							sp.fn.Type().(*types.Signature).Recv().Type(), sp.field.Name(), sp.fn.Name())
					}
				}
			}
			return true
		})
	}

	// Collect transition call sites with their closure context.
	var sites []callSite
	analysis.WalkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callee, _ := resolveCallee(pass.TypesInfo, call); callee != sp.fn {
			return true
		}
		site := callSite{call: call}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if base, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				site.recvObj = pass.TypesInfo.Uses[base]
			}
		}
		if _, ok := analysis.EnclosingFunc(stack).(*ast.FuncLit); ok {
			site.inLit = true
		}
		sites = append(sites, site)
		return true
	})
	if len(sites) == 0 {
		return
	}

	full := cfg.Full(len(sp.vals))
	var graph *cfg.Graph
	flows := map[types.Object]map[ast.Stmt]cfg.Set{}

	for _, site := range sites {
		target, ok := sp.constIndex(pass.TypesInfo, site.call.Args[sp.argIdx])
		if !ok {
			pass.Reportf(site.call.Pos(), "unprovable",
				"cannot prove transition: target state is not a constant of %s", sp.stateT)
			continue
		}
		from := full
		if set, ok := annotatedFrom(pass, froms, site.call); ok {
			from = set
		} else if !site.inLit {
			if graph == nil {
				graph = cfg.Build(fd.Body)
			}
			if !graph.Unanalyzable && site.recvObj != nil {
				if flows[site.recvObj] == nil {
					flows[site.recvObj] = solveFor(pass, sp, graph, site.recvObj, summaries, full)
				}
				from = siteSet(flows[site.recvObj], site, full)
			}
		}
		var bad []string
		from.Each(func(i int) {
			if !sp.legal(i, target) {
				bad = append(bad, sp.names[i])
			}
		})
		if len(bad) > 0 {
			hint := ""
			if site.inLit {
				hint = fmt.Sprintf("; declare the closure's entry states with //%s", FromDirective)
			}
			pass.Reportf(site.call.Pos(), "illegal-transition",
				"possible illegal transition to %s: the state may be %s here, which the declared graph does not admit%s",
				sp.names[target], strings.Join(bad, " or "), hint)
		}
	}
}

// annotatedFrom looks up a //rolosan:from directive on the call line or
// the line above.
func annotatedFrom(pass *analysis.Pass, froms map[fromKey]cfg.Set, call *ast.CallExpr) (cfg.Set, bool) {
	posn := pass.Fset.Position(call.Pos())
	if s, ok := froms[fromKey{posn.Filename, posn.Line}]; ok {
		return s, true
	}
	s, ok := froms[fromKey{posn.Filename, posn.Line - 1}]
	return s, ok
}

// solveFor runs the value analysis for the field of one receiver object.
func solveFor(pass *analysis.Pass, sp *spec, g *cfg.Graph, obj types.Object, summaries map[*types.Func]bool, full cfg.Set) map[ast.Stmt]cfg.Set {
	transfer := func(s ast.Stmt, in cfg.Set) cfg.Set {
		return transferStmt(pass, sp, obj, summaries, s, in, full)
	}
	refine := func(c *cfg.Cond, in cfg.Set) cfg.Set {
		return refineCond(pass, sp, obj, c, in)
	}
	blockIn := g.Solve(full, transfer, refine)

	// Per-statement entry sets, so call sites can be located precisely.
	out := map[ast.Stmt]cfg.Set{}
	for _, blk := range g.Blocks {
		cur := blockIn[blk]
		for _, s := range blk.Stmts {
			out[s] = cur
			cur = transfer(s, cur)
		}
	}
	return out
}

// siteSet finds the entry set of the statement containing the call.
func siteSet(flow map[ast.Stmt]cfg.Set, site callSite, full cfg.Set) cfg.Set {
	for s, set := range flow {
		if s.Pos() <= site.call.Pos() && site.call.End() <= s.End() {
			return set
		}
	}
	return full
}

// transferStmt folds one statement's effect on the tracked field of obj.
// Effects (assignments and calls) apply in syntactic order; function
// literals are opaque values until called.
func transferStmt(pass *analysis.Pass, sp *spec, obj types.Object, summaries map[*types.Func]bool, s ast.Stmt, in cfg.Set, full cfg.Set) cfg.Set {
	cur := in
	inspectSkippingFuncLits(s, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if !sp.isTrackedSel(pass.TypesInfo, lhs, nil) {
					continue
				}
				if sp.trackedBase(pass.TypesInfo, lhs) == obj && i < len(n.Rhs) {
					if v, ok := sp.constIndex(pass.TypesInfo, n.Rhs[i]); ok {
						cur = cfg.Only(v)
						continue
					}
				}
				// A write through another name may alias obj.
				cur = full
			}
		case *ast.CallExpr:
			callee, dynamic := resolveCallee(pass.TypesInfo, n)
			switch {
			case callee == sp.fn:
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					if base, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pass.TypesInfo.Uses[base] == obj {
						if v, ok := sp.constIndex(pass.TypesInfo, n.Args[sp.argIdx]); ok {
							cur = cfg.Only(v)
							return
						}
					}
				}
				cur = full
			case dynamic:
				cur = full
			case callee != nil && callee.Pkg() == pass.Pkg && summaries[callee]:
				cur = full
			}
		}
	})
	return cur
}

// refineCond narrows the set along a branch comparing the tracked field
// of obj with state constants.
func refineCond(pass *analysis.Pass, sp *spec, obj types.Object, c *cfg.Cond, in cfg.Set) cfg.Set {
	vals := c.Vals
	// `C == d.state` compares swapped; normalize.
	if !sp.isTrackedSel(pass.TypesInfo, c.Expr, obj) {
		if len(vals) == 1 && sp.isTrackedSel(pass.TypesInfo, vals[0], obj) {
			vals = []ast.Expr{c.Expr}
		} else {
			return in
		}
	}
	var set cfg.Set
	for _, v := range vals {
		i, ok := sp.constIndex(pass.TypesInfo, v)
		if !ok {
			return in // non-constant comparison: no refinement
		}
		set = set.With(i)
	}
	if c.Negated {
		return in.Intersect(^set)
	}
	return in.Intersect(set)
}
