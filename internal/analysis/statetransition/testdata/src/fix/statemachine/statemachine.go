// Package statemachine exercises the statetransition analyzer. The State
// constants carry the same underlying values as disk.PowerState, so the
// shared transition graph reads: On(1)->Off(2), Off(2)->{On(1),
// Halting(5)}, Halting(5)->Sleep(3), Sleep(3)->Waking(4),
// Waking(4)->Off(2); self-loops are always legal.
package statemachine

// State mirrors disk.PowerState's value space.
type State int

// The five states, value-aligned with the disk package's graph.
const (
	On State = iota + 1
	Off
	Sleep
	Waking
	Halting
)

// M is a toy machine with one tracked state field.
type M struct {
	state State
	log   []State
}

// setState is the audited transition point.
//
// rolosan:transition
func (m *M) setState(to State, at int64) {
	if m.state == to {
		return
	}
	m.state = to
	m.log = append(m.log, to)
}

// later models event scheduling: the callback runs at an unknown time.
func (m *M) later(f func()) { f() }

// refinedByIf narrows the state with an equality guard before the call.
func (m *M) refinedByIf() {
	if m.state == On {
		m.setState(Off, 0) // On->Off is legal
	}
}

// refinedByNotEqualReturn narrows via an early return, SpinDown-style.
func (m *M) refinedByNotEqualReturn() {
	if m.state != Off {
		return
	}
	m.setState(Halting, 0) // Off->Halting is legal
}

// refinedBySwitchReturn narrows via a switch whose other cases return,
// tryDispatch-style: after the switch the state is On or Off.
func (m *M) refinedBySwitchReturn() {
	switch m.state {
	case Sleep, Waking, Halting:
		return
	}
	m.setState(On, 0) // from {On, Off}: legal
}

// sequentialKnowledge uses the set established by a preceding transition.
func (m *M) sequentialKnowledge() {
	if m.state != Off {
		return
	}
	m.setState(Halting, 0)
	m.setState(Sleep, 0) // Halting->Sleep is legal
}

// unconstrained calls with no narrowing at all: every state is possible,
// and Sleep is only reachable from Halting (or itself).
func (m *M) unconstrained() {
	m.setState(Sleep, 0) // want `possible illegal transition to Sleep: the state may be On or Off or Waking here`
}

// swapped compares with the constant on the left.
func (m *M) swapped() {
	if Waking == m.state {
		m.setState(Off, 0) // Waking->Off is legal
	}
}

// clobberedByHelper loses its narrowing to a helper that may transition.
func (m *M) clobberedByHelper() {
	if m.state != Off {
		return
	}
	m.kick()
	m.setState(Halting, 0) // want `possible illegal transition to Halting: the state may be On or Sleep or Waking here`
}

// kick transitions indirectly, so the fixpoint summary marks it mutating.
func (m *M) kick() {
	m.refinedByIf()
}

// annotatedClosure declares its entry states, deferred-callback-style.
func (m *M) annotatedClosure() {
	if m.state != Off {
		return
	}
	m.setState(Halting, 0)
	m.later(func() {
		//rolosan:from Halting
		m.setState(Sleep, 0) // Halting->Sleep is legal
	})
}

// unannotatedClosure gives the analyzer nothing to work with: a closure
// runs at an unknown time, so every from-state is possible.
func (m *M) unannotatedClosure() {
	m.later(func() {
		m.setState(On, 0) // want `possible illegal transition to On: the state may be Sleep or Waking or Halting here.*rolosan:from`
	})
}

// badAnnotation names a constant that does not exist.
func (m *M) badAnnotation() {
	m.later(func() {
		/*rolosan:from Bogus*/ // want `rolosan:from names unknown state constant "Bogus"`
		m.setState(On, 0)      // want `possible illegal transition to On`
	})
}

// nonConstTarget cannot be proven at all.
func (m *M) nonConstTarget(s State) {
	m.setState(s, 0) // want `cannot prove transition: target state is not a constant`
}

// directWrite bypasses the transition point.
func (m *M) directWrite() {
	m.state = On // want `direct write to .*state bypasses the state machine`
}

// allowedWrite is a documented bypass.
func (m *M) allowedWrite() {
	//lint:allow statetransition:bypass test models the Fail/ForceState bypass
	m.state = Sleep
}

// aliasClobber writes through another name, which may alias m.
func (m *M) aliasClobber(other *M) {
	if m.state != Off {
		return
	}
	other.state = Sleep // want `direct write to .*state bypasses the state machine`
	m.setState(On, 0)   // want `possible illegal transition to On: the state may be Sleep or Waking or Halting here`
}

// dynamicCallClobber invokes a stored function value, which may reenter.
func (m *M) dynamicCallClobber(f func()) {
	if m.state != Off {
		return
	}
	f()
	m.setState(Halting, 0) // want `possible illegal transition to Halting: the state may be On or Sleep or Waking here`
}

// loopConverges: the loop body may transition to Off then On; the
// fixpoint must include both, and On->Halting is illegal.
func (m *M) loopConverges(n int) {
	if m.state != Off {
		return
	}
	for i := 0; i < n; i++ {
		m.setState(On, 0)
	}
	m.setState(Halting, 0) // want `possible illegal transition to Halting: the state may be On here`
}
