// Package statetransition verifies, at compile time, that every call to a
// package's declared state-transition function is legal under the same
// power-state graph the runtime sanitizer enforces (disk.LegalTransition —
// one shared spec table, two enforcement layers).
//
// The transition function is marked with a `rolosan:transition` line in
// its doc comment; the analyzer derives the tracked field and the
// target-state parameter from the function's own `recv.field = param`
// assignment, and the value universe from the package's typed constants.
// For each call site it computes the set of states the tracked field may
// hold — by a CFG-based forward analysis over the enclosing function,
// with branch and switch refinement on `recv.field` comparisons — and
// reports any possible from-state the declared graph does not admit.
//
// Calls from function literals run at a later, unknowable time, so the
// field's value cannot be tracked to them; a `//rolosan:from A, B`
// comment on (or directly above) the call line declares the possible
// from-states instead, and the analyzer checks those. An unannotated
// closure site is checked against the full universe.
//
// Direct assignments to the tracked field outside the transition function
// bypass the state machine (no duration accrual, no hooks) and are
// flagged; the two intentional bypasses (Fail, ForceState) carry
// `//lint:allow statetransition:bypass` directives.
//
// Soundness notes: calls into other packages are assumed not to mutate
// the tracked field (it is unexported, so only reentrancy through a
// stored closure could — the builder assumes scheduled closures do not
// run synchronously); calls through function values and calls to
// same-package functions whose fixpoint summary says they may mutate the
// field clobber the tracked set to the full universe.
package statetransition

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/rolo-storage/rolo/internal/analysis"
	"github.com/rolo-storage/rolo/internal/disk"
)

// Analyzer is the statetransition check.
var Analyzer = &analysis.Analyzer{
	Name: "statetransition",
	Doc:  "check state-machine transition call sites against the declared power-state graph",
	Run:  run,
}

// Marker is the doc-comment line identifying the transition function.
const Marker = "rolosan:transition"

// FromDirective declares a closure call site's possible from-states.
const FromDirective = "rolosan:from"

// spec describes the package's transition function and value universe.
type spec struct {
	fn     *types.Func // the transition method
	decl   *ast.FuncDecl
	field  *types.Var // tracked state field
	argIdx int        // target-state parameter index
	stateT types.Type

	vals  []int64              // universe index -> constant value
	names []string             // universe index -> constant name
	index map[int64]int        // constant value -> universe index
	objs  map[*types.Const]int // constant object -> universe index
}

func run(pass *analysis.Pass) error {
	sp := findSpec(pass)
	if sp == nil {
		return nil // no transition function declared in this package
	}
	if len(sp.vals) == 0 || len(sp.vals) > 64 {
		return fmt.Errorf("state universe has %d constants (want 1..64)", len(sp.vals))
	}
	froms := collectFromDirectives(pass, sp)
	summaries := mutationSummaries(pass, sp)

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, sp, fd, froms, summaries)
		}
	}
	return nil
}

// findSpec locates the marked transition function and derives the tracked
// field and parameter from its body.
func findSpec(pass *analysis.Pass) *spec {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if !docHasMarker(fd.Doc) {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			sp := &spec{fn: obj, decl: fd}
			if !deriveTracked(pass, sp) {
				pass.Reportf(fd.Pos(), "bad-annotation",
					"%s function has no `recv.field = param` assignment to derive the tracked state field", Marker)
				return nil
			}
			buildUniverse(pass, sp)
			return sp
		}
	}
	return nil
}

func docHasMarker(doc *ast.CommentGroup) bool {
	for _, c := range doc.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == Marker {
			return true
		}
	}
	return false
}

// deriveTracked finds the assignment `recv.F = param` in the transition
// function's body, fixing the tracked field F and the parameter index.
func deriveTracked(pass *analysis.Pass, sp *spec) bool {
	params := map[types.Object]int{}
	i := 0
	for _, f := range sp.decl.Type.Params.List {
		for _, name := range f.Names {
			params[pass.TypesInfo.Defs[name]] = i
			i++
		}
	}
	found := false
	ast.Inspect(sp.decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		sel, ok := ast.Unparen(as.Lhs[0]).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		field, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
		if field == nil || !field.IsField() {
			return true
		}
		rhs, ok := ast.Unparen(as.Rhs[0]).(*ast.Ident)
		if !ok {
			return true
		}
		idx, ok := params[pass.TypesInfo.Uses[rhs]]
		if !ok {
			return true
		}
		sp.field = field
		sp.argIdx = idx
		sp.stateT = field.Type()
		found = true
		return false
	})
	return found
}

// buildUniverse collects the package-level constants of the state type,
// ordered by value.
func buildUniverse(pass *analysis.Pass, sp *spec) {
	type entry struct {
		c   *types.Const
		val int64
	}
	var entries []entry
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), sp.stateT) {
			continue
		}
		v, ok := constant.Int64Val(constant.ToInt(c.Val()))
		if !ok {
			continue
		}
		entries = append(entries, entry{c, v})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].val < entries[j].val })
	sp.index = make(map[int64]int, len(entries))
	sp.objs = make(map[*types.Const]int, len(entries))
	for i, e := range entries {
		sp.vals = append(sp.vals, e.val)
		sp.names = append(sp.names, e.c.Name())
		sp.index[e.val] = i
		sp.objs[e.c] = i
	}
}

// legal checks one transition under the shared spec table. Universe values
// are the same integers the runtime uses, so the analyzer asks the very
// function the sanitizer asks.
func (sp *spec) legal(from, to int) bool {
	return disk.LegalTransition(disk.PowerState(sp.vals[from]), disk.PowerState(sp.vals[to]))
}

// constIndex resolves an expression to a universe index if it denotes a
// constant of the state type.
func (sp *spec) constIndex(info *types.Info, e ast.Expr) (int, bool) {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, ok := constant.Int64Val(constant.ToInt(tv.Value))
	if !ok {
		return 0, false
	}
	i, ok := sp.index[v]
	return i, ok
}

// isTrackedSel reports whether e is `<base>.F` with base an identifier
// denoting obj (nil obj matches any identifier base).
func (sp *spec) isTrackedSel(info *types.Info, e ast.Expr, obj types.Object) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || info.Uses[sel.Sel] != sp.field {
		return false
	}
	base, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	return obj == nil || info.Uses[base] == obj
}

// trackedBase returns the identifier object e selects the field from, or
// nil when e is not a simple `ident.F` selector.
func (sp *spec) trackedBase(info *types.Info, e ast.Expr) types.Object {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || info.Uses[sel.Sel] != sp.field {
		return nil
	}
	base, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.Uses[base]
}
