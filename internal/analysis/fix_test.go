package analysis

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func mkFinding(file string, start, end int, newText, msg string) Finding {
	return Finding{
		Analyzer: "demo",
		Category: "cat",
		Message:  msg,
		Fixes: []Fix{{
			Message: "fix: " + msg,
			Edits:   []FixEdit{{Filename: file, Start: start, End: end, NewText: newText}},
		}},
	}
}

func TestScheduleFixesReportsOverlapSkips(t *testing.T) {
	findings := []Finding{
		mkFinding("p.go", 10, 20, "first", "one"),
		mkFinding("p.go", 15, 25, "second", "two"), // overlaps the first
		mkFinding("p.go", 30, 35, "third", "three"),
		{Analyzer: "demo", Message: "no fix at all"},
	}
	perFile, remaining, applied, skipped := scheduleFixes(findings)
	if len(applied) != 2 || applied[0].Finding.Message != "one" || applied[1].Finding.Message != "three" {
		t.Fatalf("applied = %+v, want the first and third findings", applied)
	}
	if len(skipped) != 1 || skipped[0].Finding.Message != "two" {
		t.Fatalf("skipped = %+v, want exactly the overlapping second finding", skipped)
	}
	// The skipped finding stays in remaining, so it is still reported
	// and still counts toward the exit code.
	var msgs []string
	for _, f := range remaining {
		msgs = append(msgs, f.Message)
	}
	if strings.Join(msgs, ",") != "two,no fix at all" {
		t.Fatalf("remaining = %v, want the skipped and the fixless finding", msgs)
	}
	if n := len(perFile["p.go"]); n != 2 {
		t.Fatalf("%d edits scheduled, want 2", n)
	}
}

func TestScheduleFixesInsertionsAtSameOffsetConflict(t *testing.T) {
	findings := []Finding{
		mkFinding("p.go", 10, 10, "a", "one"),
		mkFinding("p.go", 10, 10, "b", "two"),
	}
	_, _, applied, skipped := scheduleFixes(findings)
	if len(applied) != 1 || len(skipped) != 1 {
		t.Fatalf("applied=%d skipped=%d, want 1 and 1 (same-offset insertions are ambiguous)",
			len(applied), len(skipped))
	}
}

func TestPreviewFixesLeavesTreeUntouched(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "p.go")
	src := "package p\n\nvar x = 1\n"
	if err := os.WriteFile(name, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	off := strings.Index(src, "1")
	findings := []Finding{mkFinding(name, off, off+1, "2", "bump")}
	remaining, applied, skipped, diff, err := PreviewFixes(findings)
	if err != nil {
		t.Fatalf("PreviewFixes: %v", err)
	}
	if len(remaining) != 0 || len(applied) != 1 || len(skipped) != 0 {
		t.Fatalf("remaining=%d applied=%d skipped=%d, want 0/1/0", len(remaining), len(applied), len(skipped))
	}
	if !strings.Contains(diff, "-var x = 1") || !strings.Contains(diff, "+var x = 2") {
		t.Fatalf("diff missing the edit:\n%s", diff)
	}
	got, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != src {
		t.Fatalf("PreviewFixes rewrote the file:\n%s", got)
	}
}

func TestUnifiedDiffAgainstGNUDiff(t *testing.T) {
	// The renderer must agree with `diff -u` on hunk headers and
	// content (modulo the file-header lines, which carry timestamps in
	// GNU diff). Skip silently where diff is unavailable.
	if _, err := exec.LookPath("diff"); err != nil {
		t.Skip("no diff binary on PATH")
	}
	cases := []struct{ name, a, b string }{
		{"mid-change", "a\nb\nc\nd\ne\nf\ng\nh\n", "a\nb\nc\nX\ne\nf\ng\nh\n"},
		{"insert", "a\nb\nc\n", "a\nb\nnew\nc\n"},
		{"delete-head", "a\nb\nc\nd\ne\n", "b\nc\nd\ne\n"},
		{"append-tail", "a\nb\n", "a\nb\nc\nd\n"},
		{"two-hunks", "1\n2\n3\n4\n5\n6\n7\n8\n9\n10\n11\n12\n13\n14\n15\n",
			"1\nX\n3\n4\n5\n6\n7\n8\n9\n10\n11\n12\n13\nY\n15\n"},
		{"near-hunks-merge", "1\n2\n3\n4\n5\n6\n7\n8\n",
			"1\nX\n3\n4\n5\nY\n7\n8\n"},
		{"everything", "a\n", "b\nc\n"},
	}
	dir := t.TempDir()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			af := filepath.Join(dir, "a")
			bf := filepath.Join(dir, "b")
			if err := os.WriteFile(af, []byte(tc.a), 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(bf, []byte(tc.b), 0o644); err != nil {
				t.Fatal(err)
			}
			out, _ := exec.Command("diff", "-u", af, bf).Output() // exits 1 on difference
			want := stripHeader(string(out))
			got := stripHeader(UnifiedDiff("p.go", []byte(tc.a), []byte(tc.b)))
			if got != want {
				t.Errorf("UnifiedDiff disagrees with diff -u:\n--- ours\n%s--- GNU\n%s", got, want)
			}
		})
	}
	if d := UnifiedDiff("p.go", []byte("same\n"), []byte("same\n")); d != "" {
		t.Errorf("equal inputs produced a diff:\n%s", d)
	}
}

// stripHeader drops the two file-header lines of a unified diff.
func stripHeader(d string) string {
	lines := strings.SplitN(d, "\n", 3)
	if len(lines) < 3 {
		return ""
	}
	return lines[2]
}
