package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

// TestWriteSARIFShape decodes a rendered report back through loosely
// typed maps and asserts the invariants GitHub code scanning requires
// of a SARIF 2.1.0 upload: version and $schema, a named tool driver
// whose rule table covers every result, ruleIndex agreeing with ruleId,
// 1-based regions, and source-root-relative forward-slash URIs.
func TestWriteSARIFShape(t *testing.T) {
	analyzers := []*Analyzer{
		{Name: "zeta", Doc: "last alphabetically\nmore doc"},
		{Name: "alpha", Doc: "first alphabetically"},
	}
	findings := []Finding{
		{
			Analyzer: "zeta",
			Category: "leak",
			Pos:      token.Position{Filename: "/src/root/pkg/a.go", Line: 12, Column: 3},
			Message:  "resource leaks",
		},
		{
			Analyzer: "orphan", // not in the analyzer table: rule synthesized
			Pos:      token.Position{Filename: "/elsewhere/b.go"},
			Message:  "outside the root, zero position",
		},
	}

	var buf bytes.Buffer
	if err := WriteSARIF(&buf, SortAnalyzers(analyzers), findings, "/src/root"); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}

	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if v := doc["version"]; v != "2.1.0" {
		t.Errorf("version = %v, want 2.1.0", v)
	}
	schema, _ := doc["$schema"].(string)
	if !strings.Contains(schema, "sarif-schema-2.1.0") {
		t.Errorf("$schema = %q, want the 2.1.0 schema URL", schema)
	}

	runs, _ := doc["runs"].([]any)
	if len(runs) != 1 {
		t.Fatalf("len(runs) = %d, want 1", len(runs))
	}
	run := runs[0].(map[string]any)
	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	if driver["name"] != "rololint" {
		t.Errorf("driver name = %v, want rololint", driver["name"])
	}

	rules, _ := driver["rules"].([]any)
	ruleIDs := make([]string, len(rules))
	for i, r := range rules {
		rule := r.(map[string]any)
		ruleIDs[i] = rule["id"].(string)
		desc := rule["shortDescription"].(map[string]any)["text"].(string)
		if desc == "" {
			t.Errorf("rule %s has an empty shortDescription", ruleIDs[i])
		}
		if strings.Contains(desc, "\n") {
			t.Errorf("rule %s description spans lines: %q", ruleIDs[i], desc)
		}
	}
	// SortAnalyzers feeds the table, so declared analyzers come sorted,
	// with the orphan rule appended on demand.
	if want := []string{"alpha", "zeta", "orphan"}; strings.Join(ruleIDs, ",") != strings.Join(want, ",") {
		t.Errorf("rule ids = %v, want %v", ruleIDs, want)
	}

	results, _ := run["results"].([]any)
	if len(results) != len(findings) {
		t.Fatalf("len(results) = %d, want %d", len(results), len(findings))
	}
	for i, r := range results {
		res := r.(map[string]any)
		ruleID := res["ruleId"].(string)
		idx := int(res["ruleIndex"].(float64))
		if idx < 0 || idx >= len(ruleIDs) || ruleIDs[idx] != ruleID {
			t.Errorf("result %d: ruleIndex %d does not point at ruleId %q", i, idx, ruleID)
		}
		if res["level"] != "warning" {
			t.Errorf("result %d: level = %v, want warning", i, res["level"])
		}
		locs := res["locations"].([]any)
		if len(locs) != 1 {
			t.Fatalf("result %d: len(locations) = %d, want 1", i, len(locs))
		}
		phys := locs[0].(map[string]any)["physicalLocation"].(map[string]any)
		region := phys["region"].(map[string]any)
		if region["startLine"].(float64) < 1 || region["startColumn"].(float64) < 1 {
			t.Errorf("result %d: region %v not 1-based", i, region)
		}
		art := phys["artifactLocation"].(map[string]any)
		if art["uriBaseId"] != "%SRCROOT%" {
			t.Errorf("result %d: uriBaseId = %v", i, art["uriBaseId"])
		}
		if uri := art["uri"].(string); strings.Contains(uri, "\\") {
			t.Errorf("result %d: uri %q has backslashes", i, uri)
		}
	}

	// The in-root finding is root-relative; the categorized message
	// carries its allow-directive rule token.
	first := results[0].(map[string]any)
	uri := first["locations"].([]any)[0].(map[string]any)["physicalLocation"].(map[string]any)["artifactLocation"].(map[string]any)["uri"].(string)
	if uri != "pkg/a.go" {
		t.Errorf("in-root uri = %q, want pkg/a.go", uri)
	}
	if msg := first["message"].(map[string]any)["text"].(string); !strings.HasSuffix(msg, "[zeta:leak]") {
		t.Errorf("categorized message = %q, want [zeta:leak] suffix", msg)
	}
	// The out-of-root finding keeps its absolute path.
	second := results[1].(map[string]any)
	uri2 := second["locations"].([]any)[0].(map[string]any)["physicalLocation"].(map[string]any)["artifactLocation"].(map[string]any)["uri"].(string)
	if uri2 != "/elsewhere/b.go" {
		t.Errorf("out-of-root uri = %q, want /elsewhere/b.go", uri2)
	}
}
