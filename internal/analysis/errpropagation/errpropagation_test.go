package errpropagation_test

import (
	"testing"

	"github.com/rolo-storage/rolo/internal/analysis/analysistest"
	"github.com/rolo-storage/rolo/internal/analysis/errpropagation"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", errpropagation.Analyzer,
		"fix/internal/errs",      // flagged and exempted patterns in scope
		"fix/internal/goroutine", // errors assigned to captured variables in goroutines
		"fix/nonscope",           // out of scope: no internal/cmd path segment
	)
}
