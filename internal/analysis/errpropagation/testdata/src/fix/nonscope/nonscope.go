// Package nonscope sits outside the analyzer's scope (no internal or
// cmd path segment), so nothing here is flagged.
package nonscope

func mayFail() error { return nil }

func droppedOutOfScope() {
	mayFail() // out of scope: fine
}
