// Package errs exercises the errpropagation analyzer: dropped,
// propagated, explicitly discarded and exempted error returns.
package errs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"
)

func mayFail() error { return nil }

func countAndFail() (int, error) { return 0, nil }

func noError() int { return 1 }

func dropped() {
	mayFail()       // want `call to errs\.mayFail drops its error`
	countAndFail()  // want `call to errs\.countAndFail drops its error`
	defer mayFail() // want `deferred call to errs\.mayFail drops its error`
	go mayFail()    // want `go call to errs\.mayFail drops its error`
	noError()       // no error in the results: fine
}

func handled() error {
	if err := mayFail(); err != nil {
		return err
	}
	n, err := countAndFail()
	_ = n
	if err != nil {
		return err
	}
	_ = mayFail() // explicit discard is visible in review: fine
	return nil
}

func exemptions(w io.Writer) {
	fmt.Println("reporting output is exempt")
	fmt.Fprintf(w, "as is Fprintf\n")
	var sb strings.Builder
	sb.WriteString("never fails") // strings.Builder is exempt
	var buf bytes.Buffer
	buf.WriteByte('x') // bytes.Buffer is exempt
	bw := bufio.NewWriter(w)
	bw.WriteString("sticky error") // bufio writes surface from Flush: exempt
	bw.Flush()                     // want `call to \(\*bufio\.Writer\)\.Flush drops its error`
}

func allowed() {
	mayFail() //lint:allow errpropagation:dropped best-effort cleanup, failure is harmless
}

// resourceCeded pins the de-dup with resourcelifecycle: a dropped Close
// or Flush on a resource type is that analyzer's dropped-error finding,
// not an errpropagation one — each site is reported exactly once. Close
// and Flush on non-resource types (bufio.Writer above) stay here.
func resourceCeded(f *os.File) {
	f.Close() // resourcelifecycle:dropped-error territory: no errpropagation finding
	defer f.Close()
}
