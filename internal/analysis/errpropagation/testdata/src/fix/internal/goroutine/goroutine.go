// Package goroutine exercises the errpropagation goroutine extension:
// an error assigned to a variable captured from the spawning function is
// dropped as surely as a bare call's — the spawner cannot observe it.
package goroutine

import "sync"

func mayFail() error { return nil }

func capturedErr() error {
	var err error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		err = mayFail() // want `goroutine assigns error to captured variable err, invisible to the spawner`
	}()
	wg.Wait()
	return err
}

func goroutineLocalErr() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		err := mayFail() // the goroutine's own local: fine here
		_ = err
	}()
	wg.Wait()
}

func channelDelivery() error {
	errc := make(chan error, 1)
	go func() {
		errc <- mayFail()
	}()
	return <-errc
}

func indexedDelivery(n int) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = mayFail() // a distinct index per goroutine, published by Wait: fine
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
